# Empty dependencies file for health_study.
# This may be replaced when dependencies are built.
