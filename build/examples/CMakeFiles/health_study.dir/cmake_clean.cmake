file(REMOVE_RECURSE
  "CMakeFiles/health_study.dir/health_study.cpp.o"
  "CMakeFiles/health_study.dir/health_study.cpp.o.d"
  "health_study"
  "health_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/health_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
