file(REMOVE_RECURSE
  "CMakeFiles/unitary_market.dir/unitary_market.cpp.o"
  "CMakeFiles/unitary_market.dir/unitary_market.cpp.o.d"
  "unitary_market"
  "unitary_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unitary_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
