# Empty compiler generated dependencies file for unitary_market.
# This may be replaced when dependencies are built.
