
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppms_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_dec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_zkp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_clsig.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_pairing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_blind.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_rsa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_market.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
