file(REMOVE_RECURSE
  "CMakeFiles/parallel_market.dir/parallel_market.cpp.o"
  "CMakeFiles/parallel_market.dir/parallel_market.cpp.o.d"
  "parallel_market"
  "parallel_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
