# Empty compiler generated dependencies file for parallel_market.
# This may be replaced when dependencies are built.
