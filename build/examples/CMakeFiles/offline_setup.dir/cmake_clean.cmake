file(REMOVE_RECURSE
  "CMakeFiles/offline_setup.dir/offline_setup.cpp.o"
  "CMakeFiles/offline_setup.dir/offline_setup.cpp.o.d"
  "offline_setup"
  "offline_setup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
