# Empty compiler generated dependencies file for offline_setup.
# This may be replaced when dependencies are built.
