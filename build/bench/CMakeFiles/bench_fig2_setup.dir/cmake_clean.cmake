file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_setup.dir/fig2_setup.cpp.o"
  "CMakeFiles/bench_fig2_setup.dir/fig2_setup.cpp.o.d"
  "bench_fig2_setup"
  "bench_fig2_setup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
