# Empty dependencies file for bench_fig2_setup.
# This may be replaced when dependencies are built.
