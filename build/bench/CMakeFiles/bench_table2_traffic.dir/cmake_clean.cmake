file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_traffic.dir/table2_traffic.cpp.o"
  "CMakeFiles/bench_table2_traffic.dir/table2_traffic.cpp.o.d"
  "bench_table2_traffic"
  "bench_table2_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
