file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_modexp.dir/ablation_modexp.cpp.o"
  "CMakeFiles/bench_ablation_modexp.dir/ablation_modexp.cpp.o.d"
  "bench_ablation_modexp"
  "bench_ablation_modexp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_modexp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
