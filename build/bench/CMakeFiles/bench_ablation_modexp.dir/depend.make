# Empty dependencies file for bench_ablation_modexp.
# This may be replaced when dependencies are built.
