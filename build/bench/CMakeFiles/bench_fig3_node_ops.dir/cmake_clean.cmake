file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_node_ops.dir/fig3_node_ops.cpp.o"
  "CMakeFiles/bench_fig3_node_ops.dir/fig3_node_ops.cpp.o.d"
  "bench_fig3_node_ops"
  "bench_fig3_node_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_node_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
