file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cashbreak.dir/ablation_cashbreak.cpp.o"
  "CMakeFiles/bench_ablation_cashbreak.dir/ablation_cashbreak.cpp.o.d"
  "bench_ablation_cashbreak"
  "bench_ablation_cashbreak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cashbreak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
