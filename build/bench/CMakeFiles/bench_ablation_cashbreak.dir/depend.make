# Empty dependencies file for bench_ablation_cashbreak.
# This may be replaced when dependencies are built.
