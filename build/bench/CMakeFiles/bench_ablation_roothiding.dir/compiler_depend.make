# Empty compiler generated dependencies file for bench_ablation_roothiding.
# This may be replaced when dependencies are built.
