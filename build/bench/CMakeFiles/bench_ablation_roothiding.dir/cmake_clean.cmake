file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_roothiding.dir/ablation_roothiding.cpp.o"
  "CMakeFiles/bench_ablation_roothiding.dir/ablation_roothiding.cpp.o.d"
  "bench_ablation_roothiding"
  "bench_ablation_roothiding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_roothiding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
