file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_cashbreak.dir/fig4_cashbreak.cpp.o"
  "CMakeFiles/bench_fig4_cashbreak.dir/fig4_cashbreak.cpp.o.d"
  "bench_fig4_cashbreak"
  "bench_fig4_cashbreak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_cashbreak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
