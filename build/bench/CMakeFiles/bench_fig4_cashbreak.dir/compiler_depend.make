# Empty compiler generated dependencies file for bench_fig4_cashbreak.
# This may be replaced when dependencies are built.
