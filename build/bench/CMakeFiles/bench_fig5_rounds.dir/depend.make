# Empty dependencies file for bench_fig5_rounds.
# This may be replaced when dependencies are built.
