file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_rounds.dir/fig5_rounds.cpp.o"
  "CMakeFiles/bench_fig5_rounds.dir/fig5_rounds.cpp.o.d"
  "bench_fig5_rounds"
  "bench_fig5_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
