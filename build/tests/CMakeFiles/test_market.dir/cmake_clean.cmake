file(REMOVE_RECURSE
  "CMakeFiles/test_market.dir/market/bulletin_test.cpp.o"
  "CMakeFiles/test_market.dir/market/bulletin_test.cpp.o.d"
  "CMakeFiles/test_market.dir/market/channel_test.cpp.o"
  "CMakeFiles/test_market.dir/market/channel_test.cpp.o.d"
  "CMakeFiles/test_market.dir/market/scheduler_test.cpp.o"
  "CMakeFiles/test_market.dir/market/scheduler_test.cpp.o.d"
  "CMakeFiles/test_market.dir/market/vbank_test.cpp.o"
  "CMakeFiles/test_market.dir/market/vbank_test.cpp.o.d"
  "test_market"
  "test_market.pdb"
  "test_market[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
