
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/market/bulletin_test.cpp" "tests/CMakeFiles/test_market.dir/market/bulletin_test.cpp.o" "gcc" "tests/CMakeFiles/test_market.dir/market/bulletin_test.cpp.o.d"
  "/root/repo/tests/market/channel_test.cpp" "tests/CMakeFiles/test_market.dir/market/channel_test.cpp.o" "gcc" "tests/CMakeFiles/test_market.dir/market/channel_test.cpp.o.d"
  "/root/repo/tests/market/scheduler_test.cpp" "tests/CMakeFiles/test_market.dir/market/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/test_market.dir/market/scheduler_test.cpp.o.d"
  "/root/repo/tests/market/vbank_test.cpp" "tests/CMakeFiles/test_market.dir/market/vbank_test.cpp.o" "gcc" "tests/CMakeFiles/test_market.dir/market/vbank_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppms_market.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
