
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pairing/curve_test.cpp" "tests/CMakeFiles/test_pairing.dir/pairing/curve_test.cpp.o" "gcc" "tests/CMakeFiles/test_pairing.dir/pairing/curve_test.cpp.o.d"
  "/root/repo/tests/pairing/fp2_test.cpp" "tests/CMakeFiles/test_pairing.dir/pairing/fp2_test.cpp.o" "gcc" "tests/CMakeFiles/test_pairing.dir/pairing/fp2_test.cpp.o.d"
  "/root/repo/tests/pairing/fp_test.cpp" "tests/CMakeFiles/test_pairing.dir/pairing/fp_test.cpp.o" "gcc" "tests/CMakeFiles/test_pairing.dir/pairing/fp_test.cpp.o.d"
  "/root/repo/tests/pairing/tate_test.cpp" "tests/CMakeFiles/test_pairing.dir/pairing/tate_test.cpp.o" "gcc" "tests/CMakeFiles/test_pairing.dir/pairing/tate_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppms_pairing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
