# Empty compiler generated dependencies file for test_blind.
# This may be replaced when dependencies are built.
