file(REMOVE_RECURSE
  "CMakeFiles/test_blind.dir/blind/blind_rsa_test.cpp.o"
  "CMakeFiles/test_blind.dir/blind/blind_rsa_test.cpp.o.d"
  "CMakeFiles/test_blind.dir/blind/partial_blind_test.cpp.o"
  "CMakeFiles/test_blind.dir/blind/partial_blind_test.cpp.o.d"
  "test_blind"
  "test_blind.pdb"
  "test_blind[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
