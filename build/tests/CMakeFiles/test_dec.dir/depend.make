# Empty dependencies file for test_dec.
# This may be replaced when dependencies are built.
