file(REMOVE_RECURSE
  "CMakeFiles/test_dec.dir/dec/bank_test.cpp.o"
  "CMakeFiles/test_dec.dir/dec/bank_test.cpp.o.d"
  "CMakeFiles/test_dec.dir/dec/coin_test.cpp.o"
  "CMakeFiles/test_dec.dir/dec/coin_test.cpp.o.d"
  "CMakeFiles/test_dec.dir/dec/group_chain_test.cpp.o"
  "CMakeFiles/test_dec.dir/dec/group_chain_test.cpp.o.d"
  "CMakeFiles/test_dec.dir/dec/root_hiding_test.cpp.o"
  "CMakeFiles/test_dec.dir/dec/root_hiding_test.cpp.o.d"
  "CMakeFiles/test_dec.dir/dec/spend_test.cpp.o"
  "CMakeFiles/test_dec.dir/dec/spend_test.cpp.o.d"
  "CMakeFiles/test_dec.dir/dec/wallet_test.cpp.o"
  "CMakeFiles/test_dec.dir/dec/wallet_test.cpp.o.d"
  "test_dec"
  "test_dec.pdb"
  "test_dec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
