
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/zkp/cross_group_test.cpp" "tests/CMakeFiles/test_zkp.dir/zkp/cross_group_test.cpp.o" "gcc" "tests/CMakeFiles/test_zkp.dir/zkp/cross_group_test.cpp.o.d"
  "/root/repo/tests/zkp/double_dlog_test.cpp" "tests/CMakeFiles/test_zkp.dir/zkp/double_dlog_test.cpp.o" "gcc" "tests/CMakeFiles/test_zkp.dir/zkp/double_dlog_test.cpp.o.d"
  "/root/repo/tests/zkp/equality_test.cpp" "tests/CMakeFiles/test_zkp.dir/zkp/equality_test.cpp.o" "gcc" "tests/CMakeFiles/test_zkp.dir/zkp/equality_test.cpp.o.d"
  "/root/repo/tests/zkp/group_test.cpp" "tests/CMakeFiles/test_zkp.dir/zkp/group_test.cpp.o" "gcc" "tests/CMakeFiles/test_zkp.dir/zkp/group_test.cpp.o.d"
  "/root/repo/tests/zkp/or_proof_test.cpp" "tests/CMakeFiles/test_zkp.dir/zkp/or_proof_test.cpp.o" "gcc" "tests/CMakeFiles/test_zkp.dir/zkp/or_proof_test.cpp.o.d"
  "/root/repo/tests/zkp/representation_test.cpp" "tests/CMakeFiles/test_zkp.dir/zkp/representation_test.cpp.o" "gcc" "tests/CMakeFiles/test_zkp.dir/zkp/representation_test.cpp.o.d"
  "/root/repo/tests/zkp/schnorr_test.cpp" "tests/CMakeFiles/test_zkp.dir/zkp/schnorr_test.cpp.o" "gcc" "tests/CMakeFiles/test_zkp.dir/zkp/schnorr_test.cpp.o.d"
  "/root/repo/tests/zkp/transcript_test.cpp" "tests/CMakeFiles/test_zkp.dir/zkp/transcript_test.cpp.o" "gcc" "tests/CMakeFiles/test_zkp.dir/zkp/transcript_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppms_zkp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_pairing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
