file(REMOVE_RECURSE
  "CMakeFiles/test_zkp.dir/zkp/cross_group_test.cpp.o"
  "CMakeFiles/test_zkp.dir/zkp/cross_group_test.cpp.o.d"
  "CMakeFiles/test_zkp.dir/zkp/double_dlog_test.cpp.o"
  "CMakeFiles/test_zkp.dir/zkp/double_dlog_test.cpp.o.d"
  "CMakeFiles/test_zkp.dir/zkp/equality_test.cpp.o"
  "CMakeFiles/test_zkp.dir/zkp/equality_test.cpp.o.d"
  "CMakeFiles/test_zkp.dir/zkp/group_test.cpp.o"
  "CMakeFiles/test_zkp.dir/zkp/group_test.cpp.o.d"
  "CMakeFiles/test_zkp.dir/zkp/or_proof_test.cpp.o"
  "CMakeFiles/test_zkp.dir/zkp/or_proof_test.cpp.o.d"
  "CMakeFiles/test_zkp.dir/zkp/representation_test.cpp.o"
  "CMakeFiles/test_zkp.dir/zkp/representation_test.cpp.o.d"
  "CMakeFiles/test_zkp.dir/zkp/schnorr_test.cpp.o"
  "CMakeFiles/test_zkp.dir/zkp/schnorr_test.cpp.o.d"
  "CMakeFiles/test_zkp.dir/zkp/transcript_test.cpp.o"
  "CMakeFiles/test_zkp.dir/zkp/transcript_test.cpp.o.d"
  "test_zkp"
  "test_zkp.pdb"
  "test_zkp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zkp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
