# Empty compiler generated dependencies file for test_zkp.
# This may be replaced when dependencies are built.
