file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/attack_test.cpp.o"
  "CMakeFiles/test_core.dir/core/attack_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/cash_break_test.cpp.o"
  "CMakeFiles/test_core.dir/core/cash_break_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/market_sim_test.cpp.o"
  "CMakeFiles/test_core.dir/core/market_sim_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/ppmsdec_test.cpp.o"
  "CMakeFiles/test_core.dir/core/ppmsdec_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/ppmspbs_test.cpp.o"
  "CMakeFiles/test_core.dir/core/ppmspbs_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
