file(REMOVE_RECURSE
  "CMakeFiles/test_clsig.dir/clsig/clsig_test.cpp.o"
  "CMakeFiles/test_clsig.dir/clsig/clsig_test.cpp.o.d"
  "test_clsig"
  "test_clsig.pdb"
  "test_clsig[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clsig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
