# Empty compiler generated dependencies file for test_clsig.
# This may be replaced when dependencies are built.
