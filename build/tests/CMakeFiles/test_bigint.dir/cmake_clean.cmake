file(REMOVE_RECURSE
  "CMakeFiles/test_bigint.dir/bigint/bigint_test.cpp.o"
  "CMakeFiles/test_bigint.dir/bigint/bigint_test.cpp.o.d"
  "CMakeFiles/test_bigint.dir/bigint/cunningham_test.cpp.o"
  "CMakeFiles/test_bigint.dir/bigint/cunningham_test.cpp.o.d"
  "CMakeFiles/test_bigint.dir/bigint/modarith_test.cpp.o"
  "CMakeFiles/test_bigint.dir/bigint/modarith_test.cpp.o.d"
  "CMakeFiles/test_bigint.dir/bigint/prime_test.cpp.o"
  "CMakeFiles/test_bigint.dir/bigint/prime_test.cpp.o.d"
  "test_bigint"
  "test_bigint.pdb"
  "test_bigint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bigint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
