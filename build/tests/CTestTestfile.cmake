# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_hash[1]_include.cmake")
include("/root/repo/build/tests/test_bigint[1]_include.cmake")
include("/root/repo/build/tests/test_rsa[1]_include.cmake")
include("/root/repo/build/tests/test_blind[1]_include.cmake")
include("/root/repo/build/tests/test_pairing[1]_include.cmake")
include("/root/repo/build/tests/test_clsig[1]_include.cmake")
include("/root/repo/build/tests/test_zkp[1]_include.cmake")
include("/root/repo/build/tests/test_dec[1]_include.cmake")
include("/root/repo/build/tests/test_market[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
