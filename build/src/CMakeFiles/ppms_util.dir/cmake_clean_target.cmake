file(REMOVE_RECURSE
  "libppms_util.a"
)
