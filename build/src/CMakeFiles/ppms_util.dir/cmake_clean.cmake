file(REMOVE_RECURSE
  "CMakeFiles/ppms_util.dir/util/bytes.cpp.o"
  "CMakeFiles/ppms_util.dir/util/bytes.cpp.o.d"
  "CMakeFiles/ppms_util.dir/util/counters.cpp.o"
  "CMakeFiles/ppms_util.dir/util/counters.cpp.o.d"
  "CMakeFiles/ppms_util.dir/util/rng.cpp.o"
  "CMakeFiles/ppms_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/ppms_util.dir/util/serial.cpp.o"
  "CMakeFiles/ppms_util.dir/util/serial.cpp.o.d"
  "CMakeFiles/ppms_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/ppms_util.dir/util/thread_pool.cpp.o.d"
  "libppms_util.a"
  "libppms_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppms_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
