# Empty dependencies file for ppms_util.
# This may be replaced when dependencies are built.
