file(REMOVE_RECURSE
  "libppms_dec.a"
)
