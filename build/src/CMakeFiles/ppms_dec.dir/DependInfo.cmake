
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dec/bank.cpp" "src/CMakeFiles/ppms_dec.dir/dec/bank.cpp.o" "gcc" "src/CMakeFiles/ppms_dec.dir/dec/bank.cpp.o.d"
  "/root/repo/src/dec/coin.cpp" "src/CMakeFiles/ppms_dec.dir/dec/coin.cpp.o" "gcc" "src/CMakeFiles/ppms_dec.dir/dec/coin.cpp.o.d"
  "/root/repo/src/dec/group_chain.cpp" "src/CMakeFiles/ppms_dec.dir/dec/group_chain.cpp.o" "gcc" "src/CMakeFiles/ppms_dec.dir/dec/group_chain.cpp.o.d"
  "/root/repo/src/dec/root_hiding.cpp" "src/CMakeFiles/ppms_dec.dir/dec/root_hiding.cpp.o" "gcc" "src/CMakeFiles/ppms_dec.dir/dec/root_hiding.cpp.o.d"
  "/root/repo/src/dec/spend.cpp" "src/CMakeFiles/ppms_dec.dir/dec/spend.cpp.o" "gcc" "src/CMakeFiles/ppms_dec.dir/dec/spend.cpp.o.d"
  "/root/repo/src/dec/wallet.cpp" "src/CMakeFiles/ppms_dec.dir/dec/wallet.cpp.o" "gcc" "src/CMakeFiles/ppms_dec.dir/dec/wallet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppms_zkp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_clsig.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_pairing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
