file(REMOVE_RECURSE
  "CMakeFiles/ppms_dec.dir/dec/bank.cpp.o"
  "CMakeFiles/ppms_dec.dir/dec/bank.cpp.o.d"
  "CMakeFiles/ppms_dec.dir/dec/coin.cpp.o"
  "CMakeFiles/ppms_dec.dir/dec/coin.cpp.o.d"
  "CMakeFiles/ppms_dec.dir/dec/group_chain.cpp.o"
  "CMakeFiles/ppms_dec.dir/dec/group_chain.cpp.o.d"
  "CMakeFiles/ppms_dec.dir/dec/root_hiding.cpp.o"
  "CMakeFiles/ppms_dec.dir/dec/root_hiding.cpp.o.d"
  "CMakeFiles/ppms_dec.dir/dec/spend.cpp.o"
  "CMakeFiles/ppms_dec.dir/dec/spend.cpp.o.d"
  "CMakeFiles/ppms_dec.dir/dec/wallet.cpp.o"
  "CMakeFiles/ppms_dec.dir/dec/wallet.cpp.o.d"
  "libppms_dec.a"
  "libppms_dec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppms_dec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
