# Empty compiler generated dependencies file for ppms_dec.
# This may be replaced when dependencies are built.
