
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blind/blind_rsa.cpp" "src/CMakeFiles/ppms_blind.dir/blind/blind_rsa.cpp.o" "gcc" "src/CMakeFiles/ppms_blind.dir/blind/blind_rsa.cpp.o.d"
  "/root/repo/src/blind/partial_blind.cpp" "src/CMakeFiles/ppms_blind.dir/blind/partial_blind.cpp.o" "gcc" "src/CMakeFiles/ppms_blind.dir/blind/partial_blind.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppms_rsa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
