file(REMOVE_RECURSE
  "CMakeFiles/ppms_blind.dir/blind/blind_rsa.cpp.o"
  "CMakeFiles/ppms_blind.dir/blind/blind_rsa.cpp.o.d"
  "CMakeFiles/ppms_blind.dir/blind/partial_blind.cpp.o"
  "CMakeFiles/ppms_blind.dir/blind/partial_blind.cpp.o.d"
  "libppms_blind.a"
  "libppms_blind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppms_blind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
