# Empty dependencies file for ppms_blind.
# This may be replaced when dependencies are built.
