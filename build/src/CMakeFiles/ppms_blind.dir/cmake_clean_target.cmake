file(REMOVE_RECURSE
  "libppms_blind.a"
)
