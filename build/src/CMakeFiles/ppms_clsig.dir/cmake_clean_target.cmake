file(REMOVE_RECURSE
  "libppms_clsig.a"
)
