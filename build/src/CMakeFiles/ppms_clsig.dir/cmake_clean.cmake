file(REMOVE_RECURSE
  "CMakeFiles/ppms_clsig.dir/clsig/clsig.cpp.o"
  "CMakeFiles/ppms_clsig.dir/clsig/clsig.cpp.o.d"
  "libppms_clsig.a"
  "libppms_clsig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppms_clsig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
