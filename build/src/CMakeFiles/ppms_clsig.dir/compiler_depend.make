# Empty compiler generated dependencies file for ppms_clsig.
# This may be replaced when dependencies are built.
