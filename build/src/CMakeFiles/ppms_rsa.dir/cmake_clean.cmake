file(REMOVE_RECURSE
  "CMakeFiles/ppms_rsa.dir/rsa/hybrid.cpp.o"
  "CMakeFiles/ppms_rsa.dir/rsa/hybrid.cpp.o.d"
  "CMakeFiles/ppms_rsa.dir/rsa/oaep.cpp.o"
  "CMakeFiles/ppms_rsa.dir/rsa/oaep.cpp.o.d"
  "CMakeFiles/ppms_rsa.dir/rsa/pkcs1.cpp.o"
  "CMakeFiles/ppms_rsa.dir/rsa/pkcs1.cpp.o.d"
  "CMakeFiles/ppms_rsa.dir/rsa/pss.cpp.o"
  "CMakeFiles/ppms_rsa.dir/rsa/pss.cpp.o.d"
  "CMakeFiles/ppms_rsa.dir/rsa/rsa.cpp.o"
  "CMakeFiles/ppms_rsa.dir/rsa/rsa.cpp.o.d"
  "libppms_rsa.a"
  "libppms_rsa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppms_rsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
