
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rsa/hybrid.cpp" "src/CMakeFiles/ppms_rsa.dir/rsa/hybrid.cpp.o" "gcc" "src/CMakeFiles/ppms_rsa.dir/rsa/hybrid.cpp.o.d"
  "/root/repo/src/rsa/oaep.cpp" "src/CMakeFiles/ppms_rsa.dir/rsa/oaep.cpp.o" "gcc" "src/CMakeFiles/ppms_rsa.dir/rsa/oaep.cpp.o.d"
  "/root/repo/src/rsa/pkcs1.cpp" "src/CMakeFiles/ppms_rsa.dir/rsa/pkcs1.cpp.o" "gcc" "src/CMakeFiles/ppms_rsa.dir/rsa/pkcs1.cpp.o.d"
  "/root/repo/src/rsa/pss.cpp" "src/CMakeFiles/ppms_rsa.dir/rsa/pss.cpp.o" "gcc" "src/CMakeFiles/ppms_rsa.dir/rsa/pss.cpp.o.d"
  "/root/repo/src/rsa/rsa.cpp" "src/CMakeFiles/ppms_rsa.dir/rsa/rsa.cpp.o" "gcc" "src/CMakeFiles/ppms_rsa.dir/rsa/rsa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppms_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
