file(REMOVE_RECURSE
  "libppms_rsa.a"
)
