# Empty dependencies file for ppms_rsa.
# This may be replaced when dependencies are built.
