file(REMOVE_RECURSE
  "CMakeFiles/ppms_market.dir/market/actors.cpp.o"
  "CMakeFiles/ppms_market.dir/market/actors.cpp.o.d"
  "CMakeFiles/ppms_market.dir/market/bulletin.cpp.o"
  "CMakeFiles/ppms_market.dir/market/bulletin.cpp.o.d"
  "CMakeFiles/ppms_market.dir/market/channel.cpp.o"
  "CMakeFiles/ppms_market.dir/market/channel.cpp.o.d"
  "CMakeFiles/ppms_market.dir/market/scheduler.cpp.o"
  "CMakeFiles/ppms_market.dir/market/scheduler.cpp.o.d"
  "CMakeFiles/ppms_market.dir/market/vbank.cpp.o"
  "CMakeFiles/ppms_market.dir/market/vbank.cpp.o.d"
  "libppms_market.a"
  "libppms_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppms_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
