file(REMOVE_RECURSE
  "libppms_market.a"
)
