# Empty compiler generated dependencies file for ppms_market.
# This may be replaced when dependencies are built.
