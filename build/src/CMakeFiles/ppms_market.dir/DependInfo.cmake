
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/market/actors.cpp" "src/CMakeFiles/ppms_market.dir/market/actors.cpp.o" "gcc" "src/CMakeFiles/ppms_market.dir/market/actors.cpp.o.d"
  "/root/repo/src/market/bulletin.cpp" "src/CMakeFiles/ppms_market.dir/market/bulletin.cpp.o" "gcc" "src/CMakeFiles/ppms_market.dir/market/bulletin.cpp.o.d"
  "/root/repo/src/market/channel.cpp" "src/CMakeFiles/ppms_market.dir/market/channel.cpp.o" "gcc" "src/CMakeFiles/ppms_market.dir/market/channel.cpp.o.d"
  "/root/repo/src/market/scheduler.cpp" "src/CMakeFiles/ppms_market.dir/market/scheduler.cpp.o" "gcc" "src/CMakeFiles/ppms_market.dir/market/scheduler.cpp.o.d"
  "/root/repo/src/market/vbank.cpp" "src/CMakeFiles/ppms_market.dir/market/vbank.cpp.o" "gcc" "src/CMakeFiles/ppms_market.dir/market/vbank.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppms_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
