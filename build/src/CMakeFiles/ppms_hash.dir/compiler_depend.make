# Empty compiler generated dependencies file for ppms_hash.
# This may be replaced when dependencies are built.
