file(REMOVE_RECURSE
  "CMakeFiles/ppms_hash.dir/hash/hmac.cpp.o"
  "CMakeFiles/ppms_hash.dir/hash/hmac.cpp.o.d"
  "CMakeFiles/ppms_hash.dir/hash/mgf1.cpp.o"
  "CMakeFiles/ppms_hash.dir/hash/mgf1.cpp.o.d"
  "CMakeFiles/ppms_hash.dir/hash/sha1.cpp.o"
  "CMakeFiles/ppms_hash.dir/hash/sha1.cpp.o.d"
  "CMakeFiles/ppms_hash.dir/hash/sha256.cpp.o"
  "CMakeFiles/ppms_hash.dir/hash/sha256.cpp.o.d"
  "libppms_hash.a"
  "libppms_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppms_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
