file(REMOVE_RECURSE
  "libppms_hash.a"
)
