# Empty dependencies file for ppms_bigint.
# This may be replaced when dependencies are built.
