file(REMOVE_RECURSE
  "CMakeFiles/ppms_bigint.dir/bigint/bigint.cpp.o"
  "CMakeFiles/ppms_bigint.dir/bigint/bigint.cpp.o.d"
  "CMakeFiles/ppms_bigint.dir/bigint/cunningham.cpp.o"
  "CMakeFiles/ppms_bigint.dir/bigint/cunningham.cpp.o.d"
  "CMakeFiles/ppms_bigint.dir/bigint/modarith.cpp.o"
  "CMakeFiles/ppms_bigint.dir/bigint/modarith.cpp.o.d"
  "CMakeFiles/ppms_bigint.dir/bigint/montgomery.cpp.o"
  "CMakeFiles/ppms_bigint.dir/bigint/montgomery.cpp.o.d"
  "CMakeFiles/ppms_bigint.dir/bigint/prime.cpp.o"
  "CMakeFiles/ppms_bigint.dir/bigint/prime.cpp.o.d"
  "libppms_bigint.a"
  "libppms_bigint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppms_bigint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
