file(REMOVE_RECURSE
  "libppms_bigint.a"
)
