
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bigint/bigint.cpp" "src/CMakeFiles/ppms_bigint.dir/bigint/bigint.cpp.o" "gcc" "src/CMakeFiles/ppms_bigint.dir/bigint/bigint.cpp.o.d"
  "/root/repo/src/bigint/cunningham.cpp" "src/CMakeFiles/ppms_bigint.dir/bigint/cunningham.cpp.o" "gcc" "src/CMakeFiles/ppms_bigint.dir/bigint/cunningham.cpp.o.d"
  "/root/repo/src/bigint/modarith.cpp" "src/CMakeFiles/ppms_bigint.dir/bigint/modarith.cpp.o" "gcc" "src/CMakeFiles/ppms_bigint.dir/bigint/modarith.cpp.o.d"
  "/root/repo/src/bigint/montgomery.cpp" "src/CMakeFiles/ppms_bigint.dir/bigint/montgomery.cpp.o" "gcc" "src/CMakeFiles/ppms_bigint.dir/bigint/montgomery.cpp.o.d"
  "/root/repo/src/bigint/prime.cpp" "src/CMakeFiles/ppms_bigint.dir/bigint/prime.cpp.o" "gcc" "src/CMakeFiles/ppms_bigint.dir/bigint/prime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppms_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
