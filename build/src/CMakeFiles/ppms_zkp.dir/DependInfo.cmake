
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zkp/double_dlog.cpp" "src/CMakeFiles/ppms_zkp.dir/zkp/double_dlog.cpp.o" "gcc" "src/CMakeFiles/ppms_zkp.dir/zkp/double_dlog.cpp.o.d"
  "/root/repo/src/zkp/equality.cpp" "src/CMakeFiles/ppms_zkp.dir/zkp/equality.cpp.o" "gcc" "src/CMakeFiles/ppms_zkp.dir/zkp/equality.cpp.o.d"
  "/root/repo/src/zkp/group.cpp" "src/CMakeFiles/ppms_zkp.dir/zkp/group.cpp.o" "gcc" "src/CMakeFiles/ppms_zkp.dir/zkp/group.cpp.o.d"
  "/root/repo/src/zkp/or_proof.cpp" "src/CMakeFiles/ppms_zkp.dir/zkp/or_proof.cpp.o" "gcc" "src/CMakeFiles/ppms_zkp.dir/zkp/or_proof.cpp.o.d"
  "/root/repo/src/zkp/representation.cpp" "src/CMakeFiles/ppms_zkp.dir/zkp/representation.cpp.o" "gcc" "src/CMakeFiles/ppms_zkp.dir/zkp/representation.cpp.o.d"
  "/root/repo/src/zkp/schnorr.cpp" "src/CMakeFiles/ppms_zkp.dir/zkp/schnorr.cpp.o" "gcc" "src/CMakeFiles/ppms_zkp.dir/zkp/schnorr.cpp.o.d"
  "/root/repo/src/zkp/transcript.cpp" "src/CMakeFiles/ppms_zkp.dir/zkp/transcript.cpp.o" "gcc" "src/CMakeFiles/ppms_zkp.dir/zkp/transcript.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppms_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_pairing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
