file(REMOVE_RECURSE
  "CMakeFiles/ppms_zkp.dir/zkp/double_dlog.cpp.o"
  "CMakeFiles/ppms_zkp.dir/zkp/double_dlog.cpp.o.d"
  "CMakeFiles/ppms_zkp.dir/zkp/equality.cpp.o"
  "CMakeFiles/ppms_zkp.dir/zkp/equality.cpp.o.d"
  "CMakeFiles/ppms_zkp.dir/zkp/group.cpp.o"
  "CMakeFiles/ppms_zkp.dir/zkp/group.cpp.o.d"
  "CMakeFiles/ppms_zkp.dir/zkp/or_proof.cpp.o"
  "CMakeFiles/ppms_zkp.dir/zkp/or_proof.cpp.o.d"
  "CMakeFiles/ppms_zkp.dir/zkp/representation.cpp.o"
  "CMakeFiles/ppms_zkp.dir/zkp/representation.cpp.o.d"
  "CMakeFiles/ppms_zkp.dir/zkp/schnorr.cpp.o"
  "CMakeFiles/ppms_zkp.dir/zkp/schnorr.cpp.o.d"
  "CMakeFiles/ppms_zkp.dir/zkp/transcript.cpp.o"
  "CMakeFiles/ppms_zkp.dir/zkp/transcript.cpp.o.d"
  "libppms_zkp.a"
  "libppms_zkp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppms_zkp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
