# Empty dependencies file for ppms_zkp.
# This may be replaced when dependencies are built.
