file(REMOVE_RECURSE
  "libppms_zkp.a"
)
