file(REMOVE_RECURSE
  "CMakeFiles/ppms_pairing.dir/pairing/curve.cpp.o"
  "CMakeFiles/ppms_pairing.dir/pairing/curve.cpp.o.d"
  "CMakeFiles/ppms_pairing.dir/pairing/fp.cpp.o"
  "CMakeFiles/ppms_pairing.dir/pairing/fp.cpp.o.d"
  "CMakeFiles/ppms_pairing.dir/pairing/fp2.cpp.o"
  "CMakeFiles/ppms_pairing.dir/pairing/fp2.cpp.o.d"
  "CMakeFiles/ppms_pairing.dir/pairing/tate.cpp.o"
  "CMakeFiles/ppms_pairing.dir/pairing/tate.cpp.o.d"
  "CMakeFiles/ppms_pairing.dir/pairing/typea.cpp.o"
  "CMakeFiles/ppms_pairing.dir/pairing/typea.cpp.o.d"
  "libppms_pairing.a"
  "libppms_pairing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppms_pairing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
