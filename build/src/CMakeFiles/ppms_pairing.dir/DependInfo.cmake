
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pairing/curve.cpp" "src/CMakeFiles/ppms_pairing.dir/pairing/curve.cpp.o" "gcc" "src/CMakeFiles/ppms_pairing.dir/pairing/curve.cpp.o.d"
  "/root/repo/src/pairing/fp.cpp" "src/CMakeFiles/ppms_pairing.dir/pairing/fp.cpp.o" "gcc" "src/CMakeFiles/ppms_pairing.dir/pairing/fp.cpp.o.d"
  "/root/repo/src/pairing/fp2.cpp" "src/CMakeFiles/ppms_pairing.dir/pairing/fp2.cpp.o" "gcc" "src/CMakeFiles/ppms_pairing.dir/pairing/fp2.cpp.o.d"
  "/root/repo/src/pairing/tate.cpp" "src/CMakeFiles/ppms_pairing.dir/pairing/tate.cpp.o" "gcc" "src/CMakeFiles/ppms_pairing.dir/pairing/tate.cpp.o.d"
  "/root/repo/src/pairing/typea.cpp" "src/CMakeFiles/ppms_pairing.dir/pairing/typea.cpp.o" "gcc" "src/CMakeFiles/ppms_pairing.dir/pairing/typea.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppms_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
