# Empty dependencies file for ppms_pairing.
# This may be replaced when dependencies are built.
