file(REMOVE_RECURSE
  "libppms_pairing.a"
)
