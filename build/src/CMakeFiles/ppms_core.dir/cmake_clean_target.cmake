file(REMOVE_RECURSE
  "libppms_core.a"
)
