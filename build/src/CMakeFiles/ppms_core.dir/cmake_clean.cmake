file(REMOVE_RECURSE
  "CMakeFiles/ppms_core.dir/core/attack.cpp.o"
  "CMakeFiles/ppms_core.dir/core/attack.cpp.o.d"
  "CMakeFiles/ppms_core.dir/core/cash_break.cpp.o"
  "CMakeFiles/ppms_core.dir/core/cash_break.cpp.o.d"
  "CMakeFiles/ppms_core.dir/core/params.cpp.o"
  "CMakeFiles/ppms_core.dir/core/params.cpp.o.d"
  "CMakeFiles/ppms_core.dir/core/ppmsdec.cpp.o"
  "CMakeFiles/ppms_core.dir/core/ppmsdec.cpp.o.d"
  "CMakeFiles/ppms_core.dir/core/ppmspbs.cpp.o"
  "CMakeFiles/ppms_core.dir/core/ppmspbs.cpp.o.d"
  "libppms_core.a"
  "libppms_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppms_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
