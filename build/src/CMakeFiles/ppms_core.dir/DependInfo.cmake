
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/attack.cpp" "src/CMakeFiles/ppms_core.dir/core/attack.cpp.o" "gcc" "src/CMakeFiles/ppms_core.dir/core/attack.cpp.o.d"
  "/root/repo/src/core/cash_break.cpp" "src/CMakeFiles/ppms_core.dir/core/cash_break.cpp.o" "gcc" "src/CMakeFiles/ppms_core.dir/core/cash_break.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/CMakeFiles/ppms_core.dir/core/params.cpp.o" "gcc" "src/CMakeFiles/ppms_core.dir/core/params.cpp.o.d"
  "/root/repo/src/core/ppmsdec.cpp" "src/CMakeFiles/ppms_core.dir/core/ppmsdec.cpp.o" "gcc" "src/CMakeFiles/ppms_core.dir/core/ppmsdec.cpp.o.d"
  "/root/repo/src/core/ppmspbs.cpp" "src/CMakeFiles/ppms_core.dir/core/ppmspbs.cpp.o" "gcc" "src/CMakeFiles/ppms_core.dir/core/ppmspbs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppms_dec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_blind.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_rsa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_market.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_zkp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_clsig.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_pairing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppms_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
