# Empty dependencies file for ppms_core.
# This may be replaced when dependencies are built.
