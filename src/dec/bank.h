// Bank-side DEC state: issuing certificates at withdrawal and accepting
// deposits with online double-spend detection.
//
// The paper's market administrator runs the bank, so — unlike classic
// offline e-cash — every deposit passes through here and double spends are
// *rejected*, not merely traced afterwards. Detection uses the revealed
// serial paths: spending a node, one of its ancestors, or one of its
// descendants always re-reveals a serial the bank has already filed.
//
// Thread-safe: deposits and withdrawals may arrive concurrently from the
// parallel market driver. The serial store is striped: each (depth,
// serial) key hashes to one of kShards shards with its own mutex, and a
// deposit locks only the (sorted) set of stripes its path touches, so
// deposits of unrelated coins never serialize on a global lock.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "dec/root_hiding.h"
#include "dec/spend.h"
#include "market/outcome.h"
#include "storage/journal.h"
#include "zkp/schnorr.h"

namespace ppms {

class ThreadPool;

class DecBank {
 public:
  DecBank(DecParams params, SecureRandom& rng);

  const DecParams& params() const { return params_; }
  const ClPublicKey& public_key() const { return keys_.pk; }

  /// Anonymous withdrawal: the requester presents a commitment M = g^t
  /// plus a PoK of t; the bank signs blindly. Returns nullopt when the
  /// proof fails. `context` must match the one the prover used.
  std::optional<ClSignature> withdraw(const EcPoint& commitment,
                                      const SchnorrProof& pok,
                                      const Bytes& context,
                                      SecureRandom& rng);

  /// Verify the spend, check the double-spend database, file the serials.
  /// Returns the market-wide SettleOutcome shape (market/outcome.h):
  /// accepted with the coin value, or rejected with kSpendRejected /
  /// kDoubleSpend and a diagnostic.
  SettleOutcome deposit(const SpendBundle& bundle);

  /// Deposit a root-hiding spend (extension; see dec/root_hiding.h).
  /// Detection interplay with regular spends:
  ///  * hiding spends reveal serials from depth 1, so conflicts among
  ///    depth >= 1 nodes use the ordinary path rules;
  ///  * a depth-0 (whole-coin) regular deposit additionally files both
  ///    depth-1 child serials as consumed, and is itself rejected if a
  ///    child serial is already on file — this is what keeps root spends
  ///    and root-hiding spends of the same coin mutually exclusive even
  ///    though the latter never show S_0.
  SettleOutcome deposit_hiding(const RootHidingSpend& spend);

  /// Batch settlement path for one tick's pending deposits: verify every
  /// spend (see verify_batch), then commit the verified ones through the
  /// striped double-spend store in listed order — hiding spends first,
  /// then regular spends, matching the order the market's deposit
  /// scheduler files them. The result vector holds the hiding results
  /// first, then the regular ones.
  std::vector<SettleOutcome> deposit_batch(
      const std::vector<RootHidingSpend>& hiding,
      const std::vector<SpendBundle>& spends, ThreadPool* pool = nullptr);

  /// Verification half of deposit_batch, exposed for benchmarking and
  /// reuse: the t-independent certificate pairing equations of the whole
  /// tick fold into one randomized product of pairings
  /// (verify_cert_equation_batch, with scalars from the bank's own
  /// stream), while the per-spend remainder runs in parallel on `pool`
  /// (inline when null). Flags are ordered hiding-first, like
  /// deposit_batch results, and match the per-deposit verifiers exactly.
  std::vector<bool> verify_batch(const std::vector<RootHidingSpend>& hiding,
                                 const std::vector<SpendBundle>& spends,
                                 ThreadPool* pool = nullptr) const;

  /// Settlement half of deposit() for a spend the caller has ALREADY
  /// verified (verify_spend / verify_batch): double-spend check + serial
  /// filing through the striped store, no re-verification. The staged
  /// market server (server/server.h) runs verification as its own
  /// pipeline stage — batched across unrelated sessions — and its settle
  /// shards commit through these. Calling them on an unverified spend
  /// forfeits the scheme's soundness; nothing here re-checks the proofs.
  SettleOutcome settle_verified(const SpendBundle& bundle);
  SettleOutcome settle_verified_hiding(const RootHidingSpend& spend);

  /// Number of serials on file (test/diagnostics).
  std::size_t recorded_serials() const;

  /// Route every future serial filing through `journal` (null detaches):
  /// an accepted commit appends one kDecSpendMark record — all the keys
  /// it revealed and all it marked spent — while the stripe locks are
  /// held, so the WAL order equals the store's commit order.
  void attach_journal(storage::LedgerJournal* journal) { journal_ = journal; }

  /// Visit every revealed serial (and whether it is also a spent node)
  /// in shard-then-key order, one stripe lock at a time — snapshot
  /// iteration. Keep `fn` short and never call back into this bank.
  void for_each_serial(
      const std::function<void(std::size_t depth, const Bytes& serial,
                               bool spent)>& fn) const;

  /// Recovery-only: re-file one serial without checks or journaling.
  void restore_serial(std::size_t depth, Bytes serial, bool spent);

 private:
  using SerialKey = std::pair<std::size_t, Bytes>;  // (depth, serial)

  static constexpr std::size_t kShards = 16;

  struct Shard {
    mutable std::mutex mu;
    std::set<SerialKey> revealed;     ///< serials on any accepted path
    std::set<SerialKey> spent_nodes;  ///< terminal node of each spend
  };

  SerialKey key_of(std::size_t depth, const Bigint& serial) const;
  static std::size_t shard_of(const SerialKey& key);

  /// Double-spend check + serial filing for an already-verified spend.
  SettleOutcome commit_regular(const SpendBundle& bundle);
  SettleOutcome commit_hiding(const RootHidingSpend& spend);

  /// Append the kDecSpendMark record for an accepted commit (call with
  /// the relevant stripes locked; no-op without a journal).
  void journal_spend_mark(const std::vector<SerialKey>& revealed,
                          const std::vector<SerialKey>& spent);

  /// Lock the (deduplicated, ascending) stripes the keys hash to.
  std::vector<std::unique_lock<std::mutex>> lock_stripes(
      const std::vector<SerialKey>& keys);

  bool revealed_contains(const SerialKey& key) const;
  bool spent_contains(const SerialKey& key) const;
  void file_revealed(const SerialKey& key);
  void file_spent(const SerialKey& key);

  DecParams params_;
  ClKeyPair keys_;
  /// Verifier-owned randomness for batch-verification scalars (seeded off
  /// the construction stream so replays stay deterministic), with its own
  /// lock: verify_batch is const and may race with other bank calls.
  mutable std::mutex batch_rng_mu_;
  mutable SecureRandom batch_rng_;
  mutable std::array<Shard, kShards> shards_;
  storage::LedgerJournal* journal_ = nullptr;
};

}  // namespace ppms
