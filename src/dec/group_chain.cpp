#include "dec/group_chain.h"

#include <mutex>
#include <stdexcept>

#include "bigint/prime.h"
#include "dec/session.h"
#include "util/serial.h"

namespace ppms {

std::uint64_t DecParams::node_value(std::size_t depth) const {
  if (depth > L) throw std::out_of_range("DecParams: depth > L");
  return 1ull << (L - depth);
}

const DecSession& DecParams::session() const {
  // One mutex for every DecParams instance: it only guards the lazy-init
  // pointer swap, never the session's own (internally synchronized) work.
  static std::mutex session_mu;
  std::lock_guard lock(session_mu);
  if (!session_) session_ = std::make_shared<const DecSession>(pairing);
  return *session_;
}

Bytes DecParams::serialize() const {
  Writer w;
  w.put_u32(static_cast<std::uint32_t>(L));
  w.put_u32(static_cast<std::uint32_t>(chain.primes.size()));
  for (const Bigint& p : chain.primes) w.put_bytes(p.to_bytes_be());
  w.put_bytes(pairing.serialize());
  w.put_u32(static_cast<std::uint32_t>(tower.size()));
  for (const ZnGroup& g : tower) {
    w.put_bytes(g.modulus().to_bytes_be());
    w.put_bytes(g.order().to_bytes_be());
    w.put_bytes(g.generator_value().to_bytes_be());
  }
  return w.take();
}

DecParams DecParams::deserialize(const Bytes& data, SecureRandom& rng) {
  Reader r(data);
  DecParams params;
  params.L = r.get_u32();
  const std::uint32_t chain_len = r.get_u32();
  if (chain_len != params.L + 2) {
    throw std::invalid_argument("DecParams: chain length != L + 2");
  }
  for (std::uint32_t i = 0; i < chain_len; ++i) {
    params.chain.primes.push_back(Bigint::from_bytes_be(r.get_bytes()));
  }
  params.pairing = TypeAParams::deserialize(r.get_bytes());
  const std::uint32_t tower_len = r.get_u32();
  if (tower_len != params.L + 1) {
    throw std::invalid_argument("DecParams: tower size != L + 1");
  }
  for (std::uint32_t i = 0; i < tower_len; ++i) {
    const Bigint modulus = Bigint::from_bytes_be(r.get_bytes());
    const Bigint order = Bigint::from_bytes_be(r.get_bytes());
    const Bigint generator = Bigint::from_bytes_be(r.get_bytes());
    // ZnGroup's constructor checks the generator's order.
    params.tower.emplace_back(modulus, order, generator);
  }
  if (!r.exhausted()) throw std::invalid_argument("DecParams: trailing");

  // Cross-structure validation.
  for (std::size_t i = 0; i < params.chain.primes.size(); ++i) {
    if (!is_probable_prime(params.chain.primes[i], rng)) {
      throw std::invalid_argument("DecParams: chain element not prime");
    }
    if (i > 0 && params.chain.primes[i] !=
                     params.chain.primes[i - 1] * Bigint(2) + Bigint(1)) {
      throw std::invalid_argument("DecParams: broken chain relation");
    }
  }
  if (params.pairing.r != params.chain.primes[0]) {
    throw std::invalid_argument("DecParams: pairing order != o_1");
  }
  if ((params.pairing.p % Bigint(4)).to_u64() != 3 ||
      !is_probable_prime(params.pairing.p, rng)) {
    throw std::invalid_argument("DecParams: pairing field prime invalid");
  }
  if (params.pairing.g.infinity ||
      !ec_mul(params.pairing.g, params.pairing.r, params.pairing.p)
           .infinity) {
    throw std::invalid_argument("DecParams: pairing generator not order r");
  }
  for (std::size_t d = 0; d <= params.L; ++d) {
    if (params.tower[d].modulus() != params.chain.primes[d + 1] ||
        params.tower[d].order() != params.chain.primes[d]) {
      throw std::invalid_argument("DecParams: tower/chain mismatch");
    }
  }
  return params;
}

DecParams dec_setup(SecureRandom& rng, std::size_t L, ChainSource source,
                    std::size_t pairing_bits, std::uint64_t search_budget) {
  if (L > 12) {
    // Chains beyond length 14 have no published members; the paper's own
    // evaluation stops at L = 12 for the same reason.
    throw std::invalid_argument("dec_setup: L > 12 unsupported");
  }
  // o_1 must be an odd prime >= 5 to serve as the pairing group order, so
  // never accept the chain starting at 2 (2,5,11,23,47): demand length >= 6
  // and truncate. The extra elements are harmless.
  const std::size_t need = std::max<std::size_t>(L + 2, 6);

  DecParams params;
  params.L = L;
  switch (source) {
    case ChainSource::kTable:
      // Always take the longest published chain (length 14, start near
      // 2^57) and truncate: serial numbers live in groups of order o_i,
      // so a short chain's tiny groups would birthday-collide across
      // wallets in the double-spend database (and gut proof soundness).
      params.chain = table_chain(14, rng);
      break;
    case ChainSource::kSearch: {
      // Start at 5 to skip the even-rooted chain.
      auto found = search_chain(Bigint(5), need, search_budget, rng);
      if (!found) {
        throw std::runtime_error("dec_setup: chain search budget exhausted");
      }
      params.chain = std::move(*found);
      break;
    }
  }
  params.chain.primes.resize(L + 2 > params.chain.primes.size()
                                 ? params.chain.primes.size()
                                 : L + 2);
  if (params.chain.primes.size() < L + 2) {
    throw std::logic_error("dec_setup: chain shorter than requested");
  }

  const Bigint& r = params.chain.primes[0];
  const std::size_t pbits =
      std::max(pairing_bits, r.bit_length() + 8);
  params.pairing = typea_generate_for_order(rng, r, pbits);

  // tower[d] = QR subgroup of Z*_{o_{d+2}}, order o_{d+1}: hosts the
  // serials of tree depth d (0 = root ... L = leaves).
  params.tower.reserve(L + 1);
  for (std::size_t d = 0; d + 1 < L + 2; ++d) {
    params.tower.push_back(
        ZnGroup::quadratic_residues(params.chain.primes[d + 1], rng));
  }
  return params;
}

}  // namespace ppms
