#include "dec/bank.h"

namespace ppms {

DecBank::DecBank(DecParams params, SecureRandom& rng)
    : params_(std::move(params)), keys_(cl_keygen(params_.pairing, rng)) {}

std::optional<ClSignature> DecBank::withdraw(const EcPoint& commitment,
                                             const SchnorrProof& pok,
                                             const Bytes& context,
                                             SecureRandom& rng) {
  const EcGroup ec(params_.pairing);
  const Bytes m = ec.encode(commitment);
  if (!ec.contains(m)) return std::nullopt;
  if (!schnorr_verify(ec, ec.generator(), m, pok, context)) {
    return std::nullopt;
  }
  return cl_sign_committed(params_.pairing, keys_.sk, commitment, rng);
}

DecBank::SerialKey DecBank::key_of(std::size_t depth,
                                   const Bigint& serial) const {
  return {depth, serial.to_bytes_be()};
}

DecBank::DepositResult DecBank::deposit(const SpendBundle& bundle) {
  if (!verify_spend(params_, keys_.pk, bundle)) {
    return {false, 0, "spend verification failed"};
  }
  const std::size_t depth = bundle.node.depth;
  const SerialKey node_key = key_of(depth, bundle.path_serials[depth]);

  std::lock_guard lock(mu_);
  // Same node already spent, or a descendant's path already crossed it.
  if (revealed_.count(node_key) > 0) {
    return {false, 0, "double spend: node or descendant already spent"};
  }
  // An ancestor of this node was spent as a whole coin.
  for (std::size_t d = 0; d < depth; ++d) {
    if (spent_nodes_.count(key_of(d, bundle.path_serials[d])) > 0) {
      return {false, 0, "double spend: ancestor already spent"};
    }
  }
  // Whole-coin deposits must also fence off their (never-revealed-by-
  // hiding-spend) depth-1 children; see deposit_hiding's doc comment.
  std::vector<SerialKey> child_keys;
  if (depth == 0 && params_.L >= 1) {
    for (const bool bit : {false, true}) {
      const Bigint child =
          child_serial(params_, 1, bundle.path_serials[0], bit);
      SerialKey key = key_of(1, child);
      if (revealed_.count(key) > 0) {
        return {false, 0, "double spend: descendant already spent"};
      }
      child_keys.push_back(std::move(key));
    }
  }
  for (std::size_t d = 0; d <= depth; ++d) {
    revealed_.insert(key_of(d, bundle.path_serials[d]));
  }
  for (SerialKey& key : child_keys) {
    revealed_.insert(key);
    spent_nodes_.insert(std::move(key));
  }
  spent_nodes_.insert(node_key);
  return {true, params_.node_value(depth), ""};
}

DecBank::DepositResult DecBank::deposit_hiding(const RootHidingSpend& spend) {
  if (!verify_root_hiding_spend(params_, keys_.pk, spend)) {
    return {false, 0, "spend verification failed"};
  }
  const std::size_t depth = spend.node.depth;
  // path_serials[i] is the serial at tree depth i + 1.
  const SerialKey node_key = key_of(depth, spend.path_serials[depth - 1]);

  std::lock_guard lock(mu_);
  if (revealed_.count(node_key) > 0) {
    return {false, 0, "double spend: node or descendant already spent"};
  }
  for (std::size_t d = 1; d < depth; ++d) {
    if (spent_nodes_.count(key_of(d, spend.path_serials[d - 1])) > 0) {
      return {false, 0, "double spend: ancestor already spent"};
    }
  }
  for (std::size_t d = 1; d <= depth; ++d) {
    revealed_.insert(key_of(d, spend.path_serials[d - 1]));
  }
  spent_nodes_.insert(node_key);
  return {true, params_.node_value(depth), ""};
}

std::size_t DecBank::recorded_serials() const {
  std::lock_guard lock(mu_);
  return revealed_.size();
}

}  // namespace ppms
