#include "dec/bank.h"

#include <algorithm>
#include <future>

#include "util/thread_pool.h"

namespace ppms {

DecBank::DecBank(DecParams params, SecureRandom& rng)
    : params_(std::move(params)),
      keys_(cl_keygen(params_.pairing, rng)),
      batch_rng_(rng.next_u64()) {}

std::optional<ClSignature> DecBank::withdraw(const EcPoint& commitment,
                                             const SchnorrProof& pok,
                                             const Bytes& context,
                                             SecureRandom& rng) {
  const EcGroup ec(params_.pairing);
  const Bytes m = ec.encode(commitment);
  if (!ec.contains(m)) return std::nullopt;
  if (!schnorr_verify(ec, ec.generator(), m, pok, context)) {
    return std::nullopt;
  }
  return cl_sign_committed(params_.pairing, keys_.sk, commitment, rng);
}

DecBank::SerialKey DecBank::key_of(std::size_t depth,
                                   const Bigint& serial) const {
  return {depth, serial.to_bytes_be()};
}

std::size_t DecBank::shard_of(const SerialKey& key) {
  // FNV-1a over depth then the serial bytes.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ull;
  };
  for (std::size_t i = 0; i < sizeof(std::size_t); ++i) {
    mix(static_cast<std::uint8_t>(key.first >> (8 * i)));
  }
  for (const std::uint8_t byte : key.second) mix(byte);
  return h % kShards;
}

std::vector<std::unique_lock<std::mutex>> DecBank::lock_stripes(
    const std::vector<SerialKey>& keys) {
  std::vector<std::size_t> stripes;
  stripes.reserve(keys.size());
  for (const SerialKey& key : keys) stripes.push_back(shard_of(key));
  std::sort(stripes.begin(), stripes.end());
  stripes.erase(std::unique(stripes.begin(), stripes.end()), stripes.end());
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(stripes.size());
  for (const std::size_t stripe : stripes) {
    locks.emplace_back(shards_[stripe].mu);
  }
  return locks;
}

// The *_contains / file_* helpers run with the relevant stripes already
// held by lock_stripes; they must not lock.
bool DecBank::revealed_contains(const SerialKey& key) const {
  return shards_[shard_of(key)].revealed.count(key) > 0;
}

bool DecBank::spent_contains(const SerialKey& key) const {
  return shards_[shard_of(key)].spent_nodes.count(key) > 0;
}

void DecBank::file_revealed(const SerialKey& key) {
  shards_[shard_of(key)].revealed.insert(key);
}

void DecBank::file_spent(const SerialKey& key) {
  shards_[shard_of(key)].spent_nodes.insert(key);
}

void DecBank::journal_spend_mark(const std::vector<SerialKey>& revealed,
                                 const std::vector<SerialKey>& spent) {
  if (journal_ == nullptr) return;
  storage::DecSpendMarkRecord rec;
  rec.revealed.reserve(revealed.size());
  for (const SerialKey& key : revealed) {
    rec.revealed.push_back({key.first, key.second});
  }
  rec.spent.reserve(spent.size());
  for (const SerialKey& key : spent) {
    rec.spent.push_back({key.first, key.second});
  }
  journal_->append(storage::MutationKind::kDecSpendMark,
                   storage::encode(rec));
}

SettleOutcome DecBank::commit_regular(const SpendBundle& bundle) {
  const std::size_t depth = bundle.node.depth;
  const SerialKey node_key = key_of(depth, bundle.path_serials[depth]);

  std::vector<SerialKey> path_keys;
  for (std::size_t d = 0; d <= depth; ++d) {
    path_keys.push_back(key_of(d, bundle.path_serials[d]));
  }
  // Whole-coin deposits must also fence off their (never-revealed-by-
  // hiding-spend) depth-1 children; see deposit_hiding's doc comment.
  std::vector<SerialKey> child_keys;
  if (depth == 0 && params_.L >= 1) {
    for (const bool bit : {false, true}) {
      child_keys.push_back(
          key_of(1, child_serial(params_, 1, bundle.path_serials[0], bit)));
    }
  }

  std::vector<SerialKey> all_keys = path_keys;
  all_keys.insert(all_keys.end(), child_keys.begin(), child_keys.end());
  const auto locks = lock_stripes(all_keys);

  // Same node already spent, or a descendant's path already crossed it.
  if (revealed_contains(node_key)) {
    return SettleOutcome::rejected(
        MarketErrc::kDoubleSpend,
        "double spend: node or descendant already spent");
  }
  // An ancestor of this node was spent as a whole coin.
  for (std::size_t d = 0; d < depth; ++d) {
    if (spent_contains(path_keys[d])) {
      return SettleOutcome::rejected(MarketErrc::kDoubleSpend,
                                     "double spend: ancestor already spent");
    }
  }
  for (const SerialKey& key : child_keys) {
    if (revealed_contains(key)) {
      return SettleOutcome::rejected(
          MarketErrc::kDoubleSpend,
          "double spend: descendant already spent");
    }
  }
  // Journal inside the stripe locks (data lock → journal lock), so the
  // WAL's spend-mark order equals the store's commit order exactly.
  {
    std::vector<SerialKey> spent = child_keys;
    spent.push_back(node_key);
    journal_spend_mark(all_keys, spent);
  }
  for (const SerialKey& key : path_keys) file_revealed(key);
  for (const SerialKey& key : child_keys) {
    file_revealed(key);
    file_spent(key);
  }
  file_spent(node_key);
  return SettleOutcome::ok(params_.node_value(depth));
}

SettleOutcome DecBank::commit_hiding(const RootHidingSpend& spend) {
  const std::size_t depth = spend.node.depth;
  // path_serials[i] is the serial at tree depth i + 1.
  const SerialKey node_key = key_of(depth, spend.path_serials[depth - 1]);

  std::vector<SerialKey> path_keys;
  for (std::size_t d = 1; d <= depth; ++d) {
    path_keys.push_back(key_of(d, spend.path_serials[d - 1]));
  }
  const auto locks = lock_stripes(path_keys);

  if (revealed_contains(node_key)) {
    return SettleOutcome::rejected(
        MarketErrc::kDoubleSpend,
        "double spend: node or descendant already spent");
  }
  for (std::size_t d = 1; d < depth; ++d) {
    if (spent_contains(path_keys[d - 1])) {
      return SettleOutcome::rejected(MarketErrc::kDoubleSpend,
                                     "double spend: ancestor already spent");
    }
  }
  journal_spend_mark(path_keys, {node_key});
  for (const SerialKey& key : path_keys) file_revealed(key);
  file_spent(node_key);
  return SettleOutcome::ok(params_.node_value(depth));
}

SettleOutcome DecBank::deposit(const SpendBundle& bundle) {
  if (!verify_spend(params_, keys_.pk, bundle)) {
    return SettleOutcome::rejected(MarketErrc::kSpendRejected,
                                   "spend verification failed");
  }
  return commit_regular(bundle);
}

SettleOutcome DecBank::deposit_hiding(const RootHidingSpend& spend) {
  if (!verify_root_hiding_spend(params_, keys_.pk, spend)) {
    return SettleOutcome::rejected(MarketErrc::kSpendRejected,
                                   "spend verification failed");
  }
  return commit_hiding(spend);
}

std::vector<bool> DecBank::verify_batch(
    const std::vector<RootHidingSpend>& hiding,
    const std::vector<SpendBundle>& spends, ThreadPool* pool) const {
  const std::size_t total = hiding.size() + spends.size();

  // All certificate pairing equations of the tick in one randomized
  // product of pairings (one combined Miller pass, one final
  // exponentiation — the deposit path's former pairing bill).
  std::vector<const ClSignature*> certs;
  certs.reserve(total);
  for (const RootHidingSpend& spend : hiding) certs.push_back(&spend.cert);
  for (const SpendBundle& bundle : spends) certs.push_back(&bundle.cert);
  std::vector<bool> cert_ok;
  {
    std::lock_guard lock(batch_rng_mu_);
    cert_ok = verify_cert_equation_batch(params_, keys_.pk, certs, batch_rng_);
  }

  // The t-dependent remainder of every spend still runs (even for
  // cert-rejected members) so the batch's op counts and timing stay in
  // line with the per-deposit path on honest traffic.
  std::vector<char> rest(total, 0);
  if (pool != nullptr && total > 1) {
    std::vector<std::future<bool>> futures;
    futures.reserve(total);
    for (const RootHidingSpend& spend : hiding) {
      futures.push_back(pool->submit([this, &spend] {
        return verify_root_hiding_spend_assuming_cert(params_, keys_.pk,
                                                      spend);
      }));
    }
    for (const SpendBundle& bundle : spends) {
      futures.push_back(pool->submit([this, &bundle] {
        return verify_spend_assuming_cert(params_, keys_.pk, bundle);
      }));
    }
    for (std::size_t i = 0; i < total; ++i) {
      rest[i] = futures[i].get() ? 1 : 0;
    }
  } else {
    std::size_t i = 0;
    for (const RootHidingSpend& spend : hiding) {
      rest[i++] =
          verify_root_hiding_spend_assuming_cert(params_, keys_.pk, spend);
    }
    for (const SpendBundle& bundle : spends) {
      rest[i++] = verify_spend_assuming_cert(params_, keys_.pk, bundle);
    }
  }

  std::vector<bool> verified(total);
  for (std::size_t i = 0; i < total; ++i) {
    verified[i] = cert_ok[i] && rest[i] != 0;
  }
  return verified;
}

SettleOutcome DecBank::settle_verified(const SpendBundle& bundle) {
  return commit_regular(bundle);
}

SettleOutcome DecBank::settle_verified_hiding(const RootHidingSpend& spend) {
  return commit_hiding(spend);
}

std::vector<SettleOutcome> DecBank::deposit_batch(
    const std::vector<RootHidingSpend>& hiding,
    const std::vector<SpendBundle>& spends, ThreadPool* pool) {
  const std::vector<bool> verified = verify_batch(hiding, spends, pool);

  // Commit sequentially in listed order so intra-batch double spends
  // resolve exactly as the equivalent sequence of single deposits.
  std::vector<SettleOutcome> results(hiding.size() + spends.size());
  for (std::size_t i = 0; i < hiding.size(); ++i) {
    results[i] = verified[i]
                     ? commit_hiding(hiding[i])
                     : SettleOutcome::rejected(MarketErrc::kSpendRejected,
                                               "spend verification failed");
  }
  for (std::size_t i = 0; i < spends.size(); ++i) {
    const std::size_t slot = hiding.size() + i;
    results[slot] = verified[slot]
                        ? commit_regular(spends[i])
                        : SettleOutcome::rejected(
                              MarketErrc::kSpendRejected,
                              "spend verification failed");
  }
  return results;
}

std::size_t DecBank::recorded_serials() const {
  std::size_t count = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    count += shard.revealed.size();
  }
  return count;
}

void DecBank::for_each_serial(
    const std::function<void(std::size_t depth, const Bytes& serial,
                             bool spent)>& fn) const {
  // spent_nodes ⊆ revealed (every commit files its spent keys as
  // revealed too), so iterating `revealed` with a spent flag loses
  // nothing.
  for (const Shard& shard : shards_) {
    std::lock_guard lock(shard.mu);
    for (const SerialKey& key : shard.revealed) {
      fn(key.first, key.second, shard.spent_nodes.count(key) > 0);
    }
  }
}

void DecBank::restore_serial(std::size_t depth, Bytes serial, bool spent) {
  SerialKey key{depth, std::move(serial)};
  Shard& shard = shards_[shard_of(key)];
  std::lock_guard lock(shard.mu);
  if (spent) shard.spent_nodes.insert(key);
  shard.revealed.insert(std::move(key));
}

}  // namespace ppms
