#include "dec/wallet.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace ppms {

DecWallet::DecWallet(const DecParams& params, SecureRandom& rng)
    : params_(&params),
      t_(Bigint::random_range(rng, Bigint(1), params.pairing.r)),
      ec_(params.pairing),
      free_(params.L + 1) {
  // Prime the market-wide pairing session (GtGroup, Montgomery context,
  // fixed-argument Miller tables) so spend-time work never pays setup.
  params.session();
  commitment_ = ec_mul(params.pairing.g, t_, params.pairing.p);
  free_[0].push_back(0);  // the whole tree
}

SchnorrProof DecWallet::prove_commitment(SecureRandom& rng,
                                         const Bytes& context) const {
  return schnorr_prove(ec_, ec_.generator(), ec_.encode(commitment_), t_, rng,
                       context);
}

void DecWallet::set_certificate(const ClPublicKey& bank_pk,
                                const ClSignature& cert) {
  if (!cl_verify(params_->pairing, bank_pk, t_, cert)) {
    throw std::invalid_argument("DecWallet: certificate does not verify");
  }
  cert_ = cert;
}

std::uint64_t DecWallet::balance() const {
  std::uint64_t total = 0;
  for (std::size_t d = 0; d <= params_->L; ++d) {
    total += free_[d].size() * params_->node_value(d);
  }
  return total;
}

std::optional<NodeIndex> DecWallet::allocate(std::uint64_t denomination) {
  if (denomination == 0 || !std::has_single_bit(denomination) ||
      denomination > params_->root_value()) {
    return std::nullopt;
  }
  const std::size_t depth =
      params_->L - static_cast<std::size_t>(std::countr_zero(denomination));
  // Find the deepest free ancestor level that can supply this node.
  std::size_t from = depth + 1;
  for (std::size_t d = depth + 1; d-- > 0;) {
    if (!free_[d].empty()) {
      from = d;
      break;
    }
  }
  if (from == depth + 1) return std::nullopt;
  // Split down: take a free node and peel off right siblings.
  std::uint64_t index = free_[from].back();
  free_[from].pop_back();
  for (std::size_t d = from; d < depth; ++d) {
    free_[d + 1].push_back(2 * index + 1);  // sibling stays free
    index = 2 * index;
  }
  return NodeIndex{depth, index};
}

SpendBundle DecWallet::spend(const NodeIndex& node,
                             const ClPublicKey& bank_pk, SecureRandom& rng,
                             const Bytes& context) const {
  if (!cert_.has_value()) {
    throw std::logic_error("DecWallet::spend: no certificate installed");
  }
  return make_spend(*params_, bank_pk, t_, *cert_, node, rng, context);
}

RootHidingSpend DecWallet::spend_hiding(const NodeIndex& node,
                                        const ClPublicKey& bank_pk,
                                        SecureRandom& rng,
                                        const Bytes& context) const {
  if (!cert_.has_value()) {
    throw std::logic_error("DecWallet::spend_hiding: no certificate");
  }
  return make_root_hiding_spend(*params_, bank_pk, t_, *cert_, node, rng,
                                context);
}

std::optional<std::vector<NodeIndex>> DecWallet::allocate_denominations(
    const std::vector<std::uint64_t>& denominations) {
  const auto saved_free = free_;
  std::vector<std::uint64_t> sorted = denominations;
  std::sort(sorted.rbegin(), sorted.rend());
  std::vector<NodeIndex> nodes;
  for (const std::uint64_t denom : sorted) {
    if (denom == 0) continue;  // fake coins carry no tree node
    const auto node = allocate(denom);
    if (!node) {
      free_ = saved_free;
      return std::nullopt;
    }
    nodes.push_back(*node);
  }
  return nodes;
}

std::optional<std::vector<SpendBundle>> DecWallet::spend_denominations(
    const std::vector<std::uint64_t>& denominations,
    const ClPublicKey& bank_pk, SecureRandom& rng, const Bytes& context) {
  const auto nodes = allocate_denominations(denominations);
  if (!nodes) return std::nullopt;
  std::vector<SpendBundle> bundles;
  bundles.reserve(nodes->size());
  for (const NodeIndex& node : *nodes) {
    bundles.push_back(spend(node, bank_pk, rng, context));
  }
  return bundles;
}

}  // namespace ppms
