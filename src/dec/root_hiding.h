// Root-hiding spends — an extension beyond the paper's baseline scheme.
//
// A regular SpendBundle reveals the full serial path S_0..S_d, so every
// spend from one coin shares the root serial S_0: the bank can cluster all
// of a coin's spends (classic Okamoto-tree linkability; the paper inherits
// it). A RootHidingSpend reveals only S_1..S_d and replaces the root link
// with a zero-knowledge proof, cutting the coarsest clustering signal in
// half (spends from the two depth-1 subtrees become unlinkable).
//
// The proof is a cut-and-choose AND-composition of Stadler's double
// discrete log [36] with the certificate relation:
//   PoK{ t :  S_1 · g_1'^{-b_1} = (g_1'^2)^{(g_0^t)}   (tower statement)
//          ∧  W = V^t }                                  (GT statement)
// where g_0, g_1' are the tower generators at depths 0 and 1, b_1 is the
// first branch bit, and (V, W) encode CL-certificate validity exactly as
// in the regular spend. Per round i the prover draws r_i and commits
//   T_i = (g_1'^2)^{(g_0^{r_i})}   and   U_i = V^{r_i};
// challenge bit 0 opens r_i, bit 1 opens r_i - t, and both sides check.
// Soundness is 2^-rounds.
//
// Bank-side double-spend handling lives in DecBank::deposit_hiding; the
// depth-0 special casing it needs is documented there.
#pragma once

#include "dec/spend.h"

namespace ppms {

struct RootHidingSpend {
  NodeIndex node;                    ///< depth >= 1
  std::vector<Bigint> path_serials;  ///< S_1 .. S_depth (no root!)
  ClSignature cert;                  ///< re-randomized CL certificate
  std::vector<Bytes> tower_commitments;  ///< T_i in tower[1]
  std::vector<Bytes> gt_commitments;     ///< U_i in GT
  std::vector<Bigint> responses;         ///< z_i in Z_r
  Bytes context;

  std::size_t rounds() const { return responses.size(); }

  Bytes serialize(const DecParams& params) const;
  static RootHidingSpend deserialize(const DecParams& params,
                                     const Bytes& data);
};

/// Default soundness: 2^-32 per spend.
inline constexpr std::size_t kRootHidingRounds = 32;

/// Produce a root-hiding spend of `node` (depth >= 1; throws
/// std::invalid_argument on a root node — a root spend necessarily
/// reveals its own serial).
RootHidingSpend make_root_hiding_spend(const DecParams& params,
                                       const ClPublicKey& bank_pk,
                                       const Bigint& t,
                                       const ClSignature& cert,
                                       const NodeIndex& node,
                                       SecureRandom& rng,
                                       const Bytes& context,
                                       std::size_t rounds =
                                           kRootHidingRounds);

/// Public verification (no double-spend check; that is deposit-time).
bool verify_root_hiding_spend(const DecParams& params,
                              const ClPublicKey& bank_pk,
                              const RootHidingSpend& spend,
                              std::size_t rounds = kRootHidingRounds);

/// Everything verify_root_hiding_spend checks except the certificate
/// pairing equation ê(a,Y) == ê(g,b) (see verify_cert_equation /
/// verify_cert_equation_batch in dec/spend.h), so the bank can batch that
/// half across a deposit tick.
bool verify_root_hiding_spend_assuming_cert(const DecParams& params,
                                            const ClPublicKey& bank_pk,
                                            const RootHidingSpend& spend,
                                            std::size_t rounds =
                                                kRootHidingRounds);

}  // namespace ppms
