// Per-market pairing session state: the GtGroup (and its pairing engine /
// Montgomery context) plus the fixed-argument Miller tables for the points
// every spend-side pairing is anchored on — the curve generator g and the
// bank's CL key points X, Y.
//
// make_spend / verify_spend used to rebuild a fresh GtGroup per call;
// DecParams::session() now hands out one DecSession per market so that
// setup is paid once, and the precomp tables turn each certificate check
// into table replays instead of full Miller loops.
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "clsig/clsig.h"
#include "zkp/group.h"

namespace ppms {

/// Fixed-argument tables for one CL public key.
struct ClPkPrecomp {
  PairingPrecomp X, Y;
};

class DecSession {
 public:
  explicit DecSession(TypeAParams pairing);

  const GtGroup& gt() const { return gt_; }

  /// The group's engine; never null for validated DEC parameters (the
  /// pairing field prime is checked odd at setup/deserialize time).
  const PairingEngine& engine() const { return *gt_.engine(); }

  /// Miller table for the curve generator g.
  const PairingPrecomp& pre_g() const { return pre_g_; }

  /// Miller tables for a bank public key, built on first use and cached
  /// by key bytes (a market sees one bank key, adversarial tests a few).
  /// Returns null if either key point is off-curve.
  std::shared_ptr<const ClPkPrecomp> pk_tables(const ClPublicKey& pk) const;

 private:
  GtGroup gt_;
  PairingPrecomp pre_g_;
  mutable std::mutex mu_;
  mutable std::map<Bytes, std::shared_ptr<const ClPkPrecomp>> pk_cache_;
};

}  // namespace ppms
