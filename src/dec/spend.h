// The Spend message of the DEC scheme and its public verification.
//
// Spending tree node ν of a certified coin reveals the serial path
// S_0..S_ν plus a re-randomized CL certificate, and proves in zero
// knowledge that the hidden wallet secret t both (a) underlies the
// certificate and (b) generates the revealed root serial. Everything else
// — path consistency, certificate well-formedness — is publicly checkable,
// so the verifier (the receiving SP, and later the bank) never learns t or
// the spender's identity.
#pragma once

#include "clsig/clsig.h"
#include "dec/coin.h"
#include "zkp/equality.h"

namespace ppms {

struct SpendBundle {
  NodeIndex node;
  std::vector<Bigint> path_serials;  ///< S_0 .. S_depth
  ClSignature cert;                  ///< re-randomized CL certificate
  EqualityProof proof;               ///< PoK{t: GT relation ∧ S_0 = g_1^t}
  Bytes context;                     ///< payee/session binding

  Bytes serialize(const DecParams& params) const;
  static SpendBundle deserialize(const DecParams& params, const Bytes& data);
};

/// The transcript-binding bytes for a bundle: everything but the proof.
Bytes spend_binding(const DecParams& params, const SpendBundle& bundle);

/// Full public verification (path membership, chain links, certificate
/// pairing check, equality proof). Does NOT consult the double-spend
/// database — that is the bank's deposit-time job.
bool verify_spend(const DecParams& params, const ClPublicKey& bank_pk,
                  const SpendBundle& bundle);

/// The t-independent certificate half-check shared by regular and
/// root-hiding spends: well-formed points plus ê(a, Y) == ê(g, b). Split
/// out so the bank can batch it across a whole deposit tick;
/// verify_spend ⟺ verify_cert_equation ∧ verify_spend_assuming_cert.
bool verify_cert_equation(const DecParams& params, const ClPublicKey& bank_pk,
                          const ClSignature& cert);

/// Randomized small-exponent batch form of verify_cert_equation: one
/// product of pairings ∏_j [ê(Y,a_j)·ê(g,b_j)⁻¹]^{δ_j} == 1 with fresh
/// δ_j ∈ [1, r) per certificate decides the whole batch (false-accept
/// probability ≤ 1/(r-1)); on reject it falls back to per-certificate
/// checks, so the returned flags always match verify_cert_equation.
/// Null entries come back false.
std::vector<bool> verify_cert_equation_batch(
    const DecParams& params, const ClPublicKey& bank_pk,
    const std::vector<const ClSignature*>& certs, SecureRandom& rng);

/// Everything verify_spend checks except the certificate pairing
/// equation (structure, serial membership, chain links, equality proof).
bool verify_spend_assuming_cert(const DecParams& params,
                                const ClPublicKey& bank_pk,
                                const SpendBundle& bundle);

/// Produce a spend of `node` from wallet secret `t` certified by `cert`
/// (the caller re-randomizes; this signs the statement). Exposed for the
/// wallet and for adversarial tests that forge pieces.
SpendBundle make_spend(const DecParams& params, const ClPublicKey& bank_pk,
                       const Bigint& t, const ClSignature& cert,
                       const NodeIndex& node, SecureRandom& rng,
                       const Bytes& context);

}  // namespace ppms
