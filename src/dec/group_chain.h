// DEC system parameters: the Cunningham-chain group tower plus the pairing
// group, produced by Setup(DEC) (paper Section III-C1 / VI-A).
//
// A coin is a binary tree of L+1 levels (root value 2^L). Serial numbers
// live in a tower of cyclic groups
//     G_1 ⊂ Z*_{o_2}, G_2 ⊂ Z*_{o_3}, ..., |G_i| = o_i,  o_{i+1} = 2·o_i + 1
// over a first-kind Cunningham chain o_1 < o_2 < ... < o_{L+2}. The chain
// search is the expensive part of setup the paper's Fig 2 measures.
//
// The pairing group order is chosen equal to o_1 so that a wallet secret
// t ∈ Z_{o_1} simultaneously indexes the coin's root serial g_1^t (in the
// tower) and the CL certificate commitment g^t (on the curve); the spend
// proof then reduces to an equality-of-discrete-logs statement.
#pragma once

#include <memory>
#include <vector>

#include "bigint/cunningham.h"
#include "clsig/clsig.h"
#include "zkp/group.h"

namespace ppms {

class DecSession;

/// How Setup acquires the Cunningham chain.
enum class ChainSource {
  kSearch,  ///< genuine enumeration search (what Fig 2 times; slow at L>=7)
  kTable,   ///< published minimal chains, Miller-Rabin re-verified
};

struct DecParams {
  std::size_t L = 0;          ///< tree levels; root coin value 2^L
  CunninghamChain chain;      ///< o_1 ... o_{L+2}
  TypeAParams pairing;        ///< curve group of order r = o_1
  std::vector<ZnGroup> tower; ///< tower[d] hosts depth-d serials:
                              ///< subgroup of Z*_{o_{d+2}} of order o_{d+1}

  /// Coin value of a node at `depth` (root depth 0): 2^(L - depth).
  std::uint64_t node_value(std::size_t depth) const;

  /// Root coin denomination 2^L.
  std::uint64_t root_value() const { return node_value(0); }

  /// Persist the full parameter set. The paper recommends running the
  /// expensive Setup offline and distributing its output (Section VI-A);
  /// this is that output's wire format.
  Bytes serialize() const;

  /// Load and structurally validate persisted parameters: chain relation
  /// o_{i+1} = 2·o_i + 1, primality of every chain element, pairing
  /// cofactor relation, tower moduli/orders and generator orders. Throws
  /// std::invalid_argument on any inconsistency, so a tampered parameter
  /// file cannot produce a subtly broken market.
  static DecParams deserialize(const Bytes& data, SecureRandom& rng);

  /// Session-lifetime pairing state (GtGroup + fixed-argument Miller
  /// tables; see dec/session.h), built lazily on first use and shared by
  /// copies made afterwards. Thread-safe.
  const DecSession& session() const;

 private:
  mutable std::shared_ptr<const DecSession> session_;
};

/// Run Setup(DEC) for a given tree height. `pairing_bits` sizes the curve
/// field; the chain is found per `source` (kSearch may take minutes for
/// L >= 6 and throws std::runtime_error past `search_budget` candidates).
DecParams dec_setup(SecureRandom& rng, std::size_t L, ChainSource source,
                    std::size_t pairing_bits = 192,
                    std::uint64_t search_budget = 200000000);

}  // namespace ppms
