#include "dec/root_hiding.h"

#include <stdexcept>

#include "bigint/modarith.h"
#include "bigint/montgomery.h"
#include "dec/session.h"
#include "util/counters.h"
#include "obs/metrics.h"
#include "util/serial.h"
#include "zkp/transcript.h"

namespace ppms {

namespace {

// Certificate statement pieces, identical to the regular spend's —
// including the byte-level V/W values (fixed-point-first pairings off the
// session's Miller tables, W folded into one final exponentiation), so
// the Fiat-Shamir transcript is unchanged.
struct GtStatement {
  Bytes V, W;
};

GtStatement gt_statement(const DecSession& session, const ClPkPrecomp* pre_pk,
                         const ClPublicKey& bank_pk,
                         const ClSignature& cert) {
  const GtGroup& gt = session.gt();
  GtStatement s;
  if (pre_pk != nullptr) {
    s.V = gt.pair(pre_pk->X, cert.b);
    s.W = gt.pair_product({
        PairingTerm{.pre = &session.pre_g(), .Q = cert.c},
        PairingTerm{.pre = &pre_pk->X, .Q = cert.a, .invert = true},
    });
    return s;
  }
  const TypeAParams& pairing = gt.params();
  s.V = gt.pair(bank_pk.X, cert.b);
  s.W = gt.op(gt.pair(pairing.g, cert.c), gt.inv(gt.pair(bank_pk.X, cert.a)));
  return s;
}

// Tower statement: Y = S_1 · g_1'^{-b_1} and outer base G = g_1'^2, both
// elements of tower[1]; inner base h = g_0 with arithmetic mod o_2.
struct TowerStatement {
  Bytes Y, G;
  Bigint h;
  Bigint inner_modulus;  // o_2
};

TowerStatement tower_statement(const DecParams& params,
                               const Bigint& s1, bool b1) {
  const ZnGroup& g1 = params.tower[1];
  TowerStatement s;
  const Bytes gen = g1.generator();
  s.G = g1.op(gen, gen);
  Bytes y = g1.encode(s1);
  if (b1) y = g1.op(y, g1.inv(gen));
  s.Y = std::move(y);
  s.h = params.tower[0].generator_value();
  s.inner_modulus = params.tower[0].modulus();
  return s;
}

Bytes challenge_bits(const DecParams& params, const RootHidingSpend& spend,
                     const GtStatement& gts, const TowerStatement& ts,
                     std::size_t rounds) {
  Transcript t("ppms.dec.root_hiding");
  Writer w;
  w.put_u32(static_cast<std::uint32_t>(spend.node.depth));
  w.put_u64(spend.node.index);
  for (const Bigint& s : spend.path_serials) w.put_bytes(s.to_bytes_be());
  w.put_bytes(spend.cert.serialize(params.pairing));
  w.put_bytes(spend.context);
  t.absorb("statement", w.data());
  t.absorb("V", gts.V);
  t.absorb("W", gts.W);
  t.absorb("Y", ts.Y);
  t.absorb("G", ts.G);
  for (std::size_t i = 0; i < spend.tower_commitments.size(); ++i) {
    t.absorb("T", spend.tower_commitments[i]);
    t.absorb("U", spend.gt_commitments[i]);
  }
  return t.challenge_bytes("bits", (rounds + 7) / 8);
}

bool bit_at(const Bytes& bits, std::size_t i) {
  return (bits[i / 8] >> (i % 8)) & 1;
}

}  // namespace

Bytes RootHidingSpend::serialize(const DecParams& params) const {
  Writer w;
  w.put_u32(static_cast<std::uint32_t>(node.depth));
  w.put_u64(node.index);
  w.put_u32(static_cast<std::uint32_t>(path_serials.size()));
  for (const Bigint& s : path_serials) w.put_bytes(s.to_bytes_be());
  w.put_bytes(cert.serialize(params.pairing));
  w.put_u32(static_cast<std::uint32_t>(responses.size()));
  for (std::size_t i = 0; i < responses.size(); ++i) {
    w.put_bytes(tower_commitments[i]);
    w.put_bytes(gt_commitments[i]);
    w.put_bytes(responses[i].to_bytes_be());
  }
  w.put_bytes(context);
  return w.take();
}

RootHidingSpend RootHidingSpend::deserialize(const DecParams& params,
                                             const Bytes& data) {
  Reader r(data);
  RootHidingSpend spend;
  spend.node.depth = r.get_u32();
  spend.node.index = r.get_u64();
  const std::uint32_t n_serials = r.get_u32();
  for (std::uint32_t i = 0; i < n_serials; ++i) {
    spend.path_serials.push_back(Bigint::from_bytes_be(r.get_bytes()));
  }
  spend.cert = ClSignature::deserialize(params.pairing, r.get_bytes());
  const std::uint32_t n_rounds = r.get_u32();
  for (std::uint32_t i = 0; i < n_rounds; ++i) {
    spend.tower_commitments.push_back(r.get_bytes());
    spend.gt_commitments.push_back(r.get_bytes());
    spend.responses.push_back(Bigint::from_bytes_be(r.get_bytes()));
  }
  spend.context = r.get_bytes();
  if (!r.exhausted()) {
    throw std::invalid_argument("RootHidingSpend: trailing");
  }
  return spend;
}

RootHidingSpend make_root_hiding_spend(const DecParams& params,
                                       const ClPublicKey& bank_pk,
                                       const Bigint& t,
                                       const ClSignature& cert,
                                       const NodeIndex& node,
                                       SecureRandom& rng,
                                       const Bytes& context,
                                       std::size_t rounds) {
  count_op(OpKind::Zkp);
  static obs::Counter& obs_zkp = obs::counter("zkp.prove");
  if (!op_counting_paused()) obs_zkp.add();
  static obs::Histogram& obs_lat = obs::histogram("zkp.prove");
  obs::ScopedTimer obs_timer(obs_lat);
  check_node(params, node);
  if (node.depth == 0) {
    throw std::invalid_argument(
        "root_hiding_spend: root node cannot hide its own serial");
  }
  if (rounds == 0 || rounds > 128) {
    throw std::invalid_argument("root_hiding_spend: bad round count");
  }

  RootHidingSpend spend;
  spend.node = node;
  const auto full_path = serial_path(params, t, node);
  spend.path_serials.assign(full_path.begin() + 1, full_path.end());
  spend.cert = cl_randomize(params.pairing, cert, rng);
  spend.context = context;

  const DecSession& session = params.session();
  const GtGroup& gt = session.gt();
  const auto pre_pk = session.pk_tables(bank_pk);
  const GtStatement gts =
      gt_statement(session, pre_pk.get(), bank_pk, spend.cert);
  const TowerStatement ts =
      tower_statement(params, spend.path_serials.front(),
                      node.branch_bit(1));
  const ZnGroup& g1 = params.tower[1];
  const Bigint& r_order = params.pairing.r;  // == o_1

  // The inner base h and modulus (tower prime o_2) are fixed across all
  // rounds: one digit table turns every h^nonce into a handful of
  // Montgomery products instead of a full ladder per round.
  const FixedBasePow h_pow(montgomery_ctx(ts.inner_modulus), ts.h,
                           r_order.bit_length());
  std::vector<Bigint> nonces;
  nonces.reserve(rounds);
  for (std::size_t i = 0; i < rounds; ++i) {
    nonces.push_back(Bigint::random_below(rng, r_order));
    const Bigint h_r = h_pow.pow(nonces.back());
    spend.tower_commitments.push_back(g1.pow(ts.G, h_r));
    spend.gt_commitments.push_back(gt.pow(gts.V, nonces.back()));
  }
  const Bytes bits = challenge_bits(params, spend, gts, ts, rounds);
  spend.responses.reserve(rounds);
  for (std::size_t i = 0; i < rounds; ++i) {
    spend.responses.push_back(
        bit_at(bits, i) ? (nonces[i] - t).mod(r_order) : nonces[i]);
  }
  return spend;
}

namespace {

// Shared verification core; `check_cert` is false when the bank has
// already decided the certificate pairing equation for a whole batch.
bool verify_hiding_core(const DecParams& params, const ClPublicKey& bank_pk,
                        const RootHidingSpend& spend, std::size_t rounds,
                        bool check_cert) {
  // Structure.
  if (spend.node.depth == 0 || spend.node.depth > params.L) return false;
  if (spend.node.depth < 64 &&
      spend.node.index >= (1ull << spend.node.depth)) {
    return false;
  }
  if (spend.path_serials.size() != spend.node.depth) return false;
  if (spend.responses.size() != rounds ||
      spend.tower_commitments.size() != rounds ||
      spend.gt_commitments.size() != rounds) {
    return false;
  }

  // Serial ranges at depths 1..d, subgroup membership at depth 1 only:
  // the chain links below pin every deeper serial to child_serial's
  // output, a power of that level's generator and hence always a member,
  // so a non-member serial fails the link check instead.
  for (std::size_t d = 1; d <= spend.node.depth; ++d) {
    const ZnGroup& g = params.tower[d];
    const Bigint& s = spend.path_serials[d - 1];
    if (s.is_negative() || s >= g.modulus()) return false;
  }
  {
    const ZnGroup& g1 = params.tower[1];
    if (!g1.contains(g1.encode(spend.path_serials[0]))) return false;
  }
  for (std::size_t step = 2; step <= spend.node.depth; ++step) {
    const Bigint expected =
        child_serial(params, step, spend.path_serials[step - 2],
                     spend.node.branch_bit(step));
    if (spend.path_serials[step - 1] != expected) return false;
  }

  // Certificate points (the statement needs them on-curve) and, unless
  // the caller already batch-decided it, the pairing half-check.
  if (spend.cert.a.infinity) return false;
  if (!ec_on_curve(spend.cert.a, params.pairing.p) ||
      !ec_on_curve(spend.cert.b, params.pairing.p) ||
      !ec_on_curve(spend.cert.c, params.pairing.p)) {
    return false;
  }
  if (check_cert && !verify_cert_equation(params, bank_pk, spend.cert)) {
    return false;
  }
  const DecSession& session = params.session();
  const GtGroup& gt = session.gt();
  const auto pre_pk = session.pk_tables(bank_pk);
  const GtStatement gts =
      gt_statement(session, pre_pk.get(), bank_pk, spend.cert);
  if (gts.V == gt.identity()) return false;

  // Cut-and-choose rounds.
  const TowerStatement ts =
      tower_statement(params, spend.path_serials.front(),
                      spend.node.branch_bit(1));
  const ZnGroup& g1 = params.tower[1];
  const Bigint& r_order = params.pairing.r;
  const Bytes bits = challenge_bits(params, spend, gts, ts, rounds);
  const FixedBasePow h_pow(montgomery_ctx(ts.inner_modulus), ts.h,
                           r_order.bit_length());  // shared by all rounds
  for (std::size_t i = 0; i < rounds; ++i) {
    const Bigint& z = spend.responses[i];
    if (z.is_negative() || z >= r_order) return false;
    const Bigint h_z = h_pow.pow(z);
    if (bit_at(bits, i)) {
      // T_i == Y^(h^z) and U_i == W · V^z.
      if (spend.tower_commitments[i] != g1.pow(ts.Y, h_z)) return false;
      if (spend.gt_commitments[i] != gt.op(gts.W, gt.pow(gts.V, z))) {
        return false;
      }
    } else {
      // T_i == G^(h^z) and U_i == V^z.
      if (spend.tower_commitments[i] != g1.pow(ts.G, h_z)) return false;
      if (spend.gt_commitments[i] != gt.pow(gts.V, z)) return false;
    }
  }
  return true;
}

}  // namespace

bool verify_root_hiding_spend(const DecParams& params,
                              const ClPublicKey& bank_pk,
                              const RootHidingSpend& spend,
                              std::size_t rounds) {
  count_op(OpKind::Zkp);
  static obs::Counter& obs_zkp = obs::counter("zkp.verify");
  if (!op_counting_paused()) obs_zkp.add();
  static obs::Histogram& obs_lat = obs::histogram("zkp.verify");
  obs::ScopedTimer obs_timer(obs_lat);
  return verify_hiding_core(params, bank_pk, spend, rounds,
                            /*check_cert=*/true);
}

bool verify_root_hiding_spend_assuming_cert(const DecParams& params,
                                            const ClPublicKey& bank_pk,
                                            const RootHidingSpend& spend,
                                            std::size_t rounds) {
  count_op(OpKind::Zkp);
  static obs::Counter& obs_zkp = obs::counter("zkp.verify");
  if (!op_counting_paused()) obs_zkp.add();
  static obs::Histogram& obs_lat = obs::histogram("zkp.verify");
  obs::ScopedTimer obs_timer(obs_lat);
  return verify_hiding_core(params, bank_pk, spend, rounds,
                            /*check_cert=*/false);
}

}  // namespace ppms
