// Holder-side state of one divisible coin: the wallet secret, the bank's
// CL certificate, and a buddy allocator over the coin tree that hands out
// unspent nodes for the denominations a cash-break plan asks for.
#pragma once

#include <optional>

#include "dec/root_hiding.h"
#include "dec/spend.h"
#include "zkp/schnorr.h"

namespace ppms {

class DecWallet {
 public:
  /// Fresh wallet: picks the secret t and marks the whole tree unspent.
  DecWallet(const DecParams& params, SecureRandom& rng);

  /// Commitment M = g^t the bank certifies at withdrawal.
  const EcPoint& commitment() const { return commitment_; }

  /// PoK of the committed secret (withdrawal request message).
  SchnorrProof prove_commitment(SecureRandom& rng,
                                const Bytes& context) const;

  /// Install the certificate received from the bank. Throws
  /// std::invalid_argument if it does not verify against `bank_pk` and t.
  void set_certificate(const ClPublicKey& bank_pk, const ClSignature& cert);

  bool has_certificate() const { return cert_.has_value(); }

  /// Total unspent value remaining in the coin tree.
  std::uint64_t balance() const;

  /// Reserve an unspent node worth `denomination` (a power of two
  /// <= 2^L). Buddy allocation: splits a larger free node when needed.
  /// Returns nullopt when the remaining tree cannot supply it.
  std::optional<NodeIndex> allocate(std::uint64_t denomination);

  /// Spend a node previously returned by allocate(). `context` binds the
  /// payment to the payee/session.
  SpendBundle spend(const NodeIndex& node, const ClPublicKey& bank_pk,
                    SecureRandom& rng, const Bytes& context) const;

  /// Root-hiding variant (extension; node depth >= 1): the spend reveals
  /// serials only from depth 1, so the bank cannot cluster it with spends
  /// from the coin's other depth-1 subtree. See dec/root_hiding.h.
  RootHidingSpend spend_hiding(const NodeIndex& node,
                               const ClPublicKey& bank_pk, SecureRandom& rng,
                               const Bytes& context) const;

  /// Reserve one node per denomination (largest first, so splits never
  /// strand alignment). On failure returns nullopt and leaves the free
  /// lists unchanged. Zero denominations (fake coins) are skipped — they
  /// carry no tree node.
  std::optional<std::vector<NodeIndex>> allocate_denominations(
      const std::vector<std::uint64_t>& denominations);

  /// Allocate-and-spend one node per denomination. On failure (total
  /// exceeds the balance or a denomination is unavailable) returns nullopt
  /// and leaves the wallet unchanged. Zero denominations (fake coins) are
  /// skipped — they carry no tree node.
  std::optional<std::vector<SpendBundle>> spend_denominations(
      const std::vector<std::uint64_t>& denominations,
      const ClPublicKey& bank_pk, SecureRandom& rng, const Bytes& context);

  /// Test hook: the wallet secret (never leaves the process in protocol
  /// runs).
  const Bigint& secret_for_testing() const { return t_; }

 private:
  const DecParams* params_;
  Bigint t_;
  EcPoint commitment_;
  /// Curve group for withdrawal-side proofs, built once per wallet
  /// instead of per prove_commitment call.
  EcGroup ec_;
  std::optional<ClSignature> cert_;
  /// free_[d] holds indices of currently-free nodes at depth d.
  std::vector<std::vector<std::uint64_t>> free_;
};

}  // namespace ppms
