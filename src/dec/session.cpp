#include "dec/session.h"

#include <stdexcept>
#include <utility>

namespace ppms {

DecSession::DecSession(TypeAParams pairing) : gt_(std::move(pairing)) {
  if (gt_.engine() == nullptr) {
    throw std::invalid_argument("DecSession: pairing modulus not odd");
  }
  pre_g_ = gt_.engine()->precompute(gt_.params().g);
}

std::shared_ptr<const ClPkPrecomp> DecSession::pk_tables(
    const ClPublicKey& pk) const {
  const Bytes key = pk.serialize(gt_.params());
  std::lock_guard lock(mu_);
  const auto it = pk_cache_.find(key);
  if (it != pk_cache_.end()) return it->second;
  std::shared_ptr<const ClPkPrecomp> tables;
  try {
    auto built = std::make_shared<ClPkPrecomp>();
    built->X = engine().precompute(pk.X);
    built->Y = engine().precompute(pk.Y);
    tables = std::move(built);
  } catch (const std::invalid_argument&) {
    tables = nullptr;  // off-curve key: cache the rejection too
  }
  pk_cache_.emplace(std::move(key), tables);
  return tables;
}

}  // namespace ppms
