#include "dec/spend.h"

#include <stdexcept>

#include "dec/session.h"
#include "util/serial.h"

namespace ppms {

namespace {

// GT-side statement pieces for a certificate (a, b, c):
//   V = ê(X, b), W = ê(g, c) · ê(X, a)^{-1};  validity means W = V^t.
// Both pairings are already oriented fixed-point-first, so with the
// session's Miller tables they are table replays, and W folds into one
// product with a single final exponentiation — the combined value is the
// same field element as gt.op(gt.pair(g,c), gt.inv(gt.pair(X,a))), so V/W
// bytes (and hence every Fiat-Shamir transcript) are unchanged.
struct GtStatement {
  Bytes V, W;
};

GtStatement gt_statement(const DecSession& session, const ClPkPrecomp* pre_pk,
                         const ClPublicKey& bank_pk, const ClSignature& cert) {
  const GtGroup& gt = session.gt();
  GtStatement s;
  if (pre_pk != nullptr) {
    s.V = gt.pair(pre_pk->X, cert.b);
    s.W = gt.pair_product({
        PairingTerm{.pre = &session.pre_g(), .Q = cert.c},
        PairingTerm{.pre = &pre_pk->X, .Q = cert.a, .invert = true},
    });
    return s;
  }
  // Off-curve bank key: keep the legacy path (and its throw behavior).
  const TypeAParams& pairing = gt.params();
  s.V = gt.pair(bank_pk.X, cert.b);
  const Bytes gc = gt.pair(pairing.g, cert.c);
  const Bytes xa = gt.pair(bank_pk.X, cert.a);
  s.W = gt.op(gc, gt.inv(xa));
  return s;
}

// Certificate point well-formedness shared by both halves of the split
// verification.
bool cert_points_ok(const DecParams& params, const ClSignature& cert) {
  if (cert.a.infinity) return false;
  return ec_on_curve(cert.a, params.pairing.p) &&
         ec_on_curve(cert.b, params.pairing.p) &&
         ec_on_curve(cert.c, params.pairing.p);
}

// ê(a, Y) == ê(g, b) as one product of pairings (points pre-validated).
bool cert_eq1_holds(const DecSession& session, const ClPkPrecomp* pre_pk,
                    const ClPublicKey& bank_pk, const ClSignature& cert) {
  const GtGroup& gt = session.gt();
  if (pre_pk != nullptr) {
    return gt.pair_product({
               PairingTerm{.pre = &pre_pk->Y, .Q = cert.a},
               PairingTerm{.pre = &session.pre_g(), .Q = cert.b,
                           .invert = true},
           }) == gt.identity();
  }
  return gt.pair(cert.a, bank_pk.Y) == gt.pair(gt.params().g, cert.b);
}

// Structure, serial membership and chain links (everything before the
// pairing checks in the original verify_spend).
bool spend_structure_ok(const DecParams& params, const SpendBundle& bundle) {
  if (bundle.node.depth > params.L) return false;
  if (bundle.node.depth < 64 &&
      bundle.node.index >= (1ull << bundle.node.depth)) {
    return false;
  }
  if (bundle.path_serials.size() != bundle.node.depth + 1) return false;

  // Serial ranges at every level, subgroup membership at the root only.
  // Deeper levels need no membership exponentiation: the chain-link check
  // below pins S_d to child_serial's output, which is a power of the
  // level-d generator and hence always a subgroup member — a non-member
  // S_d can never equal it, so the link check rejects exactly the bundles
  // the per-level membership loop used to.
  for (std::size_t d = 0; d <= bundle.node.depth; ++d) {
    const ZnGroup& g = params.tower[d];
    const Bigint& s = bundle.path_serials[d];
    if (s.is_negative() || s >= g.modulus()) return false;
  }
  {
    const ZnGroup& g1 = params.tower[0];
    if (!g1.contains(g1.encode(bundle.path_serials[0]))) return false;
  }
  // Chain links: each serial is the declared child of its parent.
  for (std::size_t step = 1; step <= bundle.node.depth; ++step) {
    const Bigint expected =
        child_serial(params, step, bundle.path_serials[step - 1],
                     bundle.node.branch_bit(step));
    if (bundle.path_serials[step] != expected) return false;
  }
  return cert_points_ok(params, bundle.cert);
}

// Equality-proof half: ties the hidden t to both the certificate and S_0.
bool spend_proof_ok(const DecParams& params, const ClPublicKey& bank_pk,
                    const SpendBundle& bundle) {
  const DecSession& session = params.session();
  const GtGroup& gt = session.gt();
  const auto pre_pk = session.pk_tables(bank_pk);
  // A degenerate base V = 1 would void soundness; reject it.
  const GtStatement stmt =
      gt_statement(session, pre_pk.get(), bank_pk, bundle.cert);
  if (stmt.V == gt.identity()) return false;
  const ZnGroup& g1 = params.tower[0];
  // The statement halves are already known members: W is a pairing
  // output (always in GT), and the root serial's tower membership was
  // checked in spend_structure_ok. Skipping their re-checks saves two
  // group exponentiations per spend; the attacker-chosen commitments are
  // still validated inside.
  return equality_verify_trusted_statement(
      gt, stmt.V, stmt.W, g1, g1.generator(),
      g1.encode(bundle.path_serials.front()), bundle.proof,
      spend_binding(params, bundle));
}

}  // namespace

Bytes SpendBundle::serialize(const DecParams& params) const {
  Writer w;
  w.put_u32(static_cast<std::uint32_t>(node.depth));
  w.put_u64(node.index);
  w.put_u32(static_cast<std::uint32_t>(path_serials.size()));
  for (const Bigint& s : path_serials) w.put_bytes(s.to_bytes_be());
  w.put_bytes(cert.serialize(params.pairing));
  w.put_bytes(proof.serialize());
  w.put_bytes(context);
  return w.take();
}

SpendBundle SpendBundle::deserialize(const DecParams& params,
                                     const Bytes& data) {
  Reader r(data);
  SpendBundle bundle;
  bundle.node.depth = r.get_u32();
  bundle.node.index = r.get_u64();
  const std::uint32_t n = r.get_u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    bundle.path_serials.push_back(Bigint::from_bytes_be(r.get_bytes()));
  }
  bundle.cert = ClSignature::deserialize(params.pairing, r.get_bytes());
  bundle.proof = EqualityProof::deserialize(r.get_bytes());
  bundle.context = r.get_bytes();
  if (!r.exhausted()) throw std::invalid_argument("SpendBundle: trailing");
  return bundle;
}

Bytes spend_binding(const DecParams& params, const SpendBundle& bundle) {
  Writer w;
  w.put_u32(static_cast<std::uint32_t>(bundle.node.depth));
  w.put_u64(bundle.node.index);
  for (const Bigint& s : bundle.path_serials) w.put_bytes(s.to_bytes_be());
  w.put_bytes(bundle.cert.serialize(params.pairing));
  w.put_bytes(bundle.context);
  return w.take();
}

SpendBundle make_spend(const DecParams& params, const ClPublicKey& bank_pk,
                       const Bigint& t, const ClSignature& cert,
                       const NodeIndex& node, SecureRandom& rng,
                       const Bytes& context) {
  check_node(params, node);
  SpendBundle bundle;
  bundle.node = node;
  bundle.path_serials = serial_path(params, t, node);
  bundle.cert = cl_randomize(params.pairing, cert, rng);
  bundle.context = context;

  const DecSession& session = params.session();
  const GtGroup& gt = session.gt();
  const auto pre_pk = session.pk_tables(bank_pk);
  const GtStatement stmt =
      gt_statement(session, pre_pk.get(), bank_pk, bundle.cert);
  const ZnGroup& g1 = params.tower[0];
  bundle.proof = equality_prove(
      gt, stmt.V, stmt.W, g1, g1.generator(),
      g1.encode(bundle.path_serials.front()), t, rng,
      spend_binding(params, bundle));
  return bundle;
}

bool verify_spend(const DecParams& params, const ClPublicKey& bank_pk,
                  const SpendBundle& bundle) {
  if (!spend_structure_ok(params, bundle)) return false;
  // Certificate half-check (the t-independent pairing equation) before
  // the more expensive equality proof, as in the unsplit original.
  const DecSession& session = params.session();
  const auto pre_pk = session.pk_tables(bank_pk);
  if (!cert_eq1_holds(session, pre_pk.get(), bank_pk, bundle.cert)) {
    return false;
  }
  return spend_proof_ok(params, bank_pk, bundle);
}

bool verify_cert_equation(const DecParams& params, const ClPublicKey& bank_pk,
                          const ClSignature& cert) {
  if (!cert_points_ok(params, cert)) return false;
  const DecSession& session = params.session();
  const auto pre_pk = session.pk_tables(bank_pk);
  return cert_eq1_holds(session, pre_pk.get(), bank_pk, cert);
}

std::vector<bool> verify_cert_equation_batch(
    const DecParams& params, const ClPublicKey& bank_pk,
    const std::vector<const ClSignature*>& certs, SecureRandom& rng) {
  std::vector<bool> ok(certs.size(), false);
  if (certs.empty()) return ok;
  const DecSession& session = params.session();
  const auto pre_pk = session.pk_tables(bank_pk);

  const auto fallback = [&] {
    for (std::size_t j = 0; j < certs.size(); ++j) {
      ok[j] = certs[j] != nullptr && cert_points_ok(params, *certs[j]) &&
              cert_eq1_holds(session, pre_pk.get(), bank_pk, *certs[j]);
    }
    return ok;
  };
  if (pre_pk == nullptr) return fallback();  // off-curve bank key

  std::vector<PairingTerm> terms;
  terms.reserve(certs.size() * 2);
  for (const ClSignature* cert : certs) {
    if (cert == nullptr || !cert_points_ok(params, *cert)) {
      return fallback();  // malformed member: identify it per-certificate
    }
    // Small-exponent batching: 64-bit scalars keep the cheat probability
    // at 2^-64 (GT has prime order r > 2^64) at half the F_p²
    // exponentiation cost of full-width scalars.
    const Bigint d =
        Bigint::random_range(rng, Bigint(1), Bigint::two_pow(64));
    terms.push_back(PairingTerm{.pre = &pre_pk->Y, .Q = cert->a, .exp = d});
    terms.push_back(PairingTerm{.pre = &session.pre_g(), .Q = cert->b,
                                .exp = d, .invert = true});
  }
  const GtGroup& gt = session.gt();
  if (gt.pair_product(terms) == gt.identity()) {
    return std::vector<bool>(certs.size(), true);
  }
  return fallback();
}

bool verify_spend_assuming_cert(const DecParams& params,
                                const ClPublicKey& bank_pk,
                                const SpendBundle& bundle) {
  return spend_structure_ok(params, bundle) &&
         spend_proof_ok(params, bank_pk, bundle);
}

}  // namespace ppms
