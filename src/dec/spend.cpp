#include "dec/spend.h"

#include <stdexcept>

#include "util/serial.h"

namespace ppms {

namespace {

// GT-side statement pieces for a certificate (a, b, c):
//   V = ê(X, b), W = ê(g, c) · ê(X, a)^{-1};  validity means W = V^t.
struct GtStatement {
  Bytes V, W;
};

GtStatement gt_statement(const GtGroup& gt, const TypeAParams& pairing,
                         const ClPublicKey& bank_pk, const ClSignature& cert) {
  GtStatement s;
  s.V = gt.pair(bank_pk.X, cert.b);
  const Bytes gc = gt.pair(pairing.g, cert.c);
  const Bytes xa = gt.pair(bank_pk.X, cert.a);
  s.W = gt.op(gc, gt.inv(xa));
  return s;
}

}  // namespace

Bytes SpendBundle::serialize(const DecParams& params) const {
  Writer w;
  w.put_u32(static_cast<std::uint32_t>(node.depth));
  w.put_u64(node.index);
  w.put_u32(static_cast<std::uint32_t>(path_serials.size()));
  for (const Bigint& s : path_serials) w.put_bytes(s.to_bytes_be());
  w.put_bytes(cert.serialize(params.pairing));
  w.put_bytes(proof.serialize());
  w.put_bytes(context);
  return w.take();
}

SpendBundle SpendBundle::deserialize(const DecParams& params,
                                     const Bytes& data) {
  Reader r(data);
  SpendBundle bundle;
  bundle.node.depth = r.get_u32();
  bundle.node.index = r.get_u64();
  const std::uint32_t n = r.get_u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    bundle.path_serials.push_back(Bigint::from_bytes_be(r.get_bytes()));
  }
  bundle.cert = ClSignature::deserialize(params.pairing, r.get_bytes());
  bundle.proof = EqualityProof::deserialize(r.get_bytes());
  bundle.context = r.get_bytes();
  if (!r.exhausted()) throw std::invalid_argument("SpendBundle: trailing");
  return bundle;
}

Bytes spend_binding(const DecParams& params, const SpendBundle& bundle) {
  Writer w;
  w.put_u32(static_cast<std::uint32_t>(bundle.node.depth));
  w.put_u64(bundle.node.index);
  for (const Bigint& s : bundle.path_serials) w.put_bytes(s.to_bytes_be());
  w.put_bytes(bundle.cert.serialize(params.pairing));
  w.put_bytes(bundle.context);
  return w.take();
}

SpendBundle make_spend(const DecParams& params, const ClPublicKey& bank_pk,
                       const Bigint& t, const ClSignature& cert,
                       const NodeIndex& node, SecureRandom& rng,
                       const Bytes& context) {
  check_node(params, node);
  SpendBundle bundle;
  bundle.node = node;
  bundle.path_serials = serial_path(params, t, node);
  bundle.cert = cl_randomize(params.pairing, cert, rng);
  bundle.context = context;

  const GtGroup gt(params.pairing);
  const GtStatement stmt = gt_statement(gt, params.pairing, bank_pk,
                                        bundle.cert);
  const ZnGroup& g1 = params.tower[0];
  bundle.proof = equality_prove(
      gt, stmt.V, stmt.W, g1, g1.generator(),
      g1.encode(bundle.path_serials.front()), t, rng,
      spend_binding(params, bundle));
  return bundle;
}

bool verify_spend(const DecParams& params, const ClPublicKey& bank_pk,
                  const SpendBundle& bundle) {
  // Structure.
  if (bundle.node.depth > params.L) return false;
  if (bundle.node.depth < 64 &&
      bundle.node.index >= (1ull << bundle.node.depth)) {
    return false;
  }
  if (bundle.path_serials.size() != bundle.node.depth + 1) return false;

  // Serial membership in the right tower level.
  for (std::size_t d = 0; d <= bundle.node.depth; ++d) {
    const ZnGroup& g = params.tower[d];
    const Bigint& s = bundle.path_serials[d];
    if (s.is_negative() || s >= g.modulus()) return false;
    if (!g.contains(g.encode(s))) return false;
  }
  // Chain links: each serial is the declared child of its parent.
  for (std::size_t step = 1; step <= bundle.node.depth; ++step) {
    const Bigint expected =
        child_serial(params, step, bundle.path_serials[step - 1],
                     bundle.node.branch_bit(step));
    if (bundle.path_serials[step] != expected) return false;
  }

  // Certificate half-check (the t-independent pairing equation).
  if (bundle.cert.a.infinity) return false;
  if (!ec_on_curve(bundle.cert.a, params.pairing.p) ||
      !ec_on_curve(bundle.cert.b, params.pairing.p) ||
      !ec_on_curve(bundle.cert.c, params.pairing.p)) {
    return false;
  }
  const GtGroup gt(params.pairing);
  const Bytes ay = gt.pair(bundle.cert.a, bank_pk.Y);
  const Bytes gb = gt.pair(params.pairing.g, bundle.cert.b);
  if (ay != gb) return false;

  // Equality proof ties the hidden t to both the certificate and S_0. A
  // degenerate base V = 1 would void soundness; reject it.
  const GtStatement stmt = gt_statement(gt, params.pairing, bank_pk,
                                        bundle.cert);
  if (stmt.V == gt.identity()) return false;
  const ZnGroup& g1 = params.tower[0];
  return equality_verify(gt, stmt.V, stmt.W, g1, g1.generator(),
                         g1.encode(bundle.path_serials.front()),
                         bundle.proof, spend_binding(params, bundle));
}

}  // namespace ppms
