// Coin-tree node addressing and serial-number derivation.
//
// A withdrawn coin of value 2^L is a binary tree; a node at depth d (root
// d = 0) carries value 2^(L-d). Serials walk the Cunningham tower:
//     S_0 = g_1^t                      (root; t = wallet secret)
//     S_d = g_{d+1}^{2·S_{d-1} + b_d}  (b_d = branch bit at step d)
// A parent serial publicly determines both children's serials, which is
// what lets the bank detect ancestor/descendant double spends from the
// revealed path alone (Okamoto-style tree e-cash).
#pragma once

#include "dec/group_chain.h"

namespace ppms {

/// Address of a node: depth in [0, L], index in [0, 2^depth).
struct NodeIndex {
  std::size_t depth = 0;
  std::uint64_t index = 0;

  /// Branch bit taken at step d (1-based steps 1..depth) on the path from
  /// the root to this node.
  bool branch_bit(std::size_t step) const {
    return (index >> (depth - step)) & 1;
  }

  /// The ancestor at a shallower depth.
  NodeIndex ancestor(std::size_t at_depth) const {
    return NodeIndex{at_depth, index >> (depth - at_depth)};
  }

  friend bool operator==(const NodeIndex&, const NodeIndex&) = default;
};

/// Validate a node address against the tree height; throws
/// std::out_of_range when depth > L or index >= 2^depth.
void check_node(const DecParams& params, const NodeIndex& node);

/// Serial of the root for wallet secret t: g_1^t in tower[0].
Bigint root_serial(const DecParams& params, const Bigint& t);

/// One derivation step: the serial of the child reached by `bit` from a
/// depth-(d-1) parent serial. Public — anyone can expand a revealed
/// serial downward.
Bigint child_serial(const DecParams& params, std::size_t child_depth,
                    const Bigint& parent_serial, bool bit);

/// All serials S_0..S_depth on the path from the root to `node`.
std::vector<Bigint> serial_path(const DecParams& params, const Bigint& t,
                                const NodeIndex& node);

}  // namespace ppms
