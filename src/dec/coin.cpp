#include "dec/coin.h"

#include <stdexcept>

namespace ppms {

void check_node(const DecParams& params, const NodeIndex& node) {
  if (node.depth > params.L) {
    throw std::out_of_range("check_node: depth exceeds tree height");
  }
  if (node.depth < 64 && node.index >= (1ull << node.depth)) {
    throw std::out_of_range("check_node: index exceeds level width");
  }
}

Bigint root_serial(const DecParams& params, const Bigint& t) {
  const ZnGroup& g1 = params.tower[0];
  return g1.decode(g1.pow_gen(t));
}

Bigint child_serial(const DecParams& params, std::size_t child_depth,
                    const Bigint& parent_serial, bool bit) {
  if (child_depth == 0 || child_depth > params.L) {
    throw std::out_of_range("child_serial: bad depth");
  }
  const ZnGroup& g = params.tower[child_depth];
  const Bigint exponent =
      parent_serial * Bigint(2) + Bigint(bit ? 1 : 0);
  return g.decode(g.pow_gen(exponent));
}

std::vector<Bigint> serial_path(const DecParams& params, const Bigint& t,
                                const NodeIndex& node) {
  check_node(params, node);
  std::vector<Bigint> path;
  path.reserve(node.depth + 1);
  path.push_back(root_serial(params, t));
  for (std::size_t step = 1; step <= node.depth; ++step) {
    path.push_back(
        child_serial(params, step, path.back(), node.branch_bit(step)));
  }
  return path;
}

}  // namespace ppms
