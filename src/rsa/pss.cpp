#include "rsa/pss.h"

#include <stdexcept>

#include "hash/mgf1.h"
#include "hash/sha256.h"
#include "util/counters.h"
#include "obs/metrics.h"

namespace ppms {

namespace {
constexpr std::size_t kHashLen = Sha256::kDigestSize;
constexpr std::size_t kSaltLen = 32;

Bytes pss_hash(const Bytes& m_hash, const Bytes& salt) {
  // H = SHA-256(0x00*8 || mHash || salt)
  Sha256 h;
  const Bytes prefix(8, 0);
  h.update(prefix);
  h.update(m_hash);
  h.update(salt);
  return h.finish();
}
}  // namespace

Bytes rsa_pss_sign(const RsaPrivateKey& key, const Bytes& msg,
                   SecureRandom& rng) {
  count_op(OpKind::Enc);
  static obs::Counter& obs_enc = obs::counter("crypto.enc.calls");
  if (!op_counting_paused()) obs_enc.add();
  const std::size_t em_bits = key.n.bit_length() - 1;
  const std::size_t em_len = (em_bits + 7) / 8;
  if (em_len < kHashLen + kSaltLen + 2) {
    throw std::invalid_argument("pss: modulus too small");
  }
  const Bytes m_hash = sha256(msg);
  const Bytes salt = rng.bytes(kSaltLen);
  const Bytes h = pss_hash(m_hash, salt);

  // DB = PS(0x00...) || 0x01 || salt
  Bytes db(em_len - kSaltLen - kHashLen - 2, 0);
  db.push_back(0x01);
  db.insert(db.end(), salt.begin(), salt.end());
  const Bytes db_mask = mgf1_sha256(h, db.size());
  for (std::size_t i = 0; i < db.size(); ++i) db[i] ^= db_mask[i];
  // Clear the top bits beyond em_bits.
  db[0] &= static_cast<std::uint8_t>(0xFF >> (8 * em_len - em_bits));

  Bytes em = db;
  em.insert(em.end(), h.begin(), h.end());
  em.push_back(0xbc);

  const Bigint s = rsa_private_op(key, Bigint::from_bytes_be(em));
  return s.to_bytes_be(key.public_key().modulus_bytes());
}

bool rsa_pss_verify(const RsaPublicKey& key, const Bytes& msg,
                    const Bytes& signature) {
  count_op(OpKind::Dec);
  static obs::Counter& obs_dec = obs::counter("crypto.dec.calls");
  if (!op_counting_paused()) obs_dec.add();
  const std::size_t k = key.modulus_bytes();
  if (signature.size() != k) return false;
  const Bigint s = Bigint::from_bytes_be(signature);
  if (s >= key.n) return false;

  const std::size_t em_bits = key.n.bit_length() - 1;
  const std::size_t em_len = (em_bits + 7) / 8;
  if (em_len < kHashLen + kSaltLen + 2) return false;
  const Bytes em = rsa_public_op(key, s).to_bytes_be(em_len);

  if (em.back() != 0xbc) return false;
  const std::size_t db_len = em_len - kHashLen - 1;
  Bytes db(em.begin(), em.begin() + static_cast<std::ptrdiff_t>(db_len));
  const Bytes h(em.begin() + static_cast<std::ptrdiff_t>(db_len),
                em.end() - 1);
  if ((db[0] & ~static_cast<std::uint8_t>(0xFF >> (8 * em_len - em_bits))) !=
      0) {
    return false;
  }
  const Bytes db_mask = mgf1_sha256(h, db.size());
  for (std::size_t i = 0; i < db.size(); ++i) db[i] ^= db_mask[i];
  db[0] &= static_cast<std::uint8_t>(0xFF >> (8 * em_len - em_bits));

  const std::size_t ps_len = em_len - kHashLen - kSaltLen - 2;
  for (std::size_t i = 0; i < ps_len; ++i) {
    if (db[i] != 0x00) return false;
  }
  if (db[ps_len] != 0x01) return false;
  const Bytes salt(db.begin() + static_cast<std::ptrdiff_t>(ps_len + 1),
                   db.end());
  const Bytes m_hash = sha256(msg);
  return ct_equal(pss_hash(m_hash, salt), h);
}

}  // namespace ppms
