// RSA key generation and the raw trapdoor permutation.
//
// Built from scratch on ppms::Bigint. Key generation produces CRT
// parameters; private operations use the CRT split (about 3-4x faster than
// a single full-width exponentiation). Padding lives in oaep.h / pss.h /
// pkcs1.h — nothing here is safe to use on raw attacker-chosen values
// except the blind-signature schemes in src/blind, which are designed
// around the raw permutation.
#pragma once

#include <string>

#include "bigint/bigint.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace ppms {

struct RsaPublicKey {
  Bigint n;  ///< modulus
  Bigint e;  ///< public exponent

  /// Size of the modulus in whole bytes (ciphertext/signature width).
  std::size_t modulus_bytes() const { return (n.bit_length() + 7) / 8; }

  /// Canonical wire encoding (length-prefixed n, e).
  Bytes serialize() const;
  static RsaPublicKey deserialize(const Bytes& data);

  /// SHA-256 of the serialization; the pseudonymous "identity information"
  /// residents hand to the market.
  Bytes fingerprint() const;

  friend bool operator==(const RsaPublicKey&, const RsaPublicKey&) = default;
};

struct RsaPrivateKey {
  Bigint n, e, d;
  Bigint p, q;        ///< prime factors, p != q
  Bigint dp, dq;      ///< d mod (p-1), d mod (q-1)
  Bigint qinv;        ///< q^{-1} mod p

  RsaPublicKey public_key() const { return {n, e}; }

  /// Persist all components (callers are responsible for storing the
  /// result confidentially; consider secure_wipe on intermediate copies).
  Bytes serialize() const;

  /// Load and validate: n == p·q, CRT parameters consistent, e·d ≡ 1
  /// (mod lambda). Throws std::invalid_argument on any inconsistency.
  static RsaPrivateKey deserialize(const Bytes& data);
};

struct RsaKeyPair {
  RsaPublicKey pub;
  RsaPrivateKey priv;
};

/// Generate an RSA key with modulus of exactly `bits` bits (bits >= 32,
/// even). The default exponent is 65537; generation retries primes until
/// gcd(e, lambda(n)) == 1.
RsaKeyPair rsa_generate(SecureRandom& rng, std::size_t bits,
                        const Bigint& e = Bigint(65537));

/// c = m^e mod n. Requires 0 <= m < n.
Bigint rsa_public_op(const RsaPublicKey& key, const Bigint& m);

/// m = c^d mod n via CRT. Requires 0 <= c < n.
Bigint rsa_private_op(const RsaPrivateKey& key, const Bigint& c);

/// Full-domain hash of `msg` into [0, n): MGF1-expand SHA-256(msg) to the
/// modulus width and reduce. Shared by the signature schemes in src/blind.
Bigint rsa_fdh(const RsaPublicKey& key, const Bytes& msg);

}  // namespace ppms
