#include "rsa/pkcs1.h"

#include <stdexcept>

#include "hash/sha256.h"
#include "util/counters.h"
#include "obs/metrics.h"

namespace ppms {

namespace {

// DER DigestInfo prefix for SHA-256 (RFC 8017, section 9.2 note 1).
const Bytes& sha256_digest_info_prefix() {
  static const Bytes prefix = from_hex(
      "3031300d060960864801650304020105000420");
  return prefix;
}

Bytes build_em(const RsaPublicKey& key, const Bytes& msg) {
  const std::size_t k = key.modulus_bytes();
  Bytes t = sha256_digest_info_prefix();
  const Bytes digest = sha256(msg);
  t.insert(t.end(), digest.begin(), digest.end());
  if (k < t.size() + 11) {
    throw std::invalid_argument("pkcs1: modulus too small");
  }
  Bytes em;
  em.reserve(k);
  em.push_back(0x00);
  em.push_back(0x01);
  em.insert(em.end(), k - t.size() - 3, 0xFF);
  em.push_back(0x00);
  em.insert(em.end(), t.begin(), t.end());
  return em;
}

}  // namespace

Bytes rsa_pkcs1_sign(const RsaPrivateKey& key, const Bytes& msg) {
  count_op(OpKind::Enc);
  static obs::Counter& obs_enc = obs::counter("crypto.enc.calls");
  if (!op_counting_paused()) obs_enc.add();
  const RsaPublicKey pub = key.public_key();
  const Bytes em = build_em(pub, msg);
  const Bigint s = rsa_private_op(key, Bigint::from_bytes_be(em));
  return s.to_bytes_be(pub.modulus_bytes());
}

bool rsa_pkcs1_verify(const RsaPublicKey& key, const Bytes& msg,
                      const Bytes& signature) {
  count_op(OpKind::Dec);
  static obs::Counter& obs_dec = obs::counter("crypto.dec.calls");
  if (!op_counting_paused()) obs_dec.add();
  const std::size_t k = key.modulus_bytes();
  if (signature.size() != k) return false;
  const Bigint s = Bigint::from_bytes_be(signature);
  if (s >= key.n) return false;
  const Bytes em = rsa_public_op(key, s).to_bytes_be(k);
  return ct_equal(em, build_em(key, msg));
}

}  // namespace ppms
