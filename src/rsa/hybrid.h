// Hybrid public-key encryption: RSA-OAEP key wrap + ChaCha20 stream +
// HMAC-SHA256 integrity tag (encrypt-then-MAC).
//
// The paper's payment messages (eq. 8/9) RSA-encrypt a payload of 2^L
// e-coins plus a signature — far larger than one RSA block — so the
// implementation wraps a fresh symmetric key. This is the standard
// realization and keeps the Table II traffic accounting faithful: the
// ciphertext length tracks the payload length plus a constant.
#pragma once

#include "rsa/rsa.h"

namespace ppms {

/// Encrypt an arbitrary-length message to `key` (counted as one Enc).
Bytes hybrid_encrypt(const RsaPublicKey& key, const Bytes& msg,
                     SecureRandom& rng);

/// Decrypt (counted as one Dec). Throws std::invalid_argument on key-wrap
/// failure or MAC mismatch.
Bytes hybrid_decrypt(const RsaPrivateKey& key, const Bytes& ciphertext);

}  // namespace ppms
