// RSA PKCS#1 v1.5 signatures with SHA-256 DigestInfo.
//
// Deterministic alternative to PSS; the PPMSpbs coin-deposit check in the
// bank uses it so deposits are idempotent (re-verifying the same coin
// yields the same bytes).
#pragma once

#include "rsa/rsa.h"

namespace ppms {

/// Sign `msg` (deterministic; counted as Enc).
Bytes rsa_pkcs1_sign(const RsaPrivateKey& key, const Bytes& msg);

/// Verify (counted as Dec). Reconstructs the expected encoding and
/// compares — immune to BERserk-style lenient-parse forgeries.
bool rsa_pkcs1_verify(const RsaPublicKey& key, const Bytes& msg,
                      const Bytes& signature);

}  // namespace ppms
