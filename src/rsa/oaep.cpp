#include "rsa/oaep.h"

#include <stdexcept>

#include "hash/mgf1.h"
#include "hash/sha256.h"
#include "util/counters.h"
#include "obs/metrics.h"

namespace ppms {

namespace {
constexpr std::size_t kHashLen = Sha256::kDigestSize;
}

std::size_t oaep_max_message_len(const RsaPublicKey& key) {
  const std::size_t k = key.modulus_bytes();
  if (k < 2 * kHashLen + 2 + 1) {
    throw std::invalid_argument("oaep: modulus too small");
  }
  return k - 2 * kHashLen - 2;
}

Bytes rsa_oaep_encrypt(const RsaPublicKey& key, const Bytes& msg,
                       SecureRandom& rng, const Bytes& label) {
  count_op(OpKind::Enc);
  static obs::Counter& obs_enc = obs::counter("crypto.enc.calls");
  if (!op_counting_paused()) obs_enc.add();
  const std::size_t k = key.modulus_bytes();
  if (msg.size() > oaep_max_message_len(key)) {
    throw std::invalid_argument("oaep: message too long");
  }
  // EM = 0x00 || maskedSeed || maskedDB
  // DB = lHash || PS(0x00...) || 0x01 || msg
  Bytes db = sha256(label);
  db.resize(k - kHashLen - 1 - msg.size() - 1, 0);
  db.push_back(0x01);
  db.insert(db.end(), msg.begin(), msg.end());

  const Bytes seed = rng.bytes(kHashLen);
  const Bytes db_mask = mgf1_sha256(seed, db.size());
  for (std::size_t i = 0; i < db.size(); ++i) db[i] ^= db_mask[i];
  Bytes masked_seed = seed;
  const Bytes seed_mask = mgf1_sha256(db, kHashLen);
  for (std::size_t i = 0; i < kHashLen; ++i) masked_seed[i] ^= seed_mask[i];

  Bytes em;
  em.reserve(k);
  em.push_back(0x00);
  em.insert(em.end(), masked_seed.begin(), masked_seed.end());
  em.insert(em.end(), db.begin(), db.end());

  const Bigint c = rsa_public_op(key, Bigint::from_bytes_be(em));
  return c.to_bytes_be(k);
}

Bytes rsa_oaep_decrypt(const RsaPrivateKey& key, const Bytes& ciphertext,
                       const Bytes& label) {
  count_op(OpKind::Dec);
  static obs::Counter& obs_dec = obs::counter("crypto.dec.calls");
  if (!op_counting_paused()) obs_dec.add();
  const RsaPublicKey pub = key.public_key();
  const std::size_t k = pub.modulus_bytes();
  if (ciphertext.size() != k || k < 2 * kHashLen + 2) {
    throw std::invalid_argument("oaep: bad ciphertext length");
  }
  const Bigint c = Bigint::from_bytes_be(ciphertext);
  if (c >= pub.n) throw std::invalid_argument("oaep: ciphertext >= modulus");
  const Bytes em = rsa_private_op(key, c).to_bytes_be(k);

  // Unmask. Failures are aggregated into one error signal.
  bool ok = em[0] == 0x00;
  Bytes masked_seed(em.begin() + 1,
                    em.begin() + 1 + static_cast<std::ptrdiff_t>(kHashLen));
  Bytes db(em.begin() + 1 + static_cast<std::ptrdiff_t>(kHashLen), em.end());
  const Bytes seed_mask = mgf1_sha256(db, kHashLen);
  Bytes seed = masked_seed;
  for (std::size_t i = 0; i < kHashLen; ++i) seed[i] ^= seed_mask[i];
  const Bytes db_mask = mgf1_sha256(seed, db.size());
  for (std::size_t i = 0; i < db.size(); ++i) db[i] ^= db_mask[i];

  const Bytes lhash = sha256(label);
  ok = ok && ct_equal(Bytes(db.begin(),
                            db.begin() + static_cast<std::ptrdiff_t>(kHashLen)),
                      lhash);
  // Find the 0x01 separator after the zero padding.
  std::size_t sep = kHashLen;
  while (sep < db.size() && db[sep] == 0x00) ++sep;
  ok = ok && sep < db.size() && db[sep] == 0x01;
  if (!ok) throw std::invalid_argument("oaep: decryption failure");
  return Bytes(db.begin() + static_cast<std::ptrdiff_t>(sep + 1), db.end());
}

}  // namespace ppms
