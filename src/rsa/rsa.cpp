#include "rsa/rsa.h"

#include <stdexcept>

#include "bigint/modarith.h"
#include "bigint/prime.h"
#include "hash/mgf1.h"
#include "hash/sha256.h"
#include "obs/metrics.h"
#include "util/serial.h"

namespace ppms {

Bytes RsaPublicKey::serialize() const {
  Writer w;
  w.put_bytes(n.to_bytes_be());
  w.put_bytes(e.to_bytes_be());
  return w.take();
}

RsaPublicKey RsaPublicKey::deserialize(const Bytes& data) {
  Reader r(data);
  RsaPublicKey key;
  key.n = Bigint::from_bytes_be(r.get_bytes());
  key.e = Bigint::from_bytes_be(r.get_bytes());
  if (!r.exhausted()) {
    throw std::invalid_argument("RsaPublicKey: trailing bytes");
  }
  return key;
}

Bytes RsaPublicKey::fingerprint() const { return sha256(serialize()); }

Bytes RsaPrivateKey::serialize() const {
  Writer w;
  for (const Bigint* field : {&n, &e, &d, &p, &q, &dp, &dq, &qinv}) {
    w.put_bytes(field->to_bytes_be());
  }
  return w.take();
}

RsaPrivateKey RsaPrivateKey::deserialize(const Bytes& data) {
  Reader r(data);
  RsaPrivateKey key;
  for (Bigint* field : {&key.n, &key.e, &key.d, &key.p, &key.q, &key.dp,
                        &key.dq, &key.qinv}) {
    *field = Bigint::from_bytes_be(r.get_bytes());
  }
  if (!r.exhausted()) {
    throw std::invalid_argument("RsaPrivateKey: trailing bytes");
  }
  // Structural validation: a corrupted private key must not silently
  // produce wrong signatures/decryptions.
  if (key.p * key.q != key.n) {
    throw std::invalid_argument("RsaPrivateKey: n != p*q");
  }
  const Bigint p1 = key.p - Bigint(1);
  const Bigint q1 = key.q - Bigint(1);
  if (key.dp != key.d.mod(p1) || key.dq != key.d.mod(q1) ||
      (key.qinv * key.q).mod(key.p) != Bigint(1)) {
    throw std::invalid_argument("RsaPrivateKey: CRT parameters broken");
  }
  if ((key.e * key.d).mod(lcm(p1, q1)) != Bigint(1)) {
    throw std::invalid_argument("RsaPrivateKey: e*d != 1 mod lambda");
  }
  return key;
}

RsaKeyPair rsa_generate(SecureRandom& rng, std::size_t bits,
                        const Bigint& e) {
  if (bits < 32 || bits % 2 != 0) {
    throw std::invalid_argument("rsa_generate: bits must be even and >= 32");
  }
  if (e.is_even() || e < Bigint(3)) {
    throw std::invalid_argument("rsa_generate: e must be odd and >= 3");
  }
  const std::size_t half = bits / 2;
  for (;;) {
    const Bigint p = random_prime(rng, half);
    const Bigint q = random_prime(rng, half);
    if (p == q) continue;
    const Bigint n = p * q;
    if (n.bit_length() != bits) continue;
    const Bigint p1 = p - Bigint(1);
    const Bigint q1 = q - Bigint(1);
    const Bigint lambda = lcm(p1, q1);
    if (!gcd(e, lambda).is_one()) continue;

    RsaPrivateKey priv;
    priv.n = n;
    priv.e = e;
    priv.d = modinv(e, lambda);
    priv.p = p;
    priv.q = q;
    priv.dp = priv.d.mod(p1);
    priv.dq = priv.d.mod(q1);
    priv.qinv = modinv(q, p);
    return {priv.public_key(), priv};
  }
}

Bigint rsa_public_op(const RsaPublicKey& key, const Bigint& m) {
  static obs::Counter& obs_calls = obs::counter("crypto.rsa.public_ops");
  obs_calls.add();
  static obs::Histogram& obs_lat = obs::histogram("crypto.rsa.public");
  obs::ScopedTimer obs_timer(obs_lat);
  if (m.is_negative() || m >= key.n) {
    throw std::invalid_argument("rsa_public_op: message out of range");
  }
  // An honest n = p·q is odd; the shared context makes the verify-heavy
  // paths (blind-signature deposit checks, market-wide signature
  // validation) pay the Montgomery setup once per key instead of once per
  // call. Degenerate even moduli (hostile key material) still compute.
  if (key.n.is_even()) return modexp(m, key.e, key.n);
  return modexp(m, key.e, *montgomery_ctx(key.n));
}

Bigint rsa_private_op(const RsaPrivateKey& key, const Bigint& c) {
  static obs::Counter& obs_calls = obs::counter("crypto.rsa.private_ops");
  obs_calls.add();
  static obs::Histogram& obs_lat = obs::histogram("crypto.rsa.private");
  obs::ScopedTimer obs_timer(obs_lat);
  if (c.is_negative() || c >= key.n) {
    throw std::invalid_argument("rsa_private_op: input out of range");
  }
  // CRT: m_p = c^dp mod p, m_q = c^dq mod q, recombine with Garner. The
  // prime-modulus contexts are cached per key factor (honest factors are
  // odd; anything else falls back to the general facade).
  const auto crt_half = [&c](const Bigint& d, const Bigint& prime) {
    return prime.is_odd() ? modexp(c, d, *montgomery_ctx(prime))
                          : modexp(c, d, prime);
  };
  const Bigint mp = crt_half(key.dp, key.p);
  const Bigint mq = crt_half(key.dq, key.q);
  const Bigint h = (key.qinv * (mp - mq)).mod(key.p);
  return mq + h * key.q;
}

Bigint rsa_fdh(const RsaPublicKey& key, const Bytes& msg) {
  const Bytes seed = sha256(msg);
  // One extra byte of expansion keeps the reduction bias below 2^-8 of the
  // modulus; fine for the FDH signatures used here.
  const Bytes wide = mgf1_sha256(seed, key.modulus_bytes() + 1);
  return Bigint::from_bytes_be(wide).mod(key.n);
}

}  // namespace ppms
