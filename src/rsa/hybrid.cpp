#include "rsa/hybrid.h"

#include <stdexcept>

#include "hash/hmac.h"
#include "rsa/oaep.h"
#include "util/counters.h"
#include "obs/metrics.h"
#include "util/serial.h"

namespace ppms {

namespace {

constexpr std::size_t kMasterLen = 32;

struct DerivedKeys {
  Bytes stream_key;
  Bytes mac_key;
  Bytes nonce;
};

// Derive the symmetric material from one wrapped master secret. A fresh
// master per message makes nonce reuse impossible, and wrapping only 32
// bytes keeps the minimum RSA modulus at 98 bytes (784 bits).
DerivedKeys derive(const Bytes& master) {
  DerivedKeys out;
  out.stream_key = hmac_sha256(master, bytes_of("ppms.hybrid.stream"));
  out.mac_key = hmac_sha256(master, bytes_of("ppms.hybrid.mac"));
  const Bytes n = hmac_sha256(master, bytes_of("ppms.hybrid.nonce"));
  out.nonce.assign(n.begin(), n.begin() + 12);
  return out;
}

}  // namespace

Bytes hybrid_encrypt(const RsaPublicKey& key, const Bytes& msg,
                     SecureRandom& rng) {
  count_op(OpKind::Enc);
  static obs::Counter& obs_enc = obs::counter("crypto.enc.calls");
  if (!op_counting_paused()) obs_enc.add();
  // Nested building blocks (OAEP wrap, HMACs) are part of this
  // one logical operation; pause counting so it counts once.
  ScopedOpPause pause;

  Bytes master = rng.bytes(kMasterLen);
  const DerivedKeys keys = derive(master);
  const Bytes body = chacha20_xor(keys.stream_key, keys.nonce, msg);
  const Bytes tag = hmac_sha256(keys.mac_key, body);
  const Bytes wrap = rsa_oaep_encrypt(key, master, rng);
  secure_wipe(master);

  Writer w;
  w.put_bytes(wrap);
  w.put_bytes(body);
  w.put_bytes(tag);
  return w.take();
}

Bytes hybrid_decrypt(const RsaPrivateKey& key, const Bytes& ciphertext) {
  count_op(OpKind::Dec);
  static obs::Counter& obs_dec = obs::counter("crypto.dec.calls");
  if (!op_counting_paused()) obs_dec.add();
  // Nested building blocks (OAEP wrap, HMACs) are part of this
  // one logical operation; pause counting so it counts once.
  ScopedOpPause pause;

  Reader r(ciphertext);
  const Bytes wrap = r.get_bytes();
  const Bytes body = r.get_bytes();
  const Bytes tag = r.get_bytes();
  if (!r.exhausted()) {
    throw std::invalid_argument("hybrid: trailing bytes");
  }

  Bytes master = rsa_oaep_decrypt(key, wrap);
  if (master.size() != kMasterLen) {
    throw std::invalid_argument("hybrid: malformed key wrap");
  }
  const DerivedKeys keys = derive(master);
  secure_wipe(master);

  if (!ct_equal(hmac_sha256(keys.mac_key, body), tag)) {
    throw std::invalid_argument("hybrid: MAC mismatch");
  }
  return chacha20_xor(keys.stream_key, keys.nonce, body);
}

}  // namespace ppms
