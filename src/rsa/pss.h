// RSA-PSS signatures (PKCS#1 v2.2, SHA-256 + MGF1, salt length 32).
//
// This is the RSA_SIG of the paper: the JO's signature on an SP's
// pseudonymous public key (eq. 7) and the designated-receiver binding
// inside payments. Per the paper's Table I convention, signing counts as
// Enc and verifying counts as Dec.
#pragma once

#include "rsa/rsa.h"

namespace ppms {

/// Sign `msg`. Randomized (fresh salt per call).
Bytes rsa_pss_sign(const RsaPrivateKey& key, const Bytes& msg,
                   SecureRandom& rng);

/// Verify; returns false on any mismatch (never throws on forgery, only on
/// structurally impossible inputs such as a signature wider than n).
bool rsa_pss_verify(const RsaPublicKey& key, const Bytes& msg,
                    const Bytes& signature);

}  // namespace ppms
