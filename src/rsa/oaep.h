// RSA-OAEP encryption (PKCS#1 v2.2, SHA-256 + MGF1).
//
// This is the RSA_ENC of the paper's protocol messages: labor
// registrations (eq. 14) and the key-wrap step of the hybrid encryption
// carrying payments (eq. 8). Maximum plaintext is modulus_bytes - 66;
// larger payloads go through rsa/hybrid.h.
#pragma once

#include "rsa/rsa.h"

namespace ppms {

/// Longest plaintext OAEP can carry under `key` (k - 2*hLen - 2).
/// Throws std::invalid_argument if the modulus is too small for OAEP at
/// all.
std::size_t oaep_max_message_len(const RsaPublicKey& key);

/// Encrypt `msg` (counted as one Enc operation). `label` binds context and
/// must match at decryption; defaults to empty.
Bytes rsa_oaep_encrypt(const RsaPublicKey& key, const Bytes& msg,
                       SecureRandom& rng, const Bytes& label = {});

/// Decrypt (counted as one Dec operation). Throws std::invalid_argument on
/// any padding failure — callers treat that as a protocol abort, never as
/// recoverable data.
Bytes rsa_oaep_decrypt(const RsaPrivateKey& key, const Bytes& ciphertext,
                       const Bytes& label = {});

}  // namespace ppms
