#include "clsig/clsig.h"

#include <stdexcept>

#include "obs/metrics.h"
#include "util/counters.h"
#include "util/serial.h"

namespace ppms {

Bytes ClPublicKey::serialize(const TypeAParams& params) const {
  Writer w;
  w.put_bytes(ec_serialize(X, params.p));
  w.put_bytes(ec_serialize(Y, params.p));
  return w.take();
}

ClPublicKey ClPublicKey::deserialize(const TypeAParams& params,
                                     const Bytes& data) {
  Reader r(data);
  ClPublicKey pk;
  pk.X = ec_deserialize(r.get_bytes(), params.p);
  pk.Y = ec_deserialize(r.get_bytes(), params.p);
  if (!r.exhausted()) throw std::invalid_argument("ClPublicKey: trailing");
  return pk;
}

Bytes ClSignature::serialize(const TypeAParams& params) const {
  Writer w;
  w.put_bytes(ec_serialize(a, params.p));
  w.put_bytes(ec_serialize(b, params.p));
  w.put_bytes(ec_serialize(c, params.p));
  return w.take();
}

ClSignature ClSignature::deserialize(const TypeAParams& params,
                                     const Bytes& data) {
  Reader r(data);
  ClSignature sig;
  sig.a = ec_deserialize(r.get_bytes(), params.p);
  sig.b = ec_deserialize(r.get_bytes(), params.p);
  sig.c = ec_deserialize(r.get_bytes(), params.p);
  if (!r.exhausted()) throw std::invalid_argument("ClSignature: trailing");
  return sig;
}

ClKeyPair cl_keygen(const TypeAParams& params, SecureRandom& rng) {
  ClKeyPair kp;
  kp.sk.x = Bigint::random_range(rng, Bigint(1), params.r);
  kp.sk.y = Bigint::random_range(rng, Bigint(1), params.r);
  kp.pk.X = ec_mul(params.g, kp.sk.x, params.p);
  kp.pk.Y = ec_mul(params.g, kp.sk.y, params.p);
  return kp;
}

ClSignature cl_sign(const TypeAParams& params, const ClSecretKey& sk,
                    const Bigint& m, SecureRandom& rng) {
  count_op(OpKind::Enc);
  static obs::Counter& obs_enc = obs::counter("crypto.enc.calls");
  if (!op_counting_paused()) obs_enc.add();
  static obs::Histogram& obs_lat = obs::histogram("crypto.cl.sign");
  obs::ScopedTimer obs_timer(obs_lat);
  const Bigint mr = m.mod(params.r);
  ClSignature sig;
  const Bigint alpha = Bigint::random_range(rng, Bigint(1), params.r);
  sig.a = ec_mul(params.g, alpha, params.p);
  sig.b = ec_mul(sig.a, sk.y, params.p);
  const Bigint exp = (sk.x + (mr * sk.x * sk.y)).mod(params.r);
  sig.c = ec_mul(sig.a, exp, params.p);
  return sig;
}

ClSignature cl_sign_committed(const TypeAParams& params,
                              const ClSecretKey& sk, const EcPoint& M,
                              SecureRandom& rng) {
  count_op(OpKind::Enc);
  static obs::Counter& obs_enc = obs::counter("crypto.enc.calls");
  if (!op_counting_paused()) obs_enc.add();
  static obs::Histogram& obs_lat = obs::histogram("crypto.cl.sign");
  obs::ScopedTimer obs_timer(obs_lat);
  if (!ec_on_curve(M, params.p)) {
    throw std::invalid_argument("cl_sign_committed: bad commitment");
  }
  ClSignature sig;
  const Bigint alpha = Bigint::random_range(rng, Bigint(1), params.r);
  sig.a = ec_mul(params.g, alpha, params.p);
  sig.b = ec_mul(sig.a, sk.y, params.p);
  // c = a^x · M^{α·x·y} = a^{x + m·x·y} for M = g^m.
  const EcPoint ax = ec_mul(sig.a, sk.x, params.p);
  const Bigint axy = (alpha * sk.x * sk.y).mod(params.r);
  sig.c = ec_add(ax, ec_mul(M, axy, params.p), params.p);
  return sig;
}

bool cl_verify(const TypeAParams& params, const ClPublicKey& pk,
               const Bigint& m, const ClSignature& sig) {
  count_op(OpKind::Dec);
  static obs::Counter& obs_dec = obs::counter("crypto.dec.calls");
  if (!op_counting_paused()) obs_dec.add();
  static obs::Histogram& obs_lat = obs::histogram("crypto.cl.verify");
  obs::ScopedTimer obs_timer(obs_lat);
  if (sig.a.infinity) return false;
  if (!ec_on_curve(sig.a, params.p) || !ec_on_curve(sig.b, params.p) ||
      !ec_on_curve(sig.c, params.p)) {
    return false;
  }
  const Bigint mr = m.mod(params.r);
  // ê(a, Y) == ê(g, b)
  const Fp2 lhs1 = tate_pairing(params, sig.a, pk.Y);
  const Fp2 rhs1 = tate_pairing(params, params.g, sig.b);
  if (!(lhs1 == rhs1)) return false;
  // ê(X, a) · ê(X, b)^m == ê(g, c)
  const Fp2 xa = tate_pairing(params, pk.X, sig.a);
  const Fp2 xb = tate_pairing(params, pk.X, sig.b);
  const Fp2 lhs2 = fp2_mul(xa, fp2_pow(xb, mr, params.p), params.p);
  const Fp2 rhs2 = tate_pairing(params, params.g, sig.c);
  return lhs2 == rhs2;
}

ClSignature cl_randomize(const TypeAParams& params, const ClSignature& sig,
                         SecureRandom& rng) {
  const Bigint rho = Bigint::random_range(rng, Bigint(1), params.r);
  return ClSignature{ec_mul(sig.a, rho, params.p),
                     ec_mul(sig.b, rho, params.p),
                     ec_mul(sig.c, rho, params.p)};
}

}  // namespace ppms
