#include "clsig/clsig.h"

#include <stdexcept>

#include "obs/metrics.h"
#include "util/counters.h"
#include "util/serial.h"

namespace ppms {

Bytes ClPublicKey::serialize(const TypeAParams& params) const {
  Writer w;
  w.put_bytes(ec_serialize(X, params.p));
  w.put_bytes(ec_serialize(Y, params.p));
  return w.take();
}

ClPublicKey ClPublicKey::deserialize(const TypeAParams& params,
                                     const Bytes& data) {
  Reader r(data);
  ClPublicKey pk;
  pk.X = ec_deserialize(r.get_bytes(), params.p);
  pk.Y = ec_deserialize(r.get_bytes(), params.p);
  if (!r.exhausted()) throw std::invalid_argument("ClPublicKey: trailing");
  return pk;
}

Bytes ClSignature::serialize(const TypeAParams& params) const {
  Writer w;
  w.put_bytes(ec_serialize(a, params.p));
  w.put_bytes(ec_serialize(b, params.p));
  w.put_bytes(ec_serialize(c, params.p));
  return w.take();
}

ClSignature ClSignature::deserialize(const TypeAParams& params,
                                     const Bytes& data) {
  Reader r(data);
  ClSignature sig;
  sig.a = ec_deserialize(r.get_bytes(), params.p);
  sig.b = ec_deserialize(r.get_bytes(), params.p);
  sig.c = ec_deserialize(r.get_bytes(), params.p);
  if (!r.exhausted()) throw std::invalid_argument("ClSignature: trailing");
  return sig;
}

ClKeyPair cl_keygen(const TypeAParams& params, SecureRandom& rng) {
  ClKeyPair kp;
  kp.sk.x = Bigint::random_range(rng, Bigint(1), params.r);
  kp.sk.y = Bigint::random_range(rng, Bigint(1), params.r);
  kp.pk.X = ec_mul(params.g, kp.sk.x, params.p);
  kp.pk.Y = ec_mul(params.g, kp.sk.y, params.p);
  return kp;
}

ClSignature cl_sign(const TypeAParams& params, const ClSecretKey& sk,
                    const Bigint& m, SecureRandom& rng) {
  count_op(OpKind::Enc);
  static obs::Counter& obs_enc = obs::counter("crypto.enc.calls");
  if (!op_counting_paused()) obs_enc.add();
  static obs::Histogram& obs_lat = obs::histogram("crypto.cl.sign");
  obs::ScopedTimer obs_timer(obs_lat);
  const Bigint mr = m.mod(params.r);
  ClSignature sig;
  const Bigint alpha = Bigint::random_range(rng, Bigint(1), params.r);
  sig.a = ec_mul(params.g, alpha, params.p);
  sig.b = ec_mul(sig.a, sk.y, params.p);
  const Bigint exp = (sk.x + (mr * sk.x * sk.y)).mod(params.r);
  sig.c = ec_mul(sig.a, exp, params.p);
  return sig;
}

ClSignature cl_sign_committed(const TypeAParams& params,
                              const ClSecretKey& sk, const EcPoint& M,
                              SecureRandom& rng) {
  count_op(OpKind::Enc);
  static obs::Counter& obs_enc = obs::counter("crypto.enc.calls");
  if (!op_counting_paused()) obs_enc.add();
  static obs::Histogram& obs_lat = obs::histogram("crypto.cl.sign");
  obs::ScopedTimer obs_timer(obs_lat);
  if (!ec_on_curve(M, params.p)) {
    throw std::invalid_argument("cl_sign_committed: bad commitment");
  }
  ClSignature sig;
  const Bigint alpha = Bigint::random_range(rng, Bigint(1), params.r);
  sig.a = ec_mul(params.g, alpha, params.p);
  sig.b = ec_mul(sig.a, sk.y, params.p);
  // c = a^x · M^{α·x·y} = a^{x + m·x·y} for M = g^m.
  const EcPoint ax = ec_mul(sig.a, sk.x, params.p);
  const Bigint axy = (alpha * sk.x * sk.y).mod(params.r);
  sig.c = ec_add(ax, ec_mul(M, axy, params.p), params.p);
  return sig;
}

namespace {

// Verification core shared by cl_verify and the batch fallback; op
// counters live in the public entry points. Each CL equation is one
// product of pairings: combining the Miller values before the (single)
// final exponentiation is exact, and u·v⁻¹ == 1 in F_p² iff u == v, so
// the accept/reject decision matches the independent-pairing form.
bool cl_verify_core(const TypeAParams& params, const PairingEngine& engine,
                    const ClPublicKey& pk, const Bigint& m,
                    const ClSignature& sig) {
  if (sig.a.infinity) return false;
  if (!ec_on_curve(sig.a, params.p) || !ec_on_curve(sig.b, params.p) ||
      !ec_on_curve(sig.c, params.p)) {
    return false;
  }
  const Bigint mr = m.mod(params.r);
  // ê(a, Y) · ê(g, b)⁻¹ == 1
  if (!fp2_is_one(engine.pair_product({
          PairingTerm{.P = sig.a, .Q = pk.Y},
          PairingTerm{.P = params.g, .Q = sig.b, .invert = true},
      }))) {
    return false;
  }
  // ê(X, a) · ê(X, b)^m · ê(g, c)⁻¹ == 1
  return fp2_is_one(engine.pair_product({
      PairingTerm{.P = pk.X, .Q = sig.a},
      PairingTerm{.P = pk.X, .Q = sig.b, .exp = mr},
      PairingTerm{.P = params.g, .Q = sig.c, .invert = true},
  }));
}

}  // namespace

bool cl_verify(const TypeAParams& params, const ClPublicKey& pk,
               const Bigint& m, const ClSignature& sig) {
  count_op(OpKind::Dec);
  static obs::Counter& obs_dec = obs::counter("crypto.dec.calls");
  if (!op_counting_paused()) obs_dec.add();
  static obs::Histogram& obs_lat = obs::histogram("crypto.cl.verify");
  obs::ScopedTimer obs_timer(obs_lat);
  const PairingEngine engine(params);
  return cl_verify_core(params, engine, pk, m, sig);
}

ClSignature cl_randomize(const TypeAParams& params, const ClSignature& sig,
                         SecureRandom& rng) {
  const Bigint rho = Bigint::random_range(rng, Bigint(1), params.r);
  return ClSignature{ec_mul(sig.a, rho, params.p),
                     ec_mul(sig.b, rho, params.p),
                     ec_mul(sig.c, rho, params.p)};
}

std::vector<bool> cl_verify_batch(const TypeAParams& params,
                                  const ClPublicKey& pk,
                                  const std::vector<ClBatchItem>& items,
                                  SecureRandom& rng) {
  // Same op-count footprint as N calls to cl_verify, whichever internal
  // path decides the batch.
  for (std::size_t j = 0; j < items.size(); ++j) count_op(OpKind::Dec);
  static obs::Counter& obs_dec = obs::counter("crypto.dec.calls");
  if (!op_counting_paused()) obs_dec.add(items.size());
  static obs::Histogram& obs_lat = obs::histogram("crypto.cl.verify_batch");
  obs::ScopedTimer obs_timer(obs_lat);
  if (items.empty()) return {};

  const PairingEngine engine(params);
  const auto fallback = [&] {
    std::vector<bool> ok(items.size());
    for (std::size_t j = 0; j < items.size(); ++j) {
      ok[j] = cl_verify_core(params, engine, pk, items[j].m, items[j].sig);
    }
    return ok;
  };

  // Fixed-argument tables for the three constant first points; the batch
  // orients every pairing constant-first (the pairing is symmetric on the
  // order-r subgroup). The tables cost one Miller loop each and serve
  // 5·N pairings.
  const PairingPrecomp pre_g = engine.precompute(params.g);
  PairingPrecomp pre_x, pre_y;
  try {
    pre_x = engine.precompute(pk.X);
    pre_y = engine.precompute(pk.Y);
  } catch (const std::invalid_argument&) {
    return std::vector<bool>(items.size(), false);  // pk off-curve
  }

  std::vector<PairingTerm> terms;
  terms.reserve(items.size() * 5);
  for (const ClBatchItem& item : items) {
    const ClSignature& sig = item.sig;
    if (sig.a.infinity || !ec_on_curve(sig.a, params.p) ||
        !ec_on_curve(sig.b, params.p) || !ec_on_curve(sig.c, params.p)) {
      return fallback();  // malformed member: identify it per-signature
    }
    // Independent scalars per equation: a shared δ would let an adversary
    // cancel an error in one equation against the other. 64-bit scalars
    // suffice (GT has prime order r > 2^64, so a wrong product survives
    // with probability at most 2^-64) and halve the per-group F_p²
    // exponentiations inside the product.
    const Bigint d1 =
        Bigint::random_range(rng, Bigint(1), Bigint::two_pow(64));
    const Bigint d2 =
        Bigint::random_range(rng, Bigint(1), Bigint::two_pow(64));
    const Bigint mr = item.m.mod(params.r);
    terms.push_back(PairingTerm{.pre = &pre_y, .Q = sig.a, .exp = d1});
    terms.push_back(
        PairingTerm{.pre = &pre_g, .Q = sig.b, .exp = d1, .invert = true});
    terms.push_back(PairingTerm{.pre = &pre_x, .Q = sig.a, .exp = d2});
    terms.push_back(
        PairingTerm{.pre = &pre_x, .Q = sig.b, .exp = (d2 * mr).mod(params.r)});
    terms.push_back(
        PairingTerm{.pre = &pre_g, .Q = sig.c, .exp = d2, .invert = true});
  }
  if (fp2_is_one(engine.pair_product(terms))) {
    return std::vector<bool>(items.size(), true);
  }
  return fallback();
}

}  // namespace ppms
