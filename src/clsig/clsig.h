// Camenisch–Lysyanskaya signatures (CRYPTO 2004, Scheme A) over the Type-A
// pairing — the clpk/clsk key material of the paper's PPMSdec mechanism.
//
// Messages are exponents m in Z_r. Two properties carry the DEC protocol:
//  * blind issuance: the signer can sign a Pedersen-style commitment
//    M = g^m without learning m (cl_sign_committed), which is how the bank
//    certifies a wallet secret at withdrawal while the withdrawal stays
//    anonymous;
//  * re-randomization: (a,b,c) → (a^ρ,b^ρ,c^ρ) is a fresh-looking valid
//    signature on the same m, so a spender can present a certified wallet
//    without the bank recognizing which issuance it came from.
#pragma once

#include <vector>

#include "pairing/pipeline.h"
#include "pairing/tate.h"
#include "pairing/typea.h"
#include "util/rng.h"

namespace ppms {

struct ClSecretKey {
  Bigint x, y;
};

struct ClPublicKey {
  EcPoint X, Y;

  Bytes serialize(const TypeAParams& params) const;
  static ClPublicKey deserialize(const TypeAParams& params,
                                 const Bytes& data);
};

struct ClKeyPair {
  ClSecretKey sk;
  ClPublicKey pk;
};

struct ClSignature {
  EcPoint a, b, c;

  Bytes serialize(const TypeAParams& params) const;
  static ClSignature deserialize(const TypeAParams& params,
                                 const Bytes& data);
};

ClKeyPair cl_keygen(const TypeAParams& params, SecureRandom& rng);

/// Sign message m ∈ Z_r (counted as Enc).
ClSignature cl_sign(const TypeAParams& params, const ClSecretKey& sk,
                    const Bigint& m, SecureRandom& rng);

/// Sign the commitment M = g^m without learning m (counted as Enc). The
/// holder later verifies the result against its own m.
ClSignature cl_sign_committed(const TypeAParams& params,
                              const ClSecretKey& sk, const EcPoint& M,
                              SecureRandom& rng);

/// Verify signature on m (counted as Dec): ê(a,Y) == ê(g,b) and
/// ê(X,a)·ê(X,b)^m == ê(g,c).
bool cl_verify(const TypeAParams& params, const ClPublicKey& pk,
               const Bigint& m, const ClSignature& sig);

/// Re-randomize into an unlinkable but equally valid signature.
ClSignature cl_randomize(const TypeAParams& params, const ClSignature& sig,
                         SecureRandom& rng);

/// One (message, signature) claim of a deposit batch.
struct ClBatchItem {
  Bigint m;
  ClSignature sig;
};

/// Randomized small-exponent batch verification (counted as one Dec per
/// item, like the per-signature path). Folds all 2·N verification
/// equations into a single product of pairings
///     ∏_j [ê(Y,a_j)·ê(g,b_j)⁻¹]^{δ_j} ·
///          [ê(X,a_j)·ê(X,b_j)^{m_j}·ê(g,c_j)⁻¹]^{δ'_j}  ==  1
/// with independent per-equation 64-bit scalars δ, δ' drawn from the
/// verifier's own stream — a forged batch passes with probability at
/// most 2^-64. On reject it falls back to per-signature
/// verification, so the returned flags always match cl_verify exactly;
/// the fast path only ever accelerates the all-valid case.
std::vector<bool> cl_verify_batch(const TypeAParams& params,
                                  const ClPublicKey& pk,
                                  const std::vector<ClBatchItem>& items,
                                  SecureRandom& rng);

}  // namespace ppms
