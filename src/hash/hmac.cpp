#include "hash/hmac.h"

#include "hash/sha256.h"
#include "util/counters.h"
#include "obs/metrics.h"

namespace ppms {

Bytes hmac_sha256(const Bytes& key, const Bytes& message) {
  count_op(OpKind::Hash);
  static obs::Counter& obs_hash = obs::counter("crypto.hash.calls");
  if (!op_counting_paused()) obs_hash.add();
  constexpr std::size_t kBlock = Sha256::kBlockSize;
  Bytes k = key;
  if (k.size() > kBlock) {
    Sha256 h;
    h.update(k);
    k = h.finish();
  }
  k.resize(kBlock, 0);

  Bytes ipad(kBlock), opad(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  const Bytes inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

}  // namespace ppms
