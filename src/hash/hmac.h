// HMAC-SHA256 (RFC 2104), used for keyed coin-serial derivation in src/dec
// and integrity tags in the hybrid encryption of large payment payloads.
#pragma once

#include "util/bytes.h"

namespace ppms {

/// HMAC-SHA256 of `message` under `key` (any key length; keys longer than
/// the block size are hashed first, per RFC 2104).
Bytes hmac_sha256(const Bytes& key, const Bytes& message);

}  // namespace ppms
