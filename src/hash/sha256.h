// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used by RSA-OAEP/PSS, the Fiat-Shamir transcripts in src/zkp, coin serial
// derivation in src/dec and commitment hashing throughout the protocols.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace ppms {

/// Incremental SHA-256. `update` may be called any number of times;
/// `finish` pads and returns the 32-byte digest (the object may then be
/// reused after `reset`).
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256() { reset(); }

  void reset();
  void update(const std::uint8_t* data, std::size_t len);
  void update(const Bytes& data) { update(data.data(), data.size()); }
  Bytes finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// One-shot digest. Records one Hash operation against the calling thread's
/// role (Table I accounting).
Bytes sha256(const Bytes& data);

}  // namespace ppms
