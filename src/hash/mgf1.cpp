#include "hash/mgf1.h"

#include "hash/sha256.h"

namespace ppms {

Bytes mgf1_sha256(const Bytes& seed, std::size_t out_len) {
  Bytes out;
  out.reserve(out_len);
  for (std::uint32_t counter = 0; out.size() < out_len; ++counter) {
    Bytes block = seed;
    append_u32_be(block, counter);
    Sha256 h;
    h.update(block);
    const Bytes digest = h.finish();
    const std::size_t take =
        std::min(digest.size(), out_len - out.size());
    out.insert(out.end(), digest.begin(),
               digest.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

}  // namespace ppms
