// SHA-1 (FIPS 180-4), implemented from scratch.
//
// Kept for protocol compatibility experiments only: the related work the
// paper criticizes ([19]) used SHA-1, and the A1 ablation compares digest
// choices. Do not use for new constructions; all security-bearing paths in
// this library use SHA-256.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace ppms {

class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;
  static constexpr std::size_t kBlockSize = 64;

  Sha1() { reset(); }

  void reset();
  void update(const std::uint8_t* data, std::size_t len);
  void update(const Bytes& data) { update(data.data(), data.size()); }
  Bytes finish();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> state_{};
  std::array<std::uint8_t, kBlockSize> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// One-shot digest (counted as a Hash operation).
Bytes sha1(const Bytes& data);

}  // namespace ppms
