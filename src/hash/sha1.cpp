#include "hash/sha1.h"

#include <bit>
#include <cstring>

#include "util/counters.h"
#include "obs/metrics.h"

namespace ppms {

void Sha1::reset() {
  state_ = {0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0};
  buffered_ = 0;
  total_bytes_ = 0;
}

void Sha1::process_block(const std::uint8_t* block) {
  std::array<std::uint32_t, 80> w{};
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = std::rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }
  std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3],
                e = state_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDC;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6;
    }
    const std::uint32_t tmp = std::rotl(a, 5) + f + e + k + w[i];
    e = d; d = c; c = std::rotl(b, 30); b = a; a = tmp;
  }
  state_[0] += a; state_[1] += b; state_[2] += c;
  state_[3] += d; state_[4] += e;
}

void Sha1::update(const std::uint8_t* data, std::size_t len) {
  total_bytes_ += len;
  while (len > 0) {
    if (buffered_ == 0 && len >= kBlockSize) {
      process_block(data);
      data += kBlockSize;
      len -= kBlockSize;
      continue;
    }
    const std::size_t take = std::min(kBlockSize - buffered_, len);
    std::memcpy(buffer_.data() + buffered_, data, take);
    buffered_ += take;
    data += take;
    len -= take;
    if (buffered_ == kBlockSize) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
}

Bytes Sha1::finish() {
  const std::uint64_t bit_len = total_bytes_ * 8;
  const std::uint8_t pad = 0x80;
  update(&pad, 1);
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) update(&zero, 1);
  std::array<std::uint8_t, 8> len_be{};
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(len_be.data(), len_be.size());
  Bytes digest(kDigestSize);
  for (int i = 0; i < 5; ++i) {
    digest[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
    digest[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    digest[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    digest[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  reset();
  return digest;
}

Bytes sha1(const Bytes& data) {
  count_op(OpKind::Hash);
  static obs::Counter& obs_hash = obs::counter("crypto.hash.calls");
  if (!op_counting_paused()) obs_hash.add();
  Sha1 h;
  h.update(data);
  return h.finish();
}

}  // namespace ppms
