// MGF1 mask generation function (PKCS#1 v2.2, appendix B.2.1) over SHA-256.
// Used by RSA-OAEP and RSA-PSS.
#pragma once

#include "util/bytes.h"

namespace ppms {

/// Expand `seed` into `out_len` mask bytes: MGF1(seed) = H(seed||0) ||
/// H(seed||1) || ... truncated to out_len.
Bytes mgf1_sha256(const Bytes& seed, std::size_t out_len);

}  // namespace ppms
