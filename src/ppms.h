// Umbrella header for the ppms library's public API.
//
// Pulls in the two market mechanisms (the paper's contribution), the
// parameter presets and the attack analyzer — everything a typical
// integrator needs. The substrates (bigint, pairing, zkp, dec, ...) stay
// individually includable for lower-level use.
//
//   #include "ppms.h"
//
//   ppms::PpmsDecMarket market = ppms::make_fast_dec_market(seed);
//   auto check = market.run_round("lab", "worker", "job", 5, data);
#pragma once

#include "core/attack.h"      // denomination-attack analysis
#include "core/cash_break.h"  // Algorithms 2/3 and the unitary break
#include "core/params.h"      // presets: fast_dec_params, make_fast_*_market
#include "core/ppmsdec.h"     // PPMSdec: arbitrary-payment mechanism
#include "core/ppmspbs.h"     // PPMSpbs: unitary-payment mechanism
