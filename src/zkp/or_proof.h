// Disjunctive ("OR") proof of knowledge, Cramer–Damgård–Schoenmakers:
//   PoK{ x : y_0 = g^x  ∨  y_1 = g^x }
// without revealing which disjunct holds.
//
// The verifier learns only that the prover knows the discrete log of at
// least one of the targets. Used by market residents to prove "this
// pseudonym belongs to one of the registered keys" without identifying
// which — the witness-hiding building block [37][38] the paper lists.
#pragma once

#include <vector>

#include "zkp/group.h"
#include "zkp/transcript.h"

namespace ppms {

struct OrProof {
  /// One simulated/real branch per disjunct.
  std::vector<Bytes> commitments;
  std::vector<Bigint> challenges;
  std::vector<Bigint> responses;

  Bytes serialize() const;
  static OrProof deserialize(const Bytes& data);
};

/// Prove knowledge of x = dlog_g(ys[known_index]); other branches are
/// simulated. `ys` must have >= 2 entries. Counted as one ZKP operation.
OrProof or_prove(const Group& group, const Bytes& generator,
                 const std::vector<Bytes>& ys, std::size_t known_index,
                 const Bigint& x, SecureRandom& rng,
                 const Bytes& context = {});

bool or_verify(const Group& group, const Bytes& generator,
               const std::vector<Bytes>& ys, const OrProof& proof,
               const Bytes& context = {});

}  // namespace ppms
