#include "zkp/representation.h"

#include <stdexcept>

#include "util/counters.h"
#include "obs/metrics.h"
#include "util/serial.h"

namespace ppms {

namespace {

Bigint derive_challenge(const Group& group,
                        const std::vector<Bytes>& generators, const Bytes& y,
                        const Bytes& commitment, const Bytes& context) {
  Transcript t("ppms.zkp.representation");
  t.absorb("group", group.describe());
  for (const Bytes& g : generators) t.absorb("generator", g);
  t.absorb("y", y);
  t.absorb("commitment", commitment);
  t.absorb("context", context);
  return t.challenge("c", group.order());
}

}  // namespace

Bytes RepresentationProof::serialize() const {
  Writer w;
  w.put_bytes(commitment);
  w.put_u32(static_cast<std::uint32_t>(responses.size()));
  for (const Bigint& z : responses) w.put_bytes(z.to_bytes_be());
  return w.take();
}

RepresentationProof RepresentationProof::deserialize(const Bytes& data) {
  Reader r(data);
  RepresentationProof proof;
  proof.commitment = r.get_bytes();
  const std::uint32_t n = r.get_u32();
  proof.responses.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    proof.responses.push_back(Bigint::from_bytes_be(r.get_bytes()));
  }
  if (!r.exhausted()) {
    throw std::invalid_argument("RepresentationProof: trailing");
  }
  return proof;
}

RepresentationProof representation_prove(
    const Group& group, const std::vector<Bytes>& generators, const Bytes& y,
    const std::vector<Bigint>& exponents, SecureRandom& rng,
    const Bytes& context) {
  count_op(OpKind::Zkp);
  static obs::Counter& obs_zkp = obs::counter("zkp.prove");
  if (!op_counting_paused()) obs_zkp.add();
  static obs::Histogram& obs_lat = obs::histogram("zkp.prove");
  obs::ScopedTimer obs_timer(obs_lat);
  if (generators.empty() || generators.size() != exponents.size()) {
    throw std::invalid_argument("representation_prove: size mismatch");
  }
  std::vector<Bigint> ks;
  ks.reserve(generators.size());
  Bytes commitment = group.identity();
  for (const Bytes& g : generators) {
    ks.push_back(Bigint::random_below(rng, group.order()));
    commitment = group.op(commitment, group.pow(g, ks.back()));
  }
  const Bigint c = derive_challenge(group, generators, y, commitment, context);
  RepresentationProof proof;
  proof.commitment = std::move(commitment);
  proof.responses.reserve(generators.size());
  for (std::size_t i = 0; i < generators.size(); ++i) {
    proof.responses.push_back((ks[i] + c * exponents[i]).mod(group.order()));
  }
  return proof;
}

bool representation_verify(const Group& group,
                           const std::vector<Bytes>& generators,
                           const Bytes& y, const RepresentationProof& proof,
                           const Bytes& context) {
  count_op(OpKind::Zkp);
  static obs::Counter& obs_zkp = obs::counter("zkp.verify");
  if (!op_counting_paused()) obs_zkp.add();
  static obs::Histogram& obs_lat = obs::histogram("zkp.verify");
  obs::ScopedTimer obs_timer(obs_lat);
  if (generators.empty() || proof.responses.size() != generators.size()) {
    return false;
  }
  if (!group.contains(y) || !group.contains(proof.commitment)) return false;
  for (const Bigint& z : proof.responses) {
    if (z.is_negative() || z >= group.order()) return false;
  }
  const Bigint c =
      derive_challenge(group, generators, y, proof.commitment, context);
  // Π g_i^{z_i} == A · y^c, folded pairwise through pow2 so each pair of
  // generators shares one squaring chain; the trailing y^{q-c} term moves
  // the rhs pow into the last chain.
  const Bigint q_minus_c = (group.order() - c).mod(group.order());
  Bytes lhs = group.identity();
  std::size_t i = 0;
  for (; i + 1 < generators.size(); i += 2) {
    lhs = group.op(lhs, group.pow2(generators[i], proof.responses[i],
                                   generators[i + 1], proof.responses[i + 1]));
  }
  if (i < generators.size()) {
    lhs = group.op(lhs, group.pow2(generators[i], proof.responses[i], y,
                                   q_minus_c));
  } else {
    lhs = group.op(lhs, group.pow(y, q_minus_c));
  }
  return lhs == proof.commitment;
}

}  // namespace ppms
