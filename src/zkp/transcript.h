// Fiat–Shamir transcript (hash-chained, SHA-256 based).
//
// All NIZKs in src/zkp derive their challenges from a Transcript: every
// public value of the statement is absorbed with a label, then the
// challenge is squeezed. Labels plus length-prefixing make the absorption
// injective, so distinct statements can never collide into one challenge.
// The paper implements its proofs "in one round of interaction" with
// exactly this heuristic (Section VI-C).
#pragma once

#include <string_view>

#include "bigint/bigint.h"
#include "util/bytes.h"

namespace ppms {

class Transcript {
 public:
  /// `domain` separates protocol families ("ppms.dec.spend", ...).
  explicit Transcript(std::string_view domain);

  /// Absorb a labeled message into the state.
  void absorb(std::string_view label, const Bytes& data);

  /// Squeeze a challenge scalar uniform in [0, bound); also advances the
  /// state so consecutive challenges are independent.
  Bigint challenge(std::string_view label, const Bigint& bound);

  /// Squeeze `n` challenge bytes (used by cut-and-choose proofs).
  Bytes challenge_bytes(std::string_view label, std::size_t n);

 private:
  void mix(std::string_view label, const Bytes& data);

  Bytes state_;
};

}  // namespace ppms
