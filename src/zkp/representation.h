// Proof of knowledge of a representation to several bases
// (Camenisch–Michels style statement, Fiat–Shamir compiled):
//   PoK{ (x_1, ..., x_n) : y = g_1^{x_1} · ... · g_n^{x_n} }.
//
// With n = 2 and (g, h) independent this is the opening proof for Pedersen
// commitments, used by the DEC withdraw protocol.
#pragma once

#include <vector>

#include "zkp/group.h"
#include "zkp/transcript.h"

namespace ppms {

struct RepresentationProof {
  Bytes commitment;              ///< A = Π g_i^{k_i}
  std::vector<Bigint> responses; ///< z_i = k_i + c·x_i mod order

  Bytes serialize() const;
  static RepresentationProof deserialize(const Bytes& data);
};

/// Prove knowledge of exponents with y == Π generators[i]^exponents[i].
/// Sizes must match and be >= 1. Counted as one ZKP operation.
RepresentationProof representation_prove(
    const Group& group, const std::vector<Bytes>& generators, const Bytes& y,
    const std::vector<Bigint>& exponents, SecureRandom& rng,
    const Bytes& context = {});

bool representation_verify(const Group& group,
                           const std::vector<Bytes>& generators,
                           const Bytes& y, const RepresentationProof& proof,
                           const Bytes& context = {});

}  // namespace ppms
