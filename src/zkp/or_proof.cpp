#include "zkp/or_proof.h"

#include <stdexcept>

#include "util/counters.h"
#include "obs/metrics.h"
#include "util/serial.h"

namespace ppms {

namespace {

Bigint total_challenge(const Group& group, const Bytes& generator,
                       const std::vector<Bytes>& ys,
                       const std::vector<Bytes>& commitments,
                       const Bytes& context) {
  Transcript t("ppms.zkp.or");
  t.absorb("group", group.describe());
  t.absorb("generator", generator);
  for (const Bytes& y : ys) t.absorb("y", y);
  for (const Bytes& a : commitments) t.absorb("commitment", a);
  t.absorb("context", context);
  return t.challenge("c", group.order());
}

}  // namespace

Bytes OrProof::serialize() const {
  Writer w;
  w.put_u32(static_cast<std::uint32_t>(commitments.size()));
  for (const Bytes& a : commitments) w.put_bytes(a);
  for (const Bigint& c : challenges) w.put_bytes(c.to_bytes_be());
  for (const Bigint& z : responses) w.put_bytes(z.to_bytes_be());
  return w.take();
}

OrProof OrProof::deserialize(const Bytes& data) {
  Reader r(data);
  OrProof proof;
  const std::uint32_t n = r.get_u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    proof.commitments.push_back(r.get_bytes());
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    proof.challenges.push_back(Bigint::from_bytes_be(r.get_bytes()));
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    proof.responses.push_back(Bigint::from_bytes_be(r.get_bytes()));
  }
  if (!r.exhausted()) throw std::invalid_argument("OrProof: trailing");
  return proof;
}

OrProof or_prove(const Group& group, const Bytes& generator,
                 const std::vector<Bytes>& ys, std::size_t known_index,
                 const Bigint& x, SecureRandom& rng, const Bytes& context) {
  count_op(OpKind::Zkp);
  static obs::Counter& obs_zkp = obs::counter("zkp.prove");
  if (!op_counting_paused()) obs_zkp.add();
  static obs::Histogram& obs_lat = obs::histogram("zkp.prove");
  obs::ScopedTimer obs_timer(obs_lat);
  if (ys.size() < 2 || known_index >= ys.size()) {
    throw std::invalid_argument("or_prove: bad disjunct set");
  }
  const Bigint& q = group.order();
  const std::size_t n = ys.size();
  OrProof proof;
  proof.commitments.resize(n);
  proof.challenges.assign(n, Bigint(0));
  proof.responses.assign(n, Bigint(0));

  // Simulate every branch except the real one: pick (c_i, z_i) first and
  // set A_i = g^{z_i} · y_i^{-c_i}.
  for (std::size_t i = 0; i < n; ++i) {
    if (i == known_index) continue;
    proof.challenges[i] = Bigint::random_below(rng, q);
    proof.responses[i] = Bigint::random_below(rng, q);
    proof.commitments[i] =
        group.pow2(generator, proof.responses[i], ys[i],
                   (q - proof.challenges[i]).mod(q));
  }
  // Real branch commitment.
  const Bigint k = Bigint::random_below(rng, q);
  proof.commitments[known_index] = group.pow(generator, k);

  const Bigint c =
      total_challenge(group, generator, ys, proof.commitments, context);
  // The real challenge is what is left after the simulated ones.
  Bigint c_known = c;
  for (std::size_t i = 0; i < n; ++i) {
    if (i != known_index) c_known -= proof.challenges[i];
  }
  proof.challenges[known_index] = c_known.mod(q);
  proof.responses[known_index] =
      (k + proof.challenges[known_index] * x).mod(q);
  return proof;
}

bool or_verify(const Group& group, const Bytes& generator,
               const std::vector<Bytes>& ys, const OrProof& proof,
               const Bytes& context) {
  count_op(OpKind::Zkp);
  static obs::Counter& obs_zkp = obs::counter("zkp.verify");
  if (!op_counting_paused()) obs_zkp.add();
  static obs::Histogram& obs_lat = obs::histogram("zkp.verify");
  obs::ScopedTimer obs_timer(obs_lat);
  const std::size_t n = ys.size();
  if (n < 2 || proof.commitments.size() != n ||
      proof.challenges.size() != n || proof.responses.size() != n) {
    return false;
  }
  const Bigint& q = group.order();
  Bigint sum(0);
  for (std::size_t i = 0; i < n; ++i) {
    if (!group.contains(ys[i]) || !group.contains(proof.commitments[i])) {
      return false;
    }
    if (proof.challenges[i].is_negative() || proof.challenges[i] >= q ||
        proof.responses[i].is_negative() || proof.responses[i] >= q) {
      return false;
    }
    // g^{z_i} · y_i^{q-c_i} == A_i (one Shamir chain per disjunct)
    if (group.pow2(generator, proof.responses[i], ys[i],
                   (q - proof.challenges[i]).mod(q)) !=
        proof.commitments[i]) {
      return false;
    }
    sum += proof.challenges[i];
  }
  const Bigint c =
      total_challenge(group, generator, ys, proof.commitments, context);
  return sum.mod(q) == c;
}

}  // namespace ppms
