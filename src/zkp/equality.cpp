#include "zkp/equality.h"

#include <stdexcept>

#include "util/counters.h"
#include "obs/metrics.h"
#include "util/serial.h"

namespace ppms {

namespace {

Bigint derive_challenge(const Group& group1, const Bytes& g1, const Bytes& y1,
                        const Group& group2, const Bytes& g2, const Bytes& y2,
                        const Bytes& a1, const Bytes& a2,
                        const Bytes& context) {
  Transcript t("ppms.zkp.equality");
  t.absorb("group1", group1.describe());
  t.absorb("g1", g1);
  t.absorb("y1", y1);
  t.absorb("group2", group2.describe());
  t.absorb("g2", g2);
  t.absorb("y2", y2);
  t.absorb("A1", a1);
  t.absorb("A2", a2);
  t.absorb("context", context);
  return t.challenge("c", group1.order());
}

}  // namespace

Bytes EqualityProof::serialize() const {
  Writer w;
  w.put_bytes(commitment1);
  w.put_bytes(commitment2);
  w.put_bytes(response.to_bytes_be());
  return w.take();
}

EqualityProof EqualityProof::deserialize(const Bytes& data) {
  Reader r(data);
  EqualityProof proof;
  proof.commitment1 = r.get_bytes();
  proof.commitment2 = r.get_bytes();
  proof.response = Bigint::from_bytes_be(r.get_bytes());
  if (!r.exhausted()) throw std::invalid_argument("EqualityProof: trailing");
  return proof;
}

EqualityProof equality_prove(const Group& group1, const Bytes& g1,
                             const Bytes& y1, const Group& group2,
                             const Bytes& g2, const Bytes& y2,
                             const Bigint& x, SecureRandom& rng,
                             const Bytes& context) {
  count_op(OpKind::Zkp);
  static obs::Counter& obs_zkp = obs::counter("zkp.prove");
  if (!op_counting_paused()) obs_zkp.add();
  static obs::Histogram& obs_lat = obs::histogram("zkp.prove");
  obs::ScopedTimer obs_timer(obs_lat);
  if (group1.order() != group2.order()) {
    throw std::invalid_argument("equality_prove: group order mismatch");
  }
  const Bigint k = Bigint::random_below(rng, group1.order());
  EqualityProof proof;
  proof.commitment1 = group1.pow(g1, k);
  proof.commitment2 = group2.pow(g2, k);
  const Bigint c = derive_challenge(group1, g1, y1, group2, g2, y2,
                                    proof.commitment1, proof.commitment2,
                                    context);
  proof.response = (k + c * x).mod(group1.order());
  return proof;
}

namespace {

bool verify_core(const Group& group1, const Bytes& g1, const Bytes& y1,
                 const Group& group2, const Bytes& g2, const Bytes& y2,
                 const EqualityProof& proof, const Bytes& context,
                 bool check_statement) {
  count_op(OpKind::Zkp);
  static obs::Counter& obs_zkp = obs::counter("zkp.verify");
  if (!op_counting_paused()) obs_zkp.add();
  static obs::Histogram& obs_lat = obs::histogram("zkp.verify");
  obs::ScopedTimer obs_timer(obs_lat);
  if (group1.order() != group2.order()) return false;
  if (check_statement && (!group1.contains(y1) || !group2.contains(y2))) {
    return false;
  }
  if (!group1.contains(proof.commitment1) ||
      !group2.contains(proof.commitment2)) {
    return false;
  }
  if (proof.response.is_negative() || proof.response >= group1.order()) {
    return false;
  }
  const Bigint c = derive_challenge(group1, g1, y1, group2, g2, y2,
                                    proof.commitment1, proof.commitment2,
                                    context);
  // g^z · y^{q-c} == A in each group (one Shamir chain per side).
  const Bigint q_minus_c = (group1.order() - c).mod(group1.order());
  const bool eq1 = group1.pow2(g1, proof.response, y1, q_minus_c) ==
                   proof.commitment1;
  const bool eq2 = group2.pow2(g2, proof.response, y2, q_minus_c) ==
                   proof.commitment2;
  return eq1 && eq2;
}

}  // namespace

bool equality_verify(const Group& group1, const Bytes& g1, const Bytes& y1,
                     const Group& group2, const Bytes& g2, const Bytes& y2,
                     const EqualityProof& proof, const Bytes& context) {
  return verify_core(group1, g1, y1, group2, g2, y2, proof, context,
                     /*check_statement=*/true);
}

bool equality_verify_trusted_statement(const Group& group1, const Bytes& g1,
                                       const Bytes& y1, const Group& group2,
                                       const Bytes& g2, const Bytes& y2,
                                       const EqualityProof& proof,
                                       const Bytes& context) {
  return verify_core(group1, g1, y1, group2, g2, y2, proof, context,
                     /*check_statement=*/false);
}

}  // namespace ppms
