#include "zkp/double_dlog.h"

#include <stdexcept>

#include "bigint/modarith.h"
#include "util/counters.h"
#include "obs/metrics.h"
#include "util/serial.h"

namespace ppms {

namespace {

Bytes challenge_bits(const DoubleDlogStatement& stmt,
                     const std::vector<Bytes>& commitments,
                     std::size_t rounds, const Bytes& context) {
  Transcript t("ppms.zkp.double_dlog");
  t.absorb("group", stmt.outer->describe());
  t.absorb("g", stmt.g);
  t.absorb("Y", stmt.Y);
  t.absorb("h", stmt.h.to_bytes_be());
  t.absorb("inner_modulus", stmt.inner_modulus.to_bytes_be());
  t.absorb("inner_order", stmt.inner_order.to_bytes_be());
  for (const Bytes& c : commitments) t.absorb("t", c);
  t.absorb("context", context);
  return t.challenge_bytes("bits", (rounds + 7) / 8);
}

bool bit_at(const Bytes& bits, std::size_t i) {
  return (bits[i / 8] >> (i % 8)) & 1;
}

}  // namespace

Bytes DoubleDlogProof::serialize() const {
  Writer w;
  w.put_u32(static_cast<std::uint32_t>(commitments.size()));
  for (const Bytes& t : commitments) w.put_bytes(t);
  for (const Bigint& s : responses) w.put_bytes(s.to_bytes_be());
  return w.take();
}

DoubleDlogProof DoubleDlogProof::deserialize(const Bytes& data) {
  Reader r(data);
  DoubleDlogProof proof;
  const std::uint32_t n = r.get_u32();
  for (std::uint32_t i = 0; i < n; ++i) {
    proof.commitments.push_back(r.get_bytes());
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    proof.responses.push_back(Bigint::from_bytes_be(r.get_bytes()));
  }
  if (!r.exhausted()) throw std::invalid_argument("DoubleDlogProof: trailing");
  return proof;
}

DoubleDlogProof double_dlog_prove(const DoubleDlogStatement& stmt,
                                  const Bigint& x, SecureRandom& rng,
                                  std::size_t rounds, const Bytes& context) {
  count_op(OpKind::Zkp);
  static obs::Counter& obs_zkp = obs::counter("zkp.prove");
  if (!op_counting_paused()) obs_zkp.add();
  static obs::Histogram& obs_lat = obs::histogram("zkp.prove");
  obs::ScopedTimer obs_timer(obs_lat);
  if (rounds == 0 || rounds > 128) {
    throw std::invalid_argument("double_dlog_prove: bad round count");
  }
  DoubleDlogProof proof;
  std::vector<Bigint> rs;
  rs.reserve(rounds);
  proof.commitments.reserve(rounds);
  for (std::size_t i = 0; i < rounds; ++i) {
    rs.push_back(Bigint::random_below(rng, stmt.inner_order));
    const Bigint hr = modexp(stmt.h, rs.back(), stmt.inner_modulus);
    proof.commitments.push_back(stmt.outer->pow(stmt.g, hr));
  }
  const Bytes bits = challenge_bits(stmt, proof.commitments, rounds, context);
  proof.responses.reserve(rounds);
  for (std::size_t i = 0; i < rounds; ++i) {
    if (bit_at(bits, i)) {
      proof.responses.push_back((rs[i] - x).mod(stmt.inner_order));
    } else {
      proof.responses.push_back(rs[i]);
    }
  }
  return proof;
}

bool double_dlog_verify(const DoubleDlogStatement& stmt,
                        const DoubleDlogProof& proof, std::size_t rounds,
                        const Bytes& context) {
  count_op(OpKind::Zkp);
  static obs::Counter& obs_zkp = obs::counter("zkp.verify");
  if (!op_counting_paused()) obs_zkp.add();
  static obs::Histogram& obs_lat = obs::histogram("zkp.verify");
  obs::ScopedTimer obs_timer(obs_lat);
  if (rounds == 0 || proof.commitments.size() != rounds ||
      proof.responses.size() != rounds) {
    return false;
  }
  if (!stmt.outer->contains(stmt.Y)) return false;
  const Bytes bits = challenge_bits(stmt, proof.commitments, rounds, context);
  for (std::size_t i = 0; i < rounds; ++i) {
    const Bigint& s = proof.responses[i];
    if (s.is_negative() || s >= stmt.inner_order) return false;
    const Bigint hs = modexp(stmt.h, s, stmt.inner_modulus);
    const Bytes expected = bit_at(bits, i)
                               ? stmt.outer->pow(stmt.Y, hs)   // Y^(h^s)
                               : stmt.outer->pow(stmt.g, hs);  // g^(h^s)
    if (expected != proof.commitments[i]) return false;
  }
  return true;
}

}  // namespace ppms
