// Proof of knowledge of a double discrete logarithm (Stadler, EUROCRYPT
// '96), Fiat–Shamir compiled:
//   PoK{ x : Y = g^(h^x) }
// where g generates the *outer* group of prime order o2, h is an element
// of Z*_{o2} of prime order o1, and x ∈ Z_{o1}.
//
// This is exactly the statement that links two adjacent levels of the
// DEC's Cunningham tower (a node serial is the tower-exponential of its
// parent's), and is the proof family [36] the paper lists. Soundness is
// cut-and-choose: 2^-rounds cheating probability.
#pragma once

#include <vector>

#include "zkp/group.h"
#include "zkp/transcript.h"

namespace ppms {

struct DoubleDlogProof {
  std::vector<Bytes> commitments;  ///< t_i = g^(h^{r_i})
  std::vector<Bigint> responses;   ///< r_i (bit 0) or r_i - x mod o1 (bit 1)

  Bytes serialize() const;
  static DoubleDlogProof deserialize(const Bytes& data);
};

/// Statement parameters shared by prover and verifier.
struct DoubleDlogStatement {
  const Group* outer;   ///< group of order o2 containing g and Y
  Bytes g;              ///< outer generator
  Bytes Y;              ///< claimed g^(h^x)
  Bigint h;             ///< inner base, element of Z*_{o2} of order o1
  Bigint inner_modulus; ///< o2 (h's arithmetic runs mod this)
  Bigint inner_order;   ///< o1 (prime order of h)
};

/// Prove with the given soundness `rounds` (default 40 → 2^-40). Counted
/// as one ZKP operation.
DoubleDlogProof double_dlog_prove(const DoubleDlogStatement& stmt,
                                  const Bigint& x, SecureRandom& rng,
                                  std::size_t rounds = 40,
                                  const Bytes& context = {});

bool double_dlog_verify(const DoubleDlogStatement& stmt,
                        const DoubleDlogProof& proof,
                        std::size_t rounds = 40, const Bytes& context = {});

}  // namespace ppms
