#include "zkp/group.h"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "bigint/modarith.h"
#include "bigint/montgomery.h"

namespace ppms {

// --- ZnGroup ----------------------------------------------------------------

ZnGroup::ZnGroup(Bigint modulus, Bigint order, Bigint generator)
    : modulus_(std::move(modulus)),
      order_(std::move(order)),
      generator_(std::move(generator)),
      width_((modulus_.bit_length() + 7) / 8) {
  if (modulus_ < Bigint(3)) {
    throw std::invalid_argument("ZnGroup: modulus too small");
  }
  if (generator_ <= Bigint(1) || generator_ >= modulus_) {
    throw std::invalid_argument("ZnGroup: generator out of range");
  }
  // A group lives for a whole protocol session; grab the shared
  // per-modulus context once so every pow/pow2/contains call skips the
  // Montgomery setup. Tower moduli are odd primes; the even case only
  // arises in adversarial tests and falls back to the facade.
  if (modulus_.is_odd()) mont_ = montgomery_ctx(modulus_);
  if (!pow_raw(generator_, order_).is_one()) {
    throw std::invalid_argument("ZnGroup: generator order mismatch");
  }
}

ZnGroup ZnGroup::quadratic_residues(const Bigint& p, SecureRandom& rng) {
  const Bigint q = (p - Bigint(1)) / Bigint(2);
  for (;;) {
    const Bigint x = Bigint::random_range(rng, Bigint(2), p - Bigint(1));
    const Bigint g = (x * x).mod(p);
    if (g.is_one()) continue;
    return ZnGroup(p, q, g);
  }
}

Bytes ZnGroup::encode(const Bigint& x) const { return x.to_bytes_be(width_); }

Bigint ZnGroup::decode(const Bytes& a) const {
  if (a.size() != width_) {
    throw std::invalid_argument("ZnGroup: wrong element width");
  }
  return Bigint::from_bytes_be(a);
}

Bytes ZnGroup::identity() const { return encode(Bigint(1)); }

Bytes ZnGroup::op(const Bytes& a, const Bytes& b) const {
  return encode((decode(a) * decode(b)).mod(modulus_));
}

Bigint ZnGroup::pow_raw(const Bigint& base, const Bigint& exp) const {
  return mont_ ? mont_->pow(base, exp) : modexp(base, exp, modulus_);
}

Bytes ZnGroup::pow(const Bytes& base, const Bigint& exp) const {
  return encode(pow_raw(decode(base), exp.mod(order_)));
}

Bytes ZnGroup::pow2(const Bytes& base1, const Bigint& e1, const Bytes& base2,
                    const Bigint& e2) const {
  if (!mont_) return Group::pow2(base1, e1, base2, e2);
  const Bigint ea = e1.mod(order_);
  const Bigint eb = e2.mod(order_);
  // Shamir/Straus interleaving: one shared squaring chain over the joint
  // bit length, with {a, b, a·b} precomputed in the Montgomery domain.
  const Bigint a = mont_->to_mont(decode(base1));
  const Bigint b = mont_->to_mont(decode(base2));
  const Bigint ab = mont_->mul(a, b);
  Bigint acc = mont_->mont_one();
  const std::size_t bits = std::max(ea.bit_length(), eb.bit_length());
  for (std::size_t i = bits; i-- > 0;) {
    acc = mont_->mul(acc, acc);
    const bool ba = ea.bit(i);
    const bool bb = eb.bit(i);
    if (ba && bb) {
      acc = mont_->mul(acc, ab);
    } else if (ba) {
      acc = mont_->mul(acc, a);
    } else if (bb) {
      acc = mont_->mul(acc, b);
    }
  }
  return encode(mont_->from_mont(acc));
}

Bytes ZnGroup::inv(const Bytes& a) const {
  return encode(modinv(decode(a), modulus_));
}

Bytes ZnGroup::pow_gen(const Bigint& exp) const {
  if (!mont_) return pow(generator(), exp);
  std::shared_ptr<const FixedBasePow> table = std::atomic_load(&gen_table_);
  if (!table) {
    table = std::make_shared<const FixedBasePow>(mont_, generator_,
                                                 order_.bit_length());
    // First build wins; a concurrent duplicate is identical anyway.
    std::shared_ptr<const FixedBasePow> expected;
    if (!std::atomic_compare_exchange_strong(&gen_table_, &expected, table)) {
      table = expected;
    }
  }
  return encode(table->pow(exp.mod(order_)));
}

bool ZnGroup::contains(const Bytes& a) const {
  if (a.size() != width_) return false;
  const Bigint x = Bigint::from_bytes_be(a);
  if (x.is_zero() || x >= modulus_) return false;
  return pow_raw(x, order_).is_one();
}

Bytes ZnGroup::describe() const {
  Bytes out = bytes_of("ZnGroup/");
  const Bytes m = modulus_.to_bytes_be();
  const Bytes o = order_.to_bytes_be();
  out.insert(out.end(), m.begin(), m.end());
  out.push_back('/');
  out.insert(out.end(), o.begin(), o.end());
  return out;
}

// --- EcGroup ----------------------------------------------------------------

EcGroup::EcGroup(TypeAParams params) : params_(std::move(params)) {}

Bytes EcGroup::generator() const { return encode(params_.g); }

Bytes EcGroup::encode(const EcPoint& pt) const {
  return ec_serialize(pt, params_.p);
}

EcPoint EcGroup::decode(const Bytes& a) const {
  return ec_deserialize(a, params_.p);
}

Bytes EcGroup::identity() const { return encode(EcPoint::at_infinity()); }

Bytes EcGroup::op(const Bytes& a, const Bytes& b) const {
  return encode(ec_add(decode(a), decode(b), params_.p));
}

Bytes EcGroup::pow(const Bytes& base, const Bigint& exp) const {
  return encode(ec_mul(decode(base), exp.mod(params_.r), params_.p));
}

Bytes EcGroup::pow2(const Bytes& base1, const Bigint& e1, const Bytes& base2,
                    const Bigint& e2) const {
  const Bigint ea = e1.mod(params_.r);
  const Bigint eb = e2.mod(params_.r);
  const EcPoint a = decode(base1);
  const EcPoint b = decode(base2);
  const EcPoint ab = ec_add(a, b, params_.p);
  EcPoint acc = EcPoint::at_infinity();
  const std::size_t bits = std::max(ea.bit_length(), eb.bit_length());
  for (std::size_t i = bits; i-- > 0;) {
    acc = ec_add(acc, acc, params_.p);
    const bool ba = ea.bit(i);
    const bool bb = eb.bit(i);
    if (ba && bb) {
      acc = ec_add(acc, ab, params_.p);
    } else if (ba) {
      acc = ec_add(acc, a, params_.p);
    } else if (bb) {
      acc = ec_add(acc, b, params_.p);
    }
  }
  return encode(acc);
}

Bytes EcGroup::inv(const Bytes& a) const {
  return encode(ec_neg(decode(a), params_.p));
}

bool EcGroup::contains(const Bytes& a) const {
  EcPoint pt;
  try {
    pt = decode(a);
  } catch (const std::invalid_argument&) {
    return false;
  }
  return ec_mul(pt, params_.r, params_.p).infinity;
}

Bytes EcGroup::describe() const {
  Bytes out = bytes_of("EcGroup/");
  const Bytes p = params_.p.to_bytes_be();
  out.insert(out.end(), p.begin(), p.end());
  return out;
}

// --- GtGroup ----------------------------------------------------------------

GtGroup::GtGroup(TypeAParams params) : params_(std::move(params)) {
  // Same session-lifetime reasoning as ZnGroup: the engine holds the
  // shared Montgomery context for p, so pairings and GT exponentiations
  // skip the per-call setup. Even moduli (adversarial deserialization
  // only) keep engine_ null and use the division-based facade.
  if (params_.p.is_odd()) {
    engine_ = std::make_shared<const PairingEngine>(params_);
  }
}

Bytes GtGroup::encode(const Fp2& x) const {
  return fp2_serialize(x, params_.p);
}

Fp2 GtGroup::decode(const Bytes& a) const {
  return fp2_deserialize(a, params_.p);
}

Bytes GtGroup::pair(const EcPoint& P, const EcPoint& Q) const {
  if (engine_) return encode(engine_->pair(P, Q));
  return encode(tate_pairing(params_, P, Q));
}

Bytes GtGroup::pair(const PairingPrecomp& pre, const EcPoint& Q) const {
  if (!engine_) {
    throw std::invalid_argument("GtGroup: no pairing engine (even modulus)");
  }
  return encode(engine_->pair(pre, Q));
}

Bytes GtGroup::pair_product(const std::vector<PairingTerm>& terms) const {
  if (!engine_) {
    throw std::invalid_argument("GtGroup: no pairing engine (even modulus)");
  }
  return encode(engine_->pair_product(terms));
}

Bytes GtGroup::identity() const { return encode(fp2_one()); }

Bytes GtGroup::op(const Bytes& a, const Bytes& b) const {
  return encode(fp2_mul(decode(a), decode(b), params_.p));
}

Bytes GtGroup::pow(const Bytes& base, const Bigint& exp) const {
  if (engine_) return encode(engine_->gt_pow(decode(base), exp.mod(params_.r)));
  return encode(fp2_pow(decode(base), exp.mod(params_.r), params_.p));
}

Bytes GtGroup::pow2(const Bytes& base1, const Bigint& e1, const Bytes& base2,
                    const Bigint& e2) const {
  const Bigint ea = e1.mod(params_.r);
  const Bigint eb = e2.mod(params_.r);
  if (engine_) {
    return encode(engine_->gt_pow2(decode(base1), ea, decode(base2), eb));
  }
  const Fp2 a = decode(base1);
  const Fp2 b = decode(base2);
  const Fp2 ab = fp2_mul(a, b, params_.p);
  Fp2 acc = fp2_one();
  const std::size_t bits = std::max(ea.bit_length(), eb.bit_length());
  for (std::size_t i = bits; i-- > 0;) {
    acc = fp2_square(acc, params_.p);
    const bool ba = ea.bit(i);
    const bool bb = eb.bit(i);
    if (ba && bb) {
      acc = fp2_mul(acc, ab, params_.p);
    } else if (ba) {
      acc = fp2_mul(acc, a, params_.p);
    } else if (bb) {
      acc = fp2_mul(acc, b, params_.p);
    }
  }
  return encode(acc);
}

Bytes GtGroup::inv(const Bytes& a) const {
  return encode(fp2_inv(decode(a), params_.p));
}

bool GtGroup::contains(const Bytes& a) const {
  Fp2 x;
  try {
    x = decode(a);
  } catch (const std::invalid_argument&) {
    return false;
  }
  if (x.a.is_zero() && x.b.is_zero()) return false;
  if (engine_) return fp2_is_one(engine_->gt_pow(x, params_.r));
  return fp2_is_one(fp2_pow(x, params_.r, params_.p));
}

Bytes GtGroup::describe() const {
  Bytes out = bytes_of("GtGroup/");
  const Bytes p = params_.p.to_bytes_be();
  out.insert(out.end(), p.begin(), p.end());
  return out;
}

}  // namespace ppms
