#include "zkp/group.h"

#include <stdexcept>

#include "bigint/modarith.h"

namespace ppms {

// --- ZnGroup ----------------------------------------------------------------

ZnGroup::ZnGroup(Bigint modulus, Bigint order, Bigint generator)
    : modulus_(std::move(modulus)),
      order_(std::move(order)),
      generator_(std::move(generator)),
      width_((modulus_.bit_length() + 7) / 8) {
  if (modulus_ < Bigint(3)) {
    throw std::invalid_argument("ZnGroup: modulus too small");
  }
  if (generator_ <= Bigint(1) || generator_ >= modulus_) {
    throw std::invalid_argument("ZnGroup: generator out of range");
  }
  if (!modexp(generator_, order_, modulus_).is_one()) {
    throw std::invalid_argument("ZnGroup: generator order mismatch");
  }
}

ZnGroup ZnGroup::quadratic_residues(const Bigint& p, SecureRandom& rng) {
  const Bigint q = (p - Bigint(1)) / Bigint(2);
  for (;;) {
    const Bigint x = Bigint::random_range(rng, Bigint(2), p - Bigint(1));
    const Bigint g = (x * x).mod(p);
    if (g.is_one()) continue;
    return ZnGroup(p, q, g);
  }
}

Bytes ZnGroup::encode(const Bigint& x) const { return x.to_bytes_be(width_); }

Bigint ZnGroup::decode(const Bytes& a) const {
  if (a.size() != width_) {
    throw std::invalid_argument("ZnGroup: wrong element width");
  }
  return Bigint::from_bytes_be(a);
}

Bytes ZnGroup::identity() const { return encode(Bigint(1)); }

Bytes ZnGroup::op(const Bytes& a, const Bytes& b) const {
  return encode((decode(a) * decode(b)).mod(modulus_));
}

Bytes ZnGroup::pow(const Bytes& base, const Bigint& exp) const {
  return encode(modexp(decode(base), exp.mod(order_), modulus_));
}

Bytes ZnGroup::inv(const Bytes& a) const {
  return encode(modinv(decode(a), modulus_));
}

bool ZnGroup::contains(const Bytes& a) const {
  if (a.size() != width_) return false;
  const Bigint x = Bigint::from_bytes_be(a);
  if (x.is_zero() || x >= modulus_) return false;
  return modexp(x, order_, modulus_).is_one();
}

Bytes ZnGroup::describe() const {
  Bytes out = bytes_of("ZnGroup/");
  const Bytes m = modulus_.to_bytes_be();
  const Bytes o = order_.to_bytes_be();
  out.insert(out.end(), m.begin(), m.end());
  out.push_back('/');
  out.insert(out.end(), o.begin(), o.end());
  return out;
}

// --- EcGroup ----------------------------------------------------------------

EcGroup::EcGroup(TypeAParams params) : params_(std::move(params)) {}

Bytes EcGroup::generator() const { return encode(params_.g); }

Bytes EcGroup::encode(const EcPoint& pt) const {
  return ec_serialize(pt, params_.p);
}

EcPoint EcGroup::decode(const Bytes& a) const {
  return ec_deserialize(a, params_.p);
}

Bytes EcGroup::identity() const { return encode(EcPoint::at_infinity()); }

Bytes EcGroup::op(const Bytes& a, const Bytes& b) const {
  return encode(ec_add(decode(a), decode(b), params_.p));
}

Bytes EcGroup::pow(const Bytes& base, const Bigint& exp) const {
  return encode(ec_mul(decode(base), exp.mod(params_.r), params_.p));
}

Bytes EcGroup::inv(const Bytes& a) const {
  return encode(ec_neg(decode(a), params_.p));
}

bool EcGroup::contains(const Bytes& a) const {
  EcPoint pt;
  try {
    pt = decode(a);
  } catch (const std::invalid_argument&) {
    return false;
  }
  return ec_mul(pt, params_.r, params_.p).infinity;
}

Bytes EcGroup::describe() const {
  Bytes out = bytes_of("EcGroup/");
  const Bytes p = params_.p.to_bytes_be();
  out.insert(out.end(), p.begin(), p.end());
  return out;
}

// --- GtGroup ----------------------------------------------------------------

GtGroup::GtGroup(TypeAParams params) : params_(std::move(params)) {}

Bytes GtGroup::encode(const Fp2& x) const {
  return fp2_serialize(x, params_.p);
}

Fp2 GtGroup::decode(const Bytes& a) const {
  return fp2_deserialize(a, params_.p);
}

Bytes GtGroup::pair(const EcPoint& P, const EcPoint& Q) const {
  return encode(tate_pairing(params_, P, Q));
}

Bytes GtGroup::identity() const { return encode(fp2_one()); }

Bytes GtGroup::op(const Bytes& a, const Bytes& b) const {
  return encode(fp2_mul(decode(a), decode(b), params_.p));
}

Bytes GtGroup::pow(const Bytes& base, const Bigint& exp) const {
  return encode(fp2_pow(decode(base), exp.mod(params_.r), params_.p));
}

Bytes GtGroup::inv(const Bytes& a) const {
  return encode(fp2_inv(decode(a), params_.p));
}

bool GtGroup::contains(const Bytes& a) const {
  Fp2 x;
  try {
    x = decode(a);
  } catch (const std::invalid_argument&) {
    return false;
  }
  if (x.a.is_zero() && x.b.is_zero()) return false;
  return fp2_is_one(fp2_pow(x, params_.r, params_.p));
}

Bytes GtGroup::describe() const {
  Bytes out = bytes_of("GtGroup/");
  const Bytes p = params_.p.to_bytes_be();
  out.insert(out.end(), p.begin(), p.end());
  return out;
}

}  // namespace ppms
