#include "zkp/schnorr.h"

#include <stdexcept>

#include "util/counters.h"
#include "obs/metrics.h"
#include "util/serial.h"

namespace ppms {

namespace {

Bigint derive_challenge(const Group& group, const Bytes& generator,
                        const Bytes& y, const Bytes& commitment,
                        const Bytes& context) {
  Transcript t("ppms.zkp.schnorr");
  t.absorb("group", group.describe());
  t.absorb("generator", generator);
  t.absorb("y", y);
  t.absorb("commitment", commitment);
  t.absorb("context", context);
  return t.challenge("c", group.order());
}

}  // namespace

Bytes SchnorrProof::serialize() const {
  Writer w;
  w.put_bytes(commitment);
  w.put_bytes(response.to_bytes_be());
  return w.take();
}

SchnorrProof SchnorrProof::deserialize(const Bytes& data) {
  Reader r(data);
  SchnorrProof proof;
  proof.commitment = r.get_bytes();
  proof.response = Bigint::from_bytes_be(r.get_bytes());
  if (!r.exhausted()) throw std::invalid_argument("SchnorrProof: trailing");
  return proof;
}

SchnorrProof schnorr_prove(const Group& group, const Bytes& generator,
                           const Bytes& y, const Bigint& x, SecureRandom& rng,
                           const Bytes& context) {
  count_op(OpKind::Zkp);
  static obs::Counter& obs_zkp = obs::counter("zkp.prove");
  if (!op_counting_paused()) obs_zkp.add();
  static obs::Histogram& obs_lat = obs::histogram("zkp.prove");
  obs::ScopedTimer obs_timer(obs_lat);
  const Bigint k = Bigint::random_below(rng, group.order());
  SchnorrProof proof;
  proof.commitment = group.pow(generator, k);
  const Bigint c =
      derive_challenge(group, generator, y, proof.commitment, context);
  proof.response = (k + c * x).mod(group.order());
  return proof;
}

bool schnorr_verify(const Group& group, const Bytes& generator,
                    const Bytes& y, const SchnorrProof& proof,
                    const Bytes& context) {
  count_op(OpKind::Zkp);
  static obs::Counter& obs_zkp = obs::counter("zkp.verify");
  if (!op_counting_paused()) obs_zkp.add();
  static obs::Histogram& obs_lat = obs::histogram("zkp.verify");
  obs::ScopedTimer obs_timer(obs_lat);
  if (!group.contains(y) || !group.contains(proof.commitment)) return false;
  if (proof.response.is_negative() || proof.response >= group.order()) {
    return false;
  }
  const Bigint c =
      derive_challenge(group, generator, y, proof.commitment, context);
  // g^z == A · y^c, rearranged as g^z · y^{q-c} == A so one Shamir
  // double-exponentiation replaces two full ladders plus a multiply.
  const Bigint q_minus_c = (group.order() - c).mod(group.order());
  return group.pow2(generator, proof.response, y, q_minus_c) ==
         proof.commitment;
}

}  // namespace ppms
