// Non-interactive Schnorr proof of knowledge of a discrete logarithm
// (Girault–Poupard–Stern style statement, Fiat–Shamir compiled):
//   PoK{ x : y = g^x }.
#pragma once

#include "zkp/group.h"
#include "zkp/transcript.h"

namespace ppms {

struct SchnorrProof {
  Bytes commitment;  ///< A = g^k
  Bigint response;   ///< z = k + c·x mod order

  Bytes serialize() const;
  static SchnorrProof deserialize(const Bytes& data);
};

/// Prove knowledge of x with y == g^x. `context` binds the proof to the
/// enclosing protocol message (anti-replay); the verifier must pass the
/// same bytes. Counted as one ZKP operation.
SchnorrProof schnorr_prove(const Group& group, const Bytes& generator,
                           const Bytes& y, const Bigint& x, SecureRandom& rng,
                           const Bytes& context = {});

/// Verify. Counted as one ZKP operation.
bool schnorr_verify(const Group& group, const Bytes& generator,
                    const Bytes& y, const SchnorrProof& proof,
                    const Bytes& context = {});

}  // namespace ppms
