#include "zkp/transcript.h"

#include "hash/mgf1.h"
#include "hash/sha256.h"

namespace ppms {

Transcript::Transcript(std::string_view domain) {
  state_.assign(32, 0);
  mix("domain", bytes_of(domain));
}

void Transcript::mix(std::string_view label, const Bytes& data) {
  Sha256 h;
  h.update(state_);
  Bytes framed;
  append_u32_be(framed, static_cast<std::uint32_t>(label.size()));
  const Bytes label_bytes = bytes_of(label);
  framed.insert(framed.end(), label_bytes.begin(), label_bytes.end());
  append_u32_be(framed, static_cast<std::uint32_t>(data.size()));
  framed.insert(framed.end(), data.begin(), data.end());
  h.update(framed);
  state_ = h.finish();
}

void Transcript::absorb(std::string_view label, const Bytes& data) {
  mix(label, data);
}

Bigint Transcript::challenge(std::string_view label, const Bigint& bound) {
  mix(label, bytes_of("challenge"));
  // Expand 8 bytes past the bound width: the mod-bias is <= 2^-64.
  const std::size_t width = (bound.bit_length() + 7) / 8 + 8;
  const Bytes wide = mgf1_sha256(state_, width);
  return Bigint::from_bytes_be(wide).mod(bound);
}

Bytes Transcript::challenge_bytes(std::string_view label, std::size_t n) {
  mix(label, bytes_of("challenge-bytes"));
  return mgf1_sha256(state_, n);
}

}  // namespace ppms
