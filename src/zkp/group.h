// Type-erased prime-order group interface for the zero-knowledge proofs.
//
// The paper's proofs run in three very different groups — subgroups of
// Z*_p along the Cunningham tower, the pairing's curve group, and the
// pairing target group GT ⊂ F_p² — but every sigma protocol only needs the
// abstract operations below. Elements travel as canonical byte strings so
// proofs can be serialized and fed to Fiat-Shamir transcripts uniformly.
#pragma once

#include <memory>
#include <vector>

#include "bigint/bigint.h"
#include "pairing/pipeline.h"
#include "pairing/tate.h"
#include "pairing/typea.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace ppms {

class MontgomeryCtx;
class FixedBasePow;

class Group {
 public:
  virtual ~Group() = default;

  /// Prime order of the group.
  virtual const Bigint& order() const = 0;

  /// The identity element.
  virtual Bytes identity() const = 0;

  /// Group operation a · b. Inputs must be valid elements.
  virtual Bytes op(const Bytes& a, const Bytes& b) const = 0;

  /// base^exp; negative exponents are reduced modulo the order.
  virtual Bytes pow(const Bytes& base, const Bigint& exp) const = 0;

  /// Simultaneous double exponentiation base1^e1 · base2^e2 (Shamir/Straus
  /// interleaving in the concrete groups: one shared squaring chain instead
  /// of two). This is the shape every sigma-protocol verification equation
  /// reduces to; the default falls back to two pows and one op.
  virtual Bytes pow2(const Bytes& base1, const Bigint& e1,
                     const Bytes& base2, const Bigint& e2) const {
    return op(pow(base1, e1), pow(base2, e2));
  }

  /// Inverse element.
  virtual Bytes inv(const Bytes& a) const = 0;

  /// Full membership check: well-formed encoding AND order divides the
  /// group order. Verifiers call this on every received element.
  virtual bool contains(const Bytes& a) const = 0;

  /// Domain-separation bytes identifying the concrete group (folded into
  /// every transcript so proofs cannot be replayed across groups).
  virtual Bytes describe() const = 0;
};

/// Prime-order subgroup of Z*_modulus. Elements are fixed-width big-endian
/// integers in [1, modulus).
class ZnGroup final : public Group {
 public:
  /// `generator` must have exact order `order` (prime) in Z*_modulus; this
  /// is checked and std::invalid_argument thrown otherwise.
  ZnGroup(Bigint modulus, Bigint order, Bigint generator);

  /// The subgroup of quadratic residues of Z*_p for p = 2q + 1 (p, q
  /// prime) — the natural group at each level of the Cunningham tower.
  static ZnGroup quadratic_residues(const Bigint& p, SecureRandom& rng);

  const Bigint& modulus() const { return modulus_; }
  const Bigint& generator_value() const { return generator_; }
  Bytes generator() const { return encode(generator_); }

  Bytes encode(const Bigint& x) const;
  Bigint decode(const Bytes& a) const;

  /// generator^exp through a fixed-base window table (4-bit windows in
  /// the Montgomery domain), built lazily on first call and shared by
  /// copies made afterwards: ~order_bits/4 multiplications and no
  /// squarings per exponentiation, against a square-and-multiply chain
  /// for pow(generator(), exp). Falls back to pow() for even moduli.
  Bytes pow_gen(const Bigint& exp) const;

  const Bigint& order() const override { return order_; }
  Bytes identity() const override;
  Bytes op(const Bytes& a, const Bytes& b) const override;
  Bytes pow(const Bytes& base, const Bigint& exp) const override;
  Bytes pow2(const Bytes& base1, const Bigint& e1, const Bytes& base2,
             const Bigint& e2) const override;
  Bytes inv(const Bytes& a) const override;
  bool contains(const Bytes& a) const override;
  Bytes describe() const override;

 private:
  /// base^exp mod modulus via the held Montgomery context (exp NOT
  /// reduced mod the order — contains() raises to the order itself).
  Bigint pow_raw(const Bigint& base, const Bigint& exp) const;

  Bigint modulus_, order_, generator_;
  std::size_t width_;
  /// Session-lifetime Montgomery context for modulus_ (null for the
  /// degenerate even-modulus case, where modexp falls back to the window).
  std::shared_ptr<const MontgomeryCtx> mont_;
  /// Fixed-base table for generator_, built by the first pow_gen call
  /// (atomic publish; a racing duplicate build is harmless and dropped).
  mutable std::shared_ptr<const FixedBasePow> gen_table_;
};

/// The order-r subgroup of the Type-A curve. Elements use ec_serialize.
class EcGroup final : public Group {
 public:
  explicit EcGroup(TypeAParams params);

  const TypeAParams& params() const { return params_; }
  Bytes generator() const;

  Bytes encode(const EcPoint& pt) const;
  EcPoint decode(const Bytes& a) const;

  const Bigint& order() const override { return params_.r; }
  Bytes identity() const override;
  Bytes op(const Bytes& a, const Bytes& b) const override;
  Bytes pow(const Bytes& base, const Bigint& exp) const override;
  Bytes pow2(const Bytes& base1, const Bigint& e1, const Bytes& base2,
             const Bigint& e2) const override;
  Bytes inv(const Bytes& a) const override;
  bool contains(const Bytes& a) const override;
  Bytes describe() const override;

 private:
  TypeAParams params_;
};

/// The order-r subgroup of F_p²* that the Tate pairing maps into. Elements
/// use fp2_serialize.
class GtGroup final : public Group {
 public:
  explicit GtGroup(TypeAParams params);

  const TypeAParams& params() const { return params_; }

  Bytes encode(const Fp2& x) const;
  Fp2 decode(const Bytes& a) const;

  /// The session-lifetime pairing engine backing this group's pairings
  /// and exponentiations. Null only for the degenerate even-modulus case
  /// (adversarial deserialization tests), where everything falls back to
  /// the division-based facade.
  const PairingEngine* engine() const { return engine_.get(); }

  /// ê(P, Q) encoded as a GT element.
  Bytes pair(const EcPoint& P, const EcPoint& Q) const;

  /// ê(pre.point(), Q) via a table built by engine()->precompute().
  Bytes pair(const PairingPrecomp& pre, const EcPoint& Q) const;

  /// ∏ ê(P_i, Q_i)^{±e_i} with a single final exponentiation.
  Bytes pair_product(const std::vector<PairingTerm>& terms) const;

  const Bigint& order() const override { return params_.r; }
  Bytes identity() const override;
  Bytes op(const Bytes& a, const Bytes& b) const override;
  Bytes pow(const Bytes& base, const Bigint& exp) const override;
  Bytes pow2(const Bytes& base1, const Bigint& e1, const Bytes& base2,
             const Bigint& e2) const override;
  Bytes inv(const Bytes& a) const override;
  bool contains(const Bytes& a) const override;
  Bytes describe() const override;

 private:
  TypeAParams params_;
  /// Shared so copies of the group keep one engine (and its Montgomery
  /// context) per market session.
  std::shared_ptr<const PairingEngine> engine_;
};

}  // namespace ppms
