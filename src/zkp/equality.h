// Proof of equality of discrete logarithms across two (possibly different)
// groups of the same prime order:
//   PoK{ x : y1 = g1^x in G1  ∧  y2 = g2^x in G2 }.
//
// This is the linchpin of the DEC spend proof: the same wallet secret t
// sits under the CL certificate (an equation in the pairing target group
// GT) and under the coin's root serial (an equation in the Cunningham
// tower group G_1). Both groups are constructed with order r, so one
// shared challenge and one shared response prove equality.
#pragma once

#include "zkp/group.h"
#include "zkp/transcript.h"

namespace ppms {

struct EqualityProof {
  Bytes commitment1;  ///< A1 = g1^k in G1
  Bytes commitment2;  ///< A2 = g2^k in G2
  Bigint response;    ///< z = k + c·x mod order

  Bytes serialize() const;
  static EqualityProof deserialize(const Bytes& data);
};

/// Prove y1 == g1^x and y2 == g2^x for the same x. Throws
/// std::invalid_argument if the two groups' orders differ. Counted as one
/// ZKP operation.
EqualityProof equality_prove(const Group& group1, const Bytes& g1,
                             const Bytes& y1, const Group& group2,
                             const Bytes& g2, const Bytes& y2,
                             const Bigint& x, SecureRandom& rng,
                             const Bytes& context = {});

bool equality_verify(const Group& group1, const Bytes& g1, const Bytes& y1,
                     const Group& group2, const Bytes& g2, const Bytes& y2,
                     const EqualityProof& proof, const Bytes& context = {});

/// As equality_verify, but for statements the verifier assembled itself:
/// skips the membership re-checks on y1 and y2, which cost one full group
/// exponentiation each. Only sound when the caller guarantees both are
/// group members — e.g. y1 is a pairing output (always in GT) and y2 was
/// membership-checked upstream. The attacker-chosen commitments are still
/// validated, so verdicts are identical to equality_verify whenever that
/// guarantee holds.
bool equality_verify_trusted_statement(const Group& group1, const Bytes& g1,
                                       const Bytes& y1, const Group& group2,
                                       const Bytes& g2, const Bytes& y2,
                                       const EqualityProof& proof,
                                       const Bytes& context = {});

}  // namespace ppms
