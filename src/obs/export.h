// Exporters for the observability layer: registry → Prometheus text /
// JSON, and finished spans → indented text tree / JSON.
//
// Two registry formats:
//  * Prometheus exposition text — `ppms_<name>` with dots mapped to
//    underscores; histograms emit the full cumulative `_bucket{le=...}`
//    series (in µs) plus `_sum` / `_count`.
//  * JSON — a top-level `context` object plus a `metrics` array, the same
//    envelope shape as the committed `BENCH_*.json` google-benchmark
//    artifacts, so the tooling that reads those can ingest registry dumps
//    too. Histogram entries carry count/sum/p50/p95/p99 and the non-zero
//    buckets only.
//
// The trace renderers are pure functions over SpanRecord vectors, so tests
// can feed synthetic records and pin golden outputs; the trace-id
// overloads fetch the records from the live sink first.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ppms::obs {

std::string export_prometheus(const MetricsRegistry::Snapshot& snap);
std::string export_json(const MetricsRegistry::Snapshot& snap);

/// Same, over the global registry's current state.
std::string export_prometheus();
std::string export_json();

/// Indented parent/child tree, one line per span:
///   trace #7 (3 spans)
///     ppmsdec.session [none] start=0us dur=1500us
///       ppmsdec.withdraw [JO] start=10us dur=200us
/// Spans whose parent is absent from `spans` render as roots. Children
/// sort by (start_us, span_id).
std::string render_trace_text(const std::vector<SpanRecord>& spans);

/// {"trace_id": N, "spans": [...]} with spans in the text renderer's tree
/// order. Multi-trace inputs render as a JSON array of such objects.
std::string render_trace_json(const std::vector<SpanRecord>& spans);

/// Fetch-and-render from the live sink.
std::string render_trace_text(std::uint64_t trace_id);
std::string render_trace_json(std::uint64_t trace_id);

}  // namespace ppms::obs
