#include "obs/export.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace ppms::obs {

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; map everything else to _.
std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    if (!ok) c = '_';
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }
  }
  return out;
}

/// Fixed one-decimal rendering keeps golden outputs platform-stable.
std::string fmt1(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

struct TraceTree {
  std::map<std::uint64_t, const SpanRecord*> by_id;
  std::map<std::uint64_t, std::vector<const SpanRecord*>> children;
  std::vector<const SpanRecord*> roots;
};

TraceTree build_tree(const std::vector<SpanRecord>& spans) {
  TraceTree tree;
  for (const SpanRecord& s : spans) tree.by_id[s.span_id] = &s;
  for (const SpanRecord& s : spans) {
    if (s.parent_id != 0 && tree.by_id.count(s.parent_id)) {
      tree.children[s.parent_id].push_back(&s);
    } else {
      tree.roots.push_back(&s);
    }
  }
  const auto earlier = [](const SpanRecord* a, const SpanRecord* b) {
    return a->start_us != b->start_us ? a->start_us < b->start_us
                                      : a->span_id < b->span_id;
  };
  std::sort(tree.roots.begin(), tree.roots.end(), earlier);
  for (auto& [id, kids] : tree.children) {
    std::sort(kids.begin(), kids.end(), earlier);
  }
  return tree;
}

void render_text_node(const TraceTree& tree, const SpanRecord* span,
                      std::size_t depth, std::ostringstream& out) {
  out << std::string(2 * (depth + 1), ' ') << span->name << " ["
      << role_name(span->role) << "] start=" << span->start_us
      << "us dur=" << span->dur_us << "us\n";
  const auto it = tree.children.find(span->span_id);
  if (it == tree.children.end()) return;
  for (const SpanRecord* child : it->second) {
    render_text_node(tree, child, depth + 1, out);
  }
}

void render_json_node(const TraceTree& tree, const SpanRecord* span,
                      bool& first, std::ostringstream& out) {
  if (!first) out << ",";
  first = false;
  out << "{\"span_id\":" << span->span_id
      << ",\"parent_id\":" << span->parent_id << ",\"name\":\""
      << json_escape(span->name) << "\",\"role\":\""
      << role_name(span->role) << "\",\"start_us\":" << span->start_us
      << ",\"dur_us\":" << span->dur_us << "}";
  const auto it = tree.children.find(span->span_id);
  if (it == tree.children.end()) return;
  for (const SpanRecord* child : it->second) {
    render_json_node(tree, child, first, out);
  }
}

/// Partition span records by trace id, preserving record order.
std::vector<std::vector<SpanRecord>> split_traces(
    const std::vector<SpanRecord>& spans) {
  std::vector<std::vector<SpanRecord>> out;
  std::map<std::uint64_t, std::size_t> index;
  for (const SpanRecord& s : spans) {
    const auto it = index.find(s.trace_id);
    if (it == index.end()) {
      index[s.trace_id] = out.size();
      out.push_back({s});
    } else {
      out[it->second].push_back(s);
    }
  }
  return out;
}

std::string render_one_trace_json(const std::vector<SpanRecord>& spans) {
  std::ostringstream out;
  out << "{\"trace_id\":" << (spans.empty() ? 0 : spans.front().trace_id)
      << ",\"spans\":[";
  const TraceTree tree = build_tree(spans);
  bool first = true;
  for (const SpanRecord* root : tree.roots) {
    render_json_node(tree, root, first, out);
  }
  out << "]}";
  return out.str();
}

}  // namespace

std::string export_prometheus(const MetricsRegistry::Snapshot& snap) {
  std::ostringstream out;
  for (const auto& [name, value] : snap.counters) {
    const std::string id = "ppms_" + sanitize(name);
    out << "# TYPE " << id << " counter\n" << id << " " << value << "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string id = "ppms_" + sanitize(name);
    out << "# TYPE " << id << " gauge\n" << id << " " << value << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string id = "ppms_" + sanitize(name) + "_us";
    out << "# TYPE " << id << " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kHistogramFiniteBuckets; ++i) {
      cum += h.buckets[i];
      out << id << "_bucket{le=\"" << histogram_bucket_bound(i) << "\"} "
          << cum << "\n";
    }
    out << id << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    out << id << "_sum " << h.sum_us << "\n";
    out << id << "_count " << h.count << "\n";
  }
  return out.str();
}

std::string export_json(const MetricsRegistry::Snapshot& snap) {
  std::ostringstream out;
  out << "{\n  \"context\": {\"library\": \"ppms\", \"exporter\": "
         "\"obs/1\"},\n  \"metrics\": [";
  bool first = true;
  const auto sep = [&]() -> std::ostringstream& {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    return out;
  };
  for (const auto& [name, value] : snap.counters) {
    sep() << "{\"name\": \"" << json_escape(name)
          << "\", \"type\": \"counter\", \"value\": " << value << "}";
  }
  for (const auto& [name, value] : snap.gauges) {
    sep() << "{\"name\": \"" << json_escape(name)
          << "\", \"type\": \"gauge\", \"value\": " << value << "}";
  }
  for (const auto& [name, h] : snap.histograms) {
    sep() << "{\"name\": \"" << json_escape(name)
          << "\", \"type\": \"histogram\", \"count\": " << h.count
          << ", \"sum_us\": " << h.sum_us << ", \"p50_us\": "
          << fmt1(h.p50()) << ", \"p95_us\": " << fmt1(h.p95())
          << ", \"p99_us\": " << fmt1(h.p99()) << ", \"buckets\": [";
    bool bfirst = true;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      if (!bfirst) out << ", ";
      bfirst = false;
      out << "{\"le\": ";
      if (i < kHistogramFiniteBuckets) {
        out << histogram_bucket_bound(i);
      } else {
        out << "\"inf\"";
      }
      out << ", \"count\": " << h.buckets[i] << "}";
    }
    out << "]}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

std::string export_prometheus() {
  return export_prometheus(MetricsRegistry::global().snapshot());
}

std::string export_json() {
  return export_json(MetricsRegistry::global().snapshot());
}

std::string render_trace_text(const std::vector<SpanRecord>& spans) {
  std::ostringstream out;
  for (const auto& trace : split_traces(spans)) {
    out << "trace #" << trace.front().trace_id << " (" << trace.size()
        << (trace.size() == 1 ? " span)\n" : " spans)\n");
    const TraceTree tree = build_tree(trace);
    for (const SpanRecord* root : tree.roots) {
      render_text_node(tree, root, 0, out);
    }
  }
  return out.str();
}

std::string render_trace_json(const std::vector<SpanRecord>& spans) {
  const auto traces = split_traces(spans);
  if (traces.size() == 1) return render_one_trace_json(traces.front());
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < traces.size(); ++i) {
    if (i) out << ",";
    out << render_one_trace_json(traces[i]);
  }
  out << "]";
  return out.str();
}

std::string render_trace_text(std::uint64_t trace_id) {
  return render_trace_text(trace_records(trace_id));
}

std::string render_trace_json(std::uint64_t trace_id) {
  return render_trace_json(trace_records(trace_id));
}

}  // namespace ppms::obs
