// Per-session protocol traces: RAII spans over a thread-local span stack.
//
// A Span brackets one protocol step (`ppmsdec.withdraw`,
// `ppmspbs.redeem`, ...). Opening a span inside another nests under it;
// opening one with no active parent starts a fresh *trace* — one trace per
// protocol session, so a PPMSdec round renders as
//
//   ppmsdec.session
//     ppmsdec.register_job
//     ppmsdec.withdraw
//     ppmsdec.submit_payment
//     ...
//     ppmsdec.deposit.coin   (one per coin, executed later by the
//                             scheduler but attributed to the session that
//                             scheduled it — see util/task_context.h)
//
// The active span travels with the thread-local TraceContext, which
// ThreadPool::submit and LogicalScheduler::schedule_* capture and restore,
// so work executed on pool workers or in deferred deposit closures lands
// in the submitting session's trace.
//
// Every finished span is appended to a process-wide sink (read with
// trace_records / clear_traces) and its duration is observed in the global
// registry histogram `span.<name>` — per-step p50/p95/p99 fall out for
// free when metrics are enabled too.
//
// Same enable-flag discipline as obs/metrics and util/counters: off by
// default, and a disabled Span construction is a relaxed load + a few
// member writes (no clock read, no allocation, no locking).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/counters.h"
#include "util/task_context.h"

namespace ppms::obs {

/// Enable/disable span recording globally (off by default).
void set_tracing_enabled(bool enabled);
bool tracing_enabled();

/// One finished span. `start_us` is relative to the process trace epoch
/// (the first thing tracing recorded), so traces are printable without
/// absolute timestamps.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 for a trace root
  std::string name;
  Role role = Role::None;  ///< thread's accounting role when opened
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
};

/// Brackets one protocol step. Construction pushes onto the calling
/// thread's span stack (via TraceContext); destruction pops, records the
/// span, and feeds `span.<name>` in the global metrics registry.
class Span {
 public:
  explicit Span(std::string name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// False when tracing was disabled at construction.
  bool active() const { return active_; }
  std::uint64_t trace_id() const { return trace_id_; }
  std::uint64_t span_id() const { return span_id_; }

 private:
  std::string name_;
  TraceContext prev_{};
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
  Role role_ = Role::None;
  std::uint64_t start_us_ = 0;
  bool active_ = false;
};

/// All finished spans, in completion order.
std::vector<SpanRecord> trace_records();

/// Finished spans of one trace, in completion order.
std::vector<SpanRecord> trace_records(std::uint64_t trace_id);

/// Trace id of the most recently *started* root span (0 if none yet) —
/// how callers find "the session I just ran" for export.
std::uint64_t last_trace_id();

/// Drop all recorded spans (trace/span id counters keep advancing).
void clear_traces();

}  // namespace ppms::obs
