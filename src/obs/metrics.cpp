#include "obs/metrics.h"

#include <bit>

namespace ppms::obs {

namespace {

std::atomic<bool> g_enabled{false};

}  // namespace

void set_metrics_enabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool metrics_enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

std::size_t histogram_bucket_index(std::uint64_t us) {
  if (us <= 1) return 0;
  const std::size_t idx = std::bit_width(us - 1);  // smallest i: us <= 2^i
  return idx < kHistogramFiniteBuckets ? idx : kHistogramFiniteBuckets;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] == 0) continue;
    const std::uint64_t next = cum + buckets[i];
    if (static_cast<double>(next) >= target) {
      if (i >= kHistogramFiniteBuckets) {
        // Overflow bucket has no finite upper bound; report the last
        // finite boundary (the histogram saturates there).
        return static_cast<double>(
            histogram_bucket_bound(kHistogramFiniteBuckets - 1));
      }
      const double lower =
          i == 0 ? 0.0 : static_cast<double>(histogram_bucket_bound(i - 1));
      const double upper = static_cast<double>(histogram_bucket_bound(i));
      const double inside = target - static_cast<double>(cum);
      return lower +
             (upper - lower) * inside / static_cast<double>(buckets[i]);
    }
    cum = next;
  }
  return static_cast<double>(
      histogram_bucket_bound(kHistogramFiniteBuckets - 1));
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_us = sum_us_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_us_.store(0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mu_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->snapshot());
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return *registry;
}

Counter& counter(const std::string& name) {
  return MetricsRegistry::global().counter(name);
}

Gauge& gauge(const std::string& name) {
  return MetricsRegistry::global().gauge(name);
}

Histogram& histogram(const std::string& name) {
  return MetricsRegistry::global().histogram(name);
}

}  // namespace ppms::obs
