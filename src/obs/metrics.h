// Process-wide observability registry: named monotonic counters, settable
// gauges and fixed-bucket latency histograms with quantile summaries.
//
// This generalizes the Table I accounting of util/counters from four fixed
// operation kinds to arbitrary named series, so a deployed market can see
// *where* a withdraw/spend/deposit session spends its time, not only how
// many paper-level operations it performed. The same enable-flag discipline
// applies: everything is off by default, and a disabled call site costs one
// relaxed atomic load and no clock read — throughput benchmarks stay free
// of metric traffic unless they opt in.
//
// Usage at an instrumented call site (handles are stable for the process
// lifetime, so they are looked up once and cached in a function-local
// static):
//
//   static obs::Counter& calls = obs::counter("crypto.pairing.calls");
//   static obs::Histogram& lat = obs::histogram("crypto.pairing");
//   calls.add();
//   obs::ScopedTimer timer(lat);   // records elapsed µs on scope exit
//
// Histogram bucket layout: 26 buckets with upper bounds 2^0..2^24
// microseconds plus a +Inf overflow — 1 µs resolution at the bottom,
// ~16.8 s at the top, covering everything from a single modexp to a full
// protocol session. Quantiles are computed from the buckets by linear
// interpolation (see HistogramSnapshot::quantile).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ppms::obs {

/// Enable/disable all metric recording globally (off by default). Handles
/// stay valid either way; disabled recording is dropped at the call site.
void set_metrics_enabled(bool enabled);
bool metrics_enabled();

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!metrics_enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-writer-wins level (also supports add() for accumulating byte
/// meters that reset with their owner).
class Gauge {
 public:
  void set(std::uint64_t v) {
    if (!metrics_enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::uint64_t n) {
    if (!metrics_enabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

inline constexpr std::size_t kHistogramFiniteBuckets = 25;  ///< le = 2^0..2^24 µs
inline constexpr std::size_t kHistogramBuckets = kHistogramFiniteBuckets + 1;

/// Upper bound (inclusive, in µs) of finite bucket `i`.
constexpr std::uint64_t histogram_bucket_bound(std::size_t i) {
  return std::uint64_t{1} << i;
}

/// Index of the bucket a value lands in.
std::size_t histogram_bucket_index(std::uint64_t us);

/// Consistent point-in-time copy of one histogram, with the quantile math.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum_us = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  /// q-quantile (q in [0,1]) by linear interpolation inside the bucket
  /// holding rank q·count; observations in the overflow bucket report the
  /// last finite bound. Returns 0 for an empty histogram.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }
};

/// Fixed-bucket latency histogram (values in microseconds).
class Histogram {
 public:
  void observe(std::uint64_t us) {
    if (!metrics_enabled()) return;
    buckets_[histogram_bucket_index(us)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(us, std::memory_order_relaxed);
  }
  HistogramSnapshot snapshot() const;
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};
};

/// Thread-safe name → metric registry. Handles returned by counter() /
/// gauge() / histogram() are stable for the registry's lifetime; reset()
/// zeroes values but never invalidates handles, so cached function-local
/// static references stay safe across benchmark repetitions.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Zero every registered metric (handles stay valid).
  void reset();

  /// Point-in-time copy of everything, name-sorted (exporter input).
  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::uint64_t>> gauges;
    std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  };
  Snapshot snapshot() const;

  /// The process-wide registry all convenience accessors use.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Convenience accessors on the global registry.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

/// Records the scope's elapsed time into a histogram, in µs. When metrics
/// are disabled at construction the destructor does nothing and no clock
/// is read.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h)
      : h_(metrics_enabled() ? &h : nullptr),
        t0_(h_ ? std::chrono::steady_clock::now()
               : std::chrono::steady_clock::time_point{}) {}
  ~ScopedTimer() {
    if (!h_) return;
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - t0_);
    h_->observe(static_cast<std::uint64_t>(us.count()));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace ppms::obs
