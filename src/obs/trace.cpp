#include "obs/trace.h"

#include <chrono>
#include <mutex>

#include "obs/metrics.h"

namespace ppms::obs {

namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_next_trace_id{1};
std::atomic<std::uint64_t> g_next_span_id{1};
std::atomic<std::uint64_t> g_last_trace_id{0};

std::mutex g_sink_mu;
std::vector<SpanRecord> g_sink;

/// Microseconds since the first call (the process trace epoch).
std::uint64_t trace_clock_us() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

}  // namespace

void set_tracing_enabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool tracing_enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

Span::Span(std::string name) : name_(std::move(name)) {
  if (!tracing_enabled()) return;
  active_ = true;
  prev_ = current_trace_context();
  if (prev_.trace_id == 0) {
    trace_id_ = g_next_trace_id.fetch_add(1, std::memory_order_relaxed);
    g_last_trace_id.store(trace_id_, std::memory_order_relaxed);
  } else {
    trace_id_ = prev_.trace_id;
  }
  span_id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  role_ = current_role();
  set_trace_context(TraceContext{trace_id_, span_id_});
  start_us_ = trace_clock_us();
}

Span::~Span() {
  if (!active_) return;
  const std::uint64_t end_us = trace_clock_us();
  set_trace_context(prev_);

  SpanRecord record;
  record.trace_id = trace_id_;
  record.span_id = span_id_;
  record.parent_id = prev_.span_id;
  record.name = name_;
  record.role = role_;
  record.start_us = start_us_;
  record.dur_us = end_us - start_us_;
  {
    std::lock_guard lock(g_sink_mu);
    g_sink.push_back(record);
  }
  // Per-step latency distribution, when metrics are also enabled.
  histogram("span." + name_).observe(record.dur_us);
}

std::vector<SpanRecord> trace_records() {
  std::lock_guard lock(g_sink_mu);
  return g_sink;
}

std::vector<SpanRecord> trace_records(std::uint64_t trace_id) {
  std::lock_guard lock(g_sink_mu);
  std::vector<SpanRecord> out;
  for (const SpanRecord& r : g_sink) {
    if (r.trace_id == trace_id) out.push_back(r);
  }
  return out;
}

std::uint64_t last_trace_id() {
  return g_last_trace_id.load(std::memory_order_relaxed);
}

void clear_traces() {
  std::lock_guard lock(g_sink_mu);
  g_sink.clear();
}

}  // namespace ppms::obs
