// PPMSpbs — the paper's light-weight mechanism for markets of unitary
// payments (Section V, Algorithm 4), built on the RSA partially blind
// signature instead of e-cash.
//
// The digital coin is the JO's partially blind signature over the SP's
// *real* (account-bound) public key with the session serial s as shared
// info. Blindness hides the payee from the JO (transaction-linkage privacy
// against the JO); at deposit the SP reveals the signature together with
// both real keys, so the MA — deliberately, to thwart money laundering —
// sees who transacted with whom, but never which *job* the transaction
// belonged to (the job was published under a pseudonym and all payments
// are the same unit amount).
//
// Like PPMSdec, every step opens an obs::Span ("ppmspbs.<step>", with
// "ppmspbs.session" as run_round's root and "ppmspbs.redeem.coin" inside
// the scheduled deposit closure) when tracing is enabled.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <set>

#include "blind/partial_blind.h"
#include "market/actors.h"
#include "market/faults.h"
#include "rsa/rsa.h"

namespace ppms {

class ThreadPool;

struct PpmsPbsConfig {
  std::size_t rsa_bits = 1024;
  std::uint64_t min_deposit_delay = 1;
  std::uint64_t max_deposit_delay = 128;
  std::uint64_t initial_balance = 4096;
  /// When > 0, settle() drains the scheduler on an MA-owned worker pool
  /// of this size (same-tick redemptions run in parallel, ticks stay
  /// ordered). Leave 0 for a fully deterministic sequential drain.
  std::size_t settle_threads = 0;
  /// Transport fault plan (market/faults.h). Default-constructed =
  /// lossless, behavior exactly as before. With any fault probability set,
  /// every protocol step travels as an enveloped, idempotent, retrying
  /// call and the ctor requires settle_threads == 0 (retry loops pump the
  /// scheduler re-entrantly, which the parallel drain does not support).
  FaultPlan faults;
  /// Retry discipline for the reliable calls (only used under faults).
  RetryPolicy retry;
};

/// JO-side session for one job. Session objects are thread-confined;
/// distinct sessions may run concurrently against one market, each
/// drawing from its own `rng` (seeded by the market at enrollment).
struct PbsOwnerSession {
  ResidentAccount account;
  RsaKeyPair real_keys;     ///< rpk_JO, bound to the account at setup
  RsaKeyPair session_keys;  ///< rpk_jo, pseudonymous per job
  std::uint64_t job_id = 0;
  SessionLink link;         ///< reliable-transport session identity
  SecureRandom rng{0};      ///< session-confined stream
};

/// SP-side session for one participation.
struct PbsParticipantSession {
  ResidentAccount account;
  RsaKeyPair real_keys;     ///< rpk_SP, bound to the account at setup
  RsaKeyPair session_keys;  ///< rpk_sp, pseudonymous per job
  std::uint64_t job_id = 0;
  Bytes serial;             ///< s, drawn at labor registration
  RsaPublicKey jo_real_pub; ///< learned during labor registration
  PbsBlindingState blinding;
  Bytes coin;               ///< unblinded partially blind signature
  SessionLink link;         ///< reliable-transport session identity
  SecureRandom rng{0};      ///< session-confined stream
};

/// Thread-safety mirrors PpmsDecMarket: the MA-side files (key bindings,
/// pending coins/reports, used serials) are guarded by one mutex, the
/// ledger and scheduler are internally synchronized, and all protocol
/// failures throw MarketError.
class PpmsPbsMarket {
 public:
  PpmsPbsMarket(PpmsPbsConfig config, std::uint64_t seed);
  ~PpmsPbsMarket();

  MarketInfrastructure& infra() { return infra_; }
  const PpmsPbsConfig& config() const { return config_; }
  ReliableLink& link() { return link_; }

  /// Setup: generate the real key pair and bind it to a (possibly
  /// existing) account at the bank.
  PbsOwnerSession enroll_owner(const std::string& identity);
  PbsParticipantSession enroll_participant(const std::string& identity);

  /// Job registration (eqs. 12-13): pseudonymous profile onto the board.
  void register_job(PbsOwnerSession& jo, const std::string& description);

  /// Labor registration (eqs. 14-21): SP sends Enc_rpk_jo(rpk_sp, s); the
  /// JO answers Enc_rpk_sp(rpk_JO, sig). Throws MarketError with
  /// kSignatureRejected if the SP rejects the JO's signature.
  void register_labor(PbsParticipantSession& sp, PbsOwnerSession& jo);

  /// Payment submission (eq. 22): the SP blinds (rpk_SP, s), the JO signs
  /// blindly, and the MA files the pending coin.
  void submit_payment(PbsParticipantSession& sp, PbsOwnerSession& jo);

  /// Data submission; the MA files the report under the SP pseudonym.
  void submit_data(PbsParticipantSession& sp, const Bytes& report);

  /// Payment delivery (eq. 23) + unblind/verify (eqs. 24-25). Returns
  /// false if the unblinded coin fails verification.
  bool deliver_and_open_payment(PbsParticipantSession& sp);

  /// Release the report to the JO after the SP's confirmation.
  Bytes confirm_and_release_data(PbsParticipantSession& sp);

  /// Money deposit (eq. 26): reveal (sig, rpk_SP, rpk_JO, s) after a
  /// random delay; the MA verifies, checks serial freshness and moves one
  /// unit from the JO's account to the SP's.
  void deposit(PbsParticipantSession& sp);

  /// Drain the logical scheduler; uses the settlement pool when
  /// config().settle_threads > 0.
  void settle();

  /// Convenience: one full JO+SP round; returns the SP's verdict on the
  /// coin.
  bool run_round(PbsOwnerSession& jo, PbsParticipantSession& sp,
                 const Bytes& report);

  /// Serials already consumed (diagnostics).
  std::size_t used_serials() const;

 private:
  /// Draw a session seed from the master stream.
  std::uint64_t fresh_seed();

  PpmsPbsConfig config_;
  std::mutex rng_mu_;  ///< guards rng_ (master seed stream)
  SecureRandom rng_;
  MarketInfrastructure infra_;
  ReliableLink link_;
  std::unique_ptr<ThreadPool> settle_pool_;
  /// MA-side files, shared by all concurrent sessions.
  mutable std::mutex ma_mu_;
  std::map<Bytes, std::string> account_of_key_;  ///< real pubkey -> AID
  std::map<Bytes, Bytes> pending_coins_;         ///< sp pseudonym -> blind sig
  std::map<Bytes, Bytes> pending_reports_;
  std::set<std::pair<Bytes, Bytes>> used_serials_;  ///< (rpk_JO, s)
};

}  // namespace ppms
