// The denomination attack (paper Section IV-B) and its empirical
// evaluation.
//
// Threat model: the MA sees (a) every job's advertised payment w on the
// bulletin board and (b) every account's deposit stream. If an account's
// deposits can only have come from one job's payment, the MA links the
// account — i.e. the real identity — to the job, breaking job-linkage
// privacy. Cash breaking widens the set of payments consistent with an
// observed deposit multiset until the inference fails; the A1 ablation
// bench quantifies exactly how much each strategy widens it.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cash_break.h"
#include "market/vbank.h"
#include "util/rng.h"

namespace ppms {

/// The MA's observation of one account: the multiset of deposit amounts
/// (positive ledger entries) in time order — exactly what the virtual
/// bank's statement exposes after real protocol rounds.
std::vector<std::uint64_t> observed_coin_values(const VBank& bank,
                                                const std::string& aid);

/// Indices of jobs whose payment is expressible as a subset sum of the
/// observed coin values — the attacker's candidate set for one account.
std::vector<std::size_t> consistent_jobs(
    const std::vector<std::uint64_t>& job_payments,
    const std::vector<std::uint64_t>& observed_coins);

struct AttackResult {
  std::size_t accounts = 0;
  std::size_t uniquely_linked = 0;  ///< attacker found exactly one candidate
  std::size_t correct_links = 0;    ///< ...and it was the true job
  double mean_candidates = 0.0;     ///< average ambiguity per account

  /// Fraction of accounts the attacker de-anonymized.
  double success_rate() const {
    return accounts == 0
               ? 0.0
               : static_cast<double>(correct_links) /
                     static_cast<double>(accounts);
  }
};

/// Monte-Carlo evaluation: every job gets `participants_per_job` fresh
/// accounts; each account receives its job's payment broken per
/// `strategy` and deposits all real coins; the attacker then runs
/// consistent_jobs on each account. Coin values only — the cryptographic
/// layer is exercised elsewhere; this isolates the *information leak*.
AttackResult run_denomination_attack(
    SecureRandom& rng, const std::vector<std::uint64_t>& job_payments,
    std::size_t participants_per_job, CashBreakStrategy strategy,
    std::size_t L);

}  // namespace ppms
