#include "core/attack.h"

#include <algorithm>

#include "market/error.h"

namespace ppms {

std::vector<std::uint64_t> observed_coin_values(const VBank& bank,
                                                const std::string& aid) {
  std::vector<std::uint64_t> out;
  // Stream the statement instead of copying the whole history.
  bank.for_each_entry(aid, [&out](const VBank::Entry& entry) {
    if (entry.amount > 0) {
      out.push_back(static_cast<std::uint64_t>(entry.amount));
    }
  });
  return out;
}

std::vector<std::size_t> consistent_jobs(
    const std::vector<std::uint64_t>& job_payments,
    const std::vector<std::uint64_t>& observed_coins) {
  // Subset-sum DP over the observed coins, up to the largest payment.
  std::uint64_t cap = 0;
  for (const std::uint64_t w : job_payments) cap = std::max(cap, w);
  if (cap > (1u << 20)) {
    throw MarketError(MarketErrc::kPaymentOutOfRange,
                      "consistent_jobs: payment too large for DP");
  }
  std::vector<bool> reachable(cap + 1, false);
  reachable[0] = true;
  for (const std::uint64_t coin : observed_coins) {
    if (coin == 0 || coin > cap) continue;
    for (std::uint64_t s = cap; s + 1 > coin; --s) {
      if (reachable[s - coin]) reachable[s] = true;
    }
  }
  std::vector<std::size_t> candidates;
  for (std::size_t j = 0; j < job_payments.size(); ++j) {
    if (job_payments[j] <= cap && reachable[job_payments[j]]) {
      candidates.push_back(j);
    }
  }
  return candidates;
}

AttackResult run_denomination_attack(
    SecureRandom& rng, const std::vector<std::uint64_t>& job_payments,
    std::size_t participants_per_job, CashBreakStrategy strategy,
    std::size_t L) {
  (void)rng;  // reserved for future noise models (interleaved deposits)
  AttackResult result;
  double total_candidates = 0.0;
  for (std::size_t j = 0; j < job_payments.size(); ++j) {
    for (std::size_t p = 0; p < participants_per_job; ++p) {
      // The account's observable deposit multiset: the real coins of the
      // broken payment (fakes never reach the bank).
      std::vector<std::uint64_t> coins =
          cash_break(strategy, job_payments[j], L);
      coins.erase(std::remove(coins.begin(), coins.end(), 0u),
                  coins.end());
      const auto candidates = consistent_jobs(job_payments, coins);
      ++result.accounts;
      total_candidates += static_cast<double>(candidates.size());
      if (candidates.size() == 1) {
        ++result.uniquely_linked;
        if (candidates.front() == j) ++result.correct_links;
      }
    }
  }
  result.mean_candidates =
      result.accounts == 0
          ? 0.0
          : total_candidates / static_cast<double>(result.accounts);
  return result;
}

}  // namespace ppms
