// PPMSdec — the paper's privacy-preserving market mechanism for arbitrary
// payments (Section IV, Algorithm 1), implemented end-to-end over the
// divisible-e-cash substrate.
//
// One PpmsDecMarket instance is the market administrator (MA): it owns the
// bulletin board, the virtual bank (fiat ledger + DEC bank), the traffic
// meter and the logical clock. JobOwnerSession / ParticipantSession hold
// the per-resident key material and protocol state. Every protocol step
// moves a genuinely serialized message through the traffic meter, so Table
// II numbers fall out of real byte counts, and each party's computation
// runs under its ScopedRole so Table I counts attribute correctly. When
// tracing is enabled (obs/trace.h), every step opens an obs::Span named
// "ppmsdec.<step>" — run_round wraps them in a "ppmsdec.session" root, so
// one round exports as a single trace tree (worked example in
// OBSERVABILITY.md).
//
// Privacy-relevant structure (paper Section IV-B):
//  * job registration and labor registration use throwaway session RSA
//    keys (rpk_jo, rpk_sp) — never the account identity;
//  * the withdrawal is anonymous (commitment + PoK, blind CL issuance);
//  * the payment is cash-broken and padded with fake coins E(0) so the MA
//    cannot run the denomination attack on message sizes;
//  * deposits are scheduled at random logical-time delays; same-tick coins
//    of one SP settle through the bank's batch deposit path.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>

#include "core/cash_break.h"
#include "dec/bank.h"
#include "dec/wallet.h"
#include "market/actors.h"
#include "market/faults.h"
#include "rsa/rsa.h"

namespace ppms {

class ThreadPool;

struct PpmsDecConfig {
  std::size_t rsa_bits = 1024;
  CashBreakStrategy strategy = CashBreakStrategy::kEpcba;
  std::uint64_t min_deposit_delay = 1;
  std::uint64_t max_deposit_delay = 128;
  std::uint64_t initial_balance = 1 << 12;  ///< opening balance per resident
  /// Use root-hiding spends (dec/root_hiding.h) for every coin below the
  /// root, so the bank cannot cluster a payment's coins by their shared
  /// root serial. Costs ~kRootHidingRounds extra exponentiations per coin.
  bool hide_roots = false;
  /// When > 0, settle() drains the scheduler on an MA-owned worker pool of
  /// this size: events of one logical tick run in parallel, ticks stay
  /// ordered, so ledger stamps match the single-threaded drain. Leave 0
  /// (fully sequential, deterministic tie-break) for the attack analyses.
  std::size_t settle_threads = 0;
  /// Transport fault plan (market/faults.h). Default-constructed = lossless
  /// and the market behaves exactly as before. With any fault probability
  /// set, every protocol step travels as an enveloped, idempotent,
  /// retrying call; the ctor then requires settle_threads == 0 because the
  /// retry loops pump the scheduler re-entrantly from inside events, which
  /// the parallel drain does not support.
  FaultPlan faults;
  /// Retry discipline for the reliable calls (only used under faults).
  RetryPolicy retry;
};

/// JO-side session state for one job.
struct JobOwnerSession {
  ResidentAccount account;
  RsaKeyPair session_keys;  ///< rpk_jo / rsk_jo, fresh per job
  std::uint64_t job_id = 0;
  std::uint64_t payment = 0;  ///< w
  std::unique_ptr<DecWallet> wallet;
  std::vector<Bytes> received_reports;
  SessionLink link;     ///< reliable-transport session identity
  SecureRandom rng{0};  ///< session-confined stream, seeded by the market
};

/// SP-side session state for one job participation.
struct ParticipantSession {
  ResidentAccount account;
  RsaKeyPair session_keys;  ///< rpk_sp / rsk_sp, fresh per job
  std::uint64_t job_id = 0;
  Bytes payment_ciphertext;           ///< as delivered by the MA
  std::vector<SpendBundle> coins;     ///< verified good coins
  std::vector<RootHidingSpend> hiding_coins;  ///< verified hiding coins
  std::uint64_t verified_value = 0;
  std::size_t fake_coins_seen = 0;
  SessionLink link;     ///< reliable-transport session identity
  SecureRandom rng{0};  ///< session-confined stream, seeded by the market
};

/// Threading: a session object (JobOwnerSession / ParticipantSession) is
/// confined to one thread, but *different* sessions may drive their
/// protocol steps — including whole run_rounds — concurrently against one
/// market. Each session draws from its own SecureRandom (seeded from the
/// market's master stream at registration); the MA-side state concurrent
/// sessions share — the DEC bank, the fiat ledger, the bulletin board, the
/// traffic meter, the scheduler and the pending payment/report files — is
/// internally synchronized. All protocol failures throw MarketError.
class PpmsDecMarket {
 public:
  PpmsDecMarket(DecParams params, PpmsDecConfig config, std::uint64_t seed);
  ~PpmsDecMarket();

  const DecParams& params() const { return params_; }
  const PpmsDecConfig& config() const { return config_; }
  MarketInfrastructure& infra() { return infra_; }
  DecBank& dec_bank() { return dec_bank_; }
  ReliableLink& link() { return link_; }

  /// Steps 1-2: JO sends the job profile (jd, w, rpk_jo) to the MA, which
  /// publishes it on the bulletin board. Throws MarketError with
  /// kPaymentOutOfRange unless 1 <= payment <= 2^L.
  JobOwnerSession register_job(const std::string& identity,
                               const std::string& description,
                               std::uint64_t payment);

  /// Step 3: anonymous withdrawal of E(2^L). Debits the JO's account and
  /// installs the certified wallet. Throws MarketError on a rejected proof
  /// (kWithdrawRejected) or insufficient funds (kInsufficientFunds).
  void withdraw(JobOwnerSession& jo);

  /// Step 5: SP signs up with a fresh pseudonymous key; the MA forwards
  /// rpk_sp to the JO (returned session remembers the job).
  ParticipantSession register_labor(const std::string& identity,
                                    const JobOwnerSession& jo);

  /// Steps 4+6: JO breaks the payment per the configured strategy, signs
  /// the SP's pseudonym, and submits the designated-receiver ciphertext.
  /// Throws MarketError: kProtocolOrder before withdraw, kWalletExhausted
  /// when the wallet cannot cover w.
  void submit_payment(JobOwnerSession& jo, const ParticipantSession& sp);

  /// Step 7a: SP submits its sensing data; the MA files it.
  void submit_data(ParticipantSession& sp, const Bytes& report);

  /// Step 7b: the MA forwards the encrypted payment once the data report
  /// is on file. Throws MarketError with kProtocolOrder if data or payment
  /// are missing.
  void deliver_payment(ParticipantSession& sp);

  struct PaymentCheck {
    bool signature_ok = false;
    std::uint64_t value = 0;        ///< total of verified coins
    std::size_t real_coins = 0;
    std::size_t fake_coins = 0;
  };

  /// Step 8a: SP decrypts the payment, checks the JO's signature on its
  /// pseudonym and verifies every coin, discarding fakes.
  PaymentCheck open_payment(ParticipantSession& sp);

  /// Step 8b: SP confirms; the MA releases the data report to the JO.
  void confirm_and_release_data(ParticipantSession& sp,
                                JobOwnerSession& jo);

  /// Step 9: SP deposits its coins at random logical-time delays; coins
  /// that drew the same tick travel as one batch through the DEC bank's
  /// batch deposit path. Run `settle()` to execute.
  void deposit_coins(ParticipantSession& sp);

  /// Drain the logical scheduler (deposits credit the fiat ledger). Uses
  /// the settlement pool when config().settle_threads > 0.
  void settle();

  /// One whole JO+SP round; returns the SP's payment check.
  PaymentCheck run_round(const std::string& jo_identity,
                         const std::string& sp_identity,
                         const std::string& description,
                         std::uint64_t payment, const Bytes& report);

 private:
  Bytes payment_key(const Bytes& sp_pubkey) const;

  /// Draw a session seed from the master stream (the only rng_ access
  /// concurrent sessions perform besides the MA's own signing).
  std::uint64_t fresh_seed();

  /// One reliable per-coin deposit call (faulty transport only). The
  /// idempotency key folds in the coin's serialized bytes, so a retried or
  /// redelivered deposit can never credit twice.
  void deposit_one(SessionLink& link, const std::string& aid, bool hiding,
                   const Bytes& coin_wire);

  DecParams params_;
  PpmsDecConfig config_;
  std::mutex rng_mu_;  ///< guards rng_ (master stream + MA-side signing)
  SecureRandom rng_;
  MarketInfrastructure infra_;
  DecBank dec_bank_;
  ReliableLink link_;
  std::unique_ptr<ThreadPool> settle_pool_;
  /// MA-held state keyed by the SP pseudonym serialization.
  std::mutex pending_mu_;
  std::map<Bytes, Bytes> pending_payments_;
  std::map<Bytes, Bytes> pending_reports_;
};

}  // namespace ppms
