// PPMSdec — the paper's privacy-preserving market mechanism for arbitrary
// payments (Section IV, Algorithm 1), implemented end-to-end over the
// divisible-e-cash substrate.
//
// One PpmsDecMarket instance is the market administrator (MA): it owns the
// bulletin board, the virtual bank (fiat ledger + DEC bank), the traffic
// meter and the logical clock. JobOwnerSession / ParticipantSession hold
// the per-resident key material and protocol state. Every protocol step
// moves a genuinely serialized message through the traffic meter, so Table
// II numbers fall out of real byte counts, and each party's computation
// runs under its ScopedRole so Table I counts attribute correctly. When
// tracing is enabled (obs/trace.h), every step opens an obs::Span named
// "ppmsdec.<step>" — run_round wraps them in a "ppmsdec.session" root, so
// one round exports as a single trace tree (worked example in
// OBSERVABILITY.md).
//
// Privacy-relevant structure (paper Section IV-B):
//  * job registration and labor registration use throwaway session RSA
//    keys (rpk_jo, rpk_sp) — never the account identity;
//  * the withdrawal is anonymous (commitment + PoK, blind CL issuance);
//  * the payment is cash-broken and padded with fake coins E(0) so the MA
//    cannot run the denomination attack on message sizes;
//  * deposits are scheduled at random logical-time delays, coin by coin.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "core/cash_break.h"
#include "dec/bank.h"
#include "dec/wallet.h"
#include "market/actors.h"
#include "rsa/rsa.h"

namespace ppms {

struct PpmsDecConfig {
  std::size_t rsa_bits = 1024;
  CashBreakStrategy strategy = CashBreakStrategy::kEpcba;
  std::uint64_t min_deposit_delay = 1;
  std::uint64_t max_deposit_delay = 128;
  std::uint64_t initial_balance = 1 << 12;  ///< opening balance per resident
  /// Use root-hiding spends (dec/root_hiding.h) for every coin below the
  /// root, so the bank cannot cluster a payment's coins by their shared
  /// root serial. Costs ~kRootHidingRounds extra exponentiations per coin.
  bool hide_roots = false;
};

/// JO-side session state for one job.
struct JobOwnerSession {
  ResidentAccount account;
  RsaKeyPair session_keys;  ///< rpk_jo / rsk_jo, fresh per job
  std::uint64_t job_id = 0;
  std::uint64_t payment = 0;  ///< w
  std::unique_ptr<DecWallet> wallet;
  std::vector<Bytes> received_reports;
};

/// SP-side session state for one job participation.
struct ParticipantSession {
  ResidentAccount account;
  RsaKeyPair session_keys;  ///< rpk_sp / rsk_sp, fresh per job
  std::uint64_t job_id = 0;
  Bytes payment_ciphertext;           ///< as delivered by the MA
  std::vector<SpendBundle> coins;     ///< verified good coins
  std::vector<RootHidingSpend> hiding_coins;  ///< verified hiding coins
  std::uint64_t verified_value = 0;
  std::size_t fake_coins_seen = 0;
};

/// Threading: protocol sessions are single-threaded by design (each
/// JO/SP session object is confined to one thread). The MA-side state
/// that concurrent sessions genuinely share — the DEC bank, the fiat
/// ledger, the bulletin board and the traffic meter — is internally
/// synchronized; the pending-payment/report maps are driven by the
/// session that owns them.
class PpmsDecMarket {
 public:
  PpmsDecMarket(DecParams params, PpmsDecConfig config, std::uint64_t seed);

  const DecParams& params() const { return params_; }
  const PpmsDecConfig& config() const { return config_; }
  MarketInfrastructure& infra() { return infra_; }
  DecBank& dec_bank() { return dec_bank_; }

  /// Steps 1-2: JO sends the job profile (jd, w, rpk_jo) to the MA, which
  /// publishes it on the bulletin board.
  JobOwnerSession register_job(const std::string& identity,
                               const std::string& description,
                               std::uint64_t payment);

  /// Step 3: anonymous withdrawal of E(2^L). Debits the JO's account and
  /// installs the certified wallet. Throws on insufficient funds.
  void withdraw(JobOwnerSession& jo);

  /// Step 5: SP signs up with a fresh pseudonymous key; the MA forwards
  /// rpk_sp to the JO (returned session remembers the job).
  ParticipantSession register_labor(const std::string& identity,
                                    const JobOwnerSession& jo);

  /// Steps 4+6: JO breaks the payment per the configured strategy, signs
  /// the SP's pseudonym, and submits the designated-receiver ciphertext.
  void submit_payment(JobOwnerSession& jo, const ParticipantSession& sp);

  /// Step 7a: SP submits its sensing data; the MA files it.
  void submit_data(const ParticipantSession& sp, const Bytes& report);

  /// Step 7b: the MA forwards the encrypted payment once the data report
  /// is on file. Throws std::logic_error if data or payment are missing.
  void deliver_payment(ParticipantSession& sp);

  struct PaymentCheck {
    bool signature_ok = false;
    std::uint64_t value = 0;        ///< total of verified coins
    std::size_t real_coins = 0;
    std::size_t fake_coins = 0;
  };

  /// Step 8a: SP decrypts the payment, checks the JO's signature on its
  /// pseudonym and verifies every coin, discarding fakes.
  PaymentCheck open_payment(ParticipantSession& sp);

  /// Step 8b: SP confirms; the MA releases the data report to the JO.
  void confirm_and_release_data(const ParticipantSession& sp,
                                JobOwnerSession& jo);

  /// Step 9: SP deposits its coins one by one at random logical-time
  /// delays. Run `settle()` to execute.
  void deposit_coins(ParticipantSession& sp);

  /// Drain the logical scheduler (deposits credit the fiat ledger).
  void settle() { infra_.scheduler.run_all(); }

  /// One whole JO+SP round; returns the SP's payment check.
  PaymentCheck run_round(const std::string& jo_identity,
                         const std::string& sp_identity,
                         const std::string& description,
                         std::uint64_t payment, const Bytes& report);

 private:
  Bytes payment_key(const Bytes& sp_pubkey) const;

  DecParams params_;
  PpmsDecConfig config_;
  SecureRandom rng_;
  MarketInfrastructure infra_;
  DecBank dec_bank_;
  /// MA-held state keyed by the SP pseudonym serialization.
  std::map<Bytes, Bytes> pending_payments_;
  std::map<Bytes, Bytes> pending_reports_;
};

}  // namespace ppms
