#include "core/ppmspbs.h"

#include "market/error.h"
#include "obs/trace.h"
#include "rsa/hybrid.h"
#include "rsa/pss.h"
#include "util/serial.h"
#include "util/thread_pool.h"

namespace ppms {

PpmsPbsMarket::PpmsPbsMarket(PpmsPbsConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  if (config_.settle_threads > 0) {
    settle_pool_ = std::make_unique<ThreadPool>(config_.settle_threads);
  }
}

PpmsPbsMarket::~PpmsPbsMarket() = default;

std::uint64_t PpmsPbsMarket::fresh_seed() {
  std::lock_guard lock(rng_mu_);
  return rng_.next_u64();
}

void PpmsPbsMarket::settle() {
  if (settle_pool_) {
    infra_.scheduler.run_all(*settle_pool_);
  } else {
    infra_.scheduler.run_all();
  }
}

std::size_t PpmsPbsMarket::used_serials() const {
  std::lock_guard lock(ma_mu_);
  return used_serials_.size();
}

PbsOwnerSession PpmsPbsMarket::enroll_owner(const std::string& identity) {
  PbsOwnerSession jo;
  jo.rng = SecureRandom(fresh_seed());
  if (const auto aid = infra_.bank.find_account(identity)) {
    jo.account = {identity, *aid};
  } else {
    jo.account = open_resident(infra_, identity, config_.initial_balance);
  }
  {
    ScopedRole as_jo(Role::JobOwner);
    jo.real_keys = rsa_generate(jo.rng, config_.rsa_bits);
  }
  // Bind rpk_JO to the account (setup step, over the wire).
  const Bytes pk =
      infra_.traffic.send(Role::JobOwner, Role::Admin,
                          jo.real_keys.pub.serialize());
  std::lock_guard lock(ma_mu_);
  account_of_key_[pk] = jo.account.aid;
  return jo;
}

PbsParticipantSession PpmsPbsMarket::enroll_participant(
    const std::string& identity) {
  PbsParticipantSession sp;
  sp.rng = SecureRandom(fresh_seed());
  if (const auto aid = infra_.bank.find_account(identity)) {
    sp.account = {identity, *aid};
  } else {
    sp.account = open_resident(infra_, identity, 0);
  }
  {
    ScopedRole as_sp(Role::Participant);
    sp.real_keys = rsa_generate(sp.rng, config_.rsa_bits);
  }
  const Bytes pk =
      infra_.traffic.send(Role::Participant, Role::Admin,
                          sp.real_keys.pub.serialize());
  std::lock_guard lock(ma_mu_);
  account_of_key_[pk] = sp.account.aid;
  return sp;
}

void PpmsPbsMarket::register_job(PbsOwnerSession& jo,
                                 const std::string& description) {
  obs::Span span("ppmspbs.register_job");
  {
    ScopedRole as_jo(Role::JobOwner);
    jo.session_keys = rsa_generate(jo.rng, config_.rsa_bits);
  }
  // JO -> MA: jd, rpk_jo (eq. 12); MA -> BB (eq. 13).
  Writer msg;
  msg.put_string(description);
  msg.put_bytes(jo.session_keys.pub.serialize());
  const Bytes wire =
      infra_.traffic.send(Role::JobOwner, Role::Admin, msg.take());
  Reader r(wire);
  JobProfile profile;
  profile.description = r.get_string();
  profile.payment = 1;  // unitary market
  profile.owner_pseudonym = r.get_bytes();
  jo.job_id = infra_.bulletin.publish(std::move(profile));
}

void PpmsPbsMarket::register_labor(PbsParticipantSession& sp,
                                   PbsOwnerSession& jo) {
  obs::Span span("ppmspbs.register_labor");
  sp.job_id = jo.job_id;
  // SP: fresh pseudonym + serial, encrypted to rpk_jo (eq. 14).
  Bytes request;
  {
    ScopedRole as_sp(Role::Participant);
    sp.session_keys = rsa_generate(sp.rng, config_.rsa_bits);
    sp.serial = sp.rng.bytes(16);
    Writer inner;
    inner.put_bytes(sp.session_keys.pub.serialize());
    inner.put_bytes(sp.serial);
    request = hybrid_encrypt(jo.session_keys.pub, inner.take(), sp.rng);
  }
  // SP -> MA -> JO (eqs. 14-15).
  infra_.traffic.send(Role::Participant, Role::Admin, request);
  const Bytes to_jo =
      infra_.traffic.send(Role::Admin, Role::JobOwner, std::move(request));

  // JO: decrypt, sign (rpk_sp, s), answer with its real key (eqs. 16-18).
  Bytes reply;
  {
    ScopedRole as_jo(Role::JobOwner);
    const Bytes inner = hybrid_decrypt(jo.session_keys.priv, to_jo);
    Reader r(inner);
    const Bytes sp_pseudonym = r.get_bytes();
    const Bytes serial = r.get_bytes();
    const RsaPublicKey sp_pub = RsaPublicKey::deserialize(sp_pseudonym);
    Writer signed_part;
    signed_part.put_bytes(sp_pseudonym);
    signed_part.put_bytes(serial);
    const Bytes sig =
        rsa_pss_sign(jo.session_keys.priv, signed_part.data(), jo.rng);
    Writer inner_reply;
    inner_reply.put_bytes(jo.real_keys.pub.serialize());
    inner_reply.put_bytes(sig);
    reply = hybrid_encrypt(sp_pub, inner_reply.take(), jo.rng);
  }
  // JO -> MA -> SP (eqs. 18-19).
  infra_.traffic.send(Role::JobOwner, Role::Admin, reply);
  const Bytes to_sp =
      infra_.traffic.send(Role::Admin, Role::Participant, std::move(reply));

  // SP: decrypt and verify with the *pseudonymous* job key (eqs. 20-21).
  ScopedRole as_sp(Role::Participant);
  const Bytes inner = hybrid_decrypt(sp.session_keys.priv, to_sp);
  Reader r(inner);
  const Bytes jo_real = r.get_bytes();
  const Bytes sig = r.get_bytes();
  Writer signed_part;
  signed_part.put_bytes(sp.session_keys.pub.serialize());
  signed_part.put_bytes(sp.serial);
  if (!rsa_pss_verify(jo.session_keys.pub, signed_part.data(), sig)) {
    throw MarketError(MarketErrc::kSignatureRejected,
                      "register_labor: JO signature rejected");
  }
  sp.jo_real_pub = RsaPublicKey::deserialize(jo_real);
}

void PpmsPbsMarket::submit_payment(PbsParticipantSession& sp,
                                   PbsOwnerSession& jo) {
  obs::Span span("ppmspbs.issue");
  // SP blinds its real key under the shared serial (eq. 22).
  Bytes blinded_wire;
  {
    ScopedRole as_sp(Role::Participant);
    auto [blinded, state] =
        pbs_blind(sp.jo_real_pub, sp.real_keys.pub.serialize(), sp.serial,
                  sp.rng);
    sp.blinding = state;
    Writer msg;
    msg.put_bytes(blinded.value.to_bytes_be());
    msg.put_bytes(sp.serial);
    msg.put_bytes(sp.session_keys.pub.serialize());
    blinded_wire = msg.take();
  }
  infra_.traffic.send(Role::Participant, Role::Admin, blinded_wire);
  const Bytes to_jo = infra_.traffic.send(Role::Admin, Role::JobOwner,
                                          std::move(blinded_wire));

  // JO signs blindly under the info-derived exponent.
  Bytes signed_wire;
  {
    ScopedRole as_jo(Role::JobOwner);
    Reader r(to_jo);
    const PbsBlindedMessage blinded{Bigint::from_bytes_be(r.get_bytes())};
    const Bytes serial = r.get_bytes();
    const Bytes sp_pseudonym = r.get_bytes();
    const auto blind_sig = pbs_sign(jo.real_keys.priv, blinded, serial);
    if (!blind_sig) {
      throw MarketError(MarketErrc::kDegenerateBlinding,
                        "submit_payment: degenerate info exponent");
    }
    Writer msg;
    msg.put_bytes(blind_sig->to_bytes_be());
    msg.put_bytes(sp_pseudonym);
    signed_wire = msg.take();
  }
  const Bytes to_ma = infra_.traffic.send(Role::JobOwner, Role::Admin,
                                          std::move(signed_wire));
  Reader r(to_ma);
  const Bytes blind_sig = r.get_bytes();
  const Bytes key = r.get_bytes();
  std::lock_guard lock(ma_mu_);
  pending_coins_[key] = blind_sig;
}

void PpmsPbsMarket::submit_data(const PbsParticipantSession& sp,
                                const Bytes& report) {
  obs::Span span("ppmspbs.submit_data");
  Writer msg;
  msg.put_bytes(report);
  msg.put_bytes(sp.session_keys.pub.serialize());
  const Bytes wire =
      infra_.traffic.send(Role::Participant, Role::Admin, msg.take());
  Reader r(wire);
  const Bytes filed = r.get_bytes();
  const Bytes key = r.get_bytes();
  std::lock_guard lock(ma_mu_);
  pending_reports_[key] = filed;
}

bool PpmsPbsMarket::deliver_and_open_payment(PbsParticipantSession& sp) {
  obs::Span span("ppmspbs.deliver_open");
  const Bytes key = sp.session_keys.pub.serialize();
  Bytes filed_coin;
  {
    std::lock_guard lock(ma_mu_);
    if (pending_reports_.count(key) == 0) {
      throw MarketError(MarketErrc::kProtocolOrder,
                        "deliver_and_open_payment: no report on file");
    }
    const auto it = pending_coins_.find(key);
    if (it == pending_coins_.end()) {
      throw MarketError(MarketErrc::kProtocolOrder,
                        "deliver_and_open_payment: no coin on file");
    }
    filed_coin = it->second;
  }
  // MA -> SP (eq. 23).
  const Bytes wire = infra_.traffic.send(Role::Admin, Role::Participant,
                                         std::move(filed_coin));

  // SP: unblind and verify (eqs. 24-25).
  ScopedRole as_sp(Role::Participant);
  sp.coin = pbs_unblind(sp.jo_real_pub, Bigint::from_bytes_be(wire),
                        sp.blinding);
  return pbs_verify(sp.jo_real_pub, sp.real_keys.pub.serialize(), sp.serial,
                    sp.coin);
}

Bytes PpmsPbsMarket::confirm_and_release_data(
    const PbsParticipantSession& sp) {
  const Bytes key = sp.session_keys.pub.serialize();
  Bytes report;
  {
    std::lock_guard lock(ma_mu_);
    const auto it = pending_reports_.find(key);
    if (it == pending_reports_.end()) {
      throw MarketError(MarketErrc::kProtocolOrder,
                        "confirm_and_release_data: no report on file");
    }
    report = it->second;
  }
  infra_.traffic.send(Role::Participant, Role::Admin, bytes_of("confirm"));
  return infra_.traffic.send(Role::Admin, Role::JobOwner, std::move(report));
}

void PpmsPbsMarket::deposit(PbsParticipantSession& sp) {
  obs::Span span("ppmspbs.redeem");
  // SP -> MA after a random delay: sig, rpk_SP, rpk_JO, s (eq. 26).
  Writer msg;
  msg.put_bytes(sp.coin);
  msg.put_bytes(sp.real_keys.pub.serialize());
  msg.put_bytes(sp.jo_real_pub.serialize());
  msg.put_bytes(sp.serial);
  const Bytes wire = msg.take();
  infra_.scheduler.schedule_random(
      sp.rng, config_.min_deposit_delay, config_.max_deposit_delay,
      [this, wire]() {
        obs::Span span("ppmspbs.redeem.coin");
        const Bytes received =
            infra_.traffic.send(Role::Participant, Role::Admin, wire);
        ScopedRole as_ma(Role::Admin);
        Reader r(received);
        const Bytes sig = r.get_bytes();
        const Bytes sp_real = r.get_bytes();
        const Bytes jo_real = r.get_bytes();
        const Bytes serial = r.get_bytes();

        const RsaPublicKey jo_pub = RsaPublicKey::deserialize(jo_real);
        if (!pbs_verify(jo_pub, sp_real, serial, sig)) return;
        std::string payer_aid, payee_aid;
        {
          std::lock_guard lock(ma_mu_);
          if (!used_serials_.insert({jo_real, serial}).second) {
            return;  // serial replay
          }
          const auto payer = account_of_key_.find(jo_real);
          const auto payee = account_of_key_.find(sp_real);
          if (payer == account_of_key_.end() ||
              payee == account_of_key_.end()) {
            return;  // unknown key binding (serial stays consumed)
          }
          payer_aid = payer->second;
          payee_aid = payee->second;
        }
        try {
          infra_.bank.transfer(payer_aid, payee_aid, 1,
                               infra_.scheduler.now());
        } catch (const MarketError& e) {
          if (e.code() != MarketErrc::kInsufficientFunds) throw;
          // Payer overdrawn: the deposit fails but the market keeps
          // running. Release the serial so the SP can retry once the
          // payer is funded again.
          std::lock_guard lock(ma_mu_);
          used_serials_.erase({jo_real, serial});
        }
      });
}

bool PpmsPbsMarket::run_round(PbsOwnerSession& jo, PbsParticipantSession& sp,
                              const Bytes& report) {
  obs::Span session("ppmspbs.session");
  register_job(jo, "job");
  register_labor(sp, jo);
  submit_payment(sp, jo);
  submit_data(sp, report);
  const bool ok = deliver_and_open_payment(sp);
  confirm_and_release_data(sp);
  deposit(sp);
  settle();
  return ok;
}

}  // namespace ppms
