#include "core/ppmspbs.h"

#include "market/error.h"
#include "obs/trace.h"
#include "rsa/hybrid.h"
#include "rsa/pss.h"
#include "util/serial.h"
#include "util/thread_pool.h"

namespace ppms {

namespace {

// Hop routes (market/faults.h). Single-hop routes for the SP<->MA and
// JO<->MA exchanges; the relayed steps (labor registration, blind
// signing) list both legs so each is independently metered and faulty.
std::vector<Hop> jo_to_ma() { return {{Role::JobOwner, Role::Admin}}; }
std::vector<Hop> ma_to_jo() { return {{Role::Admin, Role::JobOwner}}; }
std::vector<Hop> sp_to_ma() { return {{Role::Participant, Role::Admin}}; }
std::vector<Hop> ma_to_sp() { return {{Role::Admin, Role::Participant}}; }
std::vector<Hop> sp_via_ma_to_jo() {
  return {{Role::Participant, Role::Admin}, {Role::Admin, Role::JobOwner}};
}
std::vector<Hop> jo_via_ma_to_sp() {
  return {{Role::JobOwner, Role::Admin}, {Role::Admin, Role::Participant}};
}

}  // namespace

PpmsPbsMarket::PpmsPbsMarket(PpmsPbsConfig config, std::uint64_t seed)
    : config_(config),
      rng_(seed),
      link_(infra_.traffic, infra_.scheduler, config_.faults,
            config_.retry) {
  if (config_.faults.enabled() && config_.settle_threads > 0) {
    throw MarketError(
        MarketErrc::kInvalidSchedule,
        "PpmsPbsMarket: fault injection requires settle_threads == 0 "
        "(retry loops pump the scheduler re-entrantly)");
  }
  if (config_.settle_threads > 0) {
    settle_pool_ = std::make_unique<ThreadPool>(config_.settle_threads);
  }
}

PpmsPbsMarket::~PpmsPbsMarket() = default;

std::uint64_t PpmsPbsMarket::fresh_seed() {
  std::lock_guard lock(rng_mu_);
  return rng_.next_u64();
}

void PpmsPbsMarket::settle() {
  if (settle_pool_) {
    infra_.scheduler.run_all(*settle_pool_);
  } else {
    infra_.scheduler.run_all();
  }
}

std::size_t PpmsPbsMarket::used_serials() const {
  std::lock_guard lock(ma_mu_);
  return used_serials_.size();
}

PbsOwnerSession PpmsPbsMarket::enroll_owner(const std::string& identity) {
  PbsOwnerSession jo;
  jo.rng = SecureRandom(fresh_seed());
  jo.link = link_.new_session();
  if (const auto aid = infra_.bank.find_account(identity)) {
    jo.account = {identity, *aid};
  } else {
    jo.account = open_resident(infra_, identity, config_.initial_balance);
  }
  {
    ScopedRole as_jo(Role::JobOwner);
    jo.real_keys = rsa_generate(jo.rng, config_.rsa_bits);
  }
  // Bind rpk_JO to the account (setup step, over the wire). The binding is
  // a map assignment — idempotent under redelivery by construction.
  const std::string aid = jo.account.aid;
  Writer msg;
  msg.put_bytes(jo.real_keys.pub.serialize());
  link_.call(jo.link, jo_to_ma(), ma_to_jo(), msg.take(), Bytes{},
             [this, aid](const Bytes& request) {
               Reader r(request);
               const Bytes pk = r.get_bytes();
               if (!r.exhausted()) {
                 throw MarketError(MarketErrc::kMalformedMessage,
                                   "enroll_owner: trailing garbage");
               }
               std::lock_guard lock(ma_mu_);
               account_of_key_[pk] = aid;
               return Bytes{};
             });
  return jo;
}

PbsParticipantSession PpmsPbsMarket::enroll_participant(
    const std::string& identity) {
  PbsParticipantSession sp;
  sp.rng = SecureRandom(fresh_seed());
  sp.link = link_.new_session();
  if (const auto aid = infra_.bank.find_account(identity)) {
    sp.account = {identity, *aid};
  } else {
    sp.account = open_resident(infra_, identity, 0);
  }
  {
    ScopedRole as_sp(Role::Participant);
    sp.real_keys = rsa_generate(sp.rng, config_.rsa_bits);
  }
  const std::string aid = sp.account.aid;
  Writer msg;
  msg.put_bytes(sp.real_keys.pub.serialize());
  link_.call(sp.link, sp_to_ma(), ma_to_sp(), msg.take(), Bytes{},
             [this, aid](const Bytes& request) {
               Reader r(request);
               const Bytes pk = r.get_bytes();
               if (!r.exhausted()) {
                 throw MarketError(MarketErrc::kMalformedMessage,
                                   "enroll_participant: trailing garbage");
               }
               std::lock_guard lock(ma_mu_);
               account_of_key_[pk] = aid;
               return Bytes{};
             });
  return sp;
}

void PpmsPbsMarket::register_job(PbsOwnerSession& jo,
                                 const std::string& description) {
  obs::Span span("ppmspbs.register_job");
  {
    ScopedRole as_jo(Role::JobOwner);
    jo.session_keys = rsa_generate(jo.rng, config_.rsa_bits);
  }
  // JO -> MA: jd, rpk_jo (eq. 12); MA -> BB (eq. 13), reply carries the
  // job id. Published once per idempotency key.
  Writer msg;
  msg.put_string(description);
  msg.put_bytes(jo.session_keys.pub.serialize());
  const Bytes reply = link_.call(
      jo.link, jo_to_ma(), ma_to_jo(), msg.take(), Bytes{},
      [this](const Bytes& request) {
        Reader r(request);
        JobProfile profile;
        profile.description = r.get_string();
        profile.payment = 1;  // unitary market
        profile.owner_pseudonym = r.get_bytes();
        if (!r.exhausted()) {
          throw MarketError(MarketErrc::kMalformedMessage,
                            "register_job: trailing garbage");
        }
        Writer out;
        out.put_u64(infra_.bulletin.publish(std::move(profile)));
        return out.take();
      });
  Reader r(reply);
  jo.job_id = r.get_u64();
  if (!r.exhausted()) {
    throw MarketError(MarketErrc::kMalformedMessage,
                      "register_job: malformed job-id reply");
  }
}

void PpmsPbsMarket::register_labor(PbsParticipantSession& sp,
                                   PbsOwnerSession& jo) {
  obs::Span span("ppmspbs.register_labor");
  sp.job_id = jo.job_id;
  // SP: fresh pseudonym + serial, encrypted to rpk_jo (eq. 14).
  Bytes request;
  {
    ScopedRole as_sp(Role::Participant);
    sp.session_keys = rsa_generate(sp.rng, config_.rsa_bits);
    sp.serial = sp.rng.bytes(16);
    Writer inner;
    inner.put_bytes(sp.session_keys.pub.serialize());
    inner.put_bytes(sp.serial);
    request = hybrid_encrypt(jo.session_keys.pub, inner.take(), sp.rng);
  }
  // SP -> MA -> JO (eqs. 14-15); the JO decrypts, signs (rpk_sp, s) and
  // answers with its real key (eqs. 16-18), which travels JO -> MA -> SP
  // (eqs. 18-19). One reliable 4-leg call; the JO-side work runs once per
  // idempotency key, so a redelivered registration reuses the same
  // signature. The handler borrows `jo`, which outlives the call (the
  // round holds both sessions).
  PbsOwnerSession* owner = &jo;
  const Bytes to_sp = link_.call(
      sp.link, sp_via_ma_to_jo(), jo_via_ma_to_sp(), request, Bytes{},
      [owner](const Bytes& to_jo) {
        ScopedRole as_jo(Role::JobOwner);
        const Bytes inner = hybrid_decrypt(owner->session_keys.priv, to_jo);
        Reader r(inner);
        const Bytes sp_pseudonym = r.get_bytes();
        const Bytes serial = r.get_bytes();
        if (!r.exhausted()) {
          throw MarketError(MarketErrc::kMalformedMessage,
                            "register_labor: trailing garbage");
        }
        const RsaPublicKey sp_pub = RsaPublicKey::deserialize(sp_pseudonym);
        Writer signed_part;
        signed_part.put_bytes(sp_pseudonym);
        signed_part.put_bytes(serial);
        const Bytes sig = rsa_pss_sign(owner->session_keys.priv,
                                       signed_part.data(), owner->rng);
        Writer inner_reply;
        inner_reply.put_bytes(owner->real_keys.pub.serialize());
        inner_reply.put_bytes(sig);
        return hybrid_encrypt(sp_pub, inner_reply.take(), owner->rng);
      });

  // SP: decrypt and verify with the *pseudonymous* job key (eqs. 20-21).
  ScopedRole as_sp(Role::Participant);
  const Bytes inner = hybrid_decrypt(sp.session_keys.priv, to_sp);
  Reader r(inner);
  const Bytes jo_real = r.get_bytes();
  const Bytes sig = r.get_bytes();
  if (!r.exhausted()) {
    throw MarketError(MarketErrc::kMalformedMessage,
                      "register_labor: trailing garbage in JO reply");
  }
  Writer signed_part;
  signed_part.put_bytes(sp.session_keys.pub.serialize());
  signed_part.put_bytes(sp.serial);
  if (!rsa_pss_verify(jo.session_keys.pub, signed_part.data(), sig)) {
    throw MarketError(MarketErrc::kSignatureRejected,
                      "register_labor: JO signature rejected");
  }
  sp.jo_real_pub = RsaPublicKey::deserialize(jo_real);
}

void PpmsPbsMarket::submit_payment(PbsParticipantSession& sp,
                                   PbsOwnerSession& jo) {
  obs::Span span("ppmspbs.issue");
  // SP blinds its real key under the shared serial (eq. 22).
  Bytes blinded_wire;
  {
    ScopedRole as_sp(Role::Participant);
    auto [blinded, state] =
        pbs_blind(sp.jo_real_pub, sp.real_keys.pub.serialize(), sp.serial,
                  sp.rng);
    sp.blinding = state;
    Writer msg;
    msg.put_bytes(blinded.value.to_bytes_be());
    msg.put_bytes(sp.serial);
    msg.put_bytes(sp.session_keys.pub.serialize());
    blinded_wire = msg.take();
  }
  // SP -> MA -> JO; the JO signs blindly under the info-derived exponent
  // (once per idempotency key — a redelivery reuses the same blind
  // signature) and the signed coin travels JO -> MA as the reply leg.
  PbsOwnerSession* owner = &jo;
  const Bytes to_ma = link_.call(
      sp.link, sp_via_ma_to_jo(), jo_to_ma(), blinded_wire, Bytes{},
      [owner](const Bytes& to_jo) {
        ScopedRole as_jo(Role::JobOwner);
        Reader r(to_jo);
        const PbsBlindedMessage blinded{Bigint::from_bytes_be(r.get_bytes())};
        const Bytes serial = r.get_bytes();
        const Bytes sp_pseudonym = r.get_bytes();
        if (!r.exhausted()) {
          throw MarketError(MarketErrc::kMalformedMessage,
                            "submit_payment: trailing garbage");
        }
        const auto blind_sig =
            pbs_sign(owner->real_keys.priv, blinded, serial);
        if (!blind_sig) {
          throw MarketError(MarketErrc::kDegenerateBlinding,
                            "submit_payment: degenerate info exponent");
        }
        Writer msg;
        msg.put_bytes(blind_sig->to_bytes_be());
        msg.put_bytes(sp_pseudonym);
        return msg.take();
      });
  // MA files the pending blind signature under the SP pseudonym.
  Reader r(to_ma);
  const Bytes blind_sig = r.get_bytes();
  const Bytes key = r.get_bytes();
  if (!r.exhausted()) {
    throw MarketError(MarketErrc::kMalformedMessage,
                      "submit_payment: malformed signed reply");
  }
  std::lock_guard lock(ma_mu_);
  pending_coins_[key] = blind_sig;
}

void PpmsPbsMarket::submit_data(PbsParticipantSession& sp,
                                const Bytes& report) {
  obs::Span span("ppmspbs.submit_data");
  Writer msg;
  msg.put_bytes(report);
  msg.put_bytes(sp.session_keys.pub.serialize());
  link_.call(sp.link, sp_to_ma(), ma_to_sp(), msg.take(), Bytes{},
             [this](const Bytes& wire) {
               Reader r(wire);
               const Bytes filed = r.get_bytes();
               const Bytes key = r.get_bytes();
               if (!r.exhausted()) {
                 throw MarketError(MarketErrc::kMalformedMessage,
                                   "submit_data: trailing garbage");
               }
               std::lock_guard lock(ma_mu_);
               pending_reports_[key] = filed;
               return Bytes{};
             });
}

bool PpmsPbsMarket::deliver_and_open_payment(PbsParticipantSession& sp) {
  obs::Span span("ppmspbs.deliver_open");
  // SP requests its coin; the filed blind signature travels MA -> SP as
  // the reply leg (eq. 23).
  Writer msg;
  msg.put_bytes(sp.session_keys.pub.serialize());
  const Bytes wire = link_.call(
      sp.link, sp_to_ma(), ma_to_sp(), msg.take(), Bytes{},
      [this](const Bytes& request) {
        Reader r(request);
        const Bytes key = r.get_bytes();
        if (!r.exhausted()) {
          throw MarketError(MarketErrc::kMalformedMessage,
                            "deliver_and_open_payment: trailing garbage");
        }
        std::lock_guard lock(ma_mu_);
        if (pending_reports_.count(key) == 0) {
          throw MarketError(MarketErrc::kProtocolOrder,
                            "deliver_and_open_payment: no report on file");
        }
        const auto it = pending_coins_.find(key);
        if (it == pending_coins_.end()) {
          throw MarketError(MarketErrc::kProtocolOrder,
                            "deliver_and_open_payment: no coin on file");
        }
        return it->second;
      });

  // SP: unblind and verify (eqs. 24-25).
  ScopedRole as_sp(Role::Participant);
  sp.coin = pbs_unblind(sp.jo_real_pub, Bigint::from_bytes_be(wire),
                        sp.blinding);
  return pbs_verify(sp.jo_real_pub, sp.real_keys.pub.serialize(), sp.serial,
                    sp.coin);
}

Bytes PpmsPbsMarket::confirm_and_release_data(PbsParticipantSession& sp) {
  // SP -> MA: confirmation; the MA releases the report, which travels
  // MA -> JO as the reply leg.
  Writer msg;
  msg.put_string("confirm");
  msg.put_bytes(sp.session_keys.pub.serialize());
  return link_.call(
      sp.link, sp_to_ma(), ma_to_jo(), msg.take(), Bytes{},
      [this](const Bytes& request) {
        Reader r(request);
        const std::string confirm = r.get_string();
        const Bytes key = r.get_bytes();
        if (!r.exhausted() || confirm != "confirm") {
          throw MarketError(MarketErrc::kMalformedMessage,
                            "confirm_and_release_data: malformed request");
        }
        std::lock_guard lock(ma_mu_);
        const auto it = pending_reports_.find(key);
        if (it == pending_reports_.end()) {
          throw MarketError(MarketErrc::kProtocolOrder,
                            "confirm_and_release_data: no report on file");
        }
        return it->second;
      });
}

void PpmsPbsMarket::deposit(PbsParticipantSession& sp) {
  obs::Span span("ppmspbs.redeem");
  // SP -> MA after a random delay: sig, rpk_SP, rpk_JO, s (eq. 26).
  Writer msg;
  msg.put_bytes(sp.coin);
  msg.put_bytes(sp.real_keys.pub.serialize());
  msg.put_bytes(sp.jo_real_pub.serialize());
  msg.put_bytes(sp.serial);
  const Bytes wire = msg.take();

  if (link_.plan().enabled()) {
    // Faulty transport: the redemption is a reliable, idempotent call
    // salted with the coin serial — a retried or duplicated deposit can
    // never move the unit twice (the serial file backs the reply cache
    // up for replays across distinct sessions). The closure owns a fresh
    // session link so nothing dangles on this stack-local session.
    const Bytes salt = sp.serial;
    infra_.scheduler.schedule_random(
        sp.rng, config_.min_deposit_delay, config_.max_deposit_delay,
        [this, wire, salt, link = link_.new_session()]() mutable {
          obs::Span span("ppmspbs.redeem.coin");
          link_.call(
              link, sp_to_ma(), ma_to_sp(), wire, salt,
              [this](const Bytes& received) {
                ScopedRole as_ma(Role::Admin);
                Reader r(received);
                const Bytes sig = r.get_bytes();
                const Bytes sp_real = r.get_bytes();
                const Bytes jo_real = r.get_bytes();
                const Bytes serial = r.get_bytes();
                if (!r.exhausted()) {
                  throw MarketError(MarketErrc::kMalformedMessage,
                                    "deposit: trailing garbage");
                }
                Writer out;
                const RsaPublicKey jo_pub =
                    RsaPublicKey::deserialize(jo_real);
                if (!pbs_verify(jo_pub, sp_real, serial, sig)) {
                  out.put_bool(false);
                  return out.take();
                }
                std::string payer_aid, payee_aid;
                {
                  std::lock_guard lock(ma_mu_);
                  if (!used_serials_.insert({jo_real, serial}).second) {
                    out.put_bool(false);  // serial replay
                    return out.take();
                  }
                  const auto payer = account_of_key_.find(jo_real);
                  const auto payee = account_of_key_.find(sp_real);
                  if (payer == account_of_key_.end() ||
                      payee == account_of_key_.end()) {
                    out.put_bool(false);  // unknown binding, serial stays
                    return out.take();
                  }
                  payer_aid = payer->second;
                  payee_aid = payee->second;
                }
                try {
                  infra_.bank.transfer(payer_aid, payee_aid, 1,
                                       infra_.scheduler.now());
                } catch (const MarketError& e) {
                  if (e.code() != MarketErrc::kInsufficientFunds) throw;
                  // Payer overdrawn: release the serial so the SP can
                  // retry once the payer is funded again.
                  std::lock_guard lock(ma_mu_);
                  used_serials_.erase({jo_real, serial});
                  out.put_bool(false);
                  return out.take();
                }
                out.put_bool(true);
                return out.take();
              });
        });
    return;
  }

  // Lossless transport: the legacy inline redemption, byte for byte.
  infra_.scheduler.schedule_random(
      sp.rng, config_.min_deposit_delay, config_.max_deposit_delay,
      [this, wire]() {
        obs::Span span("ppmspbs.redeem.coin");
        const Bytes received =
            infra_.traffic.send(Role::Participant, Role::Admin, wire);
        ScopedRole as_ma(Role::Admin);
        Reader r(received);
        const Bytes sig = r.get_bytes();
        const Bytes sp_real = r.get_bytes();
        const Bytes jo_real = r.get_bytes();
        const Bytes serial = r.get_bytes();

        const RsaPublicKey jo_pub = RsaPublicKey::deserialize(jo_real);
        if (!pbs_verify(jo_pub, sp_real, serial, sig)) return;
        std::string payer_aid, payee_aid;
        {
          std::lock_guard lock(ma_mu_);
          if (!used_serials_.insert({jo_real, serial}).second) {
            return;  // serial replay
          }
          const auto payer = account_of_key_.find(jo_real);
          const auto payee = account_of_key_.find(sp_real);
          if (payer == account_of_key_.end() ||
              payee == account_of_key_.end()) {
            return;  // unknown key binding (serial stays consumed)
          }
          payer_aid = payer->second;
          payee_aid = payee->second;
        }
        try {
          infra_.bank.transfer(payer_aid, payee_aid, 1,
                               infra_.scheduler.now());
        } catch (const MarketError& e) {
          if (e.code() != MarketErrc::kInsufficientFunds) throw;
          // Payer overdrawn: the deposit fails but the market keeps
          // running. Release the serial so the SP can retry once the
          // payer is funded again.
          std::lock_guard lock(ma_mu_);
          used_serials_.erase({jo_real, serial});
        }
      });
}

bool PpmsPbsMarket::run_round(PbsOwnerSession& jo, PbsParticipantSession& sp,
                              const Bytes& report) {
  obs::Span session("ppmspbs.session");
  register_job(jo, "job");
  register_labor(sp, jo);
  submit_payment(sp, jo);
  submit_data(sp, report);
  const bool ok = deliver_and_open_payment(sp);
  confirm_and_release_data(sp);
  deposit(sp);
  settle();
  return ok;
}

}  // namespace ppms
