#include "core/params.h"

namespace ppms {

DecParams fast_dec_params(std::uint64_t seed, std::size_t L,
                          std::size_t pairing_bits) {
  SecureRandom rng(seed);
  return dec_setup(rng, L, ChainSource::kTable, pairing_bits);
}

PpmsDecMarket make_fast_dec_market(std::uint64_t seed, std::size_t L,
                                   CashBreakStrategy strategy) {
  PpmsDecConfig config;
  config.rsa_bits = 1024;
  config.strategy = strategy;
  return PpmsDecMarket(fast_dec_params(seed, L), config, seed + 1);
}

PpmsPbsMarket make_fast_pbs_market(std::uint64_t seed) {
  PpmsPbsConfig config;
  config.rsa_bits = 1024;
  return PpmsPbsMarket(config, seed);
}

}  // namespace ppms
