#include "core/ppmsdec.h"

#include <algorithm>

#include "market/error.h"
#include "obs/trace.h"
#include "rsa/hybrid.h"
#include "rsa/pss.h"
#include "util/serial.h"
#include "util/thread_pool.h"

namespace ppms {

namespace {

// Reuse the resident's single account when the identity already banks
// here (the one-account rule), otherwise open one. Two sessions may race
// to open the same identity's account; the loser of the race adopts the
// winner's AID.
ResidentAccount open_or_reuse(MarketInfrastructure& infra,
                              const std::string& identity,
                              std::uint64_t initial_balance) {
  if (const auto aid = infra.bank.find_account(identity)) {
    return ResidentAccount{identity, *aid};
  }
  try {
    return open_resident(infra, identity, initial_balance);
  } catch (const MarketError& e) {
    if (e.code() != MarketErrc::kDuplicateAccount) throw;
    return ResidentAccount{identity, *infra.bank.find_account(identity)};
  }
}

// Hop routes of the two-party steps. Every JO<->MA and SP<->MA exchange
// below travels these as an enveloped, idempotent, retrying call
// (market/faults.h); with a lossless plan the call degenerates to one
// metered round trip.
std::vector<Hop> jo_to_ma() { return {{Role::JobOwner, Role::Admin}}; }
std::vector<Hop> ma_to_jo() { return {{Role::Admin, Role::JobOwner}}; }
std::vector<Hop> sp_to_ma() { return {{Role::Participant, Role::Admin}}; }
std::vector<Hop> ma_to_sp() { return {{Role::Admin, Role::Participant}}; }

// Build the pairing session (GtGroup + Miller tables) before the bank
// copies the params, so the market and its DEC bank share one DecSession.
const DecParams& with_session(const DecParams& params) {
  params.session();
  return params;
}

}  // namespace

PpmsDecMarket::PpmsDecMarket(DecParams params, PpmsDecConfig config,
                             std::uint64_t seed)
    : params_(std::move(params)),
      config_(config),
      rng_(seed),
      dec_bank_(with_session(params_), rng_),
      link_(infra_.traffic, infra_.scheduler, config_.faults,
            config_.retry) {
  if (config_.faults.enabled() && config_.settle_threads > 0) {
    throw MarketError(
        MarketErrc::kInvalidSchedule,
        "PpmsDecMarket: fault injection requires settle_threads == 0 "
        "(retry loops pump the scheduler re-entrantly)");
  }
  if (config_.settle_threads > 0) {
    settle_pool_ = std::make_unique<ThreadPool>(config_.settle_threads);
  }
}

PpmsDecMarket::~PpmsDecMarket() = default;

Bytes PpmsDecMarket::payment_key(const Bytes& sp_pubkey) const {
  return sp_pubkey;
}

std::uint64_t PpmsDecMarket::fresh_seed() {
  std::lock_guard lock(rng_mu_);
  return rng_.next_u64();
}

void PpmsDecMarket::settle() {
  if (settle_pool_) {
    infra_.scheduler.run_all(*settle_pool_);
  } else {
    infra_.scheduler.run_all();
  }
}

JobOwnerSession PpmsDecMarket::register_job(const std::string& identity,
                                            const std::string& description,
                                            std::uint64_t payment) {
  obs::Span span("ppmsdec.register_job");
  if (payment == 0 || payment > params_.root_value()) {
    throw MarketError(MarketErrc::kPaymentOutOfRange,
                      "register_job: payment out of [1, 2^L]");
  }
  JobOwnerSession jo;
  jo.rng = SecureRandom(fresh_seed());
  jo.link = link_.new_session();
  jo.account = open_or_reuse(infra_, identity, config_.initial_balance);
  jo.payment = payment;
  {
    ScopedRole as_jo(Role::JobOwner);
    jo.session_keys = rsa_generate(jo.rng, config_.rsa_bits);
  }
  // JO -> MA: jd, w, rpk_jo (eq. 1); the MA publishes on the bulletin
  // board (eq. 2) and replies with the job id. Publication happens once
  // per idempotency key, so a redelivered registration never creates a
  // second job.
  Writer msg;
  msg.put_string(description);
  msg.put_u64(payment);
  msg.put_bytes(jo.session_keys.pub.serialize());
  const Bytes reply = link_.call(
      jo.link, jo_to_ma(), ma_to_jo(), msg.take(), Bytes{},
      [this](const Bytes& request) {
        Reader r(request);
        JobProfile profile;
        profile.description = r.get_string();
        profile.payment = r.get_u64();
        profile.owner_pseudonym = r.get_bytes();
        if (!r.exhausted()) {
          throw MarketError(MarketErrc::kMalformedMessage,
                            "register_job: trailing garbage");
        }
        Writer out;
        out.put_u64(infra_.bulletin.publish(std::move(profile)));
        return out.take();
      });
  Reader r(reply);
  jo.job_id = r.get_u64();
  if (!r.exhausted()) {
    throw MarketError(MarketErrc::kMalformedMessage,
                      "register_job: malformed job-id reply");
  }
  return jo;
}

void PpmsDecMarket::withdraw(JobOwnerSession& jo) {
  obs::Span span("ppmsdec.withdraw");
  // JO side: fresh wallet, commitment and PoK.
  Bytes request;
  {
    ScopedRole as_jo(Role::JobOwner);
    jo.wallet = std::make_unique<DecWallet>(params_, jo.rng);
    const Bytes ctx = bytes_of("ppmsdec.withdraw");
    Writer msg;
    msg.put_bytes(ec_serialize(jo.wallet->commitment(), params_.pairing.p));
    msg.put_bytes(jo.wallet->prove_commitment(jo.rng, ctx).serialize());
    request = msg.take();
  }
  // MA side: verify PoK, debit the fixed denomination 2^L, issue the
  // blind CL certificate. The handler runs at most once per idempotency
  // key, so a retried withdrawal can never debit the account twice.
  const std::string aid = jo.account.aid;
  const Bytes cert_wire = link_.call(
      jo.link, jo_to_ma(), ma_to_jo(), request, Bytes{},
      [this, aid](const Bytes& filed) {
        ScopedRole as_ma(Role::Admin);
        Reader r(filed);
        const EcPoint commitment =
            ec_deserialize(r.get_bytes(), params_.pairing.p);
        const SchnorrProof pok = SchnorrProof::deserialize(r.get_bytes());
        if (!r.exhausted()) {
          throw MarketError(MarketErrc::kMalformedMessage,
                            "withdraw: trailing garbage");
        }
        std::optional<ClSignature> cert;
        {
          // The MA's blind signing draws from the master stream.
          std::lock_guard rng_lock(rng_mu_);
          cert = dec_bank_.withdraw(commitment, pok,
                                    bytes_of("ppmsdec.withdraw"), rng_);
        }
        if (!cert) {
          throw MarketError(MarketErrc::kWithdrawRejected,
                            "withdraw: proof of commitment rejected");
        }
        infra_.bank.debit(aid, params_.root_value(),
                          infra_.scheduler.now());
        return cert->serialize(params_.pairing);
      });

  // JO installs the certificate (verifies it against its secret).
  ScopedRole as_jo(Role::JobOwner);
  jo.wallet->set_certificate(
      dec_bank_.public_key(),
      ClSignature::deserialize(params_.pairing, cert_wire));
}

ParticipantSession PpmsDecMarket::register_labor(
    const std::string& identity, const JobOwnerSession& jo) {
  obs::Span span("ppmsdec.register_labor");
  ParticipantSession sp;
  sp.rng = SecureRandom(fresh_seed());
  sp.link = link_.new_session();
  sp.account = open_or_reuse(infra_, identity, 0);
  sp.job_id = jo.job_id;
  {
    ScopedRole as_sp(Role::Participant);
    sp.session_keys = rsa_generate(sp.rng, config_.rsa_bits);
  }
  // SP -> MA: rpk_sp (eq. 5); the MA echoes the pseudonym to the JO
  // (eq. 6) as a fire-and-forget accounting leg and acks the SP.
  Writer msg;
  msg.put_bytes(sp.session_keys.pub.serialize());
  link_.call(sp.link, sp_to_ma(), ma_to_sp(), msg.take(), Bytes{},
             [this](const Bytes& request) {
               Reader r(request);
               const Bytes pseudonym = r.get_bytes();
               if (!r.exhausted()) {
                 throw MarketError(MarketErrc::kMalformedMessage,
                                   "register_labor: trailing garbage");
               }
               link_.forward(Role::Admin, Role::JobOwner, pseudonym);
               return Bytes{};
             });
  return sp;
}

void PpmsDecMarket::submit_payment(JobOwnerSession& jo,
                                   const ParticipantSession& sp) {
  obs::Span span("ppmsdec.submit_payment");
  if (!jo.wallet || !jo.wallet->has_certificate()) {
    throw MarketError(MarketErrc::kProtocolOrder,
                      "submit_payment: withdraw first");
  }
  const Bytes sp_pubkey = sp.session_keys.pub.serialize();

  Bytes wire;
  {
    ScopedRole as_jo(Role::JobOwner);
    // Cash break per the configured strategy; zeros become fake coins.
    const std::vector<std::uint64_t> denoms =
        cash_break(config_.strategy, jo.payment, params_.L);
    const auto nodes = jo.wallet->allocate_denominations(denoms);
    if (!nodes) {
      throw MarketError(MarketErrc::kWalletExhausted,
                        "submit_payment: wallet cannot cover w");
    }
    // One tagged coin per node: a root-hiding spend when configured and
    // possible (the whole-coin node has no hideable root), else a regular
    // spend. The tag byte is inside the encrypted entry, invisible to the
    // MA.
    std::vector<Bytes> real;
    std::size_t entry_cap = 0;
    for (const NodeIndex& node : *nodes) {
      Bytes coin;
      if (config_.hide_roots && node.depth >= 1) {
        coin.push_back(1);
        const RootHidingSpend spend = jo.wallet->spend_hiding(
            node, dec_bank_.public_key(), jo.rng, sp_pubkey);
        const Bytes body = spend.serialize(params_);
        coin.insert(coin.end(), body.begin(), body.end());
      } else {
        coin.push_back(0);
        const SpendBundle spend = jo.wallet->spend(
            node, dec_bank_.public_key(), jo.rng, sp_pubkey);
        const Bytes body = spend.serialize(params_);
        coin.insert(coin.end(), body.begin(), body.end());
      }
      real.push_back(std::move(coin));
      entry_cap = std::max(entry_cap, real.back().size());
    }
    // Designated-receiver signature on the SP's pseudonym (eq. 7).
    const Bytes sig = rsa_pss_sign(jo.session_keys.priv, sp_pubkey, jo.rng);
    entry_cap += 4;  // room for the length prefix
    const std::size_t fakes = denoms.size() - real.size();

    Writer payload;
    payload.put_u32(static_cast<std::uint32_t>(denoms.size()));
    payload.put_u32(static_cast<std::uint32_t>(entry_cap));
    for (const Bytes& coin : real) {
      Bytes entry;
      append_u32_be(entry, static_cast<std::uint32_t>(coin.size()));
      entry.insert(entry.end(), coin.begin(), coin.end());
      const Bytes pad = jo.rng.bytes(entry_cap - entry.size());
      entry.insert(entry.end(), pad.begin(), pad.end());
      payload.put_bytes(entry);
    }
    for (std::size_t i = 0; i < fakes; ++i) {
      payload.put_bytes(jo.rng.bytes(entry_cap));  // E(0)
    }
    payload.put_bytes(sig);

    Writer msg;
    msg.put_bytes(
        hybrid_encrypt(sp.session_keys.pub, payload.take(), jo.rng));
    msg.put_bytes(sp_pubkey);
    wire = msg.take();
  }
  // MA files the designated-receiver ciphertext until the data arrives
  // (filing is a map assignment — naturally idempotent, and deduplicated
  // by key anyway under faults).
  link_.call(jo.link, jo_to_ma(), ma_to_jo(), wire, Bytes{},
             [this](const Bytes& filed) {
               ScopedRole as_ma(Role::Admin);
               Reader r(filed);
               const Bytes ciphertext = r.get_bytes();
               const Bytes key = r.get_bytes();
               if (!r.exhausted()) {
                 throw MarketError(MarketErrc::kMalformedMessage,
                                   "submit_payment: trailing garbage");
               }
               std::lock_guard lock(pending_mu_);
               pending_payments_[payment_key(key)] = ciphertext;
               return Bytes{};
             });
}

void PpmsDecMarket::submit_data(ParticipantSession& sp,
                                const Bytes& report) {
  obs::Span span("ppmsdec.submit_data");
  Writer msg;
  msg.put_bytes(report);
  msg.put_bytes(sp.session_keys.pub.serialize());
  link_.call(sp.link, sp_to_ma(), ma_to_sp(), msg.take(), Bytes{},
             [this](const Bytes& wire) {
               Reader r(wire);
               const Bytes filed_report = r.get_bytes();
               const Bytes key = r.get_bytes();
               if (!r.exhausted()) {
                 throw MarketError(MarketErrc::kMalformedMessage,
                                   "submit_data: trailing garbage");
               }
               std::lock_guard lock(pending_mu_);
               pending_reports_[payment_key(key)] = filed_report;
               return Bytes{};
             });
}

void PpmsDecMarket::deliver_payment(ParticipantSession& sp) {
  obs::Span span("ppmsdec.deliver_payment");
  // SP requests its payment; the filed designated-receiver ciphertext
  // still travels MA -> SP, as the reply leg.
  Writer msg;
  msg.put_bytes(sp.session_keys.pub.serialize());
  sp.payment_ciphertext = link_.call(
      sp.link, sp_to_ma(), ma_to_sp(), msg.take(), Bytes{},
      [this](const Bytes& request) {
        Reader r(request);
        const Bytes key = payment_key(r.get_bytes());
        if (!r.exhausted()) {
          throw MarketError(MarketErrc::kMalformedMessage,
                            "deliver_payment: trailing garbage");
        }
        std::lock_guard lock(pending_mu_);
        if (pending_reports_.count(key) == 0) {
          throw MarketError(MarketErrc::kProtocolOrder,
                            "deliver_payment: no data report on file");
        }
        const auto it = pending_payments_.find(key);
        if (it == pending_payments_.end()) {
          throw MarketError(MarketErrc::kProtocolOrder,
                            "deliver_payment: no payment on file");
        }
        return it->second;
      });
}

PpmsDecMarket::PaymentCheck PpmsDecMarket::open_payment(
    ParticipantSession& sp) {
  obs::Span span("ppmsdec.open_payment");
  ScopedRole as_sp(Role::Participant);
  PaymentCheck check;
  const Bytes payload =
      hybrid_decrypt(sp.session_keys.priv, sp.payment_ciphertext);
  Reader r(payload);
  const std::uint32_t n_entries = r.get_u32();
  const std::uint32_t entry_cap = r.get_u32();
  std::vector<Bytes> entries;
  for (std::uint32_t i = 0; i < n_entries; ++i) {
    entries.push_back(r.get_bytes());
  }
  const Bytes sig = r.get_bytes();
  if (!r.exhausted()) {
    throw MarketError(MarketErrc::kMalformedMessage,
                      "open_payment: trailing garbage in payment payload");
  }

  // Signature of the job owner over our pseudonym, using the pseudonymous
  // key published on the bulletin board.
  const auto profile = infra_.bulletin.get(sp.job_id);
  if (!profile) {
    throw MarketError(MarketErrc::kUnknownJob, "open_payment: unknown job");
  }
  const RsaPublicKey jo_pub =
      RsaPublicKey::deserialize(profile->owner_pseudonym);
  const Bytes my_pubkey = sp.session_keys.pub.serialize();
  check.signature_ok = rsa_pss_verify(jo_pub, my_pubkey, sig);

  // Coins: verify each entry; anything that does not parse into a valid
  // spend designated to us is a fake E(0).
  for (const Bytes& entry : entries) {
    if (entry.size() != entry_cap) {
      ++check.fake_coins;
      continue;
    }
    bool good = false;
    try {
      const std::uint32_t len = read_u32_be(entry, 0);
      if (len >= 1 && len <= entry_cap - 4) {
        const std::uint8_t tag = entry[4];
        const Bytes body(entry.begin() + 5, entry.begin() + 4 + len);
        if (tag == 0) {
          SpendBundle bundle = SpendBundle::deserialize(params_, body);
          good = bundle.context == my_pubkey &&
                 verify_spend(params_, dec_bank_.public_key(), bundle);
          if (good) {
            check.value += params_.node_value(bundle.node.depth);
            sp.coins.push_back(std::move(bundle));
          }
        } else if (tag == 1) {
          RootHidingSpend bundle =
              RootHidingSpend::deserialize(params_, body);
          good = bundle.context == my_pubkey &&
                 verify_root_hiding_spend(params_, dec_bank_.public_key(),
                                          bundle);
          if (good) {
            check.value += params_.node_value(bundle.node.depth);
            sp.hiding_coins.push_back(std::move(bundle));
          }
        }
      }
    } catch (const std::exception&) {
      good = false;
    }
    if (good) {
      ++check.real_coins;
    } else {
      ++check.fake_coins;
    }
  }
  sp.verified_value = check.value;
  sp.fake_coins_seen = check.fake_coins;
  return check;
}

void PpmsDecMarket::confirm_and_release_data(ParticipantSession& sp,
                                             JobOwnerSession& jo) {
  obs::Span span("ppmsdec.confirm");
  // SP -> MA: confirmation; the MA releases the report, which travels
  // MA -> JO as the reply leg (alg. line 8).
  Writer msg;
  msg.put_string("confirm");
  msg.put_bytes(sp.session_keys.pub.serialize());
  jo.received_reports.push_back(link_.call(
      sp.link, sp_to_ma(), ma_to_jo(), msg.take(), Bytes{},
      [this](const Bytes& request) {
        Reader r(request);
        const std::string confirm = r.get_string();
        const Bytes key = payment_key(r.get_bytes());
        if (!r.exhausted() || confirm != "confirm") {
          throw MarketError(MarketErrc::kMalformedMessage,
                            "confirm_and_release_data: malformed request");
        }
        std::lock_guard lock(pending_mu_);
        const auto it = pending_reports_.find(key);
        if (it == pending_reports_.end()) {
          throw MarketError(MarketErrc::kProtocolOrder,
                            "confirm_and_release_data: no report on file");
        }
        return it->second;
      }));
}

void PpmsDecMarket::deposit_one(SessionLink& link, const std::string& aid,
                                bool hiding, const Bytes& coin_wire) {
  obs::Span span("ppmsdec.deposit.coin");
  Writer msg;
  msg.put_string(aid);
  msg.put_bool(hiding);
  msg.put_bytes(coin_wire);
  // The coin's serialized bytes salt the idempotency key, so the dedup is
  // per coin as well as per message; the striped double-spend store backs
  // it up for replays across distinct sessions.
  link_.call(link, sp_to_ma(), ma_to_sp(), msg.take(), coin_wire,
             [this](const Bytes& wire) {
               ScopedRole as_ma(Role::Admin);
               Reader r(wire);
               const std::string account = r.get_string();
               const bool is_hiding = r.get_bool();
               const Bytes body = r.get_bytes();
               if (!r.exhausted()) {
                 throw MarketError(MarketErrc::kMalformedMessage,
                                   "deposit: trailing garbage");
               }
               SettleOutcome result;
               if (is_hiding) {
                 result = dec_bank_.deposit_hiding(
                     RootHidingSpend::deserialize(params_, body));
               } else {
                 result = dec_bank_.deposit(
                     SpendBundle::deserialize(params_, body));
               }
               if (result.accepted()) {
                 infra_.bank.credit(account, result.value,
                                    infra_.scheduler.now());
               }
               Writer out;
               out.put_bool(result.accepted());
               out.put_u64(result.value);
               return out.take();
             });
}

void PpmsDecMarket::deposit_coins(ParticipantSession& sp) {
  obs::Span span("ppmsdec.deposit");
  const std::string aid = sp.account.aid;
  const std::uint64_t span_ticks =
      config_.max_deposit_delay - config_.min_deposit_delay + 1;

  if (link_.plan().enabled()) {
    // Faulty transport: every coin travels as its own reliable,
    // idempotent deposit call at its own random delay. Each scheduled
    // closure owns a fresh session link, so a late redelivery can never
    // dangle on this (stack-local) session; the call's retry loop pumps
    // the logical clock re-entrantly from inside the event while replies
    // are in flight.
    for (RootHidingSpend& coin : sp.hiding_coins) {
      const std::uint64_t delay =
          config_.min_deposit_delay + sp.rng.uniform(span_ticks);
      infra_.scheduler.schedule_after(
          delay, [this, aid, link = link_.new_session(),
                  wire = coin.serialize(params_)]() mutable {
            deposit_one(link, aid, /*hiding=*/true, wire);
          });
    }
    sp.hiding_coins.clear();
    for (SpendBundle& coin : sp.coins) {
      const std::uint64_t delay =
          config_.min_deposit_delay + sp.rng.uniform(span_ticks);
      infra_.scheduler.schedule_after(
          delay, [this, aid, link = link_.new_session(),
                  wire = coin.serialize(params_)]() mutable {
            deposit_one(link, aid, /*hiding=*/false, wire);
          });
    }
    sp.coins.clear();
    return;
  }

  // Lossless transport: the legacy batch path, byte for byte. Each coin
  // draws an independent random delay (eq. 11); coins landing on the same
  // tick travel to the bank as one batch. Ledger entries are stamped with
  // the logical clock, so timing — the observation stream the attacks
  // mine — is exactly the per-coin schedule.
  struct TickBatch {
    std::vector<RootHidingSpend> hiding;
    std::vector<SpendBundle> regular;
  };
  std::map<std::uint64_t, TickBatch> batches;
  for (RootHidingSpend& coin : sp.hiding_coins) {
    const std::uint64_t delay =
        config_.min_deposit_delay + sp.rng.uniform(span_ticks);
    batches[delay].hiding.push_back(std::move(coin));
  }
  sp.hiding_coins.clear();
  for (SpendBundle& coin : sp.coins) {
    const std::uint64_t delay =
        config_.min_deposit_delay + sp.rng.uniform(span_ticks);
    batches[delay].regular.push_back(std::move(coin));
  }
  sp.coins.clear();

  for (auto& [delay, batch] : batches) {
    infra_.scheduler.schedule_after(
        delay, [this, aid, batch = std::move(batch)]() {
          // SP -> MA, one wire message per coin (Table II accounting is
          // per coin, batching is a bank-side settlement concern).
          std::vector<RootHidingSpend> arrived_hiding;
          std::vector<SpendBundle> arrived_regular;
          std::string account;
          for (const RootHidingSpend& coin : batch.hiding) {
            obs::Span span("ppmsdec.deposit.coin");
            Writer msg;
            msg.put_string(aid);
            msg.put_bytes(coin.serialize(params_));
            const Bytes wire = infra_.traffic.send(
                Role::Participant, Role::Admin, msg.take());
            ScopedRole as_ma(Role::Admin);
            Reader r(wire);
            account = r.get_string();
            arrived_hiding.push_back(
                RootHidingSpend::deserialize(params_, r.get_bytes()));
          }
          for (const SpendBundle& coin : batch.regular) {
            obs::Span span("ppmsdec.deposit.coin");
            Writer msg;
            msg.put_string(aid);
            msg.put_bytes(coin.serialize(params_));
            const Bytes wire = infra_.traffic.send(
                Role::Participant, Role::Admin, msg.take());
            ScopedRole as_ma(Role::Admin);
            Reader r(wire);
            account = r.get_string();
            arrived_regular.push_back(
                SpendBundle::deserialize(params_, r.get_bytes()));
          }
          // MA: verify + double-spend check + ledger credit. The batch
          // runs inline here (no nested pool) — when settle() drains in
          // parallel, the tick's batches already run concurrently.
          ScopedRole as_ma(Role::Admin);
          const auto results = dec_bank_.deposit_batch(
              arrived_hiding, arrived_regular, nullptr);
          for (const auto& result : results) {
            if (result.accepted()) {
              infra_.bank.credit(account, result.value,
                                 infra_.scheduler.now());
            }
          }
        });
  }
}

PpmsDecMarket::PaymentCheck PpmsDecMarket::run_round(
    const std::string& jo_identity, const std::string& sp_identity,
    const std::string& description, std::uint64_t payment,
    const Bytes& report) {
  obs::Span session("ppmsdec.session");
  JobOwnerSession jo = register_job(jo_identity, description, payment);
  withdraw(jo);
  ParticipantSession sp = register_labor(sp_identity, jo);
  submit_payment(jo, sp);
  submit_data(sp, report);
  deliver_payment(sp);
  const PaymentCheck check = open_payment(sp);
  confirm_and_release_data(sp, jo);
  deposit_coins(sp);
  settle();
  return check;
}

}  // namespace ppms
