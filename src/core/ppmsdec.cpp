#include "core/ppmsdec.h"

#include <algorithm>
#include <stdexcept>

#include "obs/trace.h"
#include "rsa/hybrid.h"
#include "rsa/pss.h"
#include "util/serial.h"

namespace ppms {

namespace {

// Reuse the resident's single account when the identity already banks
// here (the one-account rule), otherwise open one.
ResidentAccount open_or_reuse(MarketInfrastructure& infra,
                              const std::string& identity,
                              std::uint64_t initial_balance) {
  if (const auto aid = infra.bank.find_account(identity)) {
    return ResidentAccount{identity, *aid};
  }
  return open_resident(infra, identity, initial_balance);
}

}  // namespace

PpmsDecMarket::PpmsDecMarket(DecParams params, PpmsDecConfig config,
                             std::uint64_t seed)
    : params_(std::move(params)),
      config_(config),
      rng_(seed),
      dec_bank_(params_, rng_) {}

Bytes PpmsDecMarket::payment_key(const Bytes& sp_pubkey) const {
  return sp_pubkey;
}

JobOwnerSession PpmsDecMarket::register_job(const std::string& identity,
                                            const std::string& description,
                                            std::uint64_t payment) {
  obs::Span span("ppmsdec.register_job");
  if (payment == 0 || payment > params_.root_value()) {
    throw std::invalid_argument("register_job: payment out of [1, 2^L]");
  }
  JobOwnerSession jo;
  jo.account = open_or_reuse(infra_, identity, config_.initial_balance);
  jo.payment = payment;
  {
    ScopedRole as_jo(Role::JobOwner);
    jo.session_keys = rsa_generate(rng_, config_.rsa_bits);
  }
  // JO -> MA: jd, w, rpk_jo   (eq. 1)
  Writer msg;
  msg.put_string(description);
  msg.put_u64(payment);
  msg.put_bytes(jo.session_keys.pub.serialize());
  const Bytes wire = infra_.traffic.send(Role::JobOwner, Role::Admin,
                                         msg.take());
  // MA -> BB   (eq. 2)
  Reader r(wire);
  JobProfile profile;
  profile.description = r.get_string();
  profile.payment = r.get_u64();
  profile.owner_pseudonym = r.get_bytes();
  jo.job_id = infra_.bulletin.publish(std::move(profile));
  return jo;
}

void PpmsDecMarket::withdraw(JobOwnerSession& jo) {
  obs::Span span("ppmsdec.withdraw");
  // JO side: fresh wallet, commitment and PoK.
  Bytes request;
  {
    ScopedRole as_jo(Role::JobOwner);
    jo.wallet = std::make_unique<DecWallet>(params_, rng_);
    const Bytes ctx = bytes_of("ppmsdec.withdraw");
    Writer msg;
    msg.put_bytes(ec_serialize(jo.wallet->commitment(), params_.pairing.p));
    msg.put_bytes(jo.wallet->prove_commitment(rng_, ctx).serialize());
    request = msg.take();
  }
  const Bytes wire =
      infra_.traffic.send(Role::JobOwner, Role::Admin, request);

  // MA side: verify PoK, debit the fixed denomination 2^L, issue the
  // blind CL certificate.
  Bytes reply;
  {
    ScopedRole as_ma(Role::Admin);
    Reader r(wire);
    const EcPoint commitment =
        ec_deserialize(r.get_bytes(), params_.pairing.p);
    const SchnorrProof pok = SchnorrProof::deserialize(r.get_bytes());
    const auto cert = dec_bank_.withdraw(
        commitment, pok, bytes_of("ppmsdec.withdraw"), rng_);
    if (!cert) {
      throw std::runtime_error("withdraw: proof of commitment rejected");
    }
    infra_.bank.debit(jo.account.aid, params_.root_value(),
                      infra_.scheduler.now());
    reply = cert->serialize(params_.pairing);
  }
  const Bytes cert_wire =
      infra_.traffic.send(Role::Admin, Role::JobOwner, reply);

  // JO installs the certificate (verifies it against its secret).
  ScopedRole as_jo(Role::JobOwner);
  jo.wallet->set_certificate(
      dec_bank_.public_key(),
      ClSignature::deserialize(params_.pairing, cert_wire));
}

ParticipantSession PpmsDecMarket::register_labor(
    const std::string& identity, const JobOwnerSession& jo) {
  obs::Span span("ppmsdec.register_labor");
  ParticipantSession sp;
  sp.account = open_or_reuse(infra_, identity, 0);
  sp.job_id = jo.job_id;
  {
    ScopedRole as_sp(Role::Participant);
    sp.session_keys = rsa_generate(rng_, config_.rsa_bits);
  }
  // SP -> MA: rpk_sp (eq. 5); MA -> JO (eq. 6).
  const Bytes pk = sp.session_keys.pub.serialize();
  infra_.traffic.send(Role::Participant, Role::Admin, pk);
  infra_.traffic.send(Role::Admin, Role::JobOwner, pk);
  return sp;
}

void PpmsDecMarket::submit_payment(JobOwnerSession& jo,
                                   const ParticipantSession& sp) {
  obs::Span span("ppmsdec.submit_payment");
  if (!jo.wallet || !jo.wallet->has_certificate()) {
    throw std::logic_error("submit_payment: withdraw first");
  }
  const Bytes sp_pubkey = sp.session_keys.pub.serialize();

  Bytes wire;
  {
    ScopedRole as_jo(Role::JobOwner);
    // Cash break per the configured strategy; zeros become fake coins.
    const std::vector<std::uint64_t> denoms =
        cash_break(config_.strategy, jo.payment, params_.L);
    const auto nodes = jo.wallet->allocate_denominations(denoms);
    if (!nodes) {
      throw std::runtime_error("submit_payment: wallet cannot cover w");
    }
    // One tagged coin per node: a root-hiding spend when configured and
    // possible (the whole-coin node has no hideable root), else a regular
    // spend. The tag byte is inside the encrypted entry, invisible to the
    // MA.
    std::vector<Bytes> real;
    std::size_t entry_cap = 0;
    for (const NodeIndex& node : *nodes) {
      Bytes coin;
      if (config_.hide_roots && node.depth >= 1) {
        coin.push_back(1);
        const RootHidingSpend spend = jo.wallet->spend_hiding(
            node, dec_bank_.public_key(), rng_, sp_pubkey);
        const Bytes body = spend.serialize(params_);
        coin.insert(coin.end(), body.begin(), body.end());
      } else {
        coin.push_back(0);
        const SpendBundle spend =
            jo.wallet->spend(node, dec_bank_.public_key(), rng_, sp_pubkey);
        const Bytes body = spend.serialize(params_);
        coin.insert(coin.end(), body.begin(), body.end());
      }
      real.push_back(std::move(coin));
      entry_cap = std::max(entry_cap, real.back().size());
    }
    // Designated-receiver signature on the SP's pseudonym (eq. 7).
    const Bytes sig = rsa_pss_sign(jo.session_keys.priv, sp_pubkey, rng_);
    entry_cap += 4;  // room for the length prefix
    const std::size_t fakes = denoms.size() - real.size();

    Writer payload;
    payload.put_u32(static_cast<std::uint32_t>(denoms.size()));
    payload.put_u32(static_cast<std::uint32_t>(entry_cap));
    for (const Bytes& coin : real) {
      Bytes entry;
      append_u32_be(entry, static_cast<std::uint32_t>(coin.size()));
      entry.insert(entry.end(), coin.begin(), coin.end());
      const Bytes pad = rng_.bytes(entry_cap - entry.size());
      entry.insert(entry.end(), pad.begin(), pad.end());
      payload.put_bytes(entry);
    }
    for (std::size_t i = 0; i < fakes; ++i) {
      payload.put_bytes(rng_.bytes(entry_cap));  // E(0)
    }
    payload.put_bytes(sig);

    Writer msg;
    msg.put_bytes(hybrid_encrypt(sp.session_keys.pub, payload.take(), rng_));
    msg.put_bytes(sp_pubkey);
    wire = msg.take();
  }
  infra_.traffic.send(Role::JobOwner, Role::Admin, wire);

  // MA files the designated-receiver ciphertext until the data arrives.
  ScopedRole as_ma(Role::Admin);
  Reader r(wire);
  const Bytes ciphertext = r.get_bytes();
  const Bytes key = r.get_bytes();
  pending_payments_[payment_key(key)] = ciphertext;
}

void PpmsDecMarket::submit_data(const ParticipantSession& sp,
                                const Bytes& report) {
  obs::Span span("ppmsdec.submit_data");
  Writer msg;
  msg.put_bytes(report);
  msg.put_bytes(sp.session_keys.pub.serialize());
  const Bytes wire =
      infra_.traffic.send(Role::Participant, Role::Admin, msg.take());
  Reader r(wire);
  const Bytes filed_report = r.get_bytes();
  const Bytes key = r.get_bytes();
  pending_reports_[payment_key(key)] = filed_report;
}

void PpmsDecMarket::deliver_payment(ParticipantSession& sp) {
  obs::Span span("ppmsdec.deliver_payment");
  const Bytes key = payment_key(sp.session_keys.pub.serialize());
  if (pending_reports_.count(key) == 0) {
    throw std::logic_error("deliver_payment: no data report on file");
  }
  const auto it = pending_payments_.find(key);
  if (it == pending_payments_.end()) {
    throw std::logic_error("deliver_payment: no payment on file");
  }
  sp.payment_ciphertext =
      infra_.traffic.send(Role::Admin, Role::Participant, it->second);
}

PpmsDecMarket::PaymentCheck PpmsDecMarket::open_payment(
    ParticipantSession& sp) {
  obs::Span span("ppmsdec.open_payment");
  ScopedRole as_sp(Role::Participant);
  PaymentCheck check;
  const Bytes payload =
      hybrid_decrypt(sp.session_keys.priv, sp.payment_ciphertext);
  Reader r(payload);
  const std::uint32_t n_entries = r.get_u32();
  const std::uint32_t entry_cap = r.get_u32();
  std::vector<Bytes> entries;
  for (std::uint32_t i = 0; i < n_entries; ++i) {
    entries.push_back(r.get_bytes());
  }
  const Bytes sig = r.get_bytes();

  // Signature of the job owner over our pseudonym, using the pseudonymous
  // key published on the bulletin board.
  const auto profile = infra_.bulletin.get(sp.job_id);
  if (!profile) throw std::logic_error("open_payment: unknown job");
  const RsaPublicKey jo_pub =
      RsaPublicKey::deserialize(profile->owner_pseudonym);
  const Bytes my_pubkey = sp.session_keys.pub.serialize();
  check.signature_ok = rsa_pss_verify(jo_pub, my_pubkey, sig);

  // Coins: verify each entry; anything that does not parse into a valid
  // spend designated to us is a fake E(0).
  for (const Bytes& entry : entries) {
    if (entry.size() != entry_cap) {
      ++check.fake_coins;
      continue;
    }
    bool good = false;
    try {
      const std::uint32_t len = read_u32_be(entry, 0);
      if (len >= 1 && len <= entry_cap - 4) {
        const std::uint8_t tag = entry[4];
        const Bytes body(entry.begin() + 5, entry.begin() + 4 + len);
        if (tag == 0) {
          SpendBundle bundle = SpendBundle::deserialize(params_, body);
          good = bundle.context == my_pubkey &&
                 verify_spend(params_, dec_bank_.public_key(), bundle);
          if (good) {
            check.value += params_.node_value(bundle.node.depth);
            sp.coins.push_back(std::move(bundle));
          }
        } else if (tag == 1) {
          RootHidingSpend bundle =
              RootHidingSpend::deserialize(params_, body);
          good = bundle.context == my_pubkey &&
                 verify_root_hiding_spend(params_, dec_bank_.public_key(),
                                          bundle);
          if (good) {
            check.value += params_.node_value(bundle.node.depth);
            sp.hiding_coins.push_back(std::move(bundle));
          }
        }
      }
    } catch (const std::exception&) {
      good = false;
    }
    if (good) {
      ++check.real_coins;
    } else {
      ++check.fake_coins;
    }
  }
  sp.verified_value = check.value;
  sp.fake_coins_seen = check.fake_coins;
  return check;
}

void PpmsDecMarket::confirm_and_release_data(const ParticipantSession& sp,
                                             JobOwnerSession& jo) {
  obs::Span span("ppmsdec.confirm");
  const Bytes key = payment_key(sp.session_keys.pub.serialize());
  const auto it = pending_reports_.find(key);
  if (it == pending_reports_.end()) {
    throw std::logic_error("confirm_and_release_data: no report on file");
  }
  // SP -> MA: confirmation; MA -> JO: the report (alg. line 8).
  infra_.traffic.send(Role::Participant, Role::Admin, bytes_of("confirm"));
  jo.received_reports.push_back(
      infra_.traffic.send(Role::Admin, Role::JobOwner, it->second));
}

void PpmsDecMarket::deposit_coins(ParticipantSession& sp) {
  obs::Span span("ppmsdec.deposit");
  // Each coin goes to the bank after an independent random delay
  // (eq. 11); ledger entries are stamped with the logical clock.
  for (RootHidingSpend& coin : sp.hiding_coins) {
    RootHidingSpend to_deposit = std::move(coin);
    const std::string aid = sp.account.aid;
    infra_.scheduler.schedule_random(
        rng_, config_.min_deposit_delay, config_.max_deposit_delay,
        [this, aid, bundle = std::move(to_deposit)]() {
          obs::Span span("ppmsdec.deposit.coin");
          Writer msg;
          msg.put_string(aid);
          msg.put_bytes(bundle.serialize(params_));
          const Bytes wire = infra_.traffic.send(Role::Participant,
                                                 Role::Admin, msg.take());
          ScopedRole as_ma(Role::Admin);
          Reader r(wire);
          const std::string account = r.get_string();
          const RootHidingSpend received =
              RootHidingSpend::deserialize(params_, r.get_bytes());
          const auto result = dec_bank_.deposit_hiding(received);
          if (result.accepted) {
            infra_.bank.credit(account, result.value,
                               infra_.scheduler.now());
          }
        });
  }
  sp.hiding_coins.clear();
  for (SpendBundle& coin : sp.coins) {
    SpendBundle to_deposit = std::move(coin);
    const std::string aid = sp.account.aid;
    infra_.scheduler.schedule_random(
        rng_, config_.min_deposit_delay, config_.max_deposit_delay,
        [this, aid, bundle = std::move(to_deposit)]() {
          obs::Span span("ppmsdec.deposit.coin");
          Writer msg;
          msg.put_string(aid);
          msg.put_bytes(bundle.serialize(params_));
          const Bytes wire = infra_.traffic.send(Role::Participant,
                                                 Role::Admin, msg.take());
          ScopedRole as_ma(Role::Admin);
          Reader r(wire);
          const std::string account = r.get_string();
          const SpendBundle received =
              SpendBundle::deserialize(params_, r.get_bytes());
          const auto result = dec_bank_.deposit(received);
          if (result.accepted) {
            infra_.bank.credit(account, result.value,
                               infra_.scheduler.now());
          }
        });
  }
  sp.coins.clear();
}

PpmsDecMarket::PaymentCheck PpmsDecMarket::run_round(
    const std::string& jo_identity, const std::string& sp_identity,
    const std::string& description, std::uint64_t payment,
    const Bytes& report) {
  obs::Span session("ppmsdec.session");
  JobOwnerSession jo = register_job(jo_identity, description, payment);
  withdraw(jo);
  ParticipantSession sp = register_labor(sp_identity, jo);
  submit_payment(jo, sp);
  submit_data(sp, report);
  deliver_payment(sp);
  const PaymentCheck check = open_payment(sp);
  confirm_and_release_data(sp, jo);
  deposit_coins(sp);
  settle();
  return check;
}

}  // namespace ppms
