#include "core/ppmsdec.h"

#include <algorithm>

#include "market/error.h"
#include "obs/trace.h"
#include "rsa/hybrid.h"
#include "rsa/pss.h"
#include "util/serial.h"
#include "util/thread_pool.h"

namespace ppms {

namespace {

// Reuse the resident's single account when the identity already banks
// here (the one-account rule), otherwise open one. Two sessions may race
// to open the same identity's account; the loser of the race adopts the
// winner's AID.
ResidentAccount open_or_reuse(MarketInfrastructure& infra,
                              const std::string& identity,
                              std::uint64_t initial_balance) {
  if (const auto aid = infra.bank.find_account(identity)) {
    return ResidentAccount{identity, *aid};
  }
  try {
    return open_resident(infra, identity, initial_balance);
  } catch (const MarketError& e) {
    if (e.code() != MarketErrc::kDuplicateAccount) throw;
    return ResidentAccount{identity, *infra.bank.find_account(identity)};
  }
}

}  // namespace

PpmsDecMarket::PpmsDecMarket(DecParams params, PpmsDecConfig config,
                             std::uint64_t seed)
    : params_(std::move(params)),
      config_(config),
      rng_(seed),
      dec_bank_(params_, rng_) {
  if (config_.settle_threads > 0) {
    settle_pool_ = std::make_unique<ThreadPool>(config_.settle_threads);
  }
}

PpmsDecMarket::~PpmsDecMarket() = default;

Bytes PpmsDecMarket::payment_key(const Bytes& sp_pubkey) const {
  return sp_pubkey;
}

std::uint64_t PpmsDecMarket::fresh_seed() {
  std::lock_guard lock(rng_mu_);
  return rng_.next_u64();
}

void PpmsDecMarket::settle() {
  if (settle_pool_) {
    infra_.scheduler.run_all(*settle_pool_);
  } else {
    infra_.scheduler.run_all();
  }
}

JobOwnerSession PpmsDecMarket::register_job(const std::string& identity,
                                            const std::string& description,
                                            std::uint64_t payment) {
  obs::Span span("ppmsdec.register_job");
  if (payment == 0 || payment > params_.root_value()) {
    throw MarketError(MarketErrc::kPaymentOutOfRange,
                      "register_job: payment out of [1, 2^L]");
  }
  JobOwnerSession jo;
  jo.rng = SecureRandom(fresh_seed());
  jo.account = open_or_reuse(infra_, identity, config_.initial_balance);
  jo.payment = payment;
  {
    ScopedRole as_jo(Role::JobOwner);
    jo.session_keys = rsa_generate(jo.rng, config_.rsa_bits);
  }
  // JO -> MA: jd, w, rpk_jo   (eq. 1)
  Writer msg;
  msg.put_string(description);
  msg.put_u64(payment);
  msg.put_bytes(jo.session_keys.pub.serialize());
  const Bytes wire = infra_.traffic.send(Role::JobOwner, Role::Admin,
                                         msg.take());
  // MA -> BB   (eq. 2)
  Reader r(wire);
  JobProfile profile;
  profile.description = r.get_string();
  profile.payment = r.get_u64();
  profile.owner_pseudonym = r.get_bytes();
  jo.job_id = infra_.bulletin.publish(std::move(profile));
  return jo;
}

void PpmsDecMarket::withdraw(JobOwnerSession& jo) {
  obs::Span span("ppmsdec.withdraw");
  // JO side: fresh wallet, commitment and PoK.
  Bytes request;
  {
    ScopedRole as_jo(Role::JobOwner);
    jo.wallet = std::make_unique<DecWallet>(params_, jo.rng);
    const Bytes ctx = bytes_of("ppmsdec.withdraw");
    Writer msg;
    msg.put_bytes(ec_serialize(jo.wallet->commitment(), params_.pairing.p));
    msg.put_bytes(jo.wallet->prove_commitment(jo.rng, ctx).serialize());
    request = msg.take();
  }
  const Bytes wire =
      infra_.traffic.send(Role::JobOwner, Role::Admin, std::move(request));

  // MA side: verify PoK, debit the fixed denomination 2^L, issue the
  // blind CL certificate.
  Bytes reply;
  {
    ScopedRole as_ma(Role::Admin);
    Reader r(wire);
    const EcPoint commitment =
        ec_deserialize(r.get_bytes(), params_.pairing.p);
    const SchnorrProof pok = SchnorrProof::deserialize(r.get_bytes());
    std::optional<ClSignature> cert;
    {
      // The MA's blind signing draws from the master stream.
      std::lock_guard rng_lock(rng_mu_);
      cert = dec_bank_.withdraw(commitment, pok,
                                bytes_of("ppmsdec.withdraw"), rng_);
    }
    if (!cert) {
      throw MarketError(MarketErrc::kWithdrawRejected,
                        "withdraw: proof of commitment rejected");
    }
    infra_.bank.debit(jo.account.aid, params_.root_value(),
                      infra_.scheduler.now());
    reply = cert->serialize(params_.pairing);
  }
  const Bytes cert_wire =
      infra_.traffic.send(Role::Admin, Role::JobOwner, std::move(reply));

  // JO installs the certificate (verifies it against its secret).
  ScopedRole as_jo(Role::JobOwner);
  jo.wallet->set_certificate(
      dec_bank_.public_key(),
      ClSignature::deserialize(params_.pairing, cert_wire));
}

ParticipantSession PpmsDecMarket::register_labor(
    const std::string& identity, const JobOwnerSession& jo) {
  obs::Span span("ppmsdec.register_labor");
  ParticipantSession sp;
  sp.rng = SecureRandom(fresh_seed());
  sp.account = open_or_reuse(infra_, identity, 0);
  sp.job_id = jo.job_id;
  {
    ScopedRole as_sp(Role::Participant);
    sp.session_keys = rsa_generate(sp.rng, config_.rsa_bits);
  }
  // SP -> MA: rpk_sp (eq. 5); MA -> JO (eq. 6).
  const Bytes pk = sp.session_keys.pub.serialize();
  infra_.traffic.send(Role::Participant, Role::Admin, pk);
  infra_.traffic.send(Role::Admin, Role::JobOwner, pk);
  return sp;
}

void PpmsDecMarket::submit_payment(JobOwnerSession& jo,
                                   const ParticipantSession& sp) {
  obs::Span span("ppmsdec.submit_payment");
  if (!jo.wallet || !jo.wallet->has_certificate()) {
    throw MarketError(MarketErrc::kProtocolOrder,
                      "submit_payment: withdraw first");
  }
  const Bytes sp_pubkey = sp.session_keys.pub.serialize();

  Bytes wire;
  {
    ScopedRole as_jo(Role::JobOwner);
    // Cash break per the configured strategy; zeros become fake coins.
    const std::vector<std::uint64_t> denoms =
        cash_break(config_.strategy, jo.payment, params_.L);
    const auto nodes = jo.wallet->allocate_denominations(denoms);
    if (!nodes) {
      throw MarketError(MarketErrc::kWalletExhausted,
                        "submit_payment: wallet cannot cover w");
    }
    // One tagged coin per node: a root-hiding spend when configured and
    // possible (the whole-coin node has no hideable root), else a regular
    // spend. The tag byte is inside the encrypted entry, invisible to the
    // MA.
    std::vector<Bytes> real;
    std::size_t entry_cap = 0;
    for (const NodeIndex& node : *nodes) {
      Bytes coin;
      if (config_.hide_roots && node.depth >= 1) {
        coin.push_back(1);
        const RootHidingSpend spend = jo.wallet->spend_hiding(
            node, dec_bank_.public_key(), jo.rng, sp_pubkey);
        const Bytes body = spend.serialize(params_);
        coin.insert(coin.end(), body.begin(), body.end());
      } else {
        coin.push_back(0);
        const SpendBundle spend = jo.wallet->spend(
            node, dec_bank_.public_key(), jo.rng, sp_pubkey);
        const Bytes body = spend.serialize(params_);
        coin.insert(coin.end(), body.begin(), body.end());
      }
      real.push_back(std::move(coin));
      entry_cap = std::max(entry_cap, real.back().size());
    }
    // Designated-receiver signature on the SP's pseudonym (eq. 7).
    const Bytes sig = rsa_pss_sign(jo.session_keys.priv, sp_pubkey, jo.rng);
    entry_cap += 4;  // room for the length prefix
    const std::size_t fakes = denoms.size() - real.size();

    Writer payload;
    payload.put_u32(static_cast<std::uint32_t>(denoms.size()));
    payload.put_u32(static_cast<std::uint32_t>(entry_cap));
    for (const Bytes& coin : real) {
      Bytes entry;
      append_u32_be(entry, static_cast<std::uint32_t>(coin.size()));
      entry.insert(entry.end(), coin.begin(), coin.end());
      const Bytes pad = jo.rng.bytes(entry_cap - entry.size());
      entry.insert(entry.end(), pad.begin(), pad.end());
      payload.put_bytes(entry);
    }
    for (std::size_t i = 0; i < fakes; ++i) {
      payload.put_bytes(jo.rng.bytes(entry_cap));  // E(0)
    }
    payload.put_bytes(sig);

    Writer msg;
    msg.put_bytes(
        hybrid_encrypt(sp.session_keys.pub, payload.take(), jo.rng));
    msg.put_bytes(sp_pubkey);
    wire = msg.take();
  }
  const Bytes filed =
      infra_.traffic.send(Role::JobOwner, Role::Admin, std::move(wire));

  // MA files the designated-receiver ciphertext until the data arrives.
  ScopedRole as_ma(Role::Admin);
  Reader r(filed);
  const Bytes ciphertext = r.get_bytes();
  const Bytes key = r.get_bytes();
  std::lock_guard lock(pending_mu_);
  pending_payments_[payment_key(key)] = ciphertext;
}

void PpmsDecMarket::submit_data(const ParticipantSession& sp,
                                const Bytes& report) {
  obs::Span span("ppmsdec.submit_data");
  Writer msg;
  msg.put_bytes(report);
  msg.put_bytes(sp.session_keys.pub.serialize());
  const Bytes wire =
      infra_.traffic.send(Role::Participant, Role::Admin, msg.take());
  Reader r(wire);
  const Bytes filed_report = r.get_bytes();
  const Bytes key = r.get_bytes();
  std::lock_guard lock(pending_mu_);
  pending_reports_[payment_key(key)] = filed_report;
}

void PpmsDecMarket::deliver_payment(ParticipantSession& sp) {
  obs::Span span("ppmsdec.deliver_payment");
  const Bytes key = payment_key(sp.session_keys.pub.serialize());
  Bytes ciphertext;
  {
    std::lock_guard lock(pending_mu_);
    if (pending_reports_.count(key) == 0) {
      throw MarketError(MarketErrc::kProtocolOrder,
                        "deliver_payment: no data report on file");
    }
    const auto it = pending_payments_.find(key);
    if (it == pending_payments_.end()) {
      throw MarketError(MarketErrc::kProtocolOrder,
                        "deliver_payment: no payment on file");
    }
    ciphertext = it->second;
  }
  sp.payment_ciphertext = infra_.traffic.send(Role::Admin, Role::Participant,
                                              std::move(ciphertext));
}

PpmsDecMarket::PaymentCheck PpmsDecMarket::open_payment(
    ParticipantSession& sp) {
  obs::Span span("ppmsdec.open_payment");
  ScopedRole as_sp(Role::Participant);
  PaymentCheck check;
  const Bytes payload =
      hybrid_decrypt(sp.session_keys.priv, sp.payment_ciphertext);
  Reader r(payload);
  const std::uint32_t n_entries = r.get_u32();
  const std::uint32_t entry_cap = r.get_u32();
  std::vector<Bytes> entries;
  for (std::uint32_t i = 0; i < n_entries; ++i) {
    entries.push_back(r.get_bytes());
  }
  const Bytes sig = r.get_bytes();

  // Signature of the job owner over our pseudonym, using the pseudonymous
  // key published on the bulletin board.
  const auto profile = infra_.bulletin.get(sp.job_id);
  if (!profile) {
    throw MarketError(MarketErrc::kUnknownJob, "open_payment: unknown job");
  }
  const RsaPublicKey jo_pub =
      RsaPublicKey::deserialize(profile->owner_pseudonym);
  const Bytes my_pubkey = sp.session_keys.pub.serialize();
  check.signature_ok = rsa_pss_verify(jo_pub, my_pubkey, sig);

  // Coins: verify each entry; anything that does not parse into a valid
  // spend designated to us is a fake E(0).
  for (const Bytes& entry : entries) {
    if (entry.size() != entry_cap) {
      ++check.fake_coins;
      continue;
    }
    bool good = false;
    try {
      const std::uint32_t len = read_u32_be(entry, 0);
      if (len >= 1 && len <= entry_cap - 4) {
        const std::uint8_t tag = entry[4];
        const Bytes body(entry.begin() + 5, entry.begin() + 4 + len);
        if (tag == 0) {
          SpendBundle bundle = SpendBundle::deserialize(params_, body);
          good = bundle.context == my_pubkey &&
                 verify_spend(params_, dec_bank_.public_key(), bundle);
          if (good) {
            check.value += params_.node_value(bundle.node.depth);
            sp.coins.push_back(std::move(bundle));
          }
        } else if (tag == 1) {
          RootHidingSpend bundle =
              RootHidingSpend::deserialize(params_, body);
          good = bundle.context == my_pubkey &&
                 verify_root_hiding_spend(params_, dec_bank_.public_key(),
                                          bundle);
          if (good) {
            check.value += params_.node_value(bundle.node.depth);
            sp.hiding_coins.push_back(std::move(bundle));
          }
        }
      }
    } catch (const std::exception&) {
      good = false;
    }
    if (good) {
      ++check.real_coins;
    } else {
      ++check.fake_coins;
    }
  }
  sp.verified_value = check.value;
  sp.fake_coins_seen = check.fake_coins;
  return check;
}

void PpmsDecMarket::confirm_and_release_data(const ParticipantSession& sp,
                                             JobOwnerSession& jo) {
  obs::Span span("ppmsdec.confirm");
  const Bytes key = payment_key(sp.session_keys.pub.serialize());
  Bytes report;
  {
    std::lock_guard lock(pending_mu_);
    const auto it = pending_reports_.find(key);
    if (it == pending_reports_.end()) {
      throw MarketError(MarketErrc::kProtocolOrder,
                        "confirm_and_release_data: no report on file");
    }
    report = it->second;
  }
  // SP -> MA: confirmation; MA -> JO: the report (alg. line 8).
  infra_.traffic.send(Role::Participant, Role::Admin, bytes_of("confirm"));
  jo.received_reports.push_back(
      infra_.traffic.send(Role::Admin, Role::JobOwner, std::move(report)));
}

void PpmsDecMarket::deposit_coins(ParticipantSession& sp) {
  obs::Span span("ppmsdec.deposit");
  // Each coin draws an independent random delay (eq. 11); coins landing
  // on the same tick travel to the bank as one batch. Ledger entries are
  // stamped with the logical clock, so timing — the observation stream the
  // attacks mine — is exactly the per-coin schedule.
  struct TickBatch {
    std::vector<RootHidingSpend> hiding;
    std::vector<SpendBundle> regular;
  };
  std::map<std::uint64_t, TickBatch> batches;
  const std::uint64_t span_ticks =
      config_.max_deposit_delay - config_.min_deposit_delay + 1;
  for (RootHidingSpend& coin : sp.hiding_coins) {
    const std::uint64_t delay =
        config_.min_deposit_delay + sp.rng.uniform(span_ticks);
    batches[delay].hiding.push_back(std::move(coin));
  }
  sp.hiding_coins.clear();
  for (SpendBundle& coin : sp.coins) {
    const std::uint64_t delay =
        config_.min_deposit_delay + sp.rng.uniform(span_ticks);
    batches[delay].regular.push_back(std::move(coin));
  }
  sp.coins.clear();

  const std::string aid = sp.account.aid;
  for (auto& [delay, batch] : batches) {
    infra_.scheduler.schedule_after(
        delay, [this, aid, batch = std::move(batch)]() {
          // SP -> MA, one wire message per coin (Table II accounting is
          // per coin, batching is a bank-side settlement concern).
          std::vector<RootHidingSpend> arrived_hiding;
          std::vector<SpendBundle> arrived_regular;
          std::string account;
          for (const RootHidingSpend& coin : batch.hiding) {
            obs::Span span("ppmsdec.deposit.coin");
            Writer msg;
            msg.put_string(aid);
            msg.put_bytes(coin.serialize(params_));
            const Bytes wire = infra_.traffic.send(
                Role::Participant, Role::Admin, msg.take());
            ScopedRole as_ma(Role::Admin);
            Reader r(wire);
            account = r.get_string();
            arrived_hiding.push_back(
                RootHidingSpend::deserialize(params_, r.get_bytes()));
          }
          for (const SpendBundle& coin : batch.regular) {
            obs::Span span("ppmsdec.deposit.coin");
            Writer msg;
            msg.put_string(aid);
            msg.put_bytes(coin.serialize(params_));
            const Bytes wire = infra_.traffic.send(
                Role::Participant, Role::Admin, msg.take());
            ScopedRole as_ma(Role::Admin);
            Reader r(wire);
            account = r.get_string();
            arrived_regular.push_back(
                SpendBundle::deserialize(params_, r.get_bytes()));
          }
          // MA: verify + double-spend check + ledger credit. The batch
          // runs inline here (no nested pool) — when settle() drains in
          // parallel, the tick's batches already run concurrently.
          ScopedRole as_ma(Role::Admin);
          const auto results = dec_bank_.deposit_batch(
              arrived_hiding, arrived_regular, nullptr);
          for (const auto& result : results) {
            if (result.accepted) {
              infra_.bank.credit(account, result.value,
                                 infra_.scheduler.now());
            }
          }
        });
  }
}

PpmsDecMarket::PaymentCheck PpmsDecMarket::run_round(
    const std::string& jo_identity, const std::string& sp_identity,
    const std::string& description, std::uint64_t payment,
    const Bytes& report) {
  obs::Span session("ppmsdec.session");
  JobOwnerSession jo = register_job(jo_identity, description, payment);
  withdraw(jo);
  ParticipantSession sp = register_labor(sp_identity, jo);
  submit_payment(jo, sp);
  submit_data(sp, report);
  deliver_payment(sp);
  const PaymentCheck check = open_payment(sp);
  confirm_and_release_data(sp, jo);
  deposit_coins(sp);
  settle();
  return check;
}

}  // namespace ppms
