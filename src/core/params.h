// Ready-made parameter presets tying the whole stack together.
//
// `fast_dec_params` is sized for tests and examples (seconds); the paper's
// figure benches call dec_setup directly with their own sweeps.
//
// SECURITY NOTE: the Cunningham-chain primes reachable in practice are
// small (the longest published first-kind chain starts near 2^57), so the
// serial-number groups — and with them the spend-proof soundness — are
// research-scale, not production-scale. This is inherent to the paper's
// construction (its own Fig 2 computes exactly these chains); the paper's
// market remains a research artifact in this respect and so does this
// reproduction.
#pragma once

#include "core/ppmsdec.h"
#include "core/ppmspbs.h"

namespace ppms {

/// Table-chain DEC parameters with a compact pairing field — suitable for
/// unit tests, examples and protocol-level benchmarks.
DecParams fast_dec_params(std::uint64_t seed, std::size_t L = 3,
                          std::size_t pairing_bits = 128);

/// A PPMSdec market over fast parameters, with small RSA keys so examples
/// start quickly. `strategy` defaults to EPCBA, the paper's best break.
PpmsDecMarket make_fast_dec_market(
    std::uint64_t seed, std::size_t L = 3,
    CashBreakStrategy strategy = CashBreakStrategy::kEpcba);

/// A PPMSpbs market with small RSA keys.
PpmsPbsMarket make_fast_pbs_market(std::uint64_t seed);

}  // namespace ppms
