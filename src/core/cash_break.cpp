#include "core/cash_break.h"

#include <bit>
#include <set>

#include "market/error.h"

namespace ppms {

namespace {

void check_amount(std::uint64_t w, std::size_t L) {
  if (L >= 63) {
    throw MarketError(MarketErrc::kPaymentOutOfRange,
                      "cash_break: L too large");
  }
  if (w == 0 || w > (1ull << L)) {
    throw MarketError(MarketErrc::kPaymentOutOfRange,
                      "cash_break: w out of [1, 2^L]");
  }
}

// The L+1 binary denominations of value v (v <= 2^L): entry i-1 holds
// 2^{i-1}·B(v)[i] in the paper's 1-based notation.
std::vector<std::uint64_t> binary_denominations(std::uint64_t v,
                                                std::size_t L) {
  std::vector<std::uint64_t> out(L + 1, 0);
  for (std::size_t i = 0; i <= L; ++i) {
    if ((v >> i) & 1) out[i] = 1ull << i;
  }
  return out;
}

}  // namespace

const char* cash_break_name(CashBreakStrategy strategy) {
  switch (strategy) {
    case CashBreakStrategy::kNone: return "none";
    case CashBreakStrategy::kUnitary: return "unitary";
    case CashBreakStrategy::kPcba: return "PCBA";
    case CashBreakStrategy::kEpcba: return "EPCBA";
  }
  return "?";
}

std::vector<std::uint64_t> cash_break_unitary(std::uint64_t w,
                                              std::size_t L) {
  check_amount(w, L);
  std::vector<std::uint64_t> out(1ull << L, 0);
  for (std::uint64_t i = 0; i < w; ++i) out[i] = 1;
  return out;
}

std::vector<std::uint64_t> cash_break_pcba(std::uint64_t w, std::size_t L) {
  check_amount(w, L);
  return binary_denominations(w, L);
}

std::vector<std::uint64_t> cash_break_epcba(std::uint64_t w, std::size_t L) {
  check_amount(w, L);
  const auto a = static_cast<std::size_t>(std::popcount(w));
  const auto a_prime = static_cast<std::size_t>(std::popcount(w - 1));
  std::vector<std::uint64_t> out;
  if (a <= a_prime && w > 1) {
    // Representation of w-1 plus a unit coin: at least as many real coins.
    out = binary_denominations(w - 1, L);
    out.push_back(1);
  } else {
    out = binary_denominations(w, L);
    out.push_back(0);  // fake coin keeps the message length uniform
  }
  return out;
}

std::vector<std::uint64_t> cash_break(CashBreakStrategy strategy,
                                      std::uint64_t w, std::size_t L) {
  switch (strategy) {
    case CashBreakStrategy::kNone:
      check_amount(w, L);
      return {w};
    case CashBreakStrategy::kUnitary:
      return cash_break_unitary(w, L);
    case CashBreakStrategy::kPcba:
      return cash_break_pcba(w, L);
    case CashBreakStrategy::kEpcba:
      return cash_break_epcba(w, L);
  }
  throw MarketError(MarketErrc::kPaymentOutOfRange,
                    "cash_break: unknown strategy");
}

std::vector<std::uint64_t> covered_values(
    const std::vector<std::uint64_t>& denominations) {
  std::set<std::uint64_t> sums{0};
  for (const std::uint64_t d : denominations) {
    if (d == 0) continue;
    std::set<std::uint64_t> next = sums;
    for (const std::uint64_t s : sums) next.insert(s + d);
    sums = std::move(next);
  }
  sums.erase(0);
  return std::vector<std::uint64_t>(sums.begin(), sums.end());
}

}  // namespace ppms
