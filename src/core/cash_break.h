// Cash-break algorithms (paper Section IV-C).
//
// Breaking a payment w into smaller denominations before sending defeats
// the MA's *denomination attack*: if a job pays w and the bank later sees
// a deposit stream summing recognizably to w, it can link the depositing
// account to the job. Three strategies, in increasing efficiency:
//
//  * Unitary  — w coins of value 1 plus (2^L - w) fake coins; the deposit
//    stream is maximally ambiguous but O(2^L) coins must move (the
//    original PPMSdec design).
//  * PCBA  (Algorithm 2) — follow the binary representation of w: L+1
//    coins (zeros are fake), subset sums cover every value the set bits
//    allow.
//  * EPCBA (Algorithm 3) — like PCBA but chooses between w and (w-1)+1 to
//    maximize the number of real coins, widening the covered value set.
//
// A denomination of 0 denotes a *fake coin* E(0): a random blob the same
// size as a real coin that pads the payment to fixed length so its total
// cannot be inferred from the message size.
#pragma once

#include <cstdint>
#include <vector>

namespace ppms {

enum class CashBreakStrategy {
  kNone,     ///< single coin of value w (vulnerable baseline). NOTE: coin
             ///< tree nodes only carry power-of-two values, so a PPMSdec
             ///< payment under kNone requires w to be a power of two —
             ///< one more reason every deployment breaks its cash.
  kUnitary,  ///< w ones + (2^L - w) fakes
  kPcba,     ///< Algorithm 2
  kEpcba,    ///< Algorithm 3
};

const char* cash_break_name(CashBreakStrategy strategy);

/// Unitary break: 2^L entries, first w are 1, rest are 0 (fakes).
/// Requires 1 <= w <= 2^L.
std::vector<std::uint64_t> cash_break_unitary(std::uint64_t w,
                                              std::size_t L);

/// Algorithm 2 (PCBA): L+1 denominations w_i = 2^{i-1}·B(w)[i]; zeros are
/// fake coins. Sum of non-zeros == w. Requires 1 <= w <= 2^L.
std::vector<std::uint64_t> cash_break_pcba(std::uint64_t w, std::size_t L);

/// Algorithm 3 (EPCBA): L+2 denominations; uses the representation of
/// w-1 plus a unit coin whenever that yields at least as many real coins.
std::vector<std::uint64_t> cash_break_epcba(std::uint64_t w, std::size_t L);

/// Dispatch on strategy (kNone yields the single denomination {w} padded
/// with nothing).
std::vector<std::uint64_t> cash_break(CashBreakStrategy strategy,
                                      std::uint64_t w, std::size_t L);

/// The set of values expressible as a subset sum of the real (non-zero)
/// denominations — the paper's measure of how well a break blurs the
/// denomination attack. Returned sorted ascending, without 0.
std::vector<std::uint64_t> covered_values(
    const std::vector<std::uint64_t>& denominations);

}  // namespace ppms
