// Cunningham chains of the first kind: sequences o_1, o_2, ..., o_k of
// primes with o_{i+1} = 2*o_i + 1.
//
// The DEC Setup (Section VI-A of the paper) needs such a chain of length
// L+1 to build the group tower G_1 ... G_{L+1}; finding it dominates setup
// time and produces the blow-up in Fig 2. Three acquisition strategies are
// provided:
//
//  * `extend_chain`        — measure how far a given start extends.
//  * `search_chain`        — genuine deterministic search by enumeration
//                            from a start value, with small-prime sieving
//                            across the whole chain (this is what Fig 2
//                            times).
//  * `known_chain_start`   — published minimal chain starts (lengths up to
//                            14); callers re-verify every element with
//                            Miller-Rabin, so correctness never rests on
//                            the table.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bigint/bigint.h"
#include "util/rng.h"

namespace ppms {

struct CunninghamChain {
  /// primes[i+1] == 2 * primes[i] + 1, all probable primes.
  std::vector<Bigint> primes;

  std::size_t length() const { return primes.size(); }
};

/// Extend `start` into the longest first-kind chain it begins (capped at
/// `max_length`). The result may be empty if `start` is not prime.
CunninghamChain extend_chain(const Bigint& start, std::size_t max_length,
                             SecureRandom& rng);

/// Deterministic search: enumerate odd candidates upward from `from` until
/// one starts a chain of at least `length`, or until `max_candidates`
/// values have been tried (returns nullopt on exhaustion).
///
/// Candidates are prefiltered by trial-dividing every element of the
/// prospective chain by the small primes before any Miller-Rabin runs; this
/// is what makes length-8 searches (start near 1.9e7) finish in seconds.
std::optional<CunninghamChain> search_chain(const Bigint& from,
                                            std::size_t length,
                                            std::uint64_t max_candidates,
                                            SecureRandom& rng);

/// Randomized search at a given bit size (used by the Fig 2 bench to show
/// cost growth with chain length at fixed size). Returns nullopt after
/// `max_candidates` random starting points.
std::optional<CunninghamChain> search_chain_random(
    SecureRandom& rng, std::size_t start_bits, std::size_t length,
    std::uint64_t max_candidates);

/// Published minimal starting prime of a first-kind chain of length >=
/// `length` (lengths 1..14). Throws std::out_of_range beyond the table.
Bigint known_chain_start(std::size_t length);

/// Chain of length `length` from the published table, re-verified
/// element-by-element with Miller-Rabin. Throws std::runtime_error if
/// verification fails (i.e. the table is wrong).
CunninghamChain table_chain(std::size_t length, SecureRandom& rng);

}  // namespace ppms
