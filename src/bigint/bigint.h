// Arbitrary-precision signed integers, implemented from scratch.
//
// This is the numeric substrate for every cryptographic primitive in the
// library (RSA, blind signatures, the pairing, ZK proofs, divisible e-cash).
// Representation is sign-magnitude over little-endian 32-bit limbs with
// 64-bit intermediates; multiplication switches to Karatsuba above a
// threshold and division is Knuth's Algorithm D.
//
// Conventions:
//  * Zero is canonical: empty limb vector, non-negative sign.
//  * operator% follows C++ truncated semantics (sign of the dividend);
//    `mod()` returns the mathematical residue in [0, |m|), which is what
//    all modular-arithmetic callers use.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/bytes.h"
#include "util/rng.h"

namespace ppms {

class Bigint {
 public:
  /// Zero.
  Bigint() = default;

  /// From a native signed integer.
  Bigint(std::int64_t v);  // NOLINT(google-explicit-constructor): numeric literal interop

  /// From a native unsigned integer.
  static Bigint from_u64(std::uint64_t v);

  /// Parse base-10, optional leading '-'. Throws std::invalid_argument on
  /// empty or non-digit input.
  static Bigint from_decimal(std::string_view s);

  /// Parse base-16 (case-insensitive, no 0x prefix), optional leading '-'.
  static Bigint from_hex(std::string_view s);

  /// Big-endian unsigned magnitude (leading zeros permitted).
  static Bigint from_bytes_be(const Bytes& b);

  std::string to_decimal() const;
  std::string to_hex() const;

  /// Minimal big-endian magnitude; returns {0x00} for zero. Negative values
  /// are rejected (wire format carries signs separately).
  Bytes to_bytes_be() const;

  /// Big-endian magnitude left-padded to exactly `width` bytes. Throws
  /// std::length_error if the value needs more than `width` bytes.
  Bytes to_bytes_be(std::size_t width) const;

  /// Value as u64; throws std::range_error if negative or >= 2^64.
  std::uint64_t to_u64() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_one() const { return !negative_ && limbs_.size() == 1 && limbs_[0] == 1; }
  bool is_negative() const { return negative_; }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  bool is_even() const { return !is_odd(); }

  /// -1, 0 or +1.
  int sign() const { return is_zero() ? 0 : (negative_ ? -1 : 1); }

  /// Number of significant bits of the magnitude (0 for zero).
  std::size_t bit_length() const;

  /// Bit `i` (LSB = 0) of the magnitude; false beyond bit_length().
  bool bit(std::size_t i) const;

  /// Number of 1-bits in the magnitude (used by the cash-break algorithms).
  std::size_t popcount() const;

  Bigint abs() const;
  Bigint operator-() const;

  friend bool operator==(const Bigint& a, const Bigint& b);
  friend std::strong_ordering operator<=>(const Bigint& a, const Bigint& b);

  friend Bigint operator+(const Bigint& a, const Bigint& b);
  friend Bigint operator-(const Bigint& a, const Bigint& b);
  friend Bigint operator*(const Bigint& a, const Bigint& b);
  /// Truncated division (rounds toward zero). Throws std::domain_error on
  /// division by zero.
  friend Bigint operator/(const Bigint& a, const Bigint& b);
  /// Truncated remainder: sign follows the dividend.
  friend Bigint operator%(const Bigint& a, const Bigint& b);

  Bigint& operator+=(const Bigint& b) { return *this = *this + b; }
  Bigint& operator-=(const Bigint& b) { return *this = *this - b; }
  Bigint& operator*=(const Bigint& b) { return *this = *this * b; }
  Bigint& operator/=(const Bigint& b) { return *this = *this / b; }
  Bigint& operator%=(const Bigint& b) { return *this = *this % b; }

  /// Quotient and truncated remainder in one division.
  static std::pair<Bigint, Bigint> divmod(const Bigint& a, const Bigint& b);

  /// Mathematical residue in [0, |m|). Throws std::domain_error if m == 0.
  Bigint mod(const Bigint& m) const;

  Bigint operator<<(std::size_t bits) const;
  Bigint operator>>(std::size_t bits) const;

  /// base^exp by square-and-multiply over plain integers (exp is small in
  /// all callers; modular exponentiation lives in modarith.h).
  static Bigint pow(const Bigint& base, std::uint64_t exp);

  /// 2^k.
  static Bigint two_pow(std::size_t k);

  /// Uniform integer with exactly `bits` bits (top bit forced to 1);
  /// `bits` == 0 yields zero.
  static Bigint random_bits(SecureRandom& rng, std::size_t bits);

  /// Uniform integer in [0, bound); bound must be positive.
  static Bigint random_below(SecureRandom& rng, const Bigint& bound);

  /// Uniform integer in [lo, hi); requires lo < hi.
  static Bigint random_range(SecureRandom& rng, const Bigint& lo,
                             const Bigint& hi);

  /// Read-only view of the little-endian 32-bit limbs of the magnitude.
  /// Exposed for MontgomeryCtx, which works on raw limbs; not a stable wire
  /// format — use to_bytes_be for serialization.
  const std::vector<std::uint32_t>& raw_limbs() const { return limbs_; }

  /// Build a non-negative value directly from little-endian limbs
  /// (normalizes trailing zeros). Counterpart of raw_limbs().
  static Bigint from_raw_limbs(std::vector<std::uint32_t> limbs) {
    return Bigint(std::move(limbs), false);
  }

 private:
  // Magnitude helpers (operate on little-endian limb vectors, ignore sign).
  using Limbs = std::vector<std::uint32_t>;
  static int ucmp(const Limbs& a, const Limbs& b);
  static Limbs uadd(const Limbs& a, const Limbs& b);
  static Limbs usub(const Limbs& a, const Limbs& b);  // requires a >= b
  static Limbs umul(const Limbs& a, const Limbs& b);
  static Limbs umul_school(const Limbs& a, const Limbs& b);
  static Limbs umul_karatsuba(const Limbs& a, const Limbs& b);
  static void udivmod(const Limbs& a, const Limbs& b, Limbs& q, Limbs& r);
  static void trim(Limbs& v);

  Bigint(Limbs limbs, bool negative);

  Limbs limbs_;
  bool negative_ = false;
};

/// Greatest common divisor (always non-negative).
Bigint gcd(Bigint a, Bigint b);

/// Extended Euclid: returns (g, x, y) with a*x + b*y == g == gcd(a, b).
struct ExtGcd {
  Bigint g, x, y;
};
ExtGcd ext_gcd(const Bigint& a, const Bigint& b);

/// Least common multiple (non-negative); lcm(0, b) == 0.
Bigint lcm(const Bigint& a, const Bigint& b);

/// Modular inverse of a mod m (m > 1). Throws std::domain_error when
/// gcd(a, m) != 1.
Bigint modinv(const Bigint& a, const Bigint& m);

/// Jacobi symbol (a/n) for odd positive n; returns -1, 0 or 1.
int jacobi(Bigint a, Bigint n);

}  // namespace ppms
