// AVX2 instantiation of the lane-batched Montgomery kernel: 4 lanes of
// 64-bit accumulators per __m256i. Compiled with -mavx2 (file-level flag in
// src/CMakeLists.txt); everything ISA-specific stays in the anonymous
// namespace so no AVX2 code can be COMDAT-merged into baseline TUs, and
// execution is guarded by the CPUID dispatch in simd.cpp.
#include "bigint/simd_detail.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace ppms::simd::detail {

namespace {

struct TraitsAvx2 {
  using V = __m256i;
  static constexpr std::size_t kLanes = 4;
  static V zero() { return _mm256_setzero_si256(); }
  static V set1(limb::Limb x) {
    return _mm256_set1_epi64x(static_cast<long long>(x));
  }
  static V load(const limb::Limb* p) {
    return _mm256_load_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void store(limb::Limb* p, V v) {
    _mm256_store_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static V add(V a, V b) { return _mm256_add_epi64(a, b); }
  static V mul32(V a, V b) { return _mm256_mul_epu32(a, b); }
  static V srl(V a, unsigned s) {
    return _mm256_srl_epi64(a, _mm_cvtsi32_si128(static_cast<int>(s)));
  }
  static V sll(V a, unsigned s) {
    return _mm256_sll_epi64(a, _mm_cvtsi32_si128(static_cast<int>(s)));
  }
  static V and_(V a, V b) { return _mm256_and_si256(a, b); }
  static V or_(V a, V b) { return _mm256_or_si256(a, b); }
  static V sub(V a, V b) { return _mm256_sub_epi64(a, b); }
  static V xor_(V a, V b) { return _mm256_xor_si256(a, b); }
  // Unsigned 64-bit a < b as 0/1 per lane. AVX2 only has a signed 64-bit
  // compare, so bias both sides by 2^63 first.
  static V ltu01(V a, V b) {
    const V bias = set1(limb::Limb{1} << 63);
    const V gt = _mm256_cmpgt_epi64(_mm256_xor_si256(b, bias),
                                    _mm256_xor_si256(a, bias));
    return _mm256_srli_epi64(gt, 63);
  }
  static V ne0_01(V a) {
    const V eq = _mm256_cmpeq_epi64(a, _mm256_setzero_si256());
    return _mm256_andnot_si256(eq, set1(1));
  }
};

#include "simd_lanes.inl"

}  // namespace

bool compiled_avx2() { return true; }

bool run_avx2(const MontJob* jobs, std::size_t k, const limb::Limb* m,
              limb::Limb n0, std::size_t n) {
  return run_all<TraitsAvx2>(jobs, k, m, n0, n);
}

}  // namespace ppms::simd::detail

#else  // !__AVX2__ — non-x86 build or the flag was configured out.

namespace ppms::simd::detail {

bool compiled_avx2() { return false; }

bool run_avx2(const MontJob*, std::size_t, const limb::Limb*, limb::Limb,
              std::size_t) {
  return false;
}

}  // namespace ppms::simd::detail

#endif
