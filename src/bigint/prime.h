// Probabilistic primality testing and prime generation.
//
// Miller-Rabin with a small-prime trial-division prefilter. Error
// probability is <= 4^-rounds per composite; the default 32 rounds makes a
// false positive less likely than hardware failure.
#pragma once

#include <cstdint>
#include <vector>

#include "bigint/bigint.h"
#include "util/rng.h"

namespace ppms {

/// The trial-division primes used by the prefilter (all primes < 2048).
const std::vector<std::uint32_t>& small_primes();

/// True when n has a prime factor < 2048 that is not n itself.
bool has_small_factor(const Bigint& n);

/// One Miller-Rabin round with the given base; true = "probably prime".
/// Requires n odd and > 2.
bool miller_rabin_round(const Bigint& n, const Bigint& base);

/// Deterministic primality for 64-bit inputs (Miller-Rabin with the twelve
/// bases 2..37, proven sufficient below 3.3e24). Used by the Cunningham
/// chain search hot loop and by hash-to-prime derivations that must agree
/// across parties with no randomness.
bool is_prime_u64(std::uint64_t n);

/// Full probable-prime test: handles small cases exactly, then trial
/// division plus `rounds` Miller-Rabin rounds with random bases.
bool is_probable_prime(const Bigint& n, SecureRandom& rng, int rounds = 32);

/// Uniform probable prime with exactly `bits` bits (bits >= 2).
Bigint random_prime(SecureRandom& rng, std::size_t bits, int rounds = 32);

/// Random safe prime p = 2q + 1 with p of exactly `bits` bits (both p and q
/// prime). Used for ZKP groups with hidden-order subgroups.
Bigint random_safe_prime(SecureRandom& rng, std::size_t bits,
                         int rounds = 32);

}  // namespace ppms
