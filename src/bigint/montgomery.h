// Montgomery multiplication context for a fixed odd modulus.
//
// Precomputes n0' = -m^{-1} mod 2^32 and R^2 mod m once, then performs
// CIOS (coarsely integrated operand scanning) Montgomery products on raw
// limb vectors. One context is typically reused for an entire protocol
// session (RSA key, pairing field, ZKP group), which is where the speedup
// over division-based reduction comes from.
#pragma once

#include <cstdint>
#include <vector>

#include "bigint/bigint.h"

namespace ppms {

class MontgomeryCtx {
 public:
  /// Requires m odd and > 1; throws std::invalid_argument otherwise.
  explicit MontgomeryCtx(const Bigint& m);

  const Bigint& modulus() const { return m_; }

  /// x * R mod m (entry into Montgomery domain).
  Bigint to_mont(const Bigint& x) const;

  /// x * R^{-1} mod m (exit from Montgomery domain).
  Bigint from_mont(const Bigint& x) const;

  /// Montgomery product: a * b * R^{-1} mod m, for a, b already in
  /// Montgomery form.
  Bigint mul(const Bigint& a, const Bigint& b) const;

  /// base^exp mod m via sliding-window exponentiation in the Montgomery
  /// domain (base in ordinary form; result in ordinary form). exp >= 0.
  Bigint pow(const Bigint& base, const Bigint& exp) const;

 private:
  std::vector<std::uint32_t> reduce(
      const std::vector<std::uint32_t>& t) const;

  Bigint m_;
  std::vector<std::uint32_t> m_limbs_;
  std::uint32_t n0_;   // -m^{-1} mod 2^32
  Bigint r_mod_m_;     // R mod m
  Bigint r2_mod_m_;    // R^2 mod m
};

}  // namespace ppms
