// Montgomery multiplication context for a fixed odd modulus.
//
// Precomputes n0' = -m^{-1} mod 2^32 and R^2 mod m once, then performs
// CIOS (coarsely integrated operand scanning) Montgomery products on raw
// limb vectors. One context is typically reused for an entire protocol
// session (RSA key, pairing field, ZKP group), which is where the speedup
// over division-based reduction comes from.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "bigint/bigint.h"
#include "bigint/limbs.h"

namespace ppms {

class MontgomeryCtx {
 public:
  /// Requires m odd and > 1; throws std::invalid_argument otherwise.
  explicit MontgomeryCtx(const Bigint& m);

  const Bigint& modulus() const { return m_; }

  /// True when this context runs Montgomery products on the flat 64-bit
  /// kernels (decided at construction — see would_use_flat).
  bool flat() const { return fp_ != nullptr; }

  /// The flat-limb field context backing this ctx's fast path, or nullptr
  /// on the 32-bit oracle path. Lets callers that hold Montgomery-form
  /// Bigints (FixedBasePow, batch verifiers) drop to FpElem arrays and the
  /// lane-batched FpCtx::mul_batch; pack()/unpack() cross the boundary
  /// without any domain change.
  const FpCtx* flat_ctx() const { return fp_.get(); }

  /// Whether a context built right now for m would take the flat path:
  /// the runtime switch is on, the modulus fits the flat layer, and its
  /// 32-bit limb count is even. The parity condition keeps the externally
  /// visible Montgomery domain at R = 2^(32·limbs): with an even count the
  /// 64-bit kernels' R' = 2^(64·ceil(limbs/2)) is the same constant, so the
  /// two paths are interchangeable bit for bit; odd-width moduli stay on
  /// the 32-bit oracle path.
  static bool would_use_flat(const Bigint& m);

  /// x * R mod m (entry into Montgomery domain).
  Bigint to_mont(const Bigint& x) const;

  /// x * R^{-1} mod m (exit from Montgomery domain).
  Bigint from_mont(const Bigint& x) const;

  /// Montgomery product: a * b * R^{-1} mod m, for a, b already in
  /// Montgomery form.
  Bigint mul(const Bigint& a, const Bigint& b) const;

  /// 1 in Montgomery form (R mod m). Starting accumulator for callers that
  /// run their own exponentiation ladders in the Montgomery domain.
  const Bigint& mont_one() const { return r_mod_m_; }

  /// base^exp mod m via sliding-window exponentiation in the Montgomery
  /// domain (base in ordinary form; result in ordinary form). exp >= 0.
  Bigint pow(const Bigint& base, const Bigint& exp) const;

 private:
  std::vector<std::uint32_t> reduce(
      const std::vector<std::uint32_t>& t) const;

  Bigint m_;
  std::vector<std::uint32_t> m_limbs_;
  std::uint32_t n0_;   // -m^{-1} mod 2^32
  Bigint r_mod_m_;     // R mod m
  Bigint r2_mod_m_;    // R^2 mod m
  // Flat-limb fast path (null on the 32-bit oracle path). Same R, so every
  // externally visible value is bit-identical between the two.
  std::shared_ptr<const FpCtx> fp_;
};

/// Fixed-base exponentiation with a radix-16 digit table: base^(d·16^i) is
/// precomputed in Montgomery form for every digit position, so each later
/// pow() costs one Montgomery product per nonzero exponent digit — no
/// squarings at all. Worth building whenever one base under one modulus is
/// raised to many different exponents (a tower generator across proof
/// rounds, a verification base across a session); the table pays for
/// itself after a handful of calls.
class FixedBasePow {
 public:
  /// Table covers exponents up to `max_exp_bits` bits; larger exponents
  /// fall back to plain ctx->pow. `ctx` is shared (typically from
  /// montgomery_ctx) and kept alive by this object.
  FixedBasePow(std::shared_ptr<const MontgomeryCtx> ctx, const Bigint& base,
               std::size_t max_exp_bits);

  /// base^exp mod m. exp >= 0 (throws std::invalid_argument otherwise).
  Bigint pow(const Bigint& exp) const;

  const Bigint& base() const { return base_; }

 private:
  std::shared_ptr<const MontgomeryCtx> ctx_;
  Bigint base_;
  // table_[i][d-1] = base^(d · 16^i) in Montgomery form, d in 1..15.
  std::vector<std::vector<Bigint>> table_;
  // Flat mirror of table_ (pack() form), built when ctx_ runs the flat
  // path. pow() then gathers the selected digit entries and folds them as
  // a balanced tree through the lane-batched FpCtx::mul_batch — the same
  // canonical product the sequential chain computes, bit for bit.
  std::vector<std::vector<FpElem>> flat_table_;
};

}  // namespace ppms
