// Lane-batched radix-2^28 Montgomery kernel, generic over a vector Traits
// type. Included inside an anonymous namespace of each arch-specific TU
// (simd_avx2.cpp / simd_avx512.cpp) so the instantiations never escape the
// file they were compiled for.
//
// Traits contract (V is the vector of Traits::kLanes 64-bit elements):
//   V zero(); V set1(u64); V load(const u64*); void store(u64*, V);
//   V add(V, V); V sub(V, V); V mul32(V, V)  — low-32 x low-32 -> 64
//   V srl(V, unsigned); V sll(V, unsigned)   — uniform shift counts
//   V and_(V, V); V or_(V, V); V xor_(V, V)
//   V ltu01(V, V)  — unsigned 64-bit a < b, as 0/1 per lane
//   V ne0_01(V)    — a != 0, as 0/1 per lane
//
// Algorithm. Each lane holds one product a·b·2^{-64n} mod m. Operands are
// split into f = ceil(64n/28) digits of 28 bits; `a` is pre-shifted by
// e = 28f - 64n bits so the f digit-wise REDC folds divide by exactly
// 2^(28f) = 2^e · 2^(64n), keeping the external Montgomery domain at the
// scalar kernel's R = 2^(64n). The REDC quotient U' of the shifted product
// is the unique value < 2^(28f) with a·2^e·b + U'·m ≡ 0 (mod 2^(28f)), and
// 2^e·U (U the scalar kernel's quotient) satisfies both conditions — so
// the pre-subtraction accumulator t = (a·2^e·b + U'·m)/2^(28f) equals the
// scalar kernel's t limb for limb, and the identical trailing conditional
// subtract reproduces its output exactly, reduced inputs or not.
//
// Why 28 bits: digit products fit 56 bits, so a 64-bit lane accumulates
// the full 2f-term column sum (f <= 37 here: < 74·2^56 < 2^63) with no
// carry propagation anywhere in the multiply/fold phases — the only
// carry-serial work is one 28-bit normalize chain at the end, still f
// vector steps across all lanes at once.
//
// The G template parameter interleaves G independent lane groups through
// one pass: the REDC fold chain is latency-serial within a group, and at
// the small hot widths (f = 5, 10) a single group leaves most multiplier
// cycles idle waiting on it. Two groups in flight nearly double
// throughput there; the large widths have enough independent column work
// per fold to stay busy and run G = 1 to save registers.

inline constexpr limb::Limb kMask28 = (limb::Limb{1} << 28) - 1;

// Scalar digit extraction: digit j of the n-limb value at `src`.
inline limb::Limb digit_of(const limb::Limb* src, std::size_t n, unsigned j) {
  const unsigned pos = 28u * j;
  const unsigned w = pos >> 6;
  const unsigned o = pos & 63u;
  if (w >= n) return 0;
  limb::Limb d = src[w] >> o;
  if (o != 0 && w + 1 < n) d |= src[w + 1] << (64 - o);
  return d & kMask28;
}

template <class T, unsigned F, unsigned G>
void mont_mul_groups(const MontJob* jobs, std::size_t k, const limb::Limb* m,
                     limb::Limb n0, std::size_t n, unsigned e) {
  using V = typename T::V;
  constexpr std::size_t K = T::kLanes;
  const V maskv = T::set1(kMask28);

  // Transpose operands limb-major; idle tail lanes replay job k-1 (their
  // stores are skipped below, so the duplicate work is invisible).
  alignas(64) limb::Limb bufa[limb::kMaxFpLimbs][G * K];
  alignas(64) limb::Limb bufb[limb::kMaxFpLimbs][G * K];
  for (std::size_t l = 0; l < G * K; ++l) {
    const MontJob& job = jobs[l < k ? l : k - 1];
    for (std::size_t w = 0; w < n; ++w) {
      bufa[w][l] = job.a[w];
      bufb[w][l] = job.b[w];
    }
  }
  V La[G][limb::kMaxFpLimbs], Lb[G][limb::kMaxFpLimbs];
  for (unsigned g = 0; g < G; ++g) {
    for (std::size_t w = 0; w < n; ++w) {
      La[g][w] = T::load(bufa[w] + g * K);
      Lb[g][w] = T::load(bufb[w] + g * K);
    }
  }

  // Digit extraction, vectorized (shift counts are lane-uniform). A takes
  // the e-bit pre-shift: digit j of a·2^e starts at bit 28j - e of a, so
  // only digit 0 needs the left shift; B is plain radix-2^28.
  V A[G][F], B[G][F];
  for (unsigned g = 0; g < G; ++g) {
    A[g][0] = T::and_(T::sll(La[g][0], e), maskv);
  }
  for (unsigned j = 1; j < F; ++j) {
    const unsigned pos = 28u * j - e;
    const unsigned w = pos >> 6;
    const unsigned o = pos & 63u;
    for (unsigned g = 0; g < G; ++g) {
      V d = T::srl(La[g][w], o);
      if (o != 0 && w + 1 < n) d = T::or_(d, T::sll(La[g][w + 1], 64 - o));
      A[g][j] = T::and_(d, maskv);
    }
  }
  for (unsigned j = 0; j < F; ++j) {
    const unsigned pos = 28u * j;
    const unsigned w = pos >> 6;
    const unsigned o = pos & 63u;
    for (unsigned g = 0; g < G; ++g) {
      V d = T::srl(Lb[g][w], o);
      if (o != 0 && w + 1 < n) d = T::or_(d, T::sll(Lb[g][w + 1], 64 - o));
      B[g][j] = T::and_(d, maskv);
    }
  }

  // Carry-free column accumulation of the full product.
  V P[G][2 * F];
  for (unsigned g = 0; g < G; ++g) {
    for (unsigned i = 0; i < 2 * F; ++i) P[g][i] = T::zero();
  }
  for (unsigned i = 0; i < F; ++i) {
    for (unsigned j = 0; j < F; ++j) {
      for (unsigned g = 0; g < G; ++g) {
        P[g][i + j] = T::add(P[g][i + j], T::mul32(A[g][i], B[g][j]));
      }
    }
  }

  // f REDC folds. Digit t is normalized just-in-time (its overflow rides
  // up one column), then u = lo·(-m^{-1}) mod 2^28 zeroes it; u·m lands
  // lazily in the higher columns.
  const V n0v = T::set1(n0 & kMask28);
  V Mv[F];
  for (unsigned j = 0; j < F; ++j) Mv[j] = T::set1(digit_of(m, n, j));
  for (unsigned t = 0; t < F; ++t) {
    V u[G];
    for (unsigned g = 0; g < G; ++g) {
      const V lo = T::and_(P[g][t], maskv);
      P[g][t + 1] = T::add(P[g][t + 1], T::srl(P[g][t], 28));
      u[g] = T::and_(T::mul32(lo, n0v), maskv);
      P[g][t + 1] = T::add(
          P[g][t + 1], T::srl(T::add(lo, T::mul32(u[g], Mv[0])), 28));
    }
    for (unsigned j = 1; j < F; ++j) {
      for (unsigned g = 0; g < G; ++g) {
        P[g][t + j] = T::add(P[g][t + j], T::mul32(u[g], Mv[j]));
      }
    }
  }

  // Normalize the result digits (one serial 28-bit carry chain, vector
  // across lanes). t < 2^(64n+1) <= 2^(28F) for e >= 1, so the top digit
  // absorbs the final carry without overflow.
  for (unsigned j = F; j + 1 < 2 * F; ++j) {
    for (unsigned g = 0; g < G; ++g) {
      P[g][j + 1] = T::add(P[g][j + 1], T::srl(P[g][j], 28));
      P[g][j] = T::and_(P[g][j], maskv);
    }
  }

  // Pack digits back into n+1 64-bit limbs per lane (limb n is t's
  // overflow bit).
  V Tl[G][limb::kMaxFpLimbs + 1];
  for (unsigned g = 0; g < G; ++g) {
    for (std::size_t w = 0; w <= n; ++w) Tl[g][w] = T::zero();
  }
  for (unsigned j = 0; j < F; ++j) {
    const unsigned pos = 28u * j;
    const unsigned w = pos >> 6;
    const unsigned o = pos & 63u;
    for (unsigned g = 0; g < G; ++g) {
      Tl[g][w] = T::or_(Tl[g][w], T::sll(P[g][F + j], o));
      if (o > 36) Tl[g][w + 1] = T::or_(Tl[g][w + 1], T::srl(P[g][F + j], 64 - o));
    }
  }

  // The scalar kernel's conditional subtract, lane-parallel: one borrow
  // chain computes t - m, ge = (t[n] != 0) | (no borrow), and a 0/-1 mask
  // selects per lane. Identical t in, identical limbs out.
  const V one01 = T::set1(1);
  alignas(64) limb::Limb bufr[limb::kMaxFpLimbs][G * K];
  for (unsigned g = 0; g < G; ++g) {
    V diff[limb::kMaxFpLimbs];
    V borrow = T::zero();
    for (std::size_t w = 0; w < n; ++w) {
      const V mw = T::set1(m[w]);
      const V d1 = T::sub(Tl[g][w], mw);
      const V b1 = T::ltu01(Tl[g][w], mw);
      diff[w] = T::sub(d1, borrow);
      borrow = T::add(b1, T::ltu01(d1, borrow));
    }
    const V ge01 =
        T::or_(T::ne0_01(Tl[g][n]), T::xor_(borrow, one01));
    const V gemask = T::sub(T::zero(), ge01);  // 0 or all-ones per lane
    for (std::size_t w = 0; w < n; ++w) {
      const V sel = T::xor_(
          Tl[g][w], T::and_(T::xor_(Tl[g][w], diff[w]), gemask));
      T::store(bufr[w] + g * K, sel);
    }
  }
  for (std::size_t l = 0; l < k; ++l) {
    for (std::size_t w = 0; w < n; ++w) jobs[l].r[w] = bufr[w][l];
  }
}

template <class T, unsigned F, unsigned G>
void run_width(const MontJob* jobs, std::size_t k, const limb::Limb* m,
               limb::Limb n0, std::size_t n, unsigned e) {
  constexpr std::size_t K = T::kLanes;
  std::size_t i = 0;
  if constexpr (G > 1) {
    // Full interleaved blocks first; anything that cannot fill more than
    // one group drops to the single-group instantiation below.
    while (k - i > K) {
      const std::size_t c = k - i < G * K ? k - i : G * K;
      mont_mul_groups<T, F, G>(jobs + i, c, m, n0, n, e);
      i += c;
    }
  }
  for (; i < k; i += K) {
    mont_mul_groups<T, F, 1>(jobs + i, k - i < K ? k - i : K, m, n0, n, e);
  }
}

// Width dispatch: the lane-batched widths are the unrolled scalar widths
// (2/4/8/16 limbs); anything else reports unhandled and stays scalar.
// f = ceil(64n/28), e = 28f - 64n. The small widths interleave two lane
// groups (fold-chain latency dominates them); the large ones have enough
// column-level parallelism per fold and keep the register file for one.
template <class T>
bool run_all(const MontJob* jobs, std::size_t k, const limb::Limb* m,
             limb::Limb n0, std::size_t n) {
  switch (n) {
    case 2: run_width<T, 5, 2>(jobs, k, m, n0, n, 12); return true;
    case 4: run_width<T, 10, 2>(jobs, k, m, n0, n, 24); return true;
    case 8: run_width<T, 19, 1>(jobs, k, m, n0, n, 20); return true;
    case 16: run_width<T, 37, 1>(jobs, k, m, n0, n, 12); return true;
    default: return false;
  }
}
