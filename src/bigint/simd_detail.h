// Internal seam between the dispatching front end (simd.cpp, compiled for
// the baseline ISA) and the arch-specific kernel translation units
// (simd_avx2.cpp / simd_avx512.cpp, compiled with -mavx2 / -mavx512f).
// Only these named entry points cross the boundary; the kernel templates
// themselves live in anonymous namespaces inside the arch TUs so no code
// built for a wider ISA can leak into baseline symbols via COMDAT merging.
#pragma once

#include <cstddef>

#include "bigint/simd.h"

namespace ppms::simd::detail {

/// True when the TU was built with real vector kernels (x86 build with the
/// matching -m flag); a stubbed TU returns false and its run_* is a no-op.
bool compiled_avx2();
bool compiled_avx512();
bool compiled_avx512ifma();

/// Run k jobs through the arch kernel. Returns false (touching nothing)
/// when the width is not lane-batched or the TU is a stub.
bool run_avx2(const MontJob* jobs, std::size_t k, const limb::Limb* m,
              limb::Limb n0, std::size_t n);
bool run_avx512(const MontJob* jobs, std::size_t k, const limb::Limb* m,
                limb::Limb n0, std::size_t n);
/// Radix-2^52 vpmadd52 variant of the AVX-512 kernel; only called when the
/// CPU additionally reports avx512ifma. Same widths, same bit-identical
/// results, roughly a third of the lane products at the hot small widths.
bool run_avx512ifma(const MontJob* jobs, std::size_t k, const limb::Limb* m,
                    limb::Limb n0, std::size_t n);

}  // namespace ppms::simd::detail
