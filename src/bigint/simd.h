// Lane-batched Montgomery kernels with runtime dispatch.
//
// The flat-limb core (bigint/limbs.h) funnels every hot Montgomery product
// through one scalar CIOS kernel. The batch entry points here run K
// independent same-modulus products side by side across SIMD lanes: the
// operands are re-expressed in radix 2^28 so the whole product/REDC
// schedule is carry-free 32x32->64 multiply-accumulate (`vpmuludq`), which
// vectorizes where the scalar kernel's 64-bit carry chains cannot.
//
// Bit-identity contract: one operand is pre-shifted by e = 28f - 64n bits
// (f = ceil(64n/28) digits), which keeps the external Montgomery domain at
// the scalar kernel's R = 2^(64n) — the REDC quotient of the shifted
// product is exactly 2^e times the scalar quotient, so the pre-subtraction
// accumulator is numerically identical and the same conditional subtract
// yields the same limbs, for any in-width operands (reduced or not).
// tests/bigint/simd_diff_test.cpp pins this against the scalar oracle.
//
// Dispatch: the compiled default comes from the CMake cache variable
// PPMS_SIMD (auto|off|avx2|avx512); the PPMS_SIMD environment variable
// overrides it at process start and set_level() overrides it at runtime
// (tests, benches) — both clamped to what the CPU actually supports. The
// scalar cios_mont_mul path is always available: a batch call that the
// active level cannot serve returns false and the caller runs the jobs
// scalar, in order.
#pragma once

#include <cstddef>

#include "bigint/limbs.h"

namespace ppms::simd {

/// Dispatch levels, ordered by capability. kAvx2 runs 4 lanes per group,
/// kAvx512 runs 8; kScalar means every batch call falls back to the
/// caller's scalar loop.
enum class Level : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Best level this CPU (and this build) supports — CPUID-probed once.
Level detected();

/// Active level: detected() clamped by PPMS_SIMD (CMake default, then the
/// environment variable) and any set_level() override.
Level level();

/// Override the active level (clamped to detected()). Thread-safe; in
/// flight batch calls finish on the level they read at entry.
void set_level(Level lv);

/// "scalar" / "avx2" / "avx512".
const char* level_name(Level lv);

/// Jobs per lane group at `lv` (1 / 4 / 8).
std::size_t lanes(Level lv);

/// Jobs per lane group at the active level.
std::size_t lanes();

/// One independent Montgomery product r = a·b·2^{-64n} mod m. `r` may
/// alias that job's own `a` or `b` (inputs are read before any store), but
/// must not alias the operands of any *other* job in the same batch call —
/// jobs in one call are computed as-if simultaneously, not sequentially.
struct MontJob {
  limb::Limb* r;
  const limb::Limb* a;
  const limb::Limb* b;
};

/// Run k jobs (any k, including ragged tails smaller than a lane group)
/// that share modulus m (odd, n limbs) and n0 = -m^{-1} mod 2^64. Always
/// executes every job: the vector kernel serves lane-batched widths
/// (n in {2, 4, 8, 16}) when the active level allows, and everything else
/// runs through the scalar limb::cios_mont_mul in job order. Returns true
/// iff a SIMD kernel served the batch (telemetry / tests).
bool cios_mont_mul_xk(const MontJob* jobs, std::size_t k, const limb::Limb* m,
                      limb::Limb n0, std::size_t n);

/// Squaring batch: r[i] = a[i]²·2^{-64n} mod m. Same contract and return
/// convention as cios_mont_mul_xk (a squaring is a product with b = a).
bool mont_sqr_xk(limb::Limb* const* r, const limb::Limb* const* a,
                 std::size_t k, const limb::Limb* m, limb::Limb n0,
                 std::size_t n);

}  // namespace ppms::simd
