#include "bigint/bigint.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "obs/metrics.h"

namespace ppms {

namespace {
constexpr std::size_t kKaratsubaThreshold = 24;  // limbs
constexpr std::uint64_t kBase = 1ull << 32;
}  // namespace

Bigint::Bigint(Limbs limbs, bool negative)
    : limbs_(std::move(limbs)), negative_(negative) {
  trim(limbs_);
  if (limbs_.empty()) negative_ = false;
}

Bigint::Bigint(std::int64_t v) {
  std::uint64_t mag;
  if (v < 0) {
    negative_ = true;
    // Avoid UB on INT64_MIN: negate in unsigned arithmetic.
    mag = ~static_cast<std::uint64_t>(v) + 1;
  } else {
    mag = static_cast<std::uint64_t>(v);
  }
  if (mag > 0) limbs_.push_back(static_cast<std::uint32_t>(mag));
  if (mag >> 32) limbs_.push_back(static_cast<std::uint32_t>(mag >> 32));
  if (limbs_.empty()) negative_ = false;
}

Bigint Bigint::from_u64(std::uint64_t v) {
  Limbs limbs;
  if (v > 0) limbs.push_back(static_cast<std::uint32_t>(v));
  if (v >> 32) limbs.push_back(static_cast<std::uint32_t>(v >> 32));
  return Bigint(std::move(limbs), false);
}

void Bigint::trim(Limbs& v) {
  while (!v.empty() && v.back() == 0) v.pop_back();
}

int Bigint::ucmp(const Limbs& a, const Limbs& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

Bigint::Limbs Bigint::uadd(const Limbs& a, const Limbs& b) {
  const Limbs& lo = a.size() >= b.size() ? b : a;
  const Limbs& hi = a.size() >= b.size() ? a : b;
  Limbs out;
  out.reserve(hi.size() + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < hi.size(); ++i) {
    std::uint64_t sum = static_cast<std::uint64_t>(hi[i]) + carry;
    if (i < lo.size()) sum += lo[i];
    out.push_back(static_cast<std::uint32_t>(sum));
    carry = sum >> 32;
  }
  if (carry) out.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

Bigint::Limbs Bigint::usub(const Limbs& a, const Limbs& b) {
  // Precondition: a >= b.
  Limbs out;
  out.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow -
                        (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<std::uint32_t>(diff));
  }
  trim(out);
  return out;
}

Bigint::Limbs Bigint::umul_school(const Limbs& a, const Limbs& b) {
  if (a.empty() || b.empty()) return {};
  Limbs out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    const std::uint64_t ai = a[i];
    for (std::size_t j = 0; j < b.size(); ++j) {
      const std::uint64_t cur = out[i + j] + ai * b[j] + carry;
      out[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + b.size();
    while (carry) {
      const std::uint64_t cur = out[k] + carry;
      out[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  trim(out);
  return out;
}

namespace {
// res += v * B^shift, in place (res must be large enough to absorb carries).
void add_shifted(std::vector<std::uint32_t>& res,
                 const std::vector<std::uint32_t>& v, std::size_t shift) {
  std::uint64_t carry = 0;
  std::size_t i = 0;
  for (; i < v.size(); ++i) {
    const std::uint64_t cur = res[i + shift] + carry + v[i];
    res[i + shift] = static_cast<std::uint32_t>(cur);
    carry = cur >> 32;
  }
  while (carry) {
    const std::uint64_t cur = res[i + shift] + carry;
    res[i + shift] = static_cast<std::uint32_t>(cur);
    carry = cur >> 32;
    ++i;
  }
}
}  // namespace

Bigint::Limbs Bigint::umul_karatsuba(const Limbs& a, const Limbs& b) {
  const std::size_t n = std::max(a.size(), b.size());
  if (std::min(a.size(), b.size()) < kKaratsubaThreshold) {
    return umul_school(a, b);
  }
  const std::size_t m = n / 2;
  const auto split = [m](const Limbs& v) {
    Limbs lo(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(
                                        std::min(m, v.size())));
    Limbs hi(v.size() > m ? v.begin() + static_cast<std::ptrdiff_t>(m)
                          : v.end(),
             v.end());
    trim(lo);
    trim(hi);
    return std::pair(std::move(lo), std::move(hi));
  };
  auto [a0, a1] = split(a);
  auto [b0, b1] = split(b);

  const Limbs z0 = umul_karatsuba(a0, b0);
  const Limbs z2 = umul_karatsuba(a1, b1);
  const Limbs sa = uadd(a0, a1);
  const Limbs sb = uadd(b0, b1);
  Limbs z1 = umul_karatsuba(sa, sb);
  z1 = usub(z1, z0);
  z1 = usub(z1, z2);

  Limbs out(a.size() + b.size() + 1, 0);
  add_shifted(out, z0, 0);
  add_shifted(out, z1, m);
  add_shifted(out, z2, 2 * m);
  trim(out);
  return out;
}

Bigint::Limbs Bigint::umul(const Limbs& a, const Limbs& b) {
  if (std::min(a.size(), b.size()) >= kKaratsubaThreshold) {
    return umul_karatsuba(a, b);
  }
  return umul_school(a, b);
}

void Bigint::udivmod(const Limbs& a, const Limbs& b, Limbs& q, Limbs& r) {
  if (b.empty()) throw std::domain_error("Bigint: division by zero");
  if (ucmp(a, b) < 0) {
    q.clear();
    r = a;
    trim(r);
    return;
  }
  if (b.size() == 1) {
    // Short division by a single limb.
    const std::uint64_t d = b[0];
    q.assign(a.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = a.size(); i-- > 0;) {
      const std::uint64_t cur = (rem << 32) | a[i];
      q[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    trim(q);
    r.clear();
    if (rem) r.push_back(static_cast<std::uint32_t>(rem));
    return;
  }

  // Knuth Algorithm D (Hacker's Delight divmnu, 32-bit digits).
  const std::size_t n = b.size();
  const std::size_t m = a.size() - n;
  const int shift = std::countl_zero(b.back());

  // Normalized divisor v and dividend u (u gets one extra high limb).
  Limbs v(n), u(a.size() + 1, 0);
  for (std::size_t i = n; i-- > 1;) {
    v[i] = (shift == 0)
               ? b[i]
               : ((b[i] << shift) | (b[i - 1] >> (32 - shift)));
  }
  v[0] = b[0] << shift;
  u[a.size()] = (shift == 0) ? 0 : (a.back() >> (32 - shift));
  for (std::size_t i = a.size(); i-- > 1;) {
    u[i] = (shift == 0)
               ? a[i]
               : ((a[i] << shift) | (a[i - 1] >> (32 - shift)));
  }
  u[0] = a[0] << shift;

  q.assign(m + 1, 0);
  for (std::size_t j = m + 1; j-- > 0;) {
    const std::uint64_t num =
        (static_cast<std::uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    std::uint64_t qhat = num / v[n - 1];
    std::uint64_t rhat = num % v[n - 1];
    while (qhat >= kBase ||
           qhat * v[n - 2] > ((rhat << 32) | u[j + n - 2])) {
      --qhat;
      rhat += v[n - 1];
      if (rhat >= kBase) break;
    }
    // Multiply and subtract.
    std::int64_t k = 0;
    std::int64_t t = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p = qhat * v[i];
      t = static_cast<std::int64_t>(u[i + j]) - k -
          static_cast<std::int64_t>(p & 0xFFFFFFFFull);
      u[i + j] = static_cast<std::uint32_t>(t);
      k = static_cast<std::int64_t>(p >> 32) - (t >> 32);
    }
    t = static_cast<std::int64_t>(u[j + n]) - k;
    u[j + n] = static_cast<std::uint32_t>(t);
    q[j] = static_cast<std::uint32_t>(qhat);
    if (t < 0) {
      // Add back (rare: probability ~ 2/B).
      --q[j];
      std::uint64_t carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t sum =
            static_cast<std::uint64_t>(u[i + j]) + v[i] + carry;
        u[i + j] = static_cast<std::uint32_t>(sum);
        carry = sum >> 32;
      }
      u[j + n] += static_cast<std::uint32_t>(carry);
    }
  }
  trim(q);

  // Denormalize remainder.
  r.assign(n, 0);
  for (std::size_t i = 0; i < n - 1; ++i) {
    r[i] = (shift == 0) ? u[i]
                        : ((u[i] >> shift) | (u[i + 1] << (32 - shift)));
  }
  r[n - 1] = u[n - 1] >> shift;
  trim(r);
}

bool operator==(const Bigint& a, const Bigint& b) {
  return a.negative_ == b.negative_ && a.limbs_ == b.limbs_;
}

std::strong_ordering operator<=>(const Bigint& a, const Bigint& b) {
  if (a.negative_ != b.negative_) {
    return a.negative_ ? std::strong_ordering::less
                       : std::strong_ordering::greater;
  }
  const int c = Bigint::ucmp(a.limbs_, b.limbs_);
  const int signed_c = a.negative_ ? -c : c;
  if (signed_c < 0) return std::strong_ordering::less;
  if (signed_c > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

Bigint Bigint::abs() const {
  Bigint out = *this;
  out.negative_ = false;
  return out;
}

Bigint Bigint::operator-() const {
  Bigint out = *this;
  if (!out.is_zero()) out.negative_ = !out.negative_;
  return out;
}

Bigint operator+(const Bigint& a, const Bigint& b) {
  if (a.negative_ == b.negative_) {
    return Bigint(Bigint::uadd(a.limbs_, b.limbs_), a.negative_);
  }
  const int c = Bigint::ucmp(a.limbs_, b.limbs_);
  if (c == 0) return Bigint();
  if (c > 0) return Bigint(Bigint::usub(a.limbs_, b.limbs_), a.negative_);
  return Bigint(Bigint::usub(b.limbs_, a.limbs_), b.negative_);
}

Bigint operator-(const Bigint& a, const Bigint& b) {
  // Direct signed subtraction: a - b without materializing -b (this runs
  // under every ext_gcd and Miller-loop step). Subtracting flips b's
  // effective sign, so different stored signs add magnitudes and equal
  // stored signs compare-and-subtract.
  if (a.negative_ != b.negative_) {
    return Bigint(Bigint::uadd(a.limbs_, b.limbs_), a.negative_);
  }
  const int c = Bigint::ucmp(a.limbs_, b.limbs_);
  if (c == 0) return Bigint();
  if (c > 0) return Bigint(Bigint::usub(a.limbs_, b.limbs_), a.negative_);
  return Bigint(Bigint::usub(b.limbs_, a.limbs_), !a.negative_);
}

Bigint operator*(const Bigint& a, const Bigint& b) {
  if (a.is_zero() || b.is_zero()) return Bigint();
  return Bigint(Bigint::umul(a.limbs_, b.limbs_),
                a.negative_ != b.negative_);
}

std::pair<Bigint, Bigint> Bigint::divmod(const Bigint& a, const Bigint& b) {
  Limbs q, r;
  udivmod(a.limbs_, b.limbs_, q, r);
  // Truncated division: quotient sign is the XOR of operand signs, the
  // remainder keeps the dividend's sign.
  Bigint quotient(std::move(q), a.negative_ != b.negative_);
  Bigint remainder(std::move(r), a.negative_);
  return {std::move(quotient), std::move(remainder)};
}

Bigint operator/(const Bigint& a, const Bigint& b) {
  return Bigint::divmod(a, b).first;
}

Bigint operator%(const Bigint& a, const Bigint& b) {
  return Bigint::divmod(a, b).second;
}

Bigint Bigint::mod(const Bigint& m) const {
  if (m.is_zero()) throw std::domain_error("Bigint::mod: zero modulus");
  Bigint r = *this % m;
  if (r.is_negative()) r += m.abs();
  return r;
}

Bigint Bigint::operator<<(std::size_t bits) const {
  if (is_zero() || bits == 0) {
    Bigint out = *this;
    return out;
  }
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  if (bit_shift == 0) {
    Limbs out(limbs_.size() + limb_shift, 0);
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
      out[i + limb_shift] = limbs_[i];
    }
    return Bigint(std::move(out), negative_);
  }
  // Size the output exactly: a top limb exists only when the high bits of
  // the top source limb actually carry out.
  const bool carry_out = (limbs_.back() >> (32 - bit_shift)) != 0;
  Limbs out(limbs_.size() + limb_shift + (carry_out ? 1 : 0), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const std::uint64_t v = static_cast<std::uint64_t>(limbs_[i])
                            << bit_shift;
    out[i + limb_shift] |= static_cast<std::uint32_t>(v);
    if (i + limb_shift + 1 < out.size()) {
      out[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
    }
  }
  return Bigint(std::move(out), negative_);
}

Bigint Bigint::operator>>(std::size_t bits) const {
  // Shift of the magnitude (truncation toward zero for negatives); all
  // callers shift non-negative values.
  const std::size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return Bigint();
  const std::size_t bit_shift = bits % 32;
  Limbs out(limbs_.begin() + static_cast<std::ptrdiff_t>(limb_shift),
            limbs_.end());
  if (bit_shift > 0) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] >>= bit_shift;
      if (i + 1 < out.size()) out[i] |= out[i + 1] << (32 - bit_shift);
    }
  }
  return Bigint(std::move(out), negative_);
}

std::size_t Bigint::bit_length() const {
  if (limbs_.empty()) return 0;
  return 32 * limbs_.size() -
         static_cast<std::size_t>(std::countl_zero(limbs_.back()));
}

bool Bigint::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

std::size_t Bigint::popcount() const {
  std::size_t n = 0;
  for (const std::uint32_t limb : limbs_) {
    n += static_cast<std::size_t>(std::popcount(limb));
  }
  return n;
}

Bigint Bigint::pow(const Bigint& base, std::uint64_t exp) {
  Bigint result = 1;
  Bigint acc = base;
  while (exp > 0) {
    if (exp & 1) result *= acc;
    exp >>= 1;
    if (exp > 0) acc *= acc;
  }
  return result;
}

Bigint Bigint::two_pow(std::size_t k) { return Bigint(1) << k; }

std::string Bigint::to_decimal() const {
  if (is_zero()) return "0";
  // Peel 9 decimal digits at a time.
  Limbs cur = limbs_;
  std::string digits;
  while (!cur.empty()) {
    std::uint64_t rem = 0;
    for (std::size_t i = cur.size(); i-- > 0;) {
      const std::uint64_t v = (rem << 32) | cur[i];
      cur[i] = static_cast<std::uint32_t>(v / 1000000000ull);
      rem = v % 1000000000ull;
    }
    trim(cur);
    for (int i = 0; i < 9; ++i) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

Bigint Bigint::from_decimal(std::string_view s) {
  bool negative = false;
  if (!s.empty() && s.front() == '-') {
    negative = true;
    s.remove_prefix(1);
  }
  if (s.empty()) throw std::invalid_argument("Bigint::from_decimal: empty");
  Bigint out;
  for (std::size_t pos = 0; pos < s.size();) {
    // Consume up to 9 digits at a time.
    std::uint32_t chunk = 0;
    std::uint32_t scale = 1;
    const std::size_t end = std::min(pos + 9, s.size());
    for (; pos < end; ++pos) {
      const char c = s[pos];
      if (c < '0' || c > '9') {
        throw std::invalid_argument("Bigint::from_decimal: non-digit");
      }
      chunk = chunk * 10 + static_cast<std::uint32_t>(c - '0');
      scale *= 10;
    }
    out = out * Bigint(static_cast<std::int64_t>(scale)) +
          Bigint(static_cast<std::int64_t>(chunk));
  }
  if (negative && !out.is_zero()) out.negative_ = true;
  return out;
}

std::string Bigint::to_hex() const {
  if (is_zero()) return "0";
  std::string out;
  constexpr char kDigits[] = "0123456789abcdef";
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    for (int nib = 7; nib >= 0; --nib) {
      out.push_back(kDigits[(limbs_[i] >> (4 * nib)) & 0xF]);
    }
  }
  const std::size_t first = out.find_first_not_of('0');
  out.erase(0, first);
  if (negative_) out.insert(out.begin(), '-');
  return out;
}

Bigint Bigint::from_hex(std::string_view s) {
  bool negative = false;
  if (!s.empty() && s.front() == '-') {
    negative = true;
    s.remove_prefix(1);
  }
  if (s.empty()) throw std::invalid_argument("Bigint::from_hex: empty");
  Limbs limbs;
  // Walk from least-significant nibble.
  std::size_t nib_index = 0;
  for (std::size_t i = s.size(); i-- > 0; ++nib_index) {
    const char c = s[i];
    std::uint32_t v;
    if (c >= '0' && c <= '9') {
      v = static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v = static_cast<std::uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v = static_cast<std::uint32_t>(c - 'A' + 10);
    } else {
      throw std::invalid_argument("Bigint::from_hex: non-hex digit");
    }
    const std::size_t limb = nib_index / 8;
    if (limb >= limbs.size()) limbs.push_back(0);
    limbs[limb] |= v << (4 * (nib_index % 8));
  }
  return Bigint(std::move(limbs), negative);
}

Bytes Bigint::to_bytes_be() const {
  if (negative_) {
    throw std::invalid_argument("Bigint::to_bytes_be: negative value");
  }
  if (is_zero()) return Bytes{0};
  const std::size_t nbytes = (bit_length() + 7) / 8;
  return to_bytes_be(nbytes);
}

Bytes Bigint::to_bytes_be(std::size_t width) const {
  if (negative_) {
    throw std::invalid_argument("Bigint::to_bytes_be: negative value");
  }
  const std::size_t nbytes = is_zero() ? 0 : (bit_length() + 7) / 8;
  if (nbytes > width) {
    throw std::length_error("Bigint::to_bytes_be: value wider than width");
  }
  Bytes out(width, 0);
  for (std::size_t i = 0; i < nbytes; ++i) {
    out[width - 1 - i] =
        static_cast<std::uint8_t>(limbs_[i / 4] >> (8 * (i % 4)));
  }
  return out;
}

Bigint Bigint::from_bytes_be(const Bytes& b) {
  Limbs limbs((b.size() + 3) / 4, 0);
  for (std::size_t i = 0; i < b.size(); ++i) {
    const std::size_t byte_index = b.size() - 1 - i;  // position from LSB
    limbs[i / 4] |= static_cast<std::uint32_t>(b[byte_index]) << (8 * (i % 4));
  }
  return Bigint(std::move(limbs), false);
}

std::uint64_t Bigint::to_u64() const {
  if (negative_) throw std::range_error("Bigint::to_u64: negative");
  if (limbs_.size() > 2) throw std::range_error("Bigint::to_u64: too large");
  std::uint64_t v = 0;
  if (limbs_.size() >= 1) v = limbs_[0];
  if (limbs_.size() == 2) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return v;
}

Bigint Bigint::random_bits(SecureRandom& rng, std::size_t bits) {
  if (bits == 0) return Bigint();
  const std::size_t nbytes = (bits + 7) / 8;
  Bytes raw = rng.bytes(nbytes);
  // Clear excess bits, then force the top bit so the result has exactly
  // `bits` bits.
  const std::size_t excess = nbytes * 8 - bits;
  raw[0] &= static_cast<std::uint8_t>(0xFF >> excess);
  raw[0] |= static_cast<std::uint8_t>(0x80 >> excess);
  return from_bytes_be(raw);
}

Bigint Bigint::random_below(SecureRandom& rng, const Bigint& bound) {
  if (bound.sign() <= 0) {
    throw std::invalid_argument("random_below: bound must be positive");
  }
  const std::size_t bits = bound.bit_length();
  const std::size_t nbytes = (bits + 7) / 8;
  const std::size_t excess = nbytes * 8 - bits;
  for (;;) {
    Bytes raw = rng.bytes(nbytes);
    raw[0] &= static_cast<std::uint8_t>(0xFF >> excess);
    Bigint candidate = from_bytes_be(raw);
    if (candidate < bound) return candidate;
  }
}

Bigint Bigint::random_range(SecureRandom& rng, const Bigint& lo,
                            const Bigint& hi) {
  if (!(lo < hi)) throw std::invalid_argument("random_range: lo >= hi");
  return lo + random_below(rng, hi - lo);
}

Bigint gcd(Bigint a, Bigint b) {
  a = a.abs();
  b = b.abs();
  while (!b.is_zero()) {
    Bigint r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

ExtGcd ext_gcd(const Bigint& a, const Bigint& b) {
  // Iterative extended Euclid over signed values.
  Bigint old_r = a, r = b;
  Bigint old_s = 1, s = 0;
  Bigint old_t = 0, t = 1;
  while (!r.is_zero()) {
    auto [q, rem] = Bigint::divmod(old_r, r);
    old_r = std::move(r);
    r = std::move(rem);
    Bigint new_s = old_s - q * s;
    old_s = std::move(s);
    s = std::move(new_s);
    Bigint new_t = old_t - q * t;
    old_t = std::move(t);
    t = std::move(new_t);
  }
  if (old_r.is_negative()) {
    old_r = -old_r;
    old_s = -old_s;
    old_t = -old_t;
  }
  return {std::move(old_r), std::move(old_s), std::move(old_t)};
}

Bigint lcm(const Bigint& a, const Bigint& b) {
  if (a.is_zero() || b.is_zero()) return Bigint();
  return (a * b).abs() / gcd(a, b);
}

Bigint modinv(const Bigint& a, const Bigint& m) {
  if (m <= Bigint(1)) throw std::domain_error("modinv: modulus <= 1");
  const ExtGcd e = ext_gcd(a.mod(m), m);
  if (!e.g.is_one()) throw std::domain_error("modinv: not invertible");
  return e.x.mod(m);
}

int jacobi(Bigint a, Bigint n) {
  if (n.sign() <= 0 || n.is_even()) {
    throw std::invalid_argument("jacobi: n must be odd and positive");
  }
  static obs::Counter& jacobi_calls = obs::counter("crypto.bigint.jacobi");
  jacobi_calls.add();
  a = a.mod(n);
  int result = 1;
  while (!a.is_zero()) {
    while (a.is_even()) {
      a = a >> 1;
      // n is odd throughout, so n mod 8 is just the low limb's low bits —
      // no Algorithm-D divmod for a 3-bit read.
      const std::uint32_t n_mod8 = n.raw_limbs()[0] & 7;
      if (n_mod8 == 3 || n_mod8 == 5) result = -result;
    }
    std::swap(a, n);
    if ((a.raw_limbs()[0] & 3) == 3 && (n.raw_limbs()[0] & 3) == 3) {
      result = -result;
    }
    a = a.mod(n);
  }
  return n.is_one() ? result : 0;
}

}  // namespace ppms
