// AVX-512 IFMA instantiation of the lane-batched Montgomery kernel: the
// same pre-shifted-digit construction as simd_lanes.inl, but in radix 2^52
// with vpmadd52 (52x52 -> 104-bit multiply-accumulate) instead of 28-bit
// digits over vpmuludq. Fewer, wider digits: f = ceil(64n/52) and the
// pre-shift e = 52f - 64n, so n = 2 runs 3 digits (9 lane products) where
// the 28-bit path needs 5 (25 products). Bit-identity holds by the same
// argument: the REDC quotient of the e-shifted product is the unique value
// < 2^(52f) congruent to -a·2^e·b·m^{-1}, which is 2^e times the scalar
// kernel's quotient, so the pre-subtraction accumulator t and the trailing
// conditional subtract match cios_mont_mul limb for limb.
//
// Lazy-carry bound: every column accumulates only 52-bit pieces (madd52lo /
// madd52hi outputs), at most 2f from the product phase plus 2 per fold and
// the fold carries — under 5f+2 < 2^7 terms of < 2^52 each, so a 64-bit
// lane never overflows for f <= 20 (n <= 16).
//
// Compiled with -mavx512f -mavx512ifma at file scope; the kernel lives in
// an anonymous namespace (no COMDAT leakage) and simd.cpp only calls
// run_avx512ifma after __builtin_cpu_supports("avx512ifma") passes.
#include "bigint/simd_detail.h"

#if defined(__AVX512IFMA__)

#include <immintrin.h>

namespace ppms::simd::detail {

namespace {

using limb::Limb;

constexpr Limb kMask52 = (Limb{1} << 52) - 1;
constexpr std::size_t K = 8;  // 64-bit lanes per __m512i

inline Limb digit52_of(const Limb* src, std::size_t n, unsigned j) {
  const unsigned pos = 52u * j;
  const unsigned w = pos >> 6;
  const unsigned o = pos & 63u;
  if (w >= n) return 0;
  Limb d = src[w] >> o;
  if (o != 0 && w + 1 < n) d |= src[w + 1] << (64 - o);
  return d & kMask52;
}

inline __m512i srl(__m512i a, unsigned s) {
  return _mm512_srl_epi64(a, _mm_cvtsi32_si128(static_cast<int>(s)));
}
inline __m512i sll(__m512i a, unsigned s) {
  return _mm512_sll_epi64(a, _mm_cvtsi32_si128(static_cast<int>(s)));
}
inline __m512i lt01(__m512i a, __m512i b) {
  return _mm512_maskz_set1_epi64(_mm512_cmplt_epu64_mask(a, b), 1);
}

template <unsigned F, unsigned G>
void mont_mul_groups52(const MontJob* jobs, std::size_t k, const Limb* m,
                       Limb n0, std::size_t n, unsigned e) {
  using V = __m512i;
  const V maskv = _mm512_set1_epi64(static_cast<long long>(kMask52));
  const V zerov = _mm512_setzero_si512();

  alignas(64) Limb bufa[limb::kMaxFpLimbs][G * K];
  alignas(64) Limb bufb[limb::kMaxFpLimbs][G * K];
  for (std::size_t l = 0; l < G * K; ++l) {
    const MontJob& job = jobs[l < k ? l : k - 1];
    for (std::size_t w = 0; w < n; ++w) {
      bufa[w][l] = job.a[w];
      bufb[w][l] = job.b[w];
    }
  }
  V La[G][limb::kMaxFpLimbs], Lb[G][limb::kMaxFpLimbs];
  for (unsigned g = 0; g < G; ++g) {
    for (std::size_t w = 0; w < n; ++w) {
      La[g][w] = _mm512_load_si512(bufa[w] + g * K);
      Lb[g][w] = _mm512_load_si512(bufb[w] + g * K);
    }
  }

  // Digit extraction: A carries the e-bit pre-shift (digit j of a·2^e
  // starts at bit 52j - e, so only digit 0 left-shifts); B is plain.
  V A[G][F], B[G][F];
  for (unsigned g = 0; g < G; ++g) {
    A[g][0] = _mm512_and_si512(sll(La[g][0], e), maskv);
  }
  for (unsigned j = 1; j < F; ++j) {
    const unsigned pos = 52u * j - e;
    const unsigned w = pos >> 6;
    const unsigned o = pos & 63u;
    for (unsigned g = 0; g < G; ++g) {
      V d = srl(La[g][w], o);
      if (o != 0 && w + 1 < n) d = _mm512_or_si512(d, sll(La[g][w + 1], 64 - o));
      A[g][j] = _mm512_and_si512(d, maskv);
    }
  }
  for (unsigned j = 0; j < F; ++j) {
    const unsigned pos = 52u * j;
    const unsigned w = pos >> 6;
    const unsigned o = pos & 63u;
    for (unsigned g = 0; g < G; ++g) {
      V d = srl(Lb[g][w], o);
      if (o != 0 && w + 1 < n) d = _mm512_or_si512(d, sll(Lb[g][w + 1], 64 - o));
      B[g][j] = _mm512_and_si512(d, maskv);
    }
  }

  // Full product, both 52-bit halves of every digit product accumulated
  // carry-free into their columns.
  V P[G][2 * F];
  for (unsigned g = 0; g < G; ++g) {
    for (unsigned i = 0; i < 2 * F; ++i) P[g][i] = zerov;
  }
  for (unsigned i = 0; i < F; ++i) {
    for (unsigned j = 0; j < F; ++j) {
      for (unsigned g = 0; g < G; ++g) {
        P[g][i + j] = _mm512_madd52lo_epu64(P[g][i + j], A[g][i], B[g][j]);
        P[g][i + j + 1] =
            _mm512_madd52hi_epu64(P[g][i + j + 1], A[g][i], B[g][j]);
      }
    }
  }

  // f REDC folds. u = lo·(-m^{-1}) mod 2^52 via madd52lo into zero; the
  // explicit low half of u·m[0] recovers the carry out of the cancelled
  // digit.
  const V n0v = _mm512_set1_epi64(static_cast<long long>(n0 & kMask52));
  V Mv[F];
  for (unsigned j = 0; j < F; ++j) {
    Mv[j] = _mm512_set1_epi64(static_cast<long long>(digit52_of(m, n, j)));
  }
  for (unsigned t = 0; t < F; ++t) {
    V u[G];
    for (unsigned g = 0; g < G; ++g) {
      const V lo = _mm512_and_si512(P[g][t], maskv);
      P[g][t + 1] = _mm512_add_epi64(P[g][t + 1], srl(P[g][t], 52));
      u[g] = _mm512_madd52lo_epu64(zerov, lo, n0v);
      const V l0 = _mm512_madd52lo_epu64(zerov, u[g], Mv[0]);
      P[g][t + 1] = _mm512_madd52hi_epu64(P[g][t + 1], u[g], Mv[0]);
      P[g][t + 1] =
          _mm512_add_epi64(P[g][t + 1], srl(_mm512_add_epi64(lo, l0), 52));
    }
    for (unsigned j = 1; j < F; ++j) {
      for (unsigned g = 0; g < G; ++g) {
        P[g][t + j] = _mm512_madd52lo_epu64(P[g][t + j], u[g], Mv[j]);
        P[g][t + j + 1] = _mm512_madd52hi_epu64(P[g][t + j + 1], u[g], Mv[j]);
      }
    }
  }

  // Normalize result digits to 52 bits (t < 2^(52F) for e >= 1, so the top
  // digit absorbs the final carry), then pack into n+1 64-bit limbs.
  for (unsigned j = F; j + 1 < 2 * F; ++j) {
    for (unsigned g = 0; g < G; ++g) {
      P[g][j + 1] = _mm512_add_epi64(P[g][j + 1], srl(P[g][j], 52));
      P[g][j] = _mm512_and_si512(P[g][j], maskv);
    }
  }
  V Tl[G][limb::kMaxFpLimbs + 1];
  for (unsigned g = 0; g < G; ++g) {
    for (std::size_t w = 0; w <= n; ++w) Tl[g][w] = zerov;
  }
  for (unsigned j = 0; j < F; ++j) {
    const unsigned pos = 52u * j;
    const unsigned w = pos >> 6;
    const unsigned o = pos & 63u;
    for (unsigned g = 0; g < G; ++g) {
      Tl[g][w] = _mm512_or_si512(Tl[g][w], sll(P[g][F + j], o));
      if (o > 12) {  // o + 52 > 64: the digit spills into the next limb
        Tl[g][w + 1] = _mm512_or_si512(Tl[g][w + 1], srl(P[g][F + j], 64 - o));
      }
    }
  }

  // Scalar kernel's conditional subtract, lane-parallel (same shape as the
  // generic kernel's tail).
  const V one01 = _mm512_set1_epi64(1);
  alignas(64) Limb bufr[limb::kMaxFpLimbs][G * K];
  for (unsigned g = 0; g < G; ++g) {
    V diff[limb::kMaxFpLimbs];
    V borrow = zerov;
    for (std::size_t w = 0; w < n; ++w) {
      const V mw = _mm512_set1_epi64(static_cast<long long>(m[w]));
      const V d1 = _mm512_sub_epi64(Tl[g][w], mw);
      const V b1 = lt01(Tl[g][w], mw);
      diff[w] = _mm512_sub_epi64(d1, borrow);
      borrow = _mm512_add_epi64(b1, lt01(d1, borrow));
    }
    const V ne = _mm512_maskz_set1_epi64(
        _mm512_cmpneq_epi64_mask(Tl[g][n], zerov), 1);
    const V ge01 = _mm512_or_si512(ne, _mm512_xor_si512(borrow, one01));
    const V gemask = _mm512_sub_epi64(zerov, ge01);
    for (std::size_t w = 0; w < n; ++w) {
      const V sel = _mm512_xor_si512(
          Tl[g][w],
          _mm512_and_si512(_mm512_xor_si512(Tl[g][w], diff[w]), gemask));
      _mm512_store_si512(bufr[w] + g * K, sel);
    }
  }
  for (std::size_t l = 0; l < k; ++l) {
    for (std::size_t w = 0; w < n; ++w) jobs[l].r[w] = bufr[w][l];
  }
}

template <unsigned F, unsigned G>
void run_width52(const MontJob* jobs, std::size_t k, const Limb* m, Limb n0,
                 std::size_t n, unsigned e) {
  std::size_t i = 0;
  if constexpr (G > 1) {
    while (k - i > K) {
      const std::size_t c = k - i < G * K ? k - i : G * K;
      mont_mul_groups52<F, G>(jobs + i, c, m, n0, n, e);
      i += c;
    }
  }
  for (; i < k; i += K) {
    mont_mul_groups52<F, 1>(jobs + i, k - i < K ? k - i : K, m, n0, n, e);
  }
}

// f = ceil(64n/52), e = 52f - 64n per width.
bool run_all52(const MontJob* jobs, std::size_t k, const Limb* m, Limb n0,
               std::size_t n) {
  switch (n) {
    case 2: run_width52<3, 4>(jobs, k, m, n0, n, 28); return true;
    case 4: run_width52<5, 2>(jobs, k, m, n0, n, 4); return true;
    case 8: run_width52<10, 1>(jobs, k, m, n0, n, 8); return true;
    case 16: run_width52<20, 1>(jobs, k, m, n0, n, 16); return true;
    default: return false;
  }
}

}  // namespace

bool compiled_avx512ifma() { return true; }

bool run_avx512ifma(const MontJob* jobs, std::size_t k, const limb::Limb* m,
                    limb::Limb n0, std::size_t n) {
  return run_all52(jobs, k, m, n0, n);
}

}  // namespace ppms::simd::detail

#else  // !__AVX512IFMA__

namespace ppms::simd::detail {

bool compiled_avx512ifma() { return false; }

bool run_avx512ifma(const MontJob*, std::size_t, const limb::Limb*,
                    limb::Limb, std::size_t) {
  return false;
}

}  // namespace ppms::simd::detail

#endif
