#include "bigint/montgomery.h"

#include <array>
#include <stdexcept>

namespace ppms {

namespace {

// -x^{-1} mod 2^32 for odd x, by Newton iteration (doubles correct bits).
std::uint32_t neg_inverse_u32(std::uint32_t x) {
  std::uint32_t inv = x;  // correct to 3 bits (x odd => x*x ≡ 1 mod 8)
  for (int i = 0; i < 4; ++i) inv *= 2 - x * inv;
  return ~inv + 1;  // -(x^{-1})
}

}  // namespace

bool MontgomeryCtx::would_use_flat(const Bigint& m) {
  return flat_limbs_enabled() && FpCtx::supports(m) &&
         m.raw_limbs().size() % 2 == 0;
}

MontgomeryCtx::MontgomeryCtx(const Bigint& m) : m_(m) {
  if (m.sign() <= 0 || m.is_even() || m.is_one()) {
    throw std::invalid_argument("MontgomeryCtx: modulus must be odd and > 1");
  }
  m_limbs_ = m.raw_limbs();
  n0_ = neg_inverse_u32(m_limbs_[0]);
  const std::size_t n = m_limbs_.size();
  const Bigint r = Bigint::two_pow(32 * n);
  r_mod_m_ = r.mod(m_);
  r2_mod_m_ = (r_mod_m_ * r_mod_m_).mod(m_);
  if (would_use_flat(m)) fp_ = fp_ctx(m);
}

std::vector<std::uint32_t> MontgomeryCtx::reduce(
    const std::vector<std::uint32_t>& t) const {
  // CIOS Montgomery reduction of t (< m * R) to t * R^{-1} mod m.
  const std::size_t n = m_limbs_.size();
  // The "multiply" part of REDC is already done, so work starts as t
  // (padded to 2n+1) and we fold limb by limb.
  std::vector<std::uint32_t> work(2 * n + 1, 0);
  for (std::size_t i = 0; i < t.size() && i < work.size(); ++i) work[i] = t[i];

  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t u = work[i] * n0_;
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t cur =
          static_cast<std::uint64_t>(work[i + j]) +
          static_cast<std::uint64_t>(u) * m_limbs_[j] + carry;
      work[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + n;
    while (carry) {
      // The accumulated value is < R² + m·R < 2^(64n+1), so the ripple can
      // reach work[2n] but never past it; a wider t would silently write
      // out of bounds, hence the hard check.
      if (k >= work.size()) {
        throw std::logic_error("MontgomeryCtx::reduce: carry out of bounds");
      }
      const std::uint64_t cur = static_cast<std::uint64_t>(work[k]) + carry;
      work[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  // Result is work[n .. 2n].
  std::vector<std::uint32_t> res(work.begin() + static_cast<std::ptrdiff_t>(n),
                                 work.end());
  Bigint r = Bigint::from_raw_limbs(std::move(res));
  if (r >= m_) r -= m_;
  // In-domain inputs (t < m·R) are fully reduced by the single subtraction;
  // from_mont on an arbitrary 2n-limb value (t up to R²-1) can leave up to
  // R + m, so fall back to a real reduction rather than return a value >= m.
  if (r >= m_) r = r.mod(m_);
  return r.raw_limbs();
}

Bigint MontgomeryCtx::to_mont(const Bigint& x) const {
  return mul(x.mod(m_), r2_mod_m_);
}

Bigint MontgomeryCtx::from_mont(const Bigint& x) const {
  if (fp_ && !x.is_negative() &&
      x.raw_limbs().size() <= 2 * m_limbs_.size()) {
    // Same R (see would_use_flat), so the wide 64-bit REDC computes the
    // identical x·R^{-1} mod m value.
    return fp_->redc_wide(x);
  }
  return Bigint::from_raw_limbs(reduce(x.raw_limbs()));
}

Bigint MontgomeryCtx::mul(const Bigint& a, const Bigint& b) const {
  const std::size_t n = m_limbs_.size();
  const std::vector<std::uint32_t>& al = a.raw_limbs();
  const std::vector<std::uint32_t>& bl = b.raw_limbs();
  if (a.is_negative() || b.is_negative() || al.size() > n || bl.size() > n) {
    // Out-of-domain operand: take the general multiply-then-reduce path.
    const Bigint t = a * b;
    return Bigint::from_raw_limbs(reduce(t.raw_limbs()));
  }
  if (fp_) {
    // Flat bridge: one 64-bit CIOS instead of the 32-bit fused loop. Both
    // fully reduce operands < m; for in-width operands >= m the same
    // post-reduction fallback below applies.
    FpElem r;
    fp_->mul(r, fp_->pack(a), fp_->pack(b));
    Bigint out = fp_->unpack(r);
    if (out >= m_) out = out.mod(m_);
    return out;
  }
  // Fused CIOS: interleave the a_i·b row products with the REDC folds so
  // the double-width product never materializes. One accumulator of n+2
  // limbs on the stack (moduli here are at most a few dozen limbs) is the
  // whole working set — the separate a·b Bigint and the 2n+1-limb scratch
  // of the unfused path were costing the hot paths more in allocator
  // traffic than in arithmetic.
  constexpr std::size_t kStackLimbs = 66;  // up to 2048-bit moduli
  std::array<std::uint32_t, kStackLimbs + 2> stack_buf;
  std::vector<std::uint32_t> heap_buf;
  std::uint32_t* t;
  if (n <= kStackLimbs) {
    t = stack_buf.data();
  } else {
    heap_buf.resize(n + 2);
    t = heap_buf.data();
  }
  for (std::size_t i = 0; i < n + 2; ++i) t[i] = 0;

  for (std::size_t i = 0; i < n; ++i) {
    // t += a_i · b.
    const std::uint64_t ai = i < al.size() ? al[i] : 0;
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t bj = j < bl.size() ? bl[j] : 0;
      const std::uint64_t cur =
          static_cast<std::uint64_t>(t[j]) + ai * bj + carry;
      t[j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::uint64_t cur = static_cast<std::uint64_t>(t[n]) + carry;
    t[n] = static_cast<std::uint32_t>(cur);
    t[n + 1] = static_cast<std::uint32_t>(cur >> 32);
    // REDC fold: make t divisible by 2^32 and shift down one limb.
    const std::uint32_t u = t[0] * n0_;
    cur = static_cast<std::uint64_t>(t[0]) +
          static_cast<std::uint64_t>(u) * m_limbs_[0];
    carry = cur >> 32;
    for (std::size_t j = 1; j < n; ++j) {
      cur = static_cast<std::uint64_t>(t[j]) +
            static_cast<std::uint64_t>(u) * m_limbs_[j] + carry;
      t[j - 1] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    cur = static_cast<std::uint64_t>(t[n]) + carry;
    t[n - 1] = static_cast<std::uint32_t>(cur);
    t[n] = t[n + 1] + static_cast<std::uint32_t>(cur >> 32);
    t[n + 1] = 0;
  }

  // Result sits in t[0..n] with t[n] <= 1; one conditional subtraction of
  // m brings in-domain operands (< m) fully below m.
  bool ge = t[n] != 0;
  if (!ge) {
    ge = true;
    for (std::size_t j = n; j-- > 0;) {
      if (t[j] != m_limbs_[j]) {
        ge = t[j] > m_limbs_[j];
        break;
      }
    }
  }
  if (ge) {
    std::uint64_t borrow = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint64_t cur = static_cast<std::uint64_t>(t[j]) -
                                m_limbs_[j] - borrow;
      t[j] = static_cast<std::uint32_t>(cur);
      borrow = (cur >> 32) & 1;
    }
    t[n] -= static_cast<std::uint32_t>(borrow);
  }
  Bigint r = Bigint::from_raw_limbs(
      std::vector<std::uint32_t>(t, t + n + 1));
  // Operands below m always land below m after the one subtraction; the
  // fallback covers callers that passed n-limb values >= m.
  if (r >= m_) r = r.mod(m_);
  return r;
}

Bigint MontgomeryCtx::pow(const Bigint& base, const Bigint& exp) const {
  if (exp.is_negative()) {
    throw std::invalid_argument("MontgomeryCtx::pow: negative exponent");
  }
  if (exp.is_zero()) return Bigint(1).mod(m_);

  if (fp_) {
    // Same sliding-window schedule, run natively on stack residues: the
    // whole ladder is allocation-free and converts to Bigint exactly once
    // at each end. Every intermediate is the same fully reduced value the
    // 32-bit ladder holds, so results match bit for bit.
    const FpCtx& F = *fp_;
    const FpElem b_mont = F.to_mont(base);
    constexpr std::size_t kWindow = 4;
    std::array<FpElem, 1 << (kWindow - 1)> odd_powers;
    odd_powers[0] = b_mont;
    FpElem b2;
    F.sqr(b2, b_mont);
    for (std::size_t i = 1; i < odd_powers.size(); ++i) {
      F.mul(odd_powers[i], odd_powers[i - 1], b2);
    }
    FpElem acc = F.one();
    std::ptrdiff_t i = static_cast<std::ptrdiff_t>(exp.bit_length()) - 1;
    while (i >= 0) {
      if (!exp.bit(static_cast<std::size_t>(i))) {
        F.sqr(acc, acc);
        --i;
        continue;
      }
      std::ptrdiff_t j = std::max<std::ptrdiff_t>(0, i - kWindow + 1);
      while (!exp.bit(static_cast<std::size_t>(j))) ++j;
      std::uint32_t window = 0;
      for (std::ptrdiff_t k = i; k >= j; --k) {
        F.sqr(acc, acc);
        window =
            (window << 1) | (exp.bit(static_cast<std::size_t>(k)) ? 1 : 0);
      }
      F.mul(acc, acc, odd_powers[(window - 1) / 2]);
      i = j - 1;
    }
    return F.from_mont(acc);
  }

  const Bigint b_mont = to_mont(base);
  // Sliding window of width 4: precompute odd powers b^1, b^3, ..., b^15.
  constexpr std::size_t kWindow = 4;
  std::array<Bigint, 1 << (kWindow - 1)> odd_powers;
  odd_powers[0] = b_mont;
  const Bigint b2 = mul(b_mont, b_mont);
  for (std::size_t i = 1; i < odd_powers.size(); ++i) {
    odd_powers[i] = mul(odd_powers[i - 1], b2);
  }

  Bigint acc = r_mod_m_;  // 1 in Montgomery form
  std::ptrdiff_t i = static_cast<std::ptrdiff_t>(exp.bit_length()) - 1;
  while (i >= 0) {
    if (!exp.bit(static_cast<std::size_t>(i))) {
      acc = mul(acc, acc);
      --i;
      continue;
    }
    // Find the longest window [j, i] with j > i - kWindow whose low bit is 1.
    std::ptrdiff_t j = std::max<std::ptrdiff_t>(0, i - kWindow + 1);
    while (!exp.bit(static_cast<std::size_t>(j))) ++j;
    std::uint32_t window = 0;
    for (std::ptrdiff_t k = i; k >= j; --k) {
      acc = mul(acc, acc);
      window = (window << 1) | (exp.bit(static_cast<std::size_t>(k)) ? 1 : 0);
    }
    acc = mul(acc, odd_powers[(window - 1) / 2]);
    i = j - 1;
  }
  return from_mont(acc);
}

FixedBasePow::FixedBasePow(std::shared_ptr<const MontgomeryCtx> ctx,
                           const Bigint& base, std::size_t max_exp_bits)
    : ctx_(std::move(ctx)), base_(base) {
  if (!ctx_) {
    throw std::invalid_argument("FixedBasePow: null context");
  }
  const std::size_t digits = (max_exp_bits + 3) / 4;
  table_.resize(digits);
  // cur = base^(16^i) in Montgomery form, advanced one digit per row via
  // base^(15·16^i) · base^(16^i) — one product instead of four squarings.
  Bigint cur = ctx_->to_mont(base);
  for (std::size_t i = 0; i < digits; ++i) {
    auto& row = table_[i];
    row.reserve(15);
    row.push_back(cur);
    for (int d = 2; d <= 15; ++d) {
      row.push_back(ctx_->mul(row.back(), cur));
    }
    cur = ctx_->mul(row.back(), cur);
  }
  if (const FpCtx* F = ctx_->flat_ctx()) {
    flat_table_.resize(table_.size());
    for (std::size_t i = 0; i < table_.size(); ++i) {
      flat_table_[i].reserve(table_[i].size());
      for (const Bigint& entry : table_[i]) {
        flat_table_[i].push_back(F->pack(entry));
      }
    }
  }
}

Bigint FixedBasePow::pow(const Bigint& exp) const {
  if (exp.is_negative()) {
    throw std::invalid_argument("FixedBasePow::pow: negative exponent");
  }
  const std::size_t bits = exp.bit_length();
  if (bits > 4 * table_.size()) return ctx_->pow(base_, exp);
  // Flat path: gather the nonzero-digit entries and fold them pairwise,
  // each tree level one lane-batched mul_batch call. Montgomery products
  // of reduced operands are canonical, so the balanced tree returns the
  // same limbs as the sequential acc-chain below.
  if (!flat_table_.empty()) {
    const FpCtx* F = ctx_->flat_ctx();
    std::vector<const FpElem*> items;
    items.reserve((bits + 3) / 4);
    for (std::size_t i = 0; i * 4 < bits; ++i) {
      const std::uint32_t d = (exp.bit(4 * i) ? 1u : 0u) |
                              (exp.bit(4 * i + 1) ? 2u : 0u) |
                              (exp.bit(4 * i + 2) ? 4u : 0u) |
                              (exp.bit(4 * i + 3) ? 8u : 0u);
      if (d) items.push_back(&flat_table_[i][d - 1]);
    }
    if (items.empty()) return ctx_->from_mont(ctx_->mont_one());
    std::vector<FpElem> buf(items.size());  // stable fold scratch
    std::vector<FpCtx::MulJob> jobs;
    std::size_t used = 0;
    while (items.size() > 1) {
      jobs.clear();
      std::size_t out = 0;
      std::size_t i = 0;
      for (; i + 1 < items.size(); i += 2) {
        FpElem& dst = buf[used++];
        jobs.push_back(FpCtx::MulJob{&dst, items[i], items[i + 1]});
        items[out++] = &dst;
      }
      if (i < items.size()) items[out++] = items[i];
      items.resize(out);
      F->mul_batch(jobs.data(), jobs.size());
    }
    return F->from_mont(*items[0]);
  }
  Bigint acc = ctx_->mont_one();
  for (std::size_t i = 0; i * 4 < bits; ++i) {
    const std::uint32_t d = (exp.bit(4 * i) ? 1u : 0u) |
                            (exp.bit(4 * i + 1) ? 2u : 0u) |
                            (exp.bit(4 * i + 2) ? 4u : 0u) |
                            (exp.bit(4 * i + 3) ? 8u : 0u);
    if (d) acc = ctx_->mul(acc, table_[i][d - 1]);
  }
  return ctx_->from_mont(acc);
}

}  // namespace ppms
