#include "bigint/modarith.h"

#include <array>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "bigint/montgomery.h"
#include "obs/metrics.h"

namespace ppms {

namespace {

// Counter only on this hot path: modexp calls are sub-microsecond at the
// small benchmark sizes, so a ScopedTimer's clock reads would dominate.
void count_modexp() {
  static obs::Counter& obs_calls = obs::counter("crypto.modexp.calls");
  obs_calls.add();
}

}  // namespace

namespace {

// Montgomery only pays off once the per-modulus setup amortizes over many
// multiplications; below this exponent size the plain window wins.
constexpr std::size_t kMontgomeryMinExpBits = 17;

// Per-modulus context cache. Readers (the overwhelmingly common case once a
// protocol session is warm) take a shared lock; the first exponentiation
// against a new modulus takes the exclusive lock to insert. Bounded so a
// workload sweeping many throwaway moduli (e.g. prime generation, which
// deliberately bypasses the cache) cannot grow it without limit.
constexpr std::size_t kMontgomeryCacheCapacity = 64;

struct CtxCache {
  std::shared_mutex mutex;
  std::unordered_map<std::string, std::shared_ptr<const MontgomeryCtx>> map;
};

CtxCache& ctx_cache() {
  static CtxCache cache;
  return cache;
}

std::string ctx_cache_key(const Bigint& m) {
  const auto& limbs = m.raw_limbs();
  return std::string(reinterpret_cast<const char*>(limbs.data()),
                     limbs.size() * sizeof(limbs[0]));
}

}  // namespace

std::shared_ptr<const MontgomeryCtx> montgomery_ctx(const Bigint& m) {
  if (m.sign() <= 0 || m.is_even() || m.is_one()) {
    throw std::invalid_argument("montgomery_ctx: modulus must be odd and > 1");
  }
  CtxCache& cache = ctx_cache();
  const std::string key = ctx_cache_key(m);
  // A cached context is only good while its kernel choice matches what a
  // fresh build would pick: contexts capture the flat-limb switch at
  // construction, so a toggle (tests, the ablation bench) makes stale
  // entries rebuild on their next lookup.
  const bool want_flat = MontgomeryCtx::would_use_flat(m);
  {
    std::shared_lock lock(cache.mutex);
    const auto it = cache.map.find(key);
    if (it != cache.map.end() && it->second->flat() == want_flat) {
      return it->second;
    }
  }
  // Build outside the exclusive section: the two divisions for R mod m and
  // R² mod m are exactly the cost we do not want serialized behind a lock.
  auto ctx = std::make_shared<const MontgomeryCtx>(m);
  std::unique_lock lock(cache.mutex);
  if (cache.map.size() >= kMontgomeryCacheCapacity &&
      cache.map.find(key) == cache.map.end()) {
    // Evict wholesale; outstanding shared_ptrs keep their contexts alive
    // and the live moduli repopulate on their next call.
    cache.map.clear();
  }
  auto [it, inserted] = cache.map.emplace(key, ctx);
  if (!inserted && it->second->flat() != ctx->flat()) {
    it->second = std::move(ctx);  // replace a stale-mode entry
  }
  return it->second;  // a racing thread's insert wins; both are equivalent
}

std::size_t montgomery_cache_size() {
  CtxCache& cache = ctx_cache();
  std::shared_lock lock(cache.mutex);
  return cache.map.size();
}

void montgomery_cache_clear() {
  CtxCache& cache = ctx_cache();
  std::unique_lock lock(cache.mutex);
  cache.map.clear();
}

Bigint modmul(const Bigint& a, const Bigint& b, const Bigint& m) {
  if (m.sign() <= 0) throw std::domain_error("modmul: modulus must be > 0");
  return (a * b).mod(m);
}

Bigint modexp_binary(const Bigint& base, const Bigint& exp, const Bigint& m) {
  if (m.sign() <= 0) {
    throw std::domain_error("modexp: modulus must be > 0");
  }
  if (exp.is_negative()) {
    throw std::invalid_argument("modexp: negative exponent");
  }
  if (m.is_one()) return Bigint();  // canonical zero
  Bigint result = Bigint(1).mod(m);
  Bigint b = base.mod(m);
  for (std::size_t i = exp.bit_length(); i-- > 0;) {
    result = (result * result).mod(m);
    if (exp.bit(i)) result = (result * b).mod(m);
  }
  return result;
}

Bigint modexp_window(const Bigint& base, const Bigint& exp, const Bigint& m) {
  if (m.sign() <= 0) {
    throw std::domain_error("modexp: modulus must be > 0");
  }
  if (exp.is_negative()) {
    throw std::invalid_argument("modexp: negative exponent");
  }
  if (m.is_one()) return Bigint();  // canonical zero
  if (exp.is_zero()) return Bigint(1).mod(m);

  constexpr std::size_t kWindow = 4;
  const Bigint b = base.mod(m);
  std::array<Bigint, 1 << (kWindow - 1)> odd_powers;
  odd_powers[0] = b;
  const Bigint b2 = (b * b).mod(m);
  for (std::size_t i = 1; i < odd_powers.size(); ++i) {
    odd_powers[i] = (odd_powers[i - 1] * b2).mod(m);
  }
  Bigint acc = Bigint(1).mod(m);
  std::ptrdiff_t i = static_cast<std::ptrdiff_t>(exp.bit_length()) - 1;
  while (i >= 0) {
    if (!exp.bit(static_cast<std::size_t>(i))) {
      acc = (acc * acc).mod(m);
      --i;
      continue;
    }
    std::ptrdiff_t j = std::max<std::ptrdiff_t>(0, i - kWindow + 1);
    while (!exp.bit(static_cast<std::size_t>(j))) ++j;
    std::uint32_t window = 0;
    for (std::ptrdiff_t k = i; k >= j; --k) {
      acc = (acc * acc).mod(m);
      window = (window << 1) | (exp.bit(static_cast<std::size_t>(k)) ? 1 : 0);
    }
    acc = (acc * odd_powers[(window - 1) / 2]).mod(m);
    i = j - 1;
  }
  return acc;
}

Bigint modexp_montgomery(const Bigint& base, const Bigint& exp,
                         const Bigint& m) {
  if (exp.is_negative()) {
    throw std::invalid_argument("modexp: negative exponent");
  }
  if (m.is_one()) return Bigint();  // canonical zero, like the other paths
  return MontgomeryCtx(m).pow(base, exp);
}

Bigint modexp(const Bigint& base, const Bigint& exp,
              const MontgomeryCtx& ctx) {
  count_modexp();
  if (exp.is_negative()) {
    throw std::invalid_argument("modexp: negative exponent");
  }
  return ctx.pow(base, exp);
}

Bigint modexp(const Bigint& base, const Bigint& exp, const Bigint& m) {
  count_modexp();
  if (m.sign() <= 0) {
    throw std::domain_error("modexp: modulus must be > 0");
  }
  if (exp.is_negative()) {
    throw std::invalid_argument("modexp: negative exponent");
  }
  // Explicit dispatch, in order:
  //  1. m == 1: everything is congruent to canonical zero.
  //  2. even m: Montgomery requires an odd modulus, window handles any m.
  //  3. short exponents: the per-modulus setup (even cached, the lookup)
  //     does not amortize; plain window wins.
  //  4. odd m, long exponent: Montgomery with the shared per-modulus
  //     context from the cache.
  if (m.is_one()) return Bigint();
  if (m.is_even()) return modexp_window(base, exp, m);
  if (exp.bit_length() < kMontgomeryMinExpBits) {
    return modexp_window(base, exp, m);
  }
  return montgomery_ctx(m)->pow(base, exp);
}

std::optional<Bigint> mod_sqrt(const Bigint& a, const Bigint& p,
                               SecureRandom& rng) {
  if (p < Bigint(3) || p.is_even()) {
    throw std::invalid_argument("mod_sqrt: p must be an odd prime >= 3");
  }
  const Bigint x = a.mod(p);
  if (x.is_zero()) return Bigint(0);
  if (jacobi(x, p) != 1) return std::nullopt;

  // Fast path: p ≡ 3 (mod 4).
  if ((p % Bigint(4)).to_u64() == 3) {
    return modexp(x, (p + Bigint(1)) / Bigint(4), p);
  }

  // Tonelli-Shanks. Write p - 1 = q·2^s with q odd.
  Bigint q = p - Bigint(1);
  std::size_t s = 0;
  while (q.is_even()) {
    q = q >> 1;
    ++s;
  }
  // A quadratic non-residue z (half of all elements qualify).
  Bigint z;
  do {
    z = Bigint::random_range(rng, Bigint(2), p);
  } while (jacobi(z, p) != -1);

  Bigint m = Bigint::from_u64(s);
  Bigint c = modexp(z, q, p);
  Bigint t = modexp(x, q, p);
  Bigint r = modexp(x, (q + Bigint(1)) / Bigint(2), p);
  while (!t.is_one()) {
    // Least i with t^(2^i) == 1.
    std::uint64_t i = 0;
    Bigint t2 = t;
    while (!t2.is_one()) {
      t2 = (t2 * t2).mod(p);
      ++i;
    }
    const Bigint b =
        modexp(c, Bigint::two_pow(
                      static_cast<std::size_t>(m.to_u64() - i - 1)),
               p);
    m = Bigint::from_u64(i);
    c = (b * b).mod(p);
    t = (t * c).mod(p);
    r = (r * b).mod(p);
  }
  return r;
}

Bigint isqrt(const Bigint& n) {
  if (n.is_negative()) throw std::domain_error("isqrt: negative input");
  if (n < Bigint(2)) return n;
  // Newton: x_{k+1} = (x_k + n / x_k) / 2, seeded above the root.
  Bigint x = Bigint::two_pow(n.bit_length() / 2 + 1);
  for (;;) {
    const Bigint y = (x + n / x) >> 1;
    if (y >= x) break;
    x = y;
  }
  return x;
}

}  // namespace ppms
