// Flat-limb kernels: mpn-style fixed-width arithmetic over raw uint64_t
// arrays, and the FpCtx/FpElem/Fp2Elem layer the pairing hot paths run on.
//
// `ppms::Bigint` pays a heap-allocated limb vector plus sign/size
// normalization on every operation; inside a Miller loop that allocator
// traffic is the measured floor, not the multiplies. The kernels here are
// the GMP-`mpn` shape instead: little-endian 64-bit limb arrays of a
// caller-known width, no allocation, no sign logic, carries returned to
// the caller. On top of them `FpCtx` fixes one odd modulus at setup
// (market creation) and `FpElem` is a stack-resident residue sized to it;
// every Montgomery product runs CIOS with 64-bit limbs — half the limb
// count and a quarter of the single-word multiplies of the 32-bit path —
// and never touches the heap.
//
// Conversion discipline: `Bigint` appears only at API boundaries
// (`to_mont` / `from_mont` / `redc_wide`). Everything between stays on raw
// limbs. The legacy Bigint path is kept, bit-identical, as the
// differential oracle behind the `PPMS_FLAT_LIMBS` switch below; see
// tests/bigint/flatlimb_diff_test.cpp for the adversarial suite that pins
// the two together.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "bigint/bigint.h"

namespace ppms {

namespace simd {
struct MontJob;
}

/// Runtime switch for the flat-limb fast path. The compiled default is the
/// CMake option PPMS_FLAT_LIMBS (ON unless configured out); the environment
/// variable PPMS_FLAT_LIMBS=0/off/false (resp. 1/on/true) overrides it at
/// process start, and tests/benches may flip it explicitly. Contexts and
/// engines capture the flag at construction; the per-modulus caches rebuild
/// on a mode change, so toggling is coherent but not free.
bool flat_limbs_enabled();
void set_flat_limbs_enabled(bool on);

namespace limb {

using Limb = std::uint64_t;
__extension__ typedef unsigned __int128 Dlimb;  // double-limb accumulator

/// Widest modulus the flat path accepts, in 64-bit limbs (2048 bits).
/// Wider moduli stay on the Bigint oracle path.
inline constexpr std::size_t kMaxFpLimbs = 32;

// All kernels operate on little-endian arrays of exactly `n` limbs unless
// a separate length is given. Output may alias either input for add_n and
// sub_n; mul/sqr require a disjoint output (they write before reading
// would finish).

/// r = a + b, returns the carry out (0 or 1).
Limb add_n(Limb* r, const Limb* a, const Limb* b, std::size_t n);

/// r = a - b, returns the borrow out (0 or 1).
Limb sub_n(Limb* r, const Limb* a, const Limb* b, std::size_t n);

/// r[0..an+bn) = a * b (schoolbook). r must not alias a or b.
void mul(Limb* r, const Limb* a, std::size_t an, const Limb* b,
         std::size_t bn);

/// r[0..2n) = a². Off-diagonal products are computed once and doubled.
/// r must not alias a.
void sqr(Limb* r, const Limb* a, std::size_t n);

/// Lexicographic magnitude compare: -1, 0, +1.
int cmp_n(const Limb* a, const Limb* b, std::size_t n);

/// True when all n limbs are zero.
bool is_zero_n(const Limb* a, std::size_t n);

/// Fused CIOS Montgomery product: r = a·b·2^{-64n} mod m for a, b < 2^{64n},
/// m odd, n0 = -m^{-1} mod 2^64. The accumulator lives on the stack; r may
/// alias a or b. For a, b < m the result is fully reduced; for larger
/// in-width operands it is < m + 2^{64n} and the caller must post-reduce.
/// Precondition: 1 <= n <= kMaxFpLimbs — the stack accumulator is sized to
/// kMaxFpLimbs, so a wider caller-supplied n would smash it; out-of-range n
/// throws std::invalid_argument instead of writing out of bounds.
void cios_mont_mul(Limb* r, const Limb* a, const Limb* b, const Limb* m,
                   Limb n0, std::size_t n);

/// -m^{-1} mod 2^64 for odd m0 (Newton iteration).
Limb neg_inverse(Limb m0);

}  // namespace limb

/// One residue mod the FpCtx modulus: a fixed-capacity stack array of which
/// the context's first `limbs()` entries are significant. Plain aggregate —
/// copies are memcpy, no allocation anywhere.
struct FpElem {
  std::array<limb::Limb, limb::kMaxFpLimbs> v{};
};

/// F_p² element (a + b·i) over FpElem coordinates; the flat counterpart of
/// `Fp2` for the pairing's target field.
struct Fp2Elem {
  FpElem a, b;
};

/// Fixed-modulus flat-limb field context, sized to the market modulus at
/// setup. Precomputes n0' and R², then serves allocation-free modular
/// arithmetic on FpElem. All methods are const and thread-safe; one context
/// is shared per modulus via `fp_ctx`.
class FpCtx {
 public:
  /// Requires m odd, > 1 and at most kMaxFpLimbs·64 bits wide; throws
  /// std::invalid_argument otherwise (use supports() to pre-check).
  explicit FpCtx(const Bigint& m);

  /// True when FpCtx(m) would succeed.
  static bool supports(const Bigint& m);

  /// Significant limbs of every element under this context.
  std::size_t limbs() const { return n_; }

  const Bigint& modulus() const { return m_big_; }

  FpElem zero() const { return FpElem{}; }

  /// 1 in Montgomery form (R mod m).
  const FpElem& one() const { return r_mod_m_; }

  bool is_zero(const FpElem& a) const { return limb::is_zero_n(a.v.data(), n_); }
  bool equal(const FpElem& a, const FpElem& b) const {
    return limb::cmp_n(a.v.data(), b.v.data(), n_) == 0;
  }

  // Modular ring ops on reduced elements (linear ops are domain-agnostic;
  // mul/sqr are Montgomery products). Outputs may alias inputs. Defined
  // inline: at pairing widths (2–4 limbs) these are a handful of
  // instructions, and the call into three limb kernels (add_n + cmp_n +
  // sub_n) costs more than the arithmetic — the Miller-loop profile is
  // dominated by them once the products are lane-batched. One fused pass
  // computes both the raw result and its modulus-adjusted sibling, then a
  // mask picks the reduced one; temporaries make aliasing trivially safe.
  void add(FpElem& r, const FpElem& a, const FpElem& b) const {
    add_raw(r.v.data(), a.v.data(), b.v.data());
  }
  void sub(FpElem& r, const FpElem& a, const FpElem& b) const {
    sub_raw(r.v.data(), a.v.data(), b.v.data());
  }
  void neg(FpElem& r, const FpElem& a) const {
    neg_raw(r.v.data(), a.v.data());
  }
  // Raw-pointer forms of the linear ops for callers that keep residues in
  // compact limbs()-stride arrays instead of full-width FpElems (batch
  // scratch, line tables). Each array holds limbs() limbs; outputs may
  // alias inputs.
  void add_raw(limb::Limb* r, const limb::Limb* a, const limb::Limb* b) const {
    limb::Limb t[limb::kMaxFpLimbs], s[limb::kMaxFpLimbs];
    limb::Limb c = 0, bw = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      const limb::Dlimb sum =
          static_cast<limb::Dlimb>(a[i]) + b[i] + c;
      t[i] = static_cast<limb::Limb>(sum);
      c = static_cast<limb::Limb>(sum >> 64);
      const limb::Dlimb dif =
          static_cast<limb::Dlimb>(t[i]) - m_[i] - bw;
      s[i] = static_cast<limb::Limb>(dif);
      bw = static_cast<limb::Limb>(dif >> 64) & 1;
    }
    // Reduce when the sum overflowed n limbs or reached m (no borrow).
    const limb::Limb mask = 0 - (c | (bw ^ 1));
    for (std::size_t i = 0; i < n_; ++i) {
      r[i] = (s[i] & mask) | (t[i] & ~mask);
    }
  }
  void sub_raw(limb::Limb* r, const limb::Limb* a, const limb::Limb* b) const {
    limb::Limb d[limb::kMaxFpLimbs], s[limb::kMaxFpLimbs];
    limb::Limb c = 0, bw = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      const limb::Dlimb dif =
          static_cast<limb::Dlimb>(a[i]) - b[i] - bw;
      d[i] = static_cast<limb::Limb>(dif);
      bw = static_cast<limb::Limb>(dif >> 64) & 1;
      const limb::Dlimb sum =
          static_cast<limb::Dlimb>(d[i]) + m_[i] + c;
      s[i] = static_cast<limb::Limb>(sum);
      c = static_cast<limb::Limb>(sum >> 64);
    }
    const limb::Limb mask = 0 - bw;  // borrowed: take d + m
    for (std::size_t i = 0; i < n_; ++i) {
      r[i] = (s[i] & mask) | (d[i] & ~mask);
    }
  }
  void neg_raw(limb::Limb* r, const limb::Limb* a) const {
    limb::Limb s[limb::kMaxFpLimbs];
    limb::Limb nz = 0, bw = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      nz |= a[i];
      const limb::Dlimb dif =
          static_cast<limb::Dlimb>(m_[i]) - a[i] - bw;
      s[i] = static_cast<limb::Limb>(dif);
      bw = static_cast<limb::Limb>(dif >> 64) & 1;
    }
    const limb::Limb mask = 0 - static_cast<limb::Limb>(nz != 0);
    for (std::size_t i = 0; i < n_; ++i) r[i] = s[i] & mask;
  }
  void dbl(FpElem& r, const FpElem& a) const { add(r, a, a); }
  void mul(FpElem& r, const FpElem& a, const FpElem& b) const {
    limb::cios_mont_mul(r.v.data(), a.v.data(), b.v.data(), m_.data(), n0_,
                        n_);
  }
  void sqr(FpElem& r, const FpElem& a) const { mul(r, a, a); }

  /// x (any integer) into Montgomery form: x·R mod m.
  FpElem to_mont(const Bigint& x) const;

  /// Montgomery-form element back to an ordinary Bigint residue.
  Bigint from_mont(const FpElem& a) const;

  /// Copy the low limbs of a non-negative x < 2^{64·limbs()} into an FpElem
  /// without any domain change (pack) and back (unpack). Used by the
  /// MontgomeryCtx bridge, whose callers hold Montgomery-form Bigints.
  FpElem pack(const Bigint& x) const;
  Bigint unpack(const FpElem& a) const;

  /// t · R^{-1} mod m for any t in [0, R²) given as a Bigint — the wide
  /// REDC that backs MontgomeryCtx::from_mont on arbitrary 2n-limb input.
  Bigint redc_wide(const Bigint& t) const;

  /// R² mod m in pack() form (the to_mont multiplier), for callers running
  /// their own ladders.
  const FpElem& r2() const { return r2_mod_m_; }

  /// One queued Montgomery product for mul_batch. The output may alias the
  /// job's own inputs, but must not alias the operands of any other job in
  /// the same batch: the batch is computed as-if simultaneously (SIMD lane
  /// groups), not sequentially.
  struct MulJob {
    FpElem* r;
    const FpElem* a;
    const FpElem* b;
  };

  /// Run k independent Montgomery products, lane-batched across SIMD
  /// lanes when the dispatch level (bigint/simd.h) allows, in-order scalar
  /// otherwise. Either way every job executes and each result is the exact
  /// cios_mont_mul output.
  void mul_batch(const MulJob* jobs, std::size_t k) const;

  /// Same batch on raw-pointer jobs (each pointer addresses limbs() limbs),
  /// for callers that already hold compact limb arrays — skips the
  /// FpElem-to-raw repackaging pass mul_batch does.
  void mul_batch_raw(const simd::MontJob* jobs, std::size_t k) const;

  /// Squaring batch: r[i] = a[i]² in the Montgomery domain.
  void sqr_batch(FpElem* const* r, const FpElem* const* a,
                 std::size_t k) const;

 private:
  std::size_t n_ = 0;
  limb::Limb n0_ = 0;
  std::array<limb::Limb, limb::kMaxFpLimbs> m_{};
  FpElem r_mod_m_;   // R mod m
  FpElem r2_mod_m_;  // R² mod m
  Bigint m_big_;
};

/// Collects independent Montgomery products and flushes them through
/// FpCtx::mul_batch in one call, so hot loops can phrase "these k products
/// don't depend on each other" without touching the SIMD layer directly.
/// Queued outputs must not alias other queued jobs' inputs (scratch
/// outputs make this trivial); flush() preserves queue order for the
/// scalar fallback. The referenced FpCtx and every queued operand must
/// outlive the flush.
class FpLaneBatch {
 public:
  explicit FpLaneBatch(const FpCtx& F) : F_(&F) {}

  void mul(FpElem& r, const FpElem& a, const FpElem& b) {
    jobs_.push_back(FpCtx::MulJob{&r, &a, &b});
  }
  void sqr(FpElem& r, const FpElem& a) {
    jobs_.push_back(FpCtx::MulJob{&r, &a, &a});
  }

  std::size_t pending() const { return jobs_.size(); }
  void reserve(std::size_t n) { jobs_.reserve(n); }

  /// Run everything queued since the last flush, then clear the queue.
  void flush() {
    F_->mul_batch(jobs_.data(), jobs_.size());
    jobs_.clear();
  }

 private:
  const FpCtx* F_;
  std::vector<FpCtx::MulJob> jobs_;
};

/// Shared per-modulus FpCtx from a process-wide cache (mirror of
/// `montgomery_ctx`). Requires FpCtx::supports(m).
std::shared_ptr<const FpCtx> fp_ctx(const Bigint& m);

/// Number of cached flat contexts / drop the cache (tests, benches).
std::size_t fp_ctx_cache_size();
void fp_ctx_cache_clear();

// F_p² helpers over Fp2Elem. Same 3-multiplication Karatsuba shapes as the
// fp2.h reference implementations; outputs may alias inputs. Inversion
// lives with the pairing engine (it needs the instrumented fp_inv).
void fp2_mul(const FpCtx& F, Fp2Elem& r, const Fp2Elem& x, const Fp2Elem& y);
void fp2_sqr(const FpCtx& F, Fp2Elem& r, const Fp2Elem& x);
void fp2_conj(const FpCtx& F, Fp2Elem& r, const Fp2Elem& x);

/// x^e for e >= 0 by square-and-multiply (MSB first), all in-domain.
void fp2_pow(const FpCtx& F, Fp2Elem& r, const Fp2Elem& x, const Bigint& e);

}  // namespace ppms
