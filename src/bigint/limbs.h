// Flat-limb kernels: mpn-style fixed-width arithmetic over raw uint64_t
// arrays, and the FpCtx/FpElem/Fp2Elem layer the pairing hot paths run on.
//
// `ppms::Bigint` pays a heap-allocated limb vector plus sign/size
// normalization on every operation; inside a Miller loop that allocator
// traffic is the measured floor, not the multiplies. The kernels here are
// the GMP-`mpn` shape instead: little-endian 64-bit limb arrays of a
// caller-known width, no allocation, no sign logic, carries returned to
// the caller. On top of them `FpCtx` fixes one odd modulus at setup
// (market creation) and `FpElem` is a stack-resident residue sized to it;
// every Montgomery product runs CIOS with 64-bit limbs — half the limb
// count and a quarter of the single-word multiplies of the 32-bit path —
// and never touches the heap.
//
// Conversion discipline: `Bigint` appears only at API boundaries
// (`to_mont` / `from_mont` / `redc_wide`). Everything between stays on raw
// limbs. The legacy Bigint path is kept, bit-identical, as the
// differential oracle behind the `PPMS_FLAT_LIMBS` switch below; see
// tests/bigint/flatlimb_diff_test.cpp for the adversarial suite that pins
// the two together.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "bigint/bigint.h"

namespace ppms {

/// Runtime switch for the flat-limb fast path. The compiled default is the
/// CMake option PPMS_FLAT_LIMBS (ON unless configured out); the environment
/// variable PPMS_FLAT_LIMBS=0/off/false (resp. 1/on/true) overrides it at
/// process start, and tests/benches may flip it explicitly. Contexts and
/// engines capture the flag at construction; the per-modulus caches rebuild
/// on a mode change, so toggling is coherent but not free.
bool flat_limbs_enabled();
void set_flat_limbs_enabled(bool on);

namespace limb {

using Limb = std::uint64_t;

/// Widest modulus the flat path accepts, in 64-bit limbs (2048 bits).
/// Wider moduli stay on the Bigint oracle path.
inline constexpr std::size_t kMaxFpLimbs = 32;

// All kernels operate on little-endian arrays of exactly `n` limbs unless
// a separate length is given. Output may alias either input for add_n and
// sub_n; mul/sqr require a disjoint output (they write before reading
// would finish).

/// r = a + b, returns the carry out (0 or 1).
Limb add_n(Limb* r, const Limb* a, const Limb* b, std::size_t n);

/// r = a - b, returns the borrow out (0 or 1).
Limb sub_n(Limb* r, const Limb* a, const Limb* b, std::size_t n);

/// r[0..an+bn) = a * b (schoolbook). r must not alias a or b.
void mul(Limb* r, const Limb* a, std::size_t an, const Limb* b,
         std::size_t bn);

/// r[0..2n) = a². Off-diagonal products are computed once and doubled.
/// r must not alias a.
void sqr(Limb* r, const Limb* a, std::size_t n);

/// Lexicographic magnitude compare: -1, 0, +1.
int cmp_n(const Limb* a, const Limb* b, std::size_t n);

/// True when all n limbs are zero.
bool is_zero_n(const Limb* a, std::size_t n);

/// Fused CIOS Montgomery product: r = a·b·2^{-64n} mod m for a, b < 2^{64n},
/// m odd, n0 = -m^{-1} mod 2^64. The accumulator lives on the stack; r may
/// alias a or b. For a, b < m the result is fully reduced; for larger
/// in-width operands it is < m + 2^{64n} and the caller must post-reduce.
void cios_mont_mul(Limb* r, const Limb* a, const Limb* b, const Limb* m,
                   Limb n0, std::size_t n);

/// -m^{-1} mod 2^64 for odd m0 (Newton iteration).
Limb neg_inverse(Limb m0);

}  // namespace limb

/// One residue mod the FpCtx modulus: a fixed-capacity stack array of which
/// the context's first `limbs()` entries are significant. Plain aggregate —
/// copies are memcpy, no allocation anywhere.
struct FpElem {
  std::array<limb::Limb, limb::kMaxFpLimbs> v{};
};

/// F_p² element (a + b·i) over FpElem coordinates; the flat counterpart of
/// `Fp2` for the pairing's target field.
struct Fp2Elem {
  FpElem a, b;
};

/// Fixed-modulus flat-limb field context, sized to the market modulus at
/// setup. Precomputes n0' and R², then serves allocation-free modular
/// arithmetic on FpElem. All methods are const and thread-safe; one context
/// is shared per modulus via `fp_ctx`.
class FpCtx {
 public:
  /// Requires m odd, > 1 and at most kMaxFpLimbs·64 bits wide; throws
  /// std::invalid_argument otherwise (use supports() to pre-check).
  explicit FpCtx(const Bigint& m);

  /// True when FpCtx(m) would succeed.
  static bool supports(const Bigint& m);

  /// Significant limbs of every element under this context.
  std::size_t limbs() const { return n_; }

  const Bigint& modulus() const { return m_big_; }

  FpElem zero() const { return FpElem{}; }

  /// 1 in Montgomery form (R mod m).
  const FpElem& one() const { return r_mod_m_; }

  bool is_zero(const FpElem& a) const { return limb::is_zero_n(a.v.data(), n_); }
  bool equal(const FpElem& a, const FpElem& b) const {
    return limb::cmp_n(a.v.data(), b.v.data(), n_) == 0;
  }

  // Modular ring ops on reduced elements (linear ops are domain-agnostic;
  // mul/sqr are Montgomery products). Outputs may alias inputs.
  void add(FpElem& r, const FpElem& a, const FpElem& b) const;
  void sub(FpElem& r, const FpElem& a, const FpElem& b) const;
  void neg(FpElem& r, const FpElem& a) const;
  void dbl(FpElem& r, const FpElem& a) const { add(r, a, a); }
  void mul(FpElem& r, const FpElem& a, const FpElem& b) const {
    limb::cios_mont_mul(r.v.data(), a.v.data(), b.v.data(), m_.data(), n0_,
                        n_);
  }
  void sqr(FpElem& r, const FpElem& a) const { mul(r, a, a); }

  /// x (any integer) into Montgomery form: x·R mod m.
  FpElem to_mont(const Bigint& x) const;

  /// Montgomery-form element back to an ordinary Bigint residue.
  Bigint from_mont(const FpElem& a) const;

  /// Copy the low limbs of a non-negative x < 2^{64·limbs()} into an FpElem
  /// without any domain change (pack) and back (unpack). Used by the
  /// MontgomeryCtx bridge, whose callers hold Montgomery-form Bigints.
  FpElem pack(const Bigint& x) const;
  Bigint unpack(const FpElem& a) const;

  /// t · R^{-1} mod m for any t in [0, R²) given as a Bigint — the wide
  /// REDC that backs MontgomeryCtx::from_mont on arbitrary 2n-limb input.
  Bigint redc_wide(const Bigint& t) const;

  /// R² mod m in pack() form (the to_mont multiplier), for callers running
  /// their own ladders.
  const FpElem& r2() const { return r2_mod_m_; }

 private:
  std::size_t n_ = 0;
  limb::Limb n0_ = 0;
  std::array<limb::Limb, limb::kMaxFpLimbs> m_{};
  FpElem r_mod_m_;   // R mod m
  FpElem r2_mod_m_;  // R² mod m
  Bigint m_big_;
};

/// Shared per-modulus FpCtx from a process-wide cache (mirror of
/// `montgomery_ctx`). Requires FpCtx::supports(m).
std::shared_ptr<const FpCtx> fp_ctx(const Bigint& m);

/// Number of cached flat contexts / drop the cache (tests, benches).
std::size_t fp_ctx_cache_size();
void fp_ctx_cache_clear();

// F_p² helpers over Fp2Elem. Same 3-multiplication Karatsuba shapes as the
// fp2.h reference implementations; outputs may alias inputs. Inversion
// lives with the pairing engine (it needs the instrumented fp_inv).
void fp2_mul(const FpCtx& F, Fp2Elem& r, const Fp2Elem& x, const Fp2Elem& y);
void fp2_sqr(const FpCtx& F, Fp2Elem& r, const Fp2Elem& x);
void fp2_conj(const FpCtx& F, Fp2Elem& r, const Fp2Elem& x);

/// x^e for e >= 0 by square-and-multiply (MSB first), all in-domain.
void fp2_pow(const FpCtx& F, Fp2Elem& r, const Fp2Elem& x, const Bigint& e);

}  // namespace ppms
