#include "bigint/prime.h"

#include <stdexcept>

#include "bigint/modarith.h"
#include "bigint/montgomery.h"

namespace ppms {

namespace {

// One Miller-Rabin witness against a context whose modulus is n, with
// n - 1 = d·2^s already decomposed. The squaring chain stays in the
// Montgomery domain; only the comparisons need the precomputed images of 1
// and n-1. Reusing one ctx across every round/witness is what makes
// candidate testing cheap: the R/R² setup divisions are paid once per
// candidate instead of once per witness.
bool miller_rabin_witness(const MontgomeryCtx& ctx, const Bigint& d,
                          std::size_t s, const Bigint& base,
                          const Bigint& one_mont, const Bigint& n1_mont) {
  Bigint x = ctx.to_mont(ctx.pow(base, d));
  if (x == one_mont || x == n1_mont) return true;
  for (std::size_t i = 1; i < s; ++i) {
    x = ctx.mul(x, x);
    if (x == n1_mont) return true;
    if (x == one_mont) return false;  // nontrivial sqrt of 1 => composite
  }
  return false;
}

}  // namespace

const std::vector<std::uint32_t>& small_primes() {
  static const std::vector<std::uint32_t> primes = [] {
    // Sieve of Eratosthenes up to 2048.
    constexpr std::uint32_t kLimit = 2048;
    std::vector<bool> composite(kLimit, false);
    std::vector<std::uint32_t> out;
    for (std::uint32_t p = 2; p < kLimit; ++p) {
      if (composite[p]) continue;
      out.push_back(p);
      for (std::uint32_t q = p * p; q < kLimit; q += p) composite[q] = true;
    }
    return out;
  }();
  return primes;
}

bool has_small_factor(const Bigint& n) {
  for (const std::uint32_t p : small_primes()) {
    const Bigint bp(static_cast<std::int64_t>(p));
    if (n == bp) return false;
    if ((n % bp).is_zero()) return true;
  }
  return false;
}

bool is_prime_u64(std::uint64_t n) {
  __extension__ using U128 = unsigned __int128;
  if (n < 2) return false;
  for (const std::uint64_t p :
       {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull, 29ull,
        31ull, 37ull}) {
    if (n % p == 0) return n == p;
  }
  const auto mulmod = [](std::uint64_t a, std::uint64_t b, std::uint64_t m) {
    return static_cast<std::uint64_t>((static_cast<U128>(a) * b) % m);
  };
  std::uint64_t d = n - 1;
  int s = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++s;
  }
  for (const std::uint64_t a :
       {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull, 19ull, 23ull, 29ull,
        31ull, 37ull}) {
    std::uint64_t x = 1 % n;
    // powmod a^d mod n
    std::uint64_t base = a % n, e = d;
    while (e > 0) {
      if (e & 1) x = mulmod(x, base, n);
      base = mulmod(base, base, n);
      e >>= 1;
    }
    if (x == 1 || x == n - 1) continue;
    bool witness = true;
    for (int i = 1; i < s; ++i) {
      x = mulmod(x, x, n);
      if (x == n - 1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

bool miller_rabin_round(const Bigint& n, const Bigint& base) {
  // Write n - 1 = d * 2^s with d odd.
  const Bigint n_minus_1 = n - Bigint(1);
  Bigint d = n_minus_1;
  std::size_t s = 0;
  while (d.is_even()) {
    d = d >> 1;
    ++s;
  }
  const MontgomeryCtx ctx(n);
  return miller_rabin_witness(ctx, d, s, base, ctx.mont_one(),
                              ctx.to_mont(n_minus_1));
}

bool is_probable_prime(const Bigint& n, SecureRandom& rng, int rounds) {
  if (n < Bigint(2)) return false;
  if (n == Bigint(2) || n == Bigint(3)) return true;
  if (n.is_even()) return false;
  if (has_small_factor(n)) return false;
  // Values below 2048^2 that survive the sieve are prime.
  if (n < Bigint(2048LL * 2048LL)) return true;

  // Decompose n - 1 = d·2^s and build the Montgomery context once; every
  // witness reuses both. Deliberately a local context, not the shared
  // cache: candidates are throwaway moduli and would only thrash it.
  const Bigint n_minus_1 = n - Bigint(1);
  Bigint d = n_minus_1;
  std::size_t s = 0;
  while (d.is_even()) {
    d = d >> 1;
    ++s;
  }
  const MontgomeryCtx ctx(n);
  const Bigint one_mont = ctx.mont_one();
  const Bigint n1_mont = ctx.to_mont(n_minus_1);

  const Bigint n_minus_2 = n - Bigint(2);
  for (int i = 0; i < rounds; ++i) {
    const Bigint base = Bigint::random_range(rng, Bigint(2), n_minus_2);
    if (!miller_rabin_witness(ctx, d, s, base, one_mont, n1_mont)) {
      return false;
    }
  }
  return true;
}

Bigint random_prime(SecureRandom& rng, std::size_t bits, int rounds) {
  if (bits < 2) throw std::invalid_argument("random_prime: bits < 2");
  for (;;) {
    Bigint candidate = Bigint::random_bits(rng, bits);
    if (candidate.is_even()) candidate += Bigint(1);
    // Forcing the low bit may not overflow the bit width (top bit was set,
    // +1 on an even number only flips bit 0).
    if (is_probable_prime(candidate, rng, rounds)) return candidate;
  }
}

Bigint random_safe_prime(SecureRandom& rng, std::size_t bits, int rounds) {
  if (bits < 3) throw std::invalid_argument("random_safe_prime: bits < 3");
  for (;;) {
    const Bigint q = random_prime(rng, bits - 1, rounds);
    const Bigint p = q * Bigint(2) + Bigint(1);
    if (p.bit_length() != bits) continue;
    if (is_probable_prime(p, rng, rounds)) return p;
  }
}

}  // namespace ppms
