// Modular arithmetic on Bigint: modular multiplication and three modular
// exponentiation strategies (plain binary, sliding window, Montgomery).
//
// `modexp` is the facade everything else calls; it picks Montgomery for odd
// moduli and the windowed method otherwise. The individual strategies stay
// public for the A2 ablation benchmark.
#pragma once

#include <optional>

#include "bigint/bigint.h"

namespace ppms {

/// (a * b) mod m, with m > 0.
Bigint modmul(const Bigint& a, const Bigint& b, const Bigint& m);

/// base^exp mod m. Requires exp >= 0 and m > 0; base may be any integer.
/// Picks the fastest applicable strategy.
Bigint modexp(const Bigint& base, const Bigint& exp, const Bigint& m);

/// Left-to-right square-and-multiply (baseline strategy).
Bigint modexp_binary(const Bigint& base, const Bigint& exp, const Bigint& m);

/// Sliding-window exponentiation (window 4) without Montgomery form.
Bigint modexp_window(const Bigint& base, const Bigint& exp, const Bigint& m);

/// Montgomery-form sliding-window exponentiation. Requires odd m > 1.
Bigint modexp_montgomery(const Bigint& base, const Bigint& exp,
                         const Bigint& m);

/// Square root of a modulo an odd prime p (Tonelli-Shanks; a single
/// exponentiation when p ≡ 3 mod 4). Returns one of the two roots in
/// [0, p) — callers needing a canonical choice take min(r, p-r) — or
/// nullopt for quadratic non-residues. `rng` samples the auxiliary
/// non-residue the general case needs. Throws std::invalid_argument if p
/// is even or < 3.
std::optional<Bigint> mod_sqrt(const Bigint& a, const Bigint& p,
                               SecureRandom& rng);

/// Integer square root: the largest s with s² <= n (Newton's method).
/// Throws std::domain_error for negative n.
Bigint isqrt(const Bigint& n);

}  // namespace ppms
