// Modular arithmetic on Bigint: modular multiplication and three modular
// exponentiation strategies (plain binary, sliding window, Montgomery).
//
// `modexp` is the facade everything else calls; it picks Montgomery for odd
// moduli and the windowed method otherwise. The individual strategies stay
// public for the A2 ablation benchmark.
//
// Fixed-modulus fast path: the RSA, blind-signature, CL and ZKP layers fire
// thousands of exponentiations against the same handful of moduli, so the
// Montgomery precomputation (R mod m, R² mod m — two full divisions) is
// cached per modulus. `montgomery_ctx(m)` returns the shared context, and
// `modexp(base, exp, ctx)` lets session-lifetime callers skip even the
// cache lookup. The facade uses the cache transparently.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>

#include "bigint/bigint.h"

namespace ppms {

class MontgomeryCtx;

/// (a * b) mod m, with m > 0.
Bigint modmul(const Bigint& a, const Bigint& b, const Bigint& m);

/// base^exp mod m. Requires exp >= 0 and m > 0; base may be any integer.
/// Picks the fastest applicable strategy; m == 1 yields canonical zero.
Bigint modexp(const Bigint& base, const Bigint& exp, const Bigint& m);

/// base^exp mod ctx.modulus() with the precomputation already paid.
/// Requires exp >= 0. This is the hot-path entry point for callers that
/// hold a context for a session's lifetime (RSA keys, ZKP groups, tower
/// primes).
Bigint modexp(const Bigint& base, const Bigint& exp,
              const MontgomeryCtx& ctx);

/// Shared per-modulus Montgomery context from the process-wide cache
/// (created on first use; later calls for the same modulus are a
/// shared-lock lookup). Requires m odd and > 1, like MontgomeryCtx itself.
/// The returned pointer stays valid even if the cache is cleared.
std::shared_ptr<const MontgomeryCtx> montgomery_ctx(const Bigint& m);

/// Number of cached Montgomery contexts (observability for tests/bench).
std::size_t montgomery_cache_size();

/// Drop all cached contexts (outstanding shared_ptrs stay alive).
void montgomery_cache_clear();

/// Left-to-right square-and-multiply (baseline strategy).
Bigint modexp_binary(const Bigint& base, const Bigint& exp, const Bigint& m);

/// Sliding-window exponentiation (window 4) without Montgomery form.
Bigint modexp_window(const Bigint& base, const Bigint& exp, const Bigint& m);

/// Montgomery-form sliding-window exponentiation. Requires m odd; m == 1
/// yields canonical zero like the other strategies. Builds a throwaway
/// context — the uncached baseline the ablation bench compares against.
Bigint modexp_montgomery(const Bigint& base, const Bigint& exp,
                         const Bigint& m);

/// Square root of a modulo an odd prime p (Tonelli-Shanks; a single
/// exponentiation when p ≡ 3 mod 4). Returns one of the two roots in
/// [0, p) — callers needing a canonical choice take min(r, p-r) — or
/// nullopt for quadratic non-residues. `rng` samples the auxiliary
/// non-residue the general case needs. Throws std::invalid_argument if p
/// is even or < 3.
std::optional<Bigint> mod_sqrt(const Bigint& a, const Bigint& p,
                               SecureRandom& rng);

/// Integer square root: the largest s with s² <= n (Newton's method).
/// Throws std::domain_error for negative n.
Bigint isqrt(const Bigint& n);

}  // namespace ppms
