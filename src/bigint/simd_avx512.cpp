// AVX-512F instantiation of the lane-batched Montgomery kernel: 8 lanes of
// 64-bit accumulators per __m512i. Compiled with -mavx512f (file-level flag
// in src/CMakeLists.txt); same anonymous-namespace isolation and CPUID
// guard discipline as simd_avx2.cpp.
#include "bigint/simd_detail.h"

#if defined(__AVX512F__)

#include <immintrin.h>

namespace ppms::simd::detail {

namespace {

struct TraitsAvx512 {
  using V = __m512i;
  static constexpr std::size_t kLanes = 8;
  static V zero() { return _mm512_setzero_si512(); }
  static V set1(limb::Limb x) {
    return _mm512_set1_epi64(static_cast<long long>(x));
  }
  static V load(const limb::Limb* p) { return _mm512_load_si512(p); }
  static void store(limb::Limb* p, V v) { _mm512_store_si512(p, v); }
  static V add(V a, V b) { return _mm512_add_epi64(a, b); }
  static V mul32(V a, V b) { return _mm512_mul_epu32(a, b); }
  static V srl(V a, unsigned s) {
    return _mm512_srl_epi64(a, _mm_cvtsi32_si128(static_cast<int>(s)));
  }
  static V sll(V a, unsigned s) {
    return _mm512_sll_epi64(a, _mm_cvtsi32_si128(static_cast<int>(s)));
  }
  static V and_(V a, V b) { return _mm512_and_si512(a, b); }
  static V or_(V a, V b) { return _mm512_or_si512(a, b); }
  static V sub(V a, V b) { return _mm512_sub_epi64(a, b); }
  static V xor_(V a, V b) { return _mm512_xor_si512(a, b); }
  // Unsigned 64-bit a < b as 0/1 per lane (mask compare, then expand —
  // AVX512F has no vector-result compares).
  static V ltu01(V a, V b) {
    return _mm512_maskz_set1_epi64(_mm512_cmplt_epu64_mask(a, b), 1);
  }
  static V ne0_01(V a) {
    return _mm512_maskz_set1_epi64(
        _mm512_cmpneq_epi64_mask(a, _mm512_setzero_si512()), 1);
  }
};

#include "simd_lanes.inl"

}  // namespace

bool compiled_avx512() { return true; }

bool run_avx512(const MontJob* jobs, std::size_t k, const limb::Limb* m,
                limb::Limb n0, std::size_t n) {
  return run_all<TraitsAvx512>(jobs, k, m, n0, n);
}

}  // namespace ppms::simd::detail

#else  // !__AVX512F__

namespace ppms::simd::detail {

bool compiled_avx512() { return false; }

bool run_avx512(const MontJob*, std::size_t, const limb::Limb*, limb::Limb,
                std::size_t) {
  return false;
}

}  // namespace ppms::simd::detail

#endif
