#include "bigint/limbs.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bigint/simd.h"
#include "obs/metrics.h"

namespace ppms {

namespace {

__extension__ typedef unsigned __int128 u128;

#ifndef PPMS_FLAT_LIMBS_DEFAULT
#define PPMS_FLAT_LIMBS_DEFAULT 1
#endif

bool flat_default_from_env() {
  const char* env = std::getenv("PPMS_FLAT_LIMBS");
  if (env == nullptr) return PPMS_FLAT_LIMBS_DEFAULT != 0;
  const std::string v(env);
  return !(v == "0" || v == "off" || v == "false" || v == "OFF" ||
           v == "FALSE");
}

std::atomic<bool>& flat_flag() {
  static std::atomic<bool> flag{flat_default_from_env()};
  return flag;
}

}  // namespace

bool flat_limbs_enabled() {
  return flat_flag().load(std::memory_order_relaxed);
}

void set_flat_limbs_enabled(bool on) {
  flat_flag().store(on, std::memory_order_relaxed);
}

namespace limb {

Limb add_n(Limb* r, const Limb* a, const Limb* b, std::size_t n) {
  Limb carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u128 cur = static_cast<u128>(a[i]) + b[i] + carry;
    r[i] = static_cast<Limb>(cur);
    carry = static_cast<Limb>(cur >> 64);
  }
  return carry;
}

Limb sub_n(Limb* r, const Limb* a, const Limb* b, std::size_t n) {
  Limb borrow = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u128 cur = static_cast<u128>(a[i]) - b[i] - borrow;
    r[i] = static_cast<Limb>(cur);
    borrow = static_cast<Limb>((cur >> 64) & 1);
  }
  return borrow;
}

void mul(Limb* r, const Limb* a, std::size_t an, const Limb* b,
         std::size_t bn) {
  for (std::size_t i = 0; i < an + bn; ++i) r[i] = 0;
  for (std::size_t i = 0; i < an; ++i) {
    Limb carry = 0;
    const Limb ai = a[i];
    for (std::size_t j = 0; j < bn; ++j) {
      const u128 cur = static_cast<u128>(r[i + j]) +
                       static_cast<u128>(ai) * b[j] + carry;
      r[i + j] = static_cast<Limb>(cur);
      carry = static_cast<Limb>(cur >> 64);
    }
    r[i + bn] = carry;
  }
}

void sqr(Limb* r, const Limb* a, std::size_t n) {
  // Off-diagonal half, doubled, then the diagonal squares folded in.
  for (std::size_t i = 0; i < 2 * n; ++i) r[i] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    Limb carry = 0;
    const Limb ai = a[i];
    for (std::size_t j = i + 1; j < n; ++j) {
      const u128 cur = static_cast<u128>(r[i + j]) +
                       static_cast<u128>(ai) * a[j] + carry;
      r[i + j] = static_cast<Limb>(cur);
      carry = static_cast<Limb>(cur >> 64);
    }
    r[i + n] = carry;
  }
  // Double (shift left one bit across 2n limbs).
  Limb top = 0;
  for (std::size_t i = 0; i < 2 * n; ++i) {
    const Limb next = r[i] >> 63;
    r[i] = (r[i] << 1) | top;
    top = next;
  }
  // Add the diagonal a_i².
  Limb carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u128 sq = static_cast<u128>(a[i]) * a[i];
    u128 cur = static_cast<u128>(r[2 * i]) + static_cast<Limb>(sq) + carry;
    r[2 * i] = static_cast<Limb>(cur);
    cur = static_cast<u128>(r[2 * i + 1]) + static_cast<Limb>(sq >> 64) +
          static_cast<Limb>(cur >> 64);
    r[2 * i + 1] = static_cast<Limb>(cur);
    carry = static_cast<Limb>(cur >> 64);
  }
}

int cmp_n(const Limb* a, const Limb* b, std::size_t n) {
  for (std::size_t i = n; i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

bool is_zero_n(const Limb* a, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != 0) return false;
  }
  return true;
}

Limb neg_inverse(Limb m0) {
  Limb inv = m0;  // correct to 3 bits (m0 odd => m0² ≡ 1 mod 8)
  for (int i = 0; i < 5; ++i) inv *= 2 - m0 * inv;
  return ~inv + 1;
}

namespace {

// The fused-CIOS core, generic over the limb count. Kept in a template so
// the common widths below compile with the loop trip counts known — the
// compiler fully unrolls the inner MAC chains. N == 0 is the variable-width
// fallback.
template <std::size_t N>
void cios_core(Limb* r, const Limb* a, const Limb* b, const Limb* m, Limb n0,
               std::size_t n_rt) {
  const std::size_t n = N == 0 ? n_rt : N;
  Limb t[kMaxFpLimbs + 2];
  for (std::size_t i = 0; i < n + 2; ++i) t[i] = 0;

  for (std::size_t i = 0; i < n; ++i) {
    // t += a_i · b.
    const Limb ai = a[i];
    Limb carry = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const u128 cur = static_cast<u128>(t[j]) + static_cast<u128>(ai) * b[j] +
                       carry;
      t[j] = static_cast<Limb>(cur);
      carry = static_cast<Limb>(cur >> 64);
    }
    u128 cur = static_cast<u128>(t[n]) + carry;
    t[n] = static_cast<Limb>(cur);
    t[n + 1] = static_cast<Limb>(cur >> 64);
    // REDC fold: make t divisible by 2^64 and shift down one limb.
    const Limb u = t[0] * n0;
    cur = static_cast<u128>(t[0]) + static_cast<u128>(u) * m[0];
    carry = static_cast<Limb>(cur >> 64);
    for (std::size_t j = 1; j < n; ++j) {
      cur = static_cast<u128>(t[j]) + static_cast<u128>(u) * m[j] + carry;
      t[j - 1] = static_cast<Limb>(cur);
      carry = static_cast<Limb>(cur >> 64);
    }
    cur = static_cast<u128>(t[n]) + carry;
    t[n - 1] = static_cast<Limb>(cur);
    t[n] = t[n + 1] + static_cast<Limb>(cur >> 64);
    t[n + 1] = 0;
  }

  // One conditional subtraction brings operands < m fully below m;
  // in-width operands >= m can leave t[n] == 1, which the subtraction
  // clears (callers post-reduce in that out-of-domain case).
  bool ge = t[n] != 0;
  if (!ge) ge = cmp_n(t, m, n) >= 0;
  if (ge) {
    Limb borrow = sub_n(t, t, m, n);
    t[n] -= borrow;
  }
  for (std::size_t i = 0; i < n; ++i) r[i] = t[i];
}

}  // namespace

void cios_mont_mul(Limb* r, const Limb* a, const Limb* b, const Limb* m,
                   Limb n0, std::size_t n) {
  // The accumulator in cios_core is sized to kMaxFpLimbs; a wider
  // caller-supplied n would index past it (stack smash), so reject it here
  // at the public entry point rather than trusting every caller.
  if (n == 0 || n > kMaxFpLimbs) {
    throw std::invalid_argument(
        "cios_mont_mul: n must be in [1, kMaxFpLimbs]");
  }
  // Dispatch the market's common widths to fully unrolled instances:
  // 128-bit test curves (2), 256/512-bit pairing fields (4, 8), 1024-bit
  // RSA/ZKP moduli (16).
  switch (n) {
    case 2: cios_core<2>(r, a, b, m, n0, n); return;
    case 4: cios_core<4>(r, a, b, m, n0, n); return;
    case 8: cios_core<8>(r, a, b, m, n0, n); return;
    case 16: cios_core<16>(r, a, b, m, n0, n); return;
    default: cios_core<0>(r, a, b, m, n0, n); return;
  }
}

}  // namespace limb

namespace {

obs::Counter& fp_ctx_builds_counter() {
  static obs::Counter& c = obs::counter("crypto.fp.ctx_builds");
  return c;
}

}  // namespace

bool FpCtx::supports(const Bigint& m) {
  if (m.sign() <= 0 || m.is_even() || m.is_one()) return false;
  return m.bit_length() <= 64 * limb::kMaxFpLimbs;
}

FpCtx::FpCtx(const Bigint& m) : m_big_(m) {
  if (!supports(m)) {
    throw std::invalid_argument(
        "FpCtx: modulus must be odd, > 1 and at most 2048 bits");
  }
  fp_ctx_builds_counter().add();
  const auto& l32 = m.raw_limbs();
  n_ = (l32.size() + 1) / 2;
  for (std::size_t i = 0; i < l32.size(); ++i) {
    m_[i / 2] |= static_cast<limb::Limb>(l32[i]) << (32 * (i % 2));
  }
  n0_ = limb::neg_inverse(m_[0]);
  const Bigint r = Bigint::two_pow(64 * n_);
  r_mod_m_ = pack(r.mod(m));
  r2_mod_m_ = pack((r * r).mod(m));
}

void FpCtx::mul_batch(const MulJob* jobs, std::size_t k) const {
  // Repackage FpElem-level jobs into raw-limb jobs in stack chunks; every
  // chunk executes inside cios_mont_mul_xk (SIMD lanes or the in-order
  // scalar fallback), so chunking never changes what ran.
  constexpr std::size_t kChunk = 128;
  simd::MontJob raw[kChunk];
  for (std::size_t i = 0; i < k; i += kChunk) {
    const std::size_t c = std::min(kChunk, k - i);
    for (std::size_t j = 0; j < c; ++j) {
      const MulJob& job = jobs[i + j];
      raw[j] = simd::MontJob{job.r->v.data(), job.a->v.data(),
                             job.b->v.data()};
    }
    simd::cios_mont_mul_xk(raw, c, m_.data(), n0_, n_);
  }
}

void FpCtx::mul_batch_raw(const simd::MontJob* jobs, std::size_t k) const {
  simd::cios_mont_mul_xk(jobs, k, m_.data(), n0_, n_);
}

void FpCtx::sqr_batch(FpElem* const* r, const FpElem* const* a,
                      std::size_t k) const {
  constexpr std::size_t kChunk = 128;
  simd::MontJob raw[kChunk];
  for (std::size_t i = 0; i < k; i += kChunk) {
    const std::size_t c = std::min(kChunk, k - i);
    for (std::size_t j = 0; j < c; ++j) {
      raw[j] = simd::MontJob{r[i + j]->v.data(), a[i + j]->v.data(),
                             a[i + j]->v.data()};
    }
    simd::cios_mont_mul_xk(raw, c, m_.data(), n0_, n_);
  }
}

FpElem FpCtx::pack(const Bigint& x) const {
  if (x.is_negative()) {
    throw std::invalid_argument("FpCtx::pack: negative value");
  }
  const auto& l32 = x.raw_limbs();
  if (l32.size() > 2 * n_) {
    throw std::invalid_argument("FpCtx::pack: value wider than context");
  }
  FpElem out;
  for (std::size_t i = 0; i < l32.size(); ++i) {
    out.v[i / 2] |= static_cast<limb::Limb>(l32[i]) << (32 * (i % 2));
  }
  return out;
}

Bigint FpCtx::unpack(const FpElem& a) const {
  std::vector<std::uint32_t> l32(2 * n_, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    l32[2 * i] = static_cast<std::uint32_t>(a.v[i]);
    l32[2 * i + 1] = static_cast<std::uint32_t>(a.v[i] >> 32);
  }
  return Bigint::from_raw_limbs(std::move(l32));
}

FpElem FpCtx::to_mont(const Bigint& x) const {
  const bool reduced = !x.is_negative() && x < m_big_;
  const FpElem plain = pack(reduced ? x : x.mod(m_big_));
  FpElem out;
  mul(out, plain, r2_mod_m_);
  return out;
}

Bigint FpCtx::from_mont(const FpElem& a) const {
  // REDC as a Montgomery product with 1: a·1·R^{-1} = a·R^{-1}. For a < R
  // the result is below m after cios's single conditional subtraction.
  FpElem one_plain;
  one_plain.v[0] = 1;
  FpElem out;
  mul(out, a, one_plain);
  return unpack(out);
}

Bigint FpCtx::redc_wide(const Bigint& t) const {
  if (t.is_negative()) {
    throw std::invalid_argument("FpCtx::redc_wide: negative value");
  }
  const auto& l32 = t.raw_limbs();
  if (l32.size() > 4 * n_) {
    throw std::invalid_argument("FpCtx::redc_wide: value wider than R²");
  }
  // work = t over 2n+1 limbs; fold n times, result in work[n..2n].
  limb::Limb work[2 * limb::kMaxFpLimbs + 1] = {0};
  for (std::size_t i = 0; i < l32.size(); ++i) {
    work[i / 2] |= static_cast<limb::Limb>(l32[i]) << (32 * (i % 2));
  }
  for (std::size_t i = 0; i < n_; ++i) {
    const limb::Limb u = work[i] * n0_;
    limb::Limb carry = 0;
    for (std::size_t j = 0; j < n_; ++j) {
      const u128 cur = static_cast<u128>(work[i + j]) +
                       static_cast<u128>(u) * m_[j] + carry;
      work[i + j] = static_cast<limb::Limb>(cur);
      carry = static_cast<limb::Limb>(cur >> 64);
    }
    std::size_t k = i + n_;
    while (carry != 0) {
      // t < R² keeps the ripple within work[2n]; the bound is enforced by
      // the width check above.
      const u128 cur = static_cast<u128>(work[k]) + carry;
      work[k] = static_cast<limb::Limb>(cur);
      carry = static_cast<limb::Limb>(cur >> 64);
      ++k;
    }
  }
  // Result is work[n .. 2n] (n+1 limbs); one subtraction covers in-domain
  // input, the Bigint fallback covers arbitrary t up to R²-1.
  std::vector<std::uint32_t> l32_out(2 * (n_ + 1), 0);
  for (std::size_t i = 0; i <= n_; ++i) {
    l32_out[2 * i] = static_cast<std::uint32_t>(work[n_ + i]);
    l32_out[2 * i + 1] = static_cast<std::uint32_t>(work[n_ + i] >> 32);
  }
  Bigint r = Bigint::from_raw_limbs(std::move(l32_out));
  if (r >= m_big_) r -= m_big_;
  if (r >= m_big_) r = r.mod(m_big_);
  return r;
}

namespace {

// Per-modulus FpCtx cache, the mirror of modarith's Montgomery cache: the
// pairing engine and MontgomeryCtx both ask for the context of the market
// modulus on every construction, and the two divisions in the FpCtx ctor
// are exactly what should happen once per modulus, not once per call.
constexpr std::size_t kFpCtxCacheCapacity = 64;

struct FpCtxCache {
  std::shared_mutex mutex;
  std::unordered_map<std::string, std::shared_ptr<const FpCtx>> map;
};

FpCtxCache& fp_cache() {
  static FpCtxCache cache;
  return cache;
}

std::string fp_cache_key(const Bigint& m) {
  const auto& limbs = m.raw_limbs();
  return std::string(reinterpret_cast<const char*>(limbs.data()),
                     limbs.size() * sizeof(limbs[0]));
}

}  // namespace

std::shared_ptr<const FpCtx> fp_ctx(const Bigint& m) {
  if (!FpCtx::supports(m)) {
    throw std::invalid_argument(
        "fp_ctx: modulus must be odd, > 1 and at most 2048 bits");
  }
  FpCtxCache& cache = fp_cache();
  const std::string key = fp_cache_key(m);
  {
    std::shared_lock lock(cache.mutex);
    const auto it = cache.map.find(key);
    if (it != cache.map.end()) return it->second;
  }
  auto ctx = std::make_shared<const FpCtx>(m);
  std::unique_lock lock(cache.mutex);
  if (cache.map.size() >= kFpCtxCacheCapacity &&
      cache.map.find(key) == cache.map.end()) {
    cache.map.clear();
  }
  const auto [it, inserted] = cache.map.emplace(key, std::move(ctx));
  return it->second;
}

std::size_t fp_ctx_cache_size() {
  FpCtxCache& cache = fp_cache();
  std::shared_lock lock(cache.mutex);
  return cache.map.size();
}

void fp_ctx_cache_clear() {
  FpCtxCache& cache = fp_cache();
  std::unique_lock lock(cache.mutex);
  cache.map.clear();
}

void fp2_mul(const FpCtx& F, Fp2Elem& r, const Fp2Elem& x, const Fp2Elem& y) {
  FpElem ac, bd, sx, sy, cross;
  F.mul(ac, x.a, y.a);
  F.mul(bd, x.b, y.b);
  F.add(sx, x.a, x.b);
  F.add(sy, y.a, y.b);
  F.mul(cross, sx, sy);
  F.sub(r.a, ac, bd);
  F.sub(cross, cross, ac);
  F.sub(r.b, cross, bd);
}

void fp2_sqr(const FpCtx& F, Fp2Elem& r, const Fp2Elem& x) {
  FpElem s, d, t2;
  F.add(s, x.a, x.b);
  F.sub(d, x.a, x.b);
  F.mul(t2, x.a, x.b);
  F.mul(r.a, s, d);
  F.add(r.b, t2, t2);
}

void fp2_conj(const FpCtx& F, Fp2Elem& r, const Fp2Elem& x) {
  r.a = x.a;
  F.neg(r.b, x.b);
}

void fp2_pow(const FpCtx& F, Fp2Elem& r, const Fp2Elem& x, const Bigint& e) {
  Fp2Elem acc{F.one(), F.zero()};
  for (std::size_t i = e.bit_length(); i-- > 0;) {
    fp2_sqr(F, acc, acc);
    if (e.bit(i)) fp2_mul(F, acc, acc, x);
  }
  r = acc;
}

}  // namespace ppms
