#include "bigint/simd.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <string>

#include "bigint/simd_detail.h"
#include "obs/metrics.h"

namespace ppms::simd {

namespace {

#ifndef PPMS_SIMD_DEFAULT
#define PPMS_SIMD_DEFAULT "auto"
#endif

Level detect_cpu() {
#if defined(__x86_64__) || defined(__i386__)
  if (detail::compiled_avx512() && __builtin_cpu_supports("avx512f")) {
    return Level::kAvx512;
  }
  if (detail::compiled_avx2() && __builtin_cpu_supports("avx2")) {
    return Level::kAvx2;
  }
#endif
  return Level::kScalar;
}

Level clamp_to(Level want, Level det) {
  return static_cast<int>(want) <= static_cast<int>(det) ? want : det;
}

// Resolve the configured level: CMake default, overridden by the PPMS_SIMD
// environment variable, clamped to what the CPU/build supports. Unknown
// values fall back to auto (= detected) rather than silently to scalar, so
// a typo never quietly turns the fast path off.
Level initial_level(Level det) {
  const char* env = std::getenv("PPMS_SIMD");
  std::string v(env != nullptr ? env : PPMS_SIMD_DEFAULT);
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (v == "off" || v == "0" || v == "scalar" || v == "false" ||
      v == "none") {
    return Level::kScalar;
  }
  if (v == "avx2") return clamp_to(Level::kAvx2, det);
  if (v == "avx512") return clamp_to(Level::kAvx512, det);
  return det;  // "auto", "on", "1", anything else
}

obs::Gauge& dispatch_gauge() {
  static obs::Gauge& g = obs::gauge("crypto.simd.dispatch_level");
  return g;
}

std::atomic<int>& level_flag() {
  static std::atomic<int> flag{[] {
    const Level lv = initial_level(detected());
    dispatch_gauge().set(static_cast<std::uint64_t>(lv));
    return static_cast<int>(lv);
  }()};
  return flag;
}

}  // namespace

Level detected() {
  static const Level det = detect_cpu();
  return det;
}

Level level() {
  return static_cast<Level>(level_flag().load(std::memory_order_relaxed));
}

void set_level(Level lv) {
  const Level eff = clamp_to(lv, detected());
  level_flag().store(static_cast<int>(eff), std::memory_order_relaxed);
  dispatch_gauge().set(static_cast<std::uint64_t>(eff));
}

const char* level_name(Level lv) {
  switch (lv) {
    case Level::kAvx512: return "avx512";
    case Level::kAvx2: return "avx2";
    default: return "scalar";
  }
}

std::size_t lanes(Level lv) {
  switch (lv) {
    case Level::kAvx512: return 8;
    case Level::kAvx2: return 4;
    default: return 1;
  }
}

std::size_t lanes() { return lanes(level()); }

// Below this many jobs a lane group is mostly padding and the scalar
// kernel wins on every width we batch; such calls run the in-order scalar
// loop (same bits either way — the threshold is purely a cost choice).
constexpr std::size_t kMinBatch = 4;

bool cios_mont_mul_xk(const MontJob* jobs, std::size_t k, const limb::Limb* m,
                      limb::Limb n0, std::size_t n) {
  if (k == 0) return false;
  const Level lv = k < kMinBatch ? Level::kScalar : level();
  bool served = false;
  if (lv == Level::kAvx512) {
    // Within the avx512 level, prefer the vpmadd52 kernel when the CPU has
    // it — same widths, bit-identical output, far fewer lane products.
    static const bool ifma =
#if defined(__x86_64__) || defined(__i386__)
        detail::compiled_avx512ifma() &&
        __builtin_cpu_supports("avx512ifma");
#else
        false;
#endif
    if (ifma) served = detail::run_avx512ifma(jobs, k, m, n0, n);
    if (!served) served = detail::run_avx512(jobs, k, m, n0, n);
  } else if (lv == Level::kAvx2) {
    served = detail::run_avx2(jobs, k, m, n0, n);
  }
  if (served) {
    static obs::Counter& muls = obs::counter("crypto.simd.batched_muls");
    static obs::Counter& lane_slots = obs::counter("crypto.simd.lanes");
    const std::size_t width = lanes(lv);
    muls.add(k);
    lane_slots.add((k + width - 1) / width * width);
    return true;
  }
  for (std::size_t i = 0; i < k; ++i) {
    limb::cios_mont_mul(jobs[i].r, jobs[i].a, jobs[i].b, m, n0, n);
  }
  return false;
}

bool mont_sqr_xk(limb::Limb* const* r, const limb::Limb* const* a,
                 std::size_t k, const limb::Limb* m, limb::Limb n0,
                 std::size_t n) {
  constexpr std::size_t kChunk = 64;
  MontJob jobs[kChunk];
  bool served = k > 0;
  for (std::size_t i = 0; i < k; i += kChunk) {
    const std::size_t c = std::min(kChunk, k - i);
    for (std::size_t j = 0; j < c; ++j) {
      jobs[j] = MontJob{r[i + j], a[i + j], a[i + j]};
    }
    served = cios_mont_mul_xk(jobs, c, m, n0, n) && served;
  }
  return served;
}

}  // namespace ppms::simd
