#include "bigint/cunningham.h"

#include <stdexcept>

#include "bigint/prime.h"

namespace ppms {

namespace {

// --- u64 fast path -------------------------------------------------------
// Chain elements during deterministic search fit in 64 bits (the published
// minimal starts go up to ~2^57 and lengths to 14, so elements stay below
// 2^71 only for the largest table rows — the enumeration search targets
// lengths <= 10 whose elements fit comfortably).

// True when every element 2^i*n + (2^i - 1), i < length, avoids all small
// prime divisors (or equals one). Cheap rejection before Miller-Rabin.
bool chain_passes_sieve_u64(std::uint64_t n, std::size_t length) {
  for (const std::uint32_t p : small_primes()) {
    std::uint64_t elem_mod = n % p;
    for (std::size_t i = 0; i < length; ++i) {
      if (i > 0) elem_mod = (2 * elem_mod + 1) % p;
      if (elem_mod == 0) {
        // Divisible by p: composite unless the element IS p.
        std::uint64_t elem = n;
        bool overflow = false;
        for (std::size_t k = 0; k < i; ++k) {
          if (elem > (~0ull - 1) / 2) {
            overflow = true;
            break;
          }
          elem = 2 * elem + 1;
        }
        if (overflow || elem != p) return false;
      }
    }
  }
  return true;
}

bool chain_is_prime_u64(std::uint64_t n, std::size_t length) {
  std::uint64_t elem = n;
  for (std::size_t i = 0; i < length; ++i) {
    if (i > 0) {
      if (elem > (~0ull - 1) / 2) return false;  // would overflow u64
      elem = 2 * elem + 1;
    }
    if (!is_prime_u64(elem)) return false;
  }
  return true;
}

CunninghamChain make_chain_u64(std::uint64_t start, std::size_t length) {
  CunninghamChain chain;
  chain.primes.reserve(length);
  Bigint elem = Bigint::from_u64(start);
  for (std::size_t i = 0; i < length; ++i) {
    if (i > 0) elem = elem * Bigint(2) + Bigint(1);
    chain.primes.push_back(elem);
  }
  return chain;
}

// --- generic Bigint path -------------------------------------------------

bool chain_passes_sieve_big(const Bigint& n, std::size_t length) {
  for (const std::uint32_t p : small_primes()) {
    std::uint64_t elem_mod =
        (n % Bigint(static_cast<std::int64_t>(p))).to_u64();
    for (std::size_t i = 0; i < length; ++i) {
      if (i > 0) elem_mod = (2 * elem_mod + 1) % p;
      if (elem_mod == 0) return false;  // large n: element can't equal p
    }
  }
  return true;
}

bool chain_is_prime_big(const Bigint& n, std::size_t length,
                        SecureRandom& rng) {
  Bigint elem = n;
  for (std::size_t i = 0; i < length; ++i) {
    if (i > 0) elem = elem * Bigint(2) + Bigint(1);
    if (!is_probable_prime(elem, rng)) return false;
  }
  return true;
}

CunninghamChain make_chain_big(const Bigint& start, std::size_t length) {
  CunninghamChain chain;
  chain.primes.reserve(length);
  Bigint elem = start;
  for (std::size_t i = 0; i < length; ++i) {
    if (i > 0) elem = elem * Bigint(2) + Bigint(1);
    chain.primes.push_back(elem);
  }
  return chain;
}

}  // namespace

CunninghamChain extend_chain(const Bigint& start, std::size_t max_length,
                             SecureRandom& rng) {
  CunninghamChain chain;
  Bigint elem = start;
  while (chain.length() < max_length && is_probable_prime(elem, rng)) {
    chain.primes.push_back(elem);
    elem = elem * Bigint(2) + Bigint(1);
  }
  return chain;
}

std::optional<CunninghamChain> search_chain(const Bigint& from,
                                            std::size_t length,
                                            std::uint64_t max_candidates,
                                            SecureRandom& rng) {
  if (length == 0) throw std::invalid_argument("search_chain: length == 0");
  // Fast path: the whole enumeration fits in u64 (largest element is
  // 2^(length-1) * n + ...; require headroom of `length` bits).
  if (from.bit_length() + length < 63) {
    std::uint64_t n = from.to_u64();
    if (n < 2) n = 2;
    if (n > 2 && (n & 1) == 0) ++n;
    for (std::uint64_t tried = 0; tried < max_candidates;
         ++tried, n = (n == 2 ? 3 : n + 2)) {
      if (n > 3 && !chain_passes_sieve_u64(n, length)) continue;
      if (chain_is_prime_u64(n, length)) {
        return make_chain_u64(n, length);
      }
    }
    return std::nullopt;
  }
  // Generic path for large starts.
  Bigint n = from;
  if (n.is_even()) n += Bigint(1);
  for (std::uint64_t tried = 0; tried < max_candidates;
       ++tried, n += Bigint(2)) {
    if (!chain_passes_sieve_big(n, length)) continue;
    if (chain_is_prime_big(n, length, rng)) return make_chain_big(n, length);
  }
  return std::nullopt;
}

std::optional<CunninghamChain> search_chain_random(
    SecureRandom& rng, std::size_t start_bits, std::size_t length,
    std::uint64_t max_candidates) {
  for (std::uint64_t tried = 0; tried < max_candidates; ++tried) {
    Bigint n = Bigint::random_bits(rng, start_bits);
    if (n.is_even()) n += Bigint(1);
    if (start_bits + length < 63) {
      const std::uint64_t v = n.to_u64();
      if (!chain_passes_sieve_u64(v, length)) continue;
      if (chain_is_prime_u64(v, length)) return make_chain_u64(v, length);
    } else {
      if (!chain_passes_sieve_big(n, length)) continue;
      if (chain_is_prime_big(n, length, rng)) {
        return make_chain_big(n, length);
      }
    }
  }
  return std::nullopt;
}

Bigint known_chain_start(std::size_t length) {
  // Minimal prime starting a first-kind chain of length >= k. Derived from
  // the published minima of complete chains (A005602); monotone closure
  // over "length at least k". Verified at runtime by table_chain().
  switch (length) {
    case 1:
    case 2:
    case 3:
    case 4:
    case 5:
      return Bigint(2);  // 2, 5, 11, 23, 47
    case 6:
      return Bigint(89);
    case 7:
      return Bigint(1122659);
    case 8:
      return Bigint(19099919);
    case 9:
      return Bigint(85864769);
    case 10:
      return Bigint(26089808579LL);
    case 11:
    case 12:
      return Bigint(554688278429LL);
    case 13:
      return Bigint(4090932431513069LL);
    case 14:
      return Bigint(95405042230542329LL);
    default:
      throw std::out_of_range("known_chain_start: length > 14");
  }
}

CunninghamChain table_chain(std::size_t length, SecureRandom& rng) {
  const Bigint start = known_chain_start(length);
  const CunninghamChain chain = extend_chain(start, length, rng);
  if (chain.length() < length) {
    throw std::runtime_error("table_chain: published chain failed reverify");
  }
  return chain;
}

}  // namespace ppms
