// RSA-based partially blind signature, after Chien–Jan–Tseng (ICPADS 2001)
// as used by the paper's PPMSpbs mechanism.
//
// "Partially blind" means the signature carries a piece of *shared info*
// that both requester and signer agree on in the clear (here: the job id /
// serial number), while the signed *message* (the SP's real public key)
// stays hidden from the signer. The signer cannot later link a published
// signature back to the signing session, but anyone can check the shared
// info — which is exactly what lets the MA check coin freshness while the
// JO learns nothing about whom it paid.
//
// Construction: the shared info is folded into a per-info public exponent
//   e_a = e * (2 * H64(info) + 1)   (odd by construction)
// for which the signer — knowing phi(n) — computes the matching private
// exponent d_a. Blinding then works exactly as in Chaum's scheme under
// (n, e_a):
//   requester: b = H(m) * r^{e_a} mod n
//   signer:    s' = b^{d_a} mod n
//   requester: s = s' * r^{-1} mod n, so s^{e_a} = H(m) mod n.
// A signature (s) on (m, info) verifies against the public (n, e) alone.
#pragma once

#include <optional>

#include "rsa/rsa.h"

namespace ppms {

/// The per-info public exponent e_a (odd, > e). Deterministic in
/// (key, info), so requester, signer and verifier all derive it
/// identically.
Bigint pbs_info_exponent(const RsaPublicKey& key, const Bytes& info);

struct PbsBlindingState {
  Bigint r_inv;
};

struct PbsBlindedMessage {
  Bigint value;
};

/// Requester blinds message `m` for shared info `info` (counted as Enc).
std::pair<PbsBlindedMessage, PbsBlindingState> pbs_blind(
    const RsaPublicKey& key, const Bytes& m, const Bytes& info,
    SecureRandom& rng);

/// Signer's operation: signs the blinded value under the info-derived
/// exponent (counted as Enc). Returns nullopt if e_a is not invertible
/// mod lambda(n) — vanishingly rare; callers then vary the info nonce.
std::optional<Bigint> pbs_sign(const RsaPrivateKey& key,
                               const PbsBlindedMessage& blinded,
                               const Bytes& info);

/// Requester unblinds the signer's response into the final signature.
Bytes pbs_unblind(const RsaPublicKey& key, const Bigint& blind_sig,
                  const PbsBlindingState& state);

/// Anyone verifies: s^{e_a} == H(m) mod n (counted as Dec).
bool pbs_verify(const RsaPublicKey& key, const Bytes& m, const Bytes& info,
                const Bytes& signature);

}  // namespace ppms
