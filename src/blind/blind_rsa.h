// Chaum RSA blind signatures (CRYPTO'82) over a full-domain hash.
//
// Used wherever a resident needs the bank's signature on a value the bank
// must not see — e.g. binding a withdrawal to a wallet commitment without
// revealing which account withdrew.
//
// Protocol:
//   requester: (blinded, state) = blind(pub, msg)
//   signer:    blind_sig        = blind_sign(priv, blinded)
//   requester: sig              = unblind(pub, blind_sig, state)
//   anyone:    blind_verify(pub, msg, sig)
#pragma once

#include "rsa/rsa.h"

namespace ppms {

/// Requester-side secret kept between blind() and unblind().
struct BlindingState {
  Bigint r_inv;  ///< r^{-1} mod n
};

struct BlindedMessage {
  Bigint value;  ///< H(msg) * r^e mod n — all the signer ever sees
};

/// Blind `msg` under the signer's public key (counted as Enc: one modular
/// exponentiation on the requester).
std::pair<BlindedMessage, BlindingState> rsa_blind(const RsaPublicKey& key,
                                                   const Bytes& msg,
                                                   SecureRandom& rng);

/// Signer's blind signing operation (counted as Enc per the paper's
/// signature-as-encryption convention).
Bigint rsa_blind_sign(const RsaPrivateKey& key, const BlindedMessage& blinded);

/// Remove the blinding factor; returns the bare RSA-FDH signature.
Bytes rsa_unblind(const RsaPublicKey& key, const Bigint& blind_sig,
                  const BlindingState& state);

/// Verify an unblinded signature (counted as Dec).
bool rsa_blind_verify(const RsaPublicKey& key, const Bytes& msg,
                      const Bytes& signature);

}  // namespace ppms
