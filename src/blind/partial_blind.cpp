#include "blind/partial_blind.h"

#include "bigint/modarith.h"
#include "bigint/prime.h"
#include "hash/sha256.h"
#include "util/counters.h"
#include "obs/metrics.h"

namespace ppms {

Bigint pbs_info_exponent(const RsaPublicKey& key, const Bytes& info) {
  // Hash-to-prime: the smallest prime at or above the odd 64-bit fold of
  // the info. A prime multiplier is coprime to lambda(n) except when it
  // divides lambda exactly — probability ~2^-40 — so pbs_sign essentially
  // never refuses. Deterministic, so requester, signer and verifier derive
  // the same exponent. Multiplying by the base exponent e keeps the
  // signer's unforgeability (a forger would still need an e-th root).
  const Bytes digest = sha256(concat(bytes_of("ppms.pbs.info"), info));
  std::uint64_t fold = read_u64_be(digest, 0) | 1;
  fold &= (1ull << 62) - 1;  // headroom so the prime search cannot wrap
  while (!is_prime_u64(fold)) fold += 2;
  return key.e * Bigint::from_u64(fold);
}

std::pair<PbsBlindedMessage, PbsBlindingState> pbs_blind(
    const RsaPublicKey& key, const Bytes& m, const Bytes& info,
    SecureRandom& rng) {
  count_op(OpKind::Enc);
  static obs::Counter& obs_enc = obs::counter("crypto.enc.calls");
  if (!op_counting_paused()) obs_enc.add();
  const Bigint ea = pbs_info_exponent(key, info);
  const Bigint h = rsa_fdh(key, m);
  const auto ctx = montgomery_ctx(key.n);  // shared per-key context
  for (;;) {
    const Bigint r = Bigint::random_range(rng, Bigint(2), key.n);
    if (!gcd(r, key.n).is_one()) continue;
    const Bigint blinded = (h * modexp(r, ea, *ctx)).mod(key.n);
    return {PbsBlindedMessage{blinded}, PbsBlindingState{modinv(r, key.n)}};
  }
}

std::optional<Bigint> pbs_sign(const RsaPrivateKey& key,
                               const PbsBlindedMessage& blinded,
                               const Bytes& info) {
  count_op(OpKind::Enc);
  static obs::Counter& obs_enc = obs::counter("crypto.enc.calls");
  if (!op_counting_paused()) obs_enc.add();
  const Bigint ea = pbs_info_exponent(key.public_key(), info);
  const Bigint lambda = lcm(key.p - Bigint(1), key.q - Bigint(1));
  if (!gcd(ea, lambda).is_one()) return std::nullopt;
  const Bigint da = modinv(ea, lambda);
  if (blinded.value.is_negative() || blinded.value >= key.n) {
    throw std::invalid_argument("pbs_sign: blinded value out of range");
  }
  return modexp(blinded.value, da, *montgomery_ctx(key.n));
}

Bytes pbs_unblind(const RsaPublicKey& key, const Bigint& blind_sig,
                  const PbsBlindingState& state) {
  return (blind_sig * state.r_inv).mod(key.n).to_bytes_be(
      key.modulus_bytes());
}

bool pbs_verify(const RsaPublicKey& key, const Bytes& m, const Bytes& info,
                const Bytes& signature) {
  count_op(OpKind::Dec);
  static obs::Counter& obs_dec = obs::counter("crypto.dec.calls");
  if (!op_counting_paused()) obs_dec.add();
  if (signature.size() != key.modulus_bytes()) return false;
  const Bigint s = Bigint::from_bytes_be(signature);
  if (s >= key.n) return false;
  const Bigint ea = pbs_info_exponent(key, info);
  // The facade resolves to the cached per-modulus context for any honest
  // (odd) n and still computes for degenerate key material.
  return modexp(s, ea, key.n) == rsa_fdh(key, m);
}

}  // namespace ppms
