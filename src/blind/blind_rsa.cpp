#include "blind/blind_rsa.h"

#include "bigint/modarith.h"
#include "util/counters.h"
#include "obs/metrics.h"

namespace ppms {

std::pair<BlindedMessage, BlindingState> rsa_blind(const RsaPublicKey& key,
                                                   const Bytes& msg,
                                                   SecureRandom& rng) {
  count_op(OpKind::Enc);
  static obs::Counter& obs_enc = obs::counter("crypto.enc.calls");
  if (!op_counting_paused()) obs_enc.add();
  const Bigint h = rsa_fdh(key, msg);
  // r must be invertible mod n; a random unit is found immediately for any
  // honest modulus (non-units reveal a factor of n). The key's Montgomery
  // context is held across retries (and shared with every other operation
  // under this key).
  const auto ctx = montgomery_ctx(key.n);
  for (;;) {
    const Bigint r = Bigint::random_range(rng, Bigint(2), key.n);
    if (!gcd(r, key.n).is_one()) continue;
    const Bigint blinded = (h * modexp(r, key.e, *ctx)).mod(key.n);
    return {BlindedMessage{blinded}, BlindingState{modinv(r, key.n)}};
  }
}

Bigint rsa_blind_sign(const RsaPrivateKey& key,
                      const BlindedMessage& blinded) {
  count_op(OpKind::Enc);
  static obs::Counter& obs_enc = obs::counter("crypto.enc.calls");
  if (!op_counting_paused()) obs_enc.add();
  return rsa_private_op(key, blinded.value);
}

Bytes rsa_unblind(const RsaPublicKey& key, const Bigint& blind_sig,
                  const BlindingState& state) {
  const Bigint s = (blind_sig * state.r_inv).mod(key.n);
  return s.to_bytes_be(key.modulus_bytes());
}

bool rsa_blind_verify(const RsaPublicKey& key, const Bytes& msg,
                      const Bytes& signature) {
  count_op(OpKind::Dec);
  static obs::Counter& obs_dec = obs::counter("crypto.dec.calls");
  if (!op_counting_paused()) obs_dec.add();
  if (signature.size() != key.modulus_bytes()) return false;
  const Bigint s = Bigint::from_bytes_be(signature);
  if (s >= key.n) return false;
  return rsa_public_op(key, s) == rsa_fdh(key, msg);
}

}  // namespace ppms
