// Prime-field helpers for the pairing layer.
//
// Elements of F_p are plain Bigints in [0, p); these helpers centralize the
// reductions and the square-root rule available when p ≡ 3 (mod 4), which
// Type-A pairing parameters guarantee.
#pragma once

#include <cstdint>
#include <optional>

#include "bigint/bigint.h"

namespace ppms {

/// (a + b) mod p for a, b already reduced.
Bigint fp_add(const Bigint& a, const Bigint& b, const Bigint& p);

/// (a - b) mod p for a, b already reduced.
Bigint fp_sub(const Bigint& a, const Bigint& b, const Bigint& p);

/// (a * b) mod p.
Bigint fp_mul(const Bigint& a, const Bigint& b, const Bigint& p);

/// a^{-1} mod p; throws std::domain_error for a ≡ 0.
Bigint fp_inv(const Bigint& a, const Bigint& p);

/// Process-wide count of fp_inv calls. Inversions dominate affine curve
/// arithmetic, so tests use this to pin down the projective Miller loop's
/// budget (exactly one, in the final exponentiation).
std::uint64_t fp_inv_calls();

/// -a mod p.
Bigint fp_neg(const Bigint& a, const Bigint& p);

/// Square root mod p for p ≡ 3 (mod 4): a^{(p+1)/4}. Returns nullopt when
/// `a` is not a quadratic residue. Throws std::invalid_argument for other
/// prime shapes.
std::optional<Bigint> fp_sqrt(const Bigint& a, const Bigint& p);

/// True when a is a quadratic residue mod odd prime p (Euler criterion);
/// zero counts as a residue.
bool fp_is_square(const Bigint& a, const Bigint& p);

}  // namespace ppms
