// The supersingular curve E: y² = x³ + x over F_p (p ≡ 3 mod 4).
//
// #E(F_p) = p + 1 and the embedding degree is 2, which is the "Type A"
// setting of the PBC/jPBC libraries the paper's experiments used. Points
// use affine coordinates plus an explicit infinity flag; the group sizes
// here make affine arithmetic (one field inversion per operation) entirely
// adequate.
#pragma once

#include <optional>

#include "pairing/fp.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace ppms {

struct EcPoint {
  Bigint x, y;
  bool infinity = false;

  static EcPoint at_infinity() { return EcPoint{Bigint(0), Bigint(0), true}; }

  friend bool operator==(const EcPoint&, const EcPoint&) = default;
};

/// True when P satisfies y² = x³ + x (or is infinity).
bool ec_on_curve(const EcPoint& pt, const Bigint& p);

/// Point addition (handles doubling, inverses and infinity).
EcPoint ec_add(const EcPoint& a, const EcPoint& b, const Bigint& p);

EcPoint ec_neg(const EcPoint& a, const Bigint& p);

/// Scalar multiplication k·P for k >= 0 (double-and-add).
EcPoint ec_mul(const EcPoint& a, const Bigint& k, const Bigint& p);

/// Uniform-ish point: random x until x³ + x is square, then a random
/// choice of root. Never returns infinity.
EcPoint ec_random_point(SecureRandom& rng, const Bigint& p);

/// Fixed-width serialization (x || y || infinity flag).
Bytes ec_serialize(const EcPoint& pt, const Bigint& p);
EcPoint ec_deserialize(const Bytes& data, const Bigint& p);

}  // namespace ppms
