#include "pairing/curve.h"

#include <stdexcept>

namespace ppms {

bool ec_on_curve(const EcPoint& pt, const Bigint& p) {
  if (pt.infinity) return true;
  if (pt.x.is_negative() || pt.x >= p || pt.y.is_negative() || pt.y >= p) {
    return false;
  }
  const Bigint lhs = fp_mul(pt.y, pt.y, p);
  const Bigint x3 = fp_mul(fp_mul(pt.x, pt.x, p), pt.x, p);
  return lhs == fp_add(x3, pt.x, p);
}

EcPoint ec_neg(const EcPoint& a, const Bigint& p) {
  if (a.infinity) return a;
  return EcPoint{a.x, fp_neg(a.y, p), false};
}

EcPoint ec_add(const EcPoint& a, const EcPoint& b, const Bigint& p) {
  if (a.infinity) return b;
  if (b.infinity) return a;
  if (a.x == b.x) {
    if (fp_add(a.y, b.y, p).is_zero()) return EcPoint::at_infinity();
    // Doubling: lambda = (3x² + 1) / 2y.
    const Bigint x2 = fp_mul(a.x, a.x, p);
    const Bigint num = fp_add(fp_add(fp_add(x2, x2, p), x2, p), Bigint(1), p);
    const Bigint lambda = fp_mul(num, fp_inv(fp_add(a.y, a.y, p), p), p);
    const Bigint x3 = fp_sub(fp_mul(lambda, lambda, p),
                             fp_add(a.x, a.x, p), p);
    const Bigint y3 =
        fp_sub(fp_mul(lambda, fp_sub(a.x, x3, p), p), a.y, p);
    return EcPoint{x3, y3, false};
  }
  const Bigint lambda =
      fp_mul(fp_sub(b.y, a.y, p), fp_inv(fp_sub(b.x, a.x, p), p), p);
  const Bigint x3 =
      fp_sub(fp_sub(fp_mul(lambda, lambda, p), a.x, p), b.x, p);
  const Bigint y3 = fp_sub(fp_mul(lambda, fp_sub(a.x, x3, p), p), a.y, p);
  return EcPoint{x3, y3, false};
}

EcPoint ec_mul(const EcPoint& a, const Bigint& k, const Bigint& p) {
  if (k.is_negative()) {
    throw std::invalid_argument("ec_mul: negative scalar");
  }
  EcPoint result = EcPoint::at_infinity();
  for (std::size_t i = k.bit_length(); i-- > 0;) {
    result = ec_add(result, result, p);
    if (k.bit(i)) result = ec_add(result, a, p);
  }
  return result;
}

EcPoint ec_random_point(SecureRandom& rng, const Bigint& p) {
  for (;;) {
    const Bigint x = Bigint::random_below(rng, p);
    const Bigint rhs = fp_add(fp_mul(fp_mul(x, x, p), x, p), x, p);
    const auto y = fp_sqrt(rhs, p);
    if (!y.has_value() || y->is_zero()) continue;
    return EcPoint{x, rng.uniform(2) ? *y : fp_neg(*y, p), false};
  }
}

Bytes ec_serialize(const EcPoint& pt, const Bigint& p) {
  const std::size_t width = (p.bit_length() + 7) / 8;
  Bytes out = concat(pt.x.to_bytes_be(width), pt.y.to_bytes_be(width));
  out.push_back(pt.infinity ? 1 : 0);
  return out;
}

EcPoint ec_deserialize(const Bytes& data, const Bigint& p) {
  const std::size_t width = (p.bit_length() + 7) / 8;
  if (data.size() != 2 * width + 1 || data.back() > 1) {
    throw std::invalid_argument("ec_deserialize: malformed encoding");
  }
  EcPoint pt;
  pt.x = Bigint::from_bytes_be(
      Bytes(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(width)));
  pt.y = Bigint::from_bytes_be(
      Bytes(data.begin() + static_cast<std::ptrdiff_t>(width),
            data.end() - 1));
  pt.infinity = data.back() == 1;
  if (!ec_on_curve(pt, p)) {
    throw std::invalid_argument("ec_deserialize: point not on curve");
  }
  return pt;
}

}  // namespace ppms
