#include "pairing/typea.h"

#include <stdexcept>

#include "bigint/prime.h"
#include "util/serial.h"

namespace ppms {

Bytes TypeAParams::serialize() const {
  Writer w;
  w.put_bytes(p.to_bytes_be());
  w.put_bytes(r.to_bytes_be());
  w.put_bytes(h.to_bytes_be());
  w.put_bytes(ec_serialize(g, p));
  return w.take();
}

TypeAParams TypeAParams::deserialize(const Bytes& data) {
  Reader rd(data);
  TypeAParams params;
  params.p = Bigint::from_bytes_be(rd.get_bytes());
  params.r = Bigint::from_bytes_be(rd.get_bytes());
  params.h = Bigint::from_bytes_be(rd.get_bytes());
  params.g = ec_deserialize(rd.get_bytes(), params.p);
  if (!rd.exhausted()) {
    throw std::invalid_argument("TypeAParams: trailing bytes");
  }
  if (params.r * params.h != params.p + Bigint(1)) {
    throw std::invalid_argument("TypeAParams: r*h != p+1");
  }
  return params;
}

namespace {

// Find a generator of the order-r subgroup given valid (p, r, h).
EcPoint find_generator(SecureRandom& rng, const Bigint& p, const Bigint& r,
                       const Bigint& h) {
  for (;;) {
    const EcPoint pt = ec_random_point(rng, p);
    const EcPoint g = ec_mul(pt, h, p);
    if (g.infinity) continue;
    // Order divides prime r and is not 1, hence exactly r.
    if (!ec_mul(g, r, p).infinity) {
      throw std::logic_error("typea: curve order mismatch");
    }
    return g;
  }
}

}  // namespace

TypeAParams typea_generate_for_order(SecureRandom& rng, const Bigint& r,
                                     std::size_t pbits) {
  if (r < Bigint(5) || r.is_even()) {
    throw std::invalid_argument("typea: r must be an odd prime >= 5");
  }
  if (pbits < r.bit_length() + 3) {
    throw std::invalid_argument("typea: pbits too small for r");
  }
  const std::size_t hbits = pbits - r.bit_length();
  for (;;) {
    // h = 4m keeps p = r*h - 1 ≡ 3 (mod 4) since r is odd.
    const Bigint m = Bigint::random_bits(rng, hbits - 2);
    const Bigint h = m * Bigint(4);
    const Bigint p = r * h - Bigint(1);
    if (p.bit_length() != pbits) continue;
    if (!is_probable_prime(p, rng)) continue;
    TypeAParams params;
    params.p = p;
    params.r = r;
    params.h = h;
    params.g = find_generator(rng, p, r, h);
    return params;
  }
}

TypeAParams typea_generate(SecureRandom& rng, std::size_t rbits,
                           std::size_t pbits) {
  const Bigint r = random_prime(rng, rbits);
  return typea_generate_for_order(rng, r, pbits);
}

EcPoint typea_random_subgroup_point(const TypeAParams& params,
                                    SecureRandom& rng) {
  for (;;) {
    const EcPoint pt = ec_random_point(rng, params.p);
    const EcPoint out = ec_mul(pt, params.h, params.p);
    if (!out.infinity) return out;
  }
}

}  // namespace ppms
