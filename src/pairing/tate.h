// Tate pairing on the Type-A curve, via Miller's algorithm.
//
// `tate_pairing(params, P, Q)` computes the symmetric pairing
// ê(P, Q) = f_{r,P}(φ(Q))^{(p²-1)/r} with the distortion map
// φ(x, y) = (-x, i·y). Vertical lines evaluate into F_p and are killed by
// the (p-1) factor of the final exponentiation, so the Miller loop skips
// them (standard denominator elimination for even embedding degree).
#pragma once

#include "pairing/typea.h"

namespace ppms {

/// ê(P, Q) in GT ⊂ F_p². Both inputs must lie on the curve; points at
/// infinity yield 1 (the identity of GT).
///
/// The Miller loop runs in Jacobian coordinates: every line value carries
/// an extra factor in F_p* that the (p-1) part of the final exponentiation
/// kills, so no per-step field inversion is needed — the whole pairing
/// performs exactly one inversion (inside the final fp2_inv).
Fp2 tate_pairing(const TypeAParams& params, const EcPoint& P,
                 const EcPoint& Q);

/// Reference implementation with the textbook affine Miller loop (one
/// field inversion per doubling/addition step). Kept as the oracle for
/// the projective loop: both must agree bit-for-bit after the final
/// exponentiation.
Fp2 tate_pairing_affine(const TypeAParams& params, const EcPoint& P,
                        const EcPoint& Q);

}  // namespace ppms
