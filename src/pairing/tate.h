// Tate pairing on the Type-A curve, via Miller's algorithm.
//
// `tate_pairing(params, P, Q)` computes the symmetric pairing
// ê(P, Q) = f_{r,P}(φ(Q))^{(p²-1)/r} with the distortion map
// φ(x, y) = (-x, i·y). Vertical lines evaluate into F_p and are killed by
// the (p-1) factor of the final exponentiation, so the Miller loop skips
// them (standard denominator elimination for even embedding degree).
#pragma once

#include "pairing/typea.h"

namespace ppms {

/// ê(P, Q) in GT ⊂ F_p². Both inputs must lie on the curve; points at
/// infinity yield 1 (the identity of GT).
Fp2 tate_pairing(const TypeAParams& params, const EcPoint& P,
                 const EcPoint& Q);

}  // namespace ppms
