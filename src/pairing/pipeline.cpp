#include "pairing/pipeline.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "bigint/limbs.h"
#include "bigint/modarith.h"
#include "bigint/simd.h"
#include "bigint/montgomery.h"
#include "obs/metrics.h"
#include "pairing/fp.h"

namespace ppms {

namespace {

// F_p² element with both coordinates in Montgomery form. fp_add/fp_sub/
// fp_neg are linear, so they work unchanged on Montgomery residues; only
// products go through the context.
struct F2 {
  Bigint a, b;
};

// Jacobian point with Montgomery-form coordinates; Z = 0 is infinity.
struct Jac {
  Bigint X, Y, Z;
  bool at_infinity() const { return Z.is_zero(); }
};

// Line coefficients (Montgomery form): the value at φ(Q) = (-xq, i·yq) is
// (c0 + c1·xq) + (c2·yq)·i. The unit line is (1, 0, 0).
struct Line {
  Bigint c0, c1, c2;
};

struct PairingCounters {
  obs::Counter& calls;
  obs::Counter& miller;
  obs::Counter& finalexp;
  obs::Counter& precomp_hits;
};

PairingCounters& counters() {
  static PairingCounters c{obs::counter("crypto.pairing.calls"),
                           obs::counter("crypto.pairing.miller"),
                           obs::counter("crypto.pairing.finalexp"),
                           obs::counter("crypto.pairing.precomp_hits")};
  return c;
}

F2 f2_one(const MontgomeryCtx& M) { return {M.mont_one(), Bigint(0)}; }

F2 f2_mul(const MontgomeryCtx& M, const Bigint& p, const F2& x, const F2& y) {
  const Bigint ac = M.mul(x.a, y.a);
  const Bigint bd = M.mul(x.b, y.b);
  const Bigint cross = M.mul(fp_add(x.a, x.b, p), fp_add(y.a, y.b, p));
  return {fp_sub(ac, bd, p), fp_sub(fp_sub(cross, ac, p), bd, p)};
}

F2 f2_sq(const MontgomeryCtx& M, const Bigint& p, const F2& x) {
  const Bigint t1 = M.mul(fp_add(x.a, x.b, p), fp_sub(x.a, x.b, p));
  const Bigint t2 = M.mul(x.a, x.b);
  return {t1, fp_add(t2, t2, p)};
}

F2 f2_conj(const Bigint& p, const F2& x) { return {x.a, fp_neg(x.b, p)}; }

F2 f2_inv(const MontgomeryCtx& M, const Bigint& p, const F2& x) {
  const Bigint norm = M.from_mont(fp_add(M.mul(x.a, x.a), M.mul(x.b, x.b), p));
  if (norm.is_zero()) throw std::domain_error("pairing: zero element");
  const Bigint ninv = M.to_mont(fp_inv(norm, p));
  return {M.mul(x.a, ninv), M.mul(fp_neg(x.b, p), ninv)};
}

F2 f2_pow(const MontgomeryCtx& M, const Bigint& p, const F2& x,
          const Bigint& e) {
  F2 acc = f2_one(M);
  for (std::size_t i = e.bit_length(); i-- > 0;) {
    acc = f2_sq(M, p, acc);
    if (e.bit(i)) acc = f2_mul(M, p, acc, x);
  }
  return acc;
}

Line unit_line(const MontgomeryCtx& M) {
  return {M.mont_one(), Bigint(0), Bigint(0)};
}

F2 eval_line(const MontgomeryCtx& M, const Bigint& p, const Line& line,
             const Bigint& xq, const Bigint& yq) {
  return {fp_add(line.c0, M.mul(line.c1, xq), p), M.mul(line.c2, yq)};
}

// The Jacobian doubling/addition steps below mirror pairing/tate.cpp
// exactly, except that every product is a Montgomery product and the line
// comes back as coefficients (so it can be recorded in a PairingPrecomp
// table or evaluated against any Q). Degenerate events return the unit
// line, same as the reference loop.

Line dbl_step(const MontgomeryCtx& M, const Bigint& p, Jac& V) {
  if (V.at_infinity()) return unit_line(M);
  if (V.Y.is_zero()) {  // order-2 point: vertical tangent
    V = Jac{M.mont_one(), M.mont_one(), Bigint(0)};
    return unit_line(M);
  }
  const Bigint T = M.mul(V.Z, V.Z);
  const Bigint A = M.mul(V.X, V.X);
  const Bigint B = M.mul(V.Y, V.Y);
  const Bigint C = M.mul(B, B);
  const Bigint xb = fp_add(V.X, B, p);
  Bigint D = fp_sub(fp_sub(M.mul(xb, xb), A, p), C, p);
  D = fp_add(D, D, p);
  const Bigint E = fp_add(fp_add(fp_add(A, A, p), A, p), M.mul(T, T), p);
  const Bigint X3 = fp_sub(M.mul(E, E), fp_add(D, D, p), p);
  Bigint c8 = fp_add(C, C, p);
  c8 = fp_add(c8, c8, p);
  c8 = fp_add(c8, c8, p);
  const Bigint Y3 = fp_sub(M.mul(E, fp_sub(D, X3, p)), c8, p);
  const Bigint yz = M.mul(V.Y, V.Z);
  const Bigint Z3 = fp_add(yz, yz, p);
  // real = E·(X + xq·T) - 2Y² = (E·X - 2Y²) + (E·T)·xq,  imag = (Z₃·T)·yq.
  Line line;
  line.c0 = fp_sub(M.mul(E, V.X), fp_add(B, B, p), p);
  line.c1 = M.mul(E, T);
  line.c2 = M.mul(Z3, T);
  V = Jac{X3, Y3, Z3};
  return line;
}

Line add_step(const MontgomeryCtx& M, const Bigint& p, Jac& V,
              const Bigint& px, const Bigint& py) {
  if (V.at_infinity()) {
    V = Jac{px, py, M.mont_one()};
    return unit_line(M);
  }
  const Bigint T = M.mul(V.Z, V.Z);
  const Bigint U2 = M.mul(px, T);
  const Bigint S2 = M.mul(py, M.mul(T, V.Z));
  const Bigint H = fp_sub(U2, V.X, p);
  const Bigint R = fp_sub(S2, V.Y, p);
  if (H.is_zero()) {
    if (R.is_zero()) return dbl_step(M, p, V);  // V == P: tangent
    // V == -P: vertical line, sum is the point at infinity.
    V = Jac{M.mont_one(), M.mont_one(), Bigint(0)};
    return unit_line(M);
  }
  const Bigint H2 = M.mul(H, H);
  const Bigint H3 = M.mul(H, H2);
  const Bigint XH2 = M.mul(V.X, H2);
  const Bigint X3 =
      fp_sub(fp_sub(M.mul(R, R), H3, p), fp_add(XH2, XH2, p), p);
  const Bigint Y3 =
      fp_sub(M.mul(R, fp_sub(XH2, X3, p)), M.mul(V.Y, H3), p);
  const Bigint Z3 = M.mul(V.Z, H);
  // real = R·(xq + xp) - yp·Z₃ = (R·xp - yp·Z₃) + R·xq,  imag = Z₃·yq.
  Line line;
  line.c0 = fp_sub(M.mul(R, px), M.mul(py, Z3), p);
  line.c1 = R;
  line.c2 = Z3;
  V = Jac{X3, Y3, Z3};
  return line;
}

// f^{(p²-1)/r} = (conj(f)·f^{-1})^h, entirely in the Montgomery domain.
// The fp_inv inside f2_inv is the pairing's only field inversion.
F2 final_exp(const MontgomeryCtx& M, const Bigint& p, const Bigint& h,
             const F2& f) {
  return f2_pow(M, p, f2_mul(M, p, f2_conj(p, f), f2_inv(M, p, f)), h);
}

// ---------------------------------------------------------------------------
// Flat-limb mirror of the machinery above (bigint/limbs.h). Same formula
// sequences applied to the same fully reduced residues, so every ordinary-
// form value leaving this path is bit-identical to the Bigint path — the
// difference is purely mechanical: stack-resident FpElem operands, 64-bit
// CIOS products, and zero allocator traffic inside the loops.

// Miller loops actually run on the flat kernels (vs. ctr.miller, which
// counts both paths) — the observable that pins which kernel served a call.
obs::Counter& flat_miller_counter() {
  static obs::Counter& c = obs::counter("crypto.fp.flat_miller");
  return c;
}

struct FJac {
  FpElem X, Y, Z;
};

struct FLine {
  FpElem c0, c1, c2;
};

FLine funit_line(const FpCtx& F) { return {F.one(), F.zero(), F.zero()}; }

FpElem fload(const std::uint64_t* src, std::size_t n) {
  FpElem e;
  std::copy(src, src + n, e.v.begin());
  return e;
}

Fp2Elem feval_line(const FpCtx& F, const FLine& line, const FpElem& xq,
                   const FpElem& yq) {
  Fp2Elem v;
  FpElem t;
  F.mul(t, line.c1, xq);
  F.add(v.a, line.c0, t);
  F.mul(v.b, line.c2, yq);
  return v;
}

FLine fdbl_step(const FpCtx& F, FJac& V) {
  if (F.is_zero(V.Z)) return funit_line(F);
  if (F.is_zero(V.Y)) {  // order-2 point: vertical tangent
    V = FJac{F.one(), F.one(), F.zero()};
    return funit_line(F);
  }
  FpElem T, A, B, C, xb, D, E, X3, c8, Y3, Z3, t;
  F.sqr(T, V.Z);
  F.sqr(A, V.X);
  F.sqr(B, V.Y);
  F.sqr(C, B);
  F.add(xb, V.X, B);
  F.sqr(t, xb);
  F.sub(D, t, A);
  F.sub(D, D, C);
  F.dbl(D, D);
  F.add(E, A, A);
  F.add(E, E, A);
  F.sqr(t, T);
  F.add(E, E, t);
  F.sqr(X3, E);
  F.add(t, D, D);
  F.sub(X3, X3, t);
  F.add(c8, C, C);
  F.dbl(c8, c8);
  F.dbl(c8, c8);
  F.sub(t, D, X3);
  F.mul(Y3, E, t);
  F.sub(Y3, Y3, c8);
  F.mul(t, V.Y, V.Z);
  F.add(Z3, t, t);
  FLine line;
  F.mul(t, E, V.X);
  FpElem b2;
  F.add(b2, B, B);
  F.sub(line.c0, t, b2);
  F.mul(line.c1, E, T);
  F.mul(line.c2, Z3, T);
  V = FJac{X3, Y3, Z3};
  return line;
}

FLine fadd_step(const FpCtx& F, FJac& V, const FpElem& px, const FpElem& py) {
  if (F.is_zero(V.Z)) {
    V = FJac{px, py, F.one()};
    return funit_line(F);
  }
  FpElem T, U2, S2, H, R, t, t2;
  F.sqr(T, V.Z);
  F.mul(U2, px, T);
  F.mul(t, T, V.Z);
  F.mul(S2, py, t);
  F.sub(H, U2, V.X);
  F.sub(R, S2, V.Y);
  if (F.is_zero(H)) {
    if (F.is_zero(R)) return fdbl_step(F, V);  // V == P: tangent
    // V == -P: vertical line, sum is the point at infinity.
    V = FJac{F.one(), F.one(), F.zero()};
    return funit_line(F);
  }
  FpElem H2, H3, XH2, X3, Y3, Z3;
  F.sqr(H2, H);
  F.mul(H3, H, H2);
  F.mul(XH2, V.X, H2);
  F.sqr(X3, R);
  F.sub(X3, X3, H3);
  F.add(t, XH2, XH2);
  F.sub(X3, X3, t);
  F.sub(t, XH2, X3);
  F.mul(Y3, R, t);
  F.mul(t2, V.Y, H3);
  F.sub(Y3, Y3, t2);
  F.mul(Z3, V.Z, H);
  FLine line;
  F.mul(t, R, px);
  F.mul(t2, py, Z3);
  F.sub(line.c0, t, t2);
  line.c1 = R;
  line.c2 = Z3;
  V = FJac{X3, Y3, Z3};
  return line;
}

// Mirror of f2_inv: one instrumented fp_inv, everything else flat. Keeps
// the "one field inversion per final exponentiation" budget intact.
Fp2Elem ff2_inv(const FpCtx& F, const Fp2Elem& x) {
  FpElem aa, bb, nrm;
  F.sqr(aa, x.a);
  F.sqr(bb, x.b);
  F.add(nrm, aa, bb);
  const Bigint norm = F.from_mont(nrm);
  if (norm.is_zero()) throw std::domain_error("pairing: zero element");
  const FpElem ninv = F.to_mont(fp_inv(norm, F.modulus()));
  Fp2Elem r;
  F.mul(r.a, x.a, ninv);
  FpElem nb;
  F.neg(nb, x.b);
  F.mul(r.b, nb, ninv);
  return r;
}

Fp2Elem f_final_exp(const FpCtx& F, const Bigint& h, const Fp2Elem& f) {
  Fp2Elem conj;
  fp2_conj(F, conj, f);
  const Fp2Elem inv = ff2_inv(F, f);
  Fp2Elem base;
  fp2_mul(F, base, conj, inv);
  Fp2Elem out;
  fp2_pow(F, out, base, h);
  return out;
}

// Lane-batch collector for independent F_p² products: queues fp2_mul /
// fp2_sqr / raw F_p mul ops, then flush() runs the linear pre-adds, pushes
// every Montgomery product through FpCtx::mul_batch in one call (SIMD
// lane-filled when the dispatch level allows), and applies the linear
// post-ops. The mul/sqr shapes mirror fp2_mul/fp2_sqr exactly, and the
// Montgomery products of reduced operands are canonical, so batched
// results are bit-identical to running the queued ops sequentially.
//
// Products land in a chunk-local scratch and an op's destination is only
// written after its own reads, so a destination may alias that op's own
// inputs (acc² in place is fine). A destination must NOT alias another
// queued op's operand, and two ops must not share a destination within
// one flush — ops execute chunk-by-chunk, not as one simultaneous step.
// Queued operands must stay live until flush() returns.
class Fp2Batch {
 public:
  explicit Fp2Batch(const FpCtx& F) : F_(F) {}

  void reserve(std::size_t muls, std::size_t sqrs, std::size_t fmuls) {
    mul_.reserve(muls);
    sqr_.reserve(sqrs);
    fp_.reserve(fmuls);
  }

  void mul(Fp2Elem& r, const Fp2Elem& x, const Fp2Elem& y) {
    mul_.push_back(MulOp{&r, &x, &y});
  }
  void sqr(Fp2Elem& r, const Fp2Elem& x) { sqr_.push_back(SqrOp{&r, &x}); }
  /// Raw F_p product r = a·b (Montgomery). r must be distinct scratch.
  void fmul(FpElem& r, const FpElem& a, const FpElem& b) {
    fp_.push_back(FpCtx::MulJob{&r, &a, &b});
  }

  // One chunk at a time: pre-adds into a compact stack scratch (stride =
  // the context's actual limb count, not kMaxFpLimbs — a full-width MulScr
  // would stream 1.25 KB per product through the cache at pairing widths),
  // one lane-batched kernel call on the chunk, then the post-ops, while
  // the scratch is still L1-resident. Chunks are as-if simultaneous too:
  // every queued destination is written only in its own chunk's post
  // phase, and flush order across chunks preserves queue order for the
  // scalar fallback.
  void flush() {
    const std::size_t n = F_.limbs();
    // Scratch layout per mul op: [sx sy ac bd cross]; per sqr: [s d t2 ra].
    // chunk_ops keeps the used prefix (5·n limbs per op) within this 32 KB
    // block at every width.
    limb::Limb scr[kChunkOps * limb::kMaxFpLimbs];
    simd::MontJob raw[3 * kChunkOps];
    for (std::size_t base = 0; base < mul_.size(); base += chunk_ops(n)) {
      const std::size_t c = std::min(chunk_ops(n), mul_.size() - base);
      std::size_t jn = 0;
      for (std::size_t i = 0; i < c; ++i) {
        const MulOp& op = mul_[base + i];
        limb::Limb* s = scr + i * 5 * n;
        F_.add_raw(s, op.x->a.v.data(), op.x->b.v.data());      // sx
        F_.add_raw(s + n, op.y->a.v.data(), op.y->b.v.data());  // sy
        raw[jn++] = simd::MontJob{s + 2 * n, op.x->a.v.data(),
                                  op.y->a.v.data()};            // ac
        raw[jn++] = simd::MontJob{s + 3 * n, op.x->b.v.data(),
                                  op.y->b.v.data()};            // bd
        raw[jn++] = simd::MontJob{s + 4 * n, s, s + n};         // cross
      }
      F_.mul_batch_raw(raw, jn);
      for (std::size_t i = 0; i < c; ++i) {
        const MulOp& op = mul_[base + i];
        limb::Limb* s = scr + i * 5 * n;
        F_.sub_raw(op.r->a.v.data(), s + 2 * n, s + 3 * n);
        F_.sub_raw(s + 4 * n, s + 4 * n, s + 2 * n);
        F_.sub_raw(op.r->b.v.data(), s + 4 * n, s + 3 * n);
      }
    }
    for (std::size_t base = 0; base < sqr_.size(); base += chunk_ops(n)) {
      const std::size_t c = std::min(chunk_ops(n), sqr_.size() - base);
      std::size_t jn = 0;
      for (std::size_t i = 0; i < c; ++i) {
        const SqrOp& op = sqr_[base + i];
        limb::Limb* s = scr + i * 4 * n;
        F_.add_raw(s, op.x->a.v.data(), op.x->b.v.data());          // s
        F_.sub_raw(s + n, op.x->a.v.data(), op.x->b.v.data());      // d
        raw[jn++] = simd::MontJob{s + 2 * n, op.x->a.v.data(),
                                  op.x->b.v.data()};                // t2
        raw[jn++] = simd::MontJob{s + 3 * n, s, s + n};             // ra
      }
      F_.mul_batch_raw(raw, jn);
      for (std::size_t i = 0; i < c; ++i) {
        const SqrOp& op = sqr_[base + i];
        const limb::Limb* s = scr + i * 4 * n;
        std::copy(s + 3 * n, s + 4 * n, op.r->a.v.begin());
        F_.add_raw(op.r->b.v.data(), s + 2 * n, s + 2 * n);
      }
    }
    for (std::size_t base = 0; base < fp_.size(); base += 3 * kChunkOps) {
      const std::size_t c = std::min(3 * kChunkOps, fp_.size() - base);
      for (std::size_t i = 0; i < c; ++i) {
        const FpCtx::MulJob& job = fp_[base + i];
        raw[i] = simd::MontJob{job.r->v.data(), job.a->v.data(),
                               job.b->v.data()};
      }
      F_.mul_batch_raw(raw, c);
    }
    mul_.clear();
    sqr_.clear();
    fp_.clear();
  }

 private:
  struct MulOp {
    Fp2Elem* r;
    const Fp2Elem* x;
    const Fp2Elem* y;
  };
  struct SqrOp {
    Fp2Elem* r;
    const Fp2Elem* x;
  };
  // Chunk budget: 128 ops at pairing widths, scaled down so the scratch
  // block (5·n limbs per op) stays within the fixed stack buffer for wide
  // moduli.
  static constexpr std::size_t kChunkOps = 128;
  static std::size_t chunk_ops(std::size_t n) {
    return std::max<std::size_t>(
        1, std::min(kChunkOps, kChunkOps * limb::kMaxFpLimbs / (5 * n)));
  }
  const FpCtx& F_;
  std::vector<MulOp> mul_;
  std::vector<SqrOp> sqr_;
  std::vector<FpCtx::MulJob> fp_;
};

}  // namespace

PairingEngine::PairingEngine(TypeAParams params)
    : params_(std::move(params)),
      mont_(montgomery_ctx(params_.p)),
      fp_(flat_limbs_enabled() && FpCtx::supports(params_.p)
              ? fp_ctx(params_.p)
              : nullptr) {}

PairingPrecomp PairingEngine::precompute(const EcPoint& P) const {
  if (!ec_on_curve(P, params_.p)) {
    throw std::invalid_argument("PairingEngine: precomp point not on curve");
  }
  PairingPrecomp pre;
  pre.point_ = P;
  pre.built_ = true;
  if (P.infinity) return pre;  // every pairing against it is 1

  const MontgomeryCtx& M = *mont_;
  const Bigint& r = params_.r;
  if (fp_) {
    // Run the Miller loop on the flat kernels and record both encodings:
    // flat coefficients for this mode's replay path, and the derived
    // Bigint steps so the table stays valid if replayed by an oracle-mode
    // engine. The ordinary-form coefficient values are exact, so the
    // derived steps match an oracle-built table bit for bit.
    const FpCtx& F = *fp_;
    const std::size_t n = F.limbs();
    pre.flat_limbs_ = n;
    const FpElem px = F.to_mont(P.x);
    const FpElem py = F.to_mont(P.y);
    FJac V{px, py, F.one()};
    const auto record = [&](const FLine& line, bool add) {
      for (const FpElem* c : {&line.c0, &line.c1, &line.c2}) {
        pre.flat_coeffs_.insert(pre.flat_coeffs_.end(), c->v.begin(),
                                c->v.begin() + static_cast<std::ptrdiff_t>(n));
      }
      pre.steps_.push_back(PairingPrecomp::Step{
          M.to_mont(F.from_mont(line.c0)), M.to_mont(F.from_mont(line.c1)),
          M.to_mont(F.from_mont(line.c2)), add});
    };
    for (std::size_t i = r.bit_length() - 1; i-- > 0;) {
      record(fdbl_step(F, V), false);
      if (r.bit(i)) record(fadd_step(F, V, px, py), true);
    }
    return pre;
  }
  const Bigint& p = params_.p;
  const Bigint px = M.to_mont(P.x);
  const Bigint py = M.to_mont(P.y);
  Jac V{px, py, M.mont_one()};
  const auto record = [&pre](const Line& line, bool add) {
    pre.steps_.push_back(PairingPrecomp::Step{line.c0, line.c1, line.c2, add});
  };
  for (std::size_t i = r.bit_length() - 1; i-- > 0;) {
    record(dbl_step(M, p, V), false);
    if (r.bit(i)) record(add_step(M, p, V, px, py), true);
  }
  return pre;
}

Fp2 PairingEngine::pair(const EcPoint& P, const EcPoint& Q) const {
  PairingCounters& ctr = counters();
  ctr.calls.add();
  static obs::Histogram& obs_lat = obs::histogram("crypto.pairing");
  obs::ScopedTimer obs_timer(obs_lat);
  const Bigint& p = params_.p;
  if (!ec_on_curve(P, p) || !ec_on_curve(Q, p)) {
    throw std::invalid_argument("pairing: point not on curve");
  }
  if (P.infinity || Q.infinity) return fp2_one();
  ctr.miller.add();
  ctr.finalexp.add();

  if (fp_) {
    flat_miller_counter().add();
    const FpCtx& F = *fp_;
    const FpElem px = F.to_mont(P.x);
    const FpElem py = F.to_mont(P.y);
    const FpElem xq = F.to_mont(Q.x);
    const FpElem yq = F.to_mont(Q.y);
    Fp2Elem f{F.one(), F.zero()};
    FJac V{px, py, F.one()};
    const Bigint& r = params_.r;
    for (std::size_t i = r.bit_length() - 1; i-- > 0;) {
      fp2_sqr(F, f, f);
      Fp2Elem v = feval_line(F, fdbl_step(F, V), xq, yq);
      fp2_mul(F, f, f, v);
      if (r.bit(i)) {
        v = feval_line(F, fadd_step(F, V, px, py), xq, yq);
        fp2_mul(F, f, f, v);
      }
    }
    const Fp2Elem e = f_final_exp(F, params_.h, f);
    return Fp2{F.from_mont(e.a), F.from_mont(e.b)};
  }

  const MontgomeryCtx& M = *mont_;
  const Bigint px = M.to_mont(P.x);
  const Bigint py = M.to_mont(P.y);
  const Bigint xq = M.to_mont(Q.x);
  const Bigint yq = M.to_mont(Q.y);
  F2 f = f2_one(M);
  Jac V{px, py, M.mont_one()};
  const Bigint& r = params_.r;
  for (std::size_t i = r.bit_length() - 1; i-- > 0;) {
    f = f2_mul(M, p, f2_sq(M, p, f),
               eval_line(M, p, dbl_step(M, p, V), xq, yq));
    if (r.bit(i)) {
      f = f2_mul(M, p, f, eval_line(M, p, add_step(M, p, V, px, py), xq, yq));
    }
  }
  const F2 e = final_exp(M, p, params_.h, f);
  return Fp2{M.from_mont(e.a), M.from_mont(e.b)};
}

Fp2 PairingEngine::pair(const PairingPrecomp& pre, const EcPoint& Q) const {
  PairingCounters& ctr = counters();
  ctr.calls.add();
  static obs::Histogram& obs_lat = obs::histogram("crypto.pairing");
  obs::ScopedTimer obs_timer(obs_lat);
  if (pre.empty()) {
    throw std::invalid_argument("pairing: precomp table not built");
  }
  const Bigint& p = params_.p;
  if (!ec_on_curve(Q, p)) {
    throw std::invalid_argument("pairing: point not on curve");
  }
  if (pre.point().infinity || Q.infinity) return fp2_one();
  ctr.miller.add();
  ctr.finalexp.add();
  ctr.precomp_hits.add();

  if (fp_ && !pre.flat_coeffs_.empty() && pre.flat_limbs_ == fp_->limbs()) {
    flat_miller_counter().add();
    const FpCtx& F = *fp_;
    const std::size_t n = F.limbs();
    const FpElem xq = F.to_mont(Q.x);
    const FpElem yq = F.to_mont(Q.y);
    Fp2Elem f{F.one(), F.zero()};
    const std::uint64_t* c = pre.flat_coeffs_.data();
    for (const PairingPrecomp::Step& s : pre.steps_) {
      if (!s.add) fp2_sqr(F, f, f);
      const FLine line{fload(c, n), fload(c + n, n), fload(c + 2 * n, n)};
      c += 3 * n;
      const Fp2Elem v = feval_line(F, line, xq, yq);
      fp2_mul(F, f, f, v);
    }
    const Fp2Elem e = f_final_exp(F, params_.h, f);
    return Fp2{F.from_mont(e.a), F.from_mont(e.b)};
  }
  // Oracle replay — also the flat engine's fallback for a table that was
  // compiled by an oracle-mode engine (flat_coeffs_ empty).
  const MontgomeryCtx& M = *mont_;
  const Bigint xq = M.to_mont(Q.x);
  const Bigint yq = M.to_mont(Q.y);
  F2 f = f2_one(M);
  for (const PairingPrecomp::Step& s : pre.steps_) {
    if (!s.add) f = f2_sq(M, p, f);
    f = f2_mul(M, p, f, eval_line(M, p, Line{s.c0, s.c1, s.c2}, xq, yq));
  }
  const F2 e = final_exp(M, p, params_.h, f);
  return Fp2{M.from_mont(e.a), M.from_mont(e.b)};
}

Fp2 PairingEngine::pair_product(const std::vector<PairingTerm>& terms) const {
  PairingCounters& ctr = counters();
  static obs::Histogram& obs_lat = obs::histogram("crypto.pairing.product");
  obs::ScopedTimer obs_timer(obs_lat);
  const Bigint& p = params_.p;
  const MontgomeryCtx& M = *mont_;

  // The flat interleaved loop needs every replayed table to carry flat
  // coefficients of this context's width; a table compiled by an
  // oracle-mode engine sends the whole product down the Bigint path.
  bool use_flat = fp_ != nullptr;
  if (use_flat) {
    for (const PairingTerm& term : terms) {
      if (term.pre != nullptr && !term.pre->empty() &&
          !term.pre->point().infinity &&
          (term.pre->flat_coeffs_.empty() ||
           term.pre->flat_limbs_ != fp_->limbs())) {
        use_flat = false;
        break;
      }
    }
  }
  if (use_flat) {
    const FpCtx& F = *fp_;
    const std::size_t n = F.limbs();
    struct FActive {
      const PairingPrecomp* pre = nullptr;
      std::size_t cursor = 0;  // steps replayed; flat coeffs at cursor·3n
      FJac V{};
      FpElem px, py, xq, yq;
      bool conj = false;
      std::size_t group = 0;
    };
    std::vector<FActive> active;
    std::vector<Fp2Elem> accs{Fp2Elem{F.one(), F.zero()}};
    std::vector<Bigint> group_exps;
    std::map<Bytes, std::size_t> exp_groups;

    for (const PairingTerm& term : terms) {
      ctr.calls.add();
      if (term.pre != nullptr && term.pre->empty()) {
        throw std::invalid_argument("pair_product: precomp table not built");
      }
      const EcPoint& P = term.pre != nullptr ? term.pre->point() : term.P;
      if (term.pre == nullptr && !ec_on_curve(P, p)) {
        throw std::invalid_argument("pair_product: point not on curve");
      }
      if (!ec_on_curve(term.Q, p)) {
        throw std::invalid_argument("pair_product: point not on curve");
      }
      const Bigint e = term.exp.mod(params_.r);
      if (e.is_zero() || P.infinity || term.Q.infinity) continue;  // factor 1

      FActive a;
      a.pre = term.pre;
      a.conj = term.invert;
      a.xq = F.to_mont(term.Q.x);
      a.yq = F.to_mont(term.Q.y);
      if (term.pre == nullptr) {
        a.px = F.to_mont(P.x);
        a.py = F.to_mont(P.y);
        a.V = FJac{a.px, a.py, F.one()};
      } else {
        ctr.precomp_hits.add();
      }
      if (e.is_one()) {
        a.group = 0;
      } else {
        const auto [it, fresh] =
            exp_groups.try_emplace(e.to_bytes_be(), accs.size());
        if (fresh) {
          accs.push_back(Fp2Elem{F.one(), F.zero()});
          group_exps.push_back(e);
        }
        a.group = it->second;
      }
      ctr.miller.add();
      active.push_back(a);
    }

    if (active.empty()) return fp2_one();
    flat_miller_counter().add(active.size());

    // The whole loop runs through one Fp2Batch so every independent
    // Montgomery product in a phase fills SIMD lanes: the |accs| shared
    // squarings and the 2·|active| line evaluations of a bit go out as one
    // batch, and the per-group absorb products fold as balanced trees
    // batched across groups level by level. Products of reduced operands
    // are canonical, so reassociating the per-group factor chains changes
    // nothing bit-wise (see Fp2Batch).
    Fp2Batch batch(F);
    batch.reserve(active.size() + accs.size(), accs.size(),
                  2 * active.size());
    std::vector<FLine> lines(active.size());
    std::vector<FpElem> tline(active.size());
    std::vector<Fp2Elem> vline(active.size());
    std::vector<Fp2Elem> foldbuf;
    foldbuf.reserve(active.size() + accs.size());
    std::vector<std::vector<const Fp2Elem*>> gitems(accs.size());

    const auto next_recorded = [&](FActive& a) {
      const std::uint64_t* c = a.pre->flat_coeffs_.data() + a.cursor * 3 * n;
      ++a.cursor;
      return FLine{fload(c, n), fload(c + n, n), fload(c + 2 * n, n)};
    };
    // Evaluate every active's current line at φ(Q) in one flush (plus any
    // fp2 ops already queued by the caller), leaving v_i in vline[i].
    const auto eval_lines = [&]() {
      for (std::size_t i = 0; i < active.size(); ++i) {
        batch.fmul(tline[i], lines[i].c1, active[i].xq);
        batch.fmul(vline[i].b, lines[i].c2, active[i].yq);
      }
      batch.flush();
      for (std::size_t i = 0; i < active.size(); ++i) {
        F.add(vline[i].a, lines[i].c0, tline[i]);
        if (active[i].conj) F.neg(vline[i].b, vline[i].b);
      }
    };
    // accs[g] *= Π v_i over the group's actives, as per-group balanced
    // trees with each tree level batched across all groups.
    const auto fold_groups = [&]() {
      foldbuf.clear();
      for (std::size_t g = 0; g < gitems.size(); ++g) {
        gitems[g].clear();
        gitems[g].push_back(&accs[g]);
      }
      for (std::size_t i = 0; i < active.size(); ++i) {
        gitems[active[i].group].push_back(&vline[i]);
      }
      bool more = true;
      while (more) {
        more = false;
        for (auto& items : gitems) {
          if (items.size() < 2) continue;
          std::size_t out = 0;
          std::size_t i = 0;
          for (; i + 1 < items.size(); i += 2) {
            Fp2Elem& dst = foldbuf.emplace_back();
            batch.mul(dst, *items[i], *items[i + 1]);
            items[out++] = &dst;
          }
          if (i < items.size()) items[out++] = items[i];
          items.resize(out);
          if (out > 1) more = true;
        }
        batch.flush();
      }
      for (std::size_t g = 0; g < gitems.size(); ++g) {
        if (gitems[g][0] != &accs[g]) accs[g] = *gitems[g][0];
      }
    };

    const Bigint& r = params_.r;
    for (std::size_t i = r.bit_length() - 1; i-- > 0;) {
      for (Fp2Elem& acc : accs) batch.sqr(acc, acc);
      for (std::size_t j = 0; j < active.size(); ++j) {
        FActive& a = active[j];
        lines[j] = a.pre != nullptr ? next_recorded(a) : fdbl_step(F, a.V);
      }
      eval_lines();  // flushes the squarings alongside the line products
      fold_groups();
      if (r.bit(i)) {
        for (std::size_t j = 0; j < active.size(); ++j) {
          FActive& a = active[j];
          lines[j] = a.pre != nullptr ? next_recorded(a)
                                      : fadd_step(F, a.V, a.px, a.py);
        }
        eval_lines();
        fold_groups();
      }
    }

    // Group-exponent ladders, lockstep across groups: starting every
    // ladder at one and walking down from the longest exponent is exactly
    // fp2_pow's schedule (leading squarings of one are exact), so each
    // pw[g] is bit-identical to a sequential fp2_pow.
    Fp2Elem total = accs[0];
    if (!group_exps.empty()) {
      std::size_t maxb = 0;
      for (const Bigint& e : group_exps) {
        maxb = std::max(maxb, e.bit_length());
      }
      std::vector<Fp2Elem> pw(group_exps.size(), Fp2Elem{F.one(), F.zero()});
      for (std::size_t i = maxb; i-- > 0;) {
        for (Fp2Elem& w : pw) batch.sqr(w, w);
        batch.flush();
        for (std::size_t g = 0; g < pw.size(); ++g) {
          if (group_exps[g].bit(i)) batch.mul(pw[g], pw[g], accs[g + 1]);
        }
        batch.flush();
      }
      // total = accs[0]·Π pw[g], one balanced batched tree.
      std::vector<const Fp2Elem*> items;
      items.reserve(pw.size() + 1);
      items.push_back(&total);
      for (const Fp2Elem& w : pw) items.push_back(&w);
      foldbuf.clear();
      while (items.size() > 1) {
        std::size_t out = 0;
        std::size_t i = 0;
        for (; i + 1 < items.size(); i += 2) {
          Fp2Elem& dst = foldbuf.emplace_back();
          batch.mul(dst, *items[i], *items[i + 1]);
          items[out++] = &dst;
        }
        if (i < items.size()) items[out++] = items[i];
        items.resize(out);
        batch.flush();
      }
      if (items[0] != &total) total = *items[0];
    }
    ctr.finalexp.add();
    const Fp2Elem e = f_final_exp(F, params_.h, total);
    return Fp2{F.from_mont(e.a), F.from_mont(e.b)};
  }

  // In-flight state of one non-trivial factor: its line source (table
  // cursor or live Jacobian loop), the Montgomery form of φ(Q)'s
  // coordinates, and which accumulator it feeds.
  struct Active {
    const PairingPrecomp* pre = nullptr;
    std::size_t cursor = 0;
    Jac V{Bigint(0), Bigint(0), Bigint(0)};
    Bigint px, py;
    Bigint xq, yq;
    bool conj = false;
    std::size_t group = 0;
  };
  // Accumulator 0 collects unit-exponent factors; each distinct non-unit
  // exponent e gets its own accumulator, raised to e after the loop.
  // Factors sharing an exponent (the batch-verify shape, where one δ_j
  // covers a whole verification equation) share squarings too.
  std::vector<Active> active;
  std::vector<F2> accs{f2_one(M)};
  std::vector<Bigint> group_exps;  // exponent of accs[g] for g >= 1
  std::map<Bytes, std::size_t> exp_groups;

  for (const PairingTerm& term : terms) {
    ctr.calls.add();
    if (term.pre != nullptr && term.pre->empty()) {
      throw std::invalid_argument("pair_product: precomp table not built");
    }
    const EcPoint& P = term.pre != nullptr ? term.pre->point() : term.P;
    if (term.pre == nullptr && !ec_on_curve(P, p)) {
      throw std::invalid_argument("pair_product: point not on curve");
    }
    if (!ec_on_curve(term.Q, p)) {
      throw std::invalid_argument("pair_product: point not on curve");
    }
    const Bigint e = term.exp.mod(params_.r);
    if (e.is_zero() || P.infinity || term.Q.infinity) continue;  // factor 1

    Active a;
    a.pre = term.pre;
    a.conj = term.invert;
    a.xq = M.to_mont(term.Q.x);
    a.yq = M.to_mont(term.Q.y);
    if (term.pre == nullptr) {
      a.px = M.to_mont(P.x);
      a.py = M.to_mont(P.y);
      a.V = Jac{a.px, a.py, M.mont_one()};
    } else {
      ctr.precomp_hits.add();
    }
    if (e.is_one()) {
      a.group = 0;
    } else {
      const auto [it, fresh] = exp_groups.try_emplace(e.to_bytes_be(),
                                                      accs.size());
      if (fresh) {
        accs.push_back(f2_one(M));
        group_exps.push_back(e);
      }
      a.group = it->second;
    }
    ctr.miller.add();
    active.push_back(std::move(a));
  }

  if (active.empty()) return fp2_one();

  // Interleaved Miller loops: one pass over the bits of r drives every
  // factor; accumulators square once per bit regardless of how many
  // factors feed them. An inverted factor conjugates its line values —
  // conjugation is a field automorphism, so the accumulated value is the
  // conjugate of that factor's Miller value, and FE(conj(f)) = FE(f)^{-1}.
  const auto absorb = [&](Active& a, const Line& line) {
    F2 v = eval_line(M, p, line, a.xq, a.yq);
    if (a.conj) v.b = fp_neg(v.b, p);
    accs[a.group] = f2_mul(M, p, accs[a.group], v);
  };
  const auto next_recorded = [](Active& a) {
    const PairingPrecomp::Step& s = a.pre->steps_[a.cursor++];
    return Line{s.c0, s.c1, s.c2};
  };
  const Bigint& r = params_.r;
  for (std::size_t i = r.bit_length() - 1; i-- > 0;) {
    for (F2& acc : accs) acc = f2_sq(M, p, acc);
    for (Active& a : active) {
      absorb(a, a.pre != nullptr ? next_recorded(a) : dbl_step(M, p, a.V));
    }
    if (r.bit(i)) {
      for (Active& a : active) {
        absorb(a, a.pre != nullptr ? next_recorded(a)
                                   : add_step(M, p, a.V, a.px, a.py));
      }
    }
  }

  F2 total = accs[0];
  for (std::size_t g = 1; g < accs.size(); ++g) {
    total = f2_mul(M, p, total, f2_pow(M, p, accs[g], group_exps[g - 1]));
  }
  ctr.finalexp.add();
  const F2 e = final_exp(M, p, params_.h, total);
  return Fp2{M.from_mont(e.a), M.from_mont(e.b)};
}

Fp2 PairingEngine::gt_pow(const Fp2& x, const Bigint& e) const {
  if (e.is_negative()) {
    throw std::invalid_argument("PairingEngine::gt_pow: negative exponent");
  }
  if (fp_) {
    const FpCtx& F = *fp_;
    const Fp2Elem xm{F.to_mont(x.a), F.to_mont(x.b)};
    Fp2Elem v;
    fp2_pow(F, v, xm, e);
    return Fp2{F.from_mont(v.a), F.from_mont(v.b)};
  }
  const MontgomeryCtx& M = *mont_;
  const F2 xm{M.to_mont(x.a), M.to_mont(x.b)};
  const F2 v = f2_pow(M, params_.p, xm, e);
  return Fp2{M.from_mont(v.a), M.from_mont(v.b)};
}

Fp2 PairingEngine::gt_pow2(const Fp2& x1, const Bigint& e1, const Fp2& x2,
                           const Bigint& e2) const {
  if (e1.is_negative() || e2.is_negative()) {
    throw std::invalid_argument("PairingEngine::gt_pow2: negative exponent");
  }
  if (fp_) {
    const FpCtx& F = *fp_;
    const Fp2Elem a{F.to_mont(x1.a), F.to_mont(x1.b)};
    const Fp2Elem b{F.to_mont(x2.a), F.to_mont(x2.b)};
    Fp2Elem ab;
    fp2_mul(F, ab, a, b);
    Fp2Elem acc{F.one(), F.zero()};
    const std::size_t bits = std::max(e1.bit_length(), e2.bit_length());
    for (std::size_t i = bits; i-- > 0;) {
      fp2_sqr(F, acc, acc);
      const bool ba = e1.bit(i);
      const bool bb = e2.bit(i);
      if (ba && bb) {
        fp2_mul(F, acc, acc, ab);
      } else if (ba) {
        fp2_mul(F, acc, acc, a);
      } else if (bb) {
        fp2_mul(F, acc, acc, b);
      }
    }
    return Fp2{F.from_mont(acc.a), F.from_mont(acc.b)};
  }
  const MontgomeryCtx& M = *mont_;
  const Bigint& p = params_.p;
  const F2 a{M.to_mont(x1.a), M.to_mont(x1.b)};
  const F2 b{M.to_mont(x2.a), M.to_mont(x2.b)};
  const F2 ab = f2_mul(M, p, a, b);
  F2 acc = f2_one(M);
  const std::size_t bits = std::max(e1.bit_length(), e2.bit_length());
  for (std::size_t i = bits; i-- > 0;) {
    acc = f2_sq(M, p, acc);
    const bool ba = e1.bit(i);
    const bool bb = e2.bit(i);
    if (ba && bb) {
      acc = f2_mul(M, p, acc, ab);
    } else if (ba) {
      acc = f2_mul(M, p, acc, a);
    } else if (bb) {
      acc = f2_mul(M, p, acc, b);
    }
  }
  return Fp2{M.from_mont(acc.a), M.from_mont(acc.b)};
}

}  // namespace ppms
