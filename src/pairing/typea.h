// Type-A pairing parameters (the construction behind jPBC's TypeA curves,
// which the paper's implementation used).
//
// p = r·h - 1 with p ≡ 3 (mod 4) prime and r prime: the curve
// y² = x³ + x over F_p is supersingular with #E(F_p) = p + 1 = r·h, so the
// order-r subgroup G = <g> admits a symmetric pairing ê: G × G → GT ⊂ F_p²
// via the Tate pairing composed with the distortion map (x,y) → (-x, iy).
#pragma once

#include "pairing/curve.h"
#include "pairing/fp2.h"

namespace ppms {

struct TypeAParams {
  Bigint p;   ///< field prime, p ≡ 3 (mod 4)
  Bigint r;   ///< prime group order, r | p + 1
  Bigint h;   ///< cofactor, p + 1 = r·h, 4 | h
  EcPoint g;  ///< generator of the order-r subgroup

  /// Canonical serialization for publishing in market setup messages.
  Bytes serialize() const;
  static TypeAParams deserialize(const Bytes& data);
};

/// Generate fresh parameters with an `rbits`-bit group order inside a
/// field of roughly `pbits` bits (pbits > rbits + 3).
TypeAParams typea_generate(SecureRandom& rng, std::size_t rbits,
                           std::size_t pbits);

/// Generate parameters for a *prescribed* prime group order r (used by the
/// DEC setup, where r must equal the first Cunningham-chain prime so that
/// wallet secrets live in the same exponent group as coin serials).
TypeAParams typea_generate_for_order(SecureRandom& rng, const Bigint& r,
                                     std::size_t pbits);

/// Uniform point in the order-r subgroup (cofactor-multiplied); never
/// infinity.
EcPoint typea_random_subgroup_point(const TypeAParams& params,
                                    SecureRandom& rng);

}  // namespace ppms
