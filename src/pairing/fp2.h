// Quadratic extension field F_p² = F_p[i] / (i² + 1), valid when
// p ≡ 3 (mod 4) so that -1 is a non-residue.
//
// This is the target field of the Type-A Tate pairing: GT is the order-r
// subgroup of F_p²*. Elements are (a + b·i) with a, b in [0, p).
#pragma once

#include "pairing/fp.h"
#include "util/bytes.h"

namespace ppms {

struct Fp2 {
  Bigint a;  ///< real part
  Bigint b;  ///< coefficient of i

  friend bool operator==(const Fp2&, const Fp2&) = default;
};

/// 1 + 0i.
Fp2 fp2_one();

/// True iff x == 1 + 0i.
bool fp2_is_one(const Fp2& x);

Fp2 fp2_add(const Fp2& x, const Fp2& y, const Bigint& p);
Fp2 fp2_sub(const Fp2& x, const Fp2& y, const Bigint& p);

/// (a+bi)(c+di) = (ac - bd) + (ad + bc)i.
Fp2 fp2_mul(const Fp2& x, const Fp2& y, const Bigint& p);

Fp2 fp2_square(const Fp2& x, const Bigint& p);

/// Inverse via the norm: (a+bi)^{-1} = (a - bi) / (a² + b²). Throws
/// std::domain_error on zero.
Fp2 fp2_inv(const Fp2& x, const Bigint& p);

/// x^e for e >= 0 (square-and-multiply).
Fp2 fp2_pow(const Fp2& x, const Bigint& e, const Bigint& p);

/// Conjugate a - bi; equals x^p (the Frobenius) in this representation,
/// which is what makes the final exponentiation cheap.
Fp2 fp2_conj(const Fp2& x, const Bigint& p);

/// Canonical serialization (fixed-width a || b), for Fiat-Shamir
/// transcripts and wire messages.
Bytes fp2_serialize(const Fp2& x, const Bigint& p);
Fp2 fp2_deserialize(const Bytes& data, const Bigint& p);

}  // namespace ppms
