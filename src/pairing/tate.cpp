#include "pairing/tate.h"

#include <stdexcept>

namespace ppms {

namespace {

// Evaluate the line through A and B (tangent when A == B) at the distorted
// point φ(Q) = (-xq, i·yq). Vertical lines return 1 (denominator
// elimination: their value lies in F_p and dies in the final
// exponentiation).
Fp2 line_at_phi_q(const EcPoint& A, const EcPoint& B, const Bigint& xq,
                  const Bigint& yq, const Bigint& p) {
  if (A.infinity || B.infinity) return fp2_one();
  Bigint lambda;
  if (A.x == B.x) {
    if (fp_add(A.y, B.y, p).is_zero()) return fp2_one();  // vertical
    // Tangent slope (3x² + 1) / 2y.
    const Bigint x2 = fp_mul(A.x, A.x, p);
    const Bigint num =
        fp_add(fp_add(fp_add(x2, x2, p), x2, p), Bigint(1), p);
    lambda = fp_mul(num, fp_inv(fp_add(A.y, A.y, p), p), p);
  } else {
    lambda = fp_mul(fp_sub(B.y, A.y, p), fp_inv(fp_sub(B.x, A.x, p), p), p);
  }
  // l(φQ) = i·yq - yA - λ(-xq - xA) = [λ(xq + xA) - yA] + yq·i.
  const Bigint real = fp_sub(fp_mul(lambda, fp_add(xq, A.x, p), p), A.y, p);
  return Fp2{real, yq};
}

}  // namespace

Fp2 tate_pairing(const TypeAParams& params, const EcPoint& P,
                 const EcPoint& Q) {
  const Bigint& p = params.p;
  if (!ec_on_curve(P, p) || !ec_on_curve(Q, p)) {
    throw std::invalid_argument("tate_pairing: point not on curve");
  }
  if (P.infinity || Q.infinity) return fp2_one();

  // Miller loop computing f_{r,P} evaluated at φ(Q).
  Fp2 f = fp2_one();
  EcPoint V = P;
  const Bigint& r = params.r;
  for (std::size_t i = r.bit_length() - 1; i-- > 0;) {
    f = fp2_mul(fp2_square(f, p), line_at_phi_q(V, V, Q.x, Q.y, p), p);
    V = ec_add(V, V, p);
    if (r.bit(i)) {
      f = fp2_mul(f, line_at_phi_q(V, P, Q.x, Q.y, p), p);
      V = ec_add(V, P, p);
    }
  }

  // Final exponentiation: f^(p²-1)/r = (f^(p-1))^h with f^(p-1) =
  // conj(f)·f^{-1} (Frobenius is conjugation in F_p[i]).
  const Fp2 fp_minus_1 = fp2_mul(fp2_conj(f, p), fp2_inv(f, p), p);
  return fp2_pow(fp_minus_1, params.h, p);
}

}  // namespace ppms
