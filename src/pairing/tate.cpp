#include "pairing/tate.h"

#include <stdexcept>

#include "obs/metrics.h"

namespace ppms {

namespace {

// Evaluate the line through A and B (tangent when A == B) at the distorted
// point φ(Q) = (-xq, i·yq). Vertical lines return 1 (denominator
// elimination: their value lies in F_p and dies in the final
// exponentiation).
Fp2 line_at_phi_q(const EcPoint& A, const EcPoint& B, const Bigint& xq,
                  const Bigint& yq, const Bigint& p) {
  if (A.infinity || B.infinity) return fp2_one();
  Bigint lambda;
  if (A.x == B.x) {
    if (fp_add(A.y, B.y, p).is_zero()) return fp2_one();  // vertical
    // Tangent slope (3x² + 1) / 2y.
    const Bigint x2 = fp_mul(A.x, A.x, p);
    const Bigint num =
        fp_add(fp_add(fp_add(x2, x2, p), x2, p), Bigint(1), p);
    lambda = fp_mul(num, fp_inv(fp_add(A.y, A.y, p), p), p);
  } else {
    lambda = fp_mul(fp_sub(B.y, A.y, p), fp_inv(fp_sub(B.x, A.x, p), p), p);
  }
  // l(φQ) = i·yq - yA - λ(-xq - xA) = [λ(xq + xA) - yA] + yq·i.
  const Bigint real = fp_sub(fp_mul(lambda, fp_add(xq, A.x, p), p), A.y, p);
  return Fp2{real, yq};
}

// Jacobian point (X : Y : Z) with affine x = X/Z², y = Y/Z³; Z = 0 is the
// point at infinity. Only the Miller loop uses this representation, so it
// stays local to this translation unit.
struct JacPoint {
  Bigint X, Y, Z;
  bool at_infinity() const { return Z.is_zero(); }
};

// Double V in place and return the tangent line at (the old) V evaluated
// at φ(Q), scaled by Z₃·Z² ∈ F_p* — a factor the final exponentiation's
// (p-1) part annihilates, which is what buys the inversion-free step.
// Curve is y² = x³ + x (a = 1, b = 0).
Fp2 dbl_step(JacPoint& V, const Bigint& xq, const Bigint& yq,
             const Bigint& p) {
  if (V.at_infinity()) return fp2_one();
  if (V.Y.is_zero()) {  // order-2 point: vertical tangent
    V = JacPoint{Bigint(1), Bigint(1), Bigint(0)};
    return fp2_one();
  }
  const Bigint T = fp_mul(V.Z, V.Z, p);                  // Z²
  const Bigint A = fp_mul(V.X, V.X, p);                  // X²
  const Bigint B = fp_mul(V.Y, V.Y, p);                  // Y²
  const Bigint C = fp_mul(B, B, p);                      // Y⁴
  // D = 2((X+B)² - A - C) = 4XY²
  const Bigint xb = fp_add(V.X, B, p);
  Bigint D = fp_sub(fp_sub(fp_mul(xb, xb, p), A, p), C, p);
  D = fp_add(D, D, p);
  // E = 3X² + Z⁴ (the a = 1 term contributes Z⁴)
  const Bigint E =
      fp_add(fp_add(fp_add(A, A, p), A, p), fp_mul(T, T, p), p);
  const Bigint X3 = fp_sub(fp_mul(E, E, p), fp_add(D, D, p), p);
  Bigint c8 = fp_add(C, C, p);
  c8 = fp_add(c8, c8, p);
  c8 = fp_add(c8, c8, p);
  const Bigint Y3 = fp_sub(fp_mul(E, fp_sub(D, X3, p), p), c8, p);
  const Bigint yz = fp_mul(V.Y, V.Z, p);
  const Bigint Z3 = fp_add(yz, yz, p);
  // λ = E/Z₃, evaluated at the old V = (X/T, Y/Z³). Scaling the line by
  // Z₃·T clears every denominator:
  //   real = E·(X + xq·T) - 2Y²,  imag = yq·Z₃·T.
  const Bigint real =
      fp_sub(fp_mul(E, fp_add(V.X, fp_mul(xq, T, p), p), p),
             fp_add(B, B, p), p);
  const Bigint imag = fp_mul(yq, fp_mul(Z3, T, p), p);
  V = JacPoint{X3, Y3, Z3};
  return Fp2{real, imag};
}

// Mixed addition V += P (P affine, never infinity) returning the line
// through V and P at φ(Q), scaled by Z₃ ∈ F_p*.
Fp2 add_step(JacPoint& V, const EcPoint& P, const Bigint& xq,
             const Bigint& yq, const Bigint& p) {
  if (V.at_infinity()) {
    V = JacPoint{P.x, P.y, Bigint(1)};
    return fp2_one();
  }
  const Bigint T = fp_mul(V.Z, V.Z, p);          // Z²
  const Bigint U2 = fp_mul(P.x, T, p);           // xp·Z²
  const Bigint S2 = fp_mul(P.y, fp_mul(T, V.Z, p), p);  // yp·Z³
  const Bigint H = fp_sub(U2, V.X, p);
  const Bigint R = fp_sub(S2, V.Y, p);
  if (H.is_zero()) {
    if (R.is_zero()) return dbl_step(V, xq, yq, p);  // V == P: tangent
    // V == -P: vertical line, sum is the point at infinity.
    V = JacPoint{Bigint(1), Bigint(1), Bigint(0)};
    return fp2_one();
  }
  const Bigint H2 = fp_mul(H, H, p);
  const Bigint H3 = fp_mul(H, H2, p);
  const Bigint XH2 = fp_mul(V.X, H2, p);
  const Bigint X3 =
      fp_sub(fp_sub(fp_mul(R, R, p), H3, p), fp_add(XH2, XH2, p), p);
  const Bigint Y3 =
      fp_sub(fp_mul(R, fp_sub(XH2, X3, p), p), fp_mul(V.Y, H3, p), p);
  const Bigint Z3 = fp_mul(V.Z, H, p);
  // λ = R/Z₃ anchored at the affine P; scaling by Z₃ gives
  //   real = R·(xq + xp) - yp·Z₃,  imag = yq·Z₃.
  const Bigint real =
      fp_sub(fp_mul(R, fp_add(xq, P.x, p), p), fp_mul(P.y, Z3, p), p);
  const Bigint imag = fp_mul(yq, Z3, p);
  V = JacPoint{X3, Y3, Z3};
  return Fp2{real, imag};
}

// f^{(p²-1)/r} = (conj(f)·f^{-1})^h — Frobenius is conjugation in F_p[i].
// This is the pairing's only field inversion.
Fp2 final_exponentiation(const TypeAParams& params, const Fp2& f) {
  const Bigint& p = params.p;
  const Fp2 fp_minus_1 = fp2_mul(fp2_conj(f, p), fp2_inv(f, p), p);
  return fp2_pow(fp_minus_1, params.h, p);
}

}  // namespace

Fp2 tate_pairing(const TypeAParams& params, const EcPoint& P,
                 const EcPoint& Q) {
  static obs::Counter& obs_calls = obs::counter("crypto.pairing.calls");
  obs_calls.add();
  static obs::Histogram& obs_lat = obs::histogram("crypto.pairing");
  obs::ScopedTimer obs_timer(obs_lat);
  const Bigint& p = params.p;
  if (!ec_on_curve(P, p) || !ec_on_curve(Q, p)) {
    throw std::invalid_argument("tate_pairing: point not on curve");
  }
  if (P.infinity || Q.infinity) return fp2_one();
  static obs::Counter& obs_miller = obs::counter("crypto.pairing.miller");
  obs_miller.add();
  static obs::Counter& obs_fe = obs::counter("crypto.pairing.finalexp");
  obs_fe.add();

  // Miller loop computing f_{r,P}(φ(Q)) in Jacobian coordinates. Each
  // step's line value is off by a factor in F_p*, which accumulates into
  // f as some s ∈ F_p*; the final exponentiation maps f·s and f to the
  // same GT element (conj(s)·s^{-1} = 1), so the result is bit-identical
  // to the affine loop's — with zero inversions per step.
  Fp2 f = fp2_one();
  JacPoint V{P.x, P.y, Bigint(1)};
  const Bigint& r = params.r;
  for (std::size_t i = r.bit_length() - 1; i-- > 0;) {
    f = fp2_mul(fp2_square(f, p), dbl_step(V, Q.x, Q.y, p), p);
    if (r.bit(i)) {
      f = fp2_mul(f, add_step(V, P, Q.x, Q.y, p), p);
    }
  }
  return final_exponentiation(params, f);
}

Fp2 tate_pairing_affine(const TypeAParams& params, const EcPoint& P,
                        const EcPoint& Q) {
  const Bigint& p = params.p;
  if (!ec_on_curve(P, p) || !ec_on_curve(Q, p)) {
    throw std::invalid_argument("tate_pairing: point not on curve");
  }
  if (P.infinity || Q.infinity) return fp2_one();

  Fp2 f = fp2_one();
  EcPoint V = P;
  const Bigint& r = params.r;
  for (std::size_t i = r.bit_length() - 1; i-- > 0;) {
    f = fp2_mul(fp2_square(f, p), line_at_phi_q(V, V, Q.x, Q.y, p), p);
    V = ec_add(V, V, p);
    if (r.bit(i)) {
      f = fp2_mul(f, line_at_phi_q(V, P, Q.x, Q.y, p), p);
      V = ec_add(V, P, p);
    }
  }
  return final_exponentiation(params, f);
}

}  // namespace ppms
