#include "pairing/fp2.h"

#include <stdexcept>

namespace ppms {

Fp2 fp2_one() { return Fp2{Bigint(1), Bigint(0)}; }

bool fp2_is_one(const Fp2& x) { return x.a.is_one() && x.b.is_zero(); }

Fp2 fp2_add(const Fp2& x, const Fp2& y, const Bigint& p) {
  return {fp_add(x.a, y.a, p), fp_add(x.b, y.b, p)};
}

Fp2 fp2_sub(const Fp2& x, const Fp2& y, const Bigint& p) {
  return {fp_sub(x.a, y.a, p), fp_sub(x.b, y.b, p)};
}

Fp2 fp2_mul(const Fp2& x, const Fp2& y, const Bigint& p) {
  // Karatsuba-style: 3 base-field multiplications.
  const Bigint ac = fp_mul(x.a, y.a, p);
  const Bigint bd = fp_mul(x.b, y.b, p);
  const Bigint cross =
      fp_mul(fp_add(x.a, x.b, p), fp_add(y.a, y.b, p), p);
  return {fp_sub(ac, bd, p), fp_sub(fp_sub(cross, ac, p), bd, p)};
}

Fp2 fp2_square(const Fp2& x, const Bigint& p) {
  // (a+bi)² = (a+b)(a-b) + 2ab·i.
  const Bigint t1 = fp_mul(fp_add(x.a, x.b, p), fp_sub(x.a, x.b, p), p);
  const Bigint t2 = fp_mul(x.a, x.b, p);
  return {t1, fp_add(t2, t2, p)};
}

Fp2 fp2_inv(const Fp2& x, const Bigint& p) {
  const Bigint norm =
      fp_add(fp_mul(x.a, x.a, p), fp_mul(x.b, x.b, p), p);
  if (norm.is_zero()) throw std::domain_error("fp2_inv: zero element");
  const Bigint ninv = fp_inv(norm, p);
  return {fp_mul(x.a, ninv, p), fp_mul(fp_neg(x.b, p), ninv, p)};
}

Fp2 fp2_pow(const Fp2& x, const Bigint& e, const Bigint& p) {
  if (e.is_negative()) {
    return fp2_pow(fp2_inv(x, p), -e, p);
  }
  Fp2 result = fp2_one();
  for (std::size_t i = e.bit_length(); i-- > 0;) {
    result = fp2_square(result, p);
    if (e.bit(i)) result = fp2_mul(result, x, p);
  }
  return result;
}

Fp2 fp2_conj(const Fp2& x, const Bigint& p) {
  return {x.a, fp_neg(x.b, p)};
}

Bytes fp2_serialize(const Fp2& x, const Bigint& p) {
  const std::size_t width = (p.bit_length() + 7) / 8;
  return concat(x.a.to_bytes_be(width), x.b.to_bytes_be(width));
}

Fp2 fp2_deserialize(const Bytes& data, const Bigint& p) {
  const std::size_t width = (p.bit_length() + 7) / 8;
  if (data.size() != 2 * width) {
    throw std::invalid_argument("fp2_deserialize: wrong length");
  }
  Fp2 out;
  out.a = Bigint::from_bytes_be(
      Bytes(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(width)));
  out.b = Bigint::from_bytes_be(
      Bytes(data.begin() + static_cast<std::ptrdiff_t>(width), data.end()));
  if (out.a >= p || out.b >= p) {
    throw std::invalid_argument("fp2_deserialize: coordinate >= p");
  }
  return out;
}

}  // namespace ppms
