#include "pairing/fp.h"

#include <atomic>
#include <stdexcept>

#include "bigint/modarith.h"

namespace ppms {

namespace {
std::atomic<std::uint64_t> g_fp_inv_calls{0};
}  // namespace

std::uint64_t fp_inv_calls() {
  return g_fp_inv_calls.load(std::memory_order_relaxed);
}

Bigint fp_add(const Bigint& a, const Bigint& b, const Bigint& p) {
  Bigint r = a + b;
  if (r >= p) r -= p;
  return r;
}

Bigint fp_sub(const Bigint& a, const Bigint& b, const Bigint& p) {
  Bigint r = a - b;
  if (r.is_negative()) r += p;
  return r;
}

Bigint fp_mul(const Bigint& a, const Bigint& b, const Bigint& p) {
  return (a * b).mod(p);
}

Bigint fp_inv(const Bigint& a, const Bigint& p) {
  g_fp_inv_calls.fetch_add(1, std::memory_order_relaxed);
  return modinv(a, p);
}

Bigint fp_neg(const Bigint& a, const Bigint& p) {
  if (a.is_zero()) return a;
  return p - a;
}

bool fp_is_square(const Bigint& a, const Bigint& p) {
  if (a.is_zero()) return true;
  return jacobi(a, p) == 1;
}

std::optional<Bigint> fp_sqrt(const Bigint& a, const Bigint& p) {
  if ((p % Bigint(4)).to_u64() != 3) {
    throw std::invalid_argument("fp_sqrt: requires p == 3 mod 4");
  }
  if (a.is_zero()) return Bigint(0);
  const Bigint r = modexp(a, (p + Bigint(1)) / Bigint(4), p);
  if (fp_mul(r, r, p) != a.mod(p)) return std::nullopt;
  return r;
}

}  // namespace ppms
