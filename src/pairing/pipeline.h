// Pairing pipeline: fixed-argument Miller precomputation, products of
// pairings, and a session-lifetime Montgomery-domain engine.
//
// The protocol's pairing equations all have the shape
//     ê(P_1,Q_1)^{e_1} · ê(P_2,Q_2)^{e_2} · ... == 1  (or == some GT value)
// where the first arguments are a handful of per-market constants (the
// curve generator g, the bank's CL key points X and Y — the pairing is
// symmetric, so every equation can be oriented constant-first). Three
// observations make this much cheaper than independent `tate_pairing`
// calls:
//
//  * the Miller loop's line coefficients depend only on the first point
//    and the bits of r, so a fixed P can be "compiled" once into a
//    `PairingPrecomp` table and each later pairing replays it with two
//    field products per step instead of a full Jacobian double/add;
//  * the final exponentiation f ↦ f^{(p²-1)/r} is multiplicative, so a
//    product of k pairings needs only one of them (`pair_product`
//    combines the Miller values first); an inverted factor costs nothing
//    extra because FE(conj(f)) = FE(f)^{-1};
//  * every F_p product can run in the Montgomery domain of the shared
//    per-modulus context (bigint/montgomery.h), entering once per pairing
//    and leaving once at the end.
//
// All of this is exact, not approximate: each fast path produces results
// bit-identical to the `tate_pairing_affine` oracle (see
// tests/pairing/pipeline_test.cpp for the differential suite).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "pairing/typea.h"

namespace ppms {

class FpCtx;
class MontgomeryCtx;
class PairingEngine;

/// Compiled Miller line table for a fixed first pairing argument. Immutable
/// after construction (safe to share across threads); build one via
/// `PairingEngine::precompute` for each per-market constant point.
class PairingPrecomp {
 public:
  PairingPrecomp() = default;

  /// The fixed point this table was compiled for.
  const EcPoint& point() const { return point_; }

  /// True until `PairingEngine::precompute` has filled the table.
  bool empty() const { return !built_; }

 private:
  friend class PairingEngine;

  // One Miller-loop event. Coefficients are stored in Montgomery form;
  // the line value at φ(Q) = (-xq, i·yq) is (c0 + c1·xq) + (c2·yq)·i.
  // Doubling events fold a squaring of the accumulator, addition events
  // do not (this mirrors the loop structure bit for bit, including the
  // degenerate vertical/infinity events, which encode the constant 1 as
  // (1, 0, 0)).
  struct Step {
    Bigint c0, c1, c2;
    bool add = false;
  };

  EcPoint point_;
  std::vector<Step> steps_;
  // Flat-limb mirror of steps_ (same step order, c0‖c1‖c2 per step,
  // flat_limbs_ 64-bit limbs per coefficient, Montgomery form of the flat
  // context). Filled only when the table was compiled by a flat-mode
  // engine; steps_ is always filled, so a table built in either mode can
  // be replayed by an engine in either mode.
  std::vector<std::uint64_t> flat_coeffs_;
  std::size_t flat_limbs_ = 0;
  bool built_ = false;
};

/// One factor ê(P, Q)^{±exp} of a product of pairings. Set `pre` to use a
/// fixed-argument table (P is then ignored); otherwise P is used directly.
/// `exp` is reduced modulo r; `invert` contributes the factor's inverse
/// (computed by conjugation, which is exact for GT elements).
struct PairingTerm {
  const PairingPrecomp* pre = nullptr;
  EcPoint P = EcPoint::at_infinity();
  EcPoint Q = EcPoint::at_infinity();
  Bigint exp = Bigint(1);
  bool invert = false;
};

/// Session-lifetime pairing engine for one set of Type-A parameters.
/// Construction is cheap (the Montgomery context is shared per modulus),
/// but callers that hold one across calls also amortize the precomp
/// tables they build. All methods are const and thread-safe.
class PairingEngine {
 public:
  explicit PairingEngine(TypeAParams params);

  const TypeAParams& params() const { return params_; }

  /// True when this engine runs its Miller loops and GT arithmetic on the
  /// flat-limb kernels (bigint/limbs.h). Captured at construction from the
  /// PPMS_FLAT_LIMBS switch; either mode is bit-identical to the other and
  /// to the tate_pairing_affine oracle.
  bool flat() const { return fp_ != nullptr; }

  /// Compile the Miller line table for fixed first argument P. Validates
  /// P on-curve once (std::invalid_argument otherwise); the table costs
  /// about one Miller loop to build and pays for itself after roughly two
  /// pairings against it.
  PairingPrecomp precompute(const EcPoint& P) const;

  /// ê(P, Q), bit-identical to tate_pairing / tate_pairing_affine.
  Fp2 pair(const EcPoint& P, const EcPoint& Q) const;

  /// ê(pre.point(), Q) via the compiled table.
  Fp2 pair(const PairingPrecomp& pre, const EcPoint& Q) const;

  /// ∏_i ê(P_i, Q_i)^{±e_i} with one final exponentiation for the whole
  /// product. Unit-exponent factors share the accumulator; factors with
  /// equal non-unit exponents share a second one (the batch-verify shape).
  /// Returns 1 for an empty product. Bit-identical to composing the
  /// oracle pairings with fp2_pow / fp2_inv.
  Fp2 pair_product(const std::vector<PairingTerm>& terms) const;

  /// x^e in F_p² for e >= 0, in the Montgomery domain; bit-identical to
  /// fp2_pow. Backs GtGroup::pow and GtGroup::contains.
  Fp2 gt_pow(const Fp2& x, const Bigint& e) const;

  /// x1^e1 · x2^e2 (Shamir/Straus interleaving) for e1, e2 >= 0;
  /// bit-identical to fp2_mul(fp2_pow(...), fp2_pow(...)).
  Fp2 gt_pow2(const Fp2& x1, const Bigint& e1, const Fp2& x2,
              const Bigint& e2) const;

 private:
  TypeAParams params_;
  std::shared_ptr<const MontgomeryCtx> mont_;
  std::shared_ptr<const FpCtx> fp_;  // null on the Bigint oracle path
};

}  // namespace ppms
