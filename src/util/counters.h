// Process-wide core-operation counters, reproducing the accounting behind
// Table I of the paper.
//
// The paper counts four operation kinds per protocol role: zero-knowledge
// proofs (ZKP), encryptions (Enc), decryptions (Dec) and hashes (H), with
// the convention that producing a signature counts as Enc and verifying one
// counts as Dec. Crypto primitives call `count_op` at their entry points;
// protocol code brackets each party's steps with a `ScopedRole` so the
// counts land in the right row.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace ppms {

enum class Role : std::uint8_t { None = 0, JobOwner, Participant, Admin };
enum class OpKind : std::uint8_t { Zkp = 0, Enc, Dec, Hash };

inline constexpr std::size_t kRoleCount = 4;
inline constexpr std::size_t kOpKindCount = 4;

/// Human-readable labels for table rendering.
std::string role_name(Role r);
std::string op_name(OpKind k);

/// Snapshot of all counters: counts[role][op].
struct OpCountSnapshot {
  std::array<std::array<std::uint64_t, kOpKindCount>, kRoleCount> counts{};

  std::uint64_t get(Role r, OpKind k) const {
    return counts[static_cast<std::size_t>(r)][static_cast<std::size_t>(k)];
  }
  /// counts - base, element-wise (for measuring a single protocol phase).
  OpCountSnapshot diff(const OpCountSnapshot& base) const;
  /// Render one role's row in the paper's "aZKP+bEnc+cDec+dH" notation.
  std::string row(Role r) const;
};

/// Record one operation against the calling thread's current role.
void count_op(OpKind k);

/// Read all counters.
OpCountSnapshot op_counters();

/// Reset all counters to zero (benchmark setup).
void reset_op_counters();

/// Enable/disable counting globally (off by default keeps the hot paths
/// free of atomic traffic during throughput benchmarks).
void set_op_counting(bool enabled);
bool op_counting_enabled();

/// True while a ScopedOpPause is live on the calling thread. The obs/
/// mirror counters (crypto.enc.calls, zkp.prove, ...) consult this too, so
/// they stay reconciled with Table I under composite operations.
bool op_counting_paused();

/// Suppresses count_op on the calling thread for the current scope:
/// composite primitives (e.g. hybrid encryption) pause counting around
/// their building blocks so one logical operation counts once. Nests, and
/// unlike toggling the global flag it cannot drop other threads' counts.
class ScopedOpPause {
 public:
  ScopedOpPause();
  ~ScopedOpPause();
  ScopedOpPause(const ScopedOpPause&) = delete;
  ScopedOpPause& operator=(const ScopedOpPause&) = delete;
};

/// Sets the calling thread's role for the lifetime of the object and
/// restores the previous role on destruction. Nests correctly.
class ScopedRole {
 public:
  explicit ScopedRole(Role r);
  ~ScopedRole();
  ScopedRole(const ScopedRole&) = delete;
  ScopedRole& operator=(const ScopedRole&) = delete;

 private:
  Role previous_;
};

/// The calling thread's current role (Role::None outside any ScopedRole).
Role current_role();

}  // namespace ppms
