#include "util/serial.h"

#include <stdexcept>

namespace ppms {

void Writer::put_bytes(const Bytes& b) {
  append_u32_be(out_, static_cast<std::uint32_t>(b.size()));
  out_.insert(out_.end(), b.begin(), b.end());
}

void Writer::put_string(std::string_view s) { put_bytes(bytes_of(s)); }

void Writer::put_u32(std::uint32_t v) { append_u32_be(out_, v); }

void Writer::put_u64(std::uint64_t v) { append_u64_be(out_, v); }

void Writer::put_bool(bool v) {
  out_.push_back(v ? std::uint8_t{1} : std::uint8_t{0});
}

Bytes Reader::get_bytes() {
  const std::uint32_t n = read_u32_be(data_, pos_);
  pos_ += 4;
  // Compare against the remaining bytes instead of `pos_ + n > size()`:
  // the sum can wrap when size_t is 32-bit and n is near UINT32_MAX,
  // turning a hostile length prefix into a huge out-of-bounds copy.
  if (n > data_.size() - pos_) {
    throw std::out_of_range("Reader: truncated field");
  }
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::string Reader::get_string() {
  const Bytes b = get_bytes();
  return std::string(b.begin(), b.end());
}

std::uint32_t Reader::get_u32() {
  const std::uint32_t v = read_u32_be(data_, pos_);
  pos_ += 4;
  return v;
}

std::uint64_t Reader::get_u64() {
  const std::uint64_t v = read_u64_be(data_, pos_);
  pos_ += 8;
  return v;
}

bool Reader::get_bool() {
  if (pos_ >= data_.size()) throw std::out_of_range("Reader: truncated bool");
  const std::uint8_t v = data_[pos_++];
  if (v > 1) throw std::invalid_argument("Reader: malformed bool");
  return v == 1;
}

}  // namespace ppms
