#include "util/bytes.h"

#include <algorithm>
#include <stdexcept>

namespace ppms {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(const Bytes& data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0F]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw std::invalid_argument("from_hex: non-hex character");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes bytes_of(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

Bytes concat(const Bytes& a, const Bytes& b) {
  Bytes out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

Bytes concat(const Bytes& a, const Bytes& b, const Bytes& c) {
  Bytes out;
  out.reserve(a.size() + b.size() + c.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  out.insert(out.end(), c.begin(), c.end());
  return out;
}

bool ct_equal(const Bytes& a, const Bytes& b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

void secure_wipe(Bytes& data) {
  volatile std::uint8_t* p = data.data();
  for (std::size_t i = 0; i < data.size(); ++i) p[i] = 0;
  data.clear();
}

void append_u32_be(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void append_u64_be(Bytes& out, std::uint64_t v) {
  append_u32_be(out, static_cast<std::uint32_t>(v >> 32));
  append_u32_be(out, static_cast<std::uint32_t>(v));
}

std::uint32_t read_u32_be(const Bytes& in, std::size_t pos) {
  if (pos + 4 > in.size()) throw std::out_of_range("read_u32_be: truncated");
  return (static_cast<std::uint32_t>(in[pos]) << 24) |
         (static_cast<std::uint32_t>(in[pos + 1]) << 16) |
         (static_cast<std::uint32_t>(in[pos + 2]) << 8) |
         static_cast<std::uint32_t>(in[pos + 3]);
}

std::uint64_t read_u64_be(const Bytes& in, std::size_t pos) {
  return (static_cast<std::uint64_t>(read_u32_be(in, pos)) << 32) |
         read_u32_be(in, pos + 4);
}

}  // namespace ppms
