#include "util/rng.h"

#include <bit>
#include <cstring>
#include <random>
#include <stdexcept>

namespace ppms {

namespace {

inline std::uint32_t rotl32(std::uint32_t x, int n) {
  return std::rotl(x, n);
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                          std::uint32_t& d) {
  a += b; d ^= a; d = rotl32(d, 16);
  c += d; b ^= c; b = rotl32(b, 12);
  a += b; d ^= a; d = rotl32(d, 8);
  c += d; b ^= c; b = rotl32(b, 7);
}

}  // namespace

void chacha20_block(const std::array<std::uint32_t, 8>& key,
                    std::uint32_t counter,
                    const std::array<std::uint32_t, 3>& nonce,
                    std::array<std::uint8_t, 64>& out) {
  // "expand 32-byte k" in little-endian words.
  std::array<std::uint32_t, 16> state = {
      0x61707865u, 0x3320646eu, 0x79622d32u, 0x6b206574u,
      key[0], key[1], key[2], key[3],
      key[4], key[5], key[6], key[7],
      counter, nonce[0], nonce[1], nonce[2]};
  std::array<std::uint32_t, 16> x = state;
  for (int round = 0; round < 10; ++round) {
    quarter_round(x[0], x[4], x[8], x[12]);
    quarter_round(x[1], x[5], x[9], x[13]);
    quarter_round(x[2], x[6], x[10], x[14]);
    quarter_round(x[3], x[7], x[11], x[15]);
    quarter_round(x[0], x[5], x[10], x[15]);
    quarter_round(x[1], x[6], x[11], x[12]);
    quarter_round(x[2], x[7], x[8], x[13]);
    quarter_round(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = x[i] + state[i];
    out[4 * i + 0] = static_cast<std::uint8_t>(v);
    out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
}

Bytes chacha20_xor(const Bytes& key32, const Bytes& nonce12,
                   const Bytes& data) {
  if (key32.size() != 32) throw std::invalid_argument("chacha20: key != 32B");
  if (nonce12.size() != 12) {
    throw std::invalid_argument("chacha20: nonce != 12B");
  }
  std::array<std::uint32_t, 8> key{};
  for (int i = 0; i < 8; ++i) {
    key[i] = static_cast<std::uint32_t>(key32[4 * i]) |
             (static_cast<std::uint32_t>(key32[4 * i + 1]) << 8) |
             (static_cast<std::uint32_t>(key32[4 * i + 2]) << 16) |
             (static_cast<std::uint32_t>(key32[4 * i + 3]) << 24);
  }
  std::array<std::uint32_t, 3> nonce{};
  for (int i = 0; i < 3; ++i) {
    nonce[i] = static_cast<std::uint32_t>(nonce12[4 * i]) |
               (static_cast<std::uint32_t>(nonce12[4 * i + 1]) << 8) |
               (static_cast<std::uint32_t>(nonce12[4 * i + 2]) << 16) |
               (static_cast<std::uint32_t>(nonce12[4 * i + 3]) << 24);
  }
  Bytes out(data.size());
  std::array<std::uint8_t, 64> block{};
  std::uint32_t counter = 1;
  for (std::size_t off = 0; off < data.size(); off += 64, ++counter) {
    chacha20_block(key, counter, nonce, block);
    const std::size_t n = std::min<std::size_t>(64, data.size() - off);
    for (std::size_t i = 0; i < n; ++i) out[off + i] = data[off + i] ^ block[i];
  }
  return out;
}

SecureRandom::SecureRandom() {
  std::random_device rd;
  for (auto& word : key_) {
    word = (static_cast<std::uint32_t>(rd()) << 16) ^ rd();
  }
  for (auto& word : nonce_) word = rd();
}

SecureRandom::SecureRandom(std::uint64_t seed) {
  // Spread the 64-bit seed across the key with splitmix64 so nearby seeds
  // give unrelated streams.
  std::uint64_t s = seed;
  auto next = [&s]() {
    s += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  };
  for (int i = 0; i < 8; i += 2) {
    const std::uint64_t v = next();
    key_[i] = static_cast<std::uint32_t>(v);
    key_[i + 1] = static_cast<std::uint32_t>(v >> 32);
  }
  const std::uint64_t v = next();
  nonce_[0] = static_cast<std::uint32_t>(v);
  nonce_[1] = static_cast<std::uint32_t>(v >> 32);
  nonce_[2] = static_cast<std::uint32_t>(next());
}

SecureRandom::SecureRandom(const Bytes& seed) : SecureRandom(0) {
  // Mix seed bytes into the key by xor-folding; the splitmix base keys are
  // already set by the delegated constructor.
  for (std::size_t i = 0; i < seed.size(); ++i) {
    key_[(i / 4) % 8] ^= static_cast<std::uint32_t>(seed[i]) << (8 * (i % 4));
  }
}

void SecureRandom::refill() {
  chacha20_block(key_, counter_++, nonce_, buffer_);
  buffered_ = 64;
}

void SecureRandom::fill(Bytes& out, std::size_t n) {
  out.resize(n);
  std::size_t produced = 0;
  while (produced < n) {
    if (buffered_ == 0) refill();
    const std::size_t take = std::min(buffered_, n - produced);
    std::memcpy(out.data() + produced, buffer_.data() + (64 - buffered_),
                take);
    buffered_ -= take;
    produced += take;
  }
}

Bytes SecureRandom::bytes(std::size_t n) {
  Bytes out;
  fill(out, n);
  return out;
}

std::uint64_t SecureRandom::next_u64() {
  Bytes b = bytes(8);
  return read_u64_be(b, 0);
}

std::uint64_t SecureRandom::uniform(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("uniform: bound == 0");
  // Rejection sampling over the largest multiple of `bound` below 2^64.
  const std::uint64_t limit = bound * (~0ull / bound);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % bound;
}

}  // namespace ppms
