// Monotonic stopwatch for the protocol-level timing experiments (Figs 2-5).
#pragma once

#include <chrono>

namespace ppms {

/// Starts on construction; `elapsed_ms()` reads without stopping.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  double elapsed_us() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ppms
