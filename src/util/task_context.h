// Thread-local execution context that follows protocol work across threads.
//
// Two thread-locals travel with every piece of protocol work: the Table I
// accounting role (util/counters) and the position inside an obs/ protocol
// trace (the active span). Both are plain thread-locals, so handing work to
// another thread — a `util/thread_pool` worker, or a closure deferred into
// the `market/scheduler` deposit queue — would silently drop them: op
// counts would land in Role::None and spans opened inside the task would
// start a fresh, unattributed trace.
//
// The fix is a capture/restore pair: the submitting thread snapshots its
// context with `capture_task_context()` when it enqueues the task, and the
// executing thread reinstates it around the task body with
// `ScopedTaskContext`. ThreadPool::submit and LogicalScheduler::schedule_*
// do this automatically; manual task hand-offs should do the same.
#pragma once

#include <cstdint>

#include "util/counters.h"

namespace ppms {

/// Position inside a protocol trace (see obs/trace.h): the trace a thread
/// is contributing to and the innermost open span. Zero ids mean "no
/// active trace"; new root spans then mint a fresh trace id.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
};

/// The calling thread's current trace position.
TraceContext current_trace_context();

/// Replace the calling thread's trace position (used by obs::Span and by
/// ScopedTaskContext; most code never calls this directly).
void set_trace_context(TraceContext ctx);

/// Everything a task must carry to execute "as" its submitter.
struct TaskContext {
  Role role = Role::None;
  TraceContext trace;
};

/// Snapshot the calling thread's role + trace position.
TaskContext capture_task_context();

/// Installs a captured context for the current scope and restores the
/// executing thread's previous context on destruction. Nests correctly.
class ScopedTaskContext {
 public:
  explicit ScopedTaskContext(const TaskContext& ctx)
      : role_(ctx.role), prev_(current_trace_context()) {
    set_trace_context(ctx.trace);
  }
  ~ScopedTaskContext() { set_trace_context(prev_); }
  ScopedTaskContext(const ScopedTaskContext&) = delete;
  ScopedTaskContext& operator=(const ScopedTaskContext&) = delete;

 private:
  ScopedRole role_;
  TraceContext prev_;
};

}  // namespace ppms
