#include "util/thread_pool.h"

#include <algorithm>

namespace ppms {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = std::max<std::size_t>(1, threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace ppms
