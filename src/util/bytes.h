// Byte-buffer utilities shared by every module.
//
// A `Bytes` value is the universal wire format in this library: hashes,
// ciphertexts, serialized protocol messages and signatures all travel as
// `Bytes`. Helpers here cover hex round-trips, concatenation and
// constant-time comparison (for MAC/signature checks).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ppms {

using Bytes = std::vector<std::uint8_t>;

/// Hex-encode `data` using lowercase digits.
std::string to_hex(const Bytes& data);

/// Decode a hex string (case-insensitive). Throws std::invalid_argument on
/// malformed input (odd length or non-hex characters).
Bytes from_hex(std::string_view hex);

/// Interpret a string's bytes as a byte buffer (no copy of encoding logic —
/// bytes are taken verbatim).
Bytes bytes_of(std::string_view text);

/// Concatenate buffers left-to-right.
Bytes concat(const Bytes& a, const Bytes& b);
Bytes concat(const Bytes& a, const Bytes& b, const Bytes& c);

/// Constant-time equality: runtime depends only on the lengths, never on the
/// contents, so it is safe for comparing MACs and unblinded signatures.
bool ct_equal(const Bytes& a, const Bytes& b);

/// Overwrite the buffer with zeros before releasing it. Used for key
/// material; prevents secrets from lingering in freed heap pages.
void secure_wipe(Bytes& data);

/// Big-endian fixed-width integer append (network byte order).
void append_u32_be(Bytes& out, std::uint32_t v);
void append_u64_be(Bytes& out, std::uint64_t v);

/// Big-endian fixed-width integer read. Throws std::out_of_range if fewer
/// than 4/8 bytes remain at `pos`.
std::uint32_t read_u32_be(const Bytes& in, std::size_t pos);
std::uint64_t read_u64_be(const Bytes& in, std::size_t pos);

}  // namespace ppms
