// Length-prefixed binary serialization used for all protocol messages.
//
// Every field is written as a 4-byte big-endian length followed by the raw
// bytes, so messages are self-delimiting and the byte-counting channels in
// src/market measure exactly what crosses the wire (Table II).
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.h"

namespace ppms {

/// Appends length-prefixed fields into a growing buffer.
class Writer {
 public:
  Writer() = default;

  void put_bytes(const Bytes& b);
  void put_string(std::string_view s);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_bool(bool v);

  const Bytes& data() const { return out_; }
  Bytes take() { return std::move(out_); }

 private:
  Bytes out_;
};

/// Reads fields written by Writer, in order. Throws std::out_of_range on a
/// truncated buffer and std::invalid_argument on malformed fields, so a
/// tampered message can never be silently misparsed.
class Reader {
 public:
  explicit Reader(const Bytes& data) : data_(data) {}

  Bytes get_bytes();
  std::string get_string();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  bool get_bool();

  /// True when every byte has been consumed; protocol handlers check this
  /// to reject messages with trailing garbage.
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  const Bytes& data_;
  std::size_t pos_ = 0;
};

}  // namespace ppms
