#include "util/counters.h"

namespace ppms {

namespace {

std::array<std::array<std::atomic<std::uint64_t>, kOpKindCount>, kRoleCount>
    g_counters{};
std::atomic<bool> g_enabled{false};
thread_local Role t_role = Role::None;
thread_local int t_pause_depth = 0;

}  // namespace

std::string role_name(Role r) {
  switch (r) {
    case Role::None: return "none";
    case Role::JobOwner: return "JO";
    case Role::Participant: return "SP";
    case Role::Admin: return "MA";
  }
  return "?";
}

std::string op_name(OpKind k) {
  switch (k) {
    case OpKind::Zkp: return "ZKP";
    case OpKind::Enc: return "Enc";
    case OpKind::Dec: return "Dec";
    case OpKind::Hash: return "H";
  }
  return "?";
}

OpCountSnapshot OpCountSnapshot::diff(const OpCountSnapshot& base) const {
  OpCountSnapshot out;
  for (std::size_t r = 0; r < kRoleCount; ++r) {
    for (std::size_t k = 0; k < kOpKindCount; ++k) {
      out.counts[r][k] = counts[r][k] - base.counts[r][k];
    }
  }
  return out;
}

std::string OpCountSnapshot::row(Role r) const {
  std::string out;
  for (std::size_t k = 0; k < kOpKindCount; ++k) {
    const std::uint64_t n = get(r, static_cast<OpKind>(k));
    if (n == 0) continue;
    if (!out.empty()) out += "+";
    out += std::to_string(n) + op_name(static_cast<OpKind>(k));
  }
  return out.empty() ? "0" : out;
}

void count_op(OpKind k) {
  if (!g_enabled.load(std::memory_order_relaxed)) return;
  if (op_counting_paused()) return;
  g_counters[static_cast<std::size_t>(t_role)][static_cast<std::size_t>(k)]
      .fetch_add(1, std::memory_order_relaxed);
}

OpCountSnapshot op_counters() {
  OpCountSnapshot snap;
  for (std::size_t r = 0; r < kRoleCount; ++r) {
    for (std::size_t k = 0; k < kOpKindCount; ++k) {
      snap.counts[r][k] = g_counters[r][k].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

void reset_op_counters() {
  for (auto& row : g_counters) {
    for (auto& cell : row) cell.store(0, std::memory_order_relaxed);
  }
}

void set_op_counting(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool op_counting_enabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

bool op_counting_paused() { return t_pause_depth > 0; }

ScopedOpPause::ScopedOpPause() { ++t_pause_depth; }

ScopedOpPause::~ScopedOpPause() { --t_pause_depth; }

ScopedRole::ScopedRole(Role r) : previous_(t_role) { t_role = r; }
ScopedRole::~ScopedRole() { t_role = previous_; }

Role current_role() { return t_role; }

}  // namespace ppms
