#include "util/task_context.h"

namespace ppms {

namespace {

thread_local TraceContext t_trace{};

}  // namespace

TraceContext current_trace_context() { return t_trace; }

void set_trace_context(TraceContext ctx) { t_trace = ctx; }

TaskContext capture_task_context() {
  return TaskContext{current_role(), t_trace};
}

}  // namespace ppms
