// Deterministic cryptographically strong PRNG built on the ChaCha20 block
// function (RFC 8439 core).
//
// Every randomized primitive in the library draws from a `SecureRandom`
// passed in by the caller, so protocol runs are reproducible under a fixed
// seed (essential for tests and for the deterministic market scheduler) yet
// cryptographically strong when seeded from the OS.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace ppms {

/// ChaCha20 block function: expands (key, counter, nonce) into 64 bytes of
/// keystream. Exposed for the stream cipher in rsa/hybrid and for tests
/// against the RFC 8439 vectors.
void chacha20_block(const std::array<std::uint32_t, 8>& key,
                    std::uint32_t counter,
                    const std::array<std::uint32_t, 3>& nonce,
                    std::array<std::uint8_t, 64>& out);

/// XOR `data` with the ChaCha20 keystream for (key, nonce) starting at block
/// counter 1 (counter 0 is reserved, matching RFC 8439 AEAD usage).
/// Encryption and decryption are the same operation.
Bytes chacha20_xor(const Bytes& key32, const Bytes& nonce12,
                   const Bytes& data);

/// Deterministic CSPRNG. Not thread-safe: each thread/session owns its own
/// instance (the market scheduler hands one to every actor).
class SecureRandom {
 public:
  /// Seed from the operating system entropy source.
  SecureRandom();

  /// Deterministic seeding for reproducible protocol runs and tests.
  explicit SecureRandom(std::uint64_t seed);

  /// Seed from arbitrary bytes (hashed into the key).
  explicit SecureRandom(const Bytes& seed);

  /// Fill `out` with `n` fresh random bytes (overwrites previous contents).
  void fill(Bytes& out, std::size_t n);

  /// Convenience: return `n` fresh random bytes.
  Bytes bytes(std::size_t n);

  /// Uniform value in [0, 2^64).
  std::uint64_t next_u64();

  /// Uniform value in [0, bound) for bound >= 1, via rejection sampling.
  std::uint64_t uniform(std::uint64_t bound);

 private:
  void refill();

  std::array<std::uint32_t, 8> key_{};
  std::array<std::uint32_t, 3> nonce_{};
  std::uint32_t counter_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;  // unread bytes at the tail of buffer_
};

}  // namespace ppms
