// Fixed-size worker pool used by the parallel market driver.
//
// The market administrator in a deployed sensing market serves many
// concurrent JO/SP sessions; `ThreadPool` lets the examples and the A3
// ablation bench drive many protocol rounds through one shared MA while the
// MA-side state (bank, bulletin board, deposit database) exercises its
// internal synchronization.
//
// Tasks execute under the submitter's thread-local context (accounting
// role + trace span, see util/task_context.h): `submit` captures it on the
// submitting thread and the worker reinstates it around the task body, so
// Table I op counts and obs/ protocol traces attribute pooled work to the
// session that enqueued it rather than to Role::None.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/task_context.h"

namespace ppms {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1). The destructor drains outstanding
  /// tasks before joining.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> fut = packaged->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool: submit after shutdown");
      }
      queue_.emplace([packaged, ctx = capture_task_context()] {
        ScopedTaskContext as_submitter(ctx);
        (*packaged)();
      });
    }
    cv_.notify_one();
    return fut;
  }

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace ppms
