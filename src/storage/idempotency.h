// Receiver-side reply cache keyed by envelope idempotency key, extracted
// from market/faults.h behind the journal-backed storage interface.
//
// Replies — including serialized application errors — are recorded after
// the first processing of an envelope; redeliveries replay them verbatim
// so a handler's side effects (publishing a job, debiting a withdrawal,
// crediting a deposit) happen exactly once per key. The store is the
// third leg of the durable ledger: with a journal attached, every
// record() appends a kIdemReply mutation under the store's own lock, so
// a recovered MA replays the exact reply bytes for every key it ever
// answered — a client retrying across the crash cannot double-settle.
//
// record() takes both key and reply BY VALUE and moves them into the
// map: the hot settle path hands its buffers over instead of copying
// them (the pre-extraction API copied the key and, at the emplace, the
// reply of every deposit a second time).
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <optional>

#include "storage/journal.h"
#include "util/bytes.h"

namespace ppms {

class IdempotencyStore {
 public:
  /// Reply recorded under `key`, or nullopt when the key is new.
  std::optional<Bytes> find(const Bytes& key) const;

  /// Record the first reply for `key`; later calls with the same key are
  /// no-ops (first write wins, matching replay semantics). Journals a
  /// kIdemReply record when a journal is attached and the insert is new.
  void record(Bytes key, Bytes reply);

  std::size_t size() const;

  /// Route every future record() through `journal` (null detaches). The
  /// append happens under the store's lock, so the WAL order equals the
  /// map's mutation order.
  void attach_journal(storage::LedgerJournal* journal);
  storage::LedgerJournal* journal() const;

  /// Recovery-only: insert without journaling (replay / snapshot load).
  void restore(Bytes key, Bytes reply);

  /// Visit every (key, reply) in key order under the lock — snapshot
  /// iteration. Keep `fn` short and never call back into this store.
  void for_each(
      const std::function<void(const Bytes&, const Bytes&)>& fn) const;

 private:
  mutable std::mutex mu_;
  std::map<Bytes, Bytes> replies_;
  storage::LedgerJournal* journal_ = nullptr;
};

}  // namespace ppms
