#include "storage/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "hash/sha256.h"
#include "market/error.h"
#include "util/serial.h"

namespace ppms::storage {

namespace {

constexpr char kSnapMagic[] = "PPMSSNP1";  // 8 bytes, version baked in
constexpr std::size_t kMagicSize = 8;

[[noreturn]] void throw_damaged(const std::string& why) {
  throw MarketError(MarketErrc::kMalformedMessage, "snapshot: " + why);
}

[[noreturn]] void throw_io(const std::string& what, const std::string& path) {
  throw MarketError(MarketErrc::kMalformedMessage,
                    "snapshot: " + what + " '" + path +
                        "': " + std::strerror(errno));
}

}  // namespace

Bytes encode_ledger_state(const VBank& vbank, const DecBank& bank,
                          const IdempotencyStore& idem) {
  Writer w;

  // --- VBank: allocator high-water mark, then every account row. The
  // count is not known before the paged scan finishes, so rows buffer
  // into their own Writer first (a copy of row bytes, not of the bank).
  w.put_u64(vbank.issued_accounts());
  Writer rows;
  std::uint64_t account_count = 0;
  VBank::ScanCursor cursor;
  std::vector<VBank::AccountRow> page;
  while (vbank.scan_accounts(cursor, 256, page)) {
    for (const VBank::AccountRow& row : page) {
      rows.put_string(row.aid);
      rows.put_string(row.identity);
      rows.put_u64(static_cast<std::uint64_t>(row.balance));
      rows.put_u64(row.history.size());
      for (const VBank::Entry& entry : row.history) {
        rows.put_u64(entry.time);
        rows.put_u64(static_cast<std::uint64_t>(entry.amount));
      }
      ++account_count;
    }
  }
  w.put_u64(account_count);
  w.put_bytes(rows.data());

  // --- DEC double-spend store: every revealed serial with its spent bit.
  Writer serials;
  std::uint64_t serial_count = 0;
  bank.for_each_serial(
      [&serials, &serial_count](std::size_t depth, const Bytes& serial,
                                bool spent) {
        serials.put_u64(depth);
        serials.put_bytes(serial);
        serials.put_bool(spent);
        ++serial_count;
      });
  w.put_u64(serial_count);
  w.put_bytes(serials.data());

  // --- Idempotency replies.
  Writer replies;
  std::uint64_t reply_count = 0;
  idem.for_each([&replies, &reply_count](const Bytes& key,
                                         const Bytes& reply) {
    replies.put_bytes(key);
    replies.put_bytes(reply);
    ++reply_count;
  });
  w.put_u64(reply_count);
  w.put_bytes(replies.data());

  return w.take();
}

Bytes ledger_state_digest(const VBank& vbank, const DecBank& bank,
                          const IdempotencyStore& idem) {
  return sha256(encode_ledger_state(vbank, bank, idem));
}

void write_snapshot_file(const std::string& path, std::uint64_t through_seq,
                         const Bytes& state) {
  Writer w;
  w.put_u64(through_seq);
  w.put_bytes(state);
  w.put_bytes(sha256(state));
  const Bytes body = w.take();

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_io("cannot open", tmp);
  try {
    const std::uint8_t* data =
        reinterpret_cast<const std::uint8_t*>(kSnapMagic);
    std::size_t len = kMagicSize;
    const Bytes* chunks[] = {nullptr, &body};
    for (const Bytes* chunk : chunks) {
      if (chunk != nullptr) {
        data = chunk->data();
        len = chunk->size();
      }
      while (len > 0) {
        const ssize_t n = ::write(fd, data, len);
        if (n < 0) {
          if (errno == EINTR) continue;
          throw_io("write failed on", tmp);
        }
        data += static_cast<std::size_t>(n);
        len -= static_cast<std::size_t>(n);
      }
    }
    if (::fsync(fd) != 0) throw_io("fsync failed on", tmp);
    ::close(fd);
  } catch (...) {
    ::close(fd);
    throw;
  }
  // The rename is the commit point: before it the old snapshot (if any)
  // is intact, after it the new one is complete.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw_io("rename failed for", tmp);
  }
}

std::uint64_t restore_snapshot_file(const std::string& path, VBank& vbank,
                                    DecBank& bank, IdempotencyStore& idem) {
  Bytes raw;
  {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) throw_io("cannot read", path);
    std::uint8_t buf[1 << 16];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        throw_io("read failed on", path);
      }
      if (n == 0) break;
      raw.insert(raw.end(), buf, buf + n);
    }
    ::close(fd);
  }
  if (raw.size() < kMagicSize ||
      std::memcmp(raw.data(), kSnapMagic, kMagicSize) != 0) {
    throw_damaged("bad magic in '" + path + "'");
  }

  try {
    const Bytes body(raw.begin() + kMagicSize, raw.end());
    Reader r(body);
    const std::uint64_t through_seq = r.get_u64();
    const Bytes state = r.get_bytes();
    const Bytes digest = r.get_bytes();
    if (!r.exhausted()) throw_damaged("trailing garbage");
    if (digest != sha256(state)) throw_damaged("state digest mismatch");

    Reader s(state);
    const std::uint64_t issued = s.get_u64();
    const std::uint64_t account_count = s.get_u64();
    const Bytes rows = s.get_bytes();
    {
      Reader rr(rows);
      for (std::uint64_t i = 0; i < account_count; ++i) {
        std::string aid = rr.get_string();
        std::string identity = rr.get_string();
        const std::int64_t balance =
            static_cast<std::int64_t>(rr.get_u64());
        const std::uint64_t entries = rr.get_u64();
        std::vector<VBank::Entry> history;
        history.reserve(entries);
        for (std::uint64_t k = 0; k < entries; ++k) {
          VBank::Entry entry;
          entry.time = rr.get_u64();
          entry.amount = static_cast<std::int64_t>(rr.get_u64());
          history.push_back(entry);
        }
        vbank.restore_account(std::move(aid), std::move(identity), balance,
                              std::move(history));
      }
      if (!rr.exhausted()) throw_damaged("account rows: trailing garbage");
    }
    // The allocator mark restores even past the highest stored AID (an
    // open_account that threw after fetch_add still consumed a number).
    vbank.restore_issued_accounts(issued);

    const std::uint64_t serial_count = s.get_u64();
    const Bytes serials = s.get_bytes();
    {
      Reader sr(serials);
      for (std::uint64_t i = 0; i < serial_count; ++i) {
        const std::uint64_t depth = sr.get_u64();
        Bytes serial = sr.get_bytes();
        const bool spent = sr.get_bool();
        bank.restore_serial(static_cast<std::size_t>(depth),
                            std::move(serial), spent);
      }
      if (!sr.exhausted()) throw_damaged("serials: trailing garbage");
    }

    const std::uint64_t reply_count = s.get_u64();
    const Bytes replies = s.get_bytes();
    {
      Reader pr(replies);
      for (std::uint64_t i = 0; i < reply_count; ++i) {
        Bytes key = pr.get_bytes();
        Bytes reply = pr.get_bytes();
        idem.restore(std::move(key), std::move(reply));
      }
      if (!pr.exhausted()) throw_damaged("replies: trailing garbage");
    }
    if (!s.exhausted()) throw_damaged("state: trailing garbage");
    return through_seq;
  } catch (const MarketError&) {
    throw;
  } catch (const std::exception&) {
    throw_damaged("truncated or malformed body in '" + path + "'");
  }
}

}  // namespace ppms::storage
