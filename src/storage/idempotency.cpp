#include "storage/idempotency.h"

#include <utility>

namespace ppms {

std::optional<Bytes> IdempotencyStore::find(const Bytes& key) const {
  std::lock_guard lock(mu_);
  const auto it = replies_.find(key);
  if (it == replies_.end()) return std::nullopt;
  return it->second;
}

void IdempotencyStore::record(Bytes key, Bytes reply) {
  std::lock_guard lock(mu_);
  const auto [it, inserted] =
      replies_.try_emplace(std::move(key), std::move(reply));
  if (inserted && journal_ != nullptr) {
    journal_->append(storage::MutationKind::kIdemReply,
                     storage::encode(storage::IdemReplyRecord{
                         it->first, it->second}));
  }
}

std::size_t IdempotencyStore::size() const {
  std::lock_guard lock(mu_);
  return replies_.size();
}

void IdempotencyStore::attach_journal(storage::LedgerJournal* journal) {
  std::lock_guard lock(mu_);
  journal_ = journal;
}

storage::LedgerJournal* IdempotencyStore::journal() const {
  std::lock_guard lock(mu_);
  return journal_;
}

void IdempotencyStore::restore(Bytes key, Bytes reply) {
  std::lock_guard lock(mu_);
  replies_.try_emplace(std::move(key), std::move(reply));
}

void IdempotencyStore::for_each(
    const std::function<void(const Bytes&, const Bytes&)>& fn) const {
  std::lock_guard lock(mu_);
  for (const auto& [key, reply] : replies_) fn(key, reply);
}

}  // namespace ppms
