// Ledger snapshots: one canonical byte encoding of the MA's full durable
// state (VBank accounts, DEC double-spend serials, idempotency replies).
//
// The encoding serves two masters with one format:
//
//  * the snapshot file — `write_snapshot_file` wraps it in a header with
//    the journal seq it covers and a SHA-256 digest, written tmp + fsync
//    + atomic rename so a crash mid-snapshot leaves the previous
//    snapshot (or none) intact, never a half-written one;
//  * ledger identity — `ledger_state_digest` hashes the same encoding,
//    and is what the crash-injection chaos tests compare between a
//    recovered ledger and its uncrashed twin ("bit-identical" is
//    literal: same accounts, same per-account history order, same
//    serials, same cached replies).
//
// Scanning uses the stores' paged cursors (VBank::scan_accounts,
// DecBank::for_each_serial, IdempotencyStore::for_each), so no lock is
// held across the whole ledger — at most one shard/stripe at a time.
// The encoding is only a consistent point-in-time state when the caller
// guarantees quiescence; DurableLedger::write_snapshot (recovery.h) does
// that with a last_seq stability check and retry.
#pragma once

#include <cstdint>
#include <string>

#include "dec/bank.h"
#include "market/vbank.h"
#include "storage/idempotency.h"
#include "util/bytes.h"

namespace ppms::storage {

/// Canonical encoding of the full ledger state (deterministic: map/set
/// iteration order is the container key order).
Bytes encode_ledger_state(const VBank& vbank, const DecBank& bank,
                          const IdempotencyStore& idem);

/// SHA-256 of encode_ledger_state — the ledger-identity fingerprint.
Bytes ledger_state_digest(const VBank& vbank, const DecBank& bank,
                          const IdempotencyStore& idem);

/// Write `state` (an encode_ledger_state image) covering journal records
/// up to `through_seq` into `path`, via tmp + fsync + rename.
void write_snapshot_file(const std::string& path, std::uint64_t through_seq,
                         const Bytes& state);

/// Load a snapshot into EMPTY stores; returns the journal seq it covers.
/// Throws MarketError(kMalformedMessage) on any damage — header, digest
/// or body — so a corrupt snapshot can never poison a recovery silently.
std::uint64_t restore_snapshot_file(const std::string& path, VBank& vbank,
                                    DecBank& bank, IdempotencyStore& idem);

}  // namespace ppms::storage
