#include "storage/recovery.h"

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "market/error.h"
#include "obs/metrics.h"
#include "storage/snapshot.h"

namespace ppms::storage {

namespace {

struct RecoveryMetrics {
  obs::Counter* recoveries;
  obs::Counter* replayed;   // records applied during recovery
  obs::Counter* snapshots;  // snapshots written
  obs::Histogram* recovery_lat;
  obs::Histogram* snapshot_lat;

  RecoveryMetrics()
      : recoveries(&obs::counter("storage.recovery.runs")),
        replayed(&obs::counter("storage.recovery.replayed")),
        snapshots(&obs::counter("storage.snapshot.writes")),
        recovery_lat(&obs::histogram("storage.recovery")),
        snapshot_lat(&obs::histogram("storage.snapshot")) {}
};

RecoveryMetrics& metrics() {
  static RecoveryMetrics m;
  return m;
}

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

void apply_mutation(const MutationRecord& rec, VBank& vbank, DecBank& bank,
                    IdempotencyStore& idem) {
  switch (rec.kind) {
    case MutationKind::kOpenAccount: {
      const OpenAccountRecord open = decode_open_account(rec.payload);
      vbank.apply_open_account(open.identity, open.aid);
      return;
    }
    case MutationKind::kCredit: {
      const CreditRecord credit = decode_credit(rec.payload);
      vbank.apply_credit(credit.aid, credit.amount, credit.time);
      return;
    }
    case MutationKind::kDecSpendMark: {
      DecSpendMarkRecord mark = decode_dec_spend_mark(rec.payload);
      // Spent keys re-file after revealed ones, mirroring commit order;
      // restore_serial is idempotent so the overlap is harmless.
      for (SerialMark& m : mark.revealed) {
        bank.restore_serial(static_cast<std::size_t>(m.depth),
                            std::move(m.serial), false);
      }
      for (SerialMark& m : mark.spent) {
        bank.restore_serial(static_cast<std::size_t>(m.depth),
                            std::move(m.serial), true);
      }
      return;
    }
    case MutationKind::kIdemReply: {
      IdemReplyRecord reply = decode_idem_reply(rec.payload);
      idem.restore(std::move(reply.key), std::move(reply.reply));
      return;
    }
    case MutationKind::kEpochMark:
      return;  // an anchor, not a store mutation (recover() tracks it)
    case MutationKind::kEpochAccrue:
      return;  // accumulator state, not a store mutation (see recover())
    case MutationKind::kTxnCommit:
      return;  // replay() never delivers these
  }
  throw MarketError(MarketErrc::kMalformedMessage,
                    "apply_mutation: unknown record kind");
}

DurableLedger::DurableLedger(std::string dir, DurableLedgerOptions options)
    : dir_(std::move(dir)), options_(options) {
  journal_ = std::make_unique<FileJournal>(wal_path(), options_.journal);
}

std::string DurableLedger::wal_path() const { return dir_ + "/wal.log"; }

std::string DurableLedger::snapshot_path() const {
  return dir_ + "/snapshot.bin";
}

void DurableLedger::attach(VBank& vbank, DecBank& bank,
                           IdempotencyStore& idem) {
  vbank.attach_journal(journal_.get());
  bank.attach_journal(journal_.get());
  idem.attach_journal(journal_.get());
}

RecoveryStats DurableLedger::recover(VBank& vbank, DecBank& bank,
                                     IdempotencyStore& idem,
                                     EpochAccumulator* epochs) {
  const auto t0 = std::chrono::steady_clock::now();
  RecoveryStats stats;
  stats.torn_tail_bytes = journal_->open_truncated_bytes();

  if (file_exists(snapshot_path())) {
    stats.snapshot_seq =
        restore_snapshot_file(snapshot_path(), vbank, bank, idem);
    stats.snapshot_loaded = true;
  }

  const ReplayStats replayed =
      journal_->replay([&](const MutationRecord& rec) {
        // Billing-window state is rebuilt from the WHOLE log, snapshot
        // filter notwithstanding: the snapshot holds the three stores,
        // never the accumulator, so an accrual below the covered seq is
        // still the only record of its pending money. Marks clear what
        // their close settled (those credits ARE in the snapshot).
        if (epochs != nullptr) {
          if (rec.kind == MutationKind::kEpochAccrue) {
            const EpochAccrueRecord acc = decode_epoch_accrue(rec.payload);
            epochs->restore_accrual(acc.aid, acc.value, acc.epoch);
            ++stats.restored_accruals;
          } else if (rec.kind == MutationKind::kEpochMark) {
            epochs->restore_epoch(decode_epoch_mark(rec.payload).epoch);
          }
        }
        // Covered by the snapshot already (a crash between snapshot
        // rename and WAL truncation leaves this overlap behind).
        if (rec.seq <= stats.snapshot_seq) {
          ++stats.skipped_records;
          return;
        }
        if (rec.kind == MutationKind::kEpochMark) ++stats.epoch_marks;
        apply_mutation(rec, vbank, bank, idem);
        ++stats.applied_records;
      });
  stats.dropped_records = replayed.dropped_records;
  stats.last_epoch = journal_->last_epoch().value_or(0);
  if (epochs != nullptr) {
    epochs->restore_epoch(stats.last_epoch);
  }

  stats.latency_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  metrics().recoveries->add();
  metrics().replayed->add(stats.applied_records);
  metrics().recovery_lat->observe(stats.latency_us);
  return stats;
}

void DurableLedger::write_snapshot(const VBank& vbank, const DecBank& bank,
                                   const IdempotencyStore& idem) {
  obs::ScopedTimer timer(*metrics().snapshot_lat);
  const std::size_t attempts = std::max<std::size_t>(1, options_.snapshot_attempts);
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    // The paged scans are only a consistent cut of the ledger when no
    // mutation lands while they run; the journal's last_seq moving is
    // exactly the signal that one did.
    const std::uint64_t seq_before = journal_->last_seq();
    const Bytes state = encode_ledger_state(vbank, bank, idem);
    if (journal_->last_seq() != seq_before) continue;
    journal_->sync();
    write_snapshot_file(snapshot_path(), seq_before, state);
    // Only after the snapshot is durably renamed may its covered prefix
    // leave the WAL; crashing between the two is the overlap recover()
    // skips by seq.
    journal_->truncate_after_snapshot(seq_before);
    metrics().snapshots->add();
    return;
  }
  throw MarketError(MarketErrc::kSnapshotContention,
                    "write_snapshot: journal never quiescent across " +
                        std::to_string(attempts) + " encode attempts");
}

std::uint64_t DurableLedger::mark_epoch(std::uint64_t epoch,
                                        std::uint64_t time) {
  return journal_->append(MutationKind::kEpochMark,
                          encode(EpochMarkRecord{epoch, time}));
}

}  // namespace ppms::storage
