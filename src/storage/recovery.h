// DurableLedger — the recovery orchestrator tying WAL + snapshot to the
// three in-memory stores.
//
// Directory layout (one ledger per directory):
//
//   <dir>/wal.log       — the FileJournal (storage/journal.h)
//   <dir>/snapshot.bin  — the newest complete snapshot (storage/snapshot.h)
//   <dir>/snapshot.bin.tmp, <dir>/wal.log.truncate.tmp — crash debris;
//       ignored by recovery and overwritten by the next writer.
//
// Recovery = restore the snapshot (if one exists) into the empty stores,
// then replay every committed journal record with seq greater than the
// snapshot's covered seq. Replaying only the uncovered suffix makes
// recovery idempotent against the one non-atomic seam in snapshotting: a
// crash after snapshot rename but before WAL truncation leaves covered
// records in the log, and the seq filter skips them instead of
// double-applying.
//
// write_snapshot needs a quiescent journal (the paged scans are only a
// consistent cut when nothing moves between them). It captures last_seq,
// encodes, and retries when the journal advanced meanwhile; persistent
// churn surfaces as MarketError(kSnapshotContention) after bounded
// attempts — callers snapshot from a maintenance point (loadgen does it
// after drain), not mid-traffic.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "dec/bank.h"
#include "market/epoch.h"
#include "market/vbank.h"
#include "storage/idempotency.h"
#include "storage/journal.h"

namespace ppms::storage {

struct DurableLedgerOptions {
  FileJournalOptions journal;
  /// write_snapshot encode attempts before kSnapshotContention.
  std::size_t snapshot_attempts = 8;
};

/// What a recovery pass did (storage.recovery.* metrics mirror this).
struct RecoveryStats {
  bool snapshot_loaded = false;
  std::uint64_t snapshot_seq = 0;      ///< journal seq the snapshot covers
  std::uint64_t applied_records = 0;   ///< replayed into the stores
  std::uint64_t skipped_records = 0;   ///< already covered by the snapshot
  std::uint64_t dropped_records = 0;   ///< uncommitted-txn members dropped
  std::uint64_t epoch_marks = 0;
  std::uint64_t last_epoch = 0;        ///< newest marked window (0 = none)
  std::uint64_t restored_accruals = 0; ///< pending kEpochAccrue re-added
  std::uint64_t torn_tail_bytes = 0;   ///< crash damage truncated at open
  std::uint64_t latency_us = 0;
};

class DurableLedger {
 public:
  /// Opens (creating if needed) the WAL under `dir`, truncating any torn
  /// tail. The directory must already exist.
  explicit DurableLedger(std::string dir, DurableLedgerOptions options = {});

  FileJournal& journal() { return *journal_; }
  std::string wal_path() const;
  std::string snapshot_path() const;

  /// Attach the journal to all three stores (hook installation).
  void attach(VBank& vbank, DecBank& bank, IdempotencyStore& idem);

  /// Snapshot-then-replay recovery into EMPTY stores. Does not attach;
  /// call attach() afterwards to resume journaling into the same WAL.
  ///
  /// When `epochs` is non-null the billing-window state is restored too:
  /// pending kEpochAccrue records rebuild the accumulator's per-account
  /// sums and kEpochMark records clear the windows they settled. Both
  /// are processed across the WHOLE replay — even below the snapshot's
  /// covered seq — because accumulator state is never in the snapshot
  /// (the journal re-anchors it across truncation instead). The stats'
  /// `last_epoch` mirrors journal().last_epoch(): the window counter a
  /// caller resumes from, which is what keeps a recovered ledger's next
  /// mark_epoch monotone instead of restarting at epoch 0.
  RecoveryStats recover(VBank& vbank, DecBank& bank, IdempotencyStore& idem,
                        EpochAccumulator* epochs = nullptr);

  /// Write a snapshot at a quiescent point, then truncate the WAL's
  /// covered prefix. Throws MarketError(kSnapshotContention) when the
  /// journal never held still for an encode pass.
  void write_snapshot(const VBank& vbank, const DecBank& bank,
                      const IdempotencyStore& idem);

  /// Append a kEpochMark record — the billing-window anchor of the
  /// epoch-netting mode (ROADMAP item 2, market/epoch.h). The journal
  /// enforces monotonicity at append time: a mark below last_epoch()
  /// throws MarketError(kEpochOutOfOrder); equal re-anchors are allowed.
  /// Recovery restores the counter (RecoveryStats::last_epoch), so a
  /// restarted ledger continues its window sequence instead of rewinding
  /// to epoch 0.
  std::uint64_t mark_epoch(std::uint64_t epoch, std::uint64_t time);

  /// Newest marked billing window, or nullopt before the first mark.
  std::optional<std::uint64_t> last_epoch() const {
    return journal_->last_epoch();
  }

 private:
  std::string dir_;
  DurableLedgerOptions options_;
  std::unique_ptr<FileJournal> journal_;
};

/// Apply one replayed mutation record to the stores. Shared by recover()
/// and the chaos tests; throws MarketError(kMalformedMessage) on a
/// payload that does not decode (a chain-valid record never fails this
/// unless the WAL was written by a newer format).
void apply_mutation(const MutationRecord& rec, VBank& vbank, DecBank& bank,
                    IdempotencyStore& idem);

}  // namespace ppms::storage
