// The durable ledger's write-ahead log: an append-only file of
// SHA-256-chained mutation records behind the pluggable `LedgerJournal`
// interface (ROADMAP item 2).
//
// Why a journal at all: the MA's in-memory stores — the VBank fiat
// ledger, the DEC double-spend serial store and the IdempotencyStore —
// are the single source of truth for the paper's market. Losing them
// breaks the double-spend guarantee outright, so every mutation they
// perform flows through a journal hook first. The hook is nullable: a
// store with no journal attached runs today's in-memory fast path
// byte-for-byte (not even the record payload is encoded), a `NullJournal`
// exercises the API at zero cost, and a `FileJournal` makes the
// MarketServer durable. Recovery (storage/recovery.h) replays
// log-over-snapshot and reproduces all three stores bit for bit.
//
// Record taxonomy (`MutationKind`): every state transition the durable
// stores can make is one of six application records — open_account,
// credit (debits are negative credits), dec_spend_mark, idem_reply,
// epoch_mark, epoch_accrue — plus the structural txn_commit marker
// described below. Payloads are plain Reader/Writer frames
// (util/serial.h), encoded by the codec structs at the bottom of this
// header.
//
// Epoch anchoring: the journal itself tracks the newest kEpochMark it
// holds (restored from the open scan, surfaced via last_epoch()) and
// rejects an append that would move the billing window BACKWARDS
// (MarketError / kEpochOutOfOrder) — equal re-marks are allowed, a
// window can be re-anchored but never rewound. truncate_after_snapshot
// preserves epoch state across log compaction: when the covered prefix
// held the newest epoch mark, or committed epoch accruals that no later
// mark has settled, those are re-appended at fresh seqs inside the
// rewritten log (before the atomic swap), because neither lives in the
// snapshot — the billing window and its pending money exist only here.
//
// Wire format, chained like the PR 4 envelope digests:
//
//   file   := magic "PPMSWAL1" record*
//   record := u32_be total_len  frame  digest32
//   frame  := Writer{ u64 seq, u64 txn, u32 kind, bytes payload }
//   digest := SHA-256(prev_digest ‖ frame), genesis prev = 32 zero bytes
//
// The chain makes every record attest to the entire prefix before it: a
// flipped byte anywhere breaks every later digest, so a reader can never
// accept a corrupted prefix by accident. Opening a FileJournal scans the
// file, truncates any torn tail (partial last write, length running past
// EOF, digest mismatch) and restores the seq counter from the last valid
// record — crash recovery is therefore "open the file".
//
// Transactions: a multi-record mutation (settle = dec_spend_mark +
// credit + idem_reply) must recover all-or-nothing. `JournalScope` is an
// RAII group: records appended inside a scope carry its txn id and the
// scope's destructor appends a `kTxnCommit` marker (payload = the txn
// id). Replay is two-pass — collect committed txn ids, then deliver only
// records whose txn committed (txn 0 = standalone, always delivered). A
// crash between a txn's first record and its commit marker therefore
// drops the whole group, never half of it. Scopes are thread-local and
// nest by joining the outer scope. Seq numbers and txn ids draw from one
// monotone counter that survives restarts (restored from the max seq at
// open), so a txn id can never collide with one from a previous life of
// the process and be falsely committed by an old marker.
//
// Lock order: stores append while holding their own data lock (shard /
// stripe / map mutex), and FileJournal::append takes the journal mutex
// inside that — data lock before journal lock, never the reverse. This
// immediate-append discipline is what makes the WAL order equal the
// in-memory mutation order, so a recovered store is bit-identical to the
// live one (per-account history order included).
//
// Metrics (when obs is enabled): storage.journal.appends / .bytes /
// .fsyncs / .commits counters, storage.journal.append histogram;
// replay/recovery series live in storage/recovery.cpp. Taxonomy in
// OBSERVABILITY.md, durability design notes in DESIGN.md.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/bytes.h"

namespace ppms::storage {

/// Every mutation the durable stores can perform. Values are the on-disk
/// encoding — append only, never renumber.
enum class MutationKind : std::uint32_t {
  kOpenAccount = 1,   ///< VBank::open_account (identity, aid)
  kCredit = 2,        ///< VBank credit/debit (aid, signed amount, time)
  kDecSpendMark = 3,  ///< DecBank serial filing (revealed + spent keys)
  kIdemReply = 4,     ///< IdempotencyStore::record (key, reply)
  kEpochMark = 5,     ///< billing-epoch anchor (epoch, time)
  kTxnCommit = 6,     ///< structural: commits the txn id in the payload
  kEpochAccrue = 7,   ///< EpochAccumulator::accrue (aid, value, epoch)
};

/// Stable identifier ("open_account", ...) for diagnostics and logs.
const char* mutation_kind_name(MutationKind kind);

/// One journal record as replay delivers it.
struct MutationRecord {
  std::uint64_t seq = 0;  ///< position in the total mutation order
  std::uint64_t txn = 0;  ///< transaction group; 0 = standalone
  MutationKind kind = MutationKind::kEpochMark;
  Bytes payload;
};

/// When appended records reach the disk platter.
enum class SyncPolicy : std::uint8_t {
  kNone = 0,         ///< never fsync (OS page cache only)
  kBatch = 1,        ///< fsync every batch_records appends + on sync()
  kEveryRecord = 2,  ///< fsync after every append
};

const char* sync_policy_name(SyncPolicy policy);

/// What a replay pass saw. `dropped_records` counts records whose txn
/// never committed (crash mid-transaction); `torn_tail_bytes` counts
/// bytes past the last chain-valid record (zero on a cleanly written
/// file — open() already truncated any crash damage away).
struct ReplayStats {
  std::uint64_t delivered_records = 0;
  std::uint64_t dropped_records = 0;
  std::uint64_t commit_markers = 0;
  std::uint64_t torn_tail_bytes = 0;
};

class JournalScope;

/// The pluggable journal API every durable store appends through.
///
/// `append` is the one non-virtual entry point: it resolves the calling
/// thread's open JournalScope (txn tagging) and forwards to the backend.
/// Stores hold a `LedgerJournal*` that may be null — callers must check
/// and skip payload encoding entirely when it is, which is what keeps
/// the journal-less fast path identical to the pre-durability code.
class LedgerJournal {
 public:
  using RecordFn = std::function<void(const MutationRecord&)>;

  virtual ~LedgerJournal() = default;

  /// Append one record, tagged with the calling thread's open scope's
  /// txn id (0 when no scope is open). Returns the record's seq.
  std::uint64_t append(MutationKind kind, Bytes payload);

  /// Flush everything appended so far to stable storage.
  virtual void sync() = 0;

  /// Deliver every committed record in seq order. Two passes: records
  /// belonging to a txn whose kTxnCommit marker never made it to disk
  /// are dropped (counted in the stats), structural commit markers are
  /// counted but not delivered.
  virtual ReplayStats replay(const RecordFn& fn) = 0;

  /// Discard records with seq <= through_seq — they are covered by a
  /// snapshot the caller has already made durable. The seq/txn counter
  /// keeps counting from where it was.
  virtual void truncate_after_snapshot(std::uint64_t through_seq) = 0;

  /// Seq of the newest record appended (0 when empty).
  virtual std::uint64_t last_seq() const = 0;

  /// Epoch of the newest kEpochMark on record (nullopt before the first
  /// mark). Appending a mark with a smaller epoch throws MarketError
  /// (kEpochOutOfOrder); equal epochs re-anchor and are allowed.
  virtual std::optional<std::uint64_t> last_epoch() const = 0;

  /// True when appends survive a process crash (file-backed).
  virtual bool durable() const = 0;

 protected:
  friend class JournalScope;
  virtual std::uint64_t do_append(MutationKind kind, std::uint64_t txn,
                                  Bytes payload) = 0;
  /// Reserve a fresh txn id (shares the seq counter's number space).
  virtual std::uint64_t alloc_txn() = 0;
};

/// The no-op backend: accepts every append and remembers nothing.
/// Useful for exercising the journal-hook plumbing at zero durability
/// cost; production fast paths should prefer a null pointer, which also
/// skips payload encoding.
class NullJournal final : public LedgerJournal {
 public:
  void sync() override {}
  ReplayStats replay(const RecordFn&) override { return {}; }
  void truncate_after_snapshot(std::uint64_t) override {}
  std::uint64_t last_seq() const override { return 0; }
  std::optional<std::uint64_t> last_epoch() const override {
    return std::nullopt;
  }
  bool durable() const override { return false; }

 protected:
  std::uint64_t do_append(MutationKind, std::uint64_t, Bytes) override {
    return 0;
  }
  std::uint64_t alloc_txn() override { return 0; }
};

struct FileJournalOptions {
  SyncPolicy sync = SyncPolicy::kBatch;
  /// kBatch: fsync once this many appends have accumulated.
  std::size_t batch_records = 64;
};

/// The file-backed WAL. Thread-safe: one mutex orders appends, which is
/// exactly what serializes the total mutation order the chain digests
/// attest to. Opening scans the whole file, truncates any torn tail and
/// resumes the chain and the seq counter from the last valid record.
class FileJournal final : public LedgerJournal {
 public:
  /// Opens (creating if needed) the log at `path`. Throws MarketError
  /// (kMalformedMessage) when the file exists but its header is not a
  /// PPMS WAL — silently appending to a foreign file would destroy it.
  explicit FileJournal(std::string path, FileJournalOptions options = {});
  ~FileJournal() override;

  FileJournal(const FileJournal&) = delete;
  FileJournal& operator=(const FileJournal&) = delete;

  void sync() override;
  ReplayStats replay(const RecordFn& fn) override;
  void truncate_after_snapshot(std::uint64_t through_seq) override;
  std::uint64_t last_seq() const override;
  std::optional<std::uint64_t> last_epoch() const override;
  bool durable() const override { return true; }

  const std::string& path() const { return path_; }
  const FileJournalOptions& options() const { return options_; }

  /// Bytes of torn tail discarded when the file was opened (crash
  /// forensics; 0 after a clean shutdown).
  std::uint64_t open_truncated_bytes() const { return open_truncated_; }

  /// Total appends since this object opened the file.
  std::uint64_t appended_records() const;

 protected:
  std::uint64_t do_append(MutationKind kind, std::uint64_t txn,
                          Bytes payload) override;
  std::uint64_t alloc_txn() override;

 private:
  struct Scan {
    std::vector<MutationRecord> records;
    Bytes tip_digest;             ///< chain tip after the last valid record
    std::uint64_t valid_bytes = 0;
    std::uint64_t max_seq = 0;
    std::uint64_t torn_bytes = 0;
  };

  /// Parse `raw` (a full file image) into the longest valid record
  /// prefix. Never throws on damage — damage is where the log ends.
  static Scan scan_image(const Bytes& raw);

  void fsync_locked();
  void write_frame_locked(const Bytes& frame);

  std::string path_;
  FileJournalOptions options_;

  mutable std::mutex mu_;
  int fd_ = -1;
  std::uint64_t counter_ = 0;      ///< seq + txn allocator (monotone)
  std::uint64_t tail_seq_ = 0;     ///< seq of the newest record on disk
  std::optional<std::uint64_t> last_epoch_;  ///< newest kEpochMark epoch
  Bytes tip_digest_;               ///< chain tip for the next append
  std::uint64_t unsynced_ = 0;     ///< appends since the last fsync
  std::uint64_t appended_ = 0;
  std::uint64_t open_truncated_ = 0;
};

/// RAII transaction group. Records appended by this thread while a scope
/// is open share one txn id; the destructor appends the kTxnCommit
/// marker. Constructing with a null journal is a no-op (the fast path),
/// and nesting joins the outer scope so helper methods that open their
/// own scope (VBank::transfer) compose under a caller's transaction.
class JournalScope {
 public:
  explicit JournalScope(LedgerJournal* journal);
  ~JournalScope();

  JournalScope(const JournalScope&) = delete;
  JournalScope& operator=(const JournalScope&) = delete;

  std::uint64_t txn() const { return txn_; }

 private:
  friend class LedgerJournal;
  LedgerJournal* journal_ = nullptr;  ///< null when joined or no-op
  JournalScope* prev_ = nullptr;      ///< enclosing scope on this thread
  std::uint64_t txn_ = 0;
  bool appended_any_ = false;
};

// ---------------------------------------------------------------------
// Record payload codecs. Plain data in, Reader/Writer frames out; the
// decode side throws MarketError(kMalformedMessage) on damage (recovery
// treats that as a poisoned log and refuses to guess).

struct OpenAccountRecord {
  std::string identity;
  std::string aid;
};

struct CreditRecord {
  std::string aid;
  std::int64_t amount = 0;  ///< negative for debits
  std::uint64_t time = 0;
};

/// One (depth, serial-bytes) key of the DEC double-spend store.
struct SerialMark {
  std::uint64_t depth = 0;
  Bytes serial;
};

struct DecSpendMarkRecord {
  std::vector<SerialMark> revealed;
  std::vector<SerialMark> spent;
};

struct IdemReplyRecord {
  Bytes key;
  Bytes reply;
};

struct EpochMarkRecord {
  std::uint64_t epoch = 0;
  std::uint64_t time = 0;
};

/// One account's pending accrual into a not-yet-closed billing window.
/// Settled by the first kEpochMark whose epoch is >= this record's —
/// until then it is the only durable trace of the money (netted credits
/// reach the WAL only at epoch close).
struct EpochAccrueRecord {
  std::string aid;
  std::uint64_t value = 0;
  std::uint64_t epoch = 0;
  std::uint64_t time = 0;
};

Bytes encode(const OpenAccountRecord& rec);
Bytes encode(const CreditRecord& rec);
Bytes encode(const DecSpendMarkRecord& rec);
Bytes encode(const IdemReplyRecord& rec);
Bytes encode(const EpochMarkRecord& rec);
Bytes encode(const EpochAccrueRecord& rec);

OpenAccountRecord decode_open_account(const Bytes& payload);
CreditRecord decode_credit(const Bytes& payload);
DecSpendMarkRecord decode_dec_spend_mark(const Bytes& payload);
IdemReplyRecord decode_idem_reply(const Bytes& payload);
EpochMarkRecord decode_epoch_mark(const Bytes& payload);
EpochAccrueRecord decode_epoch_accrue(const Bytes& payload);

}  // namespace ppms::storage
