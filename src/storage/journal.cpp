#include "storage/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <set>
#include <stdexcept>
#include <utility>

#include "hash/sha256.h"
#include "market/error.h"
#include "obs/metrics.h"
#include "util/serial.h"

namespace ppms::storage {

namespace {

constexpr char kMagic[] = "PPMSWAL1";  // 8 bytes, version baked in
constexpr std::size_t kMagicSize = 8;
constexpr std::size_t kDigestSize = Sha256::kDigestSize;
// Smallest legal record: an empty-payload frame — raw u64 seq + raw u64
// txn + raw u32 kind + length-prefixed empty bytes — plus the chain
// digest. Must not exceed a kTxnCommit record's 24 + 8 + 4 + 32 = 68
// bytes, or every commit marker scans as tail damage.
constexpr std::uint32_t kMinRecordLen = 8 + 8 + 4 + 4 + kDigestSize;
// A flipped bit in a length prefix must not provoke a giant allocation:
// anything above this is treated as tail damage, not a record.
constexpr std::uint32_t kMaxRecordLen = 1u << 26;

// Registry handles for the storage.journal.* series, resolved once
// (same discipline as server.cpp's ServerMetrics).
struct JournalMetrics {
  obs::Counter* appends;
  obs::Counter* bytes;
  obs::Counter* fsyncs;
  obs::Counter* commits;     // kTxnCommit markers written
  obs::Counter* truncates;   // truncate_after_snapshot calls
  obs::Histogram* append_lat;
  obs::Histogram* fsync_lat;

  JournalMetrics()
      : appends(&obs::counter("storage.journal.appends")),
        bytes(&obs::counter("storage.journal.bytes")),
        fsyncs(&obs::counter("storage.journal.fsyncs")),
        commits(&obs::counter("storage.journal.commits")),
        truncates(&obs::counter("storage.journal.truncates")),
        append_lat(&obs::histogram("storage.journal.append")),
        fsync_lat(&obs::histogram("storage.journal.fsync")) {}
};

JournalMetrics& metrics() {
  static JournalMetrics m;
  return m;
}

// Innermost ACTIVE scope on this thread (joined scopes never register).
thread_local JournalScope* tl_scope = nullptr;

[[noreturn]] void throw_io(const std::string& what, const std::string& path) {
  throw MarketError(MarketErrc::kMalformedMessage,
                    "FileJournal: " + what + " '" + path +
                        "': " + std::strerror(errno));
}

Bytes read_whole_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw_io("cannot read", path);
  Bytes raw;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_io("read failed on", path);
    }
    if (n == 0) break;
    raw.insert(raw.end(), buf, buf + n);
  }
  ::close(fd);
  return raw;
}

void write_all(int fd, const std::uint8_t* data, std::size_t len,
               const std::string& path) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_io("write failed on", path);
    }
    data += static_cast<std::size_t>(n);
    len -= static_cast<std::size_t>(n);
  }
}

Bytes chain_digest(const Bytes& prev, const Bytes& frame) {
  Sha256 h;
  h.update(prev);
  h.update(frame);
  return h.finish();
}

Bytes encode_frame(std::uint64_t seq, std::uint64_t txn, MutationKind kind,
                   const Bytes& payload) {
  Writer w;
  w.put_u64(seq);
  w.put_u64(txn);
  w.put_u32(static_cast<std::uint32_t>(kind));
  w.put_bytes(payload);
  return w.take();
}

// frame + digest, length-prefixed — the on-disk record image.
Bytes encode_record_image(const Bytes& frame, const Bytes& digest) {
  Bytes image;
  image.reserve(4 + frame.size() + digest.size());
  append_u32_be(image,
                static_cast<std::uint32_t>(frame.size() + digest.size()));
  image.insert(image.end(), frame.begin(), frame.end());
  image.insert(image.end(), digest.begin(), digest.end());
  return image;
}

// Epoch of the newest kEpochMark among chain-valid records. Marks are
// append-time monotone, so the last one is also the largest; a payload
// that fails to decode (foreign writer) is ignored rather than fatal —
// the open scan must never throw on content it merely anchors.
std::optional<std::uint64_t> newest_mark_epoch(
    const std::vector<MutationRecord>& records) {
  std::optional<std::uint64_t> epoch;
  for (const MutationRecord& rec : records) {
    if (rec.kind != MutationKind::kEpochMark) continue;
    try {
      epoch = decode_epoch_mark(rec.payload).epoch;
    } catch (const std::exception&) {
    }
  }
  return epoch;
}

}  // namespace

const char* mutation_kind_name(MutationKind kind) {
  switch (kind) {
    case MutationKind::kOpenAccount: return "open_account";
    case MutationKind::kCredit: return "credit";
    case MutationKind::kDecSpendMark: return "dec_spend_mark";
    case MutationKind::kIdemReply: return "idem_reply";
    case MutationKind::kEpochMark: return "epoch_mark";
    case MutationKind::kTxnCommit: return "txn_commit";
    case MutationKind::kEpochAccrue: return "epoch_accrue";
  }
  return "unknown";
}

const char* sync_policy_name(SyncPolicy policy) {
  switch (policy) {
    case SyncPolicy::kNone: return "none";
    case SyncPolicy::kBatch: return "batch";
    case SyncPolicy::kEveryRecord: return "every_record";
  }
  return "unknown";
}

// ---------------------------------------------------------------------
// LedgerJournal / JournalScope

std::uint64_t LedgerJournal::append(MutationKind kind, Bytes payload) {
  std::uint64_t txn = 0;
  if (tl_scope != nullptr && tl_scope->journal_ == this) {
    txn = tl_scope->txn_;
    tl_scope->appended_any_ = true;
  }
  return do_append(kind, txn, std::move(payload));
}

JournalScope::JournalScope(LedgerJournal* journal) {
  if (journal == nullptr) return;  // fast path: scope is a no-op
  if (tl_scope != nullptr && tl_scope->journal_ == journal) {
    // Nested scope on the same journal: join the outer transaction.
    return;
  }
  journal_ = journal;
  txn_ = journal->alloc_txn();
  prev_ = tl_scope;
  tl_scope = this;
}

JournalScope::~JournalScope() {
  if (journal_ == nullptr) return;  // joined or no-op
  tl_scope = prev_;
  if (!appended_any_) return;  // nothing to commit, no marker
  Writer w;
  w.put_u64(txn_);
  journal_->do_append(MutationKind::kTxnCommit, 0, w.take());
  metrics().commits->add();
}

// ---------------------------------------------------------------------
// FileJournal

FileJournal::FileJournal(std::string path, FileJournalOptions options)
    : path_(std::move(path)), options_(options) {
  tip_digest_.assign(kDigestSize, 0);

  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) throw_io("cannot open", path_);

  const Bytes raw = read_whole_file(path_);
  if (raw.empty()) {
    write_all(fd_, reinterpret_cast<const std::uint8_t*>(kMagic), kMagicSize,
              path_);
    fsync_locked();
    return;
  }
  if (raw.size() < kMagicSize) {
    // A crash between creat() and the header write leaves a stub shorter
    // than the magic: nothing valid can follow, start the file over.
    if (::ftruncate(fd_, 0) != 0) throw_io("truncate failed on", path_);
    open_truncated_ = raw.size();
    write_all(fd_, reinterpret_cast<const std::uint8_t*>(kMagic), kMagicSize,
              path_);
    fsync_locked();
    return;
  }
  if (std::memcmp(raw.data(), kMagic, kMagicSize) != 0) {
    ::close(fd_);
    fd_ = -1;
    throw MarketError(MarketErrc::kMalformedMessage,
                      "FileJournal: '" + path_ + "' is not a PPMS WAL");
  }

  // Longest chain-valid prefix wins; everything past it is a torn tail
  // from a crash mid-write and is cut off so appends re-chain cleanly.
  const Scan scan = scan_image(raw);
  if (scan.valid_bytes < raw.size()) {
    if (::ftruncate(fd_, static_cast<off_t>(scan.valid_bytes)) != 0) {
      throw_io("truncate failed on", path_);
    }
    open_truncated_ = raw.size() - scan.valid_bytes;
  }
  counter_ = scan.max_seq;
  tail_seq_ = scan.max_seq;
  tip_digest_ = scan.tip_digest;
  last_epoch_ = newest_mark_epoch(scan.records);
}

FileJournal::~FileJournal() {
  if (fd_ < 0) return;
  if (options_.sync != SyncPolicy::kNone && unsynced_ > 0) {
    ::fsync(fd_);
  }
  ::close(fd_);
}

FileJournal::Scan FileJournal::scan_image(const Bytes& raw) {
  Scan scan;
  scan.tip_digest.assign(kDigestSize, 0);
  std::size_t pos = kMagicSize;
  while (true) {
    if (raw.size() - pos < 4) break;
    const std::uint32_t len = read_u32_be(raw, pos);
    if (len < kMinRecordLen || len > kMaxRecordLen) break;
    if (raw.size() - pos - 4 < len) break;  // record runs past EOF: torn
    const Bytes frame(raw.begin() + static_cast<std::ptrdiff_t>(pos + 4),
                      raw.begin() +
                          static_cast<std::ptrdiff_t>(pos + 4 + len -
                                                      kDigestSize));
    const Bytes digest(
        raw.begin() + static_cast<std::ptrdiff_t>(pos + 4 + len - kDigestSize),
        raw.begin() + static_cast<std::ptrdiff_t>(pos + 4 + len));
    if (chain_digest(scan.tip_digest, frame) != digest) break;

    MutationRecord rec;
    try {
      Reader r(frame);
      rec.seq = r.get_u64();
      rec.txn = r.get_u64();
      const std::uint32_t kind = r.get_u32();
      rec.payload = r.get_bytes();
      if (!r.exhausted()) break;
      if (kind < static_cast<std::uint32_t>(MutationKind::kOpenAccount) ||
          kind > static_cast<std::uint32_t>(MutationKind::kEpochAccrue)) {
        break;
      }
      rec.kind = static_cast<MutationKind>(kind);
    } catch (const std::exception&) {
      break;
    }
    if (rec.seq <= scan.max_seq) break;  // seqs must ascend

    scan.max_seq = rec.seq;
    scan.tip_digest = digest;
    scan.records.push_back(std::move(rec));
    pos += 4 + len;
    scan.valid_bytes = pos;
  }
  scan.valid_bytes = std::max<std::uint64_t>(scan.valid_bytes, kMagicSize);
  scan.torn_bytes = raw.size() - scan.valid_bytes;
  return scan;
}

void FileJournal::fsync_locked() {
  obs::ScopedTimer timer(*metrics().fsync_lat);
  if (::fsync(fd_) != 0) throw_io("fsync failed on", path_);
  metrics().fsyncs->add();
  unsynced_ = 0;
}

void FileJournal::write_frame_locked(const Bytes& frame) {
  const Bytes digest = chain_digest(tip_digest_, frame);
  const Bytes image = encode_record_image(frame, digest);
  write_all(fd_, image.data(), image.size(), path_);
  tip_digest_ = digest;
  ++appended_;
  ++unsynced_;
  metrics().appends->add();
  metrics().bytes->add(image.size());
  switch (options_.sync) {
    case SyncPolicy::kNone:
      break;
    case SyncPolicy::kBatch:
      if (unsynced_ >= options_.batch_records) fsync_locked();
      break;
    case SyncPolicy::kEveryRecord:
      fsync_locked();
      break;
  }
}

std::uint64_t FileJournal::do_append(MutationKind kind, std::uint64_t txn,
                                     Bytes payload) {
  obs::ScopedTimer timer(*metrics().append_lat);
  std::lock_guard lock(mu_);
  // Billing windows only move forward: a mark below the newest one on
  // record is a caller that lost its epoch state (the bug recovery now
  // prevents), not a legal re-anchor. Checked BEFORE the write so a
  // rejected mark leaves no trace in the log. Equal epochs re-anchor.
  std::optional<std::uint64_t> mark_epoch;
  if (kind == MutationKind::kEpochMark) {
    mark_epoch = decode_epoch_mark(payload).epoch;
    if (last_epoch_.has_value() && *mark_epoch < *last_epoch_) {
      throw MarketError(MarketErrc::kEpochOutOfOrder,
                        "FileJournal: epoch mark " +
                            std::to_string(*mark_epoch) +
                            " below newest mark " +
                            std::to_string(*last_epoch_));
    }
  }
  const std::uint64_t seq = ++counter_;
  write_frame_locked(encode_frame(seq, txn, kind, payload));
  tail_seq_ = seq;
  if (mark_epoch.has_value()) last_epoch_ = mark_epoch;
  return seq;
}

std::uint64_t FileJournal::alloc_txn() {
  std::lock_guard lock(mu_);
  return ++counter_;
}

void FileJournal::sync() {
  std::lock_guard lock(mu_);
  if (unsynced_ > 0) fsync_locked();
}

ReplayStats FileJournal::replay(const RecordFn& fn) {
  std::lock_guard lock(mu_);
  const Scan scan = scan_image(read_whole_file(path_));

  // Pass 1: which transactions actually committed.
  std::set<std::uint64_t> committed;
  for (const MutationRecord& rec : scan.records) {
    if (rec.kind != MutationKind::kTxnCommit) continue;
    Reader r(rec.payload);
    committed.insert(r.get_u64());
  }

  // Pass 2: deliver, dropping members of uncommitted transactions.
  ReplayStats stats;
  stats.torn_tail_bytes = scan.torn_bytes;
  for (const MutationRecord& rec : scan.records) {
    if (rec.kind == MutationKind::kTxnCommit) {
      ++stats.commit_markers;
      continue;
    }
    if (rec.txn != 0 && committed.count(rec.txn) == 0) {
      ++stats.dropped_records;
      continue;
    }
    fn(rec);
    ++stats.delivered_records;
  }
  return stats;
}

void FileJournal::truncate_after_snapshot(std::uint64_t through_seq) {
  std::lock_guard lock(mu_);
  if (unsynced_ > 0) fsync_locked();
  const Scan scan = scan_image(read_whole_file(path_));

  // Epoch state lives only in the log, never in the snapshot: the newest
  // kEpochMark (the billing-window anchor) and any committed accruals no
  // mark has settled yet must survive compaction even when their seqs
  // fall inside the covered prefix. When the newest mark is itself a
  // survivor nothing can be pending below it (accruals for window e+1
  // only ever append after mark e), so re-anchoring is needed exactly
  // when every mark was dropped. Re-anchored records are re-issued at
  // fresh seqs ABOVE through_seq — recovery's snapshot seq filter must
  // replay them — and as standalone records (their original commit
  // markers may be dropped; only committed members are re-issued).
  const MutationRecord* newest_mark = nullptr;
  for (const MutationRecord& rec : scan.records) {
    if (rec.kind == MutationKind::kEpochMark) newest_mark = &rec;
  }
  std::vector<const MutationRecord*> reanchor;
  if (newest_mark == nullptr || newest_mark->seq <= through_seq) {
    std::set<std::uint64_t> committed;
    for (const MutationRecord& rec : scan.records) {
      if (rec.kind != MutationKind::kTxnCommit) continue;
      Reader r(rec.payload);
      committed.insert(r.get_u64());
    }
    std::uint64_t marked_epoch = 0;
    if (newest_mark != nullptr) {
      if (newest_mark->txn == 0 || committed.count(newest_mark->txn) > 0) {
        reanchor.push_back(newest_mark);
      }
      marked_epoch = decode_epoch_mark(newest_mark->payload).epoch;
    }
    for (const MutationRecord& rec : scan.records) {
      if (rec.kind != MutationKind::kEpochAccrue) continue;
      if (rec.seq > through_seq) continue;  // survives as-is
      if (rec.txn != 0 && committed.count(rec.txn) == 0) continue;
      if (decode_epoch_accrue(rec.payload).epoch <= marked_epoch) continue;
      reanchor.push_back(&rec);
    }
  }

  // Rewrite the survivors into a sibling file, re-chained from genesis,
  // then atomically swap it in. A crash anywhere in here leaves either
  // the old complete log or the new complete log — never a mix.
  const std::string tmp = path_ + ".truncate.tmp";
  const int tfd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (tfd < 0) throw_io("cannot open", tmp);
  try {
    write_all(tfd, reinterpret_cast<const std::uint8_t*>(kMagic), kMagicSize,
              tmp);
    Bytes tip(kDigestSize, 0);
    const auto write_rec = [&](std::uint64_t seq, std::uint64_t txn,
                               MutationKind kind, const Bytes& payload) {
      const Bytes frame = encode_frame(seq, txn, kind, payload);
      const Bytes digest = chain_digest(tip, frame);
      const Bytes image = encode_record_image(frame, digest);
      write_all(tfd, image.data(), image.size(), tmp);
      tip = digest;
    };
    for (const MutationRecord& rec : scan.records) {
      if (rec.seq <= through_seq) continue;
      write_rec(rec.seq, rec.txn, rec.kind, rec.payload);
    }
    for (const MutationRecord* rec : reanchor) {
      const std::uint64_t seq = ++counter_;
      write_rec(seq, 0, rec->kind, rec->payload);
      tail_seq_ = seq;
    }
    if (::fsync(tfd) != 0) throw_io("fsync failed on", tmp);
    ::close(tfd);
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
      throw_io("rename failed for", tmp);
    }
    const int nfd = ::open(path_.c_str(), O_WRONLY | O_APPEND, 0644);
    if (nfd < 0) throw_io("cannot reopen", path_);
    ::close(fd_);
    fd_ = nfd;
    tip_digest_ = std::move(tip);
    unsynced_ = 0;
    metrics().truncates->add();
  } catch (...) {
    ::close(tfd);
    throw;
  }
}

std::uint64_t FileJournal::last_seq() const {
  std::lock_guard lock(mu_);
  return tail_seq_;
}

std::optional<std::uint64_t> FileJournal::last_epoch() const {
  std::lock_guard lock(mu_);
  return last_epoch_;
}

std::uint64_t FileJournal::appended_records() const {
  std::lock_guard lock(mu_);
  return appended_;
}

// ---------------------------------------------------------------------
// Record payload codecs

namespace {

[[noreturn]] void throw_decode(const char* kind) {
  throw MarketError(MarketErrc::kMalformedMessage,
                    std::string("journal record: malformed ") + kind +
                        " payload");
}

}  // namespace

Bytes encode(const OpenAccountRecord& rec) {
  Writer w;
  w.put_string(rec.identity);
  w.put_string(rec.aid);
  return w.take();
}

OpenAccountRecord decode_open_account(const Bytes& payload) {
  try {
    Reader r(payload);
    OpenAccountRecord rec;
    rec.identity = r.get_string();
    rec.aid = r.get_string();
    if (!r.exhausted()) throw_decode("open_account");
    return rec;
  } catch (const MarketError&) {
    throw;
  } catch (const std::exception&) {
    throw_decode("open_account");
  }
}

Bytes encode(const CreditRecord& rec) {
  Writer w;
  w.put_string(rec.aid);
  w.put_u64(static_cast<std::uint64_t>(rec.amount));  // two's complement
  w.put_u64(rec.time);
  return w.take();
}

CreditRecord decode_credit(const Bytes& payload) {
  try {
    Reader r(payload);
    CreditRecord rec;
    rec.aid = r.get_string();
    rec.amount = static_cast<std::int64_t>(r.get_u64());
    rec.time = r.get_u64();
    if (!r.exhausted()) throw_decode("credit");
    return rec;
  } catch (const MarketError&) {
    throw;
  } catch (const std::exception&) {
    throw_decode("credit");
  }
}

namespace {

void put_marks(Writer& w, const std::vector<SerialMark>& marks) {
  w.put_u64(marks.size());
  for (const SerialMark& mark : marks) {
    w.put_u64(mark.depth);
    w.put_bytes(mark.serial);
  }
}

std::vector<SerialMark> get_marks(Reader& r) {
  const std::uint64_t n = r.get_u64();
  if (n > (1u << 20)) throw_decode("dec_spend_mark");  // hostile count
  std::vector<SerialMark> marks;
  marks.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    SerialMark mark;
    mark.depth = r.get_u64();
    mark.serial = r.get_bytes();
    marks.push_back(std::move(mark));
  }
  return marks;
}

}  // namespace

Bytes encode(const DecSpendMarkRecord& rec) {
  Writer w;
  put_marks(w, rec.revealed);
  put_marks(w, rec.spent);
  return w.take();
}

DecSpendMarkRecord decode_dec_spend_mark(const Bytes& payload) {
  try {
    Reader r(payload);
    DecSpendMarkRecord rec;
    rec.revealed = get_marks(r);
    rec.spent = get_marks(r);
    if (!r.exhausted()) throw_decode("dec_spend_mark");
    return rec;
  } catch (const MarketError&) {
    throw;
  } catch (const std::exception&) {
    throw_decode("dec_spend_mark");
  }
}

Bytes encode(const IdemReplyRecord& rec) {
  Writer w;
  w.put_bytes(rec.key);
  w.put_bytes(rec.reply);
  return w.take();
}

IdemReplyRecord decode_idem_reply(const Bytes& payload) {
  try {
    Reader r(payload);
    IdemReplyRecord rec;
    rec.key = r.get_bytes();
    rec.reply = r.get_bytes();
    if (!r.exhausted()) throw_decode("idem_reply");
    return rec;
  } catch (const MarketError&) {
    throw;
  } catch (const std::exception&) {
    throw_decode("idem_reply");
  }
}

Bytes encode(const EpochMarkRecord& rec) {
  Writer w;
  w.put_u64(rec.epoch);
  w.put_u64(rec.time);
  return w.take();
}

EpochMarkRecord decode_epoch_mark(const Bytes& payload) {
  try {
    Reader r(payload);
    EpochMarkRecord rec;
    rec.epoch = r.get_u64();
    rec.time = r.get_u64();
    if (!r.exhausted()) throw_decode("epoch_mark");
    return rec;
  } catch (const MarketError&) {
    throw;
  } catch (const std::exception&) {
    throw_decode("epoch_mark");
  }
}

Bytes encode(const EpochAccrueRecord& rec) {
  Writer w;
  w.put_string(rec.aid);
  w.put_u64(rec.value);
  w.put_u64(rec.epoch);
  w.put_u64(rec.time);
  return w.take();
}

EpochAccrueRecord decode_epoch_accrue(const Bytes& payload) {
  try {
    Reader r(payload);
    EpochAccrueRecord rec;
    rec.aid = r.get_string();
    rec.value = r.get_u64();
    rec.epoch = r.get_u64();
    rec.time = r.get_u64();
    if (!r.exhausted()) throw_decode("epoch_accrue");
    return rec;
  } catch (const MarketError&) {
    throw;
  } catch (const std::exception&) {
    throw_decode("epoch_accrue");
  }
}

}  // namespace ppms::storage
