#include "market/epoch.h"

#include <limits>
#include <utility>
#include <vector>

#include "market/error.h"
#include "obs/metrics.h"

namespace ppms {

namespace {

// Registry handles for the market.epoch.* series, resolved once (same
// discipline as the journal's JournalMetrics).
struct EpochMetrics {
  obs::Counter* accruals;
  obs::Counter* closes;
  obs::Counter* netted_accounts;
  obs::Counter* netted_value;
  obs::Histogram* close_lat;

  EpochMetrics()
      : accruals(&obs::counter("market.epoch.accruals")),
        closes(&obs::counter("market.epoch.closes")),
        netted_accounts(&obs::counter("market.epoch.netted_accounts")),
        netted_value(&obs::counter("market.epoch.netted_value")),
        close_lat(&obs::histogram("market.epoch.close")) {}
};

EpochMetrics& metrics() {
  static EpochMetrics m;
  return m;
}

constexpr std::uint64_t kMaxPending =
    static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max());

}  // namespace

void EpochAccumulator::attach_journal(storage::LedgerJournal* journal) {
  std::lock_guard lock(mu_);
  journal_ = journal;
}

std::uint64_t EpochAccumulator::current_epoch() const {
  std::lock_guard lock(mu_);
  return last_closed_ + 1;
}

std::uint64_t EpochAccumulator::last_closed() const {
  std::lock_guard lock(mu_);
  return last_closed_;
}

void EpochAccumulator::accrue(const std::string& aid, std::uint64_t value,
                              std::uint64_t time) {
  std::lock_guard lock(mu_);
  const std::uint64_t epoch = last_closed_ + 1;
  Pending& entry = pending_[aid];
  // Cap the pending sum (and the whole window's total) at INT64_MAX so
  // the net credit is always representable in the signed ledger; checked
  // BEFORE journaling so a rejected accrual leaves no trace. The erase
  // below keeps a freshly-created zero entry from lingering.
  if (value > kMaxPending - entry.value || value > kMaxPending - total_) {
    if (entry.coins == 0) pending_.erase(aid);
    throw MarketError(MarketErrc::kInvalidAmount,
                      "EpochAccumulator: pending sum for " + aid +
                          " would exceed INT64_MAX");
  }
  if (journal_ != nullptr) {
    journal_->append(
        storage::MutationKind::kEpochAccrue,
        storage::encode(storage::EpochAccrueRecord{aid, value, epoch, time}));
  }
  entry.value += value;
  entry.coins += 1;
  entry.epoch = epoch;
  total_ += value;
  metrics().accruals->add();
}

EpochAccumulator::CloseStats EpochAccumulator::close(VBank& vbank,
                                                     std::uint64_t time) {
  obs::ScopedTimer timer(*metrics().close_lat);
  std::lock_guard lock(mu_);
  CloseStats stats;
  stats.epoch = last_closed_ + 1;
  // One transaction for the whole close: every net credit plus the
  // window anchor recover together or not at all — a crash mid-close
  // leaves the accruals pending and the window re-closable.
  storage::JournalScope txn(journal_);
  for (const auto& [aid, entry] : pending_) {
    vbank.credit(aid, entry.value, time);
    ++stats.accounts;
    stats.value += entry.value;
    stats.coins += entry.coins;
  }
  if (journal_ != nullptr) {
    journal_->append(
        storage::MutationKind::kEpochMark,
        storage::encode(storage::EpochMarkRecord{stats.epoch, time}));
  }
  pending_.clear();
  total_ = 0;
  last_closed_ = stats.epoch;
  metrics().closes->add();
  metrics().netted_accounts->add(stats.accounts);
  metrics().netted_value->add(stats.value);
  return stats;
}

std::uint64_t EpochAccumulator::pending_value(const std::string& aid) const {
  std::lock_guard lock(mu_);
  const auto it = pending_.find(aid);
  return it == pending_.end() ? 0 : it->second.value;
}

std::uint64_t EpochAccumulator::pending_total() const {
  std::lock_guard lock(mu_);
  return total_;
}

std::size_t EpochAccumulator::pending_accounts() const {
  std::lock_guard lock(mu_);
  return pending_.size();
}

void EpochAccumulator::restore_accrual(const std::string& aid,
                                       std::uint64_t value,
                                       std::uint64_t epoch) {
  std::lock_guard lock(mu_);
  Pending& entry = pending_[aid];
  entry.value += value;
  entry.coins += 1;
  entry.epoch = epoch;
  total_ += value;
}

void EpochAccumulator::restore_epoch(std::uint64_t epoch) {
  std::lock_guard lock(mu_);
  if (epoch > last_closed_) last_closed_ = epoch;
  // The mark's close settled every accrual in its window and earlier;
  // later-window accruals (re-anchored records can replay before the
  // mark that precedes them logically) stay pending.
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->second.epoch <= epoch) {
      total_ -= it->second.value;
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace ppms
