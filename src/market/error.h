// Typed error taxonomy for the market layer.
//
// Every failure that VBank, DecBank or the PPMSdec/PPMSpbs market entry
// points report by throwing is a `MarketError` carrying a `MarketErrc`
// code. Callers (and tests) branch on the code, never on the what()
// string; the string stays free to carry human-readable diagnostics.
// `MarketError` derives from std::runtime_error so pre-existing
// catch(const std::exception&) / catch(const std::runtime_error&) sites
// keep working across the migration.
#pragma once

#include <stdexcept>
#include <string>

namespace ppms {

enum class MarketErrc {
  // Fiat ledger (VBank).
  kDuplicateAccount,    ///< identity already holds its one account
  kUnknownAccount,      ///< AID never issued by this bank
  kInsufficientFunds,   ///< debit/transfer beyond the balance
  kInvalidAmount,       ///< amount not representable / balance overflow
  // Protocol entry points (PpmsDecMarket / PpmsPbsMarket).
  kPaymentOutOfRange,   ///< job payment w outside [1, 2^L]
  kProtocolOrder,       ///< step invoked before its prerequisite
  kUnknownJob,          ///< job id not on the bulletin board
  kWithdrawRejected,    ///< MA rejected the commitment proof
  kWalletExhausted,     ///< wallet cannot cover the payment
  kSignatureRejected,   ///< a party rejected a protocol signature
  kDegenerateBlinding,  ///< PBS info exponent not invertible
  // Transport / scheduling (fault-injected delivery, market/faults.h).
  kTimeout,             ///< retries exhausted without a reply
  kMalformedMessage,    ///< envelope or message failed to parse cleanly
  kInvalidSchedule,     ///< scheduler delay range inverted or overflowing
  // Staged server (server/server.h).
  kOverloaded,          ///< admission control: ingress queue saturated
  // DEC settlement / durable storage (market/outcome.h, src/storage/).
  kSpendRejected,       ///< spend or certificate verification failed
  kDoubleSpend,         ///< a revealed serial is already on file
  kSnapshotContention,  ///< snapshot writer never saw a quiescent journal
  kEpochOutOfOrder,     ///< epoch mark below the newest one on record
};

/// Stable identifier for a code ("insufficient_funds", ...), used in
/// diagnostics and logs.
const char* market_errc_name(MarketErrc code);

class MarketError : public std::runtime_error {
 public:
  MarketError(MarketErrc code, const std::string& detail);

  MarketErrc code() const noexcept { return code_; }

 private:
  MarketErrc code_;
};

}  // namespace ppms
