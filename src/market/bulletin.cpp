#include "market/bulletin.h"

#include "obs/metrics.h"

namespace ppms {

std::uint64_t BulletinBoard::publish(JobProfile profile) {
  obs::counter("market.bulletin.published").add();
  std::lock_guard lock(mu_);
  profile.job_id = jobs_.size();
  jobs_.push_back(std::move(profile));
  return jobs_.back().job_id;
}

std::optional<JobProfile> BulletinBoard::get(std::uint64_t job_id) const {
  std::lock_guard lock(mu_);
  if (job_id >= jobs_.size()) return std::nullopt;
  return jobs_[job_id];
}

std::vector<JobProfile> BulletinBoard::list() const {
  std::lock_guard lock(mu_);
  return jobs_;
}

std::size_t BulletinBoard::size() const {
  std::lock_guard lock(mu_);
  return jobs_.size();
}

}  // namespace ppms
