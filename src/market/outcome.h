// SettleOutcome — the one typed result every deposit surface returns.
//
// Before this type the deposit path answered through a mix of shapes:
// DecBank handed back a {bool, value, string} DepositResult, the staged
// server wrapped it in its own DepositReply, admission control signalled
// overload by THROWING kOverloaded, and error codes travelled only in
// free-form reason strings. SettleOutcome collapses all of that into one
// value with four statuses:
//
//   kAccepted   — the coin settled and the account was credited `value`;
//   kReplayed   — an idempotent redelivery: the ORIGINAL outcome is
//                 repeated verbatim (value/errc/reason are the original
//                 processing's), only the status marks it second-hand;
//   kRejected   — settlement refused; `errc` says why in taxonomy terms
//                 (kDoubleSpend, kSpendRejected, kUnknownAccount, ...)
//                 and `reason` carries the human diagnostic;
//   kOverloaded — admission control shed the request before it entered
//                 the pipeline; retry after backoff. Returned, not
//                 thrown: overload is an expected steady-state answer
//                 under load, not an exceptional condition.
//
// `accepted()` is the question callers actually ask ("did money move?"),
// and it treats a replayed acceptance as accepted — exactly-once
// semantics mean the replay IS the original answer.
//
// The serialized form is what the IdempotencyStore caches and the
// journal persists (kIdemReply payloads), so the wire layout is part of
// the WAL format: append fields only, never reorder.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "market/error.h"
#include "util/bytes.h"

namespace ppms {

enum class SettleStatus : std::uint8_t {
  kAccepted = 0,
  kReplayed = 1,
  kRejected = 2,
  kOverloaded = 3,
};

/// Stable identifier ("accepted", ...) for diagnostics and logs.
const char* settle_status_name(SettleStatus status);

struct SettleOutcome {
  SettleStatus status = SettleStatus::kRejected;
  std::uint64_t value = 0;            ///< credited coin value when accepted
  std::optional<MarketErrc> errc;     ///< taxonomy code when not accepted
  std::string reason;                 ///< human diagnostic

  /// Did this deposit (originally or via replay) credit the account?
  bool accepted() const {
    return status == SettleStatus::kAccepted ||
           (status == SettleStatus::kReplayed && !errc.has_value());
  }
  bool replayed() const { return status == SettleStatus::kReplayed; }
  bool overloaded() const { return status == SettleStatus::kOverloaded; }

  static SettleOutcome ok(std::uint64_t value);
  static SettleOutcome rejected(MarketErrc code, std::string reason);
  static SettleOutcome overload(std::string reason);

  Bytes serialize() const;
  /// Throws MarketError(kMalformedMessage) on framing damage.
  static SettleOutcome deserialize(const Bytes& wire);
  /// Deserialize a cached reply and mark it as an idempotent replay.
  static SettleOutcome replay_of(const Bytes& stored);
};

}  // namespace ppms
