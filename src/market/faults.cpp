#include "market/faults.h"

#include <algorithm>
#include <utility>

#include "hash/sha256.h"
#include "market/error.h"
#include "obs/metrics.h"

namespace ppms {

namespace {

// Registry handles for the market.faults.* series, resolved once.
struct FaultCounters {
  obs::Counter* dropped;
  obs::Counter* duplicated;
  obs::Counter* reordered;
  obs::Counter* corrupted;
  obs::Counter* delayed;
  obs::Counter* retries;
  obs::Counter* timeouts;
  obs::Counter* idem_hits;
  obs::Counter* rejected;

  FaultCounters()
      : dropped(&obs::counter("market.faults.dropped")),
        duplicated(&obs::counter("market.faults.duplicated")),
        reordered(&obs::counter("market.faults.reordered")),
        corrupted(&obs::counter("market.faults.corrupted")),
        delayed(&obs::counter("market.faults.delayed")),
        retries(&obs::counter("market.faults.retries")),
        timeouts(&obs::counter("market.faults.timeouts")),
        idem_hits(&obs::counter("market.faults.idem_hits")),
        rejected(&obs::counter("market.faults.rejected")) {}
};

FaultCounters& fault_counters() {
  static FaultCounters counters;
  return counters;
}

// The digest input: every envelope field in serialization order. Shared by
// serialize and deserialize so the two sides can never disagree on
// framing.
Bytes envelope_prefix(const Envelope& env) {
  Writer w;
  w.put_u64(env.session_id);
  w.put_u64(env.seq);
  w.put_bytes(env.idem_key);
  w.put_bytes(env.payload);
  return w.take();
}

// Reply payloads carry an ok flag: `true || result` for success,
// `false || code || detail` for a MarketError raised by the handler.
Bytes encode_reply(const ReliableLink::ServerHandler& server,
                   const Bytes& request) {
  Writer out;
  try {
    const Bytes result = server(request);
    out.put_bool(true);
    out.put_bytes(result);
  } catch (const MarketError& e) {
    out.put_bool(false);
    out.put_u32(static_cast<std::uint32_t>(e.code()));
    out.put_string(e.what());
  } catch (const std::exception& e) {
    out.put_bool(false);
    out.put_u32(static_cast<std::uint32_t>(MarketErrc::kMalformedMessage));
    out.put_string(e.what());
  }
  return out.take();
}

Bytes decode_reply(const Bytes& reply) {
  Reader r(reply);
  const bool ok = r.get_bool();
  if (ok) {
    Bytes result = r.get_bytes();
    if (!r.exhausted()) {
      throw MarketError(MarketErrc::kMalformedMessage,
                        "reply: trailing garbage");
    }
    return result;
  }
  const auto code = static_cast<MarketErrc>(r.get_u32());
  const std::string detail = r.get_string();
  if (!r.exhausted()) {
    throw MarketError(MarketErrc::kMalformedMessage,
                      "error reply: trailing garbage");
  }
  throw MarketError(code, detail);
}

// Deliver `wire` along hops[i..]: synchronous legs chain inline; a delayed
// leg re-enters here at its delivery tick and continues from the next hop.
// The shared_ptrs keep route and sink alive for parked continuations.
void route_deliver(FaultyChannel& channel,
                   std::shared_ptr<const std::vector<Hop>> hops,
                   std::size_t index, Bytes wire,
                   std::shared_ptr<const std::function<void(Bytes)>> sink) {
  FaultyChannel* ch = &channel;
  for (; index < hops->size(); ++index) {
    auto late = [ch, hops, index, sink](Bytes delivered) {
      route_deliver(*ch, hops, index + 1, std::move(delivered), sink);
    };
    auto delivered =
        channel.transmit((*hops)[index].from, (*hops)[index].to, wire,
                         std::move(late));
    if (!delivered) return;  // dropped, or in flight toward a later tick
    wire = std::move(*delivered);
  }
  (*sink)(std::move(wire));
}

}  // namespace

void FaultPlan::validate() const {
  for (const double p : {drop, duplicate, reorder, corrupt, delay}) {
    if (!(p >= 0.0 && p <= 1.0)) {
      throw MarketError(MarketErrc::kInvalidSchedule,
                        "FaultPlan: probability outside [0, 1]");
    }
  }
  if (min_delay > max_delay) {
    throw MarketError(MarketErrc::kInvalidSchedule,
                      "FaultPlan: min_delay > max_delay");
  }
}

Bytes Envelope::serialize() const {
  Bytes out = envelope_prefix(*this);
  Writer tail;
  tail.put_bytes(sha256(out));
  const Bytes digest = tail.take();
  out.insert(out.end(), digest.begin(), digest.end());
  return out;
}

Envelope Envelope::deserialize(const Bytes& wire) {
  try {
    Reader r(wire);
    Envelope env;
    env.session_id = r.get_u64();
    env.seq = r.get_u64();
    env.idem_key = r.get_bytes();
    env.payload = r.get_bytes();
    const Bytes digest = r.get_bytes();
    if (!r.exhausted()) {
      throw MarketError(MarketErrc::kMalformedMessage,
                        "Envelope: trailing garbage");
    }
    if (digest != sha256(envelope_prefix(env))) {
      throw MarketError(MarketErrc::kMalformedMessage,
                        "Envelope: digest mismatch");
    }
    return env;
  } catch (const MarketError&) {
    throw;
  } catch (const std::exception&) {
    throw MarketError(MarketErrc::kMalformedMessage,
                      "Envelope: truncated or malformed frame");
  }
}

void Mailbox::put(std::uint64_t seq, Bytes payload) {
  std::lock_guard lock(mu_);
  slots_.emplace(seq, std::move(payload));
}

std::optional<Bytes> Mailbox::take(std::uint64_t seq) {
  std::lock_guard lock(mu_);
  const auto it = slots_.find(seq);
  if (it == slots_.end()) return std::nullopt;
  Bytes payload = std::move(it->second);
  // Everything at or below the completed sequence number belongs to
  // finished calls; late duplicates of them would otherwise pile up.
  slots_.erase(slots_.begin(), std::next(it));
  return payload;
}

FaultyChannel::FaultyChannel(TrafficMeter& traffic,
                             LogicalScheduler& scheduler, FaultPlan plan)
    : traffic_(traffic),
      scheduler_(scheduler),
      plan_(plan),
      rng_(plan.seed) {
  plan_.validate();
}

bool FaultyChannel::draw(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  constexpr std::uint64_t kScale = 1u << 30;
  return rng_.uniform(kScale) <
         static_cast<std::uint64_t>(p * static_cast<double>(kScale));
}

void FaultyChannel::corrupt_in_place(Bytes& wire) {
  if (wire.empty()) return;
  const std::uint64_t flips = 1 + rng_.uniform(3);
  for (std::uint64_t i = 0; i < flips; ++i) {
    wire[rng_.uniform(wire.size())] ^=
        static_cast<std::uint8_t>(1u << rng_.uniform(8));
  }
}

void FaultyChannel::park(std::uint64_t delay, Bytes wire,
                         Delivery deliver) {
  const std::uint64_t tick = scheduler_.now() + delay;
  auto& batch = pending_[tick];
  batch.push_back(Parked{std::move(wire), std::move(deliver)});
  if (batch.size() == 1) {
    scheduler_.schedule_after(delay, [this, tick] { flush(tick); });
  }
}

void FaultyChannel::flush(std::uint64_t tick) {
  FaultCounters& counters = fault_counters();
  std::vector<Parked> batch;
  {
    std::lock_guard lock(mu_);
    const auto it = pending_.find(tick);
    if (it == pending_.end()) return;
    batch.swap(it->second);
    pending_.erase(it);
    // Reorder-within-tick: a gated Fisher-Yates pass over the batch, so
    // same-tick deliveries arrive in a PRNG-drawn order instead of send
    // order.
    for (std::size_t i = batch.size(); i > 1; --i) {
      if (!draw(plan_.reorder)) continue;
      const std::size_t j = rng_.uniform(i);
      if (j != i - 1) {
        std::swap(batch[i - 1], batch[j]);
        counters.reordered->add();
      }
    }
  }
  // Handlers run outside the lock: a delivery may send (and re-park)
  // further messages through this same channel.
  for (Parked& parked : batch) {
    parked.deliver(std::move(parked.wire));
  }
}

std::optional<Bytes> FaultyChannel::transmit(Role from, Role to,
                                             const Bytes& wire,
                                             Delivery late) {
  // The meter sees every attempt: retransmissions are real traffic, which
  // is exactly what the Table II accounting should show under faults.
  Bytes delivered = traffic_.send(from, to, wire);
  if (!plan_.enabled()) return delivered;

  FaultCounters& counters = fault_counters();
  std::lock_guard lock(mu_);
  const bool corrupt = draw(plan_.corrupt);
  const bool duplicate = draw(plan_.duplicate);
  const bool delayed = draw(plan_.delay);
  const bool dropped = draw(plan_.drop);
  if (corrupt) {
    corrupt_in_place(delivered);
    counters.corrupted->add();
  }
  const std::uint64_t span = plan_.max_delay - plan_.min_delay + 1;
  if (duplicate) {
    counters.duplicated->add();
    park(plan_.min_delay + rng_.uniform(span), delivered, late);
  }
  if (dropped) {
    counters.dropped->add();
    return std::nullopt;
  }
  if (delayed) {
    counters.delayed->add();
    park(plan_.min_delay + rng_.uniform(span), std::move(delivered),
         std::move(late));
    return std::nullopt;
  }
  return delivered;
}

ReliableLink::ReliableLink(TrafficMeter& traffic,
                           LogicalScheduler& scheduler, FaultPlan plan,
                           RetryPolicy policy)
    : channel_(traffic, scheduler, plan),
      scheduler_(scheduler),
      policy_(policy) {}

SessionLink ReliableLink::new_session() {
  SessionLink link;
  link.session_id = next_session_.fetch_add(1, std::memory_order_relaxed);
  link.mailbox = std::make_shared<Mailbox>();
  return link;
}

void ReliableLink::forward(Role from, Role to, const Bytes& wire) {
  channel_.transmit(from, to, wire, [](Bytes) {});
}

Bytes ReliableLink::call(SessionLink& link, std::vector<Hop> forward,
                         std::vector<Hop> reverse, const Bytes& request,
                         const Bytes& idem_salt,
                         const ServerHandler& server) {
  FaultCounters& counters = fault_counters();
  const bool faulty = channel_.plan().enabled();
  const std::uint64_t seq = link.next_seq++;

  Envelope env;
  env.session_id = link.session_id;
  env.seq = seq;
  env.payload = request;
  {
    // The key is stable across retransmissions: it hashes the session, the
    // sequence number, the caller's salt (e.g. a coin serial) and the
    // request itself.
    Writer key;
    key.put_u64(link.session_id);
    key.put_u64(seq);
    key.put_bytes(idem_salt);
    key.put_bytes(request);
    env.idem_key = sha256(key.data());
  }
  const Bytes wire = env.serialize();

  auto fwd = std::make_shared<const std::vector<Hop>>(std::move(forward));
  auto rev = std::make_shared<const std::vector<Hop>>(std::move(reverse));
  std::shared_ptr<Mailbox> mailbox = link.mailbox;
  FaultyChannel* channel = &channel_;
  IdempotencyStore* store = &store_;

  // Reply side: envelope-validate and file in the session mailbox. The
  // retry loop (or a later pump) picks it up by sequence number.
  auto reply_sink = std::make_shared<const std::function<void(Bytes)>>(
      [mailbox](Bytes reply_wire) {
        try {
          Envelope reply = Envelope::deserialize(reply_wire);
          mailbox->put(reply.seq, std::move(reply.payload));
        } catch (const MarketError&) {
          fault_counters().rejected->add();
        }
      });

  // Server side: envelope-validate, dedup by idempotency key, process at
  // most once, send the (possibly cached) reply back along the reverse
  // route. Runs inline for synchronous deliveries and from scheduler
  // events for late ones.
  auto server_sink = std::make_shared<const std::function<void(Bytes)>>(
      [channel, store, server, fwd, rev, reply_sink, faulty](
          Bytes request_wire) {
        Envelope seen;
        try {
          seen = Envelope::deserialize(request_wire);
        } catch (const MarketError&) {
          fault_counters().rejected->add();
          return;  // corruption behaves exactly like loss
        }
        Bytes reply;
        if (faulty) {
          if (auto cached = store->find(seen.idem_key)) {
            fault_counters().idem_hits->add();
            reply = std::move(*cached);
          } else {
            reply = encode_reply(server, seen.payload);
            store->record(seen.idem_key, reply);
          }
        } else {
          reply = encode_reply(server, seen.payload);
        }
        Envelope out;
        out.session_id = seen.session_id;
        out.seq = seen.seq;
        out.idem_key = seen.idem_key;
        out.payload = std::move(reply);
        route_deliver(*channel, rev, 0, out.serialize(), reply_sink);
      });

  const std::size_t attempts = faulty ? policy_.max_attempts : 1;
  for (std::size_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) counters.retries->add();
    if (auto reply = mailbox->take(seq)) return decode_reply(*reply);
    route_deliver(channel_, fwd, 0, wire, server_sink);
    if (auto reply = mailbox->take(seq)) return decode_reply(*reply);
    if (!faulty) break;
    const std::size_t shift = std::min<std::size_t>(attempt, 32);
    const std::uint64_t timeout = std::min(
        policy_.max_timeout, policy_.base_timeout << shift);
    scheduler_.run_until(scheduler_.now() + timeout);
    if (auto reply = mailbox->take(seq)) return decode_reply(*reply);
  }
  if (faulty) counters.timeouts->add();
  throw MarketError(MarketErrc::kTimeout,
                    "reliable call: retries exhausted without a reply");
}

}  // namespace ppms
