// Deterministic fault-injected transport and the reliable, idempotent
// session layer both market mechanisms run on.
//
// The paper assumes a lossless synchronous channel between JO/SP and the
// MA. A market serving real traffic gets a lossy, reordering, duplicating
// one, and redelivery is exactly where naive e-cash deposit handling turns
// into a double spend. This module supplies:
//
//  * FaultPlan — per-message drop / duplicate / reorder-within-tick /
//    corrupt / delay probabilities, seeded so a whole chaos run is
//    reproducible bit for bit;
//  * FaultyChannel — wraps TrafficMeter::send and composes with the
//    LogicalScheduler: delayed and duplicated deliveries fire at
//    PRNG-drawn future ticks, same-tick deliveries may be reordered;
//  * Envelope — the message frame every protocol step travels in: session
//    id, sequence number, idempotency key and a SHA-256 digest, so any
//    corruption is detected at parse time and redeliveries are
//    recognizable;
//  * IdempotencyStore — receiver-side dedup: the first processing of an
//    envelope caches its reply under the idempotency key, every
//    redelivery replays the cached reply instead of re-running the
//    handler (at-least-once delivery + idempotent handlers =
//    effectively-once settlement);
//  * ReliableLink::call — a logical-time request/response with bounded
//    exponential-backoff retry. A waiting session pumps
//    LogicalScheduler::run_until, so in-flight (delayed) messages really
//    arrive while it waits; exhausted retries surface
//    MarketError(kTimeout) instead of hanging.
//
// Everything is deterministic under fixed seeds: the channel draws fates
// from its own SecureRandom stream, never from session streams, so a
// faulty run performs the identical cryptography as its lossless twin and
// the final ledgers can be compared balance for balance
// (tests/robustness/chaos_test.cpp).
//
// Fault counters land in the obs registry under market.faults.* and are
// exported by both the Prometheus and JSON exporters (OBSERVABILITY.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "market/channel.h"
#include "market/scheduler.h"
#include "storage/idempotency.h"
#include "util/rng.h"
#include "util/serial.h"

namespace ppms {

/// Per-message fault probabilities (each in [0, 1]) plus the tick range
/// delayed/duplicated deliveries are deferred into. Default-constructed
/// plans are lossless and disable the whole machinery.
struct FaultPlan {
  double drop = 0.0;       ///< message vanishes
  double duplicate = 0.0;  ///< an extra copy arrives at a later tick
  double reorder = 0.0;    ///< same-tick deliveries may swap order
  double corrupt = 0.0;    ///< random bytes flipped in the delivered copy
  double delay = 0.0;      ///< delivery deferred to a later tick
  std::uint64_t min_delay = 1;  ///< earliest deferred-delivery delay
  std::uint64_t max_delay = 8;  ///< latest deferred-delivery delay
  std::uint64_t seed = 0;       ///< channel PRNG seed (fate draws only)

  bool enabled() const {
    return drop > 0 || duplicate > 0 || reorder > 0 || corrupt > 0 ||
           delay > 0;
  }

  /// Throws MarketError (kInvalidSchedule) on probabilities outside
  /// [0, 1] or an inverted delay range.
  void validate() const;
};

/// Retry discipline for ReliableLink::call: attempt, wait base_timeout
/// ticks, retry, doubling the wait up to max_timeout, at most max_attempts
/// sends. Exhaustion throws MarketError(kTimeout).
struct RetryPolicy {
  std::size_t max_attempts = 8;
  std::uint64_t base_timeout = 8;    ///< logical ticks before first retry
  std::uint64_t max_timeout = 512;   ///< backoff cap, ticks
};

/// The wire frame of every protocol message: routing identifiers, an
/// idempotency key stable across retransmissions, the payload, and a
/// SHA-256 digest over all of it. Deserialize rejects framing damage,
/// digest mismatches and trailing garbage alike with
/// MarketError(kMalformedMessage), so a corrupted envelope is
/// indistinguishable from a lost one — exactly the at-least-once model the
/// retry layer assumes.
struct Envelope {
  std::uint64_t session_id = 0;
  std::uint64_t seq = 0;
  Bytes idem_key;
  Bytes payload;

  Bytes serialize() const;
  static Envelope deserialize(const Bytes& wire);
};

// IdempotencyStore moved to storage/idempotency.h (PR 8): the same reply
// cache now sits behind the journal-backed storage interface, so the
// in-memory map and the WAL-backed durable store share one API. The
// include below keeps every existing user of market/faults.h compiling
// unchanged.

/// Where late (delayed/duplicated) replies for one session land. The
/// retry loop checks it after every pump of the logical clock. Shared via
/// shared_ptr because delivery closures parked in the scheduler may
/// outlive the protocol step that created them.
class Mailbox {
 public:
  void put(std::uint64_t seq, Bytes payload);
  std::optional<Bytes> take(std::uint64_t seq);

 private:
  std::mutex mu_;
  std::map<std::uint64_t, Bytes> slots_;
};

/// Client-side reliable-session state, embedded in each protocol session
/// struct. Thread-confined like the session itself (only scheduler-driven
/// late deliveries touch the mailbox, which locks internally).
struct SessionLink {
  std::uint64_t session_id = 0;
  std::uint64_t next_seq = 0;
  std::shared_ptr<Mailbox> mailbox;
};

/// One directed transmission leg; a route is a vector of hops (e.g. the
/// PBS labor registration travels SP -> MA -> JO and back).
struct Hop {
  Role from;
  Role to;
};

/// Fault-drawing wrapper around TrafficMeter::send. Every transmit meters
/// its bytes (the wire carried them whatever happens next), then draws the
/// message's fate from the plan: delivered now (possibly corrupted),
/// dropped, or parked in the scheduler for a PRNG-drawn future tick.
/// Same-tick parked deliveries flush together and may be reordered.
/// Thread-safe; with a lossless plan the fast path is exactly the old
/// meter call.
class FaultyChannel {
 public:
  using Delivery = std::function<void(Bytes)>;

  FaultyChannel(TrafficMeter& traffic, LogicalScheduler& scheduler,
                FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// One delivery attempt. Returns the payload when it arrives
  /// synchronously; nullopt when it was dropped or is in flight (`late`
  /// fires at the delivery tick — it must be safe to run long after the
  /// caller returned).
  std::optional<Bytes> transmit(Role from, Role to, const Bytes& wire,
                                Delivery late);

 private:
  struct Parked {
    Bytes wire;
    Delivery deliver;
  };

  /// One uniform draw against probability p (locked by the caller).
  bool draw(double p);
  void corrupt_in_place(Bytes& wire);
  /// Park a delivery `delay` ticks out; first parker of a tick schedules
  /// the flush event.
  void park(std::uint64_t delay, Bytes wire, Delivery deliver);
  void flush(std::uint64_t tick);

  TrafficMeter& traffic_;
  LogicalScheduler& scheduler_;
  FaultPlan plan_;
  std::mutex mu_;  ///< guards rng_ and pending_
  SecureRandom rng_;
  std::map<std::uint64_t, std::vector<Parked>> pending_;
};

/// A market's transport context: the faulty channel, the receiver-side
/// idempotency store and the retry policy, plus session-id allocation.
/// Both PpmsDecMarket and PpmsPbsMarket own one and route every protocol
/// step through call().
class ReliableLink {
 public:
  /// MA-/receiver-side request processing: payload in, reply payload out.
  /// Application failures are thrown as MarketError and travel back to the
  /// caller as serialized error replies (cached like any reply, so a
  /// redelivered request replays the same error instead of re-running the
  /// handler).
  using ServerHandler = std::function<Bytes(const Bytes&)>;

  ReliableLink(TrafficMeter& traffic, LogicalScheduler& scheduler,
               FaultPlan plan, RetryPolicy policy);

  const FaultPlan& plan() const { return channel_.plan(); }
  FaultyChannel& channel() { return channel_; }
  IdempotencyStore& store() { return store_; }

  /// Fresh session identity with its own sequence space and mailbox.
  SessionLink new_session();

  /// Reliable request/response: wrap `request` in an Envelope, deliver it
  /// along `forward` hop by hop (each hop independently faulty), run
  /// `server` at the far end exactly once per idempotency key, and carry
  /// the reply back along `reverse` into the session mailbox. Retries with
  /// exponential backoff in logical time, pumping the scheduler while it
  /// waits; throws MarketError(kTimeout) when attempts are exhausted and
  /// rethrows server-side MarketErrors with their original codes.
  /// `idem_salt` folds extra identity into the key (deposits pass the coin
  /// serial, so the key is per-coin as well as per-message).
  Bytes call(SessionLink& link, std::vector<Hop> forward,
             std::vector<Hop> reverse, const Bytes& request,
             const Bytes& idem_salt, const ServerHandler& server);

  /// Fire-and-forget accounting leg (e.g. the MA echoing a pseudonym to
  /// the JO): metered and fault-drawn, but nobody waits for it.
  void forward(Role from, Role to, const Bytes& wire);

 private:
  FaultyChannel channel_;
  LogicalScheduler& scheduler_;
  IdempotencyStore store_;
  RetryPolicy policy_;
  std::atomic<std::uint64_t> next_session_{1};
};

}  // namespace ppms
