#include "market/error.h"

namespace ppms {

const char* market_errc_name(MarketErrc code) {
  switch (code) {
    case MarketErrc::kDuplicateAccount: return "duplicate_account";
    case MarketErrc::kUnknownAccount: return "unknown_account";
    case MarketErrc::kInsufficientFunds: return "insufficient_funds";
    case MarketErrc::kInvalidAmount: return "invalid_amount";
    case MarketErrc::kPaymentOutOfRange: return "payment_out_of_range";
    case MarketErrc::kProtocolOrder: return "protocol_order";
    case MarketErrc::kUnknownJob: return "unknown_job";
    case MarketErrc::kWithdrawRejected: return "withdraw_rejected";
    case MarketErrc::kWalletExhausted: return "wallet_exhausted";
    case MarketErrc::kSignatureRejected: return "signature_rejected";
    case MarketErrc::kDegenerateBlinding: return "degenerate_blinding";
    case MarketErrc::kTimeout: return "timeout";
    case MarketErrc::kMalformedMessage: return "malformed_message";
    case MarketErrc::kInvalidSchedule: return "invalid_schedule";
    case MarketErrc::kOverloaded: return "overloaded";
    case MarketErrc::kSpendRejected: return "spend_rejected";
    case MarketErrc::kDoubleSpend: return "double_spend";
    case MarketErrc::kSnapshotContention: return "snapshot_contention";
    case MarketErrc::kEpochOutOfOrder: return "epoch_out_of_order";
  }
  return "unknown";
}

MarketError::MarketError(MarketErrc code, const std::string& detail)
    : std::runtime_error("[" + std::string(market_errc_name(code)) + "] " +
                         detail),
      code_(code) {}

}  // namespace ppms
