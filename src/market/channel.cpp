#include "market/channel.h"

#include <sstream>

namespace ppms {

const Bytes& TrafficMeter::send(Role from, Role to, const Bytes& message) {
  std::lock_guard lock(mu_);
  sent_[static_cast<std::size_t>(from)] += message.size();
  received_[static_cast<std::size_t>(to)] += message.size();
  ++messages_;
  return message;
}

std::uint64_t TrafficMeter::bytes_sent(Role role) const {
  std::lock_guard lock(mu_);
  return sent_[static_cast<std::size_t>(role)];
}

std::uint64_t TrafficMeter::bytes_received(Role role) const {
  std::lock_guard lock(mu_);
  return received_[static_cast<std::size_t>(role)];
}

std::uint64_t TrafficMeter::message_count() const {
  std::lock_guard lock(mu_);
  return messages_;
}

std::uint64_t TrafficMeter::total_bytes() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const std::uint64_t s : sent_) total += s;
  return total;
}

void TrafficMeter::reset() {
  std::lock_guard lock(mu_);
  sent_.fill(0);
  received_.fill(0);
  messages_ = 0;
}

std::string TrafficMeter::report() const {
  std::lock_guard lock(mu_);
  std::ostringstream out;
  out << "role   in(bytes)  out(bytes)\n";
  for (const Role r : {Role::JobOwner, Role::Participant, Role::Admin}) {
    out << role_name(r) << "     "
        << received_[static_cast<std::size_t>(r)] << "  "
        << sent_[static_cast<std::size_t>(r)] << "\n";
  }
  std::uint64_t total = 0;
  for (const std::uint64_t s : sent_) total += s;
  out << "total  " << total << " bytes ("
      << static_cast<double>(total) / 1024.0 << " kb)\n";
  return out.str();
}

}  // namespace ppms
