#include "market/channel.h"

#include <sstream>

#include "obs/metrics.h"

namespace ppms {

namespace {

// Lowercase role slugs for metric names (role_name() is for tables).
const char* metric_role(std::size_t role) {
  switch (static_cast<Role>(role)) {
    case Role::None: return "none";
    case Role::JobOwner: return "jo";
    case Role::Participant: return "sp";
    case Role::Admin: return "ma";
  }
  return "none";
}

// Registry handles for the per-role byte gauges (Table II mirrored into
// the observability layer), resolved once.
struct TrafficGauges {
  obs::Gauge* sent[kRoleCount];
  obs::Gauge* received[kRoleCount];
  obs::Counter* messages;

  TrafficGauges() {
    for (std::size_t r = 0; r < kRoleCount; ++r) {
      const std::string slug = metric_role(r);
      sent[r] = &obs::gauge("market.traffic." + slug + ".sent_bytes");
      received[r] = &obs::gauge("market.traffic." + slug + ".recv_bytes");
    }
    messages = &obs::counter("market.traffic.messages");
  }
};

TrafficGauges& traffic_gauges() {
  static TrafficGauges gauges;
  return gauges;
}

}  // namespace

Bytes TrafficMeter::send(Role from, Role to, Bytes message) {
  TrafficGauges& gauges = traffic_gauges();
  gauges.sent[static_cast<std::size_t>(from)]->add(message.size());
  gauges.received[static_cast<std::size_t>(to)]->add(message.size());
  gauges.messages->add();
  std::lock_guard lock(mu_);
  sent_[static_cast<std::size_t>(from)] += message.size();
  received_[static_cast<std::size_t>(to)] += message.size();
  ++messages_;
  return message;
}

std::uint64_t TrafficMeter::bytes_sent(Role role) const {
  std::lock_guard lock(mu_);
  return sent_[static_cast<std::size_t>(role)];
}

std::uint64_t TrafficMeter::bytes_received(Role role) const {
  std::lock_guard lock(mu_);
  return received_[static_cast<std::size_t>(role)];
}

std::uint64_t TrafficMeter::message_count() const {
  std::lock_guard lock(mu_);
  return messages_;
}

std::uint64_t TrafficMeter::total_bytes() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const std::uint64_t s : sent_) total += s;
  return total;
}

void TrafficMeter::reset() {
  std::lock_guard lock(mu_);
  sent_.fill(0);
  received_.fill(0);
  messages_ = 0;
}

std::string TrafficMeter::report() const {
  std::lock_guard lock(mu_);
  std::ostringstream out;
  out << "role   in(bytes)  out(bytes)\n";
  for (const Role r : {Role::JobOwner, Role::Participant, Role::Admin}) {
    out << role_name(r) << "     "
        << received_[static_cast<std::size_t>(r)] << "  "
        << sent_[static_cast<std::size_t>(r)] << "\n";
  }
  std::uint64_t total = 0;
  for (const std::uint64_t s : sent_) total += s;
  out << "total  " << total << " bytes ("
      << static_cast<double>(total) / 1024.0 << " kb)\n";
  return out.str();
}

}  // namespace ppms
