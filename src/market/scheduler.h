// Deterministic logical-time event scheduler.
//
// The paper's deposit phase requires SPs to "wait a random period of time"
// between coin deposits so that deposit timing does not betray which
// payment a coin came from. Real waiting would make experiments
// non-reproducible and slow; this scheduler realizes the same behaviour in
// logical time: actors schedule closures at PRNG-drawn future ticks and
// run_all() executes them in time order. The bank stamps ledger entries
// with the scheduler clock, so the attack analyses see realistic
// interleavings.
//
// Concurrency: scheduling is thread-safe, and run_all(ThreadPool&) drains
// the queue tick by tick, running the events of one tick in parallel on
// the pool with a barrier before the next tick — cross-tick order is
// preserved and the single-threaded run_all() (insertion-order tie-break,
// fully deterministic) remains the mode the attack analyses use. Only one
// drain runs at a time; a second caller blocks until the first finishes
// and then drains whatever is left.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>

#include "util/rng.h"

namespace ppms {

class ThreadPool;

class LogicalScheduler {
 public:
  using Action = std::function<void()>;

  /// Current logical time (advances only while running events).
  std::uint64_t now() const { return now_.load(std::memory_order_acquire); }

  /// Schedule `action` at now() + delay. The scheduling thread's
  /// TaskContext (accounting role + trace position) is captured and
  /// reinstated around the deferred run, so a deposit closure's op counts
  /// and trace spans attribute to the session that scheduled it. Throws
  /// MarketError (kInvalidSchedule) when now() + delay would overflow the
  /// 64-bit clock.
  void schedule_after(std::uint64_t delay, Action action);

  /// Schedule at a uniformly random delay in [min_delay, max_delay].
  /// Throws MarketError (kInvalidSchedule) on an inverted range
  /// (min_delay > max_delay) or one whose width overflows, instead of
  /// drawing from a wrapped span.
  void schedule_random(SecureRandom& rng, std::uint64_t min_delay,
                       std::uint64_t max_delay, Action action);

  /// Run events in time order until the queue drains (events may schedule
  /// further events). Ties break in insertion order — fully deterministic.
  void run_all();

  /// Drain with same-tick parallelism: all events of the earliest tick are
  /// submitted to `pool` together and awaited before the next tick starts.
  /// Events of one tick may interleave arbitrarily; distinct ticks never
  /// overlap, so every ledger stamp equals the single-threaded drain's.
  void run_all(ThreadPool& pool);

  /// Run every event with time <= deadline (time order, seq tie-break) and
  /// advance now() to `deadline` — a bounded logical wait. Re-entrant: a
  /// running event may pump the clock forward while it waits for a delayed
  /// delivery (the retry loops in market/faults.h do exactly this). When
  /// another thread is mid-drain the call returns without running or
  /// advancing anything: the wait is then a pure timeout.
  void run_until(std::uint64_t deadline);

  std::size_t pending() const;

 private:
  struct Event {
    std::uint64_t time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  /// Pop every event sharing the earliest tick, in seq order, and advance
  /// now_ to that tick. Empty result means the queue is drained.
  std::vector<Event> pop_tick_batch();

  mutable std::mutex mu_;  ///< guards queue_ and next_seq_
  /// Serializes concurrent drains; recursive so an event may re-enter
  /// run_until on the draining thread (nested logical waits).
  std::recursive_mutex drain_mu_;
  std::atomic<std::uint64_t> now_{0};
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace ppms
