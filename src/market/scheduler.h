// Deterministic logical-time event scheduler.
//
// The paper's deposit phase requires SPs to "wait a random period of time"
// between coin deposits so that deposit timing does not betray which
// payment a coin came from. Real waiting would make experiments
// non-reproducible and slow; this scheduler realizes the same behaviour in
// logical time: actors schedule closures at PRNG-drawn future ticks and
// run_all() executes them in time order. The bank stamps ledger entries
// with the scheduler clock, so the attack analyses see realistic
// interleavings.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>

#include "util/rng.h"

namespace ppms {

class LogicalScheduler {
 public:
  using Action = std::function<void()>;

  /// Current logical time (advances only while running events).
  std::uint64_t now() const { return now_; }

  /// Schedule `action` at now() + delay. The scheduling thread's
  /// TaskContext (accounting role + trace position) is captured and
  /// reinstated around the deferred run, so a deposit closure's op counts
  /// and trace spans attribute to the session that scheduled it.
  void schedule_after(std::uint64_t delay, Action action);

  /// Schedule at a uniformly random delay in [min_delay, max_delay].
  void schedule_random(SecureRandom& rng, std::uint64_t min_delay,
                       std::uint64_t max_delay, Action action);

  /// Run events in time order until the queue drains (events may schedule
  /// further events). Ties break in insertion order — fully deterministic.
  void run_all();

  std::size_t pending() const { return queue_.size(); }

 private:
  struct Event {
    std::uint64_t time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  std::uint64_t now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace ppms
