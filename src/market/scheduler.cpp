#include "market/scheduler.h"

#include "obs/metrics.h"
#include "util/task_context.h"

namespace ppms {

void LogicalScheduler::schedule_after(std::uint64_t delay, Action action) {
  obs::counter("market.scheduler.scheduled").add();
  // Deferred actions run under the scheduling session's context so their
  // op counts and trace spans attribute to that session (the deposit
  // closures of both mechanisms go through here).
  queue_.push(Event{now_ + delay, next_seq_++,
                    [ctx = capture_task_context(),
                     action = std::move(action)] {
                      ScopedTaskContext as_scheduler(ctx);
                      action();
                    }});
}

void LogicalScheduler::schedule_random(SecureRandom& rng,
                                       std::uint64_t min_delay,
                                       std::uint64_t max_delay,
                                       Action action) {
  const std::uint64_t span = max_delay - min_delay + 1;
  schedule_after(min_delay + rng.uniform(span), std::move(action));
}

void LogicalScheduler::run_all() {
  static obs::Counter& executed = obs::counter("market.scheduler.executed");
  while (!queue_.empty()) {
    // Copy out before pop: the action may schedule more events.
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    event.action();
    executed.add();
  }
}

}  // namespace ppms
