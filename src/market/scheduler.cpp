#include "market/scheduler.h"

#include <future>
#include <limits>
#include <vector>

#include "market/error.h"
#include "obs/metrics.h"
#include "util/task_context.h"
#include "util/thread_pool.h"

namespace ppms {

void LogicalScheduler::schedule_after(std::uint64_t delay, Action action) {
  if (delay > std::numeric_limits<std::uint64_t>::max() - now()) {
    throw MarketError(MarketErrc::kInvalidSchedule,
                      "schedule_after: now() + delay overflows the clock");
  }
  obs::counter("market.scheduler.scheduled").add();
  // Deferred actions run under the scheduling session's context so their
  // op counts and trace spans attribute to that session (the deposit
  // closures of both mechanisms go through here).
  Event event{now() + delay, 0,
              [ctx = capture_task_context(), action = std::move(action)] {
                ScopedTaskContext as_scheduler(ctx);
                action();
              }};
  std::lock_guard lock(mu_);
  event.seq = next_seq_++;
  queue_.push(std::move(event));
}

void LogicalScheduler::schedule_random(SecureRandom& rng,
                                       std::uint64_t min_delay,
                                       std::uint64_t max_delay,
                                       Action action) {
  if (min_delay > max_delay) {
    throw MarketError(MarketErrc::kInvalidSchedule,
                      "schedule_random: min_delay > max_delay");
  }
  if (max_delay - min_delay ==
      std::numeric_limits<std::uint64_t>::max()) {
    throw MarketError(MarketErrc::kInvalidSchedule,
                      "schedule_random: delay range width overflows");
  }
  const std::uint64_t span = max_delay - min_delay + 1;
  schedule_after(min_delay + rng.uniform(span), std::move(action));
}

std::size_t LogicalScheduler::pending() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

void LogicalScheduler::run_until(std::uint64_t deadline) {
  static obs::Counter& executed = obs::counter("market.scheduler.executed");
  std::unique_lock<std::recursive_mutex> drain(drain_mu_, std::try_to_lock);
  // Another thread owns the drain: do not race it for events — the caller
  // experiences a plain timeout and retries.
  if (!drain.owns_lock()) return;
  for (;;) {
    Event event{0, 0, nullptr};
    {
      std::lock_guard lock(mu_);
      if (queue_.empty() || queue_.top().time > deadline) break;
      event = queue_.top();
      queue_.pop();
      now_.store(event.time, std::memory_order_release);
    }
    event.action();
    executed.add();
  }
  // Waiting advances logical time even when nothing was runnable.
  std::uint64_t observed = now_.load(std::memory_order_acquire);
  while (observed < deadline &&
         !now_.compare_exchange_weak(observed, deadline,
                                     std::memory_order_acq_rel)) {
  }
}

void LogicalScheduler::run_all() {
  static obs::Counter& executed = obs::counter("market.scheduler.executed");
  std::lock_guard drain(drain_mu_);
  for (;;) {
    Event event{0, 0, nullptr};
    {
      std::lock_guard lock(mu_);
      if (queue_.empty()) break;
      // Copy out before pop: the action may schedule more events.
      event = queue_.top();
      queue_.pop();
      now_.store(event.time, std::memory_order_release);
    }
    event.action();
    executed.add();
  }
}

std::vector<LogicalScheduler::Event> LogicalScheduler::pop_tick_batch() {
  std::vector<Event> batch;
  std::lock_guard lock(mu_);
  if (queue_.empty()) return batch;
  const std::uint64_t tick = queue_.top().time;
  while (!queue_.empty() && queue_.top().time == tick) {
    batch.push_back(queue_.top());
    queue_.pop();
  }
  now_.store(tick, std::memory_order_release);
  return batch;
}

void LogicalScheduler::run_all(ThreadPool& pool) {
  static obs::Counter& executed = obs::counter("market.scheduler.executed");
  static obs::Counter& batches =
      obs::counter("market.scheduler.parallel_batches");
  std::lock_guard drain(drain_mu_);
  for (;;) {
    std::vector<Event> batch = pop_tick_batch();
    if (batch.empty()) break;
    if (batch.size() == 1) {
      batch.front().action();
    } else {
      batches.add();
      std::vector<std::future<void>> done;
      done.reserve(batch.size());
      for (Event& event : batch) {
        done.push_back(pool.submit(std::move(event.action)));
      }
      // Barrier: the next tick must not start while this one runs. Wait
      // for every event, then surface the first failure (if any).
      std::exception_ptr first_error;
      for (auto& fut : done) {
        try {
          fut.get();
        } catch (...) {
          if (!first_error) first_error = std::current_exception();
        }
      }
      if (first_error) std::rethrow_exception(first_error);
    }
    executed.add(batch.size());
  }
}

}  // namespace ppms
