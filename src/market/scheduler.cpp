#include "market/scheduler.h"

namespace ppms {

void LogicalScheduler::schedule_after(std::uint64_t delay, Action action) {
  queue_.push(Event{now_ + delay, next_seq_++, std::move(action)});
}

void LogicalScheduler::schedule_random(SecureRandom& rng,
                                       std::uint64_t min_delay,
                                       std::uint64_t max_delay,
                                       Action action) {
  const std::uint64_t span = max_delay - min_delay + 1;
  schedule_after(min_delay + rng.uniform(span), std::move(action));
}

void LogicalScheduler::run_all() {
  while (!queue_.empty()) {
    // Copy out before pop: the action may schedule more events.
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    event.action();
  }
}

}  // namespace ppms
