#include "market/vbank.h"

#include <stdexcept>

#include "obs/metrics.h"

namespace ppms {

std::string VBank::open_account(const std::string& identity) {
  obs::counter("market.bank.accounts_opened").add();
  std::lock_guard lock(mu_);
  if (by_identity_.count(identity) > 0) {
    throw std::invalid_argument("VBank: identity already has an account");
  }
  const std::string aid = "AID-" + std::to_string(accounts_.size());
  accounts_[aid] = Account{identity, 0, {}};
  by_identity_[identity] = aid;
  return aid;
}

bool VBank::has_account(const std::string& aid) const {
  std::lock_guard lock(mu_);
  return accounts_.count(aid) > 0;
}

std::optional<std::string> VBank::find_account(
    const std::string& identity) const {
  std::lock_guard lock(mu_);
  const auto it = by_identity_.find(identity);
  if (it == by_identity_.end()) return std::nullopt;
  return it->second;
}

VBank::Account& VBank::require(const std::string& aid) {
  const auto it = accounts_.find(aid);
  if (it == accounts_.end()) {
    throw std::invalid_argument("VBank: unknown account " + aid);
  }
  return it->second;
}

const VBank::Account& VBank::require(const std::string& aid) const {
  const auto it = accounts_.find(aid);
  if (it == accounts_.end()) {
    throw std::invalid_argument("VBank: unknown account " + aid);
  }
  return it->second;
}

void VBank::credit(const std::string& aid, std::uint64_t amount,
                   std::uint64_t time) {
  obs::counter("market.bank.credits").add();
  std::lock_guard lock(mu_);
  Account& account = require(aid);
  account.balance += static_cast<std::int64_t>(amount);
  account.history.push_back({time, static_cast<std::int64_t>(amount)});
}

void VBank::debit(const std::string& aid, std::uint64_t amount,
                  std::uint64_t time) {
  obs::counter("market.bank.debits").add();
  std::lock_guard lock(mu_);
  Account& account = require(aid);
  if (account.balance < static_cast<std::int64_t>(amount)) {
    throw std::runtime_error("VBank: insufficient funds in " + aid);
  }
  account.balance -= static_cast<std::int64_t>(amount);
  account.history.push_back({time, -static_cast<std::int64_t>(amount)});
}

void VBank::transfer(const std::string& from, const std::string& to,
                     std::uint64_t amount, std::uint64_t time) {
  obs::counter("market.bank.transfers").add();
  std::lock_guard lock(mu_);
  Account& src = require(from);
  Account& dst = require(to);
  if (src.balance < static_cast<std::int64_t>(amount)) {
    throw std::runtime_error("VBank: insufficient funds in " + from);
  }
  src.balance -= static_cast<std::int64_t>(amount);
  src.history.push_back({time, -static_cast<std::int64_t>(amount)});
  dst.balance += static_cast<std::int64_t>(amount);
  dst.history.push_back({time, static_cast<std::int64_t>(amount)});
}

std::int64_t VBank::balance(const std::string& aid) const {
  std::lock_guard lock(mu_);
  return require(aid).balance;
}

std::vector<VBank::Entry> VBank::statement(const std::string& aid) const {
  std::lock_guard lock(mu_);
  return require(aid).history;
}

std::size_t VBank::account_count() const {
  std::lock_guard lock(mu_);
  return accounts_.size();
}

}  // namespace ppms
