#include "market/vbank.h"

#include <algorithm>

#include "market/error.h"
#include "obs/metrics.h"

namespace ppms {

std::string VBank::open_account(const std::string& identity) {
  obs::counter("market.bank.accounts_opened").add();
  IdentityShard& ids = identity_shards_[shard_of(identity)];
  std::lock_guard id_lock(ids.mu);
  if (ids.by_identity.count(identity) > 0) {
    throw MarketError(MarketErrc::kDuplicateAccount,
                      "VBank: identity already has an account");
  }
  const std::string aid =
      "AID-" + std::to_string(next_aid_.fetch_add(1));
  {
    AccountShard& shard = account_shards_[shard_of(aid)];
    std::lock_guard lock(shard.mu);
    shard.accounts[aid] = Account{identity, 0, {}};
  }
  ids.by_identity[identity] = aid;
  return aid;
}

bool VBank::has_account(const std::string& aid) const {
  const AccountShard& shard = account_shards_[shard_of(aid)];
  std::lock_guard lock(shard.mu);
  return shard.accounts.count(aid) > 0;
}

std::optional<std::string> VBank::find_account(
    const std::string& identity) const {
  const IdentityShard& ids = identity_shards_[shard_of(identity)];
  std::lock_guard lock(ids.mu);
  const auto it = ids.by_identity.find(identity);
  if (it == ids.by_identity.end()) return std::nullopt;
  return it->second;
}

VBank::Account& VBank::require(AccountShard& shard, const std::string& aid) {
  const auto it = shard.accounts.find(aid);
  if (it == shard.accounts.end()) {
    throw MarketError(MarketErrc::kUnknownAccount,
                      "VBank: unknown account " + aid);
  }
  return it->second;
}

const VBank::Account& VBank::require(const AccountShard& shard,
                                     const std::string& aid) {
  const auto it = shard.accounts.find(aid);
  if (it == shard.accounts.end()) {
    throw MarketError(MarketErrc::kUnknownAccount,
                      "VBank: unknown account " + aid);
  }
  return it->second;
}

void VBank::credit(const std::string& aid, std::uint64_t amount,
                   std::uint64_t time) {
  obs::counter("market.bank.credits").add();
  AccountShard& shard = account_shards_[shard_of(aid)];
  std::lock_guard lock(shard.mu);
  Account& account = require(shard, aid);
  account.balance += static_cast<std::int64_t>(amount);
  account.history.push_back({time, static_cast<std::int64_t>(amount)});
}

void VBank::debit(const std::string& aid, std::uint64_t amount,
                  std::uint64_t time) {
  obs::counter("market.bank.debits").add();
  AccountShard& shard = account_shards_[shard_of(aid)];
  std::lock_guard lock(shard.mu);
  Account& account = require(shard, aid);
  if (account.balance < static_cast<std::int64_t>(amount)) {
    throw MarketError(MarketErrc::kInsufficientFunds,
                      "VBank: insufficient funds in " + aid);
  }
  account.balance -= static_cast<std::int64_t>(amount);
  account.history.push_back({time, -static_cast<std::int64_t>(amount)});
}

void VBank::transfer(const std::string& from, const std::string& to,
                     std::uint64_t amount, std::uint64_t time) {
  obs::counter("market.bank.transfers").add();
  const std::size_t si = shard_of(from);
  const std::size_t di = shard_of(to);
  AccountShard& src_shard = account_shards_[si];
  AccountShard& dst_shard = account_shards_[di];
  // Two-shard transfers take the stripes in ascending index order so
  // concurrent opposite-direction transfers cannot deadlock.
  std::unique_lock<std::mutex> first, second;
  if (si == di) {
    first = std::unique_lock(src_shard.mu);
  } else if (si < di) {
    first = std::unique_lock(src_shard.mu);
    second = std::unique_lock(dst_shard.mu);
  } else {
    first = std::unique_lock(dst_shard.mu);
    second = std::unique_lock(src_shard.mu);
  }
  Account& src = require(src_shard, from);
  Account& dst = require(dst_shard, to);
  if (src.balance < static_cast<std::int64_t>(amount)) {
    throw MarketError(MarketErrc::kInsufficientFunds,
                      "VBank: insufficient funds in " + from);
  }
  src.balance -= static_cast<std::int64_t>(amount);
  src.history.push_back({time, -static_cast<std::int64_t>(amount)});
  dst.balance += static_cast<std::int64_t>(amount);
  dst.history.push_back({time, static_cast<std::int64_t>(amount)});
}

std::int64_t VBank::balance(const std::string& aid) const {
  const AccountShard& shard = account_shards_[shard_of(aid)];
  std::lock_guard lock(shard.mu);
  return require(shard, aid).balance;
}

void VBank::for_each_entry(
    const std::string& aid,
    const std::function<void(const Entry&)>& fn) const {
  const AccountShard& shard = account_shards_[shard_of(aid)];
  std::lock_guard lock(shard.mu);
  for (const Entry& entry : require(shard, aid).history) fn(entry);
}

std::vector<VBank::Entry> VBank::statement(const std::string& aid,
                                           std::size_t offset,
                                           std::size_t limit) const {
  const AccountShard& shard = account_shards_[shard_of(aid)];
  std::lock_guard lock(shard.mu);
  const std::vector<Entry>& history = require(shard, aid).history;
  if (offset >= history.size()) return {};
  const std::size_t end =
      limit < history.size() - offset ? offset + limit : history.size();
  return std::vector<Entry>(history.begin() + offset, history.begin() + end);
}

std::vector<VBank::Entry> VBank::statement(const std::string& aid) const {
  return statement(aid, 0, static_cast<std::size_t>(-1));
}

std::size_t VBank::account_count() const {
  std::size_t count = 0;
  for (const AccountShard& shard : account_shards_) {
    std::lock_guard lock(shard.mu);
    count += shard.accounts.size();
  }
  return count;
}

}  // namespace ppms
