#include "market/vbank.h"

#include <algorithm>
#include <limits>
#include <string_view>
#include <utility>

#include "market/error.h"
#include "obs/metrics.h"

namespace ppms {

namespace {

// Entry::amount and Account::balance are signed 64-bit: an amount above
// INT64_MAX has no representation and used to wrap into a debit (the
// credit-path wrap bug). Checked here, BEFORE any journaling or state
// change, so a rejected amount leaves neither the WAL nor the ledger
// touched.
std::int64_t checked_amount(std::uint64_t amount) {
  if (amount >
      static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
    throw MarketError(MarketErrc::kInvalidAmount,
                      "VBank: amount " + std::to_string(amount) +
                          " exceeds INT64_MAX");
  }
  return static_cast<std::int64_t>(amount);
}

// Balance accumulation is checked too: a balance driven past either
// int64 bound throws instead of wrapping (kInvalidAmount), with the
// account left exactly as it was.
std::int64_t checked_add(std::int64_t balance, std::int64_t delta,
                         const std::string& aid) {
  std::int64_t out = 0;
  if (__builtin_add_overflow(balance, delta, &out)) {
    throw MarketError(MarketErrc::kInvalidAmount,
                      "VBank: balance overflow in " + aid);
  }
  return out;
}

}  // namespace

std::string VBank::open_account(const std::string& identity) {
  obs::counter("market.bank.accounts_opened").add();
  IdentityShard& ids = identity_shards_[shard_of(identity)];
  std::lock_guard id_lock(ids.mu);
  if (ids.by_identity.count(identity) > 0) {
    throw MarketError(MarketErrc::kDuplicateAccount,
                      "VBank: identity already has an account");
  }
  const std::string aid =
      "AID-" + std::to_string(next_aid_.fetch_add(1));
  {
    AccountShard& shard = account_shards_[shard_of(aid)];
    std::lock_guard lock(shard.mu);
    // Journal inside the shard lock: the open record provably precedes
    // every credit record of this AID in the WAL's total order.
    if (journal_ != nullptr) {
      journal_->append(storage::MutationKind::kOpenAccount,
                       storage::encode(
                           storage::OpenAccountRecord{identity, aid}));
    }
    shard.accounts[aid] = Account{identity, 0, {}};
  }
  ids.by_identity[identity] = aid;
  return aid;
}

bool VBank::has_account(const std::string& aid) const {
  const AccountShard& shard = account_shards_[shard_of(aid)];
  std::lock_guard lock(shard.mu);
  return shard.accounts.count(aid) > 0;
}

std::optional<std::string> VBank::find_account(
    const std::string& identity) const {
  const IdentityShard& ids = identity_shards_[shard_of(identity)];
  std::lock_guard lock(ids.mu);
  const auto it = ids.by_identity.find(identity);
  if (it == ids.by_identity.end()) return std::nullopt;
  return it->second;
}

VBank::Account& VBank::require(AccountShard& shard, const std::string& aid) {
  const auto it = shard.accounts.find(aid);
  if (it == shard.accounts.end()) {
    throw MarketError(MarketErrc::kUnknownAccount,
                      "VBank: unknown account " + aid);
  }
  return it->second;
}

const VBank::Account& VBank::require(const AccountShard& shard,
                                     const std::string& aid) {
  const auto it = shard.accounts.find(aid);
  if (it == shard.accounts.end()) {
    throw MarketError(MarketErrc::kUnknownAccount,
                      "VBank: unknown account " + aid);
  }
  return it->second;
}

void VBank::credit(const std::string& aid, std::uint64_t amount,
                   std::uint64_t time) {
  obs::counter("market.bank.credits").add();
  AccountShard& shard = account_shards_[shard_of(aid)];
  std::lock_guard lock(shard.mu);
  Account& account = require(shard, aid);
  const std::int64_t delta = checked_amount(amount);
  const std::int64_t balance = checked_add(account.balance, delta, aid);
  // WAL discipline: the record is durable (or at least ordered) before
  // the in-memory state changes; an append failure leaves the ledger
  // untouched — which is why the amount and overflow checks run first.
  if (journal_ != nullptr) {
    journal_->append(storage::MutationKind::kCredit,
                     storage::encode(storage::CreditRecord{
                         aid, delta, time}));
  }
  account.balance = balance;
  account.history.push_back({time, delta});
}

void VBank::debit(const std::string& aid, std::uint64_t amount,
                  std::uint64_t time) {
  obs::counter("market.bank.debits").add();
  AccountShard& shard = account_shards_[shard_of(aid)];
  std::lock_guard lock(shard.mu);
  Account& account = require(shard, aid);
  // The amount check must precede the funds check: a wrapped amount used
  // to compare as a huge negative and sail past it.
  const std::int64_t delta = checked_amount(amount);
  if (account.balance < delta) {
    throw MarketError(MarketErrc::kInsufficientFunds,
                      "VBank: insufficient funds in " + aid);
  }
  const std::int64_t balance = checked_add(account.balance, -delta, aid);
  // Debits journal as negative credits — one record kind, one replay
  // path.
  if (journal_ != nullptr) {
    journal_->append(storage::MutationKind::kCredit,
                     storage::encode(storage::CreditRecord{
                         aid, -delta, time}));
  }
  account.balance = balance;
  account.history.push_back({time, -delta});
}

void VBank::transfer(const std::string& from, const std::string& to,
                     std::uint64_t amount, std::uint64_t time) {
  obs::counter("market.bank.transfers").add();
  const std::size_t si = shard_of(from);
  const std::size_t di = shard_of(to);
  AccountShard& src_shard = account_shards_[si];
  AccountShard& dst_shard = account_shards_[di];
  // Two-shard transfers take the stripes in ascending index order so
  // concurrent opposite-direction transfers cannot deadlock.
  std::unique_lock<std::mutex> first, second;
  if (si == di) {
    first = std::unique_lock(src_shard.mu);
  } else if (si < di) {
    first = std::unique_lock(src_shard.mu);
    second = std::unique_lock(dst_shard.mu);
  } else {
    first = std::unique_lock(dst_shard.mu);
    second = std::unique_lock(src_shard.mu);
  }
  Account& src = require(src_shard, from);
  Account& dst = require(dst_shard, to);
  const std::int64_t delta = checked_amount(amount);
  if (src.balance < delta) {
    throw MarketError(MarketErrc::kInsufficientFunds,
                      "VBank: insufficient funds in " + from);
  }
  // Both balance checks run before either leg journals: a transfer that
  // would overflow the destination rejects with nothing written.
  const std::int64_t src_balance = checked_add(src.balance, -delta, from);
  const std::int64_t dst_balance = checked_add(dst.balance, delta, to);
  // Both legs journal under one transaction scope (joining the caller's
  // if it already opened one): recovery applies the debit and the credit
  // together or not at all.
  storage::JournalScope txn(journal_);
  if (journal_ != nullptr) {
    journal_->append(storage::MutationKind::kCredit,
                     storage::encode(storage::CreditRecord{
                         from, -delta, time}));
    journal_->append(storage::MutationKind::kCredit,
                     storage::encode(storage::CreditRecord{
                         to, delta, time}));
  }
  src.balance = src_balance;
  src.history.push_back({time, -delta});
  dst.balance = dst_balance;
  dst.history.push_back({time, delta});
}

std::int64_t VBank::balance(const std::string& aid) const {
  const AccountShard& shard = account_shards_[shard_of(aid)];
  std::lock_guard lock(shard.mu);
  return require(shard, aid).balance;
}

void VBank::for_each_entry(
    const std::string& aid,
    const std::function<void(const Entry&)>& fn) const {
  const AccountShard& shard = account_shards_[shard_of(aid)];
  std::lock_guard lock(shard.mu);
  for (const Entry& entry : require(shard, aid).history) fn(entry);
}

std::vector<VBank::Entry> VBank::statement(const std::string& aid,
                                           std::size_t offset,
                                           std::size_t limit) const {
  const AccountShard& shard = account_shards_[shard_of(aid)];
  std::lock_guard lock(shard.mu);
  const std::vector<Entry>& history = require(shard, aid).history;
  if (offset >= history.size()) return {};
  const std::size_t end =
      limit < history.size() - offset ? offset + limit : history.size();
  return std::vector<Entry>(history.begin() + offset, history.begin() + end);
}

std::vector<VBank::Entry> VBank::statement(const std::string& aid) const {
  return statement(aid, 0, static_cast<std::size_t>(-1));
}

std::vector<VBank::Entry> VBank::statement(const std::string& aid,
                                           StatementCursor& cursor,
                                           std::size_t limit) const {
  std::vector<Entry> page = statement(aid, cursor.next, limit);
  cursor.next += page.size();
  return page;
}

std::size_t VBank::account_count() const {
  std::size_t count = 0;
  for (const AccountShard& shard : account_shards_) {
    std::lock_guard lock(shard.mu);
    count += shard.accounts.size();
  }
  return count;
}

bool VBank::scan_accounts(ScanCursor& cursor, std::size_t limit,
                          std::vector<AccountRow>& out) const {
  out.clear();
  if (limit == 0) return cursor.shard < kShards;
  while (cursor.shard < kShards && out.size() < limit) {
    const AccountShard& shard = account_shards_[cursor.shard];
    std::lock_guard lock(shard.mu);
    auto it = cursor.last_aid.empty()
                  ? shard.accounts.begin()
                  : shard.accounts.upper_bound(cursor.last_aid);
    for (; it != shard.accounts.end() && out.size() < limit; ++it) {
      out.push_back(AccountRow{it->first, it->second.identity,
                               it->second.balance, it->second.history});
      cursor.last_aid = it->first;
    }
    if (it == shard.accounts.end()) {
      ++cursor.shard;
      cursor.last_aid.clear();
    }
  }
  return !out.empty();
}

void VBank::bump_aid_allocator(const std::string& aid) {
  // Only the canonical "AID-<n>" shape moves the allocator; anything
  // else (a hand-restored test AID) coexists without affecting issuance.
  constexpr std::string_view kPrefix = "AID-";
  if (aid.size() <= kPrefix.size() ||
      aid.compare(0, kPrefix.size(), kPrefix) != 0) {
    return;
  }
  std::uint64_t n = 0;
  for (std::size_t i = kPrefix.size(); i < aid.size(); ++i) {
    const char c = aid[i];
    if (c < '0' || c > '9') return;
    n = n * 10 + static_cast<std::uint64_t>(c - '0');
  }
  std::uint64_t cur = next_aid_.load();
  while (cur <= n && !next_aid_.compare_exchange_weak(cur, n + 1)) {
  }
}

void VBank::apply_open_account(const std::string& identity,
                               const std::string& aid) {
  {
    IdentityShard& ids = identity_shards_[shard_of(identity)];
    std::lock_guard id_lock(ids.mu);
    ids.by_identity[identity] = aid;
  }
  {
    AccountShard& shard = account_shards_[shard_of(aid)];
    std::lock_guard lock(shard.mu);
    shard.accounts.try_emplace(aid, Account{identity, 0, {}});
  }
  bump_aid_allocator(aid);
}

void VBank::apply_credit(const std::string& aid, std::int64_t amount,
                         std::uint64_t time) {
  AccountShard& shard = account_shards_[shard_of(aid)];
  std::lock_guard lock(shard.mu);
  Account& account = require(shard, aid);
  // A WAL written by the checked mutators can never replay into an
  // overflow; one that does was damaged or foreign, so refuse to wrap.
  account.balance = checked_add(account.balance, amount, aid);
  account.history.push_back({time, amount});
}

void VBank::restore_account(std::string aid, std::string identity,
                            std::int64_t balance,
                            std::vector<Entry> history) {
  {
    AccountShard& shard = account_shards_[shard_of(aid)];
    std::lock_guard lock(shard.mu);
    if (shard.accounts.count(aid) > 0) {
      throw MarketError(MarketErrc::kDuplicateAccount,
                        "VBank: restore into non-empty bank: " + aid);
    }
    Account account;
    account.identity = identity;
    account.balance = balance;
    account.history = std::move(history);
    shard.accounts.emplace(aid, std::move(account));
  }
  {
    IdentityShard& ids = identity_shards_[shard_of(identity)];
    std::lock_guard id_lock(ids.mu);
    ids.by_identity[std::move(identity)] = aid;
  }
  bump_aid_allocator(aid);
}

void VBank::restore_issued_accounts(std::uint64_t issued) {
  std::uint64_t cur = next_aid_.load();
  while (cur < issued && !next_aid_.compare_exchange_weak(cur, issued)) {
  }
}

}  // namespace ppms
