// The market's public bulletin board (BB).
//
// Job profiles are published by the MA and readable by every resident
// (paper eq. 2). A profile carries only pseudonymous identity information
// — a session RSA public key — never an account identity.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace ppms {

struct JobProfile {
  std::uint64_t job_id = 0;      ///< assigned by the board at publish time
  std::string description;      ///< jd
  std::uint64_t payment = 0;    ///< w per participant (0 in PPMSpbs: unitary)
  Bytes owner_pseudonym;        ///< serialized session public key rpk_jo
};

/// Thread-safe append-only board.
class BulletinBoard {
 public:
  /// Publish and return the assigned job id. Bumps the
  /// market.bulletin.published obs counter when metrics are enabled.
  std::uint64_t publish(JobProfile profile);

  std::optional<JobProfile> get(std::uint64_t job_id) const;

  /// Snapshot of all published profiles, in publication order.
  std::vector<JobProfile> list() const;

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<JobProfile> jobs_;
};

}  // namespace ppms
