// The virtual bank's fiat ledger.
//
// Every market resident opens exactly one account with authentic identity
// information (paper Section III-A); the account id AID is therefore
// equivalent to the real identity and is what all the privacy machinery
// keeps away from protocol messages. The ledger also keeps a per-account
// statement of (logical time, amount) entries — the observation stream the
// denomination attack mines. Ledger activity feeds the obs registry
// (market.bank.accounts_opened/credits/debits/transfers counters) when
// metrics are enabled.
//
// Concurrency: the account map is sharded by AID hash (striped locks), and
// the identity index is sharded separately by identity hash, so concurrent
// sessions touching different residents never contend on one global mutex.
// `transfer` locks its two account shards in ascending shard order; the
// lock hierarchy is identity shard before account shard and never the
// reverse. All failures throw MarketError (see market/error.h).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace ppms {

class VBank {
 public:
  struct Entry {
    std::uint64_t time = 0;
    std::int64_t amount = 0;  ///< positive credit, negative debit
  };

  /// Open an account for an authentic identity; rejects (throws
  /// MarketError / kDuplicateAccount) a second account for the same
  /// identity, per the one-account rule.
  std::string open_account(const std::string& identity);

  bool has_account(const std::string& aid) const;

  /// AID previously assigned to `identity`, or nullopt. Lets a resident
  /// reuse its single account across protocol sessions.
  std::optional<std::string> find_account(const std::string& identity) const;

  /// Credit/debit. Debit beyond the balance throws MarketError with
  /// kInsufficientFunds (the virtual bank does not extend credit).
  void credit(const std::string& aid, std::uint64_t amount,
              std::uint64_t time);
  void debit(const std::string& aid, std::uint64_t amount,
             std::uint64_t time);

  /// Atomic transfer between accounts (both shard locks held for the
  /// balance movement).
  void transfer(const std::string& from, const std::string& to,
                std::uint64_t amount, std::uint64_t time);

  std::int64_t balance(const std::string& aid) const;

  /// Visit an account's statement entries in order without copying the
  /// history. The callback runs under the account's shard lock: keep it
  /// short and never call back into this VBank from inside it.
  void for_each_entry(const std::string& aid,
                      const std::function<void(const Entry&)>& fn) const;

  /// Statement window [offset, offset + limit) of an account (the bank's
  /// — hence the MA's — view). Clamped to the history size.
  std::vector<Entry> statement(const std::string& aid, std::size_t offset,
                               std::size_t limit) const;

  /// Full statement copy. Convenience for tests and reports; hot paths
  /// (the attack analyses) should prefer for_each_entry / the windowed
  /// overload, which do not copy the whole history under the shard lock.
  std::vector<Entry> statement(const std::string& aid) const;

  std::size_t account_count() const;

 private:
  struct Account {
    std::string identity;
    std::int64_t balance = 0;
    std::vector<Entry> history;
  };

  static constexpr std::size_t kShards = 16;

  struct AccountShard {
    mutable std::mutex mu;
    std::map<std::string, Account> accounts;  // aid -> account
  };
  struct IdentityShard {
    mutable std::mutex mu;
    std::map<std::string, std::string> by_identity;  // identity -> aid
  };

  static std::size_t shard_of(const std::string& key) {
    return std::hash<std::string>{}(key) % kShards;
  }

  /// Account lookup inside an already-locked shard; throws MarketError
  /// with kUnknownAccount.
  static Account& require(AccountShard& shard, const std::string& aid);
  static const Account& require(const AccountShard& shard,
                                const std::string& aid);

  std::array<AccountShard, kShards> account_shards_;
  std::array<IdentityShard, kShards> identity_shards_;
  std::atomic<std::uint64_t> next_aid_{0};
};

}  // namespace ppms
