// The virtual bank's fiat ledger.
//
// Every market resident opens exactly one account with authentic identity
// information (paper Section III-A); the account id AID is therefore
// equivalent to the real identity and is what all the privacy machinery
// keeps away from protocol messages. The ledger also keeps a per-account
// statement of (logical time, amount) entries — the observation stream the
// denomination attack mines. Ledger activity feeds the obs registry
// (market.bank.accounts_opened/credits/debits/transfers counters) when
// metrics are enabled.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace ppms {

class VBank {
 public:
  struct Entry {
    std::uint64_t time = 0;
    std::int64_t amount = 0;  ///< positive credit, negative debit
  };

  /// Open an account for an authentic identity; rejects (throws
  /// std::invalid_argument) a second account for the same identity, per
  /// the one-account rule.
  std::string open_account(const std::string& identity);

  bool has_account(const std::string& aid) const;

  /// AID previously assigned to `identity`, or nullopt. Lets a resident
  /// reuse its single account across protocol sessions.
  std::optional<std::string> find_account(const std::string& identity) const;

  /// Credit/debit. Debit beyond the balance throws std::runtime_error
  /// (the virtual bank does not extend credit).
  void credit(const std::string& aid, std::uint64_t amount,
              std::uint64_t time);
  void debit(const std::string& aid, std::uint64_t amount,
             std::uint64_t time);

  /// Atomic transfer between accounts.
  void transfer(const std::string& from, const std::string& to,
                std::uint64_t amount, std::uint64_t time);

  std::int64_t balance(const std::string& aid) const;

  /// Full statement of an account (the bank's — hence the MA's — view).
  std::vector<Entry> statement(const std::string& aid) const;

  std::size_t account_count() const;

 private:
  struct Account {
    std::string identity;
    std::int64_t balance = 0;
    std::vector<Entry> history;
  };

  Account& require(const std::string& aid);
  const Account& require(const std::string& aid) const;

  mutable std::mutex mu_;
  std::map<std::string, Account> accounts_;       // aid -> account
  std::map<std::string, std::string> by_identity_; // identity -> aid
};

}  // namespace ppms
