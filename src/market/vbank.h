// The virtual bank's fiat ledger.
//
// Every market resident opens exactly one account with authentic identity
// information (paper Section III-A); the account id AID is therefore
// equivalent to the real identity and is what all the privacy machinery
// keeps away from protocol messages. The ledger also keeps a per-account
// statement of (logical time, amount) entries — the observation stream the
// denomination attack mines. Ledger activity feeds the obs registry
// (market.bank.accounts_opened/credits/debits/transfers counters) when
// metrics are enabled.
//
// Concurrency: the account map is sharded by AID hash (striped locks), and
// the identity index is sharded separately by identity hash, so concurrent
// sessions touching different residents never contend on one global mutex.
// `transfer` locks its two account shards in ascending shard order; the
// lock hierarchy is identity shard before account shard and never the
// reverse. All failures throw MarketError (see market/error.h).
//
// Durability: every mutation (open_account, credit, debit, transfer)
// appends its journal record while the shard lock is held — data lock
// before journal lock, per the src/storage/journal.h discipline — so the
// WAL order equals the in-memory mutation order and recovery reproduces
// the ledger bit for bit, per-account history order included. With no
// journal attached (the default) nothing is even encoded.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "storage/journal.h"

namespace ppms {

class VBank {
 public:
  struct Entry {
    std::uint64_t time = 0;
    std::int64_t amount = 0;  ///< positive credit, negative debit
  };

  /// Open an account for an authentic identity; rejects (throws
  /// MarketError / kDuplicateAccount) a second account for the same
  /// identity, per the one-account rule.
  std::string open_account(const std::string& identity);

  bool has_account(const std::string& aid) const;

  /// AID previously assigned to `identity`, or nullopt. Lets a resident
  /// reuse its single account across protocol sessions.
  std::optional<std::string> find_account(const std::string& identity) const;

  /// Credit/debit. Debit beyond the balance throws MarketError with
  /// kInsufficientFunds (the virtual bank does not extend credit). An
  /// amount above INT64_MAX, or a balance the mutation would push past
  /// either int64 bound, throws kInvalidAmount with nothing journaled
  /// and nothing changed — amounts never wrap into the signed ledger.
  void credit(const std::string& aid, std::uint64_t amount,
              std::uint64_t time);
  void debit(const std::string& aid, std::uint64_t amount,
             std::uint64_t time);

  /// Atomic transfer between accounts (both shard locks held for the
  /// balance movement).
  void transfer(const std::string& from, const std::string& to,
                std::uint64_t amount, std::uint64_t time);

  std::int64_t balance(const std::string& aid) const;

  /// Visit an account's statement entries in order without copying the
  /// history. The callback runs under the account's shard lock: keep it
  /// short and never call back into this VBank from inside it.
  void for_each_entry(const std::string& aid,
                      const std::function<void(const Entry&)>& fn) const;

  /// Statement window [offset, offset + limit) of an account (the bank's
  /// — hence the MA's — view). Clamped to the history size.
  std::vector<Entry> statement(const std::string& aid, std::size_t offset,
                               std::size_t limit) const;

  /// Full statement copy. Convenience for tests and reports; hot paths
  /// (the attack analyses) should prefer for_each_entry / the windowed
  /// overload, which do not copy the whole history under the shard lock.
  std::vector<Entry> statement(const std::string& aid) const;

  /// Cursor for paged statement reads: entries already handed out are
  /// never re-read, because history is append-only and `next` indexes
  /// into it. Stable across concurrent credits — a page observed stays
  /// observed, new entries show up in later pages.
  struct StatementCursor {
    std::size_t next = 0;  ///< index of the first entry not yet returned
  };

  /// Next page (up to `limit` entries) of an account's statement,
  /// advancing `cursor`. The shard lock is held only for the one page.
  std::vector<Entry> statement(const std::string& aid,
                               StatementCursor& cursor,
                               std::size_t limit) const;

  std::size_t account_count() const;

  /// High-water mark of the AID allocator; snapshots persist it so a
  /// recovered bank never re-issues an AID.
  std::uint64_t issued_accounts() const { return next_aid_.load(); }

  /// One account as the snapshot scanner sees it.
  struct AccountRow {
    std::string aid;
    std::string identity;
    std::int64_t balance = 0;
    std::vector<Entry> history;
  };

  /// Cursor for whole-ledger iteration: (shard, last AID seen). Stable
  /// under concurrent mutation in the snapshot writer's sense — every
  /// account present for the whole scan is visited exactly once, and at
  /// most one shard lock is held at a time (never across the full scan).
  struct ScanCursor {
    std::size_t shard = 0;
    std::string last_aid;
  };

  /// Copy up to `limit` account rows after `cursor`, advancing it.
  /// Returns false once the scan is exhausted (out left empty).
  bool scan_accounts(ScanCursor& cursor, std::size_t limit,
                     std::vector<AccountRow>& out) const;

  /// Route every future mutation through `journal` (null detaches).
  void attach_journal(storage::LedgerJournal* journal) { journal_ = journal; }

  // Recovery-only entry points: apply a replayed journal record or a
  // snapshot row without validation or re-journaling. Not for general
  // use — they bypass the one-account-per-identity bookkeeping checks.
  void apply_open_account(const std::string& identity, const std::string& aid);
  void apply_credit(const std::string& aid, std::int64_t amount,
                    std::uint64_t time);
  /// Throws MarketError(kDuplicateAccount) when `aid` already exists —
  /// a snapshot restore must start from an empty bank.
  void restore_account(std::string aid, std::string identity,
                       std::int64_t balance, std::vector<Entry> history);
  /// Raise the AID allocator to at least `issued` (snapshot restore).
  void restore_issued_accounts(std::uint64_t issued);

 private:
  struct Account {
    std::string identity;
    std::int64_t balance = 0;
    std::vector<Entry> history;
  };

  static constexpr std::size_t kShards = 16;

  struct AccountShard {
    mutable std::mutex mu;
    std::map<std::string, Account> accounts;  // aid -> account
  };
  struct IdentityShard {
    mutable std::mutex mu;
    std::map<std::string, std::string> by_identity;  // identity -> aid
  };

  static std::size_t shard_of(const std::string& key) {
    return std::hash<std::string>{}(key) % kShards;
  }

  /// Account lookup inside an already-locked shard; throws MarketError
  /// with kUnknownAccount.
  static Account& require(AccountShard& shard, const std::string& aid);
  static const Account& require(const AccountShard& shard,
                                const std::string& aid);

  /// Raise next_aid_ to cover a restored/replayed AID of the canonical
  /// "AID-<n>" shape (foreign shapes are kept but do not move the
  /// allocator).
  void bump_aid_allocator(const std::string& aid);

  std::array<AccountShard, kShards> account_shards_;
  std::array<IdentityShard, kShards> identity_shards_;
  std::atomic<std::uint64_t> next_aid_{0};
  storage::LedgerJournal* journal_ = nullptr;
};

}  // namespace ppms
