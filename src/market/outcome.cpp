#include "market/outcome.h"

#include <utility>

#include "util/serial.h"

namespace ppms {

const char* settle_status_name(SettleStatus status) {
  switch (status) {
    case SettleStatus::kAccepted: return "accepted";
    case SettleStatus::kReplayed: return "replayed";
    case SettleStatus::kRejected: return "rejected";
    case SettleStatus::kOverloaded: return "overloaded";
  }
  return "unknown";
}

SettleOutcome SettleOutcome::ok(std::uint64_t value) {
  SettleOutcome out;
  out.status = SettleStatus::kAccepted;
  out.value = value;
  return out;
}

SettleOutcome SettleOutcome::rejected(MarketErrc code, std::string reason) {
  SettleOutcome out;
  out.status = SettleStatus::kRejected;
  out.errc = code;
  out.reason = std::move(reason);
  return out;
}

SettleOutcome SettleOutcome::overload(std::string reason) {
  SettleOutcome out;
  out.status = SettleStatus::kOverloaded;
  out.errc = MarketErrc::kOverloaded;
  out.reason = std::move(reason);
  return out;
}

Bytes SettleOutcome::serialize() const {
  Writer w;
  w.put_u32(static_cast<std::uint32_t>(status));
  w.put_u64(value);
  w.put_bool(errc.has_value());
  w.put_u32(errc ? static_cast<std::uint32_t>(*errc) : 0);
  w.put_string(reason);
  return w.take();
}

SettleOutcome SettleOutcome::deserialize(const Bytes& wire) {
  try {
    Reader r(wire);
    SettleOutcome out;
    const std::uint32_t status = r.get_u32();
    if (status > static_cast<std::uint32_t>(SettleStatus::kOverloaded)) {
      throw MarketError(MarketErrc::kMalformedMessage,
                        "SettleOutcome: unknown status");
    }
    out.status = static_cast<SettleStatus>(status);
    out.value = r.get_u64();
    const bool has_errc = r.get_bool();
    const std::uint32_t errc = r.get_u32();
    if (has_errc) out.errc = static_cast<MarketErrc>(errc);
    out.reason = r.get_string();
    if (!r.exhausted()) {
      throw MarketError(MarketErrc::kMalformedMessage,
                        "SettleOutcome: trailing garbage");
    }
    return out;
  } catch (const MarketError&) {
    throw;
  } catch (const std::exception&) {
    throw MarketError(MarketErrc::kMalformedMessage,
                      "SettleOutcome: truncated or malformed frame");
  }
}

SettleOutcome SettleOutcome::replay_of(const Bytes& stored) {
  SettleOutcome out = deserialize(stored);
  out.status = SettleStatus::kReplayed;
  return out;
}

}  // namespace ppms
