#include "market/actors.h"

namespace ppms {

ResidentAccount open_resident(MarketInfrastructure& market,
                              const std::string& identity,
                              std::uint64_t initial_balance) {
  ResidentAccount account;
  account.identity = identity;
  account.aid = market.bank.open_account(identity);
  if (initial_balance > 0) {
    market.bank.credit(account.aid, initial_balance,
                       market.scheduler.now());
  }
  return account;
}

}  // namespace ppms
