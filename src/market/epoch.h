// EpochAccumulator — per-account netting across a billing window
// (ROADMAP item 2, the workload shape of the privacy-preserving billing
// papers: settle per epoch, not per coin).
//
// In per-coin mode every accepted deposit credits the fiat ledger
// immediately, so an account's statement is one entry per coin — exactly
// the observation stream the denomination attack mines. In epoch mode
// accepted coin values ACCRUE here instead: the accumulator keeps one
// pending sum per account for the current window, and close() commits a
// single net credit per account through the VBank plus the kEpochMark
// window anchor, all under one JournalScope — recovery replays the whole
// close or none of it. The statement then shows one netted entry per
// window, which both collapses the per-coin credit traffic (ablation
// A13) and coarsens the denomination side channel: when several jobs'
// coins land in one window, only their SUM reaches the statement.
//
// Durability: accrued money exists nowhere else until the close — the
// coin's serials are filed and its reply cached, but no credit record is
// written. So accrue() journals a kEpochAccrue record under the
// accumulator lock (data lock before journal lock, the storage/journal.h
// discipline), and recovery (storage/recovery.h) rebuilds the pending
// map from those records, dropping everything a later kEpochMark
// settled. The journal itself re-anchors unsettled accruals across
// snapshot truncation, because the snapshot never contains them.
//
// Windows are numbered from 1 and only move forward: current_epoch() is
// last_closed() + 1, close() advances it, and the journal rejects a
// backwards kEpochMark at append time (kEpochOutOfOrder).
//
// Thread-safe: one mutex serializes accrue/close/restore. Close holds it
// across the VBank credits, so a concurrent settle worker's accrue lands
// in the next window, never half in each.
//
// Metrics: market.epoch.accruals / .closes / .netted_accounts /
// .netted_value counters, market.epoch.close histogram (taxonomy in
// OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "market/vbank.h"
#include "storage/journal.h"

namespace ppms {

class EpochAccumulator {
 public:
  /// One account's pending accrual in the current window.
  struct Pending {
    std::uint64_t value = 0;  ///< sum of accepted coin values
    std::uint64_t coins = 0;  ///< coins that sum covers
    std::uint64_t epoch = 0;  ///< window the accrual belongs to
  };

  /// What one close() committed.
  struct CloseStats {
    std::uint64_t epoch = 0;     ///< the window just closed
    std::uint64_t accounts = 0;  ///< net credits written
    std::uint64_t value = 0;     ///< total value those credits moved
    std::uint64_t coins = 0;     ///< coins the window netted
  };

  /// Route accruals and the close transaction through `journal` (null
  /// detaches — the in-memory fast path journals nothing).
  void attach_journal(storage::LedgerJournal* journal);

  /// The window currently accepting accruals (last_closed() + 1).
  std::uint64_t current_epoch() const;
  std::uint64_t last_closed() const;

  /// Add an accepted coin's value to `aid`'s pending sum for the current
  /// window. Throws MarketError(kInvalidAmount) — with nothing journaled
  /// and nothing changed — when the sum would exceed INT64_MAX, so the
  /// eventual net credit can never be rejected by the VBank's checked
  /// arithmetic.
  void accrue(const std::string& aid, std::uint64_t value,
              std::uint64_t time);

  /// Close the current window: one net VBank::credit per account with a
  /// pending sum, then the kEpochMark anchor, all inside one
  /// JournalScope (joining the caller's if one is open). The pending map
  /// resets and current_epoch() advances. An empty window still closes
  /// (the anchor is the proof the window happened).
  CloseStats close(VBank& vbank, std::uint64_t time);

  std::uint64_t pending_value(const std::string& aid) const;
  std::uint64_t pending_total() const;
  std::size_t pending_accounts() const;

  // Recovery-only entry points: rebuild pending state from replayed
  // kEpochAccrue / kEpochMark records without validation or
  // re-journaling (storage/recovery.h drives these in WAL order).
  /// Re-add one accrual, tagged with the window it was written in.
  void restore_accrual(const std::string& aid, std::uint64_t value,
                       std::uint64_t epoch);
  /// A kEpochMark for `epoch` replayed: every pending accrual in that
  /// window or an earlier one was settled by the mark's close — drop
  /// them and advance last_closed.
  void restore_epoch(std::uint64_t epoch);

 private:
  mutable std::mutex mu_;
  std::map<std::string, Pending> pending_;  // aid -> current-window sum
  std::uint64_t last_closed_ = 0;
  std::uint64_t total_ = 0;  ///< sum over pending_ values
  storage::LedgerJournal* journal_ = nullptr;
};

}  // namespace ppms
