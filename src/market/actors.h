// Shared market infrastructure operated by the market administrator, and
// the resident-account bookkeeping both mechanisms build on.
#pragma once

#include "market/bulletin.h"
#include "market/channel.h"
#include "market/scheduler.h"
#include "market/vbank.h"

namespace ppms {

/// Everything the MA runs: the bulletin board, the virtual bank's fiat
/// ledger, the byte meter and the logical clock. One instance per market.
struct MarketInfrastructure {
  BulletinBoard bulletin;
  VBank bank;
  TrafficMeter traffic;
  LogicalScheduler scheduler;
};

/// A resident's banking identity: the authentic identity string handed to
/// the bank, and the AID the bank assigned. The AID is the thing every
/// linkage attack tries to connect to jobs and data.
struct ResidentAccount {
  std::string identity;
  std::string aid;
};

/// Open an account for `identity` (one per resident, enforced by VBank)
/// and optionally fund it with `initial_balance`.
ResidentAccount open_resident(MarketInfrastructure& market,
                              const std::string& identity,
                              std::uint64_t initial_balance = 0);

}  // namespace ppms
