// Byte-accounted message passing between market parties.
//
// Every protocol message in src/core is a serialized byte string "sent"
// through a TrafficMeter, which attributes its length as output traffic of
// the sender and input traffic of the receiver — exactly the accounting of
// the paper's Table II (JO/SP input & output bytes, total). When metrics
// are enabled, each send also mirrors into the obs registry
// (market.traffic.<role>.sent_bytes/recv_bytes gauges and the
// market.traffic.messages counter), so a live scrape reconciles exactly
// with this meter — see OBSERVABILITY.md and tests/obs/reconcile_test.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <string>

#include "util/bytes.h"
#include "util/counters.h"

namespace ppms {

class TrafficMeter {
 public:
  /// Account a message of `message.size()` bytes from `from` to `to` and
  /// hand the payload back by value (channels are lossless and
  /// synchronous). Taking and returning the payload by value — moved all
  /// the way through — means the receiver owns its copy and can never
  /// dangle on the sender's buffer; the previous `const Bytes&` return
  /// aliased the caller's argument.
  Bytes send(Role from, Role to, Bytes message);

  std::uint64_t bytes_sent(Role role) const;
  std::uint64_t bytes_received(Role role) const;
  std::uint64_t message_count() const;

  /// Grand total crossing the wire (each message counted once).
  std::uint64_t total_bytes() const;

  void reset();

  /// Rendered rows in the Table II layout.
  std::string report() const;

 private:
  mutable std::mutex mu_;
  std::array<std::uint64_t, kRoleCount> sent_{};
  std::array<std::uint64_t, kRoleCount> received_{};
  std::uint64_t messages_ = 0;
};

}  // namespace ppms
