#include "server/server.h"

#include <chrono>
#include <future>
#include <utility>

#include "market/error.h"
#include "obs/metrics.h"
#include "util/counters.h"
#include "util/serial.h"

namespace ppms {

namespace {

// Registry handles for the server.* series, resolved once. Queue depth
// gauges are owned by the queues themselves (per-shard settle gauges are
// resolved in the ctor because their names depend on the config).
struct ServerMetrics {
  obs::Counter* submitted;
  obs::Counter* rejected;        // admission control (kOverloaded)
  obs::Counter* malformed;       // frames rejected at decode
  obs::Counter* idem_replays;    // replies served from the store
  obs::Counter* idem_joined;     // duplicates coalesced while in flight
  obs::Counter* verify_batches;  // cross-session batch verifications
  obs::Counter* verify_coins;    // deposits those batches covered
  obs::Counter* accepted;
  obs::Counter* settle_rejected;
  obs::Histogram* decode_lat;
  obs::Histogram* verify_lat;    // per batch
  obs::Histogram* settle_lat;
  obs::Histogram* request_lat;   // submit → reply, end to end

  ServerMetrics()
      : submitted(&obs::counter("server.ingress.submitted")),
        rejected(&obs::counter("server.ingress.rejected")),
        malformed(&obs::counter("server.decode.malformed")),
        idem_replays(&obs::counter("server.idem.replays")),
        idem_joined(&obs::counter("server.idem.joined")),
        verify_batches(&obs::counter("server.verify.batches")),
        verify_coins(&obs::counter("server.verify.coins")),
        accepted(&obs::counter("server.settle.accepted")),
        settle_rejected(&obs::counter("server.settle.rejected")),
        decode_lat(&obs::histogram("server.stage.decode")),
        verify_lat(&obs::histogram("server.stage.verify")),
        settle_lat(&obs::histogram("server.stage.settle")),
        request_lat(&obs::histogram("server.request")) {}
};

ServerMetrics& metrics() {
  static ServerMetrics m;
  return m;
}

std::uint64_t elapsed_us(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

Bytes encode_deposit_request(const std::string& aid, bool hiding,
                             const Bytes& coin_wire) {
  Writer w;
  w.put_string(aid);
  w.put_bool(hiding);
  w.put_bytes(coin_wire);
  return w.take();
}

MarketServer::MarketServer(const DecParams& params, DecBank& bank,
                           VBank& vbank, LogicalScheduler& scheduler,
                           MarketServerConfig config)
    : params_(params),
      bank_(bank),
      vbank_(vbank),
      scheduler_(scheduler),
      config_(config) {
  // Every stage needs at least one worker and every edge a slot; a
  // zero in the config means "smallest", not "none".
  config_.decode_threads = std::max<std::size_t>(1, config_.decode_threads);
  config_.verify_threads = std::max<std::size_t>(1, config_.verify_threads);
  config_.settle_shards = std::max<std::size_t>(1, config_.settle_shards);
  config_.verify_batch_max =
      std::max<std::size_t>(1, config_.verify_batch_max);

  // Durability hook-up: every mutation the pipeline performs from here
  // on — serial filings, credits, accruals, cached replies — flows into
  // the WAL.
  if (config_.journal != nullptr) {
    bank_.attach_journal(config_.journal);
    vbank_.attach_journal(config_.journal);
    store_.attach_journal(config_.journal);
    epochs_.attach_journal(config_.journal);
  }

  ingress_ = std::make_unique<BoundedQueue<Ingress>>(
      config_.ingress_capacity, &obs::gauge("server.queue.ingress"));
  verify_q_ = std::make_unique<BoundedQueue<Deposit>>(
      config_.verify_capacity, &obs::gauge("server.queue.verify"));
  settle_qs_.reserve(config_.settle_shards);
  for (std::size_t s = 0; s < config_.settle_shards; ++s) {
    settle_qs_.push_back(std::make_unique<BoundedQueue<Deposit>>(
        config_.settle_capacity,
        &obs::gauge("server.queue.settle." + std::to_string(s))));
  }

  for (std::size_t i = 0; i < config_.decode_threads; ++i) {
    decode_workers_.emplace_back([this] { decode_loop(); });
  }
  for (std::size_t i = 0; i < config_.verify_threads; ++i) {
    verify_workers_.emplace_back([this] { verify_loop(); });
  }
  for (std::size_t s = 0; s < config_.settle_shards; ++s) {
    settle_workers_.emplace_back([this, s] { settle_loop(s); });
  }
}

MarketServer::~MarketServer() { shutdown(); }

bool MarketServer::submit(Bytes envelope_wire, DoneFn done) {
  Ingress item{std::move(envelope_wire), std::move(done),
               std::chrono::steady_clock::now()};
  if (!ingress_->try_push(std::move(item))) {
    metrics().rejected->add();
    // Shed load with an answer, not an exception: overload is a steady-
    // state outcome under pressure. The callback runs synchronously (the
    // pipeline never saw the envelope, so nothing else ever will).
    item.done(SettleOutcome::overload(
        "MarketServer: ingress queue saturated"));
    return false;
  }
  metrics().submitted->add();
  return true;
}

SettleOutcome MarketServer::call(const Bytes& envelope_wire) {
  auto promise = std::make_shared<std::promise<SettleOutcome>>();
  std::future<SettleOutcome> fut = promise->get_future();
  submit(envelope_wire, [promise](const SettleOutcome& outcome) {
    promise->set_value(outcome);
  });
  return fut.get();
}

std::size_t MarketServer::shard_of(const Bytes& key) const {
  // FNV-1a over the key bytes; idem keys are SHA-256 digests for honest
  // clients but any byte string shards fine.
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint8_t b : key) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h % settle_qs_.size();
}

void MarketServer::decode_loop() {
  ScopedRole as_ma(Role::Admin);
  while (auto in = ingress_->pop()) {
    obs::ScopedTimer timer(*metrics().decode_lat);

    // Frame parse. A corrupted or truncated envelope carries no
    // trustworthy idempotency key, so it is answered directly and never
    // recorded — exactly how the reliable link treats it: the client
    // retries and the retry is a fresh delivery.
    Envelope env;
    try {
      env = Envelope::deserialize(in->wire);
    } catch (const MarketError& e) {
      metrics().malformed->add();
      in->done(SettleOutcome::rejected(e.code(), e.what()));
      continue;
    }

    // Idempotency + in-flight coalescing. Order matters: the in-flight
    // map is checked and updated under its lock BEFORE the store, and
    // finish() records to the store before clearing the map, so a
    // duplicate can never slip between "not yet settled" and "already
    // forgotten" and settle twice.
    {
      std::unique_lock lock(inflight_mu_);
      const auto it = inflight_.find(env.idem_key);
      if (it != inflight_.end()) {
        it->second.push_back(Waiter{std::move(in->done), in->t0});
        metrics().idem_joined->add();
        continue;
      }
      if (const auto cached = store_.find(env.idem_key)) {
        lock.unlock();
        metrics().idem_replays->add();
        metrics().request_lat->observe(elapsed_us(in->t0));
        in->done(SettleOutcome::replay_of(*cached));
        continue;
      }
      inflight_.emplace(env.idem_key,
                        std::vector<Waiter>{{std::move(in->done), in->t0}});
    }

    // Request parse: account, spend kind, spend body. Failures here have
    // a valid key, so they finish through the store like any reply — a
    // redelivered garbage payload replays the rejection instead of
    // re-parsing.
    Deposit dep;
    dep.idem_key = env.idem_key;
    try {
      Reader r(env.payload);
      dep.aid = r.get_string();
      dep.hiding = r.get_bool();
      const Bytes body = r.get_bytes();
      if (!r.exhausted()) {
        throw MarketError(MarketErrc::kMalformedMessage,
                          "deposit: trailing garbage");
      }
      if (!vbank_.has_account(dep.aid)) {
        throw MarketError(MarketErrc::kUnknownAccount,
                          "deposit: unknown account " + dep.aid);
      }
      if (dep.hiding) {
        dep.hspend = RootHidingSpend::deserialize(params_, body);
      } else {
        dep.spend = SpendBundle::deserialize(params_, body);
      }
    } catch (const MarketError& e) {
      metrics().malformed->add();
      finish(dep.idem_key, SettleOutcome::rejected(e.code(), e.what()));
      continue;
    } catch (const std::exception& e) {
      metrics().malformed->add();
      finish(dep.idem_key, SettleOutcome::rejected(
                               MarketErrc::kMalformedMessage, e.what()));
      continue;
    }

    // Blocking push: back-pressure from verify propagates to the ingress
    // edge through this worker standing still. push() only fails once
    // shutdown closed the edge; admitted work still gets an answer.
    if (!verify_q_->push(std::move(dep))) {
      finish(env.idem_key,
             SettleOutcome::rejected(MarketErrc::kOverloaded,
                                     "server shutting down"));
    }
  }
}

void MarketServer::verify_loop() {
  ScopedRole as_ma(Role::Admin);
  while (true) {
    auto first = verify_q_->pop();
    if (!first) return;

    // Greedy accumulation: whatever unrelated sessions have queued since
    // the last batch rides in this one. No linger timer — under light
    // load batches are small and latency stays low; under heavy load the
    // queue is never empty and batches reach verify_batch_max, which is
    // when amortizing the pairing product matters.
    std::vector<Deposit> batch;
    batch.reserve(config_.verify_batch_max);
    batch.push_back(std::move(*first));
    while (batch.size() < config_.verify_batch_max) {
      auto more = verify_q_->try_pop();
      if (!more) break;
      batch.push_back(std::move(*more));
    }

    obs::ScopedTimer timer(*metrics().verify_lat);

    // verify_batch wants value vectors ordered hiding-first; spends move
    // out of the items and back, never copy.
    std::vector<RootHidingSpend> hiding;
    std::vector<SpendBundle> spends;
    std::vector<std::size_t> hiding_slots, spend_slots;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].hiding) {
        hiding.push_back(std::move(*batch[i].hspend));
        hiding_slots.push_back(i);
      } else {
        spends.push_back(std::move(*batch[i].spend));
        spend_slots.push_back(i);
      }
    }

    const std::vector<bool> ok = bank_.verify_batch(hiding, spends, nullptr);
    metrics().verify_batches->add();
    metrics().verify_coins->add(batch.size());

    for (std::size_t k = 0; k < hiding_slots.size(); ++k) {
      Deposit& dep = batch[hiding_slots[k]];
      dep.verified = ok[k];
      dep.hspend = std::move(hiding[k]);
    }
    for (std::size_t k = 0; k < spend_slots.size(); ++k) {
      Deposit& dep = batch[spend_slots[k]];
      dep.verified = ok[hiding.size() + k];
      dep.spend = std::move(spends[k]);
    }

    for (Deposit& dep : batch) {
      const Bytes key = dep.idem_key;  // survives the move below
      const std::size_t shard = shard_of(key);
      if (!settle_qs_[shard]->push(std::move(dep))) {
        finish(key, SettleOutcome::rejected(MarketErrc::kOverloaded,
                                            "server shutting down"));
      }
    }
  }
}

void MarketServer::settle_loop(std::size_t shard) {
  ScopedRole as_ma(Role::Admin);
  BoundedQueue<Deposit>& q = *settle_qs_[shard];
  while (auto item = q.pop()) {
    obs::ScopedTimer timer(*metrics().settle_lat);
    SettleOutcome outcome;
    {
      // One transaction per deposit: the spend marks, the fiat credit and
      // the cached reply all carry this scope's txn id, and recovery
      // replays them all-or-nothing — a crash between the serial filing
      // and the credit can never recover a half-settled coin. With a null
      // journal the scope is a no-op and this is the in-memory fast path.
      storage::JournalScope txn(config_.journal);
      if (!item->verified) {
        outcome = SettleOutcome::rejected(MarketErrc::kSpendRejected,
                                          "spend verification failed");
      } else {
        try {
          outcome = item->hiding ? bank_.settle_verified_hiding(*item->hspend)
                                 : bank_.settle_verified(*item->spend);
          if (outcome.accepted()) {
            // Epoch mode swaps the per-coin credit for an accrual into
            // the current billing window; the money reaches the fiat
            // ledger as one net credit at close_epoch(). Everything
            // else — serial filing above, reply caching below — is
            // identical, so double-spend and idempotency guarantees
            // don't depend on the settlement mode.
            if (config_.epoch_netting) {
              epochs_.accrue(item->aid, outcome.value, scheduler_.now());
            } else {
              vbank_.credit(item->aid, outcome.value, scheduler_.now());
            }
          }
        } catch (const MarketError& e) {
          outcome = SettleOutcome::rejected(e.code(), e.what());
        }
      }
      record_reply(item->idem_key, outcome);
    }
    // Waiters fire only after the scope closed, i.e. after the txn's
    // commit marker is in the WAL: once a client observes an outcome, a
    // crash-recovered server observes the same one.
    (outcome.accepted() ? metrics().accepted : metrics().settle_rejected)
        ->add();
    fire_waiters(item->idem_key, outcome);
  }
}

EpochAccumulator::CloseStats MarketServer::close_epoch() {
  return epochs_.close(vbank_, scheduler_.now());
}

void MarketServer::record_reply(const Bytes& key,
                                const SettleOutcome& outcome) {
  store_.record(key, outcome.serialize());
}

void MarketServer::fire_waiters(const Bytes& key,
                                const SettleOutcome& outcome) {
  std::vector<Waiter> waiters;
  {
    std::lock_guard lock(inflight_mu_);
    const auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      waiters = std::move(it->second);
      inflight_.erase(it);
    }
  }
  for (Waiter& waiter : waiters) {
    metrics().request_lat->observe(elapsed_us(waiter.t0));
    waiter.done(outcome);
  }
}

void MarketServer::finish(const Bytes& key, const SettleOutcome& outcome) {
  // Record first, clear the in-flight entry second: a duplicate arriving
  // between the two sees either the in-flight entry (joins, gets fired
  // below... or already fired — then its waiter list is fresh and it
  // re-finishes off the store) or the recorded reply. Never neither.
  record_reply(key, outcome);
  fire_waiters(key, outcome);
}

void MarketServer::shutdown() {
  std::lock_guard lock(shutdown_mu_);
  if (stopped_) return;
  stopped_ = true;
  // Close and drain in pipeline order: each stage's workers exit only
  // once their input is closed AND empty, so everything admitted before
  // the close flows through to its reply.
  ingress_->close();
  for (std::thread& t : decode_workers_) t.join();
  verify_q_->close();
  for (std::thread& t : verify_workers_) t.join();
  for (auto& q : settle_qs_) q->close();
  for (std::thread& t : settle_workers_) t.join();
  // Everything accepted got its reply — make it durable before the
  // journal's owner tears the file down or snapshots over it.
  if (config_.journal != nullptr) config_.journal->sync();
}

}  // namespace ppms
