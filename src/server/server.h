// MarketServer — the MA's deposit path restructured as a Click-style
// element graph: a staged pipeline of decode → verify → settle elements
// connected by bounded MPMC queues (server/queue.h) with admission
// control at the ingress edge.
//
// The protocol markets (core/ppmsdec.h) simulate the MA as direct
// function calls inside one protocol session; a production MA serving
// 10^5-10^6 concurrent SP sessions is a long-lived server whose deposit
// traffic arrives as independent envelopes. This module is that server:
//
//   submit(envelope) ──try_push──▶ [ingress q] ─▶ (decode) ─▶ [verify q]
//        │ full → kOverloaded                         │
//        ▼                                            ▼
//   admission control                          (verify, batched)
//                                                     │ shard by key
//                                     ┌───────────────┴──────────────┐
//                                     ▼                              ▼
//                               [settle q 0] ─▶ (settle 0) ... (settle S-1)
//                                                     │
//                                                     ▼
//                                        DecBank commit + VBank credit,
//                                        reply recorded, waiters fired
//
//  * decode — Envelope::deserialize (the PR 4 wire frame, so fault plans
//    and FaultyChannel feeds apply unchanged), idempotency check against
//    the server's IdempotencyStore, in-flight duplicate coalescing, and
//    request-payload parsing (account, spend deserialization, account
//    existence). Malformed frames are answered immediately and never
//    consume verify/settle capacity.
//  * verify — pops one deposit, then greedily drains up to
//    verify_batch_max more without blocking, and verifies the whole
//    accumulation through DecBank::verify_batch: the t-independent
//    certificate equations of deposits from UNRELATED sessions fold into
//    one randomized product of pairings (dec/spend.h,
//    verify_cert_equation_batch), which is where the pairing bill of the
//    deposit path amortizes across the whole market's traffic instead of
//    one SP's tick.
//  * settle — deposits shard by idempotency key onto per-shard queues;
//    each settle worker commits its stream through
//    DecBank::settle_verified{,_hiding} (striped double-spend store) and
//    credits the fiat ledger. The reply is recorded in the
//    IdempotencyStore BEFORE waiters fire, so any later redelivery of the
//    same key replays the recorded outcome instead of re-settling —
//    at-least-once delivery in, exactly-once settlement out.
//
// Back-pressure: every inter-stage edge is a bounded queue pushed with
// the blocking discipline, so a saturated settle stage stalls verify,
// which stalls decode, which fills the ingress queue — and only there,
// at the admission edge, is load shed (MarketErrc::kOverloaded).
// Nothing buffers without bound and nothing accepted is dropped:
// shutdown() closes the stages in pipeline order and drains each one
// before joining its workers.
//
// Duplicate discipline (the FaultyChannel interaction PR 4's direct-call
// path never exercised): two copies of one envelope may be in flight
// concurrently — a retry racing a delayed original. The decode stage
// coalesces them under inflight_: the first copy proceeds, every later
// copy just parks its completion callback on the key. The settle stage
// records the reply and fires all parked waiters at once. A copy
// arriving after settlement hits the IdempotencyStore and replays.
// Either way the coin settles exactly once (tests/server/).
//
// Observability: stage latency histograms (server.stage.*), exact queue
// depth gauges (server.queue.*), admission/settle/batch counters —
// taxonomy in OBSERVABILITY.md, architecture tour in ARCHITECTURE.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "dec/bank.h"
#include "market/epoch.h"
#include "market/faults.h"
#include "market/outcome.h"
#include "market/vbank.h"
#include "server/queue.h"
#include "storage/journal.h"

namespace ppms {

struct MarketServerConfig {
  std::size_t ingress_capacity = 4096;  ///< admission edge; full → reject
  std::size_t verify_capacity = 4096;   ///< decode → verify edge
  std::size_t settle_capacity = 1024;   ///< per settle shard
  std::size_t decode_threads = 1;
  std::size_t verify_threads = 2;
  std::size_t settle_shards = 2;        ///< one worker + queue per shard
  /// Verify batches grow greedily up to this size: a worker pops one
  /// deposit, then drains whatever else is queued without waiting.
  std::size_t verify_batch_max = 64;
  /// Optional durability: when set, the server attaches this journal to
  /// its DecBank, VBank and IdempotencyStore, and the settle stage wraps
  /// each deposit's three mutations (spend mark, credit, cached reply)
  /// in one JournalScope so they recover all-or-nothing. Null keeps the
  /// pure in-memory fast path. Must outlive the server.
  storage::LedgerJournal* journal = nullptr;
  /// Epoch-netting mode (market/epoch.h): accepted deposits ACCRUE per
  /// account instead of crediting the fiat ledger coin by coin; one net
  /// credit per account lands at close_epoch(). Double-spend protection
  /// is unchanged — serials still file and replies still cache in the
  /// settle stage, so a replayed coin is rejected mid-window and across
  /// window boundaries alike. The per-deposit JournalScope then carries
  /// a kEpochAccrue record where per-coin mode carries the kCredit.
  bool epoch_netting = false;
};

/// The request payload a deposit envelope carries: the SP's account id,
/// whether the coin is a root-hiding spend, and the serialized spend.
/// Matches the per-coin deposit message of the faulty-transport market
/// (PpmsDecMarket::deposit_one), so the same client code can feed either.
Bytes encode_deposit_request(const std::string& aid, bool hiding,
                             const Bytes& coin_wire);

class MarketServer {
 public:
  /// Completion callback; runs once the deposit's outcome exists —
  /// settled, replayed, rejected at decode, or shed at admission (the
  /// one case where it runs synchronously inside submit). Must not throw
  /// and should not block — it usually executes inside a stage.
  using DoneFn = std::function<void(const SettleOutcome&)>;

  /// The server borrows the bank, ledger and clock (the MA owns them);
  /// they must outlive it. Worker threads start immediately. When the
  /// config carries a journal it is attached to all three stores here.
  MarketServer(const DecParams& params, DecBank& bank, VBank& vbank,
               LogicalScheduler& scheduler, MarketServerConfig config = {});
  ~MarketServer();  ///< runs shutdown()

  MarketServer(const MarketServer&) = delete;
  MarketServer& operator=(const MarketServer&) = delete;

  /// Admission-controlled asynchronous submit of one serialized Envelope
  /// whose payload is an encode_deposit_request frame. `done` is ALWAYS
  /// invoked exactly once: asynchronously with the settled/replayed/
  /// rejected outcome, or synchronously with a kOverloaded outcome when
  /// the ingress queue is saturated (or the server is shut down) — the
  /// client's cue to back off and retry. Returns whether the envelope
  /// was admitted into the pipeline.
  bool submit(Bytes envelope_wire, DoneFn done);

  /// Blocking convenience: submit and wait for the outcome (which may be
  /// the synchronous kOverloaded answer).
  SettleOutcome call(const Bytes& envelope_wire);

  /// Close the ingress, drain every stage in pipeline order, join all
  /// workers. Every deposit admitted before the close still settles and
  /// fires its callback. Idempotent; the destructor calls it.
  void shutdown();

  /// Close the current billing window (epoch-netting mode): one net
  /// VBank credit per account with pending accruals plus the kEpochMark
  /// anchor, committed under one JournalScope (market/epoch.h). Safe to
  /// call while settle workers run — accruals racing the close land in
  /// the next window whole. Meaningful only with epoch_netting set (a
  /// per-coin server has nothing pending; the call then just advances
  /// the window counter).
  EpochAccumulator::CloseStats close_epoch();

  const MarketServerConfig& config() const { return config_; }
  IdempotencyStore& store() { return store_; }
  EpochAccumulator& epochs() { return epochs_; }

 private:
  struct Ingress {
    Bytes wire;
    DoneFn done;
    std::chrono::steady_clock::time_point t0;
  };

  struct Deposit {
    Bytes idem_key;
    std::string aid;
    bool hiding = false;
    std::optional<SpendBundle> spend;        ///< when !hiding
    std::optional<RootHidingSpend> hspend;   ///< when hiding
    bool verified = false;
  };

  struct Waiter {
    DoneFn done;
    std::chrono::steady_clock::time_point t0;
  };

  void decode_loop();
  void verify_loop();
  void settle_loop(std::size_t shard);

  /// store_.record the serialized outcome under `key` (journaled when a
  /// journal is attached — call inside the deposit's JournalScope).
  void record_reply(const Bytes& key, const SettleOutcome& outcome);
  /// Fire every waiter parked on `key`.
  void fire_waiters(const Bytes& key, const SettleOutcome& outcome);
  /// record_reply + fire_waiters for the single-record decode rejects.
  void finish(const Bytes& key, const SettleOutcome& outcome);

  std::size_t shard_of(const Bytes& key) const;

  const DecParams& params_;
  DecBank& bank_;
  VBank& vbank_;
  LogicalScheduler& scheduler_;
  MarketServerConfig config_;

  IdempotencyStore store_;
  EpochAccumulator epochs_;  ///< pending window sums (epoch_netting)
  /// Keys currently traveling the pipeline → callbacks awaiting their
  /// reply. Guarded by inflight_mu_; see decode_loop/finish for the
  /// ordering that makes duplicate submissions settle exactly once.
  std::mutex inflight_mu_;
  std::map<Bytes, std::vector<Waiter>> inflight_;

  std::unique_ptr<BoundedQueue<Ingress>> ingress_;
  std::unique_ptr<BoundedQueue<Deposit>> verify_q_;
  std::vector<std::unique_ptr<BoundedQueue<Deposit>>> settle_qs_;

  std::vector<std::thread> decode_workers_;
  std::vector<std::thread> verify_workers_;
  std::vector<std::thread> settle_workers_;

  std::mutex shutdown_mu_;
  bool stopped_ = false;
};

}  // namespace ppms
