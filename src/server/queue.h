// Bounded MPMC queue — the edge type of the staged server's element graph.
//
// Click wires its packet-processing elements together with explicit Queue
// elements whose finite capacity is where overload becomes visible; the
// MarketServer (server/server.h) does the same for deposit traffic. Each
// queue supports the two push disciplines the pipeline needs:
//
//  * try_push — non-blocking admission: returns false when the queue is
//    full (or closed), and the caller turns that into
//    MarketError(kOverloaded). Used only at the ingress edge, where the
//    server must shed load instead of buffering without bound.
//  * push — blocking back-pressure: an upstream stage worker waits for
//    space, so a slow downstream stage throttles the whole pipeline back
//    to the ingress queue instead of growing unbounded buffers between
//    stages.
//
// close() ends the stream: pending items still drain through pop()
// (shutdown completes in-flight work — nothing accepted is dropped), and
// a drained, closed queue returns nullopt, which is the stage workers'
// exit signal. An optional depth gauge (obs/metrics.h) is updated under
// the queue lock so exported `server.queue.*` depths are exact, not
// racy estimates.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "obs/metrics.h"

namespace ppms {

template <typename T>
class BoundedQueue {
 public:
  /// Capacity must be >= 1 (a zero capacity could never pass traffic).
  explicit BoundedQueue(std::size_t capacity, obs::Gauge* depth = nullptr)
      : capacity_(capacity == 0 ? 1 : capacity), depth_(depth) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// Non-blocking admission push: false when full or closed. Takes an
  /// rvalue reference and only consumes the item on success, so a
  /// rejected caller still owns it (the server answers the completion
  /// callback inside with a kOverloaded outcome).
  bool try_push(T&& item) {
    {
      std::lock_guard lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      publish_depth();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking push: waits for space (back-pressure), returns false only
  /// when the queue was closed before the item could be enqueued.
  bool push(T item) {
    {
      std::unique_lock lock(mu_);
      not_full_.wait(lock,
                     [&] { return closed_ || items_.size() < capacity_; });
      if (closed_) return false;
      items_.push_back(std::move(item));
      publish_depth();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop: returns the oldest item; nullopt only once the queue
  /// is closed AND drained (the consumer's exit signal).
  std::optional<T> pop() {
    std::optional<T> item;
    {
      std::unique_lock lock(mu_);
      not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
      if (items_.empty()) return std::nullopt;
      item.emplace(std::move(items_.front()));
      items_.pop_front();
      publish_depth();
    }
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop — how the verify stage accumulates a batch beyond
  /// its first (blocking) item without waiting for stragglers.
  std::optional<T> try_pop() {
    std::optional<T> item;
    {
      std::lock_guard lock(mu_);
      if (items_.empty()) return std::nullopt;
      item.emplace(std::move(items_.front()));
      items_.pop_front();
      publish_depth();
    }
    not_full_.notify_one();
    return item;
  }

  /// End the stream: every subsequent push fails, queued items still
  /// drain through pop(). Idempotent.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

 private:
  void publish_depth() {
    if (depth_ != nullptr) depth_->set(items_.size());
  }

  const std::size_t capacity_;
  obs::Gauge* depth_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace ppms
