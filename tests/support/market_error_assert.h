// Helper for asserting on MarketError codes: run the callable, swallow
// the MarketError it should throw, and hand back the code (nullopt when
// nothing or something else was thrown). Tests compare codes, never
// what() strings.
#pragma once

#include <optional>

#include "market/error.h"

namespace ppms {

template <typename F>
std::optional<MarketErrc> market_errc(F&& f) {
  try {
    f();
  } catch (const MarketError& e) {
    return e.code();
  } catch (...) {
    return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace ppms
