#include "clsig/clsig.h"

#include <gtest/gtest.h>

namespace ppms {
namespace {

struct Fixture {
  TypeAParams params;
  ClKeyPair kp;
};

const Fixture& fx() {
  static const Fixture f = [] {
    SecureRandom rng(99);
    Fixture out{typea_generate(rng, 48, 128), {}};
    out.kp = cl_keygen(out.params, rng);
    return out;
  }();
  return f;
}

TEST(ClSigTest, SignVerifyRoundTrip) {
  SecureRandom rng(1);
  const Bigint m = Bigint::random_below(rng, fx().params.r);
  const ClSignature sig = cl_sign(fx().params, fx().kp.sk, m, rng);
  EXPECT_TRUE(cl_verify(fx().params, fx().kp.pk, m, sig));
}

TEST(ClSigTest, WrongMessageRejected) {
  SecureRandom rng(2);
  const Bigint m(12345);
  const ClSignature sig = cl_sign(fx().params, fx().kp.sk, m, rng);
  EXPECT_FALSE(cl_verify(fx().params, fx().kp.pk, Bigint(12346), sig));
}

TEST(ClSigTest, WrongKeyRejected) {
  SecureRandom rng(3);
  const ClKeyPair other = cl_keygen(fx().params, rng);
  const Bigint m(777);
  const ClSignature sig = cl_sign(fx().params, fx().kp.sk, m, rng);
  EXPECT_FALSE(cl_verify(fx().params, other.pk, m, sig));
}

TEST(ClSigTest, TamperedComponentsRejected) {
  SecureRandom rng(4);
  const Bigint m(42);
  const ClSignature sig = cl_sign(fx().params, fx().kp.sk, m, rng);
  ClSignature bad = sig;
  bad.b = ec_mul(bad.b, Bigint(2), fx().params.p);
  EXPECT_FALSE(cl_verify(fx().params, fx().kp.pk, m, bad));
  bad = sig;
  bad.c = ec_add(bad.c, fx().params.g, fx().params.p);
  EXPECT_FALSE(cl_verify(fx().params, fx().kp.pk, m, bad));
  bad = sig;
  bad.a = EcPoint::at_infinity();
  EXPECT_FALSE(cl_verify(fx().params, fx().kp.pk, m, bad));
}

TEST(ClSigTest, MessageReducedModR) {
  SecureRandom rng(5);
  const Bigint m(5);
  const ClSignature sig = cl_sign(fx().params, fx().kp.sk, m, rng);
  EXPECT_TRUE(cl_verify(fx().params, fx().kp.pk, m + fx().params.r, sig));
}

TEST(ClSigTest, SignaturesAreRandomized) {
  SecureRandom rng(6);
  const Bigint m(9);
  const ClSignature s1 = cl_sign(fx().params, fx().kp.sk, m, rng);
  const ClSignature s2 = cl_sign(fx().params, fx().kp.sk, m, rng);
  EXPECT_FALSE(s1.a == s2.a);
}

TEST(ClSigTest, RandomizationPreservesValidityAndUnlinkability) {
  SecureRandom rng(7);
  const Bigint m(31337);
  const ClSignature sig = cl_sign(fx().params, fx().kp.sk, m, rng);
  const ClSignature rand_sig = cl_randomize(fx().params, sig, rng);
  EXPECT_TRUE(cl_verify(fx().params, fx().kp.pk, m, rand_sig));
  EXPECT_FALSE(rand_sig.a == sig.a);
  EXPECT_FALSE(rand_sig.c == sig.c);
}

TEST(ClSigTest, CommittedSigningNeverSeesMessage) {
  // Blind issuance: signer receives only M = g^m.
  SecureRandom rng(8);
  const Bigint m = Bigint::random_below(rng, fx().params.r);
  const EcPoint M = ec_mul(fx().params.g, m, fx().params.p);
  const ClSignature sig = cl_sign_committed(fx().params, fx().kp.sk, M, rng);
  EXPECT_TRUE(cl_verify(fx().params, fx().kp.pk, m, sig));
  EXPECT_FALSE(cl_verify(fx().params, fx().kp.pk, m + Bigint(1), sig));
}

TEST(ClSigTest, CommittedSigningRejectsBadPoint) {
  SecureRandom rng(9);
  EcPoint bad = fx().params.g;
  bad.x = fp_add(bad.x, Bigint(1), fx().params.p);
  EXPECT_THROW(cl_sign_committed(fx().params, fx().kp.sk, bad, rng),
               std::invalid_argument);
}

TEST(ClSigTest, SerializationRoundTrips) {
  SecureRandom rng(10);
  const Bigint m(4096);
  const ClSignature sig = cl_sign(fx().params, fx().kp.sk, m, rng);
  const ClSignature copy =
      ClSignature::deserialize(fx().params, sig.serialize(fx().params));
  EXPECT_TRUE(cl_verify(fx().params, fx().kp.pk, m, copy));

  const ClPublicKey pk_copy = ClPublicKey::deserialize(
      fx().params, fx().kp.pk.serialize(fx().params));
  EXPECT_TRUE(cl_verify(fx().params, pk_copy, m, sig));
}

TEST(ClSigBatchTest, EmptyBatchVerifies) {
  SecureRandom rng(20);
  EXPECT_TRUE(cl_verify_batch(fx().params, fx().kp.pk, {}, rng).empty());
}

TEST(ClSigBatchTest, AllValidBatchAccepted) {
  SecureRandom rng(21);
  std::vector<ClBatchItem> items;
  for (int i = 0; i < 64; ++i) {
    const Bigint m = Bigint::random_below(rng, fx().params.r);
    items.push_back({m, cl_sign(fx().params, fx().kp.sk, m, rng)});
  }
  const std::vector<bool> ok =
      cl_verify_batch(fx().params, fx().kp.pk, items, rng);
  ASSERT_EQ(ok.size(), items.size());
  for (std::size_t i = 0; i < ok.size(); ++i) {
    EXPECT_TRUE(ok[i]) << "item " << i;
  }
}

TEST(ClSigBatchTest, SingleForgeryInLargeBatchIsSingledOut) {
  // One forged signature among 64 must fail the folded product check, and
  // the per-signature fallback must then blame exactly the forged index.
  SecureRandom rng(22);
  std::vector<ClBatchItem> items;
  for (int i = 0; i < 64; ++i) {
    const Bigint m = Bigint::random_below(rng, fx().params.r);
    items.push_back({m, cl_sign(fx().params, fx().kp.sk, m, rng)});
  }
  const std::size_t forged = 17;
  items[forged].sig.c =
      ec_add(items[forged].sig.c, fx().params.g, fx().params.p);
  const std::vector<bool> ok =
      cl_verify_batch(fx().params, fx().kp.pk, items, rng);
  ASSERT_EQ(ok.size(), items.size());
  for (std::size_t i = 0; i < ok.size(); ++i) {
    EXPECT_EQ(ok[i], i != forged) << "item " << i;
  }
}

TEST(ClSigBatchTest, WrongMessageCaughtInSmallBatch) {
  SecureRandom rng(23);
  std::vector<ClBatchItem> items;
  for (int i = 0; i < 4; ++i) {
    const Bigint m = Bigint::random_below(rng, fx().params.r);
    items.push_back({m, cl_sign(fx().params, fx().kp.sk, m, rng)});
  }
  items[2].m = items[2].m + Bigint(1);
  const std::vector<bool> ok =
      cl_verify_batch(fx().params, fx().kp.pk, items, rng);
  ASSERT_EQ(ok.size(), 4u);
  EXPECT_TRUE(ok[0]);
  EXPECT_TRUE(ok[1]);
  EXPECT_FALSE(ok[2]);
  EXPECT_TRUE(ok[3]);
}

TEST(ClSigBatchTest, MalformedMemberFallsBackToExactVerification) {
  // A structurally broken signature (a = ∞) cannot even enter the folded
  // product; the batch must still return exact per-item verdicts.
  SecureRandom rng(24);
  std::vector<ClBatchItem> items;
  for (int i = 0; i < 3; ++i) {
    const Bigint m = Bigint::random_below(rng, fx().params.r);
    items.push_back({m, cl_sign(fx().params, fx().kp.sk, m, rng)});
  }
  items[1].sig.a = EcPoint::at_infinity();
  const std::vector<bool> ok =
      cl_verify_batch(fx().params, fx().kp.pk, items, rng);
  ASSERT_EQ(ok.size(), 3u);
  EXPECT_TRUE(ok[0]);
  EXPECT_FALSE(ok[1]);
  EXPECT_TRUE(ok[2]);
}

TEST(ClSigBatchTest, BatchAgreesWithPerSignatureVerdicts) {
  SecureRandom rng(25);
  std::vector<ClBatchItem> items;
  for (int i = 0; i < 8; ++i) {
    const Bigint m = Bigint::random_below(rng, fx().params.r);
    items.push_back({m, cl_sign(fx().params, fx().kp.sk, m, rng)});
  }
  items[0].sig.b = ec_mul(items[0].sig.b, Bigint(3), fx().params.p);
  items[5].m = items[5].m + Bigint(7);
  const std::vector<bool> batch =
      cl_verify_batch(fx().params, fx().kp.pk, items, rng);
  ASSERT_EQ(batch.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(batch[i],
              cl_verify(fx().params, fx().kp.pk, items[i].m, items[i].sig))
        << "item " << i;
  }
}

}  // namespace
}  // namespace ppms
