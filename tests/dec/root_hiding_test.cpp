#include "dec/root_hiding.h"

#include <gtest/gtest.h>

#include "dec_fixture.h"

namespace ppms {
namespace {

using testing::dec_params;
using testing::make_bank;
using testing::make_funded_wallet;

// Fewer rounds keep the suite fast; soundness scaling is tested
// explicitly below.
constexpr std::size_t kRounds = 16;

struct Fixture {
  std::shared_ptr<DecBank> bank;
  DecWallet wallet;
};

Fixture make_fixture(std::uint64_t seed) {
  SecureRandom rng(seed);
  auto bank = std::make_shared<DecBank>(dec_params(), rng);
  DecWallet wallet = make_funded_wallet(*bank, seed + 1);
  return {std::move(bank), std::move(wallet)};
}

RootHidingSpend spend_at(Fixture& fx, const NodeIndex& node,
                         std::uint64_t seed) {
  SecureRandom rng(seed);
  return make_root_hiding_spend(
      dec_params(), fx.bank->public_key(),
      fx.wallet.secret_for_testing(),
      // Any valid certificate works; pull a fresh spend's randomized one.
      fx.wallet.spend(node, fx.bank->public_key(), rng, {}).cert, node, rng,
      bytes_of("payee"), kRounds);
}

TEST(RootHidingTest, HonestSpendVerifies) {
  Fixture fx = make_fixture(10);
  const RootHidingSpend spend = spend_at(fx, NodeIndex{2, 1}, 11);
  EXPECT_TRUE(verify_root_hiding_spend(dec_params(), fx.bank->public_key(),
                                       spend, kRounds));
}

TEST(RootHidingTest, WalletHelperWorks) {
  Fixture fx = make_fixture(20);
  SecureRandom rng(21);
  const RootHidingSpend spend = fx.wallet.spend_hiding(
      NodeIndex{3, 5}, fx.bank->public_key(), rng, bytes_of("p"));
  EXPECT_TRUE(verify_root_hiding_spend(dec_params(), fx.bank->public_key(),
                                       spend));
}

TEST(RootHidingTest, RootSerialIsAbsent) {
  Fixture fx = make_fixture(30);
  SecureRandom rng(31);
  const NodeIndex node{3, 2};
  const RootHidingSpend hiding = fx.wallet.spend_hiding(
      node, fx.bank->public_key(), rng, {});
  const SpendBundle regular =
      fx.wallet.spend(node, fx.bank->public_key(), rng, {});
  // The regular spend exposes S_0..S_3; the hiding spend only S_1..S_3.
  EXPECT_EQ(hiding.path_serials.size(), 3u);
  EXPECT_EQ(regular.path_serials.size(), 4u);
  EXPECT_EQ(hiding.path_serials.front(), regular.path_serials[1]);
  for (const Bigint& s : hiding.path_serials) {
    EXPECT_NE(s, regular.path_serials[0]);
  }
}

TEST(RootHidingTest, RootNodeRejectedAtProve) {
  Fixture fx = make_fixture(40);
  SecureRandom rng(41);
  EXPECT_THROW(fx.wallet.spend_hiding(NodeIndex{0, 0},
                                      fx.bank->public_key(), rng, {}),
               std::invalid_argument);
}

TEST(RootHidingTest, TamperedSerialRejected) {
  Fixture fx = make_fixture(50);
  RootHidingSpend spend = spend_at(fx, NodeIndex{2, 0}, 51);
  const ZnGroup& g = dec_params().tower[spend.node.depth];
  spend.path_serials.back() =
      g.decode(g.pow(g.generator(), Bigint(424242)));
  EXPECT_FALSE(verify_root_hiding_spend(dec_params(),
                                        fx.bank->public_key(), spend,
                                        kRounds));
}

TEST(RootHidingTest, WrongFirstBranchBitRejected) {
  // Flipping b_1 changes the tower statement Y: the proof must die.
  Fixture fx = make_fixture(60);
  RootHidingSpend spend = spend_at(fx, NodeIndex{2, 2}, 61);
  spend.node.index ^= 2;  // flips branch_bit(1) at depth 2
  EXPECT_FALSE(verify_root_hiding_spend(dec_params(),
                                        fx.bank->public_key(), spend,
                                        kRounds));
}

TEST(RootHidingTest, TamperedResponseRejected) {
  Fixture fx = make_fixture(70);
  RootHidingSpend spend = spend_at(fx, NodeIndex{1, 1}, 71);
  spend.responses[3] =
      (spend.responses[3] + Bigint(1)).mod(dec_params().pairing.r);
  EXPECT_FALSE(verify_root_hiding_spend(dec_params(),
                                        fx.bank->public_key(), spend,
                                        kRounds));
}

TEST(RootHidingTest, ForeignBankKeyRejected) {
  Fixture fx = make_fixture(80);
  const RootHidingSpend spend = spend_at(fx, NodeIndex{1, 0}, 81);
  DecBank other = make_bank(82);
  EXPECT_FALSE(verify_root_hiding_spend(dec_params(), other.public_key(),
                                        spend, kRounds));
}

TEST(RootHidingTest, RoundCountMismatchRejected) {
  Fixture fx = make_fixture(90);
  const RootHidingSpend spend = spend_at(fx, NodeIndex{1, 0}, 91);
  EXPECT_FALSE(verify_root_hiding_spend(dec_params(),
                                        fx.bank->public_key(), spend,
                                        kRounds + 1));
}

TEST(RootHidingTest, ContextTamperRejected) {
  Fixture fx = make_fixture(100);
  RootHidingSpend spend = spend_at(fx, NodeIndex{2, 3}, 101);
  spend.context = bytes_of("other-payee");
  EXPECT_FALSE(verify_root_hiding_spend(dec_params(),
                                        fx.bank->public_key(), spend,
                                        kRounds));
}

TEST(RootHidingTest, SerializationRoundTrip) {
  Fixture fx = make_fixture(110);
  const RootHidingSpend spend = spend_at(fx, NodeIndex{3, 6}, 111);
  const RootHidingSpend copy = RootHidingSpend::deserialize(
      dec_params(), spend.serialize(dec_params()));
  EXPECT_TRUE(verify_root_hiding_spend(dec_params(),
                                       fx.bank->public_key(), copy,
                                       kRounds));
}

// --- bank integration --------------------------------------------------------

TEST(RootHidingBankTest, DepositCreditsValue) {
  Fixture fx = make_fixture(120);
  SecureRandom rng(121);
  const RootHidingSpend spend = fx.wallet.spend_hiding(
      NodeIndex{1, 0}, fx.bank->public_key(), rng, {});
  const auto result = fx.bank->deposit_hiding(spend);
  EXPECT_TRUE(result.accepted()) << result.reason;
  EXPECT_EQ(result.value, 4u);
}

TEST(RootHidingBankTest, SameNodeTwiceRejected) {
  Fixture fx = make_fixture(130);
  SecureRandom rng(131);
  const auto s1 = fx.wallet.spend_hiding(NodeIndex{2, 1},
                                         fx.bank->public_key(), rng, {});
  const auto s2 = fx.wallet.spend_hiding(NodeIndex{2, 1},
                                         fx.bank->public_key(), rng,
                                         bytes_of("other"));
  EXPECT_TRUE(fx.bank->deposit_hiding(s1).accepted());
  EXPECT_FALSE(fx.bank->deposit_hiding(s2).accepted());
}

TEST(RootHidingBankTest, ConflictsWithRegularSpendOfAncestor) {
  Fixture fx = make_fixture(140);
  SecureRandom rng(141);
  const SpendBundle ancestor =
      fx.wallet.spend(NodeIndex{1, 0}, fx.bank->public_key(), rng, {});
  const RootHidingSpend leaf = fx.wallet.spend_hiding(
      NodeIndex{3, 1}, fx.bank->public_key(), rng, {});
  EXPECT_TRUE(fx.bank->deposit(ancestor).accepted());
  EXPECT_FALSE(fx.bank->deposit_hiding(leaf).accepted());
}

TEST(RootHidingBankTest, ConflictsWithWholeCoinSpend) {
  // The depth-0 special case: a regular root deposit fences its children,
  // so a later hiding spend (which never shows S_0) still collides.
  Fixture fx = make_fixture(150);
  SecureRandom rng(151);
  const SpendBundle root =
      fx.wallet.spend(NodeIndex{0, 0}, fx.bank->public_key(), rng, {});
  const RootHidingSpend child = fx.wallet.spend_hiding(
      NodeIndex{2, 3}, fx.bank->public_key(), rng, {});
  EXPECT_TRUE(fx.bank->deposit(root).accepted());
  EXPECT_FALSE(fx.bank->deposit_hiding(child).accepted());
}

TEST(RootHidingBankTest, WholeCoinAfterHidingSpendRejected) {
  Fixture fx = make_fixture(160);
  SecureRandom rng(161);
  const RootHidingSpend child = fx.wallet.spend_hiding(
      NodeIndex{3, 7}, fx.bank->public_key(), rng, {});
  const SpendBundle root =
      fx.wallet.spend(NodeIndex{0, 0}, fx.bank->public_key(), rng, {});
  EXPECT_TRUE(fx.bank->deposit_hiding(child).accepted());
  const auto result = fx.bank->deposit(root);
  EXPECT_FALSE(result.accepted());
}

TEST(RootHidingBankTest, DisjointSubtreesBothAccepted) {
  Fixture fx = make_fixture(170);
  SecureRandom rng(171);
  const auto left = fx.wallet.spend_hiding(NodeIndex{1, 0},
                                           fx.bank->public_key(), rng, {});
  const auto right = fx.wallet.spend_hiding(NodeIndex{1, 1},
                                            fx.bank->public_key(), rng,
                                            {});
  EXPECT_TRUE(fx.bank->deposit_hiding(left).accepted());
  EXPECT_TRUE(fx.bank->deposit_hiding(right).accepted());
}

TEST(RootHidingBankTest, MixedRegularAndHidingAcrossSubtrees) {
  Fixture fx = make_fixture(180);
  SecureRandom rng(181);
  // Regular spend of the left half, hiding spend of a right-half leaf.
  const SpendBundle left =
      fx.wallet.spend(NodeIndex{1, 0}, fx.bank->public_key(), rng, {});
  const RootHidingSpend right_leaf = fx.wallet.spend_hiding(
      NodeIndex{3, 6}, fx.bank->public_key(), rng, {});
  EXPECT_TRUE(fx.bank->deposit(left).accepted());
  EXPECT_TRUE(fx.bank->deposit_hiding(right_leaf).accepted());
}

}  // namespace
}  // namespace ppms
