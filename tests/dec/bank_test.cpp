#include "dec/bank.h"

#include <gtest/gtest.h>

#include <thread>

#include "dec_fixture.h"

namespace ppms {
namespace {

using testing::dec_params;
using testing::make_bank;
using testing::make_funded_wallet;

TEST(BankDepositTest, HonestDepositCreditsValue) {
  DecBank bank = make_bank(300);
  DecWallet wallet = make_funded_wallet(bank, 301);
  SecureRandom rng(302);
  const SpendBundle bundle =
      wallet.spend(*wallet.allocate(4), bank.public_key(), rng, {});
  const auto result = bank.deposit(bundle);
  EXPECT_TRUE(result.accepted()) << result.reason;
  EXPECT_EQ(result.value, 4u);
  EXPECT_EQ(bank.recorded_serials(), 2u);  // depth-1 node: S_0, S_1
}

TEST(BankDepositTest, SameNodeTwiceRejected) {
  DecBank bank = make_bank(310);
  DecWallet wallet = make_funded_wallet(bank, 311);
  SecureRandom rng(312);
  const auto node = wallet.allocate(2);
  const SpendBundle b1 = wallet.spend(*node, bank.public_key(), rng, {});
  // A re-spend of the same node (fresh proof) — e.g. paying two payees
  // with the same subtree.
  const SpendBundle b2 = wallet.spend(*node, bank.public_key(), rng,
                                      bytes_of("other-payee"));
  EXPECT_TRUE(bank.deposit(b1).accepted());
  const auto result = bank.deposit(b2);
  EXPECT_FALSE(result.accepted());
  EXPECT_NE(result.reason.find("double spend"), std::string::npos);
}

TEST(BankDepositTest, AncestorAfterDescendantRejected) {
  DecBank bank = make_bank(320);
  DecWallet wallet = make_funded_wallet(bank, 321);
  SecureRandom rng(322);
  // Spend leaf {3, 0}, then attempt its depth-1 ancestor {1, 0}.
  const SpendBundle leaf = wallet.spend(NodeIndex{3, 0}, bank.public_key(),
                                        rng, {});
  const SpendBundle ancestor = wallet.spend(NodeIndex{1, 0},
                                            bank.public_key(), rng, {});
  EXPECT_TRUE(bank.deposit(leaf).accepted());
  const auto result = bank.deposit(ancestor);
  EXPECT_FALSE(result.accepted());
}

TEST(BankDepositTest, DescendantAfterAncestorRejected) {
  DecBank bank = make_bank(330);
  DecWallet wallet = make_funded_wallet(bank, 331);
  SecureRandom rng(332);
  const SpendBundle ancestor = wallet.spend(NodeIndex{1, 1},
                                            bank.public_key(), rng, {});
  const SpendBundle leaf = wallet.spend(NodeIndex{3, 7}, bank.public_key(),
                                        rng, {});
  EXPECT_TRUE(bank.deposit(ancestor).accepted());
  const auto result = bank.deposit(leaf);
  EXPECT_FALSE(result.accepted());
  EXPECT_NE(result.reason.find("ancestor"), std::string::npos);
}

TEST(BankDepositTest, DisjointSubtreesBothAccepted) {
  DecBank bank = make_bank(340);
  DecWallet wallet = make_funded_wallet(bank, 341);
  SecureRandom rng(342);
  const SpendBundle left = wallet.spend(NodeIndex{1, 0}, bank.public_key(),
                                        rng, {});
  const SpendBundle right_leaf = wallet.spend(NodeIndex{3, 4},
                                              bank.public_key(), rng, {});
  EXPECT_TRUE(bank.deposit(left).accepted());
  EXPECT_TRUE(bank.deposit(right_leaf).accepted());
}

TEST(BankDepositTest, TwoWalletsDoNotCollide) {
  DecBank bank = make_bank(350);
  DecWallet w1 = make_funded_wallet(bank, 351);
  DecWallet w2 = make_funded_wallet(bank, 352);
  SecureRandom rng(353);
  EXPECT_TRUE(
      bank.deposit(w1.spend(NodeIndex{0, 0}, bank.public_key(), rng, {}))
          .accepted());
  EXPECT_TRUE(
      bank.deposit(w2.spend(NodeIndex{0, 0}, bank.public_key(), rng, {}))
          .accepted());
}

TEST(BankDepositTest, InvalidBundleRejectedBeforeDb) {
  DecBank bank = make_bank(360);
  DecWallet wallet = make_funded_wallet(bank, 361);
  SecureRandom rng(362);
  SpendBundle bundle =
      wallet.spend(*wallet.allocate(1), bank.public_key(), rng, {});
  bundle.node.index ^= 1;
  const auto result = bank.deposit(bundle);
  EXPECT_FALSE(result.accepted());
  EXPECT_EQ(result.reason, "spend verification failed");
  EXPECT_EQ(bank.recorded_serials(), 0u);
}

TEST(BankDepositTest, FullCoinAsLeavesSumsToRootValue) {
  DecBank bank = make_bank(370);
  DecWallet wallet = make_funded_wallet(bank, 371);
  SecureRandom rng(372);
  std::uint64_t credited = 0;
  for (int i = 0; i < 8; ++i) {
    const SpendBundle bundle =
        wallet.spend(*wallet.allocate(1), bank.public_key(), rng, {});
    const auto result = bank.deposit(bundle);
    ASSERT_TRUE(result.accepted()) << result.reason;
    credited += result.value;
  }
  EXPECT_EQ(credited, dec_params().root_value());
}

TEST(BankDepositTest, ConcurrentDoubleSpendOnlyOneAccepted) {
  DecBank bank = make_bank(380);
  DecWallet wallet = make_funded_wallet(bank, 381);
  SecureRandom rng(382);
  const auto node = wallet.allocate(2);
  const SpendBundle b1 = wallet.spend(*node, bank.public_key(), rng, {});
  const SpendBundle b2 = wallet.spend(*node, bank.public_key(), rng,
                                      bytes_of("x"));
  SettleOutcome r1, r2;
  std::thread t1([&] { r1 = bank.deposit(b1); });
  std::thread t2([&] { r2 = bank.deposit(b2); });
  t1.join();
  t2.join();
  EXPECT_NE(r1.accepted(), r2.accepted());
}

TEST(BankBatchTest, VerifyBatchMatchesPerDepositVerifiers) {
  DecBank bank = make_bank(400);
  DecWallet wallet = make_funded_wallet(bank, 401);
  SecureRandom rng(402);
  std::vector<RootHidingSpend> hiding;
  hiding.push_back(
      wallet.spend_hiding(NodeIndex{1, 0}, bank.public_key(), rng, {}));
  std::vector<SpendBundle> spends;
  for (std::uint64_t i = 4; i < 8; ++i) {
    spends.push_back(
        wallet.spend(NodeIndex{3, i}, bank.public_key(), rng, {}));
  }
  const std::vector<bool> ok = bank.verify_batch(hiding, spends);
  ASSERT_EQ(ok.size(), hiding.size() + spends.size());
  EXPECT_EQ(ok[0], verify_root_hiding_spend(bank.params(), bank.public_key(),
                                            hiding[0]));
  for (std::size_t i = 0; i < spends.size(); ++i) {
    EXPECT_EQ(ok[1 + i],
              verify_spend(bank.params(), bank.public_key(), spends[i]))
        << "spend " << i;
  }
  for (const bool flag : ok) EXPECT_TRUE(flag);
}

TEST(BankBatchTest, ForgedCertInBatchIsSingledOut) {
  // Tamper one spend's randomized certificate: the folded cert-equation
  // product rejects, and the exact fallback must blame only that member.
  DecBank bank = make_bank(410);
  DecWallet wallet = make_funded_wallet(bank, 411);
  SecureRandom rng(412);
  std::vector<SpendBundle> spends;
  for (std::uint64_t i = 0; i < 8; ++i) {
    spends.push_back(
        wallet.spend(NodeIndex{3, i}, bank.public_key(), rng, {}));
  }
  spends[3].cert.b =
      ec_mul(spends[3].cert.b, Bigint(2), bank.params().pairing.p);
  const std::vector<bool> ok = bank.verify_batch({}, spends);
  ASSERT_EQ(ok.size(), spends.size());
  for (std::size_t i = 0; i < ok.size(); ++i) {
    EXPECT_EQ(ok[i], i != 3) << "spend " << i;
  }
}

TEST(BankBatchTest, DepositBatchCommitsOnlyVerifiedMembers) {
  DecBank bank = make_bank(420);
  DecWallet wallet = make_funded_wallet(bank, 421);
  SecureRandom rng(422);
  std::vector<RootHidingSpend> hiding;
  hiding.push_back(
      wallet.spend_hiding(NodeIndex{2, 0}, bank.public_key(), rng, {}));
  std::vector<SpendBundle> spends;
  spends.push_back(
      wallet.spend(NodeIndex{2, 1}, bank.public_key(), rng, {}));
  spends.push_back(
      wallet.spend(NodeIndex{1, 1}, bank.public_key(), rng, {}));
  // Corrupt the middle member's proof binding (wrong node index).
  spends[0].node.index ^= 1;
  const auto results = bank.deposit_batch(hiding, spends);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].accepted()) << results[0].reason;
  EXPECT_FALSE(results[1].accepted());
  EXPECT_TRUE(results[2].accepted()) << results[2].reason;
  EXPECT_EQ(results[0].value + results[2].value, 2u + 4u);
}

TEST(BankBatchTest, DepositBatchAndSequentialDepositsAgree) {
  // Same spends through the batch path and through one-at-a-time
  // deposits on a twin bank must accept the same set and values.
  DecBank batch_bank = make_bank(430);
  DecBank serial_bank = make_bank(430);
  DecWallet w1 = make_funded_wallet(batch_bank, 431);
  DecWallet w2 = make_funded_wallet(serial_bank, 431);
  SecureRandom rng1(432);
  SecureRandom rng2(432);
  std::vector<SpendBundle> spends1, spends2;
  for (std::uint64_t i = 0; i < 4; ++i) {
    spends1.push_back(
        w1.spend(NodeIndex{2, i}, batch_bank.public_key(), rng1, {}));
    spends2.push_back(
        w2.spend(NodeIndex{2, i}, serial_bank.public_key(), rng2, {}));
  }
  const auto batch = batch_bank.deposit_batch({}, spends1);
  ASSERT_EQ(batch.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto single = serial_bank.deposit(spends2[i]);
    EXPECT_EQ(batch[i].accepted(), single.accepted()) << "spend " << i;
    EXPECT_EQ(batch[i].value, single.value) << "spend " << i;
  }
  EXPECT_EQ(batch_bank.recorded_serials(), serial_bank.recorded_serials());
}

}  // namespace
}  // namespace ppms
