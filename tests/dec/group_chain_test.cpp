#include "dec/group_chain.h"

#include <gtest/gtest.h>

#include "bigint/prime.h"
#include "dec_fixture.h"

namespace ppms {
namespace {

using testing::dec_params;

TEST(DecSetupTest, ChainHasTowerShape) {
  const DecParams& p = dec_params();
  ASSERT_GE(p.chain.primes.size(), p.L + 2);
  SecureRandom rng(1);
  for (std::size_t i = 0; i < p.L + 2; ++i) {
    EXPECT_TRUE(is_probable_prime(p.chain.primes[i], rng));
    if (i > 0) {
      EXPECT_EQ(p.chain.primes[i],
                p.chain.primes[i - 1] * Bigint(2) + Bigint(1));
    }
  }
}

TEST(DecSetupTest, PairingOrderIsFirstChainPrime) {
  EXPECT_EQ(dec_params().pairing.r, dec_params().chain.primes[0]);
}

TEST(DecSetupTest, TowerGroupsHaveMatchingOrders) {
  const DecParams& p = dec_params();
  ASSERT_EQ(p.tower.size(), p.L + 1);
  for (std::size_t d = 0; d <= p.L; ++d) {
    // tower[d] ⊂ Z*_{o_{d+2}} of order o_{d+1}.
    EXPECT_EQ(p.tower[d].modulus(), p.chain.primes[d + 1]);
    EXPECT_EQ(p.tower[d].order(), p.chain.primes[d]);
  }
}

TEST(DecSetupTest, NodeValues) {
  const DecParams& p = dec_params();
  EXPECT_EQ(p.root_value(), 8u);  // L = 3
  EXPECT_EQ(p.node_value(1), 4u);
  EXPECT_EQ(p.node_value(3), 1u);
  EXPECT_THROW(p.node_value(4), std::out_of_range);
}

TEST(DecSetupTest, SearchSourceWorksForSmallL) {
  SecureRandom rng(2);
  // L = 2 demands a length >= 6 chain; the search finds 89's chain fast.
  const DecParams p = dec_setup(rng, 2, ChainSource::kSearch, 96);
  EXPECT_EQ(p.chain.primes[0], Bigint(89));
  EXPECT_EQ(p.tower.size(), 3u);
}

TEST(DecSetupTest, RejectsExcessiveL) {
  SecureRandom rng(3);
  EXPECT_THROW(dec_setup(rng, 13, ChainSource::kTable), std::invalid_argument);
}

TEST(DecSetupTest, ExhaustedSearchThrows) {
  SecureRandom rng(4);
  EXPECT_THROW(dec_setup(rng, 3, ChainSource::kSearch, 96, 2),
               std::runtime_error);
}

// --- persistence (offline Setup, Section VI-A) -------------------------------

TEST(DecParamsSerde, RoundTripPreservesEverything) {
  SecureRandom rng(5);
  const DecParams& p = dec_params();
  const DecParams copy = DecParams::deserialize(p.serialize(), rng);
  EXPECT_EQ(copy.L, p.L);
  EXPECT_EQ(copy.chain.primes, p.chain.primes);
  EXPECT_EQ(copy.pairing.p, p.pairing.p);
  EXPECT_EQ(copy.pairing.g, p.pairing.g);
  ASSERT_EQ(copy.tower.size(), p.tower.size());
  for (std::size_t d = 0; d < p.tower.size(); ++d) {
    EXPECT_EQ(copy.tower[d].modulus(), p.tower[d].modulus());
    EXPECT_EQ(copy.tower[d].generator_value(),
              p.tower[d].generator_value());
  }
}

TEST(DecParamsSerde, LoadedParamsRunTheProtocol) {
  SecureRandom rng(6);
  const DecParams loaded =
      DecParams::deserialize(dec_params().serialize(), rng);
  DecBank bank(loaded, rng);
  DecWallet wallet(loaded, rng);
  const Bytes ctx = bytes_of("w");
  const auto cert = bank.withdraw(
      wallet.commitment(), wallet.prove_commitment(rng, ctx), ctx, rng);
  ASSERT_TRUE(cert.has_value());
  wallet.set_certificate(bank.public_key(), *cert);
  const SpendBundle spend =
      wallet.spend(NodeIndex{1, 1}, bank.public_key(), rng, {});
  EXPECT_TRUE(bank.deposit(spend).accepted());
}

TEST(DecParamsSerde, TamperedChainRejected) {
  SecureRandom rng(7);
  Bytes data = dec_params().serialize();
  // Flip a byte inside the serialized payload (past the header).
  data[data.size() / 2] ^= 0x01;
  EXPECT_THROW(DecParams::deserialize(data, rng), std::invalid_argument);
}

TEST(DecParamsSerde, TruncationRejected) {
  SecureRandom rng(8);
  Bytes data = dec_params().serialize();
  data.resize(data.size() - 5);
  EXPECT_THROW(DecParams::deserialize(data, rng), std::exception);
}

TEST(DecParamsSerde, TrailingBytesRejected) {
  SecureRandom rng(9);
  Bytes data = dec_params().serialize();
  data.push_back(0);
  EXPECT_THROW(DecParams::deserialize(data, rng), std::invalid_argument);
}

}  // namespace
}  // namespace ppms
