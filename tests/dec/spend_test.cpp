#include "dec/spend.h"

#include <gtest/gtest.h>

#include "dec_fixture.h"

namespace ppms {
namespace {

using testing::dec_params;
using testing::make_bank;
using testing::make_funded_wallet;

struct SpendFixture {
  std::shared_ptr<DecBank> bank_ptr;
  DecWallet wallet;
  SpendBundle bundle;

  const DecBank& bank() const { return *bank_ptr; }
};

SpendFixture make_spend_fixture(std::uint64_t seed) {
  SecureRandom bank_rng(seed);
  auto bank = std::make_shared<DecBank>(dec_params(), bank_rng);
  DecWallet wallet = make_funded_wallet(*bank, seed + 1);
  SecureRandom rng(seed + 2);
  const auto node = wallet.allocate(2);
  SpendBundle bundle =
      wallet.spend(*node, bank->public_key(), rng, bytes_of("payee-77"));
  return {std::move(bank), std::move(wallet), std::move(bundle)};
}

TEST(SpendTest, HonestSpendVerifies) {
  const SpendFixture f = make_spend_fixture(100);
  EXPECT_TRUE(verify_spend(dec_params(), f.bank().public_key(), f.bundle));
}

TEST(SpendTest, LeafAndRootSpendsVerify) {
  DecBank bank = make_bank(110);
  DecWallet w1 = make_funded_wallet(bank, 111);
  DecWallet w2 = make_funded_wallet(bank, 112);
  SecureRandom rng(113);
  const SpendBundle leaf =
      w1.spend(*w1.allocate(1), bank.public_key(), rng, {});
  EXPECT_EQ(leaf.node.depth, dec_params().L);
  EXPECT_TRUE(verify_spend(dec_params(), bank.public_key(), leaf));
  const SpendBundle root =
      w2.spend(*w2.allocate(8), bank.public_key(), rng, {});
  EXPECT_EQ(root.node.depth, 0u);
  EXPECT_EQ(root.path_serials.size(), 1u);
  EXPECT_TRUE(verify_spend(dec_params(), bank.public_key(), root));
}

TEST(SpendTest, TamperedSerialRejected) {
  SpendFixture f = make_spend_fixture(120);
  const ZnGroup& g = dec_params().tower[f.bundle.node.depth];
  f.bundle.path_serials.back() = g.decode(
      g.pow(g.generator(), Bigint(12345)));
  EXPECT_FALSE(verify_spend(dec_params(), f.bank().public_key(), f.bundle));
}

TEST(SpendTest, WrongBranchBitRejected) {
  SpendFixture f = make_spend_fixture(130);
  // Claim the sibling node: serials no longer chain to the stated index.
  f.bundle.node.index ^= 1;
  EXPECT_FALSE(verify_spend(dec_params(), f.bank().public_key(), f.bundle));
}

TEST(SpendTest, TruncatedPathRejected) {
  SpendFixture f = make_spend_fixture(140);
  f.bundle.path_serials.pop_back();
  EXPECT_FALSE(verify_spend(dec_params(), f.bank().public_key(), f.bundle));
}

TEST(SpendTest, ForeignCertificateRejected) {
  // A certificate from a different bank key must fail the pairing check.
  SpendFixture f = make_spend_fixture(150);
  DecBank other_bank = make_bank(151);
  EXPECT_FALSE(
      verify_spend(dec_params(), other_bank.public_key(), f.bundle));
}

TEST(SpendTest, UncertifiedWalletCannotForge) {
  // Self-signed certificate: forge (a, b, c) without the bank's secret.
  SecureRandom rng(160);
  DecBank bank = make_bank(161);
  DecWallet wallet(dec_params(), rng);
  ClSignature fake;
  fake.a = dec_params().pairing.g;
  fake.b = ec_mul(fake.a, Bigint(7), dec_params().pairing.p);
  fake.c = ec_mul(fake.a, Bigint(9), dec_params().pairing.p);
  const SpendBundle forged =
      make_spend(dec_params(), bank.public_key(),
                 wallet.secret_for_testing(), fake, NodeIndex{1, 0}, rng, {});
  EXPECT_FALSE(verify_spend(dec_params(), bank.public_key(), forged));
}

TEST(SpendTest, ContextTamperRejected) {
  SpendFixture f = make_spend_fixture(170);
  f.bundle.context = bytes_of("payee-78");  // redirect the payment
  EXPECT_FALSE(verify_spend(dec_params(), f.bank().public_key(), f.bundle));
}

TEST(SpendTest, CertSwapRejected) {
  // Replace the certificate with a fresh re-randomization: the proof was
  // bound to the original (a,b,c), so the statement no longer matches.
  SpendFixture f = make_spend_fixture(180);
  SecureRandom rng(181);
  f.bundle.cert = cl_randomize(dec_params().pairing, f.bundle.cert, rng);
  EXPECT_FALSE(verify_spend(dec_params(), f.bank().public_key(), f.bundle));
}

TEST(SpendTest, SerializationRoundTrip) {
  const SpendFixture f = make_spend_fixture(190);
  const SpendBundle copy = SpendBundle::deserialize(
      dec_params(), f.bundle.serialize(dec_params()));
  EXPECT_TRUE(verify_spend(dec_params(), f.bank().public_key(), copy));
  EXPECT_EQ(copy.node, f.bundle.node);
  EXPECT_EQ(copy.path_serials, f.bundle.path_serials);
}

TEST(SpendTest, SpendsOfSameWalletAreCertUnlinkable) {
  // Two spends re-randomize the certificate independently.
  DecBank bank = make_bank(200);
  DecWallet wallet = make_funded_wallet(bank, 201);
  SecureRandom rng(202);
  const SpendBundle s1 =
      wallet.spend(*wallet.allocate(1), bank.public_key(), rng, {});
  const SpendBundle s2 =
      wallet.spend(*wallet.allocate(1), bank.public_key(), rng, {});
  EXPECT_FALSE(s1.cert.a == s2.cert.a);
  EXPECT_FALSE(s1.cert.c == s2.cert.c);
}

TEST(SpendTest, OutOfRangeNodeRejected) {
  SpendFixture f = make_spend_fixture(210);
  f.bundle.node.depth = dec_params().L + 1;
  EXPECT_FALSE(verify_spend(dec_params(), f.bank().public_key(), f.bundle));
}

}  // namespace
}  // namespace ppms
