#include "dec/coin.h"

#include <gtest/gtest.h>

#include <set>

#include "dec_fixture.h"

namespace ppms {
namespace {

using testing::dec_params;

TEST(NodeIndexTest, BranchBitsSpellOutTheIndex) {
  const NodeIndex node{3, 0b101};
  EXPECT_TRUE(node.branch_bit(1));
  EXPECT_FALSE(node.branch_bit(2));
  EXPECT_TRUE(node.branch_bit(3));
}

TEST(NodeIndexTest, AncestorComputation) {
  const NodeIndex node{3, 0b110};
  EXPECT_EQ(node.ancestor(0), (NodeIndex{0, 0}));
  EXPECT_EQ(node.ancestor(1), (NodeIndex{1, 1}));
  EXPECT_EQ(node.ancestor(2), (NodeIndex{2, 0b11}));
}

TEST(CoinTest, CheckNodeBounds) {
  EXPECT_NO_THROW(check_node(dec_params(), NodeIndex{3, 7}));
  EXPECT_THROW(check_node(dec_params(), NodeIndex{4, 0}), std::out_of_range);
  EXPECT_THROW(check_node(dec_params(), NodeIndex{2, 4}), std::out_of_range);
}

TEST(CoinTest, RootSerialIsInTowerZero) {
  SecureRandom rng(1);
  const Bigint t =
      Bigint::random_range(rng, Bigint(1), dec_params().pairing.r);
  const Bigint s0 = root_serial(dec_params(), t);
  const ZnGroup& g1 = dec_params().tower[0];
  EXPECT_TRUE(g1.contains(g1.encode(s0)));
}

TEST(CoinTest, SerialPathLengthAndMembership) {
  SecureRandom rng(2);
  const Bigint t =
      Bigint::random_range(rng, Bigint(1), dec_params().pairing.r);
  const NodeIndex node{3, 5};
  const auto path = serial_path(dec_params(), t, node);
  ASSERT_EQ(path.size(), 4u);
  for (std::size_t d = 0; d < path.size(); ++d) {
    const ZnGroup& g = dec_params().tower[d];
    EXPECT_TRUE(g.contains(g.encode(path[d]))) << "depth " << d;
  }
}

TEST(CoinTest, PathIsChainOfChildDerivations) {
  SecureRandom rng(3);
  const Bigint t =
      Bigint::random_range(rng, Bigint(1), dec_params().pairing.r);
  const NodeIndex node{3, 6};
  const auto path = serial_path(dec_params(), t, node);
  for (std::size_t step = 1; step <= 3; ++step) {
    EXPECT_EQ(path[step], child_serial(dec_params(), step, path[step - 1],
                                       node.branch_bit(step)));
  }
}

TEST(CoinTest, SiblingsHaveDistinctSerials) {
  SecureRandom rng(4);
  const Bigint t =
      Bigint::random_range(rng, Bigint(1), dec_params().pairing.r);
  const Bigint s0 = root_serial(dec_params(), t);
  EXPECT_NE(child_serial(dec_params(), 1, s0, false),
            child_serial(dec_params(), 1, s0, true));
}

TEST(CoinTest, AllLeafSerialsDistinctForOneWallet) {
  SecureRandom rng(5);
  const Bigint t =
      Bigint::random_range(rng, Bigint(1), dec_params().pairing.r);
  std::set<std::string> seen;
  for (std::uint64_t i = 0; i < 8; ++i) {
    const auto path = serial_path(dec_params(), t, NodeIndex{3, i});
    seen.insert(path.back().to_decimal());
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(CoinTest, DifferentWalletsDifferentRoots) {
  SecureRandom rng(6);
  const Bigint t1 =
      Bigint::random_range(rng, Bigint(1), dec_params().pairing.r);
  const Bigint t2 = (t1 + Bigint(1)).mod(dec_params().pairing.r);
  EXPECT_NE(root_serial(dec_params(), t1), root_serial(dec_params(), t2));
}

TEST(CoinTest, SharedPrefixSharesSerials) {
  // Two leaves under the same depth-1 subtree share S_0 and S_1 — the
  // documented linkability of Okamoto-style divisible cash.
  SecureRandom rng(7);
  const Bigint t =
      Bigint::random_range(rng, Bigint(1), dec_params().pairing.r);
  const auto p1 = serial_path(dec_params(), t, NodeIndex{3, 0});
  const auto p2 = serial_path(dec_params(), t, NodeIndex{3, 1});
  EXPECT_EQ(p1[0], p2[0]);
  EXPECT_EQ(p1[1], p2[1]);
  EXPECT_EQ(p1[2], p2[2]);
  EXPECT_NE(p1[3], p2[3]);
}

TEST(CoinTest, ChildSerialDepthValidation) {
  EXPECT_THROW(child_serial(dec_params(), 0, Bigint(2), false),
               std::out_of_range);
  EXPECT_THROW(child_serial(dec_params(), 9, Bigint(2), false),
               std::out_of_range);
}

}  // namespace
}  // namespace ppms
