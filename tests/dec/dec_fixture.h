// Shared DEC test fixture: one L=3 parameter set (table chain) reused by
// every suite in this binary — setup is the expensive part.
#pragma once

#include "dec/bank.h"
#include "dec/wallet.h"

namespace ppms::testing {

inline const DecParams& dec_params() {
  static const DecParams params = [] {
    SecureRandom rng(2024);
    return dec_setup(rng, 3, ChainSource::kTable, 128);
  }();
  return params;
}

/// A bank over the shared params (fresh keys per call site that wants one).
inline DecBank make_bank(std::uint64_t seed) {
  SecureRandom rng(seed);
  return DecBank(dec_params(), rng);
}

/// A wallet that has completed the withdraw protocol against `bank`.
inline DecWallet make_funded_wallet(DecBank& bank, std::uint64_t seed) {
  SecureRandom rng(seed);
  DecWallet wallet(bank.params(), rng);
  const Bytes ctx = bytes_of("withdraw");
  const auto cert =
      bank.withdraw(wallet.commitment(),
                    wallet.prove_commitment(rng, ctx), ctx, rng);
  if (!cert) throw std::runtime_error("fixture: withdraw failed");
  wallet.set_certificate(bank.public_key(), *cert);
  return wallet;
}

}  // namespace ppms::testing
