#include "dec/wallet.h"

#include <gtest/gtest.h>

#include <set>

#include "dec_fixture.h"

namespace ppms {
namespace {

using testing::dec_params;
using testing::make_bank;
using testing::make_funded_wallet;

TEST(WalletTest, FreshWalletHoldsFullCoin) {
  SecureRandom rng(1);
  const DecWallet wallet(dec_params(), rng);
  EXPECT_EQ(wallet.balance(), 8u);
  EXPECT_FALSE(wallet.has_certificate());
}

TEST(WalletTest, WithdrawProtocolInstallsCertificate) {
  DecBank bank = make_bank(10);
  const DecWallet wallet = make_funded_wallet(bank, 11);
  EXPECT_TRUE(wallet.has_certificate());
}

TEST(WalletTest, BankRejectsBadCommitmentProof) {
  DecBank bank = make_bank(12);
  SecureRandom rng(13);
  DecWallet w1(dec_params(), rng), w2(dec_params(), rng);
  const Bytes ctx = bytes_of("withdraw");
  // Proof for w2's commitment presented with w1's commitment.
  const auto cert = bank.withdraw(w1.commitment(),
                                  w2.prove_commitment(rng, ctx), ctx, rng);
  EXPECT_FALSE(cert.has_value());
}

TEST(WalletTest, BankRejectsContextMismatch) {
  DecBank bank = make_bank(14);
  SecureRandom rng(15);
  DecWallet wallet(dec_params(), rng);
  const auto cert = bank.withdraw(
      wallet.commitment(), wallet.prove_commitment(rng, bytes_of("a")),
      bytes_of("b"), rng);
  EXPECT_FALSE(cert.has_value());
}

TEST(WalletTest, SetCertificateValidates) {
  DecBank bank = make_bank(16);
  SecureRandom rng(17);
  DecWallet w1(dec_params(), rng), w2(dec_params(), rng);
  const Bytes ctx = bytes_of("withdraw");
  const auto cert = bank.withdraw(w1.commitment(),
                                  w1.prove_commitment(rng, ctx), ctx, rng);
  ASSERT_TRUE(cert.has_value());
  // w2's secret differs: installing w1's certificate must fail.
  EXPECT_THROW(w2.set_certificate(bank.public_key(), *cert),
               std::invalid_argument);
}

// --- buddy allocator properties --------------------------------------------

TEST(WalletAllocTest, AllocateWholeCoin) {
  SecureRandom rng(2);
  DecWallet wallet(dec_params(), rng);
  const auto node = wallet.allocate(8);
  ASSERT_TRUE(node.has_value());
  EXPECT_EQ(node->depth, 0u);
  EXPECT_EQ(wallet.balance(), 0u);
  EXPECT_FALSE(wallet.allocate(1).has_value());
}

TEST(WalletAllocTest, SplitProducesAlignedNodes) {
  SecureRandom rng(3);
  DecWallet wallet(dec_params(), rng);
  const auto a = wallet.allocate(2);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->depth, 2u);
  EXPECT_EQ(wallet.balance(), 6u);
  const auto b = wallet.allocate(4);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->depth, 1u);
  EXPECT_EQ(wallet.balance(), 2u);
}

TEST(WalletAllocTest, AllocationsNeverOverlap) {
  SecureRandom rng(4);
  DecWallet wallet(dec_params(), rng);
  std::vector<NodeIndex> nodes;
  for (const std::uint64_t denom : {1u, 2u, 1u, 4u}) {
    const auto node = wallet.allocate(denom);
    ASSERT_TRUE(node.has_value());
    nodes.push_back(*node);
  }
  EXPECT_EQ(wallet.balance(), 0u);
  // No allocated node may be an ancestor of (or equal to) another.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = 0; j < nodes.size(); ++j) {
      if (i == j) continue;
      const auto& shallow = nodes[i].depth <= nodes[j].depth ? nodes[i]
                                                             : nodes[j];
      const auto& deep = nodes[i].depth <= nodes[j].depth ? nodes[j]
                                                          : nodes[i];
      EXPECT_FALSE(deep.ancestor(shallow.depth) == shallow)
          << "overlap between allocations " << i << " and " << j;
    }
  }
}

TEST(WalletAllocTest, RejectsBadDenominations) {
  SecureRandom rng(5);
  DecWallet wallet(dec_params(), rng);
  EXPECT_FALSE(wallet.allocate(0).has_value());
  EXPECT_FALSE(wallet.allocate(3).has_value());   // not a power of two
  EXPECT_FALSE(wallet.allocate(16).has_value());  // beyond root value
}

TEST(WalletAllocTest, ExhaustionReturnsNullopt) {
  SecureRandom rng(6);
  DecWallet wallet(dec_params(), rng);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(wallet.allocate(1).has_value());
  }
  EXPECT_FALSE(wallet.allocate(1).has_value());
  EXPECT_EQ(wallet.balance(), 0u);
}

TEST(WalletAllocTest, FragmentationBlocksLargeDenomination) {
  SecureRandom rng(7);
  DecWallet wallet(dec_params(), rng);
  ASSERT_TRUE(wallet.allocate(1).has_value());
  // 7 units remain but no free node of value 8 exists.
  EXPECT_FALSE(wallet.allocate(8).has_value());
  EXPECT_TRUE(wallet.allocate(4).has_value());
}

// --- spend paths -------------------------------------------------------------

TEST(WalletSpendTest, SpendWithoutCertificateThrows) {
  SecureRandom rng(8);
  DecWallet wallet(dec_params(), rng);
  const auto node = wallet.allocate(1);
  ASSERT_TRUE(node.has_value());
  DecBank bank = make_bank(18);
  EXPECT_THROW(wallet.spend(*node, bank.public_key(), rng, {}),
               std::logic_error);
}

TEST(WalletSpendTest, SpendDenominationsProducesOneBundleEach) {
  DecBank bank = make_bank(20);
  DecWallet wallet = make_funded_wallet(bank, 21);
  SecureRandom rng(22);
  const auto bundles = wallet.spend_denominations(
      {4, 2, 1}, bank.public_key(), rng, bytes_of("pay"));
  ASSERT_TRUE(bundles.has_value());
  EXPECT_EQ(bundles->size(), 3u);
  std::uint64_t total = 0;
  for (const auto& b : *bundles) {
    EXPECT_TRUE(verify_spend(dec_params(), bank.public_key(), b));
    total += dec_params().node_value(b.node.depth);
  }
  EXPECT_EQ(total, 7u);
  EXPECT_EQ(wallet.balance(), 1u);
}

TEST(WalletSpendTest, SpendDenominationsSkipsZeroCoins) {
  DecBank bank = make_bank(23);
  DecWallet wallet = make_funded_wallet(bank, 24);
  SecureRandom rng(25);
  const auto bundles = wallet.spend_denominations(
      {2, 0, 0, 1}, bank.public_key(), rng, bytes_of("pay"));
  ASSERT_TRUE(bundles.has_value());
  EXPECT_EQ(bundles->size(), 2u);
}

TEST(WalletSpendTest, FailedPlanLeavesWalletUnchanged) {
  DecBank bank = make_bank(26);
  DecWallet wallet = make_funded_wallet(bank, 27);
  SecureRandom rng(28);
  const std::uint64_t before = wallet.balance();
  // Total 16 exceeds the 8-unit coin.
  const auto bundles = wallet.spend_denominations(
      {8, 8}, bank.public_key(), rng, bytes_of("pay"));
  EXPECT_FALSE(bundles.has_value());
  EXPECT_EQ(wallet.balance(), before);
  // The wallet can still spend afterwards.
  EXPECT_TRUE(wallet
                  .spend_denominations({8}, bank.public_key(), rng,
                                       bytes_of("pay"))
                  .has_value());
}

}  // namespace
}  // namespace ppms
