#include "util/bytes.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ppms {
namespace {

TEST(BytesTest, HexRoundTripEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_EQ(from_hex(""), Bytes{});
}

TEST(BytesTest, HexEncodesLowercase) {
  EXPECT_EQ(to_hex({0x00, 0xAB, 0xFF}), "00abff");
}

TEST(BytesTest, HexDecodeAcceptsUppercase) {
  EXPECT_EQ(from_hex("00ABFF"), (Bytes{0x00, 0xAB, 0xFF}));
}

TEST(BytesTest, HexRoundTripAllByteValues) {
  Bytes all(256);
  for (int i = 0; i < 256; ++i) all[i] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(from_hex(to_hex(all)), all);
}

TEST(BytesTest, HexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(BytesTest, HexRejectsNonHexChars) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
  EXPECT_THROW(from_hex("0g"), std::invalid_argument);
}

TEST(BytesTest, BytesOfTakesVerbatim) {
  EXPECT_EQ(bytes_of("ab"), (Bytes{'a', 'b'}));
  EXPECT_EQ(bytes_of(""), Bytes{});
}

TEST(BytesTest, ConcatTwo) {
  EXPECT_EQ(concat({1, 2}, {3}), (Bytes{1, 2, 3}));
  EXPECT_EQ(concat({}, {3}), Bytes{3});
}

TEST(BytesTest, ConcatThree) {
  EXPECT_EQ(concat({1}, {2}, {3}), (Bytes{1, 2, 3}));
}

TEST(BytesTest, CtEqualMatches) {
  EXPECT_TRUE(ct_equal({1, 2, 3}, {1, 2, 3}));
  EXPECT_TRUE(ct_equal({}, {}));
}

TEST(BytesTest, CtEqualDetectsDifference) {
  EXPECT_FALSE(ct_equal({1, 2, 3}, {1, 2, 4}));
  EXPECT_FALSE(ct_equal({1, 2}, {1, 2, 3}));
}

TEST(BytesTest, SecureWipeClears) {
  Bytes secret{1, 2, 3};
  secure_wipe(secret);
  EXPECT_TRUE(secret.empty());
}

TEST(BytesTest, U32BigEndianRoundTrip) {
  Bytes out;
  append_u32_be(out, 0x01020304u);
  EXPECT_EQ(out, (Bytes{1, 2, 3, 4}));
  EXPECT_EQ(read_u32_be(out, 0), 0x01020304u);
}

TEST(BytesTest, U64BigEndianRoundTrip) {
  Bytes out;
  append_u64_be(out, 0x0102030405060708ull);
  EXPECT_EQ(out.size(), 8u);
  EXPECT_EQ(read_u64_be(out, 0), 0x0102030405060708ull);
}

TEST(BytesTest, ReadPastEndThrows) {
  const Bytes b{1, 2, 3};
  EXPECT_THROW(read_u32_be(b, 0), std::out_of_range);
  EXPECT_THROW(read_u64_be(b, 0), std::out_of_range);
}

}  // namespace
}  // namespace ppms
