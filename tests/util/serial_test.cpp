#include "util/serial.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace ppms {
namespace {

TEST(SerialTest, RoundTripAllFieldTypes) {
  Writer w;
  w.put_bytes({1, 2, 3});
  w.put_string("hello");
  w.put_u32(0xDEADBEEFu);
  w.put_u64(0x0102030405060708ull);
  w.put_bool(true);
  w.put_bool(false);

  Reader r(w.data());
  EXPECT_EQ(r.get_bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0102030405060708ull);
  EXPECT_TRUE(r.get_bool());
  EXPECT_FALSE(r.get_bool());
  EXPECT_TRUE(r.exhausted());
}

TEST(SerialTest, EmptyBytesField) {
  Writer w;
  w.put_bytes({});
  Reader r(w.data());
  EXPECT_EQ(r.get_bytes(), Bytes{});
  EXPECT_TRUE(r.exhausted());
}

TEST(SerialTest, TruncatedLengthThrows) {
  const Bytes broken{0, 0, 0};  // not even a full length prefix
  Reader r(broken);
  EXPECT_THROW(r.get_bytes(), std::out_of_range);
}

TEST(SerialTest, TruncatedPayloadThrows) {
  Bytes broken;
  append_u32_be(broken, 10);  // claims 10 bytes follow
  broken.push_back(1);
  Reader r(broken);
  EXPECT_THROW(r.get_bytes(), std::out_of_range);
}

TEST(SerialTest, MalformedBoolThrows) {
  const Bytes broken{2};
  Reader r(broken);
  EXPECT_THROW(r.get_bool(), std::invalid_argument);
}

TEST(SerialTest, ExhaustedDetectsTrailingGarbage) {
  Writer w;
  w.put_u32(1);
  Bytes data = w.take();
  data.push_back(0xFF);
  Reader r(data);
  r.get_u32();
  EXPECT_FALSE(r.exhausted());
}

TEST(SerialTest, TakeMovesBuffer) {
  Writer w;
  w.put_u32(7);
  const Bytes data = w.take();
  EXPECT_EQ(data.size(), 4u);
  EXPECT_TRUE(w.data().empty());
}

TEST(SerialTest, NestedMessages) {
  Writer inner;
  inner.put_string("payload");
  Writer outer;
  outer.put_bytes(inner.data());
  outer.put_u32(9);

  Reader r(outer.data());
  const Bytes inner_bytes = r.get_bytes();
  Reader ri(inner_bytes);
  EXPECT_EQ(ri.get_string(), "payload");
  EXPECT_EQ(r.get_u32(), 9u);
}

}  // namespace
}  // namespace ppms
