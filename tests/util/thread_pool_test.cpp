#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace ppms {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto fut = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, AtLeastOneWorkerEvenForZero) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 1; i <= 100; ++i) {
    futures.push_back(pool.submit([&sum, i] { sum += i; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&done] { ++done; });
    }
  }  // destructor joins after draining
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPoolTest, TasksReturnDistinctValues) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 20; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

// Regression: ops performed inside a pooled task used to land in
// Role::None because the worker thread never saw the submitter's
// ScopedRole. submit() now captures the submitting thread's context and
// the worker reinstates it around the task body.
TEST(ThreadPoolTest, TasksInheritSubmitterRole) {
  set_op_counting(true);
  const OpCountSnapshot before = op_counters();
  ThreadPool pool(2);
  {
    ScopedRole as_jo(Role::JobOwner);
    pool.submit([] { count_op(OpKind::Zkp); }).get();
  }
  {
    ScopedRole as_sp(Role::Participant);
    pool.submit([] { count_op(OpKind::Enc); }).get();
  }
  // No role active at submission: the worker runs as Role::None.
  pool.submit([] { count_op(OpKind::Hash); }).get();
  const OpCountSnapshot diff = op_counters().diff(before);
  set_op_counting(false);
  EXPECT_EQ(diff.get(Role::JobOwner, OpKind::Zkp), 1u);
  EXPECT_EQ(diff.get(Role::None, OpKind::Zkp), 0u);
  EXPECT_EQ(diff.get(Role::Participant, OpKind::Enc), 1u);
  EXPECT_EQ(diff.get(Role::None, OpKind::Hash), 1u);
}

// The worker must restore its own context after each task, so one
// session's role cannot leak into the next task on the same worker.
TEST(ThreadPoolTest, WorkerContextDoesNotLeakAcrossTasks) {
  set_op_counting(true);
  const OpCountSnapshot before = op_counters();
  ThreadPool pool(1);  // single worker: tasks run back-to-back
  {
    ScopedRole as_ma(Role::Admin);
    pool.submit([] { count_op(OpKind::Dec); }).get();
  }
  pool.submit([] { count_op(OpKind::Dec); }).get();
  const OpCountSnapshot diff = op_counters().diff(before);
  set_op_counting(false);
  EXPECT_EQ(diff.get(Role::Admin, OpKind::Dec), 1u);
  EXPECT_EQ(diff.get(Role::None, OpKind::Dec), 1u);
}

}  // namespace
}  // namespace ppms
