#include "util/counters.h"

#include <gtest/gtest.h>

#include <thread>

namespace ppms {
namespace {

class CountersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_op_counters();
    set_op_counting(true);
  }
  void TearDown() override {
    set_op_counting(false);
    reset_op_counters();
  }
};

TEST_F(CountersTest, CountsAgainstCurrentRole) {
  {
    ScopedRole as_jo(Role::JobOwner);
    count_op(OpKind::Enc);
    count_op(OpKind::Enc);
    count_op(OpKind::Hash);
  }
  const OpCountSnapshot snap = op_counters();
  EXPECT_EQ(snap.get(Role::JobOwner, OpKind::Enc), 2u);
  EXPECT_EQ(snap.get(Role::JobOwner, OpKind::Hash), 1u);
  EXPECT_EQ(snap.get(Role::Participant, OpKind::Enc), 0u);
}

TEST_F(CountersTest, RoleNestsAndRestores) {
  ScopedRole outer(Role::JobOwner);
  EXPECT_EQ(current_role(), Role::JobOwner);
  {
    ScopedRole inner(Role::Admin);
    EXPECT_EQ(current_role(), Role::Admin);
    count_op(OpKind::Dec);
  }
  EXPECT_EQ(current_role(), Role::JobOwner);
  EXPECT_EQ(op_counters().get(Role::Admin, OpKind::Dec), 1u);
}

TEST_F(CountersTest, CountingDisabledIsNoop) {
  set_op_counting(false);
  ScopedRole as_sp(Role::Participant);
  count_op(OpKind::Zkp);
  EXPECT_EQ(op_counters().get(Role::Participant, OpKind::Zkp), 0u);
}

TEST_F(CountersTest, DiffIsolatesPhase) {
  {
    ScopedRole as_sp(Role::Participant);
    count_op(OpKind::Dec);
  }
  const OpCountSnapshot base = op_counters();
  {
    ScopedRole as_sp(Role::Participant);
    count_op(OpKind::Dec);
    count_op(OpKind::Dec);
  }
  const OpCountSnapshot delta = op_counters().diff(base);
  EXPECT_EQ(delta.get(Role::Participant, OpKind::Dec), 2u);
}

TEST_F(CountersTest, RowRendersPaperNotation) {
  {
    ScopedRole as_jo(Role::JobOwner);
    count_op(OpKind::Zkp);
    count_op(OpKind::Enc);
    count_op(OpKind::Enc);
  }
  EXPECT_EQ(op_counters().row(Role::JobOwner), "1ZKP+2Enc");
  EXPECT_EQ(op_counters().row(Role::Admin), "0");
}

TEST_F(CountersTest, RoleIsPerThread) {
  ScopedRole as_jo(Role::JobOwner);
  std::thread other([] {
    EXPECT_EQ(current_role(), Role::None);
    count_op(OpKind::Hash);
  });
  other.join();
  const OpCountSnapshot snap = op_counters();
  EXPECT_EQ(snap.get(Role::None, OpKind::Hash), 1u);
  EXPECT_EQ(snap.get(Role::JobOwner, OpKind::Hash), 0u);
}

TEST_F(CountersTest, NamesAreStable) {
  EXPECT_EQ(role_name(Role::JobOwner), "JO");
  EXPECT_EQ(role_name(Role::Participant), "SP");
  EXPECT_EQ(role_name(Role::Admin), "MA");
  EXPECT_EQ(op_name(OpKind::Zkp), "ZKP");
  EXPECT_EQ(op_name(OpKind::Hash), "H");
}

}  // namespace
}  // namespace ppms
