#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace ppms {
namespace {

// RFC 8439 section 2.3.2 block-function test vector.
TEST(ChaCha20Test, Rfc8439BlockVector) {
  std::array<std::uint32_t, 8> key{};
  Bytes key_bytes(32);
  for (int i = 0; i < 32; ++i) key_bytes[i] = static_cast<std::uint8_t>(i);
  for (int i = 0; i < 8; ++i) {
    key[i] = static_cast<std::uint32_t>(key_bytes[4 * i]) |
             (static_cast<std::uint32_t>(key_bytes[4 * i + 1]) << 8) |
             (static_cast<std::uint32_t>(key_bytes[4 * i + 2]) << 16) |
             (static_cast<std::uint32_t>(key_bytes[4 * i + 3]) << 24);
  }
  // Nonce 00:00:00:09:00:00:00:4a:00:00:00:00 as little-endian words.
  const std::array<std::uint32_t, 3> nonce{0x09000000u, 0x4a000000u, 0u};
  std::array<std::uint8_t, 64> out{};
  chacha20_block(key, 1, nonce, out);
  const Bytes expected = from_hex(
      "10f1e7e4d13b5915500fdd1fa32071c4"
      "c7d1f4c733c068030422aa9ac3d46c4e"
      "d2826446079faa0914c2d705d98b02a2"
      "b5129cd1de164eb9cbd083e8a2503c4e");
  EXPECT_EQ(Bytes(out.begin(), out.end()), expected);
}

// RFC 8439 section 2.4.2 encryption test vector.
TEST(ChaCha20Test, Rfc8439EncryptionVector) {
  Bytes key(32);
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  const Bytes nonce = from_hex("000000000000004a00000000");
  const Bytes plaintext = bytes_of(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");
  const Bytes expected = from_hex(
      "6e2e359a2568f98041ba0728dd0d6981"
      "e97e7aec1d4360c20a27afccfd9fae0b"
      "f91b65c5524733ab8f593dabcd62b357"
      "1639d624e65152ab8f530c359f0861d8"
      "07ca0dbf500d6a6156a38e088a22b65e"
      "52bc514d16ccf806818ce91ab7793736"
      "5af90bbf74a35be6b40b8eedf2785e42"
      "874d");
  EXPECT_EQ(chacha20_xor(key, nonce, plaintext), expected);
  // Decryption is the same operation.
  EXPECT_EQ(chacha20_xor(key, nonce, expected), plaintext);
}

TEST(ChaCha20Test, RejectsBadKeyOrNonceSize) {
  EXPECT_THROW(chacha20_xor(Bytes(31), Bytes(12), Bytes(1)),
               std::invalid_argument);
  EXPECT_THROW(chacha20_xor(Bytes(32), Bytes(11), Bytes(1)),
               std::invalid_argument);
}

TEST(SecureRandomTest, SameSeedSameStream) {
  SecureRandom a(42), b(42);
  EXPECT_EQ(a.bytes(100), b.bytes(100));
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(SecureRandomTest, DifferentSeedsDifferentStreams) {
  SecureRandom a(42), b(43);
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(SecureRandomTest, ByteSeedChangesStream) {
  SecureRandom a(Bytes{1, 2, 3}), b(Bytes{1, 2, 4});
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(SecureRandomTest, FillProducesExactLength) {
  SecureRandom rng(7);
  for (const std::size_t n : {0u, 1u, 63u, 64u, 65u, 1000u}) {
    Bytes out;
    rng.fill(out, n);
    EXPECT_EQ(out.size(), n);
  }
}

TEST(SecureRandomTest, UniformStaysBelowBound) {
  SecureRandom rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(7), 7u);
  }
}

TEST(SecureRandomTest, UniformBoundOneIsAlwaysZero) {
  SecureRandom rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(SecureRandomTest, UniformZeroBoundThrows) {
  SecureRandom rng(11);
  EXPECT_THROW(rng.uniform(0), std::invalid_argument);
}

TEST(SecureRandomTest, UniformCoversRange) {
  SecureRandom rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.uniform(4));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(SecureRandomTest, OsSeededInstancesDiffer) {
  SecureRandom a, b;
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

}  // namespace
}  // namespace ppms
