#include "pairing/fp.h"

#include <gtest/gtest.h>

namespace ppms {
namespace {

const Bigint kP(1000003);  // prime, 1000003 % 4 == 3

TEST(FpTest, AddWraps) {
  EXPECT_EQ(fp_add(Bigint(1000000), Bigint(5), kP), Bigint(2));
  EXPECT_EQ(fp_add(Bigint(1), Bigint(2), kP), Bigint(3));
}

TEST(FpTest, SubWraps) {
  EXPECT_EQ(fp_sub(Bigint(2), Bigint(5), kP), kP - Bigint(3));
  EXPECT_EQ(fp_sub(Bigint(5), Bigint(2), kP), Bigint(3));
}

TEST(FpTest, NegAndZero) {
  EXPECT_EQ(fp_neg(Bigint(0), kP), Bigint(0));
  EXPECT_EQ(fp_add(fp_neg(Bigint(7), kP), Bigint(7), kP), Bigint(0));
}

TEST(FpTest, InvProperty) {
  SecureRandom rng(1);
  for (int i = 0; i < 20; ++i) {
    const Bigint a = Bigint::random_range(rng, Bigint(1), kP);
    EXPECT_EQ(fp_mul(a, fp_inv(a, kP), kP), Bigint(1));
  }
  EXPECT_THROW(fp_inv(Bigint(0), kP), std::domain_error);
}

TEST(FpTest, SqrtRoundTrip) {
  SecureRandom rng(2);
  for (int i = 0; i < 20; ++i) {
    const Bigint a = Bigint::random_range(rng, Bigint(1), kP);
    const Bigint sq = fp_mul(a, a, kP);
    const auto root = fp_sqrt(sq, kP);
    ASSERT_TRUE(root.has_value());
    EXPECT_EQ(fp_mul(*root, *root, kP), sq);
  }
}

TEST(FpTest, SqrtOfNonResidueIsNullopt) {
  // -1 is a non-residue when p ≡ 3 (mod 4).
  EXPECT_FALSE(fp_sqrt(kP - Bigint(1), kP).has_value());
}

TEST(FpTest, SqrtOfZero) {
  EXPECT_EQ(fp_sqrt(Bigint(0), kP), Bigint(0));
}

TEST(FpTest, SqrtRejectsOtherPrimeShapes) {
  EXPECT_THROW(fp_sqrt(Bigint(4), Bigint(13)), std::invalid_argument);
}

TEST(FpTest, IsSquareMatchesSqrt) {
  SecureRandom rng(3);
  for (int i = 0; i < 30; ++i) {
    const Bigint a = Bigint::random_range(rng, Bigint(1), kP);
    EXPECT_EQ(fp_is_square(a, kP), fp_sqrt(a, kP).has_value());
  }
}

}  // namespace
}  // namespace ppms
