// Differential suite for the pairing pipeline: every fast path
// (Montgomery-domain Miller loop, fixed-argument precomp replay,
// product-of-pairings with shared squarings and one final exponentiation)
// must be bit-identical to the tate_pairing / tate_pairing_affine oracles
// composed with fp2_pow / fp2_inv / fp2_mul.
#include "pairing/pipeline.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "obs/metrics.h"
#include "pairing/tate.h"

namespace ppms {
namespace {

const TypeAParams& params() {
  static const TypeAParams prm = [] {
    SecureRandom rng(4242);
    return typea_generate(rng, 48, 128);
  }();
  return prm;
}

const PairingEngine& engine() {
  static const PairingEngine eng(params());
  return eng;
}

// Reference value of one product factor ê(P, Q)^{±e}, built entirely from
// the affine oracle and the plain F_p² helpers.
Fp2 oracle_term(const EcPoint& P, const EcPoint& Q, const Bigint& exp,
                bool invert) {
  const Bigint& p = params().p;
  Fp2 v = fp2_pow(tate_pairing_affine(params(), P, Q), exp.mod(params().r), p);
  if (invert) v = fp2_inv(v, p);
  return v;
}

TEST(PairingPipelineTest, PairMatchesBothOracles) {
  SecureRandom rng(1);
  for (int i = 0; i < 4; ++i) {
    const EcPoint P = typea_random_subgroup_point(params(), rng);
    const EcPoint Q = typea_random_subgroup_point(params(), rng);
    const Fp2 fast = engine().pair(P, Q);
    EXPECT_EQ(fast, tate_pairing(params(), P, Q));
    EXPECT_EQ(fast, tate_pairing_affine(params(), P, Q));
  }
  // The generator paired with itself is the canonical GT generator.
  EXPECT_EQ(engine().pair(params().g, params().g),
            tate_pairing_affine(params(), params().g, params().g));
}

TEST(PairingPipelineTest, PrecompReplayMatchesLiveLoop) {
  SecureRandom rng(2);
  const EcPoint P = typea_random_subgroup_point(params(), rng);
  const PairingPrecomp pre = engine().precompute(P);
  EXPECT_FALSE(pre.empty());
  EXPECT_EQ(pre.point(), P);
  for (int i = 0; i < 4; ++i) {
    const EcPoint Q = typea_random_subgroup_point(params(), rng);
    EXPECT_EQ(engine().pair(pre, Q), tate_pairing_affine(params(), P, Q));
  }
  // Repeated point: Q == P exercises the tangent branch of the recorded
  // steps exactly as the live loop does.
  EXPECT_EQ(engine().pair(pre, P), tate_pairing_affine(params(), P, P));
  const PairingPrecomp pre_g = engine().precompute(params().g);
  EXPECT_EQ(engine().pair(pre_g, params().g),
            tate_pairing_affine(params(), params().g, params().g));
}

TEST(PairingPipelineTest, InfinityInputsYieldIdentity) {
  SecureRandom rng(3);
  const EcPoint P = typea_random_subgroup_point(params(), rng);
  const EcPoint inf = EcPoint::at_infinity();
  EXPECT_TRUE(fp2_is_one(engine().pair(inf, P)));
  EXPECT_TRUE(fp2_is_one(engine().pair(P, inf)));
  EXPECT_TRUE(fp2_is_one(engine().pair(inf, inf)));
  // A table compiled for the point at infinity pairs to 1 with everything.
  const PairingPrecomp pre_inf = engine().precompute(inf);
  EXPECT_FALSE(pre_inf.empty());
  EXPECT_TRUE(fp2_is_one(engine().pair(pre_inf, P)));
  // As a product factor, an infinity on either side contributes factor 1.
  const Fp2 via_product = engine().pair_product({
      PairingTerm{.P = P, .Q = P},
      PairingTerm{.P = inf, .Q = P},
      PairingTerm{.pre = &pre_inf, .Q = P},
      PairingTerm{.P = P, .Q = inf},
  });
  EXPECT_EQ(via_product, tate_pairing_affine(params(), P, P));
}

TEST(PairingPipelineTest, EmptyProductIsIdentity) {
  EXPECT_TRUE(fp2_is_one(engine().pair_product({})));
  // All factors degenerate (k effectively 0) also folds to 1 without a
  // final exponentiation.
  SecureRandom rng(4);
  const EcPoint P = typea_random_subgroup_point(params(), rng);
  EXPECT_TRUE(fp2_is_one(engine().pair_product({
      PairingTerm{.P = P, .Q = P, .exp = Bigint(0)},
      PairingTerm{.P = EcPoint::at_infinity(), .Q = P},
  })));
}

TEST(PairingPipelineTest, SingleTermProductMatchesPair) {
  SecureRandom rng(5);
  const EcPoint P = typea_random_subgroup_point(params(), rng);
  const EcPoint Q = typea_random_subgroup_point(params(), rng);
  EXPECT_EQ(engine().pair_product({PairingTerm{.P = P, .Q = Q}}),
            engine().pair(P, Q));
  const PairingPrecomp pre = engine().precompute(P);
  EXPECT_EQ(engine().pair_product({PairingTerm{.pre = &pre, .Q = Q}}),
            engine().pair(P, Q));
  // k = 1 with a non-unit exponent and with inversion.
  const Bigint e(98765);
  EXPECT_EQ(engine().pair_product({PairingTerm{.P = P, .Q = Q, .exp = e}}),
            oracle_term(P, Q, e, false));
  EXPECT_EQ(engine().pair_product(
                {PairingTerm{.P = P, .Q = Q, .invert = true}}),
            oracle_term(P, Q, Bigint(1), true));
}

TEST(PairingPipelineTest, MixedProductMatchesComposedOracles) {
  SecureRandom rng(6);
  const Bigint& p = params().p;
  const EcPoint P1 = typea_random_subgroup_point(params(), rng);
  const EcPoint P2 = typea_random_subgroup_point(params(), rng);
  const EcPoint Q1 = typea_random_subgroup_point(params(), rng);
  const EcPoint Q2 = typea_random_subgroup_point(params(), rng);
  const PairingPrecomp pre1 = engine().precompute(P1);
  const Bigint e1 = Bigint::random_range(rng, Bigint(2), params().r);
  const Bigint e2 = Bigint::random_range(rng, Bigint(2), params().r);

  // Precomp + live factors, unit and non-unit exponents, an inverted
  // factor, a repeated point, and a zero-exponent factor that must drop
  // out — all folded through one final exponentiation.
  const Fp2 fast = engine().pair_product({
      PairingTerm{.pre = &pre1, .Q = Q1},
      PairingTerm{.P = P2, .Q = Q2, .exp = e1},
      PairingTerm{.P = P1, .Q = Q2, .exp = e2, .invert = true},
      PairingTerm{.P = Q2, .Q = Q2},
      PairingTerm{.P = P2, .Q = Q1, .exp = Bigint(0)},
  });
  Fp2 ref = oracle_term(P1, Q1, Bigint(1), false);
  ref = fp2_mul(ref, oracle_term(P2, Q2, e1, false), p);
  ref = fp2_mul(ref, oracle_term(P1, Q2, e2, true), p);
  ref = fp2_mul(ref, oracle_term(Q2, Q2, Bigint(1), false), p);
  EXPECT_EQ(fast, ref);
}

TEST(PairingPipelineTest, SharedExponentFactorsShareOneAccumulator) {
  // The batch-verify shape: several factors under the same δ. Grouping
  // them into one accumulator (raised to δ once) must stay bit-identical
  // to exponentiating each factor separately.
  SecureRandom rng(7);
  const Bigint& p = params().p;
  const EcPoint P1 = typea_random_subgroup_point(params(), rng);
  const EcPoint P2 = typea_random_subgroup_point(params(), rng);
  const EcPoint Q = typea_random_subgroup_point(params(), rng);
  const Bigint d1 = Bigint::random_range(rng, Bigint(2), params().r);
  const Bigint d2 = Bigint::random_range(rng, Bigint(2), params().r);
  const Fp2 fast = engine().pair_product({
      PairingTerm{.P = P1, .Q = Q, .exp = d1},
      PairingTerm{.P = P2, .Q = Q, .exp = d1, .invert = true},
      PairingTerm{.P = P1, .Q = P2, .exp = d2},
      PairingTerm{.P = P2, .Q = P2, .exp = d1},
  });
  Fp2 ref = oracle_term(P1, Q, d1, false);
  ref = fp2_mul(ref, oracle_term(P2, Q, d1, true), p);
  ref = fp2_mul(ref, oracle_term(P1, P2, d2, false), p);
  ref = fp2_mul(ref, oracle_term(P2, P2, d1, false), p);
  EXPECT_EQ(fast, ref);
}

TEST(PairingPipelineTest, ExponentsReduceModuloGroupOrder) {
  SecureRandom rng(8);
  const EcPoint P = typea_random_subgroup_point(params(), rng);
  const EcPoint Q = typea_random_subgroup_point(params(), rng);
  const Bigint k(31337);
  EXPECT_EQ(engine().pair_product(
                {PairingTerm{.P = P, .Q = Q, .exp = params().r + k}}),
            oracle_term(P, Q, k, false));
  // exp ≡ 0 (mod r) is the trivial factor.
  EXPECT_TRUE(fp2_is_one(engine().pair_product(
      {PairingTerm{.P = P, .Q = Q, .exp = params().r}})));
}

TEST(PairingPipelineTest, PairingEquationHoldsAsProduct) {
  // ê(aP, Q) · ê(P, aQ)^{-1} == 1 — the shape every verification
  // equation in the protocol reduces to, checked without computing
  // either side separately.
  SecureRandom rng(9);
  const EcPoint P = typea_random_subgroup_point(params(), rng);
  const EcPoint Q = typea_random_subgroup_point(params(), rng);
  const Bigint a = Bigint::random_range(rng, Bigint(1), params().r);
  const EcPoint aP = ec_mul(P, a, params().p);
  const EcPoint aQ = ec_mul(Q, a, params().p);
  EXPECT_TRUE(fp2_is_one(engine().pair_product({
      PairingTerm{.P = aP, .Q = Q},
      PairingTerm{.P = P, .Q = aQ, .invert = true},
  })));
  // And the equivalent exponent form ê(P, Q)^a · ê(aP, Q)^{-1} == 1.
  EXPECT_TRUE(fp2_is_one(engine().pair_product({
      PairingTerm{.P = P, .Q = Q, .exp = a},
      PairingTerm{.P = aP, .Q = Q, .invert = true},
  })));
}

TEST(PairingPipelineTest, InvalidInputsThrow) {
  SecureRandom rng(10);
  const EcPoint P = typea_random_subgroup_point(params(), rng);
  EcPoint off = P;
  off.x = fp_add(off.x, Bigint(1), params().p);
  EXPECT_THROW(engine().precompute(off), std::invalid_argument);
  EXPECT_THROW(engine().pair(off, P), std::invalid_argument);
  EXPECT_THROW(engine().pair(P, off), std::invalid_argument);
  const PairingPrecomp unbuilt;
  EXPECT_TRUE(unbuilt.empty());
  EXPECT_THROW(engine().pair(unbuilt, P), std::invalid_argument);
  EXPECT_THROW(
      engine().pair_product({PairingTerm{.pre = &unbuilt, .Q = P}}),
      std::invalid_argument);
  EXPECT_THROW(engine().pair_product({PairingTerm{.P = off, .Q = P}}),
               std::invalid_argument);
  EXPECT_THROW(engine().pair_product({PairingTerm{.P = P, .Q = off}}),
               std::invalid_argument);
}

TEST(PairingPipelineTest, GtPowMatchesFp2Pow) {
  SecureRandom rng(11);
  const EcPoint P = typea_random_subgroup_point(params(), rng);
  const Fp2 x = tate_pairing_affine(params(), P, P);
  for (const Bigint& e :
       {Bigint(0), Bigint(1), Bigint(2), Bigint(0xdeadbeefULL),
        Bigint::random_range(rng, Bigint(1), params().r)}) {
    EXPECT_EQ(engine().gt_pow(x, e), fp2_pow(x, e, params().p));
  }
  EXPECT_THROW(engine().gt_pow(x, Bigint(-1)), std::invalid_argument);
}

TEST(PairingPipelineTest, GtPow2MatchesComposedPowers) {
  SecureRandom rng(12);
  const EcPoint P = typea_random_subgroup_point(params(), rng);
  const EcPoint Q = typea_random_subgroup_point(params(), rng);
  const Bigint& p = params().p;
  const Fp2 x1 = tate_pairing_affine(params(), P, P);
  const Fp2 x2 = tate_pairing_affine(params(), P, Q);
  const Bigint e1 = Bigint::random_range(rng, Bigint(1), params().r);
  const Bigint e2 = Bigint::random_range(rng, Bigint(1), params().r);
  EXPECT_EQ(engine().gt_pow2(x1, e1, x2, e2),
            fp2_mul(fp2_pow(x1, e1, p), fp2_pow(x2, e2, p), p));
  EXPECT_EQ(engine().gt_pow2(x1, Bigint(0), x2, Bigint(0)), fp2_one());
  EXPECT_THROW(engine().gt_pow2(x1, Bigint(-1), x2, e2),
               std::invalid_argument);
}

TEST(PairingPipelineTest, CountersTrackMillerWorkAndFinalExps) {
  obs::set_metrics_enabled(true);
  SecureRandom rng(13);
  const EcPoint P = typea_random_subgroup_point(params(), rng);
  const EcPoint Q = typea_random_subgroup_point(params(), rng);
  const PairingPrecomp pre = engine().precompute(P);

  const std::uint64_t calls0 = obs::counter("crypto.pairing.calls").value();
  const std::uint64_t miller0 = obs::counter("crypto.pairing.miller").value();
  const std::uint64_t fe0 = obs::counter("crypto.pairing.finalexp").value();
  const std::uint64_t hits0 =
      obs::counter("crypto.pairing.precomp_hits").value();

  engine().pair(P, Q);       // 1 call, 1 loop, 1 FE
  engine().pair(pre, Q);     // 1 call, 1 loop, 1 FE, 1 table hit
  engine().pair_product({    // 3 calls, 2 loops (one factor skipped), 1 FE
      PairingTerm{.pre = &pre, .Q = Q},
      PairingTerm{.P = Q, .Q = Q},
      PairingTerm{.P = P, .Q = Q, .exp = Bigint(0)},
  });

  EXPECT_EQ(obs::counter("crypto.pairing.calls").value() - calls0, 5u);
  EXPECT_EQ(obs::counter("crypto.pairing.miller").value() - miller0, 4u);
  EXPECT_EQ(obs::counter("crypto.pairing.finalexp").value() - fe0, 3u);
  EXPECT_EQ(obs::counter("crypto.pairing.precomp_hits").value() - hits0, 2u);
  obs::set_metrics_enabled(false);
}

}  // namespace
}  // namespace ppms
