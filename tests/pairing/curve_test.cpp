#include "pairing/curve.h"

#include <gtest/gtest.h>

#include "pairing/typea.h"

namespace ppms {
namespace {

// Shared small parameters: generating them once keeps the suite fast.
const TypeAParams& params() {
  static const TypeAParams prm = [] {
    SecureRandom rng(42);
    return typea_generate(rng, 48, 128);
  }();
  return prm;
}

TEST(CurveTest, RandomPointsAreOnCurve) {
  SecureRandom rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(ec_on_curve(ec_random_point(rng, params().p), params().p));
  }
}

TEST(CurveTest, InfinityIsIdentity) {
  SecureRandom rng(2);
  const EcPoint pt = ec_random_point(rng, params().p);
  const EcPoint inf = EcPoint::at_infinity();
  EXPECT_EQ(ec_add(pt, inf, params().p), pt);
  EXPECT_EQ(ec_add(inf, pt, params().p), pt);
  EXPECT_TRUE(ec_on_curve(inf, params().p));
}

TEST(CurveTest, AdditionWithInverseGivesInfinity) {
  SecureRandom rng(3);
  const EcPoint pt = ec_random_point(rng, params().p);
  EXPECT_TRUE(ec_add(pt, ec_neg(pt, params().p), params().p).infinity);
}

TEST(CurveTest, AdditionCommutesAndAssociates) {
  SecureRandom rng(4);
  const EcPoint a = ec_random_point(rng, params().p);
  const EcPoint b = ec_random_point(rng, params().p);
  const EcPoint c = ec_random_point(rng, params().p);
  EXPECT_EQ(ec_add(a, b, params().p), ec_add(b, a, params().p));
  EXPECT_EQ(ec_add(ec_add(a, b, params().p), c, params().p),
            ec_add(a, ec_add(b, c, params().p), params().p));
}

TEST(CurveTest, DoublingMatchesAddition) {
  SecureRandom rng(5);
  const EcPoint a = ec_random_point(rng, params().p);
  EXPECT_EQ(ec_add(a, a, params().p), ec_mul(a, Bigint(2), params().p));
}

TEST(CurveTest, ScalarMulLinearity) {
  SecureRandom rng(6);
  const EcPoint a = ec_random_point(rng, params().p);
  const Bigint k1(37), k2(115);
  EXPECT_EQ(ec_add(ec_mul(a, k1, params().p), ec_mul(a, k2, params().p),
                   params().p),
            ec_mul(a, k1 + k2, params().p));
  EXPECT_EQ(ec_mul(ec_mul(a, k1, params().p), k2, params().p),
            ec_mul(a, k1 * k2, params().p));
}

TEST(CurveTest, ScalarZeroGivesInfinity) {
  SecureRandom rng(7);
  const EcPoint a = ec_random_point(rng, params().p);
  EXPECT_TRUE(ec_mul(a, Bigint(0), params().p).infinity);
  EXPECT_THROW(ec_mul(a, Bigint(-1), params().p), std::invalid_argument);
}

TEST(CurveTest, CurveOrderAnnihilatesEveryPoint) {
  // #E = p + 1 for this supersingular curve.
  SecureRandom rng(8);
  const EcPoint a = ec_random_point(rng, params().p);
  EXPECT_TRUE(ec_mul(a, params().p + Bigint(1), params().p).infinity);
}

TEST(CurveTest, SubgroupGeneratorHasOrderR) {
  EXPECT_FALSE(params().g.infinity);
  EXPECT_TRUE(ec_mul(params().g, params().r, params().p).infinity);
}

TEST(CurveTest, SubgroupSamplingStaysInSubgroup) {
  SecureRandom rng(9);
  const EcPoint s = typea_random_subgroup_point(params(), rng);
  EXPECT_FALSE(s.infinity);
  EXPECT_TRUE(ec_mul(s, params().r, params().p).infinity);
}

TEST(CurveTest, SerializationRoundTrip) {
  SecureRandom rng(10);
  const EcPoint a = ec_random_point(rng, params().p);
  EXPECT_EQ(ec_deserialize(ec_serialize(a, params().p), params().p), a);
  const EcPoint inf = EcPoint::at_infinity();
  EXPECT_EQ(ec_deserialize(ec_serialize(inf, params().p), params().p), inf);
}

TEST(CurveTest, DeserializeRejectsOffCurvePoint) {
  SecureRandom rng(11);
  EcPoint a = ec_random_point(rng, params().p);
  a.y = fp_add(a.y, Bigint(1), params().p);
  EXPECT_THROW(ec_deserialize(ec_serialize(a, params().p), params().p),
               std::invalid_argument);
  EXPECT_THROW(ec_deserialize(Bytes(5), params().p), std::invalid_argument);
}

TEST(TypeAParamsTest, StructuralInvariants) {
  EXPECT_EQ(params().r * params().h, params().p + Bigint(1));
  EXPECT_EQ((params().p % Bigint(4)).to_u64(), 3u);
  EXPECT_TRUE((params().h % Bigint(4)).is_zero());
  EXPECT_EQ(params().r.bit_length(), 48u);
  EXPECT_EQ(params().p.bit_length(), 128u);
}

TEST(TypeAParamsTest, SerializationRoundTrip) {
  const Bytes data = params().serialize();
  const TypeAParams copy = TypeAParams::deserialize(data);
  EXPECT_EQ(copy.p, params().p);
  EXPECT_EQ(copy.r, params().r);
  EXPECT_EQ(copy.h, params().h);
  EXPECT_EQ(copy.g, params().g);
}

TEST(TypeAParamsTest, DeserializeChecksCofactorRelation) {
  TypeAParams bad = params();
  bad.h += Bigint(4);
  EXPECT_THROW(TypeAParams::deserialize(bad.serialize()),
               std::invalid_argument);
}

TEST(TypeAParamsTest, GenerateForOrderValidatesInput) {
  SecureRandom rng(12);
  EXPECT_THROW(typea_generate_for_order(rng, Bigint(4), 64),
               std::invalid_argument);
  EXPECT_THROW(typea_generate_for_order(rng, Bigint(101), 9),
               std::invalid_argument);
}

}  // namespace
}  // namespace ppms
