// Flat-limb pairing path vs the Bigint oracle path: the same engine API
// under both settings of PPMS_FLAT_LIMBS must produce bit-identical GT
// values, precomp tables must replay correctly across modes, and a shared
// flat engine must stay exact under concurrent use (the TSan angle).
#include "pairing/pipeline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "bigint/limbs.h"
#include "bigint/modarith.h"
#include "obs/metrics.h"
#include "pairing/fp.h"
#include "pairing/fp2.h"
#include "pairing/tate.h"

namespace ppms {
namespace {

const TypeAParams& params() {
  static const TypeAParams prm = [] {
    SecureRandom rng(9100);
    return typea_generate(rng, 48, 128);
  }();
  return prm;
}

// Engines constructed under each mode. The global switch is only read at
// construction, so holding both at once is fine.
struct ModePair {
  PairingEngine flat;
  PairingEngine oracle;
};

const ModePair& engines() {
  static const ModePair pair = [] {
    const bool saved = flat_limbs_enabled();
    set_flat_limbs_enabled(true);
    PairingEngine flat(params());
    set_flat_limbs_enabled(false);
    PairingEngine oracle(params());
    set_flat_limbs_enabled(saved);
    return ModePair{std::move(flat), std::move(oracle)};
  }();
  return pair;
}

TEST(FlatPairingPath, EngineModesMatchConstructionSwitch) {
  EXPECT_TRUE(engines().flat.flat());
  EXPECT_FALSE(engines().oracle.flat());
}

TEST(FlatPairingPath, LivePairBitIdenticalAcrossModesAndOracle) {
  SecureRandom rng(9101);
  for (int i = 0; i < 4; ++i) {
    const EcPoint P = typea_random_subgroup_point(params(), rng);
    const EcPoint Q = typea_random_subgroup_point(params(), rng);
    const Fp2 f = engines().flat.pair(P, Q);
    EXPECT_EQ(f, engines().oracle.pair(P, Q));
    EXPECT_EQ(f, tate_pairing_affine(params(), P, Q));
  }
}

TEST(FlatPairingPath, FlatMillerCounterPinsTheKernel) {
  SecureRandom rng(9102);
  const EcPoint P = typea_random_subgroup_point(params(), rng);
  const EcPoint Q = typea_random_subgroup_point(params(), rng);
  obs::Counter& flat_miller = obs::counter("crypto.fp.flat_miller");
  obs::set_metrics_enabled(true);
  const std::uint64_t before = flat_miller.value();
  (void)engines().oracle.pair(P, Q);
  EXPECT_EQ(flat_miller.value(), before);  // oracle path: no flat loops
  (void)engines().flat.pair(P, Q);
  EXPECT_EQ(flat_miller.value(), before + 1);
  obs::set_metrics_enabled(false);
}

TEST(FlatPairingPath, PrecompTablesReplayAcrossModes) {
  SecureRandom rng(9103);
  const EcPoint P = typea_random_subgroup_point(params(), rng);
  const EcPoint Q = typea_random_subgroup_point(params(), rng);
  const PairingPrecomp flat_pre = engines().flat.precompute(P);
  const PairingPrecomp oracle_pre = engines().oracle.precompute(P);
  const Fp2 expect = tate_pairing_affine(params(), P, Q);
  // Same-mode replay.
  EXPECT_EQ(engines().flat.pair(flat_pre, Q), expect);
  EXPECT_EQ(engines().oracle.pair(oracle_pre, Q), expect);
  // Cross-mode replay: a flat-built table carries derived Bigint steps for
  // the oracle engine; an oracle-built table sends the flat engine down
  // its fallback path. Both must stay exact.
  EXPECT_EQ(engines().oracle.pair(flat_pre, Q), expect);
  EXPECT_EQ(engines().flat.pair(oracle_pre, Q), expect);
}

TEST(FlatPairingPath, PairProductBitIdenticalAcrossModes) {
  SecureRandom rng(9104);
  const PairingPrecomp flat_pre =
      engines().flat.precompute(typea_random_subgroup_point(params(), rng));
  std::vector<PairingTerm> terms;
  for (int i = 0; i < 3; ++i) {
    PairingTerm t;
    t.P = typea_random_subgroup_point(params(), rng);
    t.Q = typea_random_subgroup_point(params(), rng);
    t.exp = Bigint::random_below(rng, params().r);
    t.invert = i % 2 == 1;
    terms.push_back(t);
  }
  PairingTerm pt;
  pt.pre = &flat_pre;
  pt.Q = typea_random_subgroup_point(params(), rng);
  pt.exp = terms[0].exp;  // shares an accumulator group
  terms.push_back(pt);

  const Fp2 flat_val = engines().flat.pair_product(terms);
  EXPECT_EQ(flat_val, engines().oracle.pair_product(terms));

  // Oracle reference: compose affine pairings with plain F_p² arithmetic.
  const Bigint& p = params().p;
  Fp2 expect = fp2_one();
  for (const PairingTerm& t : terms) {
    const EcPoint& P = t.pre != nullptr ? t.pre->point() : t.P;
    Fp2 v = fp2_pow(tate_pairing_affine(params(), P, t.Q),
                    t.exp.mod(params().r), p);
    if (t.invert) v = fp2_inv(v, p);
    expect = fp2_mul(expect, v, p);
  }
  EXPECT_EQ(flat_val, expect);
}

TEST(FlatPairingPath, GtPowsBitIdenticalAcrossModes) {
  SecureRandom rng(9105);
  const Fp2 g = engines().flat.pair(params().g, params().g);
  for (int i = 0; i < 4; ++i) {
    const Bigint e1 = Bigint::random_below(rng, params().r);
    const Bigint e2 = Bigint::random_below(rng, params().r);
    EXPECT_EQ(engines().flat.gt_pow(g, e1), engines().oracle.gt_pow(g, e1));
    EXPECT_EQ(engines().flat.gt_pow2(g, e1, g, e2),
              engines().oracle.gt_pow2(g, e1, g, e2));
    EXPECT_EQ(engines().flat.gt_pow(g, e1),
              fp2_pow(g, e1, params().p));
  }
}

TEST(FlatPairingPath, InversionBudgetUnchanged) {
  // The flat final exponentiation must keep the one-fp_inv-per-pairing
  // budget the projective pipeline is built around.
  SecureRandom rng(9106);
  const EcPoint P = typea_random_subgroup_point(params(), rng);
  const EcPoint Q = typea_random_subgroup_point(params(), rng);
  const std::uint64_t before = fp_inv_calls();
  (void)engines().flat.pair(P, Q);
  EXPECT_EQ(fp_inv_calls() - before, 1u);
  (void)engines().flat.pair_product(
      {PairingTerm{nullptr, P, Q, Bigint(1), false},
       PairingTerm{nullptr, Q, P, Bigint(2), true}});
  EXPECT_EQ(fp_inv_calls() - before, 2u);  // one more for the whole product
}

// TSan target: one flat engine and one shared precomp table driven from
// many threads; every result is checked against a fixed expected value so
// data races surface as wrong answers even without the sanitizer.
TEST(FlatPairingConcurrency, SharedFlatEngineUnderThreads) {
  SecureRandom rng(9107);
  const EcPoint P = typea_random_subgroup_point(params(), rng);
  const EcPoint Q = typea_random_subgroup_point(params(), rng);
  const PairingPrecomp pre = engines().flat.precompute(P);
  const Fp2 expect = tate_pairing_affine(params(), P, Q);
  constexpr int kThreads = 8;
  constexpr int kIters = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        if (engines().flat.pair(pre, Q) != expect) failures.fetch_add(1);
        if (engines().flat.pair(P, Q) != expect) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace ppms
