#include "pairing/tate.h"

#include <gtest/gtest.h>

namespace ppms {
namespace {

const TypeAParams& params() {
  static const TypeAParams prm = [] {
    SecureRandom rng(77);
    return typea_generate(rng, 48, 128);
  }();
  return prm;
}

TEST(TateTest, PairingValueHasOrderR) {
  SecureRandom rng(1);
  const EcPoint P = typea_random_subgroup_point(params(), rng);
  const EcPoint Q = typea_random_subgroup_point(params(), rng);
  const Fp2 e = tate_pairing(params(), P, Q);
  EXPECT_TRUE(fp2_is_one(fp2_pow(e, params().r, params().p)));
}

TEST(TateTest, NonDegenerateOnGenerator) {
  const Fp2 e = tate_pairing(params(), params().g, params().g);
  EXPECT_FALSE(fp2_is_one(e));
}

TEST(TateTest, BilinearInFirstArgument) {
  SecureRandom rng(2);
  const EcPoint P = typea_random_subgroup_point(params(), rng);
  const EcPoint Q = typea_random_subgroup_point(params(), rng);
  const Bigint a(12345);
  const Fp2 lhs = tate_pairing(params(), ec_mul(P, a, params().p), Q);
  const Fp2 rhs = fp2_pow(tate_pairing(params(), P, Q), a, params().p);
  EXPECT_EQ(lhs, rhs);
}

TEST(TateTest, BilinearInSecondArgument) {
  SecureRandom rng(3);
  const EcPoint P = typea_random_subgroup_point(params(), rng);
  const EcPoint Q = typea_random_subgroup_point(params(), rng);
  const Bigint b(6789);
  const Fp2 lhs = tate_pairing(params(), P, ec_mul(Q, b, params().p));
  const Fp2 rhs = fp2_pow(tate_pairing(params(), P, Q), b, params().p);
  EXPECT_EQ(lhs, rhs);
}

TEST(TateTest, JointBilinearity) {
  // ê(aP, bQ) == ê(P, Q)^{ab} — the property every CL verification
  // equation rests on.
  SecureRandom rng(4);
  const EcPoint P = typea_random_subgroup_point(params(), rng);
  const EcPoint Q = typea_random_subgroup_point(params(), rng);
  const Bigint a = Bigint::random_range(rng, Bigint(1), params().r);
  const Bigint b = Bigint::random_range(rng, Bigint(1), params().r);
  const Fp2 lhs = tate_pairing(params(), ec_mul(P, a, params().p),
                               ec_mul(Q, b, params().p));
  const Fp2 rhs =
      fp2_pow(tate_pairing(params(), P, Q), (a * b).mod(params().r),
              params().p);
  EXPECT_EQ(lhs, rhs);
}

TEST(TateTest, SymmetricPairing) {
  // With the distortion map the modified pairing is symmetric.
  SecureRandom rng(5);
  const EcPoint P = typea_random_subgroup_point(params(), rng);
  const EcPoint Q = typea_random_subgroup_point(params(), rng);
  EXPECT_EQ(tate_pairing(params(), P, Q), tate_pairing(params(), Q, P));
}

TEST(TateTest, InfinityMapsToOne) {
  SecureRandom rng(6);
  const EcPoint P = typea_random_subgroup_point(params(), rng);
  EXPECT_TRUE(
      fp2_is_one(tate_pairing(params(), P, EcPoint::at_infinity())));
  EXPECT_TRUE(
      fp2_is_one(tate_pairing(params(), EcPoint::at_infinity(), P)));
}

TEST(TateTest, MultiplicativeHomomorphism) {
  // ê(P1 + P2, Q) == ê(P1, Q) · ê(P2, Q).
  SecureRandom rng(7);
  const EcPoint P1 = typea_random_subgroup_point(params(), rng);
  const EcPoint P2 = typea_random_subgroup_point(params(), rng);
  const EcPoint Q = typea_random_subgroup_point(params(), rng);
  const Fp2 lhs = tate_pairing(params(), ec_add(P1, P2, params().p), Q);
  const Fp2 rhs = fp2_mul(tate_pairing(params(), P1, Q),
                          tate_pairing(params(), P2, Q), params().p);
  EXPECT_EQ(lhs, rhs);
}

TEST(TateTest, RejectsOffCurveInput) {
  SecureRandom rng(8);
  EcPoint bad = typea_random_subgroup_point(params(), rng);
  bad.x = fp_add(bad.x, Bigint(1), params().p);
  EXPECT_THROW(tate_pairing(params(), bad, params().g),
               std::invalid_argument);
}

TEST(TateTest, ProjectiveMatchesAffineBitExact) {
  // The Jacobian Miller loop scales every line value by a factor in F_p*;
  // the final exponentiation must kill all of them, leaving the output
  // bit-for-bit equal to the affine loop's.
  SecureRandom rng(10);
  for (int i = 0; i < 8; ++i) {
    const EcPoint P = typea_random_subgroup_point(params(), rng);
    const EcPoint Q = typea_random_subgroup_point(params(), rng);
    const Fp2 proj = tate_pairing(params(), P, Q);
    const Fp2 aff = tate_pairing_affine(params(), P, Q);
    EXPECT_EQ(fp2_serialize(proj, params().p),
              fp2_serialize(aff, params().p));
  }
  // Scalar multiples of the generator hit the V == ±P special cases of
  // the addition step at the loop's tail.
  for (const std::int64_t k : {1LL, 2LL, 3LL, 7LL}) {
    const EcPoint P = ec_mul(params().g, Bigint(k), params().p);
    EXPECT_EQ(fp2_serialize(tate_pairing(params(), P, params().g),
                            params().p),
              fp2_serialize(tate_pairing_affine(params(), P, params().g),
                            params().p));
  }
}

TEST(TateTest, ProjectiveLoopPerformsExactlyOneInversion) {
  SecureRandom rng(11);
  const EcPoint P = typea_random_subgroup_point(params(), rng);
  const EcPoint Q = typea_random_subgroup_point(params(), rng);
  // Warm up so lazily-built fixtures don't pollute the counter.
  (void)tate_pairing(params(), P, Q);
  const std::uint64_t before = fp_inv_calls();
  (void)tate_pairing(params(), P, Q);
  // Zero inversions per Miller step: the only one is the fp2_inv inside
  // the final exponentiation.
  EXPECT_EQ(fp_inv_calls() - before, 1u);
  // The affine loop, by contrast, inverts on (nearly) every step.
  const std::uint64_t before_affine = fp_inv_calls();
  (void)tate_pairing_affine(params(), P, Q);
  EXPECT_GT(fp_inv_calls() - before_affine, params().r.bit_length() / 2);
}

TEST(TateTest, DistinctPointsDistinctValues) {
  // Pairing against the generator is injective on the subgroup.
  SecureRandom rng(9);
  const EcPoint P = ec_mul(params().g, Bigint(2), params().p);
  const EcPoint Q = ec_mul(params().g, Bigint(3), params().p);
  EXPECT_FALSE(tate_pairing(params(), P, params().g) ==
               tate_pairing(params(), Q, params().g));
}

}  // namespace
}  // namespace ppms
