#include "pairing/fp2.h"

#include <gtest/gtest.h>

namespace ppms {
namespace {

const Bigint kP(1000003);

Fp2 random_fp2(SecureRandom& rng) {
  return Fp2{Bigint::random_below(rng, kP), Bigint::random_below(rng, kP)};
}

TEST(Fp2Test, OneIsIdentity) {
  SecureRandom rng(1);
  const Fp2 x = random_fp2(rng);
  EXPECT_EQ(fp2_mul(x, fp2_one(), kP), x);
  EXPECT_TRUE(fp2_is_one(fp2_one()));
}

TEST(Fp2Test, ISquaredIsMinusOne) {
  const Fp2 i{Bigint(0), Bigint(1)};
  const Fp2 sq = fp2_mul(i, i, kP);
  EXPECT_EQ(sq, (Fp2{kP - Bigint(1), Bigint(0)}));
}

TEST(Fp2Test, MulCommutativeAssociativeDistributive) {
  SecureRandom rng(2);
  const Fp2 x = random_fp2(rng), y = random_fp2(rng), z = random_fp2(rng);
  EXPECT_EQ(fp2_mul(x, y, kP), fp2_mul(y, x, kP));
  EXPECT_EQ(fp2_mul(fp2_mul(x, y, kP), z, kP),
            fp2_mul(x, fp2_mul(y, z, kP), kP));
  EXPECT_EQ(fp2_mul(x, fp2_add(y, z, kP), kP),
            fp2_add(fp2_mul(x, y, kP), fp2_mul(x, z, kP), kP));
}

TEST(Fp2Test, SquareMatchesMul) {
  SecureRandom rng(3);
  for (int i = 0; i < 10; ++i) {
    const Fp2 x = random_fp2(rng);
    EXPECT_EQ(fp2_square(x, kP), fp2_mul(x, x, kP));
  }
}

TEST(Fp2Test, InverseProperty) {
  SecureRandom rng(4);
  for (int i = 0; i < 10; ++i) {
    const Fp2 x = random_fp2(rng);
    if (x.a.is_zero() && x.b.is_zero()) continue;
    EXPECT_TRUE(fp2_is_one(fp2_mul(x, fp2_inv(x, kP), kP)));
  }
  EXPECT_THROW(fp2_inv(Fp2{Bigint(0), Bigint(0)}, kP), std::domain_error);
}

TEST(Fp2Test, PowLawsHold) {
  SecureRandom rng(5);
  const Fp2 x = random_fp2(rng);
  const Bigint a(123), b(456);
  EXPECT_EQ(fp2_mul(fp2_pow(x, a, kP), fp2_pow(x, b, kP), kP),
            fp2_pow(x, a + b, kP));
  EXPECT_EQ(fp2_pow(fp2_pow(x, a, kP), b, kP), fp2_pow(x, a * b, kP));
  EXPECT_TRUE(fp2_is_one(fp2_pow(x, Bigint(0), kP)));
}

TEST(Fp2Test, NegativePowIsInversePow) {
  SecureRandom rng(6);
  const Fp2 x = random_fp2(rng);
  EXPECT_EQ(fp2_pow(x, Bigint(-3), kP),
            fp2_inv(fp2_pow(x, Bigint(3), kP), kP));
}

TEST(Fp2Test, ConjIsFrobenius) {
  // x^p == conj(x) when p ≡ 3 (mod 4).
  SecureRandom rng(7);
  const Fp2 x = random_fp2(rng);
  EXPECT_EQ(fp2_pow(x, kP, kP), fp2_conj(x, kP));
}

TEST(Fp2Test, SerializationRoundTrip) {
  SecureRandom rng(8);
  const Fp2 x = random_fp2(rng);
  EXPECT_EQ(fp2_deserialize(fp2_serialize(x, kP), kP), x);
}

TEST(Fp2Test, DeserializeRejectsBadInput) {
  EXPECT_THROW(fp2_deserialize(Bytes(3), kP), std::invalid_argument);
  // Coordinate >= p.
  const Fp2 bad{kP, Bigint(0)};
  Bytes raw = concat(kP.to_bytes_be(3), Bigint(0).to_bytes_be(3));
  EXPECT_THROW(fp2_deserialize(raw, kP), std::invalid_argument);
}

}  // namespace
}  // namespace ppms
