#include "zkp/representation.h"

#include <gtest/gtest.h>

#include "bigint/prime.h"

namespace ppms {
namespace {

struct Fixture {
  ZnGroup group;
  Bytes g, h;  // two independent generators (Pedersen bases)
};

const Fixture& fx() {
  static const Fixture f = [] {
    SecureRandom rng(31);
    ZnGroup group =
        ZnGroup::quadratic_residues(random_safe_prime(rng, 96), rng);
    const Bytes g = group.generator();
    // Independent second base: random exponent of g (discrete log unknown
    // to the test's "prover" in spirit).
    const Bytes h =
        group.pow(g, Bigint::random_range(rng, Bigint(2), group.order()));
    return Fixture{std::move(group), g, h};
  }();
  return f;
}

TEST(RepresentationTest, PedersenOpeningVerifies) {
  SecureRandom rng(1);
  const Bigint m = Bigint::random_below(rng, fx().group.order());
  const Bigint r = Bigint::random_below(rng, fx().group.order());
  const Bytes commitment =
      fx().group.op(fx().group.pow(fx().g, m), fx().group.pow(fx().h, r));
  const RepresentationProof proof = representation_prove(
      fx().group, {fx().g, fx().h}, commitment, {m, r}, rng);
  EXPECT_TRUE(representation_verify(fx().group, {fx().g, fx().h}, commitment,
                                    proof));
}

TEST(RepresentationTest, SingleBaseDegeneratesToSchnorr) {
  SecureRandom rng(2);
  const Bigint x(42);
  const Bytes y = fx().group.pow(fx().g, x);
  const RepresentationProof proof =
      representation_prove(fx().group, {fx().g}, y, {x}, rng);
  EXPECT_TRUE(representation_verify(fx().group, {fx().g}, y, proof));
}

TEST(RepresentationTest, ThreeBases) {
  SecureRandom rng(3);
  const Bytes k = fx().group.pow(fx().g, Bigint(7919));
  const std::vector<Bytes> bases{fx().g, fx().h, k};
  const std::vector<Bigint> exps{Bigint(11), Bigint(22), Bigint(33)};
  Bytes y = fx().group.identity();
  for (std::size_t i = 0; i < 3; ++i) {
    y = fx().group.op(y, fx().group.pow(bases[i], exps[i]));
  }
  const RepresentationProof proof =
      representation_prove(fx().group, bases, y, exps, rng);
  EXPECT_TRUE(representation_verify(fx().group, bases, y, proof));
}

TEST(RepresentationTest, WrongTargetRejected) {
  SecureRandom rng(4);
  const Bigint m(1), r(2);
  const Bytes commitment =
      fx().group.op(fx().group.pow(fx().g, m), fx().group.pow(fx().h, r));
  const RepresentationProof proof = representation_prove(
      fx().group, {fx().g, fx().h}, commitment, {m, r}, rng);
  const Bytes other = fx().group.pow(fx().g, Bigint(3));
  EXPECT_FALSE(
      representation_verify(fx().group, {fx().g, fx().h}, other, proof));
}

TEST(RepresentationTest, SwappedBasesRejected) {
  SecureRandom rng(5);
  const Bigint m(10), r(20);
  const Bytes commitment =
      fx().group.op(fx().group.pow(fx().g, m), fx().group.pow(fx().h, r));
  const RepresentationProof proof = representation_prove(
      fx().group, {fx().g, fx().h}, commitment, {m, r}, rng);
  EXPECT_FALSE(representation_verify(fx().group, {fx().h, fx().g},
                                     commitment, proof));
}

TEST(RepresentationTest, ResponseCountMismatchRejected) {
  SecureRandom rng(6);
  const Bigint m(10), r(20);
  const Bytes commitment =
      fx().group.op(fx().group.pow(fx().g, m), fx().group.pow(fx().h, r));
  RepresentationProof proof = representation_prove(
      fx().group, {fx().g, fx().h}, commitment, {m, r}, rng);
  proof.responses.pop_back();
  EXPECT_FALSE(representation_verify(fx().group, {fx().g, fx().h},
                                     commitment, proof));
}

TEST(RepresentationTest, SizeMismatchThrowsOnProve) {
  SecureRandom rng(7);
  EXPECT_THROW(representation_prove(fx().group, {fx().g},
                                    fx().group.identity(), {}, rng),
               std::invalid_argument);
  EXPECT_THROW(representation_prove(fx().group, {}, fx().group.identity(),
                                    {}, rng),
               std::invalid_argument);
}

TEST(RepresentationTest, SerializationRoundTrip) {
  SecureRandom rng(8);
  const Bigint m(4), r(5);
  const Bytes commitment =
      fx().group.op(fx().group.pow(fx().g, m), fx().group.pow(fx().h, r));
  const RepresentationProof proof = representation_prove(
      fx().group, {fx().g, fx().h}, commitment, {m, r}, rng);
  const RepresentationProof copy =
      RepresentationProof::deserialize(proof.serialize());
  EXPECT_TRUE(representation_verify(fx().group, {fx().g, fx().h}, commitment,
                                    copy));
}

TEST(RepresentationTest, HidingAcrossRandomness) {
  // Same statement, fresh randomness → different proofs (zero-knowledge
  // sanity).
  SecureRandom rng(9);
  const Bigint m(4), r(5);
  const Bytes commitment =
      fx().group.op(fx().group.pow(fx().g, m), fx().group.pow(fx().h, r));
  const RepresentationProof p1 = representation_prove(
      fx().group, {fx().g, fx().h}, commitment, {m, r}, rng);
  const RepresentationProof p2 = representation_prove(
      fx().group, {fx().g, fx().h}, commitment, {m, r}, rng);
  EXPECT_NE(p1.commitment, p2.commitment);
}

}  // namespace
}  // namespace ppms
