// Cross-group exercise of every proof family: the schnorr/representation/
// OR proofs are tested in depth over Z*_p subgroups elsewhere; here each
// one runs over the curve group and the pairing target group too, since
// the DEC protocol uses them there and the type-erased Group interface is
// only as good as its least-tested implementation.
#include <gtest/gtest.h>

#include "zkp/or_proof.h"
#include "zkp/representation.h"
#include "zkp/schnorr.h"

namespace ppms {
namespace {

struct Fixture {
  TypeAParams params;
  std::unique_ptr<EcGroup> ec;
  std::unique_ptr<GtGroup> gt;
  Bytes gt_gen;
};

const Fixture& fx() {
  static const Fixture f = [] {
    SecureRandom rng(404);
    Fixture out;
    out.params = typea_generate(rng, 48, 128);
    out.ec = std::make_unique<EcGroup>(out.params);
    out.gt = std::make_unique<GtGroup>(out.params);
    out.gt_gen = out.gt->pair(out.params.g, out.params.g);
    return out;
  }();
  return f;
}

// --- representation proofs on EC and GT --------------------------------------

TEST(CrossGroupTest, PedersenOpeningOnCurve) {
  SecureRandom rng(1);
  const Bytes g = fx().ec->generator();
  const Bytes h = fx().ec->pow(g, Bigint(9973));
  const Bigint m(123), r(456);
  const Bytes commitment =
      fx().ec->op(fx().ec->pow(g, m), fx().ec->pow(h, r));
  const RepresentationProof proof =
      representation_prove(*fx().ec, {g, h}, commitment, {m, r}, rng);
  EXPECT_TRUE(representation_verify(*fx().ec, {g, h}, commitment, proof));
  EXPECT_FALSE(representation_verify(*fx().ec, {h, g}, commitment, proof));
}

TEST(CrossGroupTest, PedersenOpeningInTargetGroup) {
  SecureRandom rng(2);
  const Bytes g = fx().gt_gen;
  const Bytes h = fx().gt->pow(g, Bigint(31337));
  const Bigint m(7), r(11);
  const Bytes commitment =
      fx().gt->op(fx().gt->pow(g, m), fx().gt->pow(h, r));
  const RepresentationProof proof =
      representation_prove(*fx().gt, {g, h}, commitment, {m, r}, rng);
  EXPECT_TRUE(representation_verify(*fx().gt, {g, h}, commitment, proof));
}

// --- OR proofs on EC and GT ---------------------------------------------------

TEST(CrossGroupTest, OrProofOnCurve) {
  SecureRandom rng(3);
  const Bytes g = fx().ec->generator();
  const Bigint x(271828);
  const std::vector<Bytes> ys{fx().ec->pow(g, Bigint(1)),
                              fx().ec->pow(g, x),
                              fx().ec->pow(g, Bigint(3))};
  const OrProof proof = or_prove(*fx().ec, g, ys, 1, x, rng);
  EXPECT_TRUE(or_verify(*fx().ec, g, ys, proof));
  // Tamper: swap two targets.
  std::vector<Bytes> swapped{ys[1], ys[0], ys[2]};
  EXPECT_FALSE(or_verify(*fx().ec, g, swapped, proof));
}

TEST(CrossGroupTest, OrProofInTargetGroup) {
  SecureRandom rng(4);
  const Bytes g = fx().gt_gen;
  const Bigint x(314159);
  const std::vector<Bytes> ys{fx().gt->pow(g, x),
                              fx().gt->pow(g, Bigint(2))};
  const OrProof proof = or_prove(*fx().gt, g, ys, 0, x, rng);
  EXPECT_TRUE(or_verify(*fx().gt, g, ys, proof));
}

// --- proofs must not transplant across groups ---------------------------------

TEST(CrossGroupTest, ProofBoundToItsGroup) {
  // A Schnorr proof made in GT must not verify in another GT instance
  // over different parameters, even with honest-looking inputs: the
  // group description is in the transcript.
  SecureRandom rng(5);
  const Bigint x(99);
  const Bytes y = fx().gt->pow(fx().gt_gen, x);
  const SchnorrProof proof =
      schnorr_prove(*fx().gt, fx().gt_gen, y, x, rng);

  TypeAParams other_params = typea_generate(rng, 48, 128);
  const GtGroup other(other_params);
  // Same-size field would be needed for the bytes to even parse; if they
  // do not, contains() rejects — either way verification must fail.
  EXPECT_FALSE(schnorr_verify(other, fx().gt_gen, y, proof));
}

TEST(CrossGroupTest, EcProofRejectedByGtVerifier) {
  SecureRandom rng(6);
  const Bigint x(5);
  const Bytes g = fx().ec->generator();
  const Bytes y = fx().ec->pow(g, x);
  const SchnorrProof proof = schnorr_prove(*fx().ec, g, y, x, rng);
  EXPECT_FALSE(schnorr_verify(*fx().gt, g, y, proof));
}

// --- identity-adjacent edge cases ----------------------------------------------

TEST(CrossGroupTest, SchnorrOnIdentityTargets) {
  SecureRandom rng(7);
  // Witness 0 across all three group kinds.
  const Bytes g_ec = fx().ec->generator();
  EXPECT_TRUE(schnorr_verify(
      *fx().ec, g_ec, fx().ec->identity(),
      schnorr_prove(*fx().ec, g_ec, fx().ec->identity(), Bigint(0), rng)));
  EXPECT_TRUE(schnorr_verify(
      *fx().gt, fx().gt_gen, fx().gt->identity(),
      schnorr_prove(*fx().gt, fx().gt_gen, fx().gt->identity(), Bigint(0),
                    rng)));
}

TEST(CrossGroupTest, WitnessReducedModOrder) {
  // x and x + r are the same witness; proofs made with either verify.
  SecureRandom rng(8);
  const Bytes g = fx().ec->generator();
  const Bigint x(42);
  const Bytes y = fx().ec->pow(g, x);
  const SchnorrProof proof =
      schnorr_prove(*fx().ec, g, y, x + fx().params.r, rng);
  EXPECT_TRUE(schnorr_verify(*fx().ec, g, y, proof));
}

}  // namespace
}  // namespace ppms
