#include "zkp/double_dlog.h"

#include <gtest/gtest.h>

#include "bigint/cunningham.h"
#include "bigint/modarith.h"

namespace ppms {
namespace {

// Tower fixture from a length-3 Cunningham chain o1, o2, o3:
//   inner base h generates the order-o1 subgroup of Z*_{o2},
//   outer group is the order-o2 subgroup (QRs) of Z*_{o3}.
struct Fixture {
  Bigint o1, o2, o3;
  Bigint h;
  std::unique_ptr<ZnGroup> outer;
};

const Fixture& fx() {
  static const Fixture f = [] {
    SecureRandom rng(61);
    const auto chain = search_chain_random(rng, 32, 3, 4000000);
    if (!chain) throw std::runtime_error("no length-3 chain");
    Fixture out;
    out.o1 = chain->primes[0];
    out.o2 = chain->primes[1];
    out.o3 = chain->primes[2];
    out.outer =
        std::make_unique<ZnGroup>(ZnGroup::quadratic_residues(out.o3, rng));
    // h: a square mod o2 that is not 1 → order o1.
    for (;;) {
      const Bigint x = Bigint::random_range(rng, Bigint(2), out.o2);
      const Bigint h = (x * x).mod(out.o2);
      if (!h.is_one()) {
        out.h = h;
        break;
      }
    }
    return out;
  }();
  return f;
}

DoubleDlogStatement make_statement(const Bigint& x) {
  DoubleDlogStatement stmt;
  stmt.outer = fx().outer.get();
  stmt.g = fx().outer->generator();
  stmt.h = fx().h;
  stmt.inner_modulus = fx().o2;
  stmt.inner_order = fx().o1;
  const Bigint hx = modexp(fx().h, x, fx().o2);
  stmt.Y = fx().outer->pow(stmt.g, hx);
  return stmt;
}

TEST(DoubleDlogTest, HonestProofVerifies) {
  SecureRandom rng(1);
  const Bigint x = Bigint::random_below(rng, fx().o1);
  const DoubleDlogStatement stmt = make_statement(x);
  const DoubleDlogProof proof = double_dlog_prove(stmt, x, rng, 24);
  EXPECT_TRUE(double_dlog_verify(stmt, proof, 24));
}

TEST(DoubleDlogTest, WrongWitnessStatementRejected) {
  SecureRandom rng(2);
  const Bigint x(1234);
  const DoubleDlogStatement good = make_statement(x);
  DoubleDlogStatement bad = good;
  bad.Y = fx().outer->pow(good.g, modexp(fx().h, Bigint(1235), fx().o2));
  const DoubleDlogProof proof = double_dlog_prove(good, x, rng, 24);
  EXPECT_FALSE(double_dlog_verify(bad, proof, 24));
}

TEST(DoubleDlogTest, TamperedCommitmentRejected) {
  SecureRandom rng(3);
  const Bigint x(55);
  const DoubleDlogStatement stmt = make_statement(x);
  DoubleDlogProof proof = double_dlog_prove(stmt, x, rng, 24);
  proof.commitments[0] = stmt.g;
  EXPECT_FALSE(double_dlog_verify(stmt, proof, 24));
}

TEST(DoubleDlogTest, TamperedResponseRejected) {
  SecureRandom rng(4);
  const Bigint x(55);
  const DoubleDlogStatement stmt = make_statement(x);
  DoubleDlogProof proof = double_dlog_prove(stmt, x, rng, 24);
  proof.responses[5] = (proof.responses[5] + Bigint(1)).mod(fx().o1);
  EXPECT_FALSE(double_dlog_verify(stmt, proof, 24));
}

TEST(DoubleDlogTest, RoundCountMismatchRejected) {
  SecureRandom rng(5);
  const Bigint x(55);
  const DoubleDlogStatement stmt = make_statement(x);
  const DoubleDlogProof proof = double_dlog_prove(stmt, x, rng, 24);
  EXPECT_FALSE(double_dlog_verify(stmt, proof, 25));
}

TEST(DoubleDlogTest, ContextBinds) {
  SecureRandom rng(6);
  const Bigint x(77);
  const DoubleDlogStatement stmt = make_statement(x);
  const DoubleDlogProof proof =
      double_dlog_prove(stmt, x, rng, 24, bytes_of("spend-1"));
  EXPECT_TRUE(double_dlog_verify(stmt, proof, 24, bytes_of("spend-1")));
  EXPECT_FALSE(double_dlog_verify(stmt, proof, 24, bytes_of("spend-2")));
}

TEST(DoubleDlogTest, ResponseRangeChecked) {
  SecureRandom rng(7);
  const Bigint x(77);
  const DoubleDlogStatement stmt = make_statement(x);
  DoubleDlogProof proof = double_dlog_prove(stmt, x, rng, 24);
  proof.responses[0] += fx().o1;
  EXPECT_FALSE(double_dlog_verify(stmt, proof, 24));
}

TEST(DoubleDlogTest, BadRoundCountThrows) {
  SecureRandom rng(8);
  const Bigint x(1);
  const DoubleDlogStatement stmt = make_statement(x);
  EXPECT_THROW(double_dlog_prove(stmt, x, rng, 0), std::invalid_argument);
  EXPECT_THROW(double_dlog_prove(stmt, x, rng, 200), std::invalid_argument);
}

class DoubleDlogRounds : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DoubleDlogRounds, ProveVerifyAtEveryStrength) {
  SecureRandom rng(100 + GetParam());
  const Bigint x = Bigint::random_below(rng, fx().o1);
  const DoubleDlogStatement stmt = make_statement(x);
  const DoubleDlogProof proof =
      double_dlog_prove(stmt, x, rng, GetParam());
  EXPECT_TRUE(double_dlog_verify(stmt, proof, GetParam()));
  // Proof size scales linearly with the round count.
  EXPECT_EQ(proof.commitments.size(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Strengths, DoubleDlogRounds,
                         ::testing::Values(1, 8, 16, 40, 64, 128));

TEST(DoubleDlogTest, SerializationRoundTrip) {
  SecureRandom rng(9);
  const Bigint x(31);
  const DoubleDlogStatement stmt = make_statement(x);
  const DoubleDlogProof proof = double_dlog_prove(stmt, x, rng, 16);
  const DoubleDlogProof copy = DoubleDlogProof::deserialize(proof.serialize());
  EXPECT_TRUE(double_dlog_verify(stmt, copy, 16));
}

}  // namespace
}  // namespace ppms
