#include "zkp/transcript.h"

#include <gtest/gtest.h>

namespace ppms {
namespace {

TEST(TranscriptTest, DeterministicForSameInputs) {
  Transcript a("d"), b("d");
  a.absorb("x", {1, 2, 3});
  b.absorb("x", {1, 2, 3});
  EXPECT_EQ(a.challenge("c", Bigint(1000000)),
            b.challenge("c", Bigint(1000000)));
}

TEST(TranscriptTest, DomainSeparates) {
  Transcript a("domain-a"), b("domain-b");
  EXPECT_NE(a.challenge("c", Bigint(1) << 128),
            b.challenge("c", Bigint(1) << 128));
}

TEST(TranscriptTest, LabelSeparates) {
  Transcript a("d"), b("d");
  a.absorb("label-a", {1});
  b.absorb("label-b", {1});
  EXPECT_NE(a.challenge("c", Bigint(1) << 128),
            b.challenge("c", Bigint(1) << 128));
}

TEST(TranscriptTest, DataChangesChallenge) {
  Transcript a("d"), b("d");
  a.absorb("x", {1});
  b.absorb("x", {2});
  EXPECT_NE(a.challenge("c", Bigint(1) << 128),
            b.challenge("c", Bigint(1) << 128));
}

TEST(TranscriptTest, FramingPreventsConcatenationAmbiguity) {
  // ("ab", "c") must differ from ("a", "bc").
  Transcript a("d"), b("d");
  a.absorb("x", bytes_of("ab"));
  a.absorb("x", bytes_of("c"));
  b.absorb("x", bytes_of("a"));
  b.absorb("x", bytes_of("bc"));
  EXPECT_NE(a.challenge("c", Bigint(1) << 128),
            b.challenge("c", Bigint(1) << 128));
}

TEST(TranscriptTest, ChallengeStaysBelowBound) {
  Transcript t("d");
  for (int i = 0; i < 50; ++i) {
    const Bigint c = t.challenge("c", Bigint(97));
    EXPECT_GE(c, Bigint(0));
    EXPECT_LT(c, Bigint(97));
  }
}

TEST(TranscriptTest, ConsecutiveChallengesDiffer) {
  Transcript t("d");
  const Bigint bound = Bigint(1) << 128;
  EXPECT_NE(t.challenge("c", bound), t.challenge("c", bound));
}

TEST(TranscriptTest, ChallengeBytesLengthAndDeterminism) {
  Transcript a("d"), b("d");
  const Bytes ba = a.challenge_bytes("bits", 13);
  const Bytes bb = b.challenge_bytes("bits", 13);
  EXPECT_EQ(ba.size(), 13u);
  EXPECT_EQ(ba, bb);
}

TEST(TranscriptTest, AbsorbAfterChallengeStillMixes) {
  Transcript a("d"), b("d");
  (void)a.challenge("c", Bigint(100));
  (void)b.challenge("c", Bigint(100));
  a.absorb("y", {9});
  b.absorb("y", {8});
  EXPECT_NE(a.challenge("c2", Bigint(1) << 64),
            b.challenge("c2", Bigint(1) << 64));
}

}  // namespace
}  // namespace ppms
