#include "zkp/group.h"

#include <gtest/gtest.h>

#include "bigint/prime.h"

namespace ppms {
namespace {

// Shared fixtures: one safe-prime Zn group, one curve-based pair.
const ZnGroup& zn() {
  static const ZnGroup g = [] {
    SecureRandom rng(11);
    const Bigint p = random_safe_prime(rng, 96);
    return ZnGroup::quadratic_residues(p, rng);
  }();
  return g;
}

const TypeAParams& params() {
  static const TypeAParams prm = [] {
    SecureRandom rng(12);
    return typea_generate(rng, 48, 128);
  }();
  return prm;
}

// Generic algebraic laws every Group implementation must satisfy.
void check_group_laws(const Group& g, const Bytes& gen, SecureRandom& rng) {
  ASSERT_TRUE(g.contains(gen));
  const Bytes id = g.identity();
  EXPECT_EQ(g.op(gen, id), gen);
  EXPECT_EQ(g.op(id, gen), gen);
  EXPECT_EQ(g.op(gen, g.inv(gen)), id);
  // Exponent laws.
  const Bigint a = Bigint::random_below(rng, g.order());
  const Bigint b = Bigint::random_below(rng, g.order());
  EXPECT_EQ(g.op(g.pow(gen, a), g.pow(gen, b)),
            g.pow(gen, (a + b).mod(g.order())));
  EXPECT_EQ(g.pow(g.pow(gen, a), b), g.pow(gen, (a * b).mod(g.order())));
  // Order annihilates.
  EXPECT_EQ(g.pow(gen, g.order()), id);
  // Negative exponents reduce.
  EXPECT_EQ(g.pow(gen, Bigint(-1)), g.inv(gen));
  // Membership of powers.
  EXPECT_TRUE(g.contains(g.pow(gen, a)));
}

TEST(ZnGroupTest, SatisfiesGroupLaws) {
  SecureRandom rng(1);
  check_group_laws(zn(), zn().generator(), rng);
}

TEST(ZnGroupTest, RejectsNonMembers) {
  // Zero, the modulus width mismatch, and a quadratic non-residue.
  EXPECT_FALSE(zn().contains(Bytes(3, 0)));
  EXPECT_FALSE(zn().contains(zn().encode(Bigint(0))));
  // -1 is a non-residue mod a safe prime p ≡ 3 (mod 4).
  const Bigint minus1 = zn().modulus() - Bigint(1);
  if ((zn().modulus() % Bigint(4)).to_u64() == 3) {
    EXPECT_FALSE(zn().contains(zn().encode(minus1)));
  }
}

TEST(ZnGroupTest, ConstructionValidatesGenerator) {
  EXPECT_THROW(ZnGroup(Bigint(23), Bigint(11), Bigint(1)),
               std::invalid_argument);
  EXPECT_THROW(ZnGroup(Bigint(23), Bigint(11), Bigint(23)),
               std::invalid_argument);
  // 5 has order 22 mod 23, not 11.
  EXPECT_THROW(ZnGroup(Bigint(23), Bigint(11), Bigint(5)),
               std::invalid_argument);
  // 2 is a QR mod 23 (order 11): fine.
  EXPECT_NO_THROW(ZnGroup(Bigint(23), Bigint(11), Bigint(2)));
}

TEST(ZnGroupTest, EncodeDecodeRoundTrip) {
  const Bigint x(123456);
  EXPECT_EQ(zn().decode(zn().encode(x)), x);
  EXPECT_THROW(zn().decode(Bytes(1)), std::invalid_argument);
}

TEST(EcGroupTest, SatisfiesGroupLaws) {
  SecureRandom rng(2);
  const EcGroup g(params());
  check_group_laws(g, g.generator(), rng);
}

TEST(EcGroupTest, RejectsPointOutsideSubgroup) {
  const EcGroup g(params());
  SecureRandom rng(3);
  // A random curve point is in the full group of order r·h; with
  // overwhelming probability it is NOT in the order-r subgroup.
  const EcPoint raw = ec_random_point(rng, params().p);
  if (!ec_mul(raw, params().r, params().p).infinity) {
    EXPECT_FALSE(g.contains(g.encode(raw)));
  }
  EXPECT_FALSE(g.contains(Bytes(5, 1)));
}

TEST(GtGroupTest, SatisfiesGroupLaws) {
  SecureRandom rng(4);
  const GtGroup g(params());
  const Bytes gen = g.pair(params().g, params().g);
  check_group_laws(g, gen, rng);
}

TEST(GtGroupTest, PairGivesSubgroupElement) {
  SecureRandom rng(5);
  const GtGroup g(params());
  const EcPoint P = typea_random_subgroup_point(params(), rng);
  EXPECT_TRUE(g.contains(g.pair(P, params().g)));
}

TEST(GtGroupTest, RejectsNonMembers) {
  const GtGroup g(params());
  EXPECT_FALSE(g.contains(Bytes(3)));
  // A random Fp2 element is almost surely not in the order-r subgroup.
  SecureRandom rng(6);
  const Fp2 x{Bigint::random_below(rng, params().p),
              Bigint::random_below(rng, params().p)};
  if (!fp2_is_one(fp2_pow(x, params().r, params().p))) {
    EXPECT_FALSE(g.contains(g.encode(x)));
  }
}

// Shamir double exponentiation must agree with the two-pows-and-an-op
// definition in every group, including degenerate exponents.
void check_pow2(const Group& g, const Bytes& b1, const Bytes& b2,
                SecureRandom& rng) {
  for (int i = 0; i < 5; ++i) {
    const Bigint e1 = Bigint::random_below(rng, g.order());
    const Bigint e2 = Bigint::random_below(rng, g.order());
    EXPECT_EQ(g.pow2(b1, e1, b2, e2), g.op(g.pow(b1, e1), g.pow(b2, e2)));
  }
  EXPECT_EQ(g.pow2(b1, Bigint(0), b2, Bigint(0)), g.identity());
  EXPECT_EQ(g.pow2(b1, Bigint(1), b2, Bigint(0)), b1);
  EXPECT_EQ(g.pow2(b1, Bigint(0), b2, Bigint(1)), b2);
  EXPECT_EQ(g.pow2(b1, g.order(), b2, g.order()), g.identity());
  // Negative exponents reduce mod the order, matching pow.
  EXPECT_EQ(g.pow2(b1, Bigint(-1), b2, Bigint(2)),
            g.op(g.inv(b1), g.pow(b2, Bigint(2))));
}

TEST(ZnGroupTest, PowGenMatchesGeneratorPow) {
  SecureRandom rng(23);
  const ZnGroup& g = zn();
  // Random exponents, including ones far above the order.
  for (int i = 0; i < 8; ++i) {
    const Bigint e = Bigint::random_below(rng, g.order() * g.order());
    EXPECT_EQ(g.pow_gen(e), g.pow(g.generator(), e));
  }
  // Edge exponents: zero, one, order-1, order, order+1.
  EXPECT_EQ(g.pow_gen(Bigint(0)), g.identity());
  EXPECT_EQ(g.pow_gen(Bigint(1)), g.generator());
  EXPECT_EQ(g.pow_gen(g.order() - Bigint(1)), g.inv(g.generator()));
  EXPECT_EQ(g.pow_gen(g.order()), g.identity());
  EXPECT_EQ(g.pow_gen(g.order() + Bigint(1)), g.generator());
  // A copy taken before/after the lazy build agrees with the original.
  const ZnGroup copy = g;
  const Bigint e = Bigint::random_below(rng, g.order());
  EXPECT_EQ(copy.pow_gen(e), g.pow(g.generator(), e));
}

TEST(ZnGroupTest, Pow2MatchesTwoPows) {
  SecureRandom rng(21);
  const Bytes b1 = zn().generator();
  const Bytes b2 = zn().pow(b1, Bigint::random_below(rng, zn().order()));
  check_pow2(zn(), b1, b2, rng);
}

TEST(EcGroupTest, Pow2MatchesTwoPows) {
  SecureRandom rng(22);
  const EcGroup g(params());
  const Bytes b1 = g.generator();
  const Bytes b2 = g.pow(b1, Bigint::random_below(rng, g.order()));
  check_pow2(g, b1, b2, rng);
}

TEST(GtGroupTest, Pow2MatchesTwoPows) {
  SecureRandom rng(23);
  const GtGroup g(params());
  const Bytes b1 = g.pair(params().g, params().g);
  const Bytes b2 = g.pow(b1, Bigint::random_below(rng, g.order()));
  check_pow2(g, b1, b2, rng);
}

TEST(GroupDescribeTest, DistinctGroupsDistinctDescriptions) {
  const EcGroup ec(params());
  const GtGroup gt(params());
  EXPECT_NE(zn().describe(), ec.describe());
  EXPECT_NE(ec.describe(), gt.describe());
}

}  // namespace
}  // namespace ppms
