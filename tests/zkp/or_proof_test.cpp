#include "zkp/or_proof.h"

#include <gtest/gtest.h>

#include "bigint/prime.h"

namespace ppms {
namespace {

const ZnGroup& zn() {
  static const ZnGroup g = [] {
    SecureRandom rng(51);
    return ZnGroup::quadratic_residues(random_safe_prime(rng, 96), rng);
  }();
  return g;
}

std::vector<Bytes> make_targets(SecureRandom& rng, std::size_t n,
                                std::size_t known, const Bigint& x) {
  std::vector<Bytes> ys;
  for (std::size_t i = 0; i < n; ++i) {
    const Bigint e =
        (i == known) ? x : Bigint::random_below(rng, zn().order());
    ys.push_back(zn().pow(zn().generator(), e));
  }
  return ys;
}

class OrProofIndices : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OrProofIndices, VerifiesForAnyKnownBranch) {
  SecureRandom rng(1 + GetParam());
  const Bigint x = Bigint::random_below(rng, zn().order());
  const auto ys = make_targets(rng, 4, GetParam(), x);
  const OrProof proof =
      or_prove(zn(), zn().generator(), ys, GetParam(), x, rng);
  EXPECT_TRUE(or_verify(zn(), zn().generator(), ys, proof));
}

INSTANTIATE_TEST_SUITE_P(Branches, OrProofIndices,
                         ::testing::Values(0, 1, 2, 3));

TEST(OrProofTest, TwoDisjuncts) {
  SecureRandom rng(2);
  const Bigint x(123);
  const auto ys = make_targets(rng, 2, 1, x);
  const OrProof proof = or_prove(zn(), zn().generator(), ys, 1, x, rng);
  EXPECT_TRUE(or_verify(zn(), zn().generator(), ys, proof));
}

TEST(OrProofTest, ProofDoesNotRevealBranchStructurally) {
  // All branches carry a commitment, a challenge and a response; nothing
  // structurally distinguishes the real one.
  SecureRandom rng(3);
  const Bigint x(5);
  const auto ys = make_targets(rng, 3, 0, x);
  const OrProof proof = or_prove(zn(), zn().generator(), ys, 0, x, rng);
  EXPECT_EQ(proof.commitments.size(), 3u);
  EXPECT_EQ(proof.challenges.size(), 3u);
  EXPECT_EQ(proof.responses.size(), 3u);
  for (const Bigint& c : proof.challenges) {
    EXPECT_LT(c, zn().order());
  }
}

TEST(OrProofTest, WrongTargetSetRejected) {
  SecureRandom rng(4);
  const Bigint x(9);
  auto ys = make_targets(rng, 3, 1, x);
  const OrProof proof = or_prove(zn(), zn().generator(), ys, 1, x, rng);
  ys[0] = zn().pow(zn().generator(), Bigint(999));
  EXPECT_FALSE(or_verify(zn(), zn().generator(), ys, proof));
}

TEST(OrProofTest, TamperedChallengeSplitRejected) {
  SecureRandom rng(5);
  const Bigint x(9);
  const auto ys = make_targets(rng, 3, 1, x);
  OrProof proof = or_prove(zn(), zn().generator(), ys, 1, x, rng);
  proof.challenges[0] = (proof.challenges[0] + Bigint(1)).mod(zn().order());
  EXPECT_FALSE(or_verify(zn(), zn().generator(), ys, proof));
}

TEST(OrProofTest, SizeMismatchRejected) {
  SecureRandom rng(6);
  const Bigint x(9);
  const auto ys = make_targets(rng, 3, 1, x);
  OrProof proof = or_prove(zn(), zn().generator(), ys, 1, x, rng);
  proof.responses.pop_back();
  EXPECT_FALSE(or_verify(zn(), zn().generator(), ys, proof));
}

TEST(OrProofTest, InvalidArgumentsThrow) {
  SecureRandom rng(7);
  const Bigint x(9);
  const auto ys = make_targets(rng, 2, 0, x);
  EXPECT_THROW(or_prove(zn(), zn().generator(), ys, 2, x, rng),
               std::invalid_argument);
  EXPECT_THROW(or_prove(zn(), zn().generator(), {ys[0]}, 0, x, rng),
               std::invalid_argument);
}

TEST(OrProofTest, SerializationRoundTrip) {
  SecureRandom rng(8);
  const Bigint x(44);
  const auto ys = make_targets(rng, 3, 2, x);
  const OrProof proof = or_prove(zn(), zn().generator(), ys, 2, x, rng);
  const OrProof copy = OrProof::deserialize(proof.serialize());
  EXPECT_TRUE(or_verify(zn(), zn().generator(), ys, copy));
}

}  // namespace
}  // namespace ppms
