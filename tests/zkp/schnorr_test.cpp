#include "zkp/schnorr.h"

#include <gtest/gtest.h>

#include "bigint/prime.h"

namespace ppms {
namespace {

const ZnGroup& zn() {
  static const ZnGroup g = [] {
    SecureRandom rng(21);
    return ZnGroup::quadratic_residues(random_safe_prime(rng, 96), rng);
  }();
  return g;
}

TEST(SchnorrTest, HonestProofVerifies) {
  SecureRandom rng(1);
  const Bigint x = Bigint::random_below(rng, zn().order());
  const Bytes y = zn().pow(zn().generator(), x);
  const SchnorrProof proof =
      schnorr_prove(zn(), zn().generator(), y, x, rng);
  EXPECT_TRUE(schnorr_verify(zn(), zn().generator(), y, proof));
}

TEST(SchnorrTest, WorksOnCurveAndTargetGroups) {
  SecureRandom rng(2);
  const TypeAParams params = typea_generate(rng, 40, 96);
  const EcGroup ec(params);
  const Bigint x = Bigint::random_below(rng, ec.order());
  const Bytes y = ec.pow(ec.generator(), x);
  EXPECT_TRUE(schnorr_verify(
      ec, ec.generator(), y,
      schnorr_prove(ec, ec.generator(), y, x, rng)));

  const GtGroup gt(params);
  const Bytes gen = gt.pair(params.g, params.g);
  const Bytes ygt = gt.pow(gen, x);
  EXPECT_TRUE(schnorr_verify(gt, gen, ygt,
                             schnorr_prove(gt, gen, ygt, x, rng)));
}

TEST(SchnorrTest, WrongStatementRejected) {
  SecureRandom rng(3);
  const Bigint x(123);
  const Bytes y = zn().pow(zn().generator(), x);
  const Bytes y_other = zn().pow(zn().generator(), Bigint(124));
  const SchnorrProof proof =
      schnorr_prove(zn(), zn().generator(), y, x, rng);
  EXPECT_FALSE(schnorr_verify(zn(), zn().generator(), y_other, proof));
}

TEST(SchnorrTest, ContextBindsProof) {
  SecureRandom rng(4);
  const Bigint x(5);
  const Bytes y = zn().pow(zn().generator(), x);
  const SchnorrProof proof = schnorr_prove(zn(), zn().generator(), y, x, rng,
                                           bytes_of("session-1"));
  EXPECT_TRUE(schnorr_verify(zn(), zn().generator(), y, proof,
                             bytes_of("session-1")));
  EXPECT_FALSE(schnorr_verify(zn(), zn().generator(), y, proof,
                              bytes_of("session-2")));
}

TEST(SchnorrTest, TamperedProofRejected) {
  SecureRandom rng(5);
  const Bigint x(77);
  const Bytes y = zn().pow(zn().generator(), x);
  SchnorrProof proof = schnorr_prove(zn(), zn().generator(), y, x, rng);
  proof.response = (proof.response + Bigint(1)).mod(zn().order());
  EXPECT_FALSE(schnorr_verify(zn(), zn().generator(), y, proof));
}

TEST(SchnorrTest, OutOfRangeResponseRejected) {
  SecureRandom rng(6);
  const Bigint x(77);
  const Bytes y = zn().pow(zn().generator(), x);
  SchnorrProof proof = schnorr_prove(zn(), zn().generator(), y, x, rng);
  proof.response += zn().order();  // same residue, different encoding
  EXPECT_FALSE(schnorr_verify(zn(), zn().generator(), y, proof));
}

TEST(SchnorrTest, NonMemberTargetRejected) {
  SecureRandom rng(7);
  const SchnorrProof proof = schnorr_prove(
      zn(), zn().generator(), zn().pow(zn().generator(), Bigint(3)),
      Bigint(3), rng);
  EXPECT_FALSE(
      schnorr_verify(zn(), zn().generator(), Bytes(4, 0x12), proof));
}

TEST(SchnorrTest, SerializationRoundTrip) {
  SecureRandom rng(8);
  const Bigint x(999);
  const Bytes y = zn().pow(zn().generator(), x);
  const SchnorrProof proof =
      schnorr_prove(zn(), zn().generator(), y, x, rng);
  const SchnorrProof copy = SchnorrProof::deserialize(proof.serialize());
  EXPECT_TRUE(schnorr_verify(zn(), zn().generator(), y, copy));
}

TEST(SchnorrTest, ZeroWitnessWorks) {
  SecureRandom rng(9);
  const Bytes y = zn().identity();
  const SchnorrProof proof =
      schnorr_prove(zn(), zn().generator(), y, Bigint(0), rng);
  EXPECT_TRUE(schnorr_verify(zn(), zn().generator(), y, proof));
}

}  // namespace
}  // namespace ppms
