#include "zkp/equality.h"

#include <gtest/gtest.h>

#include "bigint/cunningham.h"
#include "bigint/prime.h"

namespace ppms {
namespace {

// The DEC-shaped setting: a curve group and a Z*_p tower group that share
// one prime order r (r, 2r+1 is a Cunningham pair).
struct Fixture {
  TypeAParams params;
  std::unique_ptr<EcGroup> ec;
  std::unique_ptr<ZnGroup> zn;
};

const Fixture& fx() {
  static const Fixture f = [] {
    SecureRandom rng(41);
    const auto chain = search_chain_random(rng, 40, 2, 2000000);
    if (!chain) throw std::runtime_error("no chain found");
    const Bigint r = chain->primes[0];
    const Bigint p2 = chain->primes[1];  // 2r + 1
    Fixture out;
    out.params = typea_generate_for_order(rng, r, 96);
    out.ec = std::make_unique<EcGroup>(out.params);
    out.zn = std::make_unique<ZnGroup>(
        ZnGroup::quadratic_residues(p2, rng));
    return out;
  }();
  return f;
}

TEST(EqualityTest, CrossGroupProofVerifies) {
  SecureRandom rng(1);
  const Bigint x = Bigint::random_below(rng, fx().ec->order());
  const Bytes g1 = fx().ec->generator();
  const Bytes g2 = fx().zn->generator();
  const Bytes y1 = fx().ec->pow(g1, x);
  const Bytes y2 = fx().zn->pow(g2, x);
  const EqualityProof proof =
      equality_prove(*fx().ec, g1, y1, *fx().zn, g2, y2, x, rng);
  EXPECT_TRUE(equality_verify(*fx().ec, g1, y1, *fx().zn, g2, y2, proof));
}

TEST(EqualityTest, SameGroupTwoBases) {
  SecureRandom rng(2);
  const Bytes g = fx().zn->generator();
  const Bytes h = fx().zn->pow(g, Bigint(101));
  const Bigint x(555);
  const Bytes y1 = fx().zn->pow(g, x);
  const Bytes y2 = fx().zn->pow(h, x);
  const EqualityProof proof =
      equality_prove(*fx().zn, g, y1, *fx().zn, h, y2, x, rng);
  EXPECT_TRUE(equality_verify(*fx().zn, g, y1, *fx().zn, h, y2, proof));
}

TEST(EqualityTest, UnequalWitnessesRejected) {
  // y2 uses a different exponent: an honest prover cannot exist, and a
  // proof made for x must fail against the mismatched pair.
  SecureRandom rng(3);
  const Bigint x(11);
  const Bytes g1 = fx().ec->generator();
  const Bytes g2 = fx().zn->generator();
  const Bytes y1 = fx().ec->pow(g1, x);
  const Bytes y2_wrong = fx().zn->pow(g2, Bigint(12));
  const EqualityProof proof = equality_prove(
      *fx().ec, g1, y1, *fx().zn, g2, fx().zn->pow(g2, x), x, rng);
  EXPECT_FALSE(
      equality_verify(*fx().ec, g1, y1, *fx().zn, g2, y2_wrong, proof));
}

TEST(EqualityTest, OrderMismatchThrowsOnProveFailsOnVerify) {
  SecureRandom rng(4);
  const ZnGroup other =
      ZnGroup::quadratic_residues(random_safe_prime(rng, 64), rng);
  const Bigint x(3);
  const Bytes g1 = fx().ec->generator();
  const Bytes y1 = fx().ec->pow(g1, x);
  const Bytes g2 = other.generator();
  const Bytes y2 = other.pow(g2, x);
  EXPECT_THROW(equality_prove(*fx().ec, g1, y1, other, g2, y2, x, rng),
               std::invalid_argument);
  const EqualityProof junk{y1, y2, Bigint(1)};
  EXPECT_FALSE(equality_verify(*fx().ec, g1, y1, other, g2, y2, junk));
}

TEST(EqualityTest, ContextBinds) {
  SecureRandom rng(5);
  const Bigint x(7);
  const Bytes g1 = fx().ec->generator();
  const Bytes g2 = fx().zn->generator();
  const Bytes y1 = fx().ec->pow(g1, x);
  const Bytes y2 = fx().zn->pow(g2, x);
  const EqualityProof proof = equality_prove(*fx().ec, g1, y1, *fx().zn, g2,
                                             y2, x, rng, bytes_of("ctx-a"));
  EXPECT_TRUE(equality_verify(*fx().ec, g1, y1, *fx().zn, g2, y2, proof,
                              bytes_of("ctx-a")));
  EXPECT_FALSE(equality_verify(*fx().ec, g1, y1, *fx().zn, g2, y2, proof,
                               bytes_of("ctx-b")));
}

TEST(EqualityTest, TamperedResponseRejected) {
  SecureRandom rng(6);
  const Bigint x(7);
  const Bytes g1 = fx().ec->generator();
  const Bytes g2 = fx().zn->generator();
  const Bytes y1 = fx().ec->pow(g1, x);
  const Bytes y2 = fx().zn->pow(g2, x);
  EqualityProof proof =
      equality_prove(*fx().ec, g1, y1, *fx().zn, g2, y2, x, rng);
  proof.response = (proof.response + Bigint(1)).mod(fx().ec->order());
  EXPECT_FALSE(equality_verify(*fx().ec, g1, y1, *fx().zn, g2, y2, proof));
}

TEST(EqualityTest, SerializationRoundTrip) {
  SecureRandom rng(7);
  const Bigint x(9);
  const Bytes g1 = fx().ec->generator();
  const Bytes g2 = fx().zn->generator();
  const Bytes y1 = fx().ec->pow(g1, x);
  const Bytes y2 = fx().zn->pow(g2, x);
  const EqualityProof proof =
      equality_prove(*fx().ec, g1, y1, *fx().zn, g2, y2, x, rng);
  const EqualityProof copy = EqualityProof::deserialize(proof.serialize());
  EXPECT_TRUE(equality_verify(*fx().ec, g1, y1, *fx().zn, g2, y2, copy));
}

}  // namespace
}  // namespace ppms
