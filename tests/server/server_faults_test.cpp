// Satellite regression: the staged server behind the PR 4 fault-injected
// transport. The server consumes the same Envelope frames ReliableLink
// produces, so a FaultyChannel can duplicate, drop and corrupt deposit
// submissions on the way in — and the idempotency machinery (store +
// in-flight coalescing) must turn that at-least-once stream into
// exactly-once settlement. This is the interaction PR 4's direct-call
// market never exercised: there the handler ran synchronously inside
// call(), so a duplicate could never overlap its original in flight.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "market/channel.h"
#include "market/error.h"
#include "server/server_fixture.h"

namespace ppms {
namespace {

using testing::counter_value;
using testing::dec_params;
using testing::deposit_envelope;
using testing::make_bank;
using testing::make_funded_wallet;
using testing::ScopedMetrics;

template <typename Cond>
bool eventually(Cond cond) {
  for (int i = 0; i < 2000; ++i) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return cond();
}

/// Deliver `wire` through a channel into the server: every copy the
/// channel produces (immediate or parked for a later tick) becomes one
/// server.submit. Returns how many copies arrived.
std::size_t feed(FaultyChannel& channel, LogicalScheduler& scheduler,
                 MarketServer& server, const Bytes& wire,
                 std::atomic<int>& done) {
  std::size_t deliveries = 0;
  auto submit = [&server, &done](Bytes delivered) {
    const bool admitted =
        server.submit(std::move(delivered), [&done](const SettleOutcome&) {
          done.fetch_add(1, std::memory_order_relaxed);
        });
    // Only overload can refuse admission (submit never parses), and these
    // tests never saturate the ingress.
    EXPECT_TRUE(admitted) << "unexpected submit rejection";
  };
  const auto now = channel.transmit(
      Role::Participant, Role::Admin, wire, [&](Bytes late) {
        ++deliveries;
        submit(std::move(late));
      });
  if (now) {
    ++deliveries;
    submit(std::move(*now));
  }
  // Flush parked (delayed / duplicated) deliveries out of the logical
  // clock; they submit as they fire.
  scheduler.run_until(scheduler.now() + 64);
  return deliveries;
}

TEST(ServerFaultsTest, DuplicatedDeliverySettlesExactlyOnce) {
  ScopedMetrics metrics;
  DecBank bank = make_bank(501);
  DecWallet wallet = make_funded_wallet(bank, 502);
  VBank vbank;
  LogicalScheduler scheduler;
  TrafficMeter traffic;
  const std::string aid = vbank.open_account("sp-dup");

  FaultPlan plan;
  plan.duplicate = 1.0;  // every transmit arrives twice
  plan.seed = 503;
  FaultyChannel channel(traffic, scheduler, plan);
  MarketServer server(dec_params(), bank, vbank, scheduler);
  const std::uint64_t dedup_before = counter_value("server.idem.joined") +
                                     counter_value("server.idem.replays");

  SecureRandom rng(504);
  std::atomic<int> done{0};
  std::size_t deliveries = 0;
  for (std::size_t leaf = 0; leaf < 4; ++leaf) {
    const SpendBundle spend = wallet.spend(
        NodeIndex{3, leaf}, bank.public_key(), rng,
        bytes_of("dup" + std::to_string(leaf)));
    deliveries += feed(channel, scheduler, server,
                       deposit_envelope(600 + leaf, 0, aid, false,
                                        spend.serialize(dec_params())),
                       done);
  }
  EXPECT_EQ(deliveries, 8u);  // 4 coins, each delivered twice

  // Every delivery gets an answer, every coin settles once.
  EXPECT_TRUE(eventually([&] { return done.load() == 8; }));
  server.shutdown();
  EXPECT_EQ(vbank.balance(aid), 4);
  EXPECT_EQ(server.store().size(), 4u);
  // Each of the 4 duplicate copies was either coalesced in flight or
  // replayed from the store — never re-settled.
  EXPECT_EQ(counter_value("server.idem.joined") +
                counter_value("server.idem.replays"),
            dedup_before + 4);
}

TEST(ServerFaultsTest, DroppedThenRetriedDepositSettlesOnce) {
  ScopedMetrics metrics;
  DecBank bank = make_bank(511);
  DecWallet wallet = make_funded_wallet(bank, 512);
  VBank vbank;
  LogicalScheduler scheduler;
  TrafficMeter traffic;
  const std::string aid = vbank.open_account("sp-drop");

  // Lossy leg: the first attempts may vanish; the client retries the
  // SAME envelope (same idempotency key) until one gets through — the
  // reliable-link discipline, replayed by hand against the server.
  FaultPlan plan;
  plan.drop = 0.5;
  plan.seed = 513;
  FaultyChannel channel(traffic, scheduler, plan);
  MarketServer server(dec_params(), bank, vbank, scheduler);

  SecureRandom rng(514);
  const SpendBundle spend =
      wallet.spend(NodeIndex{3, 0}, bank.public_key(), rng, bytes_of("dr"));
  const Bytes wire = deposit_envelope(700, 0, aid, false,
                                      spend.serialize(dec_params()));

  std::atomic<int> done{0};
  std::size_t arrived = 0;
  for (int attempt = 0; attempt < 64 && arrived == 0; ++attempt) {
    arrived += feed(channel, scheduler, server, wire, done);
  }
  ASSERT_GE(arrived, 1u) << "64 attempts all dropped at p=0.5";

  // A paranoid client retries once more even though the first landed:
  // the redelivery replays the recorded reply.
  arrived += feed(channel, scheduler, server, wire, done);

  EXPECT_TRUE(eventually(
      [&] { return done.load() == static_cast<int>(arrived); }));
  server.shutdown();
  EXPECT_EQ(vbank.balance(aid), 1);
  EXPECT_EQ(server.store().size(), 1u);
}

TEST(ServerFaultsTest, CorruptedDeliveryRejectedRetryLandsClean) {
  ScopedMetrics metrics;
  DecBank bank = make_bank(521);
  DecWallet wallet = make_funded_wallet(bank, 522);
  VBank vbank;
  LogicalScheduler scheduler;
  const std::string aid = vbank.open_account("sp-corrupt");

  MarketServer server(dec_params(), bank, vbank, scheduler);
  SecureRandom rng(523);
  const SpendBundle spend =
      wallet.spend(NodeIndex{3, 0}, bank.public_key(), rng, bytes_of("cr"));
  const Bytes wire = deposit_envelope(800, 0, aid, false,
                                      spend.serialize(dec_params()));

  // Flip a payload byte in transit: the envelope digest catches it at
  // decode, the reply is a rejection, and nothing is recorded under any
  // key (a corrupted frame's key is untrustworthy).
  Bytes damaged = wire;
  damaged[damaged.size() / 2] ^= 0x40;
  const SettleOutcome bad = server.call(damaged);
  EXPECT_FALSE(bad.accepted());
  EXPECT_EQ(server.store().size(), 0u);

  // The clean retransmission is a fresh first delivery and settles.
  const SettleOutcome good = server.call(wire);
  EXPECT_TRUE(good.accepted());
  EXPECT_EQ(vbank.balance(aid), 1);
}

}  // namespace
}  // namespace ppms
