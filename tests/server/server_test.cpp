// MarketServer pipeline tests: admission control, exactly-once settlement
// under duplicate submission, cross-session batch verification against the
// sequential deposit oracle, and drain-on-shutdown. Everything runs on the
// shared L=3 DEC fixture; the deterministic overload/coalescing tests gate
// the settle stage by blocking inside a completion callback (callbacks run
// on the settle worker, so one blocked reply stalls the shard — exactly
// the slow-consumer scenario back-pressure exists for).
#include "server/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "market/error.h"
#include "server/server_fixture.h"

namespace ppms {
namespace {

using testing::counter_value;
using testing::dec_params;
using testing::deposit_envelope;
using testing::make_bank;
using testing::make_funded_wallet;
using testing::ScopedMetrics;

/// Tiny single-lane pipeline: every stage one worker, every edge one or
/// two slots, batches of one — total absorption is countable by hand.
MarketServerConfig tiny_config() {
  MarketServerConfig config;
  config.ingress_capacity = 2;
  config.verify_capacity = 1;
  config.settle_capacity = 1;
  config.decode_threads = 1;
  config.verify_threads = 1;
  config.settle_shards = 1;
  config.verify_batch_max = 1;
  return config;
}

/// Wait until `cond` holds or ~2s elapse (pipeline stages are async).
template <typename Cond>
bool eventually(Cond cond) {
  for (int i = 0; i < 2000; ++i) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return cond();
}

TEST(MarketServerTest, AcceptsDepositAndCreditsLedger) {
  DecBank bank = make_bank(301);
  DecWallet wallet = make_funded_wallet(bank, 302);
  VBank vbank;
  LogicalScheduler scheduler;
  const std::string aid = vbank.open_account("sp-1");

  MarketServer server(dec_params(), bank, vbank, scheduler);
  SecureRandom rng(303);
  const SpendBundle spend =
      wallet.spend(NodeIndex{3, 0}, bank.public_key(), rng, bytes_of("s1"));
  const SettleOutcome reply = server.call(
      deposit_envelope(1, 0, aid, false, spend.serialize(dec_params())));

  EXPECT_TRUE(reply.accepted()) << reply.reason;
  EXPECT_EQ(reply.value, 1u);
  EXPECT_EQ(vbank.balance(aid), 1);
}

TEST(MarketServerTest, HidingSpendSettlesThroughHidingPath) {
  DecBank bank = make_bank(311);
  DecWallet wallet = make_funded_wallet(bank, 312);
  VBank vbank;
  LogicalScheduler scheduler;
  const std::string aid = vbank.open_account("sp-h");

  MarketServer server(dec_params(), bank, vbank, scheduler);
  SecureRandom rng(313);
  const RootHidingSpend spend = wallet.spend_hiding(
      NodeIndex{1, 0}, bank.public_key(), rng, bytes_of("h1"));
  const SettleOutcome reply = server.call(
      deposit_envelope(1, 0, aid, true, spend.serialize(dec_params())));

  EXPECT_TRUE(reply.accepted()) << reply.reason;
  EXPECT_EQ(reply.value, 4u);  // depth-1 node of an L=3 coin
  EXPECT_EQ(vbank.balance(aid), 4);
}

TEST(MarketServerTest, ReplayIsServedFromStoreWithoutResettling) {
  ScopedMetrics metrics;
  DecBank bank = make_bank(321);
  DecWallet wallet = make_funded_wallet(bank, 322);
  VBank vbank;
  LogicalScheduler scheduler;
  const std::string aid = vbank.open_account("sp-r");

  MarketServer server(dec_params(), bank, vbank, scheduler);
  SecureRandom rng(323);
  const SpendBundle spend =
      wallet.spend(NodeIndex{3, 1}, bank.public_key(), rng, bytes_of("s2"));
  const Bytes wire =
      deposit_envelope(2, 5, aid, false, spend.serialize(dec_params()));

  const std::uint64_t replays_before = counter_value("server.idem.replays");
  const SettleOutcome first = server.call(wire);
  const SettleOutcome replay = server.call(wire);

  EXPECT_TRUE(first.accepted());
  EXPECT_TRUE(replay.accepted());
  EXPECT_EQ(replay.value, first.value);
  EXPECT_EQ(counter_value("server.idem.replays"), replays_before + 1);
  // The coin settled once: one credit, not two.
  EXPECT_EQ(vbank.balance(aid), 1);
  EXPECT_EQ(server.store().size(), 1u);
}

TEST(MarketServerTest, MalformedEnvelopeAnsweredWithoutRecording) {
  ScopedMetrics metrics;
  DecBank bank = make_bank(331);
  VBank vbank;
  LogicalScheduler scheduler;
  MarketServer server(dec_params(), bank, vbank, scheduler);

  const std::uint64_t malformed_before =
      counter_value("server.decode.malformed");
  const SettleOutcome reply = server.call(bytes_of("not an envelope"));
  EXPECT_FALSE(reply.accepted());
  EXPECT_EQ(counter_value("server.decode.malformed"), malformed_before + 1);
  // No trustworthy key, so nothing is cached for it.
  EXPECT_EQ(server.store().size(), 0u);
}

TEST(MarketServerTest, UnknownAccountRejectedWithRecordedReply) {
  DecBank bank = make_bank(341);
  DecWallet wallet = make_funded_wallet(bank, 342);
  VBank vbank;  // no accounts opened
  LogicalScheduler scheduler;
  MarketServer server(dec_params(), bank, vbank, scheduler);

  SecureRandom rng(343);
  const SpendBundle spend =
      wallet.spend(NodeIndex{3, 2}, bank.public_key(), rng, bytes_of("s3"));
  const Bytes wire = deposit_envelope(3, 0, "acct-0",
                                      false, spend.serialize(dec_params()));
  const SettleOutcome reply = server.call(wire);
  EXPECT_FALSE(reply.accepted());
  // The key was valid, so the rejection is cached and replays verbatim.
  EXPECT_EQ(server.store().size(), 1u);
  const SettleOutcome replay = server.call(wire);
  EXPECT_FALSE(replay.accepted());
  EXPECT_EQ(replay.reason, reply.reason);
}

TEST(MarketServerTest, DoubleSpendFromDifferentSessionRejected) {
  DecBank bank = make_bank(351);
  DecWallet wallet = make_funded_wallet(bank, 352);
  VBank vbank;
  LogicalScheduler scheduler;
  const std::string aid = vbank.open_account("sp-d");

  MarketServer server(dec_params(), bank, vbank, scheduler);
  SecureRandom rng(353);
  const SpendBundle spend =
      wallet.spend(NodeIndex{3, 3}, bank.public_key(), rng, bytes_of("s4"));
  const Bytes coin = spend.serialize(dec_params());

  // Distinct sessions → distinct idempotency keys → the second submission
  // is NOT a replay: it travels the whole pipeline and must be caught by
  // the double-spend store at settle.
  EXPECT_TRUE(server.call(deposit_envelope(4, 0, aid, false, coin)).accepted());
  const SettleOutcome second =
      server.call(deposit_envelope(5, 0, aid, false, coin));
  EXPECT_FALSE(second.accepted());
  EXPECT_EQ(vbank.balance(aid), 1);
}

TEST(MarketServerTest, OverloadShedsAtIngressEdgeAndDrainsAfter) {
  ScopedMetrics metrics;
  DecBank bank = make_bank(361);
  DecWallet wallet_a = make_funded_wallet(bank, 362);
  DecWallet wallet_b = make_funded_wallet(bank, 363);
  VBank vbank;
  LogicalScheduler scheduler;
  const std::string aid = vbank.open_account("sp-o");

  // Pre-mint more envelopes than the tiny pipeline can ever hold.
  SecureRandom rng(364);
  std::vector<Bytes> wires;
  for (std::size_t leaf = 0; leaf < 8; ++leaf) {
    const SpendBundle a = wallet_a.spend(NodeIndex{3, leaf},
                                         bank.public_key(), rng,
                                         bytes_of("oa" + std::to_string(leaf)));
    const SpendBundle b = wallet_b.spend(NodeIndex{3, leaf},
                                         bank.public_key(), rng,
                                         bytes_of("ob" + std::to_string(leaf)));
    wires.push_back(deposit_envelope(10 + leaf, 0, aid, false,
                                     a.serialize(dec_params())));
    wires.push_back(deposit_envelope(30 + leaf, 0, aid, false,
                                     b.serialize(dec_params())));
  }

  MarketServer server(dec_params(), bank, vbank, scheduler, tiny_config());
  const std::uint64_t rejected_before =
      counter_value("server.ingress.rejected");

  // Gate: the first deposit's completion callback blocks the (single)
  // settle worker, so nothing downstream ever frees a slot. The pipeline
  // then holds at most 7 requests — one per worker or queue slot:
  // settle worker (gated) + settle q (1) + verify worker + verify q (1)
  // + decode worker + ingress (2).
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  std::atomic<int> completed{0};
  server.submit(wires[0], [&, released](const SettleOutcome&) {
    released.wait();
    completed.fetch_add(1, std::memory_order_relaxed);
  });

  // Overload is an answer, not an exception: submit returns false and the
  // callback has already run synchronously with a kOverloaded outcome.
  std::size_t admitted = 1;
  bool overloaded = false;
  for (std::size_t i = 1; i < wires.size(); ++i) {
    SettleOutcome shed;
    bool shed_seen = false;
    const bool ok = server.submit(wires[i], [&](const SettleOutcome& out) {
      if (out.overloaded()) {
        shed = out;
        shed_seen = true;
        return;
      }
      completed.fetch_add(1, std::memory_order_relaxed);
    });
    if (!ok) {
      EXPECT_TRUE(shed_seen);
      EXPECT_EQ(shed.errc, MarketErrc::kOverloaded);
      overloaded = true;
      break;
    }
    ++admitted;
  }

  EXPECT_TRUE(overloaded);
  EXPECT_LE(admitted, 7u);  // the gated pipeline's absorption bound
  EXPECT_GE(counter_value("server.ingress.rejected"), rejected_before + 1);

  // Lift the gate: every admitted deposit must still complete — shedding
  // happened at the edge, nothing admitted was dropped.
  release.set_value();
  EXPECT_TRUE(eventually([&] {
    return completed.load(std::memory_order_relaxed) ==
           static_cast<int>(admitted);
  }));
  server.shutdown();
  EXPECT_EQ(completed.load(), static_cast<int>(admitted));
}

TEST(MarketServerTest, ConcurrentDuplicateCoalescesAndSettlesOnce) {
  ScopedMetrics metrics;
  DecBank bank = make_bank(371);
  DecWallet wallet = make_funded_wallet(bank, 372);
  VBank vbank;
  LogicalScheduler scheduler;
  const std::string aid = vbank.open_account("sp-c");

  SecureRandom rng(373);
  const SpendBundle gate_spend =
      wallet.spend(NodeIndex{3, 0}, bank.public_key(), rng, bytes_of("cg"));
  const SpendBundle spend =
      wallet.spend(NodeIndex{3, 1}, bank.public_key(), rng, bytes_of("c1"));
  const Bytes gate_wire = deposit_envelope(
      50, 0, aid, false, gate_spend.serialize(dec_params()));
  const Bytes wire =
      deposit_envelope(51, 0, aid, false, spend.serialize(dec_params()));

  MarketServer server(dec_params(), bank, vbank, scheduler, tiny_config());
  const std::uint64_t joined_before = counter_value("server.idem.joined");
  const std::uint64_t coins_before = counter_value("server.verify.coins");

  // Gate the settle shard, then let the victim deposit verify and park in
  // the settle queue: it is now in flight and cannot finish.
  std::promise<void> release;
  std::shared_future<void> released(release.get_future());
  std::atomic<int> done{0};
  server.submit(gate_wire, [&, released](const SettleOutcome&) {
    released.wait();
    done.fetch_add(1, std::memory_order_relaxed);
  });
  server.submit(wire, [&](const SettleOutcome& reply) {
    EXPECT_TRUE(reply.accepted());
    done.fetch_add(1, std::memory_order_relaxed);
  });
  ASSERT_TRUE(eventually(
      [&] { return counter_value("server.verify.coins") >= coins_before + 2; }));

  // The duplicate (a retry racing its original) must coalesce onto the
  // in-flight entry, not start a second settlement.
  server.submit(wire, [&](const SettleOutcome& reply) {
    EXPECT_TRUE(reply.accepted());
    done.fetch_add(1, std::memory_order_relaxed);
  });
  ASSERT_TRUE(eventually(
      [&] { return counter_value("server.idem.joined") == joined_before + 1; }));

  release.set_value();
  EXPECT_TRUE(eventually([&] { return done.load() == 3; }));
  server.shutdown();
  // One coin, two submissions, one credit.
  EXPECT_EQ(vbank.balance(aid), 2);  // gate coin + victim coin, once each
  EXPECT_EQ(server.store().size(), 2u);
}

TEST(MarketServerTest, BatchVerifyMatchesSequentialDepositOracle) {
  ScopedMetrics metrics;
  // Twin banks from one seed share key material: spends verify against
  // both, so the second bank is a sequential oracle for the first.
  DecBank bank = make_bank(381);
  DecBank twin = make_bank(381);
  VBank vbank;
  LogicalScheduler scheduler;
  const std::string aid = vbank.open_account("sp-b");

  SecureRandom rng(383);
  std::vector<DecWallet> wallets;
  for (int w = 0; w < 3; ++w) {
    wallets.push_back(make_funded_wallet(bank, 390 + w));
  }
  struct Case {
    Bytes wire;
    SpendBundle spend;
  };
  std::vector<Case> cases;
  std::uint64_t session = 100;
  for (std::size_t w = 0; w < wallets.size(); ++w) {
    for (std::size_t leaf = 0; leaf < 4; ++leaf) {
      SpendBundle spend = wallets[w].spend(
          NodeIndex{3, leaf}, bank.public_key(), rng,
          bytes_of("b" + std::to_string(w) + "." + std::to_string(leaf)));
      if (w == 1 && leaf == 2) {
        // One bad apple: retarget the proof context so verification
        // fails. The batch must reject exactly this one.
        spend.context = bytes_of("tampered");
      }
      cases.push_back(Case{deposit_envelope(session++, 0, aid, false,
                                            spend.serialize(dec_params())),
                           std::move(spend)});
    }
  }

  // Large batch ceiling + a brief ingress stall (submissions land before
  // workers start popping is not guaranteed, so we don't assert ONE
  // batch — only that batching happened and results match the oracle).
  MarketServerConfig config;
  config.verify_batch_max = 64;
  const std::uint64_t batches_before =
      counter_value("server.verify.batches");
  const std::uint64_t coins_before = counter_value("server.verify.coins");

  std::vector<SettleOutcome> replies(cases.size());
  std::atomic<int> done{0};
  {
    MarketServer server(dec_params(), bank, vbank, scheduler, config);
    for (std::size_t i = 0; i < cases.size(); ++i) {
      server.submit(cases[i].wire, [&, i](const SettleOutcome& reply) {
        replies[i] = reply;
        done.fetch_add(1, std::memory_order_relaxed);
      });
    }
    EXPECT_TRUE(eventually(
        [&] { return done.load() == static_cast<int>(cases.size()); }));
  }  // ~MarketServer drains

  const std::uint64_t batches =
      counter_value("server.verify.batches") - batches_before;
  const std::uint64_t coins =
      counter_value("server.verify.coins") - coins_before;
  EXPECT_EQ(coins, cases.size());
  EXPECT_GE(batches, 1u);
  EXPECT_LE(batches, cases.size());

  // Oracle: the same spends through the plain sequential deposit path.
  std::uint64_t accepted = 0;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const SettleOutcome oracle = twin.deposit(cases[i].spend);
    EXPECT_EQ(replies[i].accepted(), oracle.accepted())
        << "case " << i << ": server='" << replies[i].reason
        << "' oracle='" << oracle.reason << "'";
    if (oracle.accepted()) {
      EXPECT_EQ(replies[i].value, oracle.value) << "case " << i;
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, cases.size() - 1);  // exactly the tampered one fails
  EXPECT_EQ(vbank.balance(aid), static_cast<std::int64_t>(accepted));
}

TEST(MarketServerTest, ShutdownDrainsEverythingAdmitted) {
  DecBank bank = make_bank(401);
  DecWallet wallet = make_funded_wallet(bank, 402);
  VBank vbank;
  LogicalScheduler scheduler;
  const std::string aid = vbank.open_account("sp-s");

  SecureRandom rng(403);
  std::vector<Bytes> wires;
  for (std::size_t leaf = 0; leaf < 8; ++leaf) {
    const SpendBundle spend = wallet.spend(
        NodeIndex{3, leaf}, bank.public_key(), rng,
        bytes_of("sd" + std::to_string(leaf)));
    wires.push_back(deposit_envelope(200 + leaf, 0, aid, false,
                                     spend.serialize(dec_params())));
  }

  MarketServer server(dec_params(), bank, vbank, scheduler);
  std::atomic<int> done{0};
  std::atomic<int> accepted{0};
  for (const Bytes& wire : wires) {
    server.submit(wire, [&](const SettleOutcome& reply) {
      if (reply.accepted()) accepted.fetch_add(1, std::memory_order_relaxed);
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  // Immediate shutdown: close+drain must answer every admitted deposit
  // before returning — no sleeps, no polling.
  server.shutdown();
  EXPECT_EQ(done.load(), 8);
  EXPECT_EQ(accepted.load(), 8);
  EXPECT_EQ(vbank.balance(aid), 8);

  // And the closed ingress sheds like a full one: synchronous overload.
  bool shed = false;
  EXPECT_FALSE(server.submit(wires[0], [&](const SettleOutcome& out) {
    shed = out.overloaded();
  }));
  EXPECT_TRUE(shed);
}

}  // namespace
}  // namespace ppms
