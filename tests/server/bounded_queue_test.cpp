#include "server/queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

namespace ppms {
namespace {

TEST(BoundedQueueTest, FifoOrderWithinCapacity) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(std::move(i)));
  EXPECT_EQ(q.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    const auto item = q.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueueTest, TryPushRefusesWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // admission control: full = refused
  q.pop();
  EXPECT_TRUE(q.try_push(3));  // space freed = admitted again
}

TEST(BoundedQueueTest, ZeroCapacityClampsToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.try_push(7));
  EXPECT_FALSE(q.try_push(8));
}

TEST(BoundedQueueTest, TryPopReturnsNulloptWhenEmpty) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.try_pop().has_value());
  q.try_push(5);
  const auto item = q.try_pop();
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(*item, 5);
}

TEST(BoundedQueueTest, PushBlocksUntilConsumerFreesSpace) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.try_push(1));

  // The blocking push must stand still while the queue is full — that
  // stall is the back-pressure mechanism the pipeline relies on.
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));
    pushed.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load(std::memory_order_acquire));

  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load(std::memory_order_acquire));
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueueTest, CloseDrainsPendingThenSignalsExit) {
  BoundedQueue<int> q(4);
  q.try_push(1);
  q.try_push(2);
  q.close();
  // Nothing accepted is dropped: queued items still come out...
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  // ...and only the drained, closed queue signals the consumer to exit.
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(q.try_push(3));
  EXPECT_FALSE(q.push(3));
  EXPECT_TRUE(q.closed());
}

TEST(BoundedQueueTest, CloseWakesBlockedProducerAndConsumer) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.try_push(1));
  std::thread producer([&] { EXPECT_FALSE(q.push(2)); });

  BoundedQueue<int> empty(1);
  std::thread consumer([&] { EXPECT_FALSE(empty.pop().has_value()); });

  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  empty.close();
  producer.join();
  consumer.join();
}

TEST(BoundedQueueTest, DepthGaugeTracksSizeExactly) {
  obs::set_metrics_enabled(true);
  obs::Gauge& depth = obs::gauge("test.queue.depth");
  BoundedQueue<int> q(4, &depth);
  q.try_push(1);
  q.try_push(2);
  EXPECT_EQ(depth.value(), 2u);
  q.pop();
  EXPECT_EQ(depth.value(), 1u);
  q.pop();
  EXPECT_EQ(depth.value(), 0u);
  obs::set_metrics_enabled(false);
}

TEST(BoundedQueueTest, ManyProducersManyConsumersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> q(8);  // small: forces constant blocking hand-off

  std::atomic<long long> sum{0};
  std::atomic<int> count{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto item = q.pop()) {
        sum.fetch_add(*item, std::memory_order_relaxed);
        count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  const long long n = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

}  // namespace
}  // namespace ppms
