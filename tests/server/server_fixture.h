// Shared helpers for the staged-server suites: envelope construction for
// deposit requests and counter-delta assertions against the global obs
// registry (tests in one binary share it, so absolute values are
// meaningless — always diff before/after).
#pragma once

#include <string>

#include "dec/dec_fixture.h"
#include "hash/sha256.h"
#include "market/faults.h"
#include "obs/metrics.h"
#include "server/server.h"
#include "util/serial.h"

namespace ppms::testing {

/// A deposit envelope the way loadgen and the reliable link build one:
/// idempotency key = H(session id ‖ seq ‖ payload).
inline Bytes deposit_envelope(std::uint64_t session_id, std::uint64_t seq,
                              const std::string& aid, bool hiding,
                              const Bytes& coin_wire) {
  Envelope env;
  env.session_id = session_id;
  env.seq = seq;
  env.payload = encode_deposit_request(aid, hiding, coin_wire);
  Writer key;
  key.put_u64(env.session_id);
  key.put_u64(env.seq);
  key.put_bytes(env.payload);
  env.idem_key = sha256(key.data());
  return env.serialize();
}

inline std::uint64_t counter_value(const std::string& name) {
  return obs::counter(name).value();
}

/// RAII: metrics on for the test, restored after (suites that do not
/// care about counters leave the flag alone).
class ScopedMetrics {
 public:
  ScopedMetrics() : was_(obs::metrics_enabled()) {
    obs::set_metrics_enabled(true);
  }
  ~ScopedMetrics() { obs::set_metrics_enabled(was_); }

 private:
  bool was_;
};

}  // namespace ppms::testing
